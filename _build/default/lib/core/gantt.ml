module Types = Mfb_schedule.Types

let render ?(width = 72) (sched : Types.t) =
  let makespan = Float.max sched.makespan 1e-9 in
  let col t =
    let c = int_of_float (Float.round (float_of_int width *. t /. makespan)) in
    min width (max 0 c)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s on %s: %.1f s\n"
       (Mfb_bioassay.Seq_graph.name sched.graph)
       (Mfb_component.Allocation.to_string sched.allocation)
       sched.makespan);
  Array.iter
    (fun (comp : Mfb_component.Component.t) ->
      let lane = Bytes.make (width + 1) '.' in
      (* Washes first so operation blocks draw over them when rounding
         makes them touch. *)
      List.iter
        (fun (w : Types.wash_event) ->
          if w.component = comp.id then
            for i = col w.wash_start
                to min width (col (w.wash_start +. w.wash_duration)) do
              Bytes.set lane i '~'
            done)
        sched.washes;
      let label_of op = Printf.sprintf "o%d" op in
      List.iter
        (fun (op, (t : Types.op_times)) ->
          let a = col t.start and b = col t.finish in
          for i = a to min width b do
            Bytes.set lane i '#'
          done;
          (* Write the label inside the block when it fits. *)
          let label = label_of op in
          if b - a + 1 > String.length label then
            String.iteri (fun k ch -> Bytes.set lane (a + 1 + k) ch) label)
        (Types.ops_on_component sched comp.id);
      let active = Mfb_schedule.Metrics.busy_time sched comp.id in
      Buffer.add_string buf
        (Printf.sprintf "%-10s |%s| %4.0f%%\n"
           (Mfb_component.Component.label comp)
           (Bytes.to_string lane)
           (100. *. active /. makespan)))
    sched.components;
  (* Time axis. *)
  let axis = Bytes.make (width + 1) ' ' in
  let rec ticks t =
    if t <= makespan then begin
      Bytes.set axis (col t) '|';
      ticks (t +. (makespan /. 6.))
    end
  in
  ticks 0.;
  Buffer.add_string buf (Printf.sprintf "%-10s  %s\n" "" (Bytes.to_string axis));
  Buffer.add_string buf
    (Printf.sprintf "%-10s  0%*s%.1f s\n" "" (width - 6) "" makespan);
  Buffer.contents buf
