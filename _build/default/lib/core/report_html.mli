(** Standalone HTML report of a suite comparison: Table I, Figs. 8-9 as
    bar charts, and the synthesised chip layouts inline as SVG.  No
    external assets; open the file in any browser. *)

val render : (Result.t * Result.t) list -> string
(** [render pairs] builds the report from (ours, baseline) pairs. *)

val to_file : string -> (Result.t * Result.t) list -> unit
