(** The paper's top-down synthesis flow: Alg. 1 binding/scheduling, then
    Alg. 2 placement (simulated annealing over Eq. 3) and
    conflict-aware routing, then retiming under any routing
    postponements. *)

type scheduler = [ `Dcsa | `Earliest_ready ]
(** [`Dcsa] is the paper's Case-I/Case-II strategy; [`Earliest_ready] is
    the ablation A1 (binding rule of the baseline inside our flow). *)

type placement_energy = [ `Connection_priority | `Uniform ]
(** [`Connection_priority] weights Eq. 3 by Eq. 4; [`Uniform] is the
    ablation A2 (plain wirelength). *)

type placer = [ `Annealing | `Force_directed ]
(** [`Annealing] is the paper's SA (Alg. 2); [`Force_directed] is the
    fast quadratic-relaxation alternative ({!Mfb_place.Force_place}). *)

type router = [ `Sequential | `Negotiated ]
(** [`Sequential] is the paper's conflict-pruned A* (Alg. 2 lines 9-18);
    [`Negotiated] is PathFinder-style rip-up-and-re-route
    ({!Mfb_route.Negotiated_router}). *)

val run :
  ?config:Config.t ->
  ?scheduler:scheduler ->
  ?placement_energy:placement_energy ->
  ?placer:placer ->
  ?router:router ->
  ?weight_update:bool ->
  ?route_io:bool ->
  ?jobs:int ->
  ?flow_name:string ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  Result.t
(** [run g alloc] synthesises the full physical design with the paper's
    parameters.  [weight_update:false] is the ablation A3; [route_io] (default false)
    additionally routes inlet dispensing and waste runs (the I/O study).

    [jobs] (default 1) bounds the worker domains used by the parallel
    sections inside the flow (currently the [config.sa_restarts]
    annealing restarts).  The synthesis result is bit-for-bit identical
    for every [jobs] value — parallelism follows the split-then-reduce
    determinism rule (see DESIGN.md "Parallel execution model").

    The result carries both process CPU time and elapsed wall-clock
    time, plus a per-stage breakdown in [stage_times]. *)
