module Allocation = Mfb_component.Allocation

type point = {
  allocation : Allocation.t;
  components : int;
  completion_time : float;
  utilization : float;
}

let explore ?(tc = Config.default.tc) ?(max_per_kind = 8) graph =
  if max_per_kind < 1 then invalid_arg "Allocator.explore: max_per_kind < 1";
  let counts = Mfb_bioassay.Seq_graph.kind_counts graph in
  let range i =
    if counts.(i) = 0 then [ 0 ]
    else List.init (min max_per_kind counts.(i)) (fun k -> k + 1)
  in
  let candidates =
    List.concat_map
      (fun m ->
        List.concat_map
          (fun h ->
            List.concat_map
              (fun f ->
                List.map (fun d -> (m, h, f, d)) (range 3))
              (range 2))
          (range 1))
      (range 0)
  in
  let evaluate vector =
    let allocation = Allocation.of_vector vector in
    let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc graph allocation in
    {
      allocation;
      components = Allocation.total allocation;
      completion_time = sched.makespan;
      utilization = Mfb_schedule.Metrics.resource_utilization sched;
    }
  in
  let points = List.map evaluate candidates in
  (* One representative per component count (the fastest; ties broken by
     evaluation order), then the strict Pareto staircase: keep a size only
     when it beats every smaller size. *)
  let best_per_size = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match Hashtbl.find_opt best_per_size p.components with
      | Some q when q.completion_time <= p.completion_time +. 1e-9 -> ()
      | Some _ | None -> Hashtbl.replace best_per_size p.components p)
    points;
  let by_size =
    Hashtbl.fold (fun _ p acc -> p :: acc) best_per_size []
    |> List.sort (fun a b -> compare a.components b.components)
  in
  let _, frontier =
    List.fold_left
      (fun (best_time, acc) p ->
        if p.completion_time < best_time -. 1e-9 then
          (p.completion_time, p :: acc)
        else (best_time, acc))
      (infinity, []) by_size
  in
  List.rev frontier

let knee = function
  | [] -> None
  | frontier ->
    let fastest =
      List.fold_left
        (fun acc p -> Float.min acc p.completion_time)
        infinity frontier
    in
    List.find_opt
      (fun p -> p.completion_time <= fastest *. 1.05)
      frontier
