(** ASCII rendering of a synthesised chip layout: component footprints,
    ports, and the routed channel network. *)

val render : Result.t -> string
(** One character per grid cell: components are drawn with per-kind
    letters ([M]/[H]/[F]/[D]), channel cells as [+], ports as [o], and
    free cells as [.]; a legend with component anchors follows. *)
