(** ASCII Gantt chart of a schedule, in the style of the paper's Fig. 3:
    one lane per component, operation blocks labelled with their id,
    washes shown as [~], idle time as [.]. *)

val render : ?width:int -> Mfb_schedule.Types.t -> string
(** [render ?width sched] draws the schedule scaled to about [width]
    character columns (default 72).  Each lane ends with the component's
    utilisation ratio. *)
