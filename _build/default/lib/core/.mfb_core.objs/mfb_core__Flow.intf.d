lib/core/flow.mli: Config Mfb_bioassay Mfb_component Result
