lib/core/layout_svg.ml: Array Buffer List Mfb_bioassay Mfb_component Mfb_place Mfb_route Out_channel Printf Result
