lib/core/config.mli: Mfb_place
