lib/core/gantt.mli: Mfb_schedule
