lib/core/layout_svg.mli: Result
