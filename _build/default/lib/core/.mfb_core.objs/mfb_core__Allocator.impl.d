lib/core/allocator.ml: Array Config Float Hashtbl List Mfb_bioassay Mfb_component Mfb_schedule
