lib/core/suite.ml: List Mfb_bioassay Mfb_component String
