lib/core/suite.ml: Baseline Config Flow List Mfb_bioassay Mfb_component Mfb_util String
