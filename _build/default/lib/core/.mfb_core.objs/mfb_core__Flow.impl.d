lib/core/flow.ml: Config List Logs Mfb_bioassay Mfb_place Mfb_route Mfb_schedule Mfb_util Result Sys Unix
