lib/core/report_html.mli: Result
