lib/core/report_html.ml: Buffer Float Layout_svg List Mfb_bioassay Mfb_component Mfb_schedule Mfb_util Out_channel Printf Result String
