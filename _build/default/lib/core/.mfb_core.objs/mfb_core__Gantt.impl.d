lib/core/gantt.ml: Array Buffer Bytes Float List Mfb_bioassay Mfb_component Mfb_schedule Printf String
