lib/core/report.mli: Mfb_util Result
