lib/core/result.ml: Format Mfb_place Mfb_route Mfb_schedule Mfb_util Option
