lib/core/area.mli: Result
