lib/core/baseline.ml: Config List Mfb_bioassay Mfb_place Mfb_route Mfb_schedule Result Sys Unix
