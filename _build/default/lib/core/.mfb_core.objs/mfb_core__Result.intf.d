lib/core/result.mli: Format Mfb_place Mfb_route Mfb_schedule Mfb_util
