lib/core/report.ml: Buffer Float List Mfb_bioassay Mfb_component Mfb_schedule Mfb_util Printf Result String
