lib/core/layout_render.ml: Array Buffer List Mfb_bioassay Mfb_component Mfb_place Mfb_route Printf Result
