lib/core/area.ml: List Mfb_place Mfb_route Result
