lib/core/baseline.mli: Config Mfb_bioassay Mfb_component Result
