lib/core/suite.mli: Mfb_bioassay Mfb_component
