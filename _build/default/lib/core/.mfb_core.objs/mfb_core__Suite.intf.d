lib/core/suite.mli: Config Mfb_bioassay Mfb_component Result
