lib/core/allocator.mli: Mfb_bioassay Mfb_component
