lib/core/layout_render.mli: Result
