lib/core/config.ml: Mfb_place
