(** Architectural exploration: choosing the component allocation.

    The paper takes the allocation vectors of Table I as inputs; the
    upstream step that picks them is architectural synthesis (Minhass et
    al., cited as [6]).  This module explores the allocation space with
    the DCSA scheduler as the evaluation engine and returns the Pareto
    frontier of (component count, completion time). *)

type point = {
  allocation : Mfb_component.Allocation.t;
  components : int;        (** total allocated components *)
  completion_time : float; (** DCSA schedule makespan *)
  utilization : float;     (** Eq. 1 on that schedule *)
}

val explore :
  ?tc:float ->
  ?max_per_kind:int ->
  Mfb_bioassay.Seq_graph.t ->
  point list
(** [explore g] evaluates every allocation from the minimal one up to
    [max_per_kind] (default 8) components per kind used by [g] (kinds
    absent from [g] stay at zero) and keeps the Pareto-optimal points:
    no other allocation is both smaller and faster.  Sorted by component
    count.  Scheduling only — placement and routing are left to the
    caller for the chosen point. *)

val knee : point list -> point option
(** The frontier point with the best marginal trade-off: the smallest
    allocation within 5 % of the fastest completion time; [None] on the
    empty list. *)
