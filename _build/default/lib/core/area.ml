let active_cells (r : Result.t) =
  Mfb_place.Chip.blocked_cells r.chip
  @ Mfb_route.Rgrid.used_cells r.routing.Mfb_route.Routed.grid

let bounding_box (r : Result.t) =
  match active_cells r with
  | [] -> (0, 0, r.chip.width, r.chip.height)
  | (x0, y0) :: rest ->
    let min_x, min_y, max_x, max_y =
      List.fold_left
        (fun (a, b, c, d) (x, y) -> (min a x, min b y, max c x, max d y))
        (x0, y0, x0, y0) rest
    in
    (min_x, min_y, max_x - min_x + 1, max_y - min_y + 1)

let component_area_cells (r : Result.t) =
  List.length (Mfb_place.Chip.blocked_cells r.chip)

let channel_area_cells (r : Result.t) =
  List.length (Mfb_route.Rgrid.used_cells r.routing.Mfb_route.Routed.grid)

let used_area_cells r =
  List.length (List.sort_uniq compare (active_cells r))

let utilised_fraction r =
  let _, _, w, h = bounding_box r in
  let box = w * h in
  if box = 0 then 0. else float_of_int (used_area_cells r) /. float_of_int box

let storage_unit_area_cells ~capacity =
  if capacity < 0 then invalid_arg "Area.storage_unit_area_cells: negative";
  (4 * capacity) + 4
