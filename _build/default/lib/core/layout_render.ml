let kind_char = function
  | Mfb_bioassay.Operation.Mix -> 'M'
  | Mfb_bioassay.Operation.Heat -> 'H'
  | Mfb_bioassay.Operation.Filter -> 'F'
  | Mfb_bioassay.Operation.Detect -> 'D'

let render (r : Result.t) =
  let chip = r.chip in
  let grid = r.routing.Mfb_route.Routed.grid in
  let canvas = Array.make_matrix chip.height chip.width '.' in
  List.iter
    (fun (x, y) -> canvas.(y).(x) <- '+')
    (Mfb_route.Rgrid.used_cells grid);
  Array.iteri
    (fun i (c : Mfb_component.Component.t) ->
      let x, y, w, h = Mfb_place.Chip.footprint chip i in
      for cx = x to x + w - 1 do
        for cy = y to y + h - 1 do
          canvas.(cy).(cx) <- kind_char c.kind
        done
      done;
      let px, py = Mfb_route.Rgrid.port grid i in
      canvas.(py).(px) <- 'o')
    chip.components;
  let buf = Buffer.create (chip.width * chip.height * 2) in
  Buffer.add_string buf
    (Printf.sprintf "%s (%s): %dx%d cells, %.0f mm of channels\n" r.benchmark
       r.flow chip.width chip.height r.channel_length_mm);
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    canvas;
  Array.iteri
    (fun i (c : Mfb_component.Component.t) ->
      let x, y, _, _ = Mfb_place.Chip.footprint chip i in
      Buffer.add_string buf
        (Printf.sprintf "  %c%d = %s @ (%d,%d)\n" (kind_char c.kind) i
           (Mfb_component.Component.label c) x y))
    chip.components;
  Buffer.contents buf
