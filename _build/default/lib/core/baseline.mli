(** The paper's comparison baseline (BA): earliest-ready binding, then a
    construction-by-correction placement-and-routing solution whose
    postponements are retimed into the final schedule. *)

val run :
  ?config:Config.t ->
  ?route_io:bool ->
  ?flow_name:string ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  Result.t
(** [run g alloc] synthesises the baseline physical design under the
    same parameters as {!Flow.run}. *)
