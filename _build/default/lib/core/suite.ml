type instance = {
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;
}

let make graph vector =
  { graph; allocation = Mfb_component.Allocation.of_vector vector }

let pcr () = make (Mfb_bioassay.Benchmarks.pcr ()) (3, 0, 0, 0)
let ivd () = make (Mfb_bioassay.Benchmarks.ivd ()) (3, 0, 0, 2)
let cpa () = make (Mfb_bioassay.Benchmarks.cpa ()) (8, 0, 0, 2)
let synthetic1 () = make (Mfb_bioassay.Synthetic.synthetic1 ()) (3, 3, 2, 1)
let synthetic2 () = make (Mfb_bioassay.Synthetic.synthetic2 ()) (5, 2, 2, 2)
let synthetic3 () = make (Mfb_bioassay.Synthetic.synthetic3 ()) (6, 4, 4, 2)
let synthetic4 () = make (Mfb_bioassay.Synthetic.synthetic4 ()) (7, 4, 4, 3)

let all () =
  [ pcr (); ivd (); cpa (); synthetic1 (); synthetic2 (); synthetic3 ();
    synthetic4 () ]

let names =
  [ "PCR"; "IVD"; "CPA"; "Synthetic1"; "Synthetic2"; "Synthetic3";
    "Synthetic4" ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun inst ->
      String.lowercase_ascii (Mfb_bioassay.Seq_graph.name inst.graph) = lower)
    (all ())
