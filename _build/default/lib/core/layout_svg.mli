(** SVG rendering of a synthesised chip: component footprints (coloured by
    kind, labelled), the routed channel network, and component ports.
    Self-contained SVG 1.1, no external assets. *)

val render : ?cell_px:int -> Result.t -> string
(** [render ?cell_px result] draws the chip at [cell_px] pixels per grid
    cell (default 24). *)

val to_file : ?cell_px:int -> string -> Result.t -> unit
