let kind_fill = function
  | Mfb_bioassay.Operation.Mix -> "#4e79a7"
  | Mfb_bioassay.Operation.Heat -> "#e15759"
  | Mfb_bioassay.Operation.Filter -> "#76b7b2"
  | Mfb_bioassay.Operation.Detect -> "#f28e2b"

let render ?(cell_px = 24) (r : Result.t) =
  let chip = r.chip in
  let grid = r.routing.Mfb_route.Routed.grid in
  let px n = n * cell_px in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    (px chip.width)
    (px chip.height + 24)
    (px chip.width)
    (px chip.height + 24);
  out "<rect width=\"%d\" height=\"%d\" fill=\"#f7f5f0\"/>\n" (px chip.width)
    (px chip.height);
  (* Channel cells. *)
  List.iter
    (fun (x, y) ->
      out
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#b6d0e8\" \
         stroke=\"#8ab\" stroke-width=\"1\"/>\n"
        (px x) (px y) cell_px cell_px)
    (Mfb_route.Rgrid.used_cells grid);
  (* Grid lines (light). *)
  for x = 0 to chip.width do
    out
      "<line x1=\"%d\" y1=\"0\" x2=\"%d\" y2=\"%d\" stroke=\"#e3e0d8\" \
       stroke-width=\"0.5\"/>\n"
      (px x) (px x) (px chip.height)
  done;
  for y = 0 to chip.height do
    out
      "<line x1=\"0\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#e3e0d8\" \
       stroke-width=\"0.5\"/>\n"
      (px y) (px chip.width) (px y)
  done;
  (* Components. *)
  Array.iteri
    (fun i (c : Mfb_component.Component.t) ->
      let x, y, w, h = Mfb_place.Chip.footprint chip i in
      out
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
         stroke=\"#333\" stroke-width=\"1.5\" rx=\"4\"/>\n"
        (px x) (px y) (px w) (px h) (kind_fill c.kind);
      out
        "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" font-size=\"%d\" \
         fill=\"white\" text-anchor=\"middle\">%s</text>\n"
        (px x + (px w / 2))
        (px y + (px h / 2) + (cell_px / 4))
        (cell_px / 2)
        (Mfb_component.Component.label c);
      List.iter
        (fun (portx, porty) ->
          out
            "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"#2a2\" \
             stroke=\"#050\"/>\n"
            (px portx + (cell_px / 2))
            (px porty + (cell_px / 2))
            (cell_px / 5))
        (Mfb_route.Rgrid.ports grid i))
    chip.components;
  out
    "<text x=\"4\" y=\"%d\" font-family=\"sans-serif\" font-size=\"14\" \
     fill=\"#333\">%s (%s): %.1f s, %.0f mm of channels</text>\n"
    (px chip.height + 17)
    r.benchmark r.flow r.execution_time r.channel_length_mm;
  out "</svg>\n";
  Buffer.contents buf

let to_file ?cell_px path r =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (render ?cell_px r))
