(** End-to-end physical-synthesis result: the quantities reported in the
    paper's Table I and Figs. 8-9 for one benchmark and one flow. *)

type t = {
  benchmark : string;
  flow : string;                     (** ["ours"] or ["ba"] (or ablations) *)
  schedule : Mfb_schedule.Types.t;   (** final (post-retiming) schedule *)
  chip : Mfb_place.Chip.t;
  routing : Mfb_route.Routed.result;
  execution_time : float;            (** Table I "Execution time (s)" *)
  utilization : float;               (** Table I "Resource utilization", in [0,1] *)
  channel_length_mm : float;         (** Table I "Total channel length (mm)" *)
  channel_cache_time : float;        (** Fig. 8 "total cache time" *)
  channel_wash_time : float;         (** Fig. 9 "total wash time of flow channels" *)
  component_wash_time : float;       (** auxiliary: component washes *)
  cpu_time : float;                  (** Table I "CPU time (s)" *)
}

val of_stages :
  benchmark:string ->
  flow:string ->
  cpu_time:float ->
  schedule:Mfb_schedule.Types.t ->
  chip:Mfb_place.Chip.t ->
  routing:Mfb_route.Routed.result ->
  t
(** Derive all scalar metrics from the three stage outputs. *)

val to_json : t -> Mfb_util.Json.t
(** Scalar metrics only (no schedule/layout dump). *)

val pp_summary : Format.formatter -> t -> unit
