(** Chip-area accounting.

    The paper argues DCSA "effectively reduce[s] the chip area due to the
    removal of dedicated storage" (§II-C2); this module quantifies the
    footprint of a synthesised design, in grid cells. *)

val bounding_box : Result.t -> int * int * int * int
(** [(x, y, w, h)] in grid cells of the smallest rectangle containing
    every component footprint and every used channel cell; the whole grid
    when the design is empty. *)

val used_area_cells : Result.t -> int
(** Cells actually consumed: component footprints plus channel cells. *)

val component_area_cells : Result.t -> int

val channel_area_cells : Result.t -> int

val utilised_fraction : Result.t -> float
(** [used_area_cells / bounding-box area]: how densely the active region
    is packed; [0.] for an empty design. *)

val storage_unit_area_cells : capacity:int -> int
(** Footprint a dedicated storage unit of the given capacity would add
    (one 2x2 cell block per stored fluid plus a 2x2 port/multiplexer
    block): [4 * capacity + 4] — the area DCSA saves.
    @raise Invalid_argument if [capacity < 0]. *)
