(** Discrete-event replay of a synthesised physical design.

    The replay reconstructs the state of the chip — what every component
    is doing, which fluid sits in which channel cell — at any time point,
    independently of the data structures the synthesis stages used to
    build the design.  It serves two purposes:

    - {e verification}: re-check the physical invariants (one fluid per
      cell, one activity per component) at every event boundary, as an
      end-to-end cross-check of scheduler and router;
    - {e visualisation}: render ASCII frames of the chip in motion. *)

type activity =
  | Idle
  | Executing of int   (** operation id *)
  | Holding of int     (** resident output fluid of this operation *)
  | Washing of int     (** flushing the residue of this operation *)

type snapshot = {
  time : float;
  components : activity array;          (** indexed by component id *)
  cells : ((int * int) * Mfb_bioassay.Fluid.t) list;
      (** channel cells currently holding fluid *)
}

type violation = { time : float; message : string }

type t

val create :
  tc:float ->
  chip:Mfb_place.Chip.t ->
  schedule:Mfb_schedule.Types.t ->
  routing:Mfb_route.Routed.result ->
  t

val events : t -> float list
(** All distinct event times (operation starts/finishes, transport
    boundaries, wash boundaries), sorted ascending. *)

val state_at : t -> float -> snapshot

val check : t -> violation list
(** Replay every event boundary and the midpoint of every inter-event
    interval, verifying:

    - no channel cell holds two different fluids at once;
    - no component has two simultaneous activities;
    - every executing component is qualified for its operation. *)

val frame : t -> float -> string
(** ASCII rendering of {!state_at}: components drawn with their kind
    letter (uppercase = executing, lowercase = holding a fluid,
    [~] = washing, [_] = idle), [*] for channel cells holding fluid,
    [.] free. *)
