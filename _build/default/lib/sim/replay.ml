module Types = Mfb_schedule.Types
module Routed = Mfb_route.Routed
module Interval = Mfb_util.Interval

type activity =
  | Idle
  | Executing of int
  | Holding of int
  | Washing of int

type snapshot = {
  time : float;
  components : activity array;
  cells : ((int * int) * Mfb_bioassay.Fluid.t) list;
}

type violation = { time : float; message : string }

type t = {
  tc : float;
  chip : Mfb_place.Chip.t;
  schedule : Types.t;
  occupancy : ((int * int) * Interval.t * Mfb_bioassay.Fluid.t) list;
  removal_of : int -> float option;
      (* when an operation's output left its component, if ever tracked *)
}

let create ~tc ~chip ~(schedule : Types.t) ~(routing : Routed.result) =
  let occupancy =
    List.concat_map
      (fun (task : Routed.task) ->
        List.map
          (fun (xy, iv) -> (xy, iv, task.transport.Types.fluid))
          (Routed.occupancy ~tc task))
      routing.tasks
  in
  let removal_table = Hashtbl.create 16 in
  List.iter
    (fun (tr : Types.transport) ->
      let producer = fst tr.edge in
      let current =
        Option.value ~default:infinity (Hashtbl.find_opt removal_table producer)
      in
      Hashtbl.replace removal_table producer (Float.min current tr.removal))
    schedule.transports;
  (* In-place consumption removes the fluid at the consumer's start. *)
  Array.iteri
    (fun _op (times : Types.op_times) ->
      match times.in_place_parent with
      | Some parent ->
        let current =
          Option.value ~default:infinity (Hashtbl.find_opt removal_table parent)
        in
        Hashtbl.replace removal_table parent (Float.min current times.start)
      | None -> ())
    schedule.times;
  { tc; chip; schedule; occupancy;
    removal_of = (fun op -> Hashtbl.find_opt removal_table op) }

let events sim =
  let times = ref [] in
  let push t = times := t :: !times in
  Array.iter
    (fun (t : Types.op_times) ->
      push t.start;
      push t.finish)
    sim.schedule.times;
  List.iter
    (fun (w : Types.wash_event) ->
      push w.wash_start;
      push (w.wash_start +. w.wash_duration))
    sim.schedule.washes;
  List.iter
    (fun (_, iv, _) ->
      push (Interval.lo iv);
      push (Interval.hi iv))
    sim.occupancy;
  List.sort_uniq Float.compare !times

let activity_at sim c time =
  let executing =
    Array.to_seq sim.schedule.times
    |> Seq.zip (Seq.ints 0)
    |> Seq.find_map (fun (op, (t : Types.op_times)) ->
           if t.component = c && t.start <= time && time < t.finish then
             Some (Executing op)
           else None)
  in
  match executing with
  | Some a -> a
  | None ->
    let washing =
      List.find_map
        (fun (w : Types.wash_event) ->
          if w.component = c && w.wash_start <= time
             && time < w.wash_start +. w.wash_duration
          then Some (Washing w.residue_op)
          else None)
        sim.schedule.washes
    in
    (match washing with
     | Some a -> a
     | None ->
       let holding =
         Array.to_seq sim.schedule.times
         |> Seq.zip (Seq.ints 0)
         |> Seq.find_map (fun (op, (t : Types.op_times)) ->
                if t.component <> c then None
                else begin
                  let removal =
                    Option.value ~default:infinity (sim.removal_of op)
                  in
                  if t.finish <= time && time < removal then Some (Holding op)
                  else None
                end)
       in
       Option.value ~default:Idle holding)

let state_at sim time =
  let n = Array.length sim.schedule.components in
  {
    time;
    components = Array.init n (fun c -> activity_at sim c time);
    cells =
      List.filter_map
        (fun (xy, iv, fluid) ->
          if Interval.contains iv time then Some (xy, fluid) else None)
        sim.occupancy;
  }

let check sim =
  let violations = ref [] in
  let flag time fmt =
    Printf.ksprintf (fun message -> violations := { time; message } :: !violations)
      fmt
  in
  let sample time =
    (* One fluid per channel cell. *)
    let snap = state_at sim time in
    let by_cell = Hashtbl.create 32 in
    List.iter
      (fun (xy, fluid) ->
        match Hashtbl.find_opt by_cell xy with
        | Some (prior : Mfb_bioassay.Fluid.t) ->
          if not (Mfb_bioassay.Fluid.equal prior fluid) then
            flag time "cell (%d,%d) holds %s and %s" (fst xy) (snd xy)
              prior.name fluid.Mfb_bioassay.Fluid.name
        | None -> Hashtbl.replace by_cell xy fluid)
      snap.cells;
    (* Single executing op per component + qualification. *)
    Array.iteri
      (fun c activity ->
        let running =
          Array.to_list sim.schedule.times
          |> List.filteri (fun _ _ -> true)
          |> List.mapi (fun op t -> (op, t))
          |> List.filter (fun (_, (t : Types.op_times)) ->
                 t.component = c && t.start <= time && time < t.finish)
        in
        if List.length running > 1 then
          flag time "component %d runs %d operations at once" c
            (List.length running);
        match activity with
        | Executing op ->
          let comp = sim.schedule.components.(c) in
          let o = Mfb_bioassay.Seq_graph.op sim.schedule.graph op in
          if not (Mfb_component.Component.qualified comp o) then
            flag time "component %d executes unqualified o%d" c op
        | Idle | Holding _ | Washing _ -> ())
      (state_at sim time).components
  in
  let boundaries = events sim in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      sample a;
      sample ((a +. b) /. 2.);
      walk rest
    | [ last ] -> sample last
    | [] -> ()
  in
  walk boundaries;
  List.rev !violations

let kind_char = function
  | Mfb_bioassay.Operation.Mix -> 'M'
  | Mfb_bioassay.Operation.Heat -> 'H'
  | Mfb_bioassay.Operation.Filter -> 'F'
  | Mfb_bioassay.Operation.Detect -> 'D'

let frame sim time =
  let chip = sim.chip in
  let snap = state_at sim time in
  let canvas = Array.make_matrix chip.height chip.width '.' in
  List.iter (fun ((x, y), _) -> canvas.(y).(x) <- '*') snap.cells;
  Array.iteri
    (fun i (c : Mfb_component.Component.t) ->
      let x, y, w, h = Mfb_place.Chip.footprint chip i in
      let ch =
        match snap.components.(i) with
        | Executing _ -> kind_char c.kind
        | Washing _ -> '~'
        | Holding _ -> Char.lowercase_ascii (kind_char c.kind)
        | Idle -> '_'
      in
      for cx = x to x + w - 1 do
        for cy = y to y + h - 1 do
          canvas.(cy).(cx) <- ch
        done
      done)
    chip.components;
  let buf = Buffer.create (chip.width * chip.height * 2) in
  Buffer.add_string buf (Printf.sprintf "t = %.1f s\n" time);
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    canvas;
  Buffer.contents buf
