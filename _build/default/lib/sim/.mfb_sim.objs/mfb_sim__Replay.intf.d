lib/sim/replay.mli: Mfb_bioassay Mfb_place Mfb_route Mfb_schedule
