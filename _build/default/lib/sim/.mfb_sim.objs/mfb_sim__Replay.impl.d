lib/sim/replay.ml: Array Buffer Char Float Hashtbl List Mfb_bioassay Mfb_component Mfb_place Mfb_route Mfb_schedule Mfb_util Option Printf Seq
