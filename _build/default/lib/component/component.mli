(** On-chip components: mixers, heaters, filters, detectors.

    Component kinds mirror operation kinds one-to-one (an operation of
    kind [k] is {e qualified} to run only on a component of kind [k]).
    Footprints are in routing-grid cells. *)

type t = {
  id : int;                 (** dense index within an allocation *)
  kind : Mfb_bioassay.Operation.kind;
  width : int;              (** footprint width in grid cells *)
  height : int;             (** footprint height in grid cells *)
}

val make : id:int -> kind:Mfb_bioassay.Operation.kind -> t
(** A component with the default footprint for its kind
    (Mixer 3x3, Heater 2x2, Filter 2x2, Detector 2x2). *)

val default_footprint : Mfb_bioassay.Operation.kind -> int * int

val qualified : t -> Mfb_bioassay.Operation.t -> bool
(** [qualified c op] is true when [c] can execute [op]. *)

val label : t -> string
(** Human-readable name such as ["Mixer1"] (1-based per kind is not
    tracked; the label is ["<Kind><id>"] with the global id). *)

val pp : Format.formatter -> t -> unit
