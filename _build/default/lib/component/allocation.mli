(** Component allocations: how many components of each kind a design may
    use — the "(Mixers, Heaters, Filters, Detectors)" vectors of the
    paper's Table I. *)

type t = {
  mixers : int;
  heaters : int;
  filters : int;
  detectors : int;
}

val make : mixers:int -> heaters:int -> filters:int -> detectors:int -> t
(** @raise Invalid_argument on a negative count or an all-zero vector. *)

val of_vector : int * int * int * int -> t
(** [of_vector (m, h, f, d)] in Table-I order. *)

val total : t -> int

val count : t -> Mfb_bioassay.Operation.kind -> int

val components : t -> Component.t list
(** The concrete component instances, ids [0 .. total-1], mixers first,
    then heaters, filters, detectors. *)

val covers : t -> Mfb_bioassay.Seq_graph.t -> bool
(** [covers a g] is true when every operation kind occurring in [g] has at
    least one allocated component. *)

val minimal_for : Mfb_bioassay.Seq_graph.t -> t
(** One component per kind that occurs in the graph — the smallest legal
    allocation. *)

val to_string : t -> string
(** Table-I style, e.g. ["(3,0,0,2)"]. *)

val pp : Format.formatter -> t -> unit
