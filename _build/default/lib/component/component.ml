type t = {
  id : int;
  kind : Mfb_bioassay.Operation.kind;
  width : int;
  height : int;
}

let default_footprint = function
  | Mfb_bioassay.Operation.Mix -> (3, 3)
  | Mfb_bioassay.Operation.Heat -> (2, 2)
  | Mfb_bioassay.Operation.Filter -> (2, 2)
  | Mfb_bioassay.Operation.Detect -> (2, 2)

let make ~id ~kind =
  if id < 0 then invalid_arg "Component.make: negative id";
  let width, height = default_footprint kind in
  { id; kind; width; height }

let qualified c (op : Mfb_bioassay.Operation.t) =
  Mfb_bioassay.Operation.equal_kind c.kind op.kind

let kind_name = function
  | Mfb_bioassay.Operation.Mix -> "Mixer"
  | Mfb_bioassay.Operation.Heat -> "Heater"
  | Mfb_bioassay.Operation.Filter -> "Filter"
  | Mfb_bioassay.Operation.Detect -> "Detector"

let label c = Printf.sprintf "%s%d" (kind_name c.kind) c.id

let pp ppf c = Format.fprintf ppf "%s" (label c)
