lib/component/allocation.mli: Component Format Mfb_bioassay
