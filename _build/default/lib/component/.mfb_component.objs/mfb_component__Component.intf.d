lib/component/component.mli: Format Mfb_bioassay
