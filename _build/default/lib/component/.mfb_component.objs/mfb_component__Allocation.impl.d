lib/component/allocation.ml: Array Component Format Fun List Mfb_bioassay Printf
