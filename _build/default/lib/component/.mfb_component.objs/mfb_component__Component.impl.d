lib/component/component.ml: Format Mfb_bioassay Printf
