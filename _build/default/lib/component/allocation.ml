type t = { mixers : int; heaters : int; filters : int; detectors : int }

let make ~mixers ~heaters ~filters ~detectors =
  if mixers < 0 || heaters < 0 || filters < 0 || detectors < 0 then
    invalid_arg "Allocation.make: negative count";
  if mixers + heaters + filters + detectors = 0 then
    invalid_arg "Allocation.make: empty allocation";
  { mixers; heaters; filters; detectors }

let of_vector (m, h, f, d) =
  make ~mixers:m ~heaters:h ~filters:f ~detectors:d

let total a = a.mixers + a.heaters + a.filters + a.detectors

let count a = function
  | Mfb_bioassay.Operation.Mix -> a.mixers
  | Mfb_bioassay.Operation.Heat -> a.heaters
  | Mfb_bioassay.Operation.Filter -> a.filters
  | Mfb_bioassay.Operation.Detect -> a.detectors

let components a =
  let next = ref 0 in
  let batch kind n =
    List.init n (fun _ ->
        let id = !next in
        incr next;
        Component.make ~id ~kind)
  in
  (* Bind each batch in turn: the [next] counter must advance mixers
     first (evaluation order of [@] operands is unspecified). *)
  let mixers = batch Mix a.mixers in
  let heaters = batch Heat a.heaters in
  let filters = batch Filter a.filters in
  let detectors = batch Detect a.detectors in
  mixers @ heaters @ filters @ detectors

let covers a g =
  let counts = Mfb_bioassay.Seq_graph.kind_counts g in
  Array.for_all Fun.id
    (Array.mapi
       (fun i used ->
         used = 0 || count a (Mfb_bioassay.Operation.kind_of_index i) > 0)
       counts)

let minimal_for g =
  let counts = Mfb_bioassay.Seq_graph.kind_counts g in
  let need i = if counts.(i) > 0 then 1 else 0 in
  make ~mixers:(need 0) ~heaters:(need 1) ~filters:(need 2)
    ~detectors:(need 3)

let to_string a =
  Printf.sprintf "(%d,%d,%d,%d)" a.mixers a.heaters a.filters a.detectors

let pp ppf a = Format.pp_print_string ppf (to_string a)
