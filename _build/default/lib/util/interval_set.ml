(* Sorted list of intervals by (lo, hi).  Sets are small (a handful of
   occupation slots per resource), so a list keeps the code simple and the
   constant factors low. *)

type t = Interval.t list

let empty = []

let is_empty s = s = []

let cardinal = List.length

let add iv s =
  if Interval.is_empty iv then s
  else begin
    let rec insert = function
      | [] -> [ iv ]
      | x :: rest as all ->
        if Interval.compare iv x <= 0 then iv :: all else x :: insert rest
    in
    insert s
  end

let first_conflict iv s =
  let rec loop = function
    | [] -> None
    | x :: rest ->
      if Interval.lo x >= Interval.hi iv then None
      else if Interval.overlaps iv x then Some x
      else loop rest
  in
  loop s

let overlaps iv s = first_conflict iv s <> None

let free_from t ~duration s =
  if duration < 0. then invalid_arg "Interval_set.free_from: negative duration";
  let rec loop t = function
    | [] -> t
    | x :: rest ->
      if Interval.hi x <= t then loop t rest
      else if Interval.lo x >= t +. duration then t
      else loop (Interval.hi x) rest
  in
  loop t s

let total_duration s =
  List.fold_left (fun acc iv -> acc +. Interval.duration iv) 0. s

let elements s = s

let of_list ivs = List.fold_left (fun s iv -> add iv s) empty ivs

let pp ppf s =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Interval.pp)
    s
