let sum xs = List.fold_left ( +. ) 0. xs

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let logs = List.map (fun x ->
        if x <= 0. then invalid_arg "Stats.geomean: non-positive value"
        else log x)
        xs
    in
    exp (mean logs)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left Float.min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left Float.max x xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let percent_improvement ~ours ~baseline =
  if baseline = 0. then 0. else (baseline -. ours) /. baseline *. 100.

let percent_increase ~ours ~baseline =
  if baseline = 0. then 0. else (ours -. baseline) /. baseline *. 100.
