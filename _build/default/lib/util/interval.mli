(** Half-open time intervals [\[lo, hi)] over floats.

    Intervals model occupation slots of components and routing cells.  The
    half-open convention means an interval ending at [t] does not conflict
    with one starting at [t]. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi] is the interval [\[lo, hi)].
    @raise Invalid_argument if [hi < lo] or either bound is not finite. *)

val lo : t -> float
val hi : t -> float

val duration : t -> float

val is_empty : t -> bool
(** [is_empty iv] is true when [lo = hi]. *)

val overlaps : t -> t -> bool
(** [overlaps a b] is true when the open intersection of [a] and [b] is
    non-empty.  Empty intervals overlap nothing. *)

val contains : t -> float -> bool
(** [contains iv t] is [lo <= t < hi]. *)

val shift : t -> float -> t
(** [shift iv dt] translates both bounds by [dt]. *)

val hull : t -> t -> t
(** [hull a b] is the smallest interval containing both. *)

val compare : t -> t -> int
(** Lexicographic order on [(lo, hi)]. *)

val pp : Format.formatter -> t -> unit
