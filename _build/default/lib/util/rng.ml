(* Splitmix64 (Steele, Lea, Flood 2014): fast, passes BigCrush, trivially
   seedable — ideal for reproducible experiments. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy rng = { state = rng.state }

let next_int64 rng =
  rng.state <- Int64.add rng.state gamma;
  let z = rng.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let mask = Int64.shift_right_logical (next_int64 rng) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in rng lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int rng (hi - lo + 1)

let float rng bound =
  let bits = Int64.shift_right_logical (next_int64 rng) 11 in
  (* 53 random bits scaled to [0, 1). *)
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool rng = Int64.logand (next_int64 rng) 1L = 1L

let choose rng arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int rng (Array.length arr))

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split rng = { state = next_int64 rng }

let split_n rng n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split rng)
