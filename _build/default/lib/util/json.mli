(** Minimal JSON value model and serializer for exporting experiment
    results; no parsing is needed in this project. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** [to_string ~indent v] serializes [v]; [indent = 0] (default) yields a
    compact single line, a positive indent pretty-prints. *)

val to_channel : ?indent:int -> out_channel -> t -> unit
