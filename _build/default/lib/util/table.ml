type align = Left | Right | Center

type line = Row of string list | Separator

type t = {
  headers : string list;
  mutable aligns : align list;
  mutable lines : line list; (* reversed *)
}

let create ~headers =
  { headers; aligns = List.map (fun _ -> Right) headers; lines = [] }

let set_aligns t aligns =
  if List.length aligns <> List.length t.headers then
    invalid_arg "Table.set_aligns: arity mismatch";
  t.aligns <- aligns

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let gap = width - n in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
    | Center ->
      let left = gap / 2 in
      String.make left ' ' ^ s ^ String.make (gap - left) ' '
  end

let render t =
  let rows = List.rev t.lines in
  let widths =
    List.fold_left
      (fun widths line ->
        match line with
        | Separator -> widths
        | Row cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_row aligns cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i and a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a w cell ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  rule ();
  emit_row (List.map (fun _ -> Center) t.headers) t.headers;
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Row cells -> emit_row t.aligns cells)
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
