(** Mutable binary-heap priority queue.

    Elements are ordered by a user-supplied comparison on priorities; the
    element whose priority compares smallest is popped first.  Use
    [~cmp:(fun a b -> compare b a)] for a max-queue. *)

type ('p, 'a) t

val create : cmp:('p -> 'p -> int) -> ('p, 'a) t
(** [create ~cmp] is an empty queue ordered by [cmp] on priorities. *)

val length : ('p, 'a) t -> int

val is_empty : ('p, 'a) t -> bool

val push : ('p, 'a) t -> 'p -> 'a -> unit
(** [push q p x] inserts [x] with priority [p]. *)

val pop : ('p, 'a) t -> ('p * 'a) option
(** [pop q] removes and returns the minimum-priority binding, or [None]
    when [q] is empty. *)

val peek : ('p, 'a) t -> ('p * 'a) option
(** [peek q] returns the minimum-priority binding without removing it. *)

val to_list : ('p, 'a) t -> ('p * 'a) list
(** [to_list q] is the bindings of [q] in unspecified order; [q] is
    unchanged. *)
