(** Plain-text table rendering for experiment reports.

    Produces aligned ASCII tables in the style of the paper's Table I. *)

type align = Left | Right | Center

type t

val create : headers:string list -> t
(** A table with the given column headers; all columns right-aligned by
    default. *)

val set_aligns : t -> align list -> unit
(** Per-column alignment; the list must match the header count.
    @raise Invalid_argument on length mismatch. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header
    count. *)

val add_separator : t -> unit
(** Insert a horizontal rule before the next row. *)

val render : t -> string
(** The formatted table, newline-terminated. *)

val print : t -> unit
(** [render] to standard output. *)
