type ('p, 'a) t = {
  cmp : 'p -> 'p -> int;
  mutable data : ('p * 'a) array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* Slots beyond [size] are never read, so any existing binding serves as
   filler; the empty-array case is handled at the push site. *)
let grow q filler =
  let capacity = Array.length q.data in
  if q.size >= capacity then
    if capacity = 0 then q.data <- Array.make 16 filler
    else begin
      let data = Array.make (2 * capacity) q.data.(0) in
      Array.blit q.data 0 data 0 q.size;
      q.data <- data
    end

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let pi, _ = q.data.(i) and pp, _ = q.data.(parent) in
    if q.cmp pi pp < 0 then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  let prio j = fst q.data.(j) in
  if left < q.size && q.cmp (prio left) (prio !smallest) < 0 then
    smallest := left;
  if right < q.size && q.cmp (prio right) (prio !smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q p x =
  grow q (p, x);
  q.data.(q.size) <- (p, x);
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let root = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some root
  end

let peek q = if q.size = 0 then None else Some q.data.(0)

let to_list q =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) (q.data.(i) :: acc)
  in
  loop (q.size - 1) []
