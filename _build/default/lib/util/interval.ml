type t = { lo : float; hi : float }

let make lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Interval.make: non-finite bound";
  if hi < lo then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let lo iv = iv.lo
let hi iv = iv.hi
let duration iv = iv.hi -. iv.lo
let is_empty iv = iv.hi = iv.lo
let overlaps a b =
  (not (is_empty a)) && (not (is_empty b)) && a.lo < b.hi && b.lo < a.hi
let contains iv t = iv.lo <= t && t < iv.hi
let shift iv dt = make (iv.lo +. dt) (iv.hi +. dt)
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let compare a b =
  let c = Float.compare a.lo b.lo in
  if c <> 0 then c else Float.compare a.hi b.hi

let pp ppf iv = Format.fprintf ppf "[%g, %g)" iv.lo iv.hi
