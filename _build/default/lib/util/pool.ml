(* Work-stealing fan-out over OCaml 5 domains.

   Tasks are indexed 0..n-1 and handed out through one atomic cursor;
   each worker loops fetch-and-add until the range is exhausted.  Every
   result (or exception) lands in the slot of its task index, so the
   outcome is independent of how the domains interleave. *)

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

(* Outcome slots are written by exactly one worker each (distinct array
   elements), then read after every domain has been joined — no lock is
   needed beyond the join itself. *)
type 'a outcome = Pending | Done of 'a | Failed of exn

let run_indexed ~jobs n f =
  let slots = Array.make n Pending in
  let cursor = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        (slots.(i) <- (match f i with v -> Done v | exception e -> Failed e));
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
  in
  worker ();
  Array.iter Domain.join helpers;
  (* Deterministic failure: the lowest task index wins, not the first
     domain to crash. *)
  Array.iter (function Failed e -> raise e | Pending | Done _ -> ()) slots;
  Array.map
    (function Done v -> v | Pending | Failed _ -> assert false)
    slots

let init ?(jobs = 1) n f =
  if jobs < 1 then invalid_arg "Pool.init: jobs < 1";
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then Array.init n f
  else run_indexed ~jobs n f

let map_array ?jobs f xs = init ?jobs (Array.length xs) (fun i -> f xs.(i))

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))
