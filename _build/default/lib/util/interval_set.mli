(** Ordered collections of disjoint-or-not time slots.

    An interval set records the occupation history of a resource (a routing
    cell, a component).  Insertion keeps the list sorted by start time;
    membership queries answer "is the resource free over [iv]?". *)

type t

val empty : t

val is_empty : t -> bool

val cardinal : t -> int

val add : Interval.t -> t -> t
(** [add iv s] inserts [iv]; empty intervals are ignored.  Overlapping
    intervals are allowed to coexist (occupation by the same task chain). *)

val overlaps : Interval.t -> t -> bool
(** [overlaps iv s] is true when some stored interval overlaps [iv]. *)

val first_conflict : Interval.t -> t -> Interval.t option
(** [first_conflict iv s] is the earliest stored interval overlapping
    [iv], if any. *)

val free_from : float -> duration:float -> t -> float
(** [free_from t ~duration s] is the earliest [t' >= t] such that
    [\[t', t' + duration)] overlaps nothing in [s]. *)

val total_duration : t -> float
(** Sum of durations of all stored intervals (overlaps counted twice). *)

val elements : t -> Interval.t list
(** Stored intervals, sorted by start time. *)

val of_list : Interval.t list -> t

val pp : Format.formatter -> t -> unit
