lib/util/rng.mli:
