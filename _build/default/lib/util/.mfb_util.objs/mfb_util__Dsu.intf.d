lib/util/dsu.mli:
