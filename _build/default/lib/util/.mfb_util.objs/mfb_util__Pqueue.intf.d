lib/util/pqueue.mli:
