lib/util/json.mli:
