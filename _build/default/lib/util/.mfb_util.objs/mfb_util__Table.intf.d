lib/util/table.mli:
