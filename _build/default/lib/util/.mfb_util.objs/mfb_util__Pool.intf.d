lib/util/pool.mli:
