lib/util/interval_set.ml: Format Interval List
