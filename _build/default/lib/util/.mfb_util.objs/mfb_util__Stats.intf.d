lib/util/stats.mli:
