(** Union–find over integer elements [0 .. n-1] with path compression and
    union by rank.  Used to check connectivity of routed channel networks. *)

type t

val create : int -> t
(** [create n] is [n] singleton sets. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
(** Merge the two sets. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets remaining. *)
