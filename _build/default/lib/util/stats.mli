(** Small statistics helpers used by metrics and the benchmark harness. *)

val sum : float list -> float

val mean : float list -> float
(** Mean of a non-empty list; [0.] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; [0.] on the empty list. *)

val minimum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] for fewer than two samples. *)

val percent_improvement : ours:float -> baseline:float -> float
(** [(baseline - ours) / baseline * 100]; [0.] when [baseline = 0]. *)

val percent_increase : ours:float -> baseline:float -> float
(** [(ours - baseline) / baseline * 100]; [0.] when [baseline = 0]. *)
