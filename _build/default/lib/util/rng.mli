(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic parts of the synthesis flow (synthetic benchmark
    generation, simulated annealing) draw from this generator so that every
    experiment is reproducible bit-for-bit from its seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** Independent clone with identical future output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split rng] derives an independent generator, advancing [rng]. *)
