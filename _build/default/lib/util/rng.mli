(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic parts of the synthesis flow (synthetic benchmark
    generation, simulated annealing) draw from this generator so that every
    experiment is reproducible bit-for-bit from its seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** Independent clone with identical future output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split rng] derives an independent generator, advancing [rng]. *)

val split_n : t -> int -> t array
(** [split_n rng n] derives [n] independent generators by repeated
    {!split}, advancing [rng] [n] times.  This is the dispatch side of
    the split-then-reduce discipline used by the parallel synthesis
    entry points: child generators are derived {e sequentially, before}
    any task is handed to a {!Pool} worker, so the stream seen by task
    [i] depends only on the master seed and on [i] — never on how many
    domains execute the tasks.
    @raise Invalid_argument if [n < 0]. *)
