module Component = Mfb_component.Component

type placement = { x : int; y : int; rotated : bool }

type t = {
  width : int;
  height : int;
  components : Component.t array;
  places : placement array;
}

let spacing = 1

let size_for components =
  let area =
    Array.fold_left
      (fun acc (c : Component.t) -> acc + ((c.width + 2) * (c.height + 2)))
      0 components
  in
  let side = max 12 (int_of_float (ceil (sqrt (2.25 *. float_of_int area)))) in
  (side, side)

let dims (c : Component.t) rotated =
  if rotated then (c.height, c.width) else (c.width, c.height)

let footprint chip i =
  let c = chip.components.(i) and p = chip.places.(i) in
  let w, h = dims c p.rotated in
  (p.x, p.y, w, h)

let center chip i =
  let x, y, w, h = footprint chip i in
  (float_of_int x +. (float_of_int w /. 2.),
   float_of_int y +. (float_of_int h /. 2.))

let in_bounds chip i =
  let x, y, w, h = footprint chip i in
  x >= 1 && y >= 1 && x + w <= chip.width - 1 && y + h <= chip.height - 1

let pair_legal chip i j =
  let xi, yi, wi, hi = footprint chip i in
  let xj, yj, wj, hj = footprint chip j in
  (* Expand one rectangle by [spacing] and require disjointness. *)
  xi + wi + spacing <= xj || xj + wj + spacing <= xi
  || yi + hi + spacing <= yj || yj + hj + spacing <= yi

let legal chip =
  let n = Array.length chip.components in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (in_bounds chip i) then ok := false
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (pair_legal chip i j) then ok := false
    done
  done;
  !ok

let manhattan chip i j =
  let xi, yi = center chip i and xj, yj = center chip j in
  Float.abs (xi -. xj) +. Float.abs (yi -. yj)

let blocked_cells chip =
  let cells = ref [] in
  Array.iteri
    (fun i _ ->
      let x, y, w, h = footprint chip i in
      for cx = x to x + w - 1 do
        for cy = y to y + h - 1 do
          cells := (cx, cy) :: !cells
        done
      done)
    chip.components;
  !cells

let copy chip = { chip with places = Array.copy chip.places }

let scanline components =
  let width, height = size_for components in
  let places = Array.make (Array.length components) { x = 1; y = 1; rotated = false } in
  let chip = { width; height; components; places } in
  let cursor_x = ref 1 and cursor_y = ref 1 and row_height = ref 0 in
  Array.iteri
    (fun i (c : Component.t) ->
      if !cursor_x + c.width + spacing > width - 1 then begin
        cursor_x := 1;
        cursor_y := !cursor_y + !row_height + spacing;
        row_height := 0
      end;
      places.(i) <- { x = !cursor_x; y = !cursor_y; rotated = false };
      cursor_x := !cursor_x + c.width + spacing;
      row_height := max !row_height c.height)
    components;
  chip

let random rng components =
  let width, height = size_for components in
  let n = Array.length components in
  let chip =
    { width; height; components;
      places = Array.make n { x = 1; y = 1; rotated = false } }
  in
  let place_one i =
    let c = components.(i) in
    let rec attempt k =
      if k = 0 then false
      else begin
        let rotated = Mfb_util.Rng.bool rng in
        let w, h = dims c rotated in
        let x = 1 + Mfb_util.Rng.int rng (max 1 (width - w - 1)) in
        let y = 1 + Mfb_util.Rng.int rng (max 1 (height - h - 1)) in
        chip.places.(i) <- { x; y; rotated };
        let clash = ref false in
        for j = 0 to i - 1 do
          if not (pair_legal chip i j) then clash := true
        done;
        if in_bounds chip i && not !clash then true else attempt (k - 1)
      end
    in
    attempt 200
  in
  let all_placed =
    let rec loop i = i >= n || (place_one i && loop (i + 1)) in
    loop 0
  in
  if all_placed then chip else scanline components

let pp ppf chip =
  Format.fprintf ppf "@[<v>chip %dx%d@," chip.width chip.height;
  Array.iteri
    (fun i c ->
      let x, y, w, h = footprint chip i in
      Format.fprintf ppf "  %s @@ (%d,%d) %dx%d@,"
        (Component.label c) x y w h)
    chip.components;
  Format.fprintf ppf "@]"
