(** Force-directed placement: the classic quadratic-wirelength relaxation
    with greedy legalization, as an alternative to the paper's simulated
    annealing.

    Components are modelled as points connected by springs whose strength
    is the net's connection priority (Eq. 4); iterating the weighted
    centroid equation pulls connected components together.  The continuous
    solution is then legalized onto the grid by snapping components, in
    decreasing connectivity order, to the nearest legal anchor.

    Deterministic, much faster than annealing, and usually slightly worse
    on Eq. 3 — a useful speed/quality point exposed through
    {!Mfb_core.Flow.run}'s [placement] option. *)

type result = {
  chip : Chip.t;
  energy : float;        (** Eq. 3 + compaction, comparable to
                             {!Annealer.place} *)
  iterations : int;      (** relaxation iterations performed *)
}

val place :
  ?iterations:int ->
  nets:Energy.weighted_net list ->
  Mfb_component.Component.t array ->
  result
(** [place ~nets components] runs up to [iterations] (default 100)
    relaxation sweeps, then legalizes.  The result is always a legal
    placement. *)
