module Types = Mfb_schedule.Types
module Metrics = Mfb_schedule.Metrics

type task = {
  transport : Types.transport;
  concurrency : int;
  wash_time : float;
}

type t = { a : int; b : int; tasks : task list }

let of_schedule (sched : Types.t) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (tr : Types.transport) ->
      let key = (min tr.src tr.dst, max tr.src tr.dst) in
      let task =
        { transport = tr;
          concurrency = Metrics.concurrency sched tr;
          wash_time = Mfb_bioassay.Fluid.wash_time tr.fluid }
      in
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (task :: existing))
    sched.transports;
  Hashtbl.fold
    (fun (a, b) tasks acc ->
      let tasks =
        List.sort
          (fun t1 t2 ->
            Float.compare t1.transport.Types.depart t2.transport.Types.depart)
          tasks
      in
      { a; b; tasks } :: acc)
    tbl []
  |> List.sort (fun n1 n2 -> compare (n1.a, n1.b) (n2.a, n2.b))

let connection_priority ~beta ~gamma net =
  List.fold_left
    (fun acc task ->
      acc +. (beta *. float_of_int task.concurrency) +. (gamma *. task.wash_time))
    0. net.tasks

let task_count nets =
  List.fold_left (fun acc net -> acc + List.length net.tasks) 0 nets

let pp ppf net =
  Format.fprintf ppf "net c%d-c%d (%d tasks)" net.a net.b
    (List.length net.tasks)
