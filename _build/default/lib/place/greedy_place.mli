(** Baseline placement: construction by correction.

    The initial solution places components in id order along scanlines;
    the correction pass repeatedly tries pairwise position swaps and
    keeps any swap that reduces plain (unweighted) wirelength — it is
    oblivious to connection priorities, transport concurrency, and wash
    times, exactly like the paper's baseline BA. *)

val place :
  nets:Energy.weighted_net list ->
  Mfb_component.Component.t array ->
  Chip.t
(** [place ~nets components] is the corrected scanline placement.  The
    [cp] weights in [nets] are ignored (plain wirelength guides the
    correction); only the pair structure is used. *)
