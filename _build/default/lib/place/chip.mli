(** Chip model: a rectangular grid of routing cells with placed
    components.

    A placement assigns each component an anchor cell (top-left corner of
    its footprint) and an orientation.  Components must stay inside the
    chip with a one-cell border margin and keep at least [spacing] empty
    cells between footprints so that flow channels can be routed. *)

type placement = { x : int; y : int; rotated : bool }

type t = {
  width : int;   (** grid width in cells *)
  height : int;  (** grid height in cells *)
  components : Mfb_component.Component.t array;
  places : placement array;  (** indexed like [components] *)
}

val spacing : int
(** Minimum number of empty cells between two component footprints (1). *)

val size_for : Mfb_component.Component.t array -> int * int
(** A square chip large enough to place the components with routing
    space (about 2.25x the total padded component area). *)

val footprint : t -> int -> int * int * int * int
(** [footprint chip i] is [(x, y, w, h)] of component [i] under its
    current placement (width/height swapped when rotated). *)

val center : t -> int -> float * float
(** Center coordinates of a component's footprint. *)

val in_bounds : t -> int -> bool
(** Component [i] lies inside the chip with a one-cell border margin. *)

val pair_legal : t -> int -> int -> bool
(** Components [i] and [j] respect the spacing requirement. *)

val legal : t -> bool
(** All components are in bounds and pairwise spaced. *)

val manhattan : t -> int -> int -> float
(** Manhattan distance between two component centers (the paper's
    [mdis]). *)

val blocked_cells : t -> (int * int) list
(** Cells covered by component footprints (unavailable for routing). *)

val random : Mfb_util.Rng.t -> Mfb_component.Component.t array -> t
(** A random legal placement on a [size_for] chip (rejection sampling
    with a deterministic fallback to scanline placement). *)

val scanline : Mfb_component.Component.t array -> t
(** Deterministic greedy row-by-row placement in component-id order. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
