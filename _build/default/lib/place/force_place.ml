type result = { chip : Chip.t; energy : float; iterations : int }

(* Spring weights per component pair, symmetrised. *)
let springs nets n =
  let w = Array.make_matrix n n 0. in
  List.iter
    (fun { Energy.a; b; cp } ->
      (* A zero-cp net still deserves a faint pull so its endpoints do not
         drift apart during relaxation. *)
      let strength = Float.max cp 0.1 in
      w.(a).(b) <- w.(a).(b) +. strength;
      w.(b).(a) <- w.(b).(a) +. strength)
    nets;
  w

let place ?(iterations = 100) ~nets components =
  let n = Array.length components in
  let width, height = Chip.size_for components in
  let chip =
    { (Chip.scanline components) with width; height }
  in
  if n = 0 then { chip; energy = 0.; iterations = 0 }
  else begin
    let w = springs nets n in
    (* Continuous positions, seeded from the scanline layout so
       disconnected components keep a sensible spot. *)
    let pos = Array.init n (fun i -> Chip.center chip i) in
    let anchor = (float_of_int width /. 2., float_of_int height /. 2.) in
    let performed = ref 0 in
    (let rec relax k =
       if k > 0 then begin
         incr performed;
         let moved = ref 0. in
         for i = 0 to n - 1 do
           let sum_w = ref 0. and sx = ref 0. and sy = ref 0. in
           for j = 0 to n - 1 do
             if w.(i).(j) > 0. then begin
               sum_w := !sum_w +. w.(i).(j);
               sx := !sx +. (w.(i).(j) *. fst pos.(j));
               sy := !sy +. (w.(i).(j) *. snd pos.(j))
             end
           done;
           (* A weak anchor to the chip centre keeps lonely components from
              drifting and regularises the system. *)
           let anchor_w = 0.05 *. Float.max !sum_w 1. in
           let total = !sum_w +. anchor_w in
           let x = (!sx +. (anchor_w *. fst anchor)) /. total in
           let y = (!sy +. (anchor_w *. snd anchor)) /. total in
           let dx = x -. fst pos.(i) and dy = y -. snd pos.(i) in
           moved := !moved +. Float.abs dx +. Float.abs dy;
           pos.(i) <- (x, y)
         done;
         if !moved > 1e-3 then relax (k - 1)
       end
     in
     relax iterations);
    (* Legalize: snap components to grid anchors, most-connected first,
       spiralling out from the desired location until a legal slot is
       found. *)
    let order =
      List.init n Fun.id
      |> List.sort (fun i j ->
             let weight i =
               Array.fold_left ( +. ) 0. w.(i)
             in
             Float.compare (weight j) (weight i))
    in
    let placed = Array.make n false in
    let legal_at i x y =
      chip.places.(i) <- { x; y; rotated = false };
      Chip.in_bounds chip i
      && List.for_all
           (fun j -> (not placed.(j)) || j = i || Chip.pair_legal chip i j)
           (List.init n Fun.id)
    in
    let snap i =
      let cx, cy = pos.(i) in
      let c = components.(i) in
      let desired_x = int_of_float (Float.round (cx -. (float_of_int c.width /. 2.))) in
      let desired_y = int_of_float (Float.round (cy -. (float_of_int c.height /. 2.))) in
      let rec spiral radius =
        if radius > width + height then
          (* Pathological fallback: scanline position is always legal on a
             size_for chip. *)
          ignore (legal_at i chip.places.(i).x chip.places.(i).y)
        else begin
          let candidates = ref [] in
          for dx = -radius to radius do
            for dy = -radius to radius do
              if max (abs dx) (abs dy) = radius then
                candidates := (desired_x + dx, desired_y + dy) :: !candidates
            done
          done;
          let sorted =
            List.sort
              (fun (x1, y1) (x2, y2) ->
                compare (abs (x1 - desired_x) + abs (y1 - desired_y))
                  (abs (x2 - desired_x) + abs (y2 - desired_y)))
              !candidates
          in
          match List.find_opt (fun (x, y) -> legal_at i x y) sorted with
          | Some (x, y) ->
            chip.places.(i) <- { x; y; rotated = false };
            placed.(i) <- true
          | None -> spiral (radius + 1)
        end
      in
      spiral 0
    in
    List.iter snap order;
    (* If spiralling somehow failed for a component (placed = false), fall
       back to the full scanline layout. *)
    let chip =
      if Array.for_all Fun.id placed && Chip.legal chip then chip
      else Chip.scanline components
    in
    { chip; energy = Annealer.objective chip nets; iterations = !performed }
  end
