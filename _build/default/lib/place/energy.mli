(** Placement energy (paper Eq. 3):
    [Energy(P) = sum over nets of mdis(i, j) * cp(i, j)]. *)

type weighted_net = { a : int; b : int; cp : float }

val weigh : beta:float -> gamma:float -> Net.t list -> weighted_net list
(** Precompute connection priorities so that energy evaluation inside the
    annealing loop is a plain weighted-wirelength sum. *)

val uniform : Net.t list -> weighted_net list
(** All connection priorities forced to 1.0 — the ablation that turns
    Eq. 3 into plain half-perimeter-style wirelength. *)

val total : Chip.t -> weighted_net list -> float
(** [total chip nets] is Eq. 3 under the current placement. *)

val wirelength : Chip.t -> weighted_net list -> float
(** Unweighted [sum mdis(i, j)] over the same nets. *)

val compaction : Chip.t -> float
(** [sum mdis(i, j)] over {e all} component pairs — a measure of how
    spread out the placement is.  Added with a small weight to the
    annealing objective so that components without strong nets still pack
    tightly (the paper argues DCSA "effectively reduces chip area"). *)
