(** Routing nets derived from a schedule.

    A net groups all transportation tasks between one unordered pair of
    components; its connection priority (paper Eq. 4) rewards placing the
    pair close together when their tasks run concurrently with many others
    or carry hard-to-wash fluids. *)

type task = {
  transport : Mfb_schedule.Types.transport;
  concurrency : int;   (** nt_k: transports overlapping this one in time *)
  wash_time : float;   (** wt_k: wash time of the transported fluid *)
}

type t = {
  a : int;  (** lower component id *)
  b : int;  (** higher component id *)
  tasks : task list;  (** sorted by departure time *)
}

val of_schedule : Mfb_schedule.Types.t -> t list
(** All nets of a schedule, sorted by [(a, b)]. *)

val connection_priority : beta:float -> gamma:float -> t -> float
(** Paper Eq. 4: [sum_k (beta * nt_k + gamma * wt_k)]. *)

val task_count : t list -> int

val pp : Format.formatter -> t -> unit
