type weighted_net = { a : int; b : int; cp : float }

let weigh ~beta ~gamma nets =
  List.map
    (fun (net : Net.t) ->
      { a = net.a; b = net.b;
        cp = Net.connection_priority ~beta ~gamma net })
    nets

let uniform nets =
  List.map (fun (net : Net.t) -> { a = net.a; b = net.b; cp = 1.0 }) nets

let total chip nets =
  List.fold_left
    (fun acc { a; b; cp } -> acc +. (Chip.manhattan chip a b *. cp))
    0. nets

let wirelength chip nets =
  List.fold_left
    (fun acc { a; b; cp = _ } -> acc +. Chip.manhattan chip a b)
    0. nets

let compaction chip =
  let n = Array.length chip.Chip.components in
  let total = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      total := !total +. Chip.manhattan chip i j
    done
  done;
  !total
