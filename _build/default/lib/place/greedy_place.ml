let try_swap chip i j =
  let pi = chip.Chip.places.(i) and pj = chip.Chip.places.(j) in
  chip.Chip.places.(i) <- { pj with rotated = pi.rotated };
  chip.Chip.places.(j) <- { pi with rotated = pj.rotated };
  let legal =
    Chip.in_bounds chip i && Chip.in_bounds chip j
    && Array.for_all Fun.id
         (Array.mapi
            (fun k _ ->
              (k = i || Chip.pair_legal chip i k)
              && (k = j || k = i || Chip.pair_legal chip j k))
            chip.Chip.components)
  in
  if legal then `Swapped (pi, pj)
  else begin
    chip.Chip.places.(i) <- pi;
    chip.Chip.places.(j) <- pj;
    `Rejected
  end

let place ~nets components =
  let chip = Chip.scanline components in
  let n = Array.length components in
  let cost () = Energy.wirelength chip nets in
  let improved = ref true in
  (* Correction loop: first-improvement pairwise swaps until a full sweep
     finds nothing better. *)
  while !improved do
    improved := false;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let before = cost () in
        match try_swap chip i j with
        | `Rejected -> ()
        | `Swapped (pi, pj) ->
          if cost () < before -. 1e-9 then improved := true
          else begin
            chip.Chip.places.(i) <- pi;
            chip.Chip.places.(j) <- pj
          end
      done
    done
  done;
  chip
