module Rng = Mfb_util.Rng

type undo = unit -> unit

(* A move is legal when the touched components stay in bounds and respect
   spacing against everyone else. *)
let touched_legal chip touched =
  List.for_all
    (fun i ->
      Chip.in_bounds chip i
      && Array.for_all Fun.id
           (Array.mapi
              (fun j _ -> j = i || Chip.pair_legal chip i j)
              chip.Chip.components))
    touched

let finish chip touched undo =
  if touched_legal chip touched then Some undo
  else begin
    undo ();
    None
  end

let translate rng (chip : Chip.t) =
  let n = Array.length chip.components in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let old = chip.places.(i) in
    let x = 1 + Rng.int rng (max 1 (chip.width - 2)) in
    let y = 1 + Rng.int rng (max 1 (chip.height - 2)) in
    chip.places.(i) <- { old with x; y };
    finish chip [ i ] (fun () -> chip.places.(i) <- old)
  end

let rotate rng (chip : Chip.t) =
  let n = Array.length chip.components in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let old = chip.places.(i) in
    chip.places.(i) <- { old with rotated = not old.rotated };
    finish chip [ i ] (fun () -> chip.places.(i) <- old)
  end

let swap rng (chip : Chip.t) =
  let n = Array.length chip.components in
  if n < 2 then None
  else begin
    let i = Rng.int rng n in
    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
    let pi = chip.places.(i) and pj = chip.places.(j) in
    chip.places.(i) <- { pj with rotated = pi.rotated };
    chip.places.(j) <- { pi with rotated = pj.rotated };
    finish chip [ i; j ]
      (fun () ->
        chip.places.(i) <- pi;
        chip.places.(j) <- pj)
  end

let random_move rng chip =
  match Rng.int rng 6 with
  | 0 | 1 | 2 -> translate rng chip
  | 3 -> rotate rng chip
  | 4 | 5 -> swap rng chip
  | _ -> assert false
