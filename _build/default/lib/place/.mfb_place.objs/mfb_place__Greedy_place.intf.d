lib/place/greedy_place.mli: Chip Energy Mfb_component
