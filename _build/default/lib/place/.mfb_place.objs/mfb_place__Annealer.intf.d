lib/place/annealer.mli: Chip Energy Mfb_component Mfb_util
