lib/place/net.mli: Format Mfb_schedule
