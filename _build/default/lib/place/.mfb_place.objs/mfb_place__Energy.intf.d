lib/place/energy.mli: Chip Net
