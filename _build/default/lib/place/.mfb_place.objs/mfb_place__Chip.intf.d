lib/place/chip.mli: Format Mfb_component Mfb_util
