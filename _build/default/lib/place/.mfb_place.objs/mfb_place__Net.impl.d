lib/place/net.ml: Float Format Hashtbl List Mfb_bioassay Mfb_schedule Option
