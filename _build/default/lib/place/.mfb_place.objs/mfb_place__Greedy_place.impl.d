lib/place/greedy_place.ml: Array Chip Energy Fun
