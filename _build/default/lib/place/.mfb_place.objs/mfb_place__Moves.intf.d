lib/place/moves.mli: Chip Mfb_util
