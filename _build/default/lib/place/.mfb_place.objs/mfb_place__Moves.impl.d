lib/place/moves.ml: Array Chip Fun List Mfb_util
