lib/place/force_place.mli: Chip Energy Mfb_component
