lib/place/force_place.ml: Annealer Array Chip Energy Float Fun List
