lib/place/energy.ml: Array Chip List Net
