lib/place/annealer.ml: Array Chip Energy Mfb_util Moves
