lib/place/annealer.ml: Chip Energy Mfb_util Moves
