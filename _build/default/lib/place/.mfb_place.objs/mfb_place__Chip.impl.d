lib/place/chip.ml: Array Float Format Mfb_component Mfb_util
