(** JSON export of schedules, for external tooling (plotters, viewers,
    downstream CAD steps). *)

val to_json : Types.t -> Mfb_util.Json.t
(** Full dump: per-operation bindings and times (with in-place parents),
    transports (endpoints, windows, fluids, cache times), wash events,
    and the makespan. *)

val to_string : ?indent:int -> Types.t -> string
(** [Mfb_util.Json.to_string] of {!to_json}. *)
