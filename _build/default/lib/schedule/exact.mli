(** Exact (branch-and-bound) binding and scheduling for small bioassays.

    Explores every dispatch order and binding choice of the scheduling
    state machine (via {!Engine.Search}, so timing semantics are identical
    to the heuristics) and returns a completion-time-optimal schedule
    within a node budget.  Exponential — intended for assays of up to
    about ten operations, as a quality reference for
    {!Dcsa_scheduler}. *)

type t = {
  schedule : Types.t;   (** best schedule found *)
  optimal : bool;       (** true when the search space was exhausted *)
  explored : int;       (** search nodes expanded *)
}

val schedule :
  ?node_limit:int ->
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  t
(** [schedule ~tc g alloc] minimises the makespan exactly (within
    [node_limit], default 200000 expanded nodes; when the limit is hit,
    [optimal] is false and the best incumbent is returned).  The search
    is seeded with the DCSA heuristic so the result is never worse than
    {!Dcsa_scheduler.schedule}.
    @raise Invalid_argument under the same conditions as
    {!Engine.run}. *)
