(** Scheduling for the {e conventional} FBMB architecture with a dedicated
    storage unit (paper §I / §II-A, Fig. 1(a)) — the architecture DCSA
    replaces.

    Differences from the DCSA engine:

    - a fluid evicted from its component cannot wait in a flow channel; it
      must take a round trip through the storage unit (one [tc] transport
      in, one [tc] transport out);
    - the storage unit has multiplexer-like entrance and exit ports that
      admit {e one fluid at a time} (paper: "this port multiplexing ...
      limits its bandwidth"), so storage traffic serializes;
    - the unit has a bounded number of cells.

    The binding rule is the baseline earliest-ready rule.  Comparing this
    scheduler with {!Dcsa_scheduler} at equal [tc] quantifies the benefit
    the paper claims for distributed channel storage. *)

type t = {
  schedule : Types.t;
      (** bindings and times; transports through storage appear as a
          single logical transport whose [removal] is the moment the fluid
          left its producer *)
  storage_trips : int;       (** fluids that round-tripped through storage *)
  storage_residence : float;
      (** total time fluids spent inside the storage unit (between arrival
          through the entrance port and departure through the exit port) *)
  peak_occupancy : int;      (** maximum cells simultaneously in use *)
  capacity_overflows : int;
      (** evictions that found the unit full and could not be delayed
          behind a known departure (counted, then admitted — see
          implementation notes) *)
}

val schedule :
  tc:float ->
  capacity:int ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  t
(** [schedule ~tc ~capacity g alloc] runs list scheduling under the
    dedicated-storage rules.
    @raise Invalid_argument if [tc <= 0], [capacity < 1], or the
    allocation does not cover the graph. *)
