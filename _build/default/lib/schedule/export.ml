module J = Mfb_util.Json

let op_json op (t : Types.op_times) =
  J.Obj
    ([
       ("op", J.Int op);
       ("component", J.Int t.component);
       ("start", J.Float t.start);
       ("finish", J.Float t.finish);
     ]
    @
    match t.in_place_parent with
    | Some p -> [ ("in_place_parent", J.Int p) ]
    | None -> [])

let transport_json (tr : Types.transport) =
  J.Obj
    [
      ("producer", J.Int (fst tr.edge));
      ("consumer", J.Int (snd tr.edge));
      ("src", J.Int tr.src);
      ("dst", J.Int tr.dst);
      ("removal", J.Float tr.removal);
      ("depart", J.Float tr.depart);
      ("arrive", J.Float tr.arrive);
      ("cache_time", J.Float (Types.transport_cache_time tr));
      ("fluid", J.String tr.fluid.Mfb_bioassay.Fluid.name);
    ]

let wash_json (w : Types.wash_event) =
  J.Obj
    [
      ("component", J.Int w.component);
      ("residue_op", J.Int w.residue_op);
      ("start", J.Float w.wash_start);
      ("duration", J.Float w.wash_duration);
    ]

let to_json (sched : Types.t) =
  J.Obj
    [
      ("assay", J.String (Mfb_bioassay.Seq_graph.name sched.graph));
      ( "allocation",
        J.String (Mfb_component.Allocation.to_string sched.allocation) );
      ("makespan", J.Float sched.makespan);
      ( "operations",
        J.List (Array.to_list (Array.mapi op_json sched.times)) );
      ("transports", J.List (List.map transport_json sched.transports));
      ("washes", J.List (List.map wash_json sched.washes));
    ]

let to_string ?indent sched = J.to_string ?indent (to_json sched)
