let schedule ~tc graph allocation = Engine.run ~case1:true ~tc graph allocation
