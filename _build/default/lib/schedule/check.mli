(** Structural and timing legality checks for schedules.

    Used by the test-suite and as a debugging aid: a schedule produced by
    {!Engine.run} must always pass. *)

type violation = {
  code : string;     (** stable machine-readable identifier *)
  message : string;  (** human-readable description *)
}

val validate : tc:float -> Types.t -> violation list
(** [validate ~tc sched] returns all detected violations (empty when the
    schedule is legal):

    - ["binding"]: an operation runs on a component of the wrong kind;
    - ["dependency"]: a child starts before [finish parent + tc]
      (or before [finish parent] for in-place consumption);
    - ["overlap"]: two operations overlap in time on one component;
    - ["wash"]: consecutive non-in-place operations on a component are
      separated by less than the residue's wash time;
    - ["transport"]: a transport window is inconsistent
      ([removal > depart], [arrive <> depart + tc], wrong endpoints);
    - ["makespan"]: [makespan] is not the maximum finish time. *)

val is_legal : tc:float -> Types.t -> bool

val pp_violation : Format.formatter -> violation -> unit
