module Search = Engine.Search

type t = { schedule : Types.t; optimal : bool; explored : int }

let schedule ?(node_limit = 200_000) ~tc graph allocation =
  (* Seed the incumbent with the heuristic so pruning bites immediately
     and the result can never regress below it. *)
  let heuristic = Engine.run ~case1:true ~tc graph allocation in
  let best = ref heuristic in
  let best_makespan = ref heuristic.makespan in
  let explored = ref 0 in
  let exhausted = ref true in
  let rec branch snap =
    if !explored >= node_limit then exhausted := false
    else begin
      incr explored;
      if Search.complete snap then begin
        let makespan = Search.current_makespan snap in
        if makespan < !best_makespan -. 1e-9 then begin
          best_makespan := makespan;
          best := Search.to_schedule snap
        end
      end
      else if Search.lower_bound snap < !best_makespan -. 1e-9 then begin
        let expand op =
          List.iter
            (fun choice -> branch (Search.apply snap op choice))
            (Search.candidates snap op)
        in
        List.iter expand (Search.ready_ops snap)
      end
    end
  in
  branch (Search.init ~tc graph allocation);
  { schedule = !best; optimal = !exhausted; explored = !explored }
