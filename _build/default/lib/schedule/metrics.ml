let completion_time (sched : Types.t) = sched.makespan

let busy_time (sched : Types.t) c =
  Array.fold_left
    (fun acc (t : Types.op_times) ->
      if t.component = c then acc +. (t.finish -. t.start) else acc)
    0. sched.times

let resource_utilization (sched : Types.t) =
  let n = Array.length sched.components in
  if n = 0 then 0.
  else begin
    let per_component c =
      let ops = Types.ops_on_component sched c in
      match ops with
      | [] -> 0.
      | (_, first) :: _ ->
        let last =
          List.fold_left
            (fun acc (_, (t : Types.op_times)) -> Float.max acc t.finish)
            first.finish ops
        in
        let active = busy_time sched c in
        let window = last -. first.start in
        if window <= 0. then 0. else active /. window
    in
    let total =
      Array.fold_left (fun acc comp ->
          acc +. per_component comp.Mfb_component.Component.id)
        0. sched.components
    in
    total /. float_of_int n
  end

let total_channel_cache_time (sched : Types.t) =
  List.fold_left
    (fun acc tr -> acc +. Types.transport_cache_time tr)
    0. sched.transports

let total_component_wash_time (sched : Types.t) =
  List.fold_left
    (fun acc (w : Types.wash_event) -> acc +. w.wash_duration)
    0. sched.washes

let transport_count (sched : Types.t) = List.length sched.transports

let in_place_count (sched : Types.t) =
  Array.fold_left
    (fun acc (t : Types.op_times) ->
      if t.in_place_parent <> None then acc + 1 else acc)
    0 sched.times

let concurrency (sched : Types.t) tr =
  let iv = Types.transport_interval tr in
  List.fold_left
    (fun acc other ->
      if other == tr then acc
      else if Mfb_util.Interval.overlaps iv (Types.transport_interval other)
      then acc + 1
      else acc)
    0 sched.transports
