(** Schedule-level metrics reported in the paper's evaluation. *)

val completion_time : Types.t -> float
(** Completion time of the bioassay (Table I "Execution time"). *)

val resource_utilization : Types.t -> float
(** Paper Eq. 1: the mean over all allocated components of
    [actual execution time / (last finish - first start)]; a component
    that executes nothing contributes 0.  Result in [\[0, 1\]]. *)

val total_channel_cache_time : Types.t -> float
(** Sum over transports of the time the fluid waited inside a channel
    before departing to its consumer (Fig. 8). *)

val total_component_wash_time : Types.t -> float
(** Sum of all component wash durations incurred by the schedule. *)

val transport_count : Types.t -> int

val in_place_count : Types.t -> int
(** Number of operations that consumed a parent output in place
    (transports and washes eliminated by Case I). *)

val busy_time : Types.t -> int -> float
(** Total execution time bound to a given component. *)

val concurrency : Types.t -> Types.transport -> int
(** Number of other transports whose channel occupation overlaps the
    given one — the [nt_k] term of the paper's Eq. 4. *)
