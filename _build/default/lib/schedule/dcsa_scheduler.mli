(** The paper's Algorithm 1: resource-utilization-aware binding and
    scheduling for DCSA biochips (Case I / Case II binding strategy over
    priority-driven list scheduling). *)

val schedule :
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  Types.t
(** See {!Engine.run} with [case1 = true]. *)
