module Seq_graph = Mfb_bioassay.Seq_graph
module Operation = Mfb_bioassay.Operation

(* Retiming keeps every structural decision of the input schedule (bindings,
   per-component order, in-place consumption) and recomputes start times
   under inflated transport durations.  Operations never move earlier than
   their original start.  Wash separation between consecutive operations on
   a component stays legal because in DCSA a resident fluid can always be
   evicted into a channel [wash] seconds before the component is needed. *)

let with_transport_delays ?(op_delays = []) (sched : Types.t) ~delays =
  List.iter
    (fun (_, d) ->
      if d < 0. then invalid_arg "Retime.with_transport_delays: negative delay")
    delays;
  List.iter
    (fun (_, d) ->
      if d < 0. then invalid_arg "Retime.with_transport_delays: negative delay")
    op_delays;
  let delay_tbl = Hashtbl.create 16 in
  List.iter (fun (e, d) -> Hashtbl.replace delay_tbl e d) delays;
  let delay_of e = Option.value ~default:0. (Hashtbl.find_opt delay_tbl e) in
  let op_delay_tbl = Hashtbl.create 16 in
  List.iter (fun (op, d) -> Hashtbl.replace op_delay_tbl op d) op_delays;
  let op_delay_of op =
    Option.value ~default:0. (Hashtbl.find_opt op_delay_tbl op)
  in
  let tc =
    match sched.transports with
    | tr :: _ -> tr.arrive -. tr.depart
    | [] -> 0.
  in
  let g = sched.graph in
  let n = Seq_graph.n_ops g in
  let transported = Hashtbl.create 16 in
  List.iter (fun (tr : Types.transport) -> Hashtbl.replace transported tr.edge ())
    sched.transports;
  let wash op = Operation.wash_time (Seq_graph.op g op) in
  (* Per-component execution order from the original schedule. *)
  let predecessor_on_component = Array.make n None in
  let successor_on_component = Array.make n None in
  Array.iter
    (fun (comp : Mfb_component.Component.t) ->
      let rec link = function
        | (a, _) :: ((b, _) :: _ as rest) ->
          predecessor_on_component.(b) <- Some a;
          successor_on_component.(a) <- Some b;
          link rest
        | [ _ ] | [] -> ()
      in
      link (Types.ops_on_component sched comp.id))
    sched.components;
  let start' = Array.make n 0. and finish' = Array.make n 0. in
  let order =
    List.sort
      (fun a b ->
        let ta = sched.times.(a) and tb = sched.times.(b) in
        let c = Float.compare ta.start tb.start in
        if c <> 0 then c else compare a b)
      (List.init n Fun.id)
  in
  let retime op =
    let t = sched.times.(op) in
    let parent_bound p =
      let sep =
        if t.in_place_parent = Some p then 0.
        else if Hashtbl.mem transported (p, op) then tc +. delay_of (p, op)
        else tc
      in
      finish'.(p) +. sep
    in
    let comp_bound =
      match predecessor_on_component.(op) with
      | None -> 0.
      | Some q ->
        let sep = if t.in_place_parent = Some q then 0. else wash q in
        finish'.(q) +. sep
    in
    let s =
      List.fold_left (fun acc p -> Float.max acc (parent_bound p))
        (Float.max (t.start +. op_delay_of op) comp_bound)
        (Seq_graph.parents g op)
    in
    start'.(op) <- s;
    finish'.(op) <- s +. (t.finish -. t.start)
  in
  List.iter retime order;
  (* The fluid of [op] leaves its component at the earliest of: an eviction
     forced by the next operation on the component, or its first consumer's
     departure. *)
  let removal' op =
    let departures =
      List.filter_map
        (fun (tr : Types.transport) ->
          if fst tr.edge = op then Some (start'.(snd tr.edge) -. tc) else None)
        sched.transports
    in
    let eviction =
      match successor_on_component.(op) with
      | Some next when sched.times.(next).in_place_parent <> Some op ->
        Some (Float.max finish'.(op) (start'.(next) -. wash op))
      | Some _ | None -> None
    in
    let in_place_consumption =
      List.find_map
        (fun child ->
          if sched.times.(child).in_place_parent = Some op then
            Some start'.(child)
          else None)
        (Seq_graph.children g op)
    in
    let candidates =
      departures
      @ Option.to_list eviction
      @ Option.to_list in_place_consumption
    in
    match candidates with
    | [] -> finish'.(op) (* sink: product leaves when the op completes *)
    | xs -> List.fold_left Float.min (List.hd xs) xs
  in
  let removal_cache = Hashtbl.create 16 in
  let removal_of op =
    match Hashtbl.find_opt removal_cache op with
    | Some r -> r
    | None ->
      let r = removal' op in
      Hashtbl.replace removal_cache op r;
      r
  in
  let transports =
    List.map
      (fun (tr : Types.transport) ->
        let _, child = tr.edge in
        let arrive = start'.(child) in
        let depart = arrive -. tc in
        let removal = Float.min (removal_of (fst tr.edge)) depart in
        { tr with removal; depart; arrive })
      sched.transports
    |> List.sort (fun (a : Types.transport) b -> Float.compare a.depart b.depart)
  in
  let washes =
    List.map
      (fun (w : Types.wash_event) ->
        { w with wash_start = removal_of w.residue_op })
      sched.washes
    |> List.sort (fun (a : Types.wash_event) b ->
           Float.compare a.wash_start b.wash_start)
  in
  let times =
    Array.mapi
      (fun op (t : Types.op_times) ->
        { t with start = start'.(op); finish = finish'.(op) })
      sched.times
  in
  let makespan = Array.fold_left (fun acc f -> Float.max acc f) 0. finish' in
  { sched with times; transports; washes; makespan }
