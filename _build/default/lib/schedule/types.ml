type transport = {
  edge : int * int;
  src : int;
  dst : int;
  removal : float;
  depart : float;
  arrive : float;
  fluid : Mfb_bioassay.Fluid.t;
}

type wash_event = {
  component : int;
  residue_op : int;
  wash_start : float;
  wash_duration : float;
}

type op_times = {
  component : int;
  start : float;
  finish : float;
  in_place_parent : int option;
}

type t = {
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;
  components : Mfb_component.Component.t array;
  times : op_times array;
  transports : transport list;
  washes : wash_event list;
  makespan : float;
}

let transport_cache_time tr = tr.depart -. tr.removal

let transport_interval tr = Mfb_util.Interval.make tr.removal tr.arrive

let ops_on_component sched c =
  let on_c = ref [] in
  Array.iteri
    (fun op times -> if times.component = c then on_c := (op, times) :: !on_c)
    sched.times;
  List.sort (fun (_, a) (_, b) -> Float.compare a.start b.start) !on_c

let pp_transport ppf tr =
  let src_op, dst_op = tr.edge in
  Format.fprintf ppf "o%d->o%d: c%d->c%d removal=%g depart=%g arrive=%g"
    src_op dst_op tr.src tr.dst tr.removal tr.depart tr.arrive

let pp ppf sched =
  Format.fprintf ppf "@[<v>schedule of %s on %a (makespan %.1f s)@,"
    (Mfb_bioassay.Seq_graph.name sched.graph)
    Mfb_component.Allocation.pp sched.allocation sched.makespan;
  Array.iter
    (fun (c : Mfb_component.Component.t) ->
      let ops = ops_on_component sched c.id in
      if ops <> [] then begin
        Format.fprintf ppf "  %s:" (Mfb_component.Component.label c);
        List.iter
          (fun (op, times) ->
            Format.fprintf ppf " o%d[%g-%g]%s" op times.start times.finish
              (match times.in_place_parent with
               | Some p -> Printf.sprintf "(in-place o%d)" p
               | None -> ""))
          ops;
        Format.fprintf ppf "@,"
      end)
    sched.components;
  Format.fprintf ppf "@]"
