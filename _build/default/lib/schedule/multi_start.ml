type t = {
  schedule : Types.t;
  restarts : int;
  improved_over_first : float;
}

let schedule ?(restarts = 16) ?(noise = 0.25) ~rng ~tc graph allocation =
  if restarts < 1 then invalid_arg "Multi_start.schedule: restarts < 1";
  if noise < 0. then invalid_arg "Multi_start.schedule: negative noise";
  let base = Mfb_bioassay.Seq_graph.priorities graph ~tc in
  let first = Engine.run ~case1:true ~tc graph allocation in
  let best = ref first in
  for _ = 2 to restarts do
    let perturbed =
      Array.map
        (fun p ->
          p *. (1. -. noise +. Mfb_util.Rng.float rng (2. *. noise)))
        base
    in
    let candidate =
      Engine.run ~priorities:perturbed ~case1:true ~tc graph allocation
    in
    if candidate.makespan < !best.Types.makespan -. 1e-9 then
      best := candidate
  done;
  {
    schedule = !best;
    restarts;
    improved_over_first = first.makespan -. !best.Types.makespan;
  }
