(** Re-simulation of a schedule under routing-induced transport delays.

    The baseline's construction-by-correction routing postpones conflicting
    transports.  [with_transport_delays] pushes those postponements back
    through the schedule, keeping every binding and the per-component
    execution order fixed, and never moving any operation earlier than in
    the input schedule.  All timing invariants (dependency separation,
    component exclusivity, wash gaps) are preserved. *)

val with_transport_delays :
  ?op_delays:(int * float) list ->
  Types.t ->
  delays:((int * int) * float) list ->
  Types.t
(** [with_transport_delays sched ~delays] returns a retimed schedule in
    which the transport for edge [e] takes [tc + delay e] instead of
    [tc].  Unknown edges in [delays] are ignored; missing edges default
    to zero delay.  [op_delays] additionally forces individual operations
    to start at least that much later than originally (used for delayed
    inlet dispensing).  Transport windows, wash starts, channel cache
    times and the makespan are recomputed accordingly.
    @raise Invalid_argument on a negative delay. *)
