module Seq_graph = Mfb_bioassay.Seq_graph
module Operation = Mfb_bioassay.Operation
module Allocation = Mfb_component.Allocation
module Component = Mfb_component.Component
module Interval = Mfb_util.Interval
module Interval_set = Mfb_util.Interval_set

type t = {
  schedule : Types.t;
  storage_trips : int;
  storage_residence : float;
  peak_occupancy : int;
  capacity_overflows : int;
}

(* Where the output of a scheduled operation currently is. *)
type location =
  | In_component               (* still inside its producing component *)
  | In_storage of float        (* arrived in the unit at this time *)
  | Gone                       (* consumed, or left for its consumer *)

type fluid_state = {
  home : int;
  produced_at : float;
  mutable copies : int;
  mutable location : location;
  mutable leave : float option; (* departure from storage, once known *)
}

type comp_state = {
  comp : Component.t;
  mutable ready : float;
  mutable resident : int option;
}

type storage = {
  capacity : int;
  mutable port_in : Interval_set.t;   (* entrance occupation *)
  mutable port_out : Interval_set.t;  (* exit occupation *)
  mutable residents : (int * fluid_state) list; (* producer op, state *)
  mutable trips : int;
  mutable residence : float;
  mutable peak : int;
  mutable overflows : int;
}

type state = {
  graph : Seq_graph.t;
  tc : float;
  comps : comp_state array;
  fluids : fluid_state option array;
  times : Types.op_times option array;
  storage : storage;
  mutable transports : Types.transport list;
  mutable washes : Types.wash_event list;
}

let wash_of st op = Operation.wash_time (Seq_graph.op st.graph op)

let fluid_exn st op =
  match st.fluids.(op) with
  | Some fs -> fs
  | None -> invalid_arg (Printf.sprintf "Dedicated_scheduler: op %d unscheduled" op)

let times_exn st op =
  match st.times.(op) with
  | Some times -> times
  | None -> invalid_arg (Printf.sprintf "Dedicated_scheduler: op %d has no times" op)

(* Fluids occupying the unit at time [t]; an unknown departure counts as
   occupying forever. *)
let occupancy_at storage t =
  List.length
    (List.filter
       (fun (_, fs) ->
         match fs.location, fs.leave with
         | In_storage enter, None -> enter <= t
         | In_storage enter, Some leave -> enter <= t && t < leave
         | (In_component | Gone), _ -> false)
       storage.residents)

(* Earliest eviction time >= [t]: the entrance port must be free for the
   [tc]-long transfer and a cell must be available on arrival. *)
let earliest_eviction st ~from:t =
  let storage = st.storage in
  let rec settle t fuel =
    let t' = Interval_set.free_from t ~duration:st.tc storage.port_in in
    let arrival = t' +. st.tc in
    if occupancy_at storage arrival < storage.capacity then t'
    else begin
      (* Wait for the earliest known departure after [arrival]. *)
      let next_leave =
        List.fold_left
          (fun acc (_, fs) ->
            match fs.location, fs.leave with
            | In_storage _, Some leave when leave > arrival ->
              (match acc with
               | Some best -> Some (Float.min best leave)
               | None -> Some leave)
            | _, _ -> acc)
          None storage.residents
      in
      match next_leave with
      | Some leave when fuel > 0 -> settle (Float.max t' (leave -. st.tc)) (fuel - 1)
      | Some _ | None ->
        (* Every occupant's departure is unknown: count the overflow and
           admit — refusing would deadlock list scheduling. *)
        storage.overflows <- storage.overflows + 1;
        t'
    end
  in
  settle t (st.storage.capacity + 4)

(* Commit the eviction of [producer]'s fluid into the storage unit. *)
let evict_to_storage st c producer =
  let fs = fluid_exn st producer in
  let t_evict = earliest_eviction st ~from:fs.produced_at in
  let arrival = t_evict +. st.tc in
  let storage = st.storage in
  storage.port_in <-
    Interval_set.add (Interval.make t_evict arrival) storage.port_in;
  fs.location <- In_storage arrival;
  storage.residents <- (producer, fs) :: storage.residents;
  storage.trips <- storage.trips + 1;
  storage.peak <- max storage.peak (occupancy_at storage arrival);
  let wash = wash_of st producer in
  st.washes <-
    { Types.component = c.comp.id; residue_op = producer; wash_start = t_evict;
      wash_duration = wash }
    :: st.washes;
  c.resident <- None;
  c.ready <- Float.max c.ready (t_evict +. wash);
  t_evict

let in_place_candidate st c ~parents =
  match c.resident with
  | None -> None
  | Some producer ->
    let fs = fluid_exn st producer in
    if fs.copies = 1 && List.mem producer parents then Some producer
    else None

(* Earliest start allowed on [c] (Eq. 2 with storage-eviction cost). *)
let availability st c ~consumable_parent =
  match c.resident with
  | None -> c.ready
  | Some producer ->
    let fs = fluid_exn st producer in
    if consumable_parent = Some producer then fs.produced_at
    else begin
      let t_evict = earliest_eviction st ~from:fs.produced_at in
      t_evict +. wash_of st producer
    end

(* The earliest time the input from [parent] can arrive at [dst], given a
   tentative consumer start: direct transports need [finish + tc]; fluids
   already in storage need a free exit-port slot. *)
let arrival_bound st ~parent ~start =
  let fs = fluid_exn st parent in
  match fs.location with
  | In_storage enter ->
    let desired_leave = Float.max enter (start -. st.tc) in
    let leave =
      Interval_set.free_from desired_leave ~duration:st.tc st.storage.port_out
    in
    leave +. st.tc
  | In_component | Gone -> (times_exn st parent).finish +. st.tc

let record_transport st ~parent ~child ~dst ~start ~removal =
  let fs = fluid_exn st parent in
  if fs.home <> dst || removal < start -. st.tc -. 1e-9 then
    st.transports <-
      { Types.edge = (parent, child); src = fs.home; dst; removal;
        depart = start -. st.tc; arrive = start;
        fluid = (Seq_graph.op st.graph parent).output }
      :: st.transports

let consume st ~op ~start c parent ~in_place =
  let fs = fluid_exn st parent in
  fs.copies <- fs.copies - 1;
  if in_place = Some parent then fs.location <- Gone
  else begin
    match fs.location with
    | In_storage enter ->
      let leave = start -. st.tc in
      st.storage.port_out <-
        Interval_set.add (Interval.make leave (leave +. st.tc))
          st.storage.port_out;
      fs.leave <- Some leave;
      fs.location <- Gone;
      st.storage.residence <- st.storage.residence +. (leave -. enter);
      record_transport st ~parent ~child:op ~dst:c.comp.id ~start
        ~removal:(enter -. st.tc)
    | In_component ->
      (* Direct component-to-component transport. *)
      let depart = start -. st.tc in
      let home = st.comps.(fs.home) in
      let wash = wash_of st parent in
      st.washes <-
        { Types.component = fs.home; residue_op = parent; wash_start = depart;
          wash_duration = wash }
        :: st.washes;
      if home.resident = Some parent then home.resident <- None;
      home.ready <- Float.max home.ready (depart +. wash);
      fs.location <- Gone;
      record_transport st ~parent ~child:op ~dst:c.comp.id ~start ~removal:depart
    | Gone ->
      (* Another copy already moved the volume; model the remaining copy as
         departing with it (multi-consumer simplification, see engine). *)
      record_transport st ~parent ~child:op ~dst:c.comp.id ~start
        ~removal:(start -. st.tc)
  end

let schedule_on st op c ~in_place =
  let o = Seq_graph.op st.graph op in
  let parents = Seq_graph.parents st.graph op in
  let avail = availability st c ~consumable_parent:in_place in
  (* Fixed-point on the start time: fetching from storage may push the
     start past a busy exit-port window, which may change the next fetch
     slot. *)
  let rec settle start fuel =
    let bound =
      List.fold_left
        (fun acc parent ->
          let b =
            if in_place = Some parent then (times_exn st parent).finish
            else arrival_bound st ~parent ~start
          in
          Float.max acc b)
        avail parents
    in
    let bound = Float.max bound 0. in
    if bound <= start +. 1e-9 || fuel = 0 then Float.max start bound
    else settle bound (fuel - 1)
  in
  let start = settle 0. 16 in
  let finish = start +. o.duration in
  (match c.resident with
   | Some producer when in_place = Some producer -> c.resident <- None
   | Some producer -> ignore (evict_to_storage st c producer)
   | None -> ());
  List.iter (fun parent -> consume st ~op ~start c parent ~in_place) parents;
  c.ready <- finish;
  let out_degree = List.length (Seq_graph.children st.graph op) in
  let fs =
    { home = c.comp.id; produced_at = finish; copies = out_degree;
      location = In_component; leave = None }
  in
  st.fluids.(op) <- Some fs;
  if out_degree = 0 then begin
    fs.location <- Gone;
    let wash = wash_of st op in
    st.washes <-
      { Types.component = c.comp.id; residue_op = op; wash_start = finish;
        wash_duration = wash }
      :: st.washes;
    c.ready <- finish +. wash
  end
  else c.resident <- Some op;
  st.times.(op) <-
    Some { Types.component = c.comp.id; start; finish; in_place_parent = in_place }

(* Earliest-ready binding (the conventional architecture uses the plain
   rule; in-place consumption still applies when it happens to be free). *)
let choose_component st op =
  let o = Seq_graph.op st.graph op in
  let parents = Seq_graph.parents st.graph op in
  let qualified =
    Array.to_list st.comps
    |> List.filter (fun c -> Operation.equal_kind c.comp.kind o.kind)
  in
  if qualified = [] then
    invalid_arg
      (Printf.sprintf "Dedicated_scheduler: no %s allocated"
         (Operation.kind_to_string o.kind));
  let scored =
    List.map
      (fun c ->
        let consumable = in_place_candidate st c ~parents in
        (availability st c ~consumable_parent:consumable, c, consumable))
      qualified
  in
  match
    List.sort
      (fun (a1, c1, _) (a2, c2, _) ->
        let cmp = Float.compare a1 a2 in
        if cmp <> 0 then cmp else compare c1.comp.id c2.comp.id)
      scored
  with
  | (_, c, consumable) :: _ -> (c, consumable)
  | [] -> assert false

let schedule ~tc ~capacity graph allocation =
  if not (Float.is_finite tc) || tc <= 0. then
    invalid_arg "Dedicated_scheduler.schedule: tc must be positive";
  if capacity < 1 then
    invalid_arg "Dedicated_scheduler.schedule: capacity < 1";
  if not (Allocation.covers allocation graph) then
    invalid_arg "Dedicated_scheduler.schedule: allocation does not cover graph";
  let n = Seq_graph.n_ops graph in
  let comps =
    Array.of_list
      (List.map (fun comp -> { comp; ready = 0.; resident = None })
         (Allocation.components allocation))
  in
  let st =
    { graph; tc; comps;
      fluids = Array.make n None;
      times = Array.make n None;
      storage =
        { capacity; port_in = Interval_set.empty;
          port_out = Interval_set.empty; residents = []; trips = 0;
          residence = 0.; peak = 0; overflows = 0 };
      transports = []; washes = [] }
  in
  let prio = Seq_graph.priorities graph ~tc in
  let cmp (p1, i1) (p2, i2) =
    let c = Float.compare p2 p1 in
    if c <> 0 then c else compare i1 i2
  in
  let queue = Mfb_util.Pqueue.create ~cmp in
  let pending = Array.make n 0 in
  List.iter (fun (_, dst) -> pending.(dst) <- pending.(dst) + 1)
    (Seq_graph.edges graph);
  for op = 0 to n - 1 do
    if pending.(op) = 0 then Mfb_util.Pqueue.push queue (prio.(op), op) op
  done;
  let rec drain () =
    match Mfb_util.Pqueue.pop queue with
    | None -> ()
    | Some (_, op) ->
      let c, in_place = choose_component st op in
      schedule_on st op c ~in_place;
      List.iter
        (fun child ->
          pending.(child) <- pending.(child) - 1;
          if pending.(child) = 0 then
            Mfb_util.Pqueue.push queue (prio.(child), child) child)
        (Seq_graph.children graph op);
      drain ()
  in
  drain ();
  let times = Array.map (Option.get) st.times in
  let makespan =
    Array.fold_left (fun acc (t : Types.op_times) -> Float.max acc t.finish)
      0. times
  in
  {
    schedule =
      {
        Types.graph; allocation;
        components = Array.map (fun c -> c.comp) comps;
        times;
        transports =
          List.sort
            (fun (a : Types.transport) b -> Float.compare a.depart b.depart)
            st.transports;
        washes =
          List.sort
            (fun (a : Types.wash_event) b ->
              Float.compare a.wash_start b.wash_start)
            st.washes;
        makespan;
      };
    storage_trips = st.storage.trips;
    storage_residence = st.storage.residence;
    peak_occupancy = st.storage.peak;
    capacity_overflows = st.storage.overflows;
  }
