(** The paper's baseline (BA) binding rule: every ready operation is bound
    to the qualified component with the earliest ready time, with no
    wash-aware Case-I preference. *)

val schedule :
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  Types.t
(** See {!Engine.run} with [case1 = false]. *)
