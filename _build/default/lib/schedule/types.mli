(** Result types of the binding-and-scheduling stage.

    Time model: continuous seconds.  Transport between two distinct
    components takes the user constant [tc] (paper §IV-A).  A fluid stays
    in its producing component as long as possible; if the component is
    needed earlier, the fluid is {e evicted} into a flow channel and the
    time it spends there before departing to its consumer is its
    {e channel cache time} (the quantity of the paper's Fig. 8). *)

type transport = {
  edge : int * int;      (** (producer op, consumer op) *)
  src : int;             (** source component id *)
  dst : int;             (** destination component id; equals [src] only
                             for a loopback: a fluid evicted into a
                             channel and later pulled back *)
  removal : float;       (** when the fluid left the source component *)
  depart : float;        (** when it starts moving towards [dst] *)
  arrive : float;        (** [depart +. tc] = consumer start time *)
  fluid : Mfb_bioassay.Fluid.t;
}
(** Invariants: [removal <= depart < arrive].  The fluid occupies channel
    cells over [\[removal, arrive)); its channel cache time is
    [depart -. removal]. *)

type wash_event = {
  component : int;       (** washed component id *)
  residue_op : int;      (** operation whose output left the residue *)
  wash_start : float;
  wash_duration : float;
}

type op_times = {
  component : int;       (** executing component id *)
  start : float;
  finish : float;        (** [start +. duration] *)
  in_place_parent : int option;
      (** parent whose output was consumed inside [component] without any
          transport (Case I of the paper's Alg. 1) *)
}

type t = {
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;
  components : Mfb_component.Component.t array;
  times : op_times array;        (** indexed by operation id *)
  transports : transport list;   (** sorted by [depart] *)
  washes : wash_event list;      (** component washes, sorted by start *)
  makespan : float;              (** completion time of the bioassay *)
}

val transport_cache_time : transport -> float
(** [depart -. removal]. *)

val transport_interval : transport -> Mfb_util.Interval.t
(** Channel occupation [\[removal, arrive)). *)

val ops_on_component : t -> int -> (int * op_times) list
(** Operations executed on a component, sorted by start time. *)

val pp_transport : Format.formatter -> transport -> unit

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump (Gantt-style listing). *)
