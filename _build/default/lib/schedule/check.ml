module Seq_graph = Mfb_bioassay.Seq_graph
module Operation = Mfb_bioassay.Operation

type violation = { code : string; message : string }

let eps = 1e-9

let validate ~tc (sched : Types.t) =
  let g = sched.graph in
  let violations = ref [] in
  let flag code fmt =
    Printf.ksprintf (fun message ->
        violations := { code; message } :: !violations)
      fmt
  in
  (* Bindings. *)
  Array.iteri
    (fun op (t : Types.op_times) ->
      let o = Seq_graph.op g op in
      let comp = sched.components.(t.component) in
      if not (Mfb_component.Component.qualified comp o) then
        flag "binding" "o%d (%s) bound to %s" op
          (Operation.kind_to_string o.kind)
          (Mfb_component.Component.label comp);
      if t.finish -. t.start +. eps < o.duration then
        flag "binding" "o%d runs %.3f s instead of %.3f s" op
          (t.finish -. t.start) o.duration)
    sched.times;
  (* Dependencies. *)
  List.iter
    (fun (p, o) ->
      let tp = sched.times.(p) and to_ = sched.times.(o) in
      let sep = if to_.in_place_parent = Some p then 0. else tc in
      if to_.start +. eps < tp.finish +. sep then
        flag "dependency" "o%d starts %.3f < o%d finish %.3f + %.3f" o
          to_.start p tp.finish sep)
    (Seq_graph.edges g);
  (* In-place parents must be real parents executed on the same component. *)
  Array.iteri
    (fun op (t : Types.op_times) ->
      match t.in_place_parent with
      | None -> ()
      | Some p ->
        if not (List.mem p (Seq_graph.parents g op)) then
          flag "dependency" "o%d claims in-place parent o%d (not a parent)"
            op p
        else if sched.times.(p).component <> t.component then
          flag "dependency"
            "o%d in-place parent o%d ran on a different component" op p)
    sched.times;
  (* Component exclusivity and wash separation. *)
  Array.iter
    (fun (comp : Mfb_component.Component.t) ->
      let rec walk = function
        | (a, ta) :: (((b, tb) :: _) as rest) ->
          if tb.Types.start +. eps < ta.Types.finish then
            flag "overlap" "o%d and o%d overlap on %s" a b
              (Mfb_component.Component.label comp);
          if tb.Types.in_place_parent <> Some a then begin
            let wash = Operation.wash_time (Seq_graph.op g a) in
            if tb.Types.start +. eps < ta.Types.finish +. wash then
              flag "wash" "o%d starts %.3f < o%d finish %.3f + wash %.3f on %s"
                b tb.Types.start a ta.Types.finish wash
                (Mfb_component.Component.label comp)
          end;
          walk rest
        | [ _ ] | [] -> ()
      in
      walk (Types.ops_on_component sched comp.id))
    sched.components;
  (* Transports. *)
  List.iter
    (fun (tr : Types.transport) ->
      let p, o = tr.edge in
      if tr.removal > tr.depart +. eps then
        flag "transport" "o%d->o%d removal %.3f > depart %.3f" p o tr.removal
          tr.depart;
      if Float.abs (tr.arrive -. tr.depart -. tc) > 1e-6 then
        flag "transport" "o%d->o%d arrive - depart = %.3f <> tc" p o
          (tr.arrive -. tr.depart);
      (* Loopback transports (src = dst) are legal: they model a fluid
         evicted into a channel and pulled back later.  Retiming may shrink
         their channel cache to zero, so no positivity is required. *)
      if sched.times.(p).component <> tr.src then
        flag "transport" "o%d->o%d src %d but producer ran on %d" p o tr.src
          sched.times.(p).component;
      if sched.times.(o).component <> tr.dst then
        flag "transport" "o%d->o%d dst %d but consumer runs on %d" p o tr.dst
          sched.times.(o).component;
      if Float.abs (tr.arrive -. sched.times.(o).start) > 1e-6 then
        flag "transport" "o%d->o%d arrives %.3f but consumer starts %.3f" p o
          tr.arrive sched.times.(o).start;
      if tr.removal +. eps < sched.times.(p).finish then
        flag "transport" "o%d->o%d removal %.3f before producer finish %.3f" p
          o tr.removal sched.times.(p).finish)
    sched.transports;
  (* Makespan. *)
  let max_finish =
    Array.fold_left (fun acc (t : Types.op_times) -> Float.max acc t.finish)
      0. sched.times
  in
  if Float.abs (max_finish -. sched.makespan) > 1e-6 then
    flag "makespan" "makespan %.3f <> max finish %.3f" sched.makespan
      max_finish;
  List.rev !violations

let is_legal ~tc sched = validate ~tc sched = []

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.code v.message
