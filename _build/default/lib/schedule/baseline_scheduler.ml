let schedule ~tc graph allocation = Engine.run ~case1:false ~tc graph allocation
