lib/schedule/dedicated_scheduler.mli: Mfb_bioassay Mfb_component Types
