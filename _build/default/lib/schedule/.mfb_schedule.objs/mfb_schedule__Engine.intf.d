lib/schedule/engine.mli: Mfb_bioassay Mfb_component Types
