lib/schedule/metrics.mli: Types
