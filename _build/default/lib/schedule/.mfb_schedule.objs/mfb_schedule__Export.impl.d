lib/schedule/export.ml: Array List Mfb_bioassay Mfb_component Mfb_util Types
