lib/schedule/check.mli: Format Types
