lib/schedule/engine.ml: Array Float Fun List Mfb_bioassay Mfb_component Mfb_util Option Printf Types
