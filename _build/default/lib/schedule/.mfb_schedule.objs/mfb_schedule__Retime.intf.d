lib/schedule/retime.mli: Types
