lib/schedule/dcsa_scheduler.mli: Mfb_bioassay Mfb_component Types
