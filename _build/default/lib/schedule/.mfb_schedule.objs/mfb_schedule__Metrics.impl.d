lib/schedule/metrics.ml: Array Float List Mfb_component Mfb_util Types
