lib/schedule/exact.ml: Engine List Types
