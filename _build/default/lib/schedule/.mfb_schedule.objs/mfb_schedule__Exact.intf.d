lib/schedule/exact.mli: Mfb_bioassay Mfb_component Types
