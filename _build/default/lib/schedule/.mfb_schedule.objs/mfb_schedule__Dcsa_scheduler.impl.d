lib/schedule/dcsa_scheduler.ml: Engine
