lib/schedule/export.mli: Mfb_util Types
