lib/schedule/retime.ml: Array Float Fun Hashtbl List Mfb_bioassay Mfb_component Option Types
