lib/schedule/types.mli: Format Mfb_bioassay Mfb_component Mfb_util
