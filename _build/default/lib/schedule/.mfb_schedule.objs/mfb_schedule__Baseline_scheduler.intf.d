lib/schedule/baseline_scheduler.mli: Mfb_bioassay Mfb_component Types
