lib/schedule/baseline_scheduler.ml: Engine
