lib/schedule/types.ml: Array Float Format List Mfb_bioassay Mfb_component Mfb_util Printf
