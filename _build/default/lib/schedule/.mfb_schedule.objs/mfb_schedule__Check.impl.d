lib/schedule/check.ml: Array Float Format List Mfb_bioassay Mfb_component Printf Types
