lib/schedule/multi_start.ml: Array Engine Mfb_bioassay Mfb_util Types
