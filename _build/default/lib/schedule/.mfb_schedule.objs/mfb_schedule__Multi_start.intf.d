lib/schedule/multi_start.mli: Mfb_bioassay Mfb_component Mfb_util Types
