lib/schedule/dedicated_scheduler.ml: Array Float List Mfb_bioassay Mfb_component Mfb_util Option Printf Types
