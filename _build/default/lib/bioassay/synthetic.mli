(** Seeded synthetic bioassay generator.

    Generates layered DAGs whose operation-kind distribution follows an
    allocation vector [(mixers, heaters, filters, detectors)], mirroring
    the four synthetic benchmarks of the paper's Table I. *)

type params = {
  n_ops : int;           (** total operations; at least 2 *)
  kind_weights : int array;
      (** relative frequency per kind, indexed by [Operation.kind_index];
          a kind with weight 0 never appears *)
  max_parents : int;     (** fan-in bound per operation (>= 1) *)
  layer_width : int;     (** target operations per DAG layer (>= 1) *)
  same_kind_bias : float;
      (** probability in [\[0, 1\]] that a non-source operation adopts the
          kind of its primary parent — real bioassays chain same-kind
          steps (dilution series, repeated mixing), which is what makes
          the paper's Case-I binding effective *)
  seed : int;
}

val default_params : params
(** 20 ops, weights [|4; 2; 1; 1|], fan-in 2, width 4, bias 0.45,
    seed 1. *)

val generate : name:string -> params -> Seq_graph.t
(** [generate ~name p] builds a random sequencing graph: operations are
    laid out in layers of about [p.layer_width]; every non-source
    operation draws 1 to [p.max_parents] parents from earlier layers
    (always including one from the immediately preceding layer, keeping
    depth meaningful); detection operations are steered towards late
    layers.  Durations: Mix 4-7 s, Heat 3-6 s, Filter 3-5 s,
    Detect 2-4 s.  Output fluids are drawn from {!Fluid.palette}.
    The result is deterministic in [p.seed]. *)

val synthetic1 : unit -> Seq_graph.t
(** 20 operations for allocation (3,3,2,1) — Table I row "Synthetic1". *)

val synthetic2 : unit -> Seq_graph.t
(** 30 operations for allocation (5,2,2,2). *)

val synthetic3 : unit -> Seq_graph.t
(** 40 operations for allocation (6,4,4,2). *)

val synthetic4 : unit -> Seq_graph.t
(** 50 operations for allocation (7,4,4,3). *)

val all : unit -> Seq_graph.t list
