type t = { name : string; diffusion : float; wash_override : float option }

let make ~name ~diffusion =
  if not (Float.is_finite diffusion) || diffusion <= 0. then
    invalid_arg "Fluid.make: diffusion must be positive and finite";
  { name; diffusion; wash_override = None }

let with_wash_time f w =
  if not (Float.is_finite w) || w <= 0. then
    invalid_arg "Fluid.with_wash_time: wash time must be positive and finite";
  { f with wash_override = Some w }

(* Log-linear fit through (1e-5, 0.2 s) and (5e-8, 6.0 s):
   slope = (6.0 - 0.2) / (log10 1e-5 - log10 5e-8) = 5.8 / 2.301. *)
let slope = 5.8 /. 2.3010299956639813
let intercept = 0.2 -. (slope *. 5.)

let wash_time_of_diffusion d =
  if not (Float.is_finite d) || d <= 0. then
    invalid_arg "Fluid.wash_time_of_diffusion: diffusion must be positive";
  let t = (slope *. -.(Float.log10 d)) +. intercept in
  Float.min 12.0 (Float.max 0.2 t)

let wash_time f =
  match f.wash_override with
  | Some w -> w
  | None -> wash_time_of_diffusion f.diffusion

let palette =
  [|
    make ~name:"lysis-buffer" ~diffusion:1e-5;
    make ~name:"glucose-solution" ~diffusion:5e-6;
    make ~name:"reagent-B" ~diffusion:1e-6;
    make ~name:"serum-protein" ~diffusion:4e-7;
    make ~name:"antibody-mix" ~diffusion:1e-7;
    make ~name:"plasmid-dna" ~diffusion:5e-8;
    make ~name:"genomic-dna" ~diffusion:2e-8;
    make ~name:"virus-sample" ~diffusion:1e-8;
  |]

let of_palette i =
  let n = Array.length palette in
  palette.(((i mod n) + n) mod n)

let compare_diffusion a b = Float.compare a.diffusion b.diffusion

let equal a b =
  String.equal a.name b.name && a.diffusion = b.diffusion
  && a.wash_override = b.wash_override

let pp ppf f = Format.fprintf ppf "%s(D=%g)" f.name f.diffusion
