type error = { line : int; message : string }

exception Parse_error of error

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_kind lineno = function
  | "mix" -> Operation.Mix
  | "heat" -> Operation.Heat
  | "filter" -> Operation.Filter
  | "detect" -> Operation.Detect
  | other -> fail lineno "unknown operation kind %S" other

let kind_keyword = function
  | Operation.Mix -> "mix"
  | Operation.Heat -> "heat"
  | Operation.Filter -> "filter"
  | Operation.Detect -> "detect"

let parse_float lineno what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail lineno "invalid %s %S" what s

let parse_int lineno what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail lineno "invalid %s %S" what s

let unquote lineno s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
  else if String.contains s '"' then fail lineno "unbalanced quotes in %S" s
  else s

type line_item =
  | Assay of string
  | Fluid_decl of string * float * float option
  | Op_decl of int * Operation.kind * float * string
  | Edge_decl of int * int

let parse_line lineno line =
  match tokens line with
  | [] -> None
  | "assay" :: rest ->
    (match rest with
     | [ name ] -> Some (Assay (unquote lineno name))
     | _ -> fail lineno "expected: assay \"name\"")
  | [ "fluid"; name; diffusion ] ->
    Some
      (Fluid_decl
         (name, parse_float lineno "diffusion coefficient" diffusion, None))
  | [ "fluid"; name; diffusion; wash ] ->
    Some
      (Fluid_decl
         ( name,
           parse_float lineno "diffusion coefficient" diffusion,
           Some (parse_float lineno "wash time" wash) ))
  | [ "op"; id; kind; duration; fluid ] ->
    Some
      (Op_decl
         ( parse_int lineno "operation id" id,
           parse_kind lineno (String.lowercase_ascii kind),
           parse_float lineno "duration" duration,
           fluid ))
  | [ "edge"; src; dst ] ->
    Some
      (Edge_decl (parse_int lineno "edge source" src,
                  parse_int lineno "edge target" dst))
  | keyword :: _ -> fail lineno "unrecognised directive %S" keyword

let build items =
  let name = ref None in
  let fluids = Hashtbl.create 8 in
  let ops = ref [] in
  let edges = ref [] in
  List.iter
    (fun (lineno, item) ->
      match item with
      | Assay n ->
        if !name <> None then fail lineno "duplicate assay declaration";
        name := Some n
      | Fluid_decl (fluid_name, diffusion, wash) ->
        if Hashtbl.mem fluids fluid_name then
          fail lineno "duplicate fluid %S" fluid_name;
        (match
           let fluid = Fluid.make ~name:fluid_name ~diffusion in
           match wash with
           | Some w -> Fluid.with_wash_time fluid w
           | None -> fluid
         with
         | fluid -> Hashtbl.replace fluids fluid_name fluid
         | exception Invalid_argument msg -> fail lineno "%s" msg)
      | Op_decl (id, kind, duration, fluid_name) ->
        let output =
          match Hashtbl.find_opt fluids fluid_name with
          | Some fluid -> fluid
          | None -> fail lineno "undeclared fluid %S" fluid_name
        in
        (match Operation.make ~id ~kind ~duration ~output with
         | op -> ops := (lineno, op) :: !ops
         | exception Invalid_argument msg -> fail lineno "%s" msg)
      | Edge_decl (src, dst) -> edges := (src, dst) :: !edges)
    items;
  let name =
    match !name with
    | Some n -> n
    | None -> fail 0 "missing assay declaration"
  in
  let ops = List.rev !ops in
  (* Ids must be dense; sort by id and verify. *)
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare a.Operation.id b.Operation.id) ops
  in
  List.iteri
    (fun expected (lineno, (op : Operation.t)) ->
      if op.id <> expected then
        fail lineno "operation ids must be dense: expected %d, found %d"
          expected op.id)
    sorted;
  match
    Seq_graph.create ~name ~ops:(List.map snd sorted) ~edges:(List.rev !edges)
  with
  | g -> g
  | exception Invalid_argument msg -> fail 0 "%s" msg

let parse text =
  try
    let items =
      String.split_on_char '\n' text
      |> List.mapi (fun i line -> (i + 1, strip_comment line))
      |> List.filter_map (fun (lineno, line) ->
             Option.map (fun item -> (lineno, item)) (parse_line lineno line))
    in
    Ok (build items)
  with Parse_error e -> Error e

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error message -> Error { line = 0; message }

let to_string g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "assay \"%s\"\n" (Seq_graph.name g));
  let fluids = Hashtbl.create 8 in
  Array.iter
    (fun (op : Operation.t) ->
      if not (Hashtbl.mem fluids op.output.Fluid.name) then begin
        Hashtbl.replace fluids op.output.Fluid.name ();
        Buffer.add_string buf
          (match op.output.Fluid.wash_override with
           | Some w ->
             Printf.sprintf "fluid %s %g %g\n" op.output.Fluid.name
               op.output.Fluid.diffusion w
           | None ->
             Printf.sprintf "fluid %s %g\n" op.output.Fluid.name
               op.output.Fluid.diffusion)
      end)
    (Seq_graph.ops g);
  Array.iter
    (fun (op : Operation.t) ->
      Buffer.add_string buf
        (Printf.sprintf "op %d %s %g %s\n" op.id (kind_keyword op.kind)
           op.duration op.output.Fluid.name))
    (Seq_graph.ops g);
  List.iter
    (fun (src, dst) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" src dst))
    (List.sort compare (Seq_graph.edges g));
  Buffer.contents buf

let to_file path g =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string g))

let pp_error ppf e =
  if e.line = 0 then Format.fprintf ppf "%s" e.message
  else Format.fprintf ppf "line %d: %s" e.line e.message
