lib/bioassay/volume.ml: Array Float Fun Hashtbl List Seq_graph
