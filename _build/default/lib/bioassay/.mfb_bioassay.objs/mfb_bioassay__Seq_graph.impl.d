lib/bioassay/seq_graph.ml: Array Buffer Float Fluid Format Fun Hashtbl List Operation Printf Queue
