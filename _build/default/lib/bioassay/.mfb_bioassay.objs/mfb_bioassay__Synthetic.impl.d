lib/bioassay/synthetic.ml: Array Fluid List Mfb_util Operation Seq_graph
