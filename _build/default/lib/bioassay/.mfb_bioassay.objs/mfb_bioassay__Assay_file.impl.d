lib/bioassay/assay_file.ml: Array Buffer Fluid Format Hashtbl In_channel List Operation Option Out_channel Printf Seq_graph String
