lib/bioassay/volume.mli: Seq_graph
