lib/bioassay/fluid.mli: Format
