lib/bioassay/assay_file.mli: Format Seq_graph
