lib/bioassay/operation.mli: Fluid Format
