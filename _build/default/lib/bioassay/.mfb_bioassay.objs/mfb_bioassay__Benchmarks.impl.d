lib/bioassay/benchmarks.ml: Fluid Fun List Operation Printf Seq_graph
