lib/bioassay/synthetic.mli: Seq_graph
