lib/bioassay/fluid.ml: Array Float Format String
