lib/bioassay/benchmarks.mli: Seq_graph
