lib/bioassay/seq_graph.mli: Format Operation
