lib/bioassay/operation.ml: Float Fluid Format Printf
