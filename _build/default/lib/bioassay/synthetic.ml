type params = {
  n_ops : int;
  kind_weights : int array;
  max_parents : int;
  layer_width : int;
  same_kind_bias : float;
  seed : int;
}

let default_params =
  { n_ops = 20; kind_weights = [| 4; 2; 1; 1 |]; max_parents = 2;
    layer_width = 4; same_kind_bias = 0.45; seed = 1 }

let validate p =
  if p.n_ops < 2 then invalid_arg "Synthetic.generate: n_ops < 2";
  if Array.length p.kind_weights <> 4 then
    invalid_arg "Synthetic.generate: kind_weights must have 4 entries";
  if Array.for_all (fun w -> w <= 0) p.kind_weights then
    invalid_arg "Synthetic.generate: all kind weights are zero";
  if Array.exists (fun w -> w < 0) p.kind_weights then
    invalid_arg "Synthetic.generate: negative kind weight";
  if p.max_parents < 1 then invalid_arg "Synthetic.generate: max_parents < 1";
  if p.layer_width < 1 then invalid_arg "Synthetic.generate: layer_width < 1";
  if p.same_kind_bias < 0. || p.same_kind_bias > 1. then
    invalid_arg "Synthetic.generate: same_kind_bias outside [0, 1]"

let draw_kind rng weights =
  let total = Array.fold_left ( + ) 0 weights in
  let x = Mfb_util.Rng.int rng total in
  let rec pick i acc =
    let acc = acc + weights.(i) in
    if x < acc then Operation.kind_of_index i else pick (i + 1) acc
  in
  pick 0 0

let duration_for rng kind =
  let lo, hi =
    match (kind : Operation.kind) with
    | Mix -> (4, 7)
    | Heat -> (3, 6)
    | Filter -> (3, 5)
    | Detect -> (2, 4)
  in
  float_of_int (Mfb_util.Rng.int_in rng lo hi)

(* Split [n_ops] into layers of width ~[layer_width] (each layer gets
   between 1 and layer_width ops, biased towards full width). *)
let cut_layers rng ~n_ops ~layer_width =
  let rec loop remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let w = min remaining (Mfb_util.Rng.int_in rng (max 1 (layer_width - 1)) layer_width) in
      loop (remaining - w) (w :: acc)
    end
  in
  loop n_ops []

let generate ~name p =
  validate p;
  let rng = Mfb_util.Rng.create p.seed in
  let layer_widths = cut_layers rng ~n_ops:p.n_ops ~layer_width:p.layer_width in
  let n_layers = List.length layer_widths in
  (* Assign ids layer by layer; remember each op's layer. *)
  let layer_of = Array.make p.n_ops 0 in
  let layer_array =
    let next = ref 0 in
    Array.of_list
      (List.mapi
         (fun li w ->
           Array.init w (fun _ ->
               let id = !next in
               incr next;
               layer_of.(id) <- li;
               id))
         layer_widths)
  in
  (* Edges first: each non-source op gets a primary parent in the previous
     layer (keeping depth meaningful) plus up to [max_parents - 1] extras
     from any earlier layer.  Kinds follow, so that an op can inherit its
     primary parent's kind — the chains Case-I binding thrives on. *)
  let primary_parent = Array.make p.n_ops None in
  let edges = ref [] in
  for li = 1 to n_layers - 1 do
    let prev = layer_array.(li - 1) in
    let pool = Array.concat (Array.to_list (Array.sub layer_array 0 li)) in
    Array.iter
      (fun id ->
        let primary = Mfb_util.Rng.choose rng prev in
        primary_parent.(id) <- Some primary;
        edges := (primary, id) :: !edges;
        let extra = Mfb_util.Rng.int rng p.max_parents in
        let rec add_extra k =
          if k > 0 then begin
            let candidate = Mfb_util.Rng.choose rng pool in
            if candidate <> primary && not (List.mem (candidate, id) !edges)
            then edges := (candidate, id) :: !edges;
            add_extra (k - 1)
          end
        in
        add_extra extra)
      layer_array.(li)
  done;
  let kinds = Array.make p.n_ops Operation.Mix in
  let detect_weight_late li =
    (* Detections concentrate at the bottom of the DAG, like the read-out
       steps of real assays. *)
    if li = n_layers - 1 then 4 * p.kind_weights.(3)
    else if li = n_layers - 2 then p.kind_weights.(3)
    else 0
  in
  let draw_fresh_kind id =
    let weights = Array.copy p.kind_weights in
    weights.(3) <- detect_weight_late layer_of.(id);
    let weights =
      if Array.for_all (fun w -> w = 0) weights then p.kind_weights
      else weights
    in
    draw_kind rng weights
  in
  for id = 0 to p.n_ops - 1 do
    let inherited =
      match primary_parent.(id) with
      | Some parent
        when Mfb_util.Rng.float rng 1.0 < p.same_kind_bias
             && kinds.(parent) <> Operation.Detect ->
        Some kinds.(parent)
      | Some _ | None -> None
    in
    kinds.(id) <-
      (match inherited with Some k -> k | None -> draw_fresh_kind id)
  done;
  (* An assay that may detect should detect at least once: make the last
     operation a read-out when the weights allow but the draw missed. *)
  if p.kind_weights.(3) > 0
     && not (Array.exists (( = ) Operation.Detect) kinds)
  then kinds.(p.n_ops - 1) <- Operation.Detect;
  let ops =
    List.init p.n_ops (fun id ->
        let kind = kinds.(id) in
        let duration = duration_for rng kind in
        let output =
          Fluid.of_palette (Mfb_util.Rng.int rng (Array.length Fluid.palette))
        in
        Operation.make ~id ~kind ~duration ~output)
  in
  Seq_graph.create ~name ~ops ~edges:!edges

let table1 ~name ~n_ops ~weights ~seed =
  generate ~name
    { n_ops; kind_weights = weights; max_parents = 2;
      layer_width = max 3 (n_ops / 6); same_kind_bias = 0.45; seed }

(* Kind weights follow the allocation vectors of Table I so the generated
   workload exercises every allocated component type. *)
let synthetic1 () = table1 ~name:"Synthetic1" ~n_ops:20 ~weights:[| 3; 3; 2; 1 |] ~seed:101
let synthetic2 () = table1 ~name:"Synthetic2" ~n_ops:30 ~weights:[| 5; 2; 2; 2 |] ~seed:102
let synthetic3 () = table1 ~name:"Synthetic3" ~n_ops:40 ~weights:[| 6; 4; 4; 2 |] ~seed:103
let synthetic4 () = table1 ~name:"Synthetic4" ~n_ops:50 ~weights:[| 7; 4; 4; 3 |] ~seed:104

let all () = [ synthetic1 (); synthetic2 (); synthetic3 (); synthetic4 () ]
