type t = {
  name : string;
  ops : Operation.t array;
  edges : (int * int) list;
  parents : int list array;
  children : int list array;
  topo : int list; (* cached topological order *)
}

let compute_topo n children =
  let indegree = Array.make n 0 in
  Array.iter (List.iter (fun c -> indegree.(c) <- indegree.(c) + 1)) children;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    let relax c =
      indegree.(c) <- indegree.(c) - 1;
      if indegree.(c) = 0 then Queue.add c queue
    in
    List.iter relax children.(v)
  done;
  if !seen <> n then invalid_arg "Seq_graph.create: graph contains a cycle";
  List.rev !order

let create ~name ~ops ~edges =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  if n = 0 then invalid_arg "Seq_graph.create: no operations";
  Array.iteri
    (fun i (op : Operation.t) ->
      if op.id <> i then
        invalid_arg
          (Printf.sprintf "Seq_graph.create: op at position %d has id %d" i op.id))
    ops;
  let parents = Array.make n [] and children = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  let add_edge (src, dst) =
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg (Printf.sprintf "Seq_graph.create: bad edge (%d, %d)" src dst);
    if src = dst then
      invalid_arg (Printf.sprintf "Seq_graph.create: self-loop on %d" src);
    if Hashtbl.mem seen (src, dst) then
      invalid_arg (Printf.sprintf "Seq_graph.create: duplicate edge (%d, %d)" src dst);
    Hashtbl.add seen (src, dst) ();
    parents.(dst) <- src :: parents.(dst);
    children.(src) <- dst :: children.(src)
  in
  List.iter add_edge edges;
  let topo = compute_topo n children in
  { name; ops; edges; parents; children; topo }

let name g = g.name

let n_ops g = Array.length g.ops

let op g i =
  if i < 0 || i >= Array.length g.ops then
    invalid_arg (Printf.sprintf "Seq_graph.op: id %d out of range" i);
  g.ops.(i)

let ops g = Array.copy g.ops

let edges g = g.edges

let n_edges g = List.length g.edges

let parents g i = g.parents.(i)

let children g i = g.children.(i)

let sources g =
  List.filter (fun i -> g.parents.(i) = []) (List.init (n_ops g) Fun.id)

let sinks g =
  List.filter (fun i -> g.children.(i) = []) (List.init (n_ops g) Fun.id)

let topo_order g = g.topo

let priorities g ~tc =
  let n = n_ops g in
  let prio = Array.make n 0. in
  let reverse_topo = List.rev g.topo in
  let assign i =
    let tail =
      match g.children.(i) with
      | [] -> 0.
      | cs -> List.fold_left (fun acc c -> Float.max acc (tc +. prio.(c))) 0. cs
    in
    prio.(i) <- g.ops.(i).duration +. tail
  in
  List.iter assign reverse_topo;
  prio

let critical_path g ~tc =
  Array.fold_left Float.max 0. (priorities g ~tc)

let kind_counts g =
  let counts = Array.make 4 0 in
  Array.iter
    (fun (op : Operation.t) ->
      let k = Operation.kind_index op.kind in
      counts.(k) <- counts.(k) + 1)
    g.ops;
  counts

let levels g =
  let n = n_ops g in
  let level = Array.make n 0 in
  List.iter
    (fun op ->
      let parents_level =
        List.fold_left (fun acc p -> max acc (level.(p) + 1)) 0 g.parents.(op)
      in
      level.(op) <- parents_level)
    g.topo;
  level

let depth g =
  1 + Array.fold_left max 0 (levels g)

let width_profile g =
  let level = levels g in
  let counts = Array.make (depth g) 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) level;
  Array.to_list counts

let to_dot g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" g.name);
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box, style=rounded];\n";
  Array.iter
    (fun (op : Operation.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  o%d [label=\"o%d: %s\\n%.1f s, %s\"];\n" op.id
           op.id
           (Operation.kind_to_string op.kind)
           op.duration op.output.Fluid.name))
    g.ops;
  List.iter
    (fun (src, dst) ->
      Buffer.add_string buf (Printf.sprintf "  o%d -> o%d;\n" src dst))
    (List.sort compare g.edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf g =
  Format.fprintf ppf "%s: %d ops, %d edges" g.name (n_ops g) (n_edges g)
