(** Real-life bioassay benchmarks.

    The paper evaluates on three real-life applications (PCR, IVD, CPA)
    taken from the DCSA synthesis literature.  The original input files are
    not public, so the graphs here follow the standard structures used
    across the FBMB literature with the operation counts of the paper's
    Table I (PCR: 7, IVD: 12, CPA: 55); see DESIGN.md §2. *)

val pcr : unit -> Seq_graph.t
(** Polymerase chain reaction — a 7-operation binary mixing tree
    (4 leaf mixes, 2 intermediate mixes, 1 root mix). *)

val ivd : unit -> Seq_graph.t
(** In-vitro diagnostics — 3 samples x 2 assays: 6 mix operations each
    followed by a detection, 12 operations. *)

val cpa : unit -> Seq_graph.t
(** Colorimetric protein assay — a 4-level binary dilution tree
    (15 mixes) whose 8 leaves each feed a 4-mix reagent chain and a final
    detection: 47 mixes + 8 detections = 55 operations. *)

val serial_dilution : ?levels:int -> unit -> Seq_graph.t
(** A serial-dilution ladder, the workhorse of quantitative assays: each
    of the [levels] (default 6) dilution steps mixes the previous
    dilution with buffer and every level is read out by a detection —
    [2 * levels] operations in a comb shape that stresses Case-I
    binding (the mix chain) and detector sharing simultaneously. *)

val fig2_example : unit -> Seq_graph.t
(** The 10-operation illustrative bioassay of the paper's Fig. 2(a),
    reconstructed from the bindings and transports discussed in §II-C
    (o1 -> o5 -> o7 -> o10 is the critical path; o3, o4 -> o6). *)

val all : unit -> Seq_graph.t list
(** [pcr; ivd; cpa] in the order of Table I. *)
