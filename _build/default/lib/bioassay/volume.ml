type t = {
  graph : Seq_graph.t;
  production_of : float array;           (* per op *)
  edge_volumes : (int * int, float) Hashtbl.t;
}

let analyse g =
  let n = Seq_graph.n_ops g in
  let production_of = Array.make n 0. in
  let edge_volumes = Hashtbl.create (Seq_graph.n_edges g) in
  (* Walk the reverse topological order: children's demands are known
     before their parents are visited. *)
  let reverse_topo = List.rev (Seq_graph.topo_order g) in
  List.iter
    (fun op ->
      let demand =
        match Seq_graph.children g op with
        | [] -> 1.0 (* a sink delivers one chamber unit off-chip *)
        | children ->
          List.fold_left
            (fun acc child -> acc +. Hashtbl.find edge_volumes (op, child))
            0. children
      in
      production_of.(op) <- demand;
      let parents = Seq_graph.parents g op in
      let share =
        match parents with
        | [] -> 0.
        | _ -> demand /. float_of_int (List.length parents)
      in
      List.iter
        (fun parent -> Hashtbl.replace edge_volumes (parent, op) share)
        parents)
    reverse_topo;
  { graph = g; production_of; edge_volumes }

let edge_volume t e =
  match Hashtbl.find_opt t.edge_volumes e with
  | Some v -> v
  | None -> raise Not_found

let production t op = t.production_of.(op)

let external_input t op =
  let from_parents =
    List.fold_left
      (fun acc parent -> acc +. edge_volume t (parent, op))
      0.
      (Seq_graph.parents t.graph op)
  in
  Float.max 0. (t.production_of.(op) -. from_parents)

let total_reagent t =
  List.fold_left
    (fun acc op -> acc +. external_input t op)
    0.
    (List.init (Seq_graph.n_ops t.graph) Fun.id)

let batches t op = max 1 (int_of_float (ceil (t.production_of.(op) -. 1e-9)))
