let mix ~id ?(duration = 5.) fluid =
  Operation.make ~id ~kind:Mix ~duration ~output:fluid

let heat ~id ?(duration = 4.) fluid =
  Operation.make ~id ~kind:Heat ~duration ~output:fluid

let detect ~id ?(duration = 3.) fluid =
  Operation.make ~id ~kind:Detect ~duration ~output:fluid

(* Deterministic fluid assignment: cycle through the palette with a stride
   so that neighbouring operations get distinct diffusion coefficients. *)
let fluid_for i = Fluid.of_palette (i * 3)

let pcr () =
  let ops =
    List.init 7 (fun id -> mix ~id (fluid_for id))
  in
  (* Binary mixing tree: leaves 0-3, intermediates 4-5, root 6. *)
  let edges = [ (0, 4); (1, 4); (2, 5); (3, 5); (4, 6); (5, 6) ] in
  Seq_graph.create ~name:"PCR" ~ops ~edges

let ivd () =
  (* 3 samples x 2 assays: mixes 0-5, detections 6-11. *)
  let mixes = List.init 6 (fun id -> mix ~id (fluid_for id)) in
  let detects =
    List.init 6 (fun k -> detect ~id:(6 + k) (fluid_for (6 + k)))
  in
  let edges = List.init 6 (fun k -> (k, 6 + k)) in
  Seq_graph.create ~name:"IVD" ~ops:(mixes @ detects) ~edges

let cpa () =
  (* Dilution tree: node 0 is the root mix; nodes 1-2, 3-6, 7-14 are the
     successive levels (15 mixes, 8 leaves: ids 7-14).  Each leaf feeds a
     4-mix reagent chain and a final detection. *)
  let tree_edges =
    List.concat_map (fun i -> [ (i, (2 * i) + 1); (i, (2 * i) + 2) ])
      [ 0; 1; 2; 3; 4; 5; 6 ]
  in
  let chain_base leaf_rank = 15 + (leaf_rank * 4) in
  let chain_edges =
    List.concat_map
      (fun leaf_rank ->
        let leaf = 7 + leaf_rank in
        let base = chain_base leaf_rank in
        (leaf, base)
        :: List.init 3 (fun k -> (base + k, base + k + 1)))
      (List.init 8 Fun.id)
  in
  let detect_edges =
    List.init 8 (fun leaf_rank -> (chain_base leaf_rank + 3, 47 + leaf_rank))
  in
  let ops =
    List.init 47 (fun id -> mix ~id (fluid_for id))
    @ List.init 8 (fun k -> detect ~id:(47 + k) (fluid_for (47 + k)))
  in
  Seq_graph.create ~name:"CPA" ~ops
    ~edges:(tree_edges @ chain_edges @ detect_edges)

let serial_dilution ?(levels = 6) () =
  if levels < 1 then invalid_arg "Benchmarks.serial_dilution: levels < 1";
  (* Mixes 0 .. levels-1 form the dilution chain; detection for level i is
     operation levels + i. *)
  let dilution i =
    (* Successive dilutions get progressively easier to wash. *)
    Fluid.make
      ~name:(Printf.sprintf "dilution-%d" (i + 1))
      ~diffusion:(1e-7 *. float_of_int (1 lsl min i 20))
  in
  let mixes = List.init levels (fun id -> mix ~id (dilution id)) in
  let detects =
    List.init levels (fun i ->
        detect ~id:(levels + i) (Fluid.of_palette i))
  in
  let chain = List.init (levels - 1) (fun i -> (i, i + 1)) in
  let reads = List.init levels (fun i -> (i, levels + i)) in
  Seq_graph.create ~name:"Serial-dilution" ~ops:(mixes @ detects)
    ~edges:(chain @ reads)

let fig2_example () =
  (* Ten operations; ids here are the paper's o1..o10 minus one.  Mix
     durations 5 s, heat 4 s, detect 1 s reproduce the priority value 21
     for o1 quoted in §IV-A (path o1 -> o5 -> o7 -> o10 -> sink, tc = 2). *)
  let f = Fluid.of_palette in
  let ops =
    [
      mix ~id:0 (f 7);          (* o1: hard-to-wash output (10 s in Fig. 2) *)
      mix ~id:1 (f 0);          (* o2 *)
      mix ~id:2 (f 2);          (* o3 *)
      mix ~id:3 (f 1);          (* o4 *)
      heat ~id:4 ~duration:4. (f 3);  (* o5 *)
      mix ~id:5 (f 4);          (* o6 *)
      mix ~id:6 (f 2);          (* o7 *)
      heat ~id:7 ~duration:4. (f 5);  (* o8 *)
      mix ~id:8 (f 1);          (* o9 *)
      detect ~id:9 ~duration:1. (f 0); (* o10 *)
    ]
  in
  let edges =
    [
      (0, 4); (* o1 -> o5 *)
      (4, 6); (* o5 -> o7 *)
      (1, 6); (* o2 -> o7 *)
      (2, 5); (* o3 -> o6 *)
      (3, 5); (* o4 -> o6 *)
      (5, 7); (* o6 -> o8 *)
      (6, 9); (* o7 -> o10 *)
      (7, 8); (* o8 -> o9 *)
      (8, 9); (* o9 -> o10 *)
    ]
  in
  Seq_graph.create ~name:"Fig2-example" ~ops ~edges

let all () = [ pcr (); ivd (); cpa () ]
