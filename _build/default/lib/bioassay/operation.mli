(** Bioassay operations: the vertices of a sequencing graph.

    Each operation has a kind (which decides the component type that can
    execute it), a fixed execution time, and an output fluid whose
    diffusion coefficient drives wash times downstream. *)

type kind = Mix | Heat | Filter | Detect

type t = {
  id : int;          (** dense index within its sequencing graph *)
  kind : kind;
  duration : float;  (** execution time in seconds; positive *)
  output : Fluid.t;  (** the fluid this operation produces *)
}

val make : id:int -> kind:kind -> duration:float -> output:Fluid.t -> t
(** @raise Invalid_argument if [duration <= 0] or [id < 0]. *)

val kind_to_string : kind -> string

val kind_index : kind -> int
(** Mix -> 0, Heat -> 1, Filter -> 2, Detect -> 3 — the order of the
    allocation vectors [(mixers, heaters, filters, detectors)] in the
    paper's Table I. *)

val kind_of_index : int -> kind
(** Inverse of [kind_index]. @raise Invalid_argument when out of range. *)

val all_kinds : kind array

val equal_kind : kind -> kind -> bool

val wash_time : t -> float
(** Wash time of this operation's output residue. *)

val pp : Format.formatter -> t -> unit
