(** Fluids and the wash-time model.

    Washing a contaminated channel or component is dominated by the
    diffusion coefficient of the contaminant (paper §II-B, citing Hu et
    al.): small molecules (high diffusion coefficient, around 1e-5 cm²/s)
    wash in about 0.2 s, while cells and viruses (around 5e-8 cm²/s) take
    about 6 s.  We fit a log-linear model through those two anchor points
    and clamp it to a physically sensible range. *)

type t = {
  name : string;
  diffusion : float;  (** diffusion coefficient in cm²/s; positive *)
  wash_override : float option;
      (** explicit wash time, overriding the model — the paper's
          Fig. 2(b) tabulates measured wash times per fluid *)
}

val make : name:string -> diffusion:float -> t
(** @raise Invalid_argument if [diffusion <= 0] or not finite. *)

val with_wash_time : t -> float -> t
(** [with_wash_time f w] pins the wash time of [f] to the measured value
    [w], as in the paper's Fig. 2(b) table.
    @raise Invalid_argument if [w <= 0] or not finite. *)

val wash_time_of_diffusion : float -> float
(** [wash_time_of_diffusion d] is the buffer-flush time in seconds needed
    to remove a residue with diffusion coefficient [d] (cm²/s):
    [clamp (2.521 * (-log10 d) - 12.403) 0.2 12.0].
    Anchors: 1e-5 -> 0.2 s, 5e-8 -> 6.0 s. *)

val wash_time : t -> float
(** [wash_time f] is the explicit override when present, else
    [wash_time_of_diffusion f.diffusion]. *)

val palette : t array
(** Representative fluids spanning the diffusion range of the paper's
    examples (lysis buffer down to cell-scale contaminants), used to
    assign output fluids to benchmark operations deterministically. *)

val of_palette : int -> t
(** [of_palette i] is [palette.(i mod Array.length palette)]. *)

val compare_diffusion : t -> t -> int
(** Ascending by diffusion coefficient (hardest-to-wash first). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
