(** Sequencing graphs: directed acyclic graphs of bioassay operations.

    Vertices are operations (dense ids [0 .. n-1]); an edge [(j, i)] means
    operation [i] consumes the output fluid of operation [j]. *)

type t

val create : name:string -> ops:Operation.t list -> edges:(int * int) list -> t
(** [create ~name ~ops ~edges] builds and validates a sequencing graph.
    Operation ids must be exactly [0 .. n-1]; edges must reference valid
    ids, contain no duplicates or self-loops, and form a DAG.
    @raise Invalid_argument otherwise. *)

val name : t -> string

val n_ops : t -> int

val op : t -> int -> Operation.t
(** @raise Invalid_argument on out-of-range id. *)

val ops : t -> Operation.t array
(** Fresh copy of the operation array, indexed by id. *)

val edges : t -> (int * int) list
(** All edges [(parent, child)]. *)

val n_edges : t -> int

val parents : t -> int -> int list
(** Direct predecessors of an operation. *)

val children : t -> int -> int list
(** Direct successors of an operation. *)

val sources : t -> int list
(** Operations with no parents (they consume external input fluids). *)

val sinks : t -> int list
(** Operations with no children (their outputs leave the chip). *)

val topo_order : t -> int list
(** A topological order of all operation ids. *)

val priorities : t -> tc:float -> float array
(** [priorities g ~tc] is, per operation, the length of the longest path
    from the operation to a sink operation, where a vertex contributes its
    duration and every traversed edge of [E] contributes the transport
    constant [tc] (paper §IV-A: the list-scheduling priority value; the
    paper's example yields 21 for o1 of Fig. 2(a) with [tc = 2]). *)

val critical_path : t -> tc:float -> float
(** Maximum over all operations of [priorities]: a lower bound on any
    schedule's completion time. *)

val kind_counts : t -> int array
(** Number of operations of each kind, indexed by [Operation.kind_index]. *)

val depth : t -> int
(** Number of vertices on the longest dependency chain. *)

val width_profile : t -> int list
(** Operations per level when every operation sits at
    [1 + max (level of parents)]; the list is indexed by level. *)

val to_dot : t -> string
(** Graphviz (dot) rendering: operations as boxes labelled with kind,
    duration, and output fluid; edges as dependencies. *)

val pp : Format.formatter -> t -> unit
