type kind = Mix | Heat | Filter | Detect

type t = { id : int; kind : kind; duration : float; output : Fluid.t }

let make ~id ~kind ~duration ~output =
  if id < 0 then invalid_arg "Operation.make: negative id";
  if not (Float.is_finite duration) || duration <= 0. then
    invalid_arg "Operation.make: duration must be positive";
  { id; kind; duration; output }

let kind_to_string = function
  | Mix -> "Mix"
  | Heat -> "Heat"
  | Filter -> "Filter"
  | Detect -> "Detect"

let kind_index = function Mix -> 0 | Heat -> 1 | Filter -> 2 | Detect -> 3

let kind_of_index = function
  | 0 -> Mix
  | 1 -> Heat
  | 2 -> Filter
  | 3 -> Detect
  | n -> invalid_arg (Printf.sprintf "Operation.kind_of_index: %d" n)

let all_kinds = [| Mix; Heat; Filter; Detect |]

let equal_kind (a : kind) (b : kind) = a = b

let wash_time op = Fluid.wash_time op.output

let pp ppf op =
  Format.fprintf ppf "o%d:%s(%.1fs,%a)" op.id (kind_to_string op.kind)
    op.duration Fluid.pp op.output
