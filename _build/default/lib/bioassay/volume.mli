(** Fluid-volume accounting over a sequencing graph.

    Flow-based mixers combine equal volumes of their inputs (a 1:1 mixer
    splits its chamber between the incoming fluids); heaters, filters and
    detectors are volume-preserving single-input steps.  Propagating one
    chamber volume per sink upward through the graph yields the volume
    every edge must carry and the amount of raw input each source
    consumes — the reagent bill of the assay.

    Volumes are in chamber units (1.0 = one component chamber). *)

type t

val analyse : Seq_graph.t -> t
(** Demand-driven analysis: every sink must deliver one chamber unit;
    an operation's demand is the sum over its out-edges (a fan-out of
    [k] must produce [k] chambers, i.e. the operation runs conceptually
    [k] batches); each of the [n] inputs of an operation contributes
    [demand / n]. *)

val edge_volume : t -> int * int -> float
(** Chamber units carried over a dependency edge.
    @raise Not_found for an edge absent from the graph. *)

val production : t -> int -> float
(** Chamber units operation [op] must produce in total. *)

val external_input : t -> int -> float
(** Chamber units of fresh reagent dispensed into source operation [op]
    beyond what its parents deliver ([production - sum of in-edges]);
    for a source this is its whole production. *)

val total_reagent : t -> float
(** Total fresh reagent consumed by the assay (sum of
    {!external_input} over all operations). *)

val batches : t -> int -> int
(** [ceil (production op)] — how many times the operation's component
    chamber must be filled; at least 1. *)
