(** Plain-text serialization of sequencing graphs.

    The format is line-based; [#] starts a comment, blank lines are
    ignored:

    {v
    assay "protein-panel"
    fluid serum 4e-7          # name, diffusion coefficient (cm^2/s)
    fluid virus 1e-8 6.0      # optional third field: measured wash time (s)
    fluid reagent 1e-6
    op 0 mix 5.0 serum        # id, kind, duration (s), output fluid
    op 1 heat 4.0 reagent
    op 2 detect 3.0 serum
    edge 0 1                  # producer, consumer
    edge 1 2
    v}

    Kinds: [mix], [heat], [filter], [detect] (case-insensitive).
    Operation ids must be dense ([0 .. n-1]) but may appear in any
    order. *)

type error = { line : int; message : string }

val parse : string -> (Seq_graph.t, error) result
(** [parse text] reads a sequencing graph from the format above.  All
    structural constraints of {!Seq_graph.create} are enforced and
    reported with the offending line where possible. *)

val of_file : string -> (Seq_graph.t, error) result
(** [of_file path] parses the file's contents; I/O failures are reported
    as [line = 0]. *)

val to_string : Seq_graph.t -> string
(** Serialize a graph; [parse (to_string g)] reconstructs a graph equal in
    name, operations, and edge set. *)

val to_file : string -> Seq_graph.t -> unit

val pp_error : Format.formatter -> error -> unit
