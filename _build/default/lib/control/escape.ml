type t = {
  lines : (int * (int * int) list) list;
  failed : int list;
  total_length : int;
  pins : int;
}

let on_edge ~width ~height (x, y) =
  x = 0 || y = 0 || x = width - 1 || y = height - 1

(* Plain BFS: control lines are unweighted; first edge touch wins. *)
let escape_one ~width ~height ~blocked start =
  let seen = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen start ();
  Queue.add start queue;
  let rec reconstruct xy acc =
    match Hashtbl.find_opt parent xy with
    | None -> xy :: acc
    | Some prev -> reconstruct prev (xy :: acc)
  in
  let rec search () =
    if Queue.is_empty queue then None
    else begin
      let ((x, y) as xy) = Queue.pop queue in
      if on_edge ~width ~height xy then Some (reconstruct xy [])
      else begin
        List.iter
          (fun ((nx, ny) as n) ->
            if nx >= 0 && ny >= 0 && nx < width && ny < height
               && (not (Hashtbl.mem seen n))
               && not (Hashtbl.mem blocked n)
            then begin
              Hashtbl.replace seen n ();
              Hashtbl.replace parent n xy;
              Queue.add n queue
            end)
          [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ];
        search ()
      end
    end
  in
  search ()

let route ?(resolution = 2) ~width ~height valves =
  if resolution < 1 then invalid_arg "Escape.route: resolution < 1";
  let sites = Valve_map.sites valves in
  List.iter
    (fun (x, y) ->
      if x < 0 || y < 0 || x >= width || y >= height then
        invalid_arg
          (Printf.sprintf "Escape.route: valve (%d, %d) outside %dx%d" x y
             width height))
    sites;
  (* Work on the finer control grid; a valve connects at the centre of
     its flow cell. *)
  let width = width * resolution and height = height * resolution in
  let sites =
    List.map
      (fun (x, y) ->
        ((x * resolution) + (resolution / 2),
         (y * resolution) + (resolution / 2)))
      sites
  in
  let blocked = Hashtbl.create 64 in
  (* Every valve is an obstacle for other valves' lines. *)
  List.iter (fun xy -> Hashtbl.replace blocked xy ()) sites;
  let distance_to_edge (x, y) =
    min (min x y) (min (width - 1 - x) (height - 1 - y))
  in
  let order =
    List.mapi (fun i xy -> (i, xy)) sites
    |> List.sort (fun (_, a) (_, b) ->
           compare (distance_to_edge a) (distance_to_edge b))
  in
  let lines = ref [] and failed = ref [] in
  List.iter
    (fun (i, xy) ->
      (* The valve's own cell must be enterable for its own line. *)
      Hashtbl.remove blocked xy;
      (match escape_one ~width ~height ~blocked xy with
       | Some path ->
         List.iter (fun cell -> Hashtbl.replace blocked cell ()) path;
         lines := (i, path) :: !lines
       | None ->
         Hashtbl.replace blocked xy ();
         failed := i :: !failed))
    order;
  let lines = List.rev !lines in
  let pins =
    List.map (fun (_, path) -> List.nth path (List.length path - 1)) lines
    |> List.sort_uniq compare |> List.length
  in
  {
    lines;
    failed = List.rev !failed;
    total_length =
      List.fold_left (fun acc (_, path) -> acc + List.length path) 0 lines;
    pins;
  }
