(** Valve actuation timeline.

    A valve is {e open} while some transport flows through (or caches in)
    its cell; it is closed otherwise.  The timeline is the sequence of
    distinct valve-state vectors at every occupation boundary, from which
    the raw valve-switching count (the quantity Wang et al. minimise) is
    derived. *)

type step = {
  time : float;            (** when this state becomes active *)
  open_valves : int list;  (** valve indices open from [time], sorted *)
}

val steps : tc:float -> Valve_map.t -> Mfb_route.Routed.result -> step list
(** [steps ~tc valves routing] is the actuation timeline, ordered by time,
    starting with an all-closed state at 0 when nothing flows yet;
    consecutive duplicate states are merged. *)

val valve_switching : step list -> int
(** Total number of valve open/close transitions over the timeline
    (symmetric-difference count between consecutive states). *)

val toggle_sequence : step list -> int list
(** The valves that change state, flattened in time order (each
    transition contributes the sorted list of toggled valves) — the event
    sequence fed to {!Mux}. *)
