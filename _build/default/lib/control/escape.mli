(** Control-layer escape routing: connecting every valve to a pin at the
    chip edge.

    The control layer sits above the flow layer, so control lines may
    freely cross flow channels and components — but not each other (a
    single fabrication layer) and not other valves.  Valves are routed
    nearest-to-edge first (the classic escape-routing order); each line
    claims its cells as obstacles for the lines that follow. *)

type t = {
  lines : (int * (int * int) list) list;
      (** (valve index, path from the valve cell to its edge pin,
          inclusive), in routing order *)
  failed : int list;  (** valves that could not escape (congestion) *)
  total_length : int; (** cells across all lines *)
  pins : int;         (** distinct edge cells used *)
}

val route : ?resolution:int -> width:int -> height:int -> Valve_map.t -> t
(** [route ~width ~height valves] escape-routes every valve on a control
    grid covering the [width x height] flow chip.  Control lines are much
    finer than flow channels, so the control grid runs at [resolution]
    (default 2) cells per flow cell; paths and lengths are reported in
    control-grid cells.
    @raise Invalid_argument when a valve lies outside the grid or
    [resolution < 1]. *)
