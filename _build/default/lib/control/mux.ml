let pins_needed n =
  if n < 0 then invalid_arg "Mux.pins_needed: negative";
  if n <= 1 then if n = 0 then 0 else 1
  else begin
    let rec bits k acc = if k <= 1 then acc else bits ((k + 1) / 2) (acc + 1) in
    bits n 0
  end

type assignment = int array

let naive ~n = Array.init n Fun.id

let hamming a b =
  let rec popcount x acc =
    if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1))
  in
  popcount (a lxor b) 0

let greedy ~events ~n =
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Mux.greedy: valve %d outside 0..%d" v (n - 1)))
    events;
  let code = Array.make n (-1) in
  let taken = Array.make n false in
  let closest_free reference =
    let best = ref (-1) and best_distance = ref max_int in
    for candidate = 0 to n - 1 do
      if not taken.(candidate) then begin
        let d = hamming reference candidate in
        if d < !best_distance then begin
          best := candidate;
          best_distance := d
        end
      end
    done;
    !best
  in
  let previous = ref 0 in
  List.iter
    (fun v ->
      if code.(v) = -1 then begin
        let c = closest_free !previous in
        code.(v) <- c;
        taken.(c) <- true
      end;
      previous := code.(v))
    events;
  (* Valves never actuated get the leftover codes. *)
  Array.iteri
    (fun v c ->
      if c = -1 then begin
        let free = closest_free 0 in
        code.(v) <- free;
        taken.(free) <- true
      end)
    code;
  code

let switching_cost assignment ~events =
  let previous = ref 0 in
  List.fold_left
    (fun acc v ->
      let c = assignment.(v) in
      let d = hamming !previous c in
      previous := c;
      acc + d)
    0 events

let improvement_percent ~naive ~optimized =
  if naive = 0 then 0.
  else float_of_int (naive - optimized) /. float_of_int naive *. 100.
