lib/control/mux.mli:
