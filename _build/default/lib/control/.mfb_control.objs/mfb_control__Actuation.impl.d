lib/control/actuation.ml: Float Int List Mfb_route Mfb_util Set Valve_map
