lib/control/escape.ml: Hashtbl List Printf Queue Valve_map
