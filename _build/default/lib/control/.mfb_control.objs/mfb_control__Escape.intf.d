lib/control/escape.mli: Valve_map
