lib/control/valve_map.mli: Mfb_route
