lib/control/valve_map.ml: Hashtbl List Mfb_route
