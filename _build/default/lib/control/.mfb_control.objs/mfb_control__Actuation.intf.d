lib/control/actuation.mli: Mfb_route Valve_map
