lib/control/mux.ml: Array Fun List Printf
