module Routed = Mfb_route.Routed
module Rgrid = Mfb_route.Rgrid

type t = {
  site_list : (int * int) list;
  site_index : (int * int, int) Hashtbl.t;
}

let of_routing (result : Routed.result) =
  let grid = result.grid in
  let used = Hashtbl.create 64 in
  List.iter (fun xy -> Hashtbl.replace used xy ()) (Rgrid.used_cells grid);
  let is_used xy = Hashtbl.mem used xy in
  let junctions =
    Hashtbl.fold
      (fun xy () acc ->
        let degree =
          List.length (List.filter is_used (Rgrid.neighbours grid xy))
        in
        if degree >= 3 then xy :: acc else acc)
      used []
  in
  (* Isolation valves at ports that actually carry traffic. *)
  let ports =
    List.concat_map
      (fun (task : Routed.task) ->
        match task.path with
        | [] -> []
        | first :: rest ->
          let last = List.fold_left (fun _ xy -> xy) first rest in
          [ first; last ])
      result.tasks
  in
  let site_list = List.sort_uniq compare (junctions @ ports) in
  let site_index = Hashtbl.create (List.length site_list) in
  List.iteri (fun i xy -> Hashtbl.replace site_index xy i) site_list;
  { site_list; site_index }

let count t = List.length t.site_list

let sites t = t.site_list

let index t xy = Hashtbl.find_opt t.site_index xy

let valves_on_path t path =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun xy ->
      match index t xy with
      | Some v when not (Hashtbl.mem seen v) ->
        Hashtbl.replace seen v ();
        Some v
      | Some _ | None -> None)
    path
