module Routed = Mfb_route.Routed
module Interval = Mfb_util.Interval

type step = { time : float; open_valves : int list }

module Int_set = Set.Make (Int)

let steps ~tc valves (result : Routed.result) =
  (* Per valve, the union of occupation windows of tasks crossing it. *)
  let windows =
    List.concat_map
      (fun (task : Routed.task) ->
        List.filter_map
          (fun (xy, iv) ->
            match Valve_map.index valves xy with
            | Some v when not (Interval.is_empty iv) -> Some (v, iv)
            | Some _ | None -> None)
          (Routed.occupancy ~tc task))
      result.tasks
  in
  let boundaries =
    List.concat_map
      (fun (_, iv) -> [ Interval.lo iv; Interval.hi iv ])
      windows
    |> List.sort_uniq Float.compare
  in
  let state_at t =
    List.fold_left
      (fun acc (v, iv) -> if Interval.contains iv t then Int_set.add v acc else acc)
      Int_set.empty windows
  in
  let raw =
    List.map (fun t -> (t, state_at t)) boundaries
  in
  let deduped =
    List.fold_left
      (fun acc (t, s) ->
        match acc with
        | (_, prev) :: _ when Int_set.equal prev s -> acc
        | _ -> (t, s) :: acc)
      [] raw
    |> List.rev
  in
  let with_origin =
    match deduped with
    | (t, s) :: _ when t > 0. && not (Int_set.is_empty s) ->
      (0., Int_set.empty) :: deduped
    | _ -> deduped
  in
  List.map
    (fun (time, s) -> { time; open_valves = Int_set.elements s })
    with_origin

let valve_switching steps =
  let rec loop acc = function
    | { open_valves = a; _ } :: ({ open_valves = b; _ } :: _ as rest) ->
      let sa = Int_set.of_list a and sb = Int_set.of_list b in
      let toggled =
        Int_set.cardinal (Int_set.diff sa sb)
        + Int_set.cardinal (Int_set.diff sb sa)
      in
      loop (acc + toggled) rest
    | [ _ ] | [] -> acc
  in
  loop 0 steps

let toggle_sequence steps =
  let rec loop acc = function
    | { open_valves = a; _ } :: ({ open_valves = b; _ } :: _ as rest) ->
      let sa = Int_set.of_list a and sb = Int_set.of_list b in
      let toggled =
        Int_set.elements (Int_set.union (Int_set.diff sa sb) (Int_set.diff sb sa))
      in
      loop (List.rev_append toggled acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  loop [] steps
