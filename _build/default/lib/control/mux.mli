(** Control-layer multiplexing with Hamming-distance-based address
    assignment (the optimization of Wang et al., ASP-DAC 2017, cited as
    the paper's future-work direction).

    A control multiplexer drives [n] valves through [ceil (log2 n)]
    control pins; actuating a valve means presenting its binary address on
    the pins.  The pins toggle by the Hamming distance between consecutive
    addresses, so the address assignment decides the total control-layer
    switching activity for a fixed actuation sequence. *)

val pins_needed : int -> int
(** [pins_needed n] is [ceil (log2 n)] (and 1 for [n <= 2], 0 for
    [n <= 1]).
    @raise Invalid_argument if [n < 0]. *)

type assignment = private int array
(** [assignment.(v)] is the address code of valve [v]; codes are a
    permutation of [0 .. n-1]. *)

val naive : n:int -> assignment
(** Identity assignment: valve [v] gets address [v]. *)

val greedy : events:int list -> n:int -> assignment
(** Hamming-greedy assignment: walk the actuation sequence and give each
    newly-seen valve the unused address closest (in Hamming distance) to
    the address of the previous event's valve; remaining valves get the
    leftover codes.
    @raise Invalid_argument if an event references a valve outside
    [0 .. n-1]. *)

val switching_cost : assignment -> events:int list -> int
(** Total pin toggles: the sum of Hamming distances between the addresses
    of consecutive events (the first event is driven from address 0). *)

val improvement_percent : naive:int -> optimized:int -> float
(** Reduction of the optimized cost relative to the naive one, percent. *)
