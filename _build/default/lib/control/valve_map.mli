(** Control-layer valve placement derived from a routed flow layer.

    The paper leaves control-logic optimization to future work (§VI,
    citing Wang et al.'s Hamming-distance-based valve-switching
    optimization); this module provides the substrate: where the valves
    sit.  A valve is needed wherever flows must be steered or isolated:

    - at every {e junction} of the channel network (a used cell with three
      or more used neighbours), and
    - at every component port that touches the channel network (isolation
      valves, one per active port). *)

type t

val of_routing : Mfb_route.Routed.result -> t
(** Derive the valve sites from the channel network of a routing result. *)

val count : t -> int
(** Number of valves. *)

val sites : t -> (int * int) list
(** Valve cells, sorted; each appears once. *)

val index : t -> int * int -> int option
(** Dense valve index of a cell, if a valve sits there. *)

val valves_on_path : t -> (int * int) list -> int list
(** Valve indices encountered along a routed path (deduplicated,
    in path order). *)
