lib/route/drc.mli: Format Mfb_place Routed
