lib/route/routed.mli: Mfb_schedule Mfb_util Rgrid
