lib/route/wash_plan.mli: Mfb_util Routed
