lib/route/baseline_router.mli: Mfb_place Mfb_schedule Routed
