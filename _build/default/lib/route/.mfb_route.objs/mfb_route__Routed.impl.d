lib/route/routed.ml: Float List Mfb_bioassay Mfb_schedule Mfb_util Rgrid
