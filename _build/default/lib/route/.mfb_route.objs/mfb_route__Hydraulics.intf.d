lib/route/hydraulics.mli: Format Routed
