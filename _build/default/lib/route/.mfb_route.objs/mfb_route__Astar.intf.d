lib/route/astar.mli: Rgrid
