lib/route/drc.ml: Array Format Hashtbl List Mfb_place Mfb_util Printf Rgrid Routed
