lib/route/baseline_router.ml: Astar Float Io_router List Mfb_schedule Mfb_util Rgrid Routed
