lib/route/astar.ml: Array Float Hashtbl List Mfb_util Rgrid
