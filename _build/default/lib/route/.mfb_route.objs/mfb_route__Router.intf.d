lib/route/router.mli: Mfb_place Mfb_schedule Routed
