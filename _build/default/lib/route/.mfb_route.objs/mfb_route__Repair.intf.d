lib/route/repair.mli: Mfb_place Mfb_schedule Routed
