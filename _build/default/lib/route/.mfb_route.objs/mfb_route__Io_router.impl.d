lib/route/io_router.ml: Array Astar Float Fun List Mfb_bioassay Mfb_schedule Option Printf Rgrid Routed
