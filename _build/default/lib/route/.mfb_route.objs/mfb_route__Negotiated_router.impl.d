lib/route/negotiated_router.ml: Array Astar Float Hashtbl Io_router List Mfb_schedule Mfb_util Option Rgrid Routed
