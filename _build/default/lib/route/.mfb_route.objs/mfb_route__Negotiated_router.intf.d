lib/route/negotiated_router.mli: Mfb_place Mfb_schedule Routed
