lib/route/repair.ml: Astar Io_router List Mfb_schedule Rgrid Routed
