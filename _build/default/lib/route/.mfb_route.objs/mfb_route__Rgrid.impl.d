lib/route/rgrid.ml: Array Float Hashtbl List Mfb_bioassay Mfb_place Mfb_util Printf
