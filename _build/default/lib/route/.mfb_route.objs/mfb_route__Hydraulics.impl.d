lib/route/hydraulics.ml: Float Format List Mfb_schedule Mfb_util Routed
