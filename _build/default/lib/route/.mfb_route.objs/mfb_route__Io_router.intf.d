lib/route/io_router.mli: Mfb_schedule Rgrid Routed
