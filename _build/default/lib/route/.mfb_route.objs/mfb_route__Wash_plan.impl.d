lib/route/wash_plan.ml: Astar List Mfb_bioassay Mfb_util Rgrid Routed
