lib/route/rgrid.mli: Mfb_bioassay Mfb_place Mfb_util
