(** Negotiated-congestion routing (PathFinder-style), as an alternative to
    the paper's sequential conflict-pruned router.

    All transports are re-routed together for several iterations.  Inside
    an iteration every task takes its cheapest path, where a cell's cost
    is the usual weighted cost plus a {e present-sharing} penalty (other
    tasks of this iteration already occupying it during an overlapping
    window) and an accumulating {e history} penalty for cells that keep
    being fought over.  Tasks negotiate: persistent losers detour,
    persistent winners keep the short path.  Any conflicts left after the
    iteration budget are resolved by postponement, like the sequential
    router. *)

val route :
  ?max_iterations:int ->
  ?weight_update:bool ->
  ?route_io:bool ->
  we:float ->
  tc:float ->
  Mfb_place.Chip.t ->
  Mfb_schedule.Types.t ->
  Routed.result
(** [route ~we ~tc chip sched] negotiates for up to [max_iterations]
    (default 8) rounds.  [weight_update] (default true) applies the
    paper's wash-weight update when committing the final paths.
    @raise Invalid_argument if [tc <= 0] or [we < 0]. *)
