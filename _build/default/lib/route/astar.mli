(** A* path search on the routing grid (paper Eq. 5).

    The cost of entering a cell is [1 + w(cell)] when weights are enabled
    ([1] otherwise); cells for which [usable] is false are treated as
    infinite-cost (the conflict case of Eq. 5).  The heuristic is the
    Manhattan distance to the nearest target, which is admissible because
    every step costs at least 1. *)

val search_multi :
  ?extra_cost:(int * int -> float) ->
  Rgrid.t ->
  srcs:(int * int) list ->
  dsts:(int * int) list ->
  usable:(int * int -> bool) ->
  use_weights:bool ->
  (int * int) list option
(** [search_multi grid ~srcs ~dsts ~usable ~use_weights] is a
    minimum-cost path from some usable source to some usable target,
    inclusive of both endpoints; [None] when unreachable.  [extra_cost]
    (default 0) adds a non-negative per-cell surcharge — the
    congestion/history term of negotiated routing. *)

val search :
  Rgrid.t ->
  src:int * int ->
  dst:int * int ->
  usable:(int * int -> bool) ->
  use_weights:bool ->
  (int * int) list option
(** Single source and target version of {!search_multi}. *)

val path_cost : Rgrid.t -> use_weights:bool -> (int * int) list -> float
(** Cost of a path under the same cost model (entering every cell
    including the first). *)
