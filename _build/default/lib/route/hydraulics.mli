(** Hydraulic sanity-check of the constant transport-time abstraction.

    The paper (following Liu et al.) schedules with a user constant [tc]
    for every inter-component transport because channel lengths are
    unknown during scheduling.  After routing the lengths {e are} known,
    so this module closes the loop with a first-order Hagen–Poiseuille
    model: a channel's hydraulic resistance grows linearly with its
    length, and at constant driving pressure the transport time of one
    chamber volume grows with the path's resistance.

    Calibration: the pump pressure is chosen so that a path of
    {!reference_cells} cells takes exactly [tc] — the designer's implied
    operating point.  Every routed transport then gets a {e physical}
    transport time proportional to its cell count, and the report shows
    how far the [tc] abstraction strays on the actual design. *)

val reference_cells : int
(** Path length (in cells) that takes exactly [tc] at the calibrated
    pressure (8 — a typical port-to-port run on the suite's chips). *)

type task_check = {
  edge : int * int;
  cells : int;              (** routed path length *)
  physical_time : float;    (** Hagen–Poiseuille transport time *)
  assumed_time : float;     (** the scheduler's [tc] *)
  relative_error : float;   (** [(physical - assumed) / assumed] *)
}

type t = {
  tasks : task_check list;      (** inter-component transports only *)
  worst_underestimate : float;
      (** largest positive relative error: transports that physically
          take longer than the schedule assumed *)
  mean_absolute_error : float;
  pressure_margin : float;
      (** factor by which the pump pressure must rise for every transport
          to finish within [tc] (1.0 when all paths already fit) *)
}

val analyse : tc:float -> Routed.result -> t

val pp_summary : Format.formatter -> t -> unit
