module Interval = Mfb_util.Interval
module Types = Mfb_schedule.Types

let sorted_transports (sched : Types.t) =
  List.sort
    (fun (a : Types.transport) b ->
      let c = Float.compare a.removal b.removal in
      if c <> 0 then c else Float.compare a.depart b.depart)
    sched.transports

let correct_task grid ~tc (tr : Types.transport) initial_path =
  let srcs = Rgrid.ports grid tr.src and dsts = Rgrid.ports grid tr.dst in
  let conflict_free_path path =
    List.for_all (Routed.usable grid ~tc tr ~delay:0. ~src_ports:srcs) path
  in
  if conflict_free_path initial_path then (initial_path, 0., false)
  else begin
    (* Correction step 1: conflict-aware re-route (unweighted cost). *)
    let usable xy = Routed.usable grid ~tc tr ~delay:0. ~src_ports:srcs xy in
    match Astar.search_multi grid ~srcs ~dsts ~usable ~use_weights:false with
    | Some path -> (path, 0., false)
    | None ->
      (* Correction step 2: postpone along the original path. *)
      (match Routed.settle_delay grid ~tc tr ~src_ports:srcs initial_path with
       | Some delay -> (initial_path, delay, false)
       | None -> (initial_path, 0., true))
  end

let route ?(route_io = false) ~we ~tc chip (sched : Types.t) =
  if tc <= 0. then invalid_arg "Baseline_router.route: tc must be positive";
  let grid = Rgrid.create ~we chip in
  let transports = sorted_transports sched in
  (* Construction: conflict-oblivious shortest paths. *)
  let initial =
    List.map
      (fun (tr : Types.transport) ->
        let srcs = Rgrid.ports grid tr.src and dsts = Rgrid.ports grid tr.dst in
        let usable xy = not (Rgrid.blocked grid xy) in
        let path =
          match
            Astar.search_multi grid ~srcs ~dsts ~usable ~use_weights:false
          with
          | Some p -> p
          | None -> [ List.hd srcs; List.hd dsts ]
        in
        (tr, path))
      transports
  in
  (* Correction: sequential repair against committed occupations. *)
  let tasks, unresolved =
    List.fold_left
      (fun (tasks, unresolved) (tr, initial_path) ->
        let path, delay, failed = correct_task grid ~tc tr initial_path in
        let task =
          { Routed.transport = tr; kind = Routed.Transport; path; delay;
            pre_wash = 0.; washed_cells = 0 }
        in
        let pre_wash, washed_cells = Routed.measure_wash grid ~tc task in
        let task = { task with pre_wash; washed_cells } in
        Routed.commit ~weight_update:false grid ~tc task;
        (task :: tasks, if failed then unresolved + 1 else unresolved))
      ([], 0) initial
  in
  let io, io_unresolved =
    if route_io then Io_router.route_all ~weight_update:false grid ~tc sched
    else ([], 0)
  in
  Routed.finalize grid (List.rev_append io tasks)
    ~unresolved:(unresolved + io_unresolved)
