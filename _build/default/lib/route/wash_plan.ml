module Interval = Mfb_util.Interval

type flush = {
  task_edge : int * int;
  duration : float;
  window : Interval.t;
  route : (int * int) list;
  interferences : int;
}

type t = {
  flushes : flush list;
  total_flush_time : float;
  total_route_cells : int;
  total_interferences : int;
  buffer_volume_cells : float;
}

let border_cells grid =
  let w = Rgrid.width grid and h = Rgrid.height grid in
  let top = List.init w (fun x -> (x, 0)) in
  let bottom = List.init w (fun x -> (x, h - 1)) in
  let left = List.init h (fun y -> (0, y)) in
  let right = List.init h (fun y -> (w - 1, y)) in
  List.filter (fun xy -> not (Rgrid.blocked grid xy))
    (top @ bottom @ left @ right)

(* Shortest obstacle-avoiding connection from [cell] to the chip border
   (possibly just [cell] itself when it already sits on the border). *)
let to_border grid cell =
  let usable xy = not (Rgrid.blocked grid xy) in
  match Astar.search_multi grid ~srcs:[ cell ] ~dsts:(border_cells grid)
          ~usable ~use_weights:false
  with
  | Some path -> path
  | None -> [ cell ]

let flush_of grid ~tc (task : Routed.task) =
  let path = task.path in
  let head = List.hd path in
  let tail = List.nth path (List.length path - 1) in
  let approach = to_border grid head in
  let drain = to_border grid tail in
  (* approach runs border-wards from the head; reverse it to flow
     inwards.  Skip the duplicated junction cells. *)
  let route =
    List.rev (List.tl approach) @ path @ List.tl drain
  in
  let entry =
    match Routed.occupancy ~tc task with
    | (_, iv) :: _ -> Interval.lo iv
    | [] -> task.transport.removal +. task.delay
  in
  let window = Interval.make (entry -. task.pre_wash) entry in
  let interferences =
    List.length
      (List.filter
         (fun xy ->
           List.exists
             (fun (o : Rgrid.occupation) ->
               Interval.overlaps o.interval window
               && not
                    (Mfb_bioassay.Fluid.equal o.fluid task.transport.fluid))
             (Rgrid.occupations grid xy))
         route)
  in
  { task_edge = task.transport.edge; duration = task.pre_wash; window;
    route; interferences }

let plan ~tc (routing : Routed.result) =
  let dirty =
    List.filter (fun (task : Routed.task) -> task.pre_wash > 0.) routing.tasks
  in
  let flushes = List.map (flush_of routing.grid ~tc) dirty in
  {
    flushes;
    total_flush_time =
      List.fold_left (fun acc f -> acc +. f.duration) 0. flushes;
    total_route_cells =
      List.fold_left (fun acc f -> acc + List.length f.route) 0 flushes;
    total_interferences =
      List.fold_left (fun acc f -> acc + f.interferences) 0 flushes;
    buffer_volume_cells =
      List.fold_left
        (fun acc f -> acc +. (f.duration *. float_of_int (List.length f.route)))
        0. flushes;
  }
