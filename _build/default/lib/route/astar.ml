let step_cost grid ~use_weights xy =
  1. +. (if use_weights then Rgrid.weight grid xy else 0.)

let path_cost grid ~use_weights path =
  List.fold_left (fun acc xy -> acc +. step_cost grid ~use_weights xy) 0. path

let manhattan (x1, y1) (x2, y2) =
  float_of_int (abs (x1 - x2) + abs (y1 - y2))

let search_multi ?(extra_cost = fun _ -> 0.) grid ~srcs ~dsts ~usable
    ~use_weights =
  let srcs = List.filter usable srcs and dsts = List.filter usable dsts in
  if srcs = [] || dsts = [] then None
  else begin
    let step_cost grid ~use_weights xy =
      step_cost grid ~use_weights xy +. extra_cost xy
    in
    let w = Rgrid.width grid and h = Rgrid.height grid in
    let idx (x, y) = (y * w) + x in
    let is_goal =
      let goals = Hashtbl.create 4 in
      List.iter (fun xy -> Hashtbl.replace goals xy ()) dsts;
      fun xy -> Hashtbl.mem goals xy
    in
    let heuristic xy =
      List.fold_left (fun acc d -> Float.min acc (manhattan xy d)) infinity
        dsts
    in
    let g_cost = Array.make (w * h) infinity in
    let parent = Array.make (w * h) None in
    let closed = Array.make (w * h) false in
    let open_queue = Mfb_util.Pqueue.create ~cmp:Float.compare in
    List.iter
      (fun src ->
        let c = step_cost grid ~use_weights src in
        if c < g_cost.(idx src) then begin
          g_cost.(idx src) <- c;
          Mfb_util.Pqueue.push open_queue (c +. heuristic src) src
        end)
      srcs;
    let rec reconstruct xy acc =
      match parent.(idx xy) with
      | None -> xy :: acc
      | Some prev -> reconstruct prev (xy :: acc)
    in
    let rec loop () =
      match Mfb_util.Pqueue.pop open_queue with
      | None -> None
      | Some (_, xy) ->
        if is_goal xy then Some (reconstruct xy [])
        else if closed.(idx xy) then loop ()
        else begin
          closed.(idx xy) <- true;
          let expand n =
            if (not closed.(idx n)) && usable n then begin
              let tentative = g_cost.(idx xy) +. step_cost grid ~use_weights n in
              if tentative < g_cost.(idx n) -. 1e-12 then begin
                g_cost.(idx n) <- tentative;
                parent.(idx n) <- Some xy;
                Mfb_util.Pqueue.push open_queue (tentative +. heuristic n) n
              end
            end
          in
          List.iter expand (Rgrid.neighbours grid xy);
          loop ()
        end
    in
    loop ()
  end

let search grid ~src ~dst ~usable ~use_weights =
  search_multi grid ~srcs:[ src ] ~dsts:[ dst ] ~usable ~use_weights
