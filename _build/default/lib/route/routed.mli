(** Shared result types and commit helpers for the two routing flows. *)

val pitch_mm : float
(** Physical length of one grid-cell channel segment (10 mm). *)

type kind =
  | Transport  (** a scheduled component-to-component transport *)
  | Dispense   (** input fluid from a chip-border inlet to a component *)
  | Waste      (** final product from a component to a border outlet *)

type task = {
  transport : Mfb_schedule.Types.transport;
      (** for [Dispense]/[Waste] this is a pseudo-transport describing the
          window and fluid; its [src]/[dst] both name the component *)
  kind : kind;
  path : (int * int) list;  (** endpoint-to-endpoint, inclusive; never empty *)
  delay : float;            (** postponement applied to the transport *)
  pre_wash : float;
      (** buffer-flush time needed before this task: the largest
          different-fluid residue wash along its path (Fig. 9 quantity) *)
  washed_cells : int;       (** cells of the path that needed washing *)
}

type result = {
  tasks : task list;                (** in routing order *)
  grid : Rgrid.t;                   (** final grid state *)
  total_channel_length_mm : float;  (** distinct used cells x pitch *)
  total_channel_wash : float;       (** sum of [pre_wash] *)
  total_delay : float;              (** sum of postponements *)
  unresolved : int;                 (** tasks left with conflicts *)
}

val occupancy :
  tc:float -> task -> ((int * int) * Mfb_util.Interval.t) list
(** Cell-level occupation of a routed task.  Without channel caching every
    path cell is occupied over the whole (shifted) transport window; with
    caching the fluid parks in the channel cell adjacent to the source
    port (paper §II-A: fluids are cached close to components — the evicted
    fluid is pushed just outside its producing component), so downstream
    cells are only held for the final [tc]-long sweep. *)

val measure_wash : Rgrid.t -> tc:float -> task -> float * int
(** [(pre_wash, washed_cells)] of a task against the current grid state;
    call before {!commit}. *)

val commit : ?weight_update:bool -> Rgrid.t -> tc:float -> task -> unit
(** Record the task's occupations; with [weight_update] (default true)
    every path cell's weight becomes the wash time of the residue the
    task leaves (paper §IV-B2). *)

val windows :
  tc:float ->
  Mfb_schedule.Types.transport ->
  delay:float ->
  near_src:bool ->
  Mfb_util.Interval.t list
(** Occupation windows a cell must be free for, matching {!occupancy}:
    cells near the source port may hold the cached fluid for the whole
    (shifted) transport window; downstream cells only see the initial
    eviction sweep and the final arrival sweep. *)

val usable :
  Rgrid.t ->
  tc:float ->
  Mfb_schedule.Types.transport ->
  delay:float ->
  src_ports:(int * int) list ->
  (int * int) ->
  bool
(** Cell-usability predicate for path search, consistent with the
    occupation that {!commit} will record ("near source" means
    Manhattan distance at most 1 from some source port). *)

val settle_delay :
  Rgrid.t ->
  tc:float ->
  Mfb_schedule.Types.transport ->
  src_ports:(int * int) list ->
  (int * int) list ->
  float option
(** Smallest postponement making the whole path conflict-free on every
    cell under the {!windows} semantics, or [None] when no fixed point is
    found within the iteration budget. *)

val finalize : Rgrid.t -> task list -> unresolved:int -> result
