module Types = Mfb_schedule.Types
module Seq_graph = Mfb_bioassay.Seq_graph

let input_fluid op =
  Mfb_bioassay.Fluid.make
    ~name:(Printf.sprintf "input-o%d" op)
    ~diffusion:(Mfb_bioassay.Fluid.of_palette op).diffusion

let templates ~tc (sched : Types.t) =
  let g = sched.graph in
  let of_op op =
    let times = sched.times.(op) in
    let dispense =
      if Seq_graph.parents g op = [] then
        [ ( { Types.edge = (op, op); src = times.component;
              dst = times.component; removal = times.start -. tc;
              depart = times.start -. tc; arrive = times.start;
              fluid = input_fluid op },
            Routed.Dispense ) ]
      else []
    in
    let waste =
      if Seq_graph.children g op = [] then
        [ ( { Types.edge = (op, op); src = times.component;
              dst = times.component; removal = times.finish;
              depart = times.finish; arrive = times.finish +. tc;
              fluid = (Seq_graph.op g op).output },
            Routed.Waste ) ]
      else []
    in
    dispense @ waste
  in
  List.concat_map of_op (List.init (Seq_graph.n_ops g) Fun.id)
  |> List.sort (fun ((a : Types.transport), _) (b, _) ->
         Float.compare a.removal b.removal)

let border_cells grid =
  let w = Rgrid.width grid and h = Rgrid.height grid in
  let top = List.init w (fun x -> (x, 0)) in
  let bottom = List.init w (fun x -> (x, h - 1)) in
  let left = List.init h (fun y -> (0, y)) in
  let right = List.init h (fun y -> (w - 1, y)) in
  List.filter (fun xy -> not (Rgrid.blocked grid xy))
    (top @ bottom @ left @ right)

(* Slack lets an io run avoid busy windows without touching the schedule:
   a dispense may leave its reservoir early and stage in the channel; a
   waste run may stay in its component while the component is not needed
   (up to [deadline]), then park just outside and drain later. *)
let slacks = [ 0.; 0.5; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ]

let with_slack kind ~deadline (tr : Types.transport) slack =
  match (kind : Routed.kind) with
  | Dispense -> { tr with removal = tr.removal -. slack }
  | Waste ->
    let removal = Float.min (tr.removal +. slack) deadline in
    { tr with removal;
      depart = tr.depart +. slack;
      arrive = tr.arrive +. slack }
  | Transport -> tr

(* The latest moment a sink's product may still sit inside its component:
   just early enough for the residue wash before the next operation
   there; unbounded when the component is done for the day. *)
let waste_deadline (sched : Types.t) op =
  let times = sched.times.(op) in
  let wash =
    Mfb_bioassay.Operation.wash_time (Seq_graph.op sched.graph op)
  in
  let next_start =
    List.fold_left
      (fun acc (_, (t : Types.op_times)) ->
        if t.start >= times.finish -. 1e-9 && t.start < acc then t.start
        else acc)
      infinity
      (List.filter
         (fun (other, _) -> other <> op)
         (Types.ops_on_component sched times.component))
  in
  Float.max times.finish (next_start -. wash)

let route_one ?(weight_update = true) grid ~tc ~deadline
    (tr : Types.transport) kind =
  let component_ports = Rgrid.ports grid tr.src in
  let border = border_cells grid in
  let srcs, dsts =
    match (kind : Routed.kind) with
    | Dispense -> (border, component_ports)
    | Waste | Transport -> (component_ports, border)
  in
  let usable_for (tr' : Types.transport) xy =
    match (kind : Routed.kind) with
    | Waste | Transport ->
      (* Source-side parking matches the occupancy model exactly. *)
      Routed.usable grid ~tc tr' ~delay:0. ~src_ports:component_ports xy
    | Dispense ->
      (* The staging cell sits near the (path-dependent) inlet, so require
         the conservative full window everywhere. *)
      List.for_all
        (fun iv -> Rgrid.conflict_free grid xy iv tr'.fluid)
        (Routed.windows ~tc tr' ~delay:0. ~near_src:true)
  in
  let attempt slack =
    let tr' = with_slack kind ~deadline tr slack in
    match
      Astar.search_multi grid ~srcs ~dsts ~usable:(usable_for tr')
        ~use_weights:weight_update
    with
    | Some path -> Some (tr', 0., path)
    | None -> None
  in
  (* When a dispense is boxed in during its window, arriving late is legal
     — it simply pushes the operation's start; the caller feeds the delay
     back through retiming. *)
  let attempt_late delay =
    match (kind : Routed.kind) with
    | Waste | Transport -> None
    | Dispense ->
      let usable xy =
        List.for_all
          (fun iv -> Rgrid.conflict_free grid xy iv tr.fluid)
          (Routed.windows ~tc tr ~delay ~near_src:true)
      in
      (match
         Astar.search_multi grid ~srcs ~dsts ~usable
           ~use_weights:weight_update
       with
       | Some path -> Some (tr, delay, path)
       | None -> None)
  in
  let routed =
    match List.find_map attempt slacks with
    | Some _ as r -> r
    | None ->
      List.find_map attempt_late (List.filter (fun d -> d > 0.) slacks)
  in
  let routed, best_effort =
    match routed with
    | Some r -> (Some r, false)
    | None ->
      (* Best effort: tolerate the residual conflict rather than perturb
         the schedule (rare; reported through [unresolved]). *)
      let unblocked xy = not (Rgrid.blocked grid xy) in
      ( Option.map
          (fun path -> (tr, 0., path))
          (Astar.search_multi grid ~srcs ~dsts ~usable:unblocked
             ~use_weights:false),
        true )
  in
  match routed with
  | None -> None (* landlocked component: cannot happen on Chip layouts *)
  | Some (tr', delay, path) ->
    let task =
      { Routed.transport = tr'; kind; path; delay; pre_wash = 0.;
        washed_cells = 0 }
    in
    let pre_wash, washed_cells = Routed.measure_wash grid ~tc task in
    let task = { task with pre_wash; washed_cells } in
    Routed.commit ~weight_update grid ~tc task;
    Some (task, best_effort)

let route_all ?(weight_update = true) grid ~tc (sched : Types.t) =
  let routed =
    List.filter_map
      (fun ((tr : Types.transport), kind) ->
        let deadline =
          match (kind : Routed.kind) with
          | Waste -> waste_deadline sched (fst tr.edge)
          | Dispense | Transport -> tr.removal
        in
        route_one ~weight_update grid ~tc ~deadline tr kind)
      (templates ~tc sched)
  in
  ( List.map fst routed,
    List.length (List.filter (fun (_, be) -> be) routed) )
