(** Physical design-rule checks on a routed chip.

    Complements {!Mfb_schedule.Check} (which validates timing): DRC
    validates geometry — the flow-layer equivalent of an EDA sign-off
    check.  A design produced by {!Router.route} on a legal
    {!Mfb_place.Chip} placement must pass. *)

type violation = {
  rule : string;     (** stable identifier, e.g. ["placement"], ["path"] *)
  message : string;
}

val check :
  Mfb_place.Chip.t -> Routed.result -> violation list
(** [check chip routing] verifies:

    - ["placement"]: components in bounds and pairwise spaced;
    - ["path"]: every routed path is non-empty, 4-connected, stays inside
      the grid, and avoids component footprints;
    - ["port"]: every path starts at a port of its source component and
      ends at a port of its destination component;
    - ["connectivity"]: the channel network touches a port of every
      component that sends or receives fluid (checked with union-find
      over used cells);
    - ["occupation"]: every occupied cell of the final grid lies on some
      routed path. *)

val is_clean : Mfb_place.Chip.t -> Routed.result -> bool

val pp_violation : Format.formatter -> violation -> unit
