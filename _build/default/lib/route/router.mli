(** Transportation-conflict-aware routing (paper Alg. 2, lines 9-18).

    Tasks are sorted by start time and routed one after another with the
    weighted, conflict-pruned A* of Eq. 5.  After each task the weights of
    its cells become the wash time of the residue it leaves, steering
    later tasks towards cheap-to-wash (or same-fluid) channels and thereby
    sharing channel segments.  When no conflict-free path exists, the task
    is postponed by the smallest sufficient delay and routed again; the
    resulting per-edge delays can be fed to {!Mfb_schedule.Retime} (they
    are zero in the common case). *)

val route :
  ?weight_update:bool ->
  ?route_io:bool ->
  we:float ->
  tc:float ->
  Mfb_place.Chip.t ->
  Mfb_schedule.Types.t ->
  Routed.result
(** [route ~we ~tc chip sched] routes every transport of [sched] on
    [chip].  [weight_update] (default true) enables the wash-time weight
    update; disabling it is the A3 ablation.
    @raise Invalid_argument if [we < 0] or [tc <= 0]. *)
