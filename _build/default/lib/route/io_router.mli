(** Inlet dispensing and waste routing.

    Source operations consume fluids dispensed from reservoirs at the chip
    border, and final products drain to border outlets.  This pass adds
    those runs to an already-routed design so channel-length and wash
    accounting include them (the paper's totals do: its PCR design has
    420 mm of channel for six internal edges).

    Input fluids of a source operation are modelled as one buffer per
    operation (named ["input-oN"], diffusion drawn from the palette);
    the waste run carries the sink's output fluid. *)

val border_cells : Rgrid.t -> (int * int) list
(** Unblocked cells on the chip edge — reservoir/outlet attachment
    points. *)

val templates :
  tc:float ->
  Mfb_schedule.Types.t ->
  (Mfb_schedule.Types.transport * Routed.kind) list
(** Pseudo-transports for every source (window [\[start - tc, start))) and
    sink operation (window [\[finish, finish + tc))), ordered by window
    start. *)

val route_all :
  ?weight_update:bool ->
  Rgrid.t ->
  tc:float ->
  Mfb_schedule.Types.t ->
  Routed.task list * int
(** [route_all grid ~tc sched] routes every template on [grid] —
    conflict-aware with staging slack where possible; a dispense that is
    boxed in during its window arrives late instead, carrying a positive
    [delay] for the caller to retime; only when even that fails is the
    run committed best-effort — and commits the occupations.  Returns the
    routed tasks in order together with the number of best-effort
    (possibly conflicting) commits. *)
