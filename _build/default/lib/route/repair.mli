(** Defect repair: re-routing around fabrication faults.

    A blocked channel cell (debris, collapsed membrane, bonding defect)
    kills every transport routed through it.  This module measures how
    repairable a finished design is: given a defective cell, the affected
    tasks are ripped up and re-routed on the remaining grid under the same
    conflict rules (existing healthy tasks keep their paths and
    occupations).

    The single-defect yield — the fraction of channel cells whose failure
    the design survives without touching the schedule — is a standard
    robustness figure for microfluidic layouts. *)

type outcome = {
  defect : int * int;
  affected : int;          (** tasks whose path crossed the defect *)
  repaired : int;          (** of those, re-routed without postponement *)
  survived : bool;         (** all affected tasks repaired *)
}

val inject :
  we:float ->
  tc:float ->
  Mfb_place.Chip.t ->
  Mfb_schedule.Types.t ->
  Routed.result ->
  defect:int * int ->
  outcome
(** [inject ~we ~tc chip sched routing ~defect] rebuilds the design with
    [defect] unusable and every healthy task's occupation re-committed,
    then re-routes the affected tasks conflict-aware (original windows,
    no extra delay allowed).
    @raise Invalid_argument when the defect cell lies on a component
    footprint (that is a component fault, not a channel fault). *)

type yield_report = {
  cells_tested : int;     (** channel cells of the design *)
  survived : int;
  yield : float;          (** [survived / cells_tested]; 1.0 for empty *)
  worst : outcome option; (** a failing defect, when any exists *)
}

val single_defect_yield :
  we:float ->
  tc:float ->
  Mfb_place.Chip.t ->
  Mfb_schedule.Types.t ->
  Routed.result ->
  yield_report
(** Try every used channel cell as the defect. *)
