module Types = Mfb_schedule.Types

type outcome = {
  defect : int * int;
  affected : int;
  repaired : int;
  survived : bool;
}

let inject ~we ~tc chip (sched : Types.t) (routing : Routed.result) ~defect =
  let probe = Rgrid.create ~we chip in
  if Rgrid.blocked probe defect then
    invalid_arg "Repair.inject: defect lies on a component footprint";
  let grid = Rgrid.create ~we chip in
  let healthy, affected =
    List.partition
      (fun (task : Routed.task) -> not (List.mem defect task.path))
      routing.tasks
  in
  (* Healthy tasks keep their paths; their occupations constrain the
     repair. *)
  List.iter (fun task -> Routed.commit grid ~tc task) healthy;
  ignore sched;
  let repaired =
    List.filter
      (fun (task : Routed.task) ->
        let tr = task.transport in
        let srcs, dsts =
          match task.kind with
          | Routed.Transport ->
            (Rgrid.ports grid tr.src, Rgrid.ports grid tr.dst)
          | Routed.Dispense ->
            (Io_router.border_cells grid, Rgrid.ports grid tr.dst)
          | Routed.Waste ->
            (Rgrid.ports grid tr.src, Io_router.border_cells grid)
        in
        let usable xy =
          xy <> defect
          && Routed.usable grid ~tc tr ~delay:task.delay
               ~src_ports:(Rgrid.ports grid tr.src) xy
        in
        match
          Astar.search_multi grid ~srcs ~dsts ~usable ~use_weights:true
        with
        | Some path ->
          Routed.commit grid ~tc { task with path };
          true
        | None -> false)
      affected
  in
  {
    defect;
    affected = List.length affected;
    repaired = List.length repaired;
    survived = List.length repaired = List.length affected;
  }

type yield_report = {
  cells_tested : int;
  survived : int;
  yield : float;
  worst : outcome option;
}

let single_defect_yield ~we ~tc chip sched (routing : Routed.result) =
  let cells = Rgrid.used_cells routing.grid in
  let outcomes =
    List.map (fun defect -> inject ~we ~tc chip sched routing ~defect) cells
  in
  let survived =
    List.length (List.filter (fun (o : outcome) -> o.survived) outcomes)
  in
  {
    cells_tested = List.length cells;
    survived;
    yield =
      (if cells = [] then 1.0
       else float_of_int survived /. float_of_int (List.length cells));
    worst = List.find_opt (fun (o : outcome) -> not o.survived) outcomes;
  }
