let reference_cells = 8

type task_check = {
  edge : int * int;
  cells : int;
  physical_time : float;
  assumed_time : float;
  relative_error : float;
}

type t = {
  tasks : task_check list;
  worst_underestimate : float;
  mean_absolute_error : float;
  pressure_margin : float;
}

let analyse ~tc (routing : Routed.result) =
  if tc <= 0. then invalid_arg "Hydraulics.analyse: tc must be positive";
  (* Time per cell at the calibrated pressure. *)
  let per_cell = tc /. float_of_int reference_cells in
  let tasks =
    List.filter_map
      (fun (task : Routed.task) ->
        match task.kind with
        | Routed.Dispense | Routed.Waste -> None
        | Routed.Transport ->
          let cells = List.length task.path in
          let physical_time = per_cell *. float_of_int cells in
          Some
            {
              edge = task.transport.Mfb_schedule.Types.edge;
              cells;
              physical_time;
              assumed_time = tc;
              relative_error = (physical_time -. tc) /. tc;
            })
      routing.tasks
  in
  let worst_underestimate =
    List.fold_left (fun acc t -> Float.max acc t.relative_error) 0. tasks
  in
  let mean_absolute_error =
    Mfb_util.Stats.mean
      (List.map (fun t -> Float.abs t.relative_error) tasks)
  in
  (* Pressure scales flow linearly in the laminar regime, so making the
     longest path fit within tc needs pressure x (longest / reference). *)
  let longest =
    List.fold_left (fun acc t -> max acc t.cells) reference_cells tasks
  in
  {
    tasks;
    worst_underestimate;
    mean_absolute_error;
    pressure_margin = float_of_int longest /. float_of_int reference_cells;
  }

let pp_summary ppf t =
  Format.fprintf ppf
    "%d transports: mean |error| %.0f%%, worst underestimate +%.0f%%, \
     pressure margin %.2fx"
    (List.length t.tasks)
    (100. *. t.mean_absolute_error)
    (100. *. t.worst_underestimate)
    t.pressure_margin
