module Interval = Mfb_util.Interval
module Fluid = Mfb_bioassay.Fluid

type occupation = { interval : Interval.t; fluid : Fluid.t }

type cell = {
  mutable weight : float;
  mutable occs : occupation list; (* sorted by interval start *)
  blocked : bool;
}

type t = {
  grid_width : int;
  grid_height : int;
  cells : cell array;
  ports : (int * int) list array; (* per component id, non-empty *)
}

let idx g (x, y) = (y * g.grid_width) + x

let in_bounds g (x, y) =
  x >= 0 && y >= 0 && x < g.grid_width && y < g.grid_height

let cell_exn g xy =
  if not (in_bounds g xy) then
    invalid_arg
      (Printf.sprintf "Rgrid: cell (%d, %d) out of bounds" (fst xy) (snd xy));
  g.cells.(idx g xy)

(* Perimeter cells of a rectangle, grouped per side; each side lists its
   middle cell first so ports prefer centred attachment points. *)
let perimeter_sides (x, y, w, h) =
  let centred cells =
    let n = List.length cells in
    let mid = (n - 1) / 2 in
    List.mapi (fun i c -> (abs (i - mid), c)) cells
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let top = List.init w (fun i -> (x + i, y - 1)) in
  let right = List.init h (fun i -> (x + w, y + i)) in
  let bottom = List.init w (fun i -> (x + i, y + h)) in
  let left = List.init h (fun i -> (x - 1, y + i)) in
  List.map centred [ top; right; bottom; left ]

let create ~we (chip : Mfb_place.Chip.t) =
  if we < 0. then invalid_arg "Rgrid.create: negative w_e";
  let blocked_tbl = Hashtbl.create 64 in
  List.iter (fun xy -> Hashtbl.replace blocked_tbl xy ())
    (Mfb_place.Chip.blocked_cells chip);
  let cells =
    Array.init (chip.width * chip.height) (fun i ->
        let xy = (i mod chip.width, i / chip.width) in
        { weight = we; occs = []; blocked = Hashtbl.mem blocked_tbl xy })
  in
  let g =
    { grid_width = chip.width; grid_height = chip.height; cells;
      ports = Array.make (Array.length chip.components) [] }
  in
  Array.iteri
    (fun i _ ->
      let rect = Mfb_place.Chip.footprint chip i in
      let free xy = in_bounds g xy && not (cell_exn g xy).blocked in
      let side_ports =
        List.filter_map
          (fun side -> List.find_opt free side)
          (perimeter_sides rect)
      in
      if side_ports = [] then
        invalid_arg
          (Printf.sprintf "Rgrid.create: component %d has no free port" i);
      g.ports.(i) <- side_ports)
    chip.components;
  g

let width g = g.grid_width
let height g = g.grid_height

let blocked g xy = (cell_exn g xy).blocked

let weight g xy = (cell_exn g xy).weight

let set_weight g xy w = (cell_exn g xy).weight <- w

let occupations g xy = (cell_exn g xy).occs

let add_occupation g xy occ =
  let cell = cell_exn g xy in
  let rec insert = function
    | [] -> [ occ ]
    | o :: rest as all ->
      if Interval.compare occ.interval o.interval <= 0 then occ :: all
      else o :: insert rest
  in
  cell.occs <- insert cell.occs

let ports g c =
  if c < 0 || c >= Array.length g.ports then
    invalid_arg (Printf.sprintf "Rgrid.ports: unknown component %d" c);
  g.ports.(c)

let port g c =
  match ports g c with
  | xy :: _ -> xy
  | [] -> assert false (* non-emptiness enforced at creation *)

(* Wash separation needed between a prior occupation and a fluid entering
   at the start of [iv]: none when the fluids are identical. *)
let wash_between prior fluid =
  if Fluid.equal prior.fluid fluid then 0. else Fluid.wash_time prior.fluid

let conflict_free g xy iv fluid =
  let cell = cell_exn g xy in
  (not cell.blocked)
  && List.for_all
       (fun o ->
         if Interval.overlaps o.interval iv then false
         else if Interval.hi o.interval <= Interval.lo iv then
           Interval.lo iv +. 1e-9
           >= Interval.hi o.interval +. wash_between o fluid
         else true)
       cell.occs

let required_delay g xy iv fluid =
  let cell = cell_exn g xy in
  if cell.blocked then infinity
  else begin
    let rec settle delay fuel =
      if fuel = 0 then delay
      else begin
        let shifted = Interval.shift iv delay in
        let worst =
          List.fold_left
            (fun acc o ->
              let needed =
                if Interval.overlaps o.interval shifted
                   || (Interval.hi o.interval <= Interval.lo shifted
                      && Interval.lo shifted +. 1e-9
                         < Interval.hi o.interval +. wash_between o fluid)
                then
                  Interval.hi o.interval +. wash_between o fluid
                  -. Interval.lo shifted
                else 0.
              in
              Float.max acc needed)
            0. cell.occs
        in
        if worst <= 1e-9 then delay else settle (delay +. worst) (fuel - 1)
      end
    in
    settle 0. (List.length cell.occs + 2)
  end

let wash_debt g xy ~at fluid =
  let cell = cell_exn g xy in
  let latest_prior =
    List.fold_left
      (fun acc o ->
        if Interval.hi o.interval <= at +. 1e-9 then
          match acc with
          | Some best
            when Interval.hi best.interval >= Interval.hi o.interval ->
            acc
          | Some _ | None -> Some o
        else acc)
      None cell.occs
  in
  match latest_prior with
  | Some o -> wash_between o fluid
  | None -> 0.

let neighbours g (x, y) =
  List.filter (in_bounds g) [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]

let used_cells g =
  let acc = ref [] in
  Array.iteri
    (fun i cell ->
      if cell.occs <> [] then
        acc := (i mod g.grid_width, i / g.grid_width) :: !acc)
    g.cells;
  !acc
