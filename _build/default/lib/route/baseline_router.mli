(** Baseline routing: construction by correction (paper §V).

    Construction: every task gets the plain shortest obstacle-avoiding
    path, oblivious to time-slot conflicts, cell weights, and wash times.
    Correction: tasks are revisited in start order; a task whose path
    conflicts with already-committed occupations is first re-routed with a
    conflict-aware (but still unweighted) search, and postponed along its
    original path when no alternative exists.  Postponements surface as
    per-edge delays that the caller feeds to {!Mfb_schedule.Retime},
    inflating the baseline's execution time exactly like the shared
    channel segment of the paper's Fig. 4(a). *)

val route :
  ?route_io:bool ->
  we:float ->
  tc:float ->
  Mfb_place.Chip.t ->
  Mfb_schedule.Types.t ->
  Routed.result
(** [route ~we ~tc chip sched]; [we] only initialises cell weights (the
    baseline never reads them).
    @raise Invalid_argument if [we < 0] or [tc <= 0]. *)
