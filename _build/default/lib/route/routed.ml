module Interval = Mfb_util.Interval
module Types = Mfb_schedule.Types

let pitch_mm = 10.

type kind = Transport | Dispense | Waste

type task = {
  transport : Types.transport;
  kind : kind;
  path : (int * int) list;
  delay : float;
  pre_wash : float;
  washed_cells : int;
}

type result = {
  tasks : task list;
  grid : Rgrid.t;
  total_channel_length_mm : float;
  total_channel_wash : float;
  total_delay : float;
  unresolved : int;
}

let occupancy ~tc task =
  let tr = task.transport in
  let removal = tr.removal +. task.delay in
  let depart = tr.depart +. task.delay in
  let arrive = tr.arrive +. task.delay in
  let cache = depart -. removal in
  let n = List.length task.path in
  if cache <= 1e-9 || n <= 2 then
    List.map (fun xy -> (xy, Interval.make removal arrive)) task.path
  else begin
    (* The evicted fluid is pushed through the source port into the
       adjacent channel cell, parks there until [depart], then sweeps to
       the destination.  Parking at the source side keeps the contended
       destination ports free until the actual arrival window. *)
    let indexed = List.mapi (fun i xy -> (i, xy)) task.path in
    List.map
      (fun (i, xy) ->
        let iv =
          if i = 0 then Interval.make removal (Float.min (removal +. tc) arrive)
          else if i = 1 then Interval.make removal arrive
          else Interval.make depart arrive
        in
        (xy, iv))
      indexed
  end

let measure_wash grid ~tc task =
  List.fold_left
    (fun (worst, count) (xy, iv) ->
      let debt = Rgrid.wash_debt grid xy ~at:(Interval.lo iv) task.transport.fluid in
      ((if debt > worst then debt else worst),
       if debt > 0. then count + 1 else count))
    (0., 0)
    (occupancy ~tc task)

let commit ?(weight_update = true) grid ~tc task =
  List.iter
    (fun (xy, interval) ->
      Rgrid.add_occupation grid xy
        { Rgrid.interval; fluid = task.transport.fluid })
    (occupancy ~tc task);
  if weight_update then begin
    let residue_wash = Mfb_bioassay.Fluid.wash_time task.transport.fluid in
    List.iter (fun xy -> Rgrid.set_weight grid xy residue_wash) task.path
  end

let windows ~tc (tr : Types.transport) ~delay ~near_src =
  ignore tc;
  let removal = tr.removal +. delay in
  let depart = tr.depart +. delay in
  let arrive = tr.arrive +. delay in
  (* Only the port and parking cells — both within distance 1 of a source
     port — hold the fluid during the cache; every cell further out sees
     just the final sweep (matching {!occupancy}). *)
  if near_src || depart -. removal <= 1e-9 then
    [ Interval.make removal arrive ]
  else [ Interval.make depart arrive ]

let near_any ports (x1, y1) =
  List.exists (fun (x2, y2) -> abs (x1 - x2) + abs (y1 - y2) <= 1) ports

let usable grid ~tc tr ~delay ~src_ports xy =
  List.for_all
    (fun iv -> Rgrid.conflict_free grid xy iv tr.Types.fluid)
    (windows ~tc tr ~delay ~near_src:(near_any src_ports xy))

let settle_delay grid ~tc (tr : Types.transport) ~src_ports path =
  let fuel = (8 * List.length path) + 8 in
  let cell_delay delay xy =
    List.fold_left
      (fun acc iv ->
        Float.max acc (Rgrid.required_delay grid xy iv tr.fluid))
      0.
      (windows ~tc tr ~delay ~near_src:(near_any src_ports xy))
  in
  let rec loop delay fuel =
    if fuel = 0 then None
    else begin
      let worst =
        List.fold_left (fun acc xy -> Float.max acc (cell_delay delay xy))
          0. path
      in
      if worst = infinity then None
      else if worst <= 1e-9 then Some delay
      else loop (delay +. worst) (fuel - 1)
    end
  in
  loop 0. fuel

let finalize grid tasks ~unresolved =
  let distinct = List.length (Rgrid.used_cells grid) in
  {
    tasks = List.rev tasks;
    grid;
    total_channel_length_mm = float_of_int distinct *. pitch_mm;
    total_channel_wash =
      List.fold_left (fun acc t -> acc +. t.pre_wash) 0. tasks;
    total_delay = List.fold_left (fun acc t -> acc +. t.delay) 0. tasks;
    unresolved;
  }
