(** Wash-flush planning for contaminated channels.

    The paper (§II-B, after Hu et al.) models washing as injecting a
    buffer flow through the dirty channel for the residue's wash time.
    This module plans those flushes for a routed design: every transport
    that crosses residues of a different fluid gets a buffer flush that
    enters from the chip border, sweeps the dirty path, and drains back to
    the border, scheduled to finish exactly when the transport needs the
    channel.

    The plan is analysis output (wash feasibility and buffer usage); it
    does not feed back into the schedule — the router's conflict rules
    already guarantee the wash {e time} fits (Eq. 5). *)

type flush = {
  task_edge : int * int;   (** the transport whose path is flushed *)
  duration : float;        (** buffer injection time (the task's pre-wash) *)
  window : Mfb_util.Interval.t;
      (** when the buffer flows: ends at the task's channel entry *)
  route : (int * int) list;
      (** border inlet -> dirty path -> border outlet, inclusive *)
  interferences : int;
      (** cells of the route occupied by other fluids during [window] —
          each would force the flush to detour or re-time on real
          hardware *)
}

type t = {
  flushes : flush list;           (** in routing order *)
  total_flush_time : float;       (** sum of durations *)
  total_route_cells : int;        (** sum of route lengths *)
  total_interferences : int;
  buffer_volume_cells : float;
      (** cells x seconds of buffer flow: a proxy for wash-buffer
          consumption *)
}

val plan : tc:float -> Routed.result -> t
(** [plan ~tc routing] plans one flush per routed task that reported a
    positive pre-wash.  Tasks whose path cannot reach the border (fully
    landlocked by components — not possible on chips built by
    {!Mfb_place.Chip}) flush in place with an empty approach. *)
