module Chip = Mfb_place.Chip

type violation = { rule : string; message : string }

let check (chip : Chip.t) (routing : Routed.result) =
  let grid = routing.grid in
  let violations = ref [] in
  let flag rule fmt =
    Printf.ksprintf
      (fun message -> violations := { rule; message } :: !violations)
      fmt
  in
  (* Placement rules. *)
  let n = Array.length chip.components in
  for i = 0 to n - 1 do
    if not (Chip.in_bounds chip i) then
      flag "placement" "component %d out of bounds" i;
    for j = i + 1 to n - 1 do
      if not (Chip.pair_legal chip i j) then
        flag "placement" "components %d and %d violate spacing" i j
    done
  done;
  (* Path rules. *)
  let path_cells = Hashtbl.create 64 in
  List.iter
    (fun (task : Routed.task) ->
      let p, o = task.transport.edge in
      let describe = Printf.sprintf "o%d->o%d" p o in
      (match task.path with
       | [] -> flag "path" "%s has an empty path" describe
       | first :: rest ->
         let last = List.fold_left (fun _ xy -> xy) first rest in
         let on_border (x, y) =
           x = 0 || y = 0 || x = Rgrid.width grid - 1
           || y = Rgrid.height grid - 1
         in
         (match task.kind with
          | Routed.Transport ->
            if not (List.mem first (Rgrid.ports grid task.transport.src)) then
              flag "port" "%s does not start at a source port" describe;
            if not (List.mem last (Rgrid.ports grid task.transport.dst)) then
              flag "port" "%s does not end at a destination port" describe
          | Routed.Dispense ->
            if not (on_border first) then
              flag "port" "dispense %s does not start at the border" describe;
            if not (List.mem last (Rgrid.ports grid task.transport.dst)) then
              flag "port" "dispense %s does not reach a component port"
                describe
          | Routed.Waste ->
            if not (List.mem first (Rgrid.ports grid task.transport.src)) then
              flag "port" "waste %s does not start at a component port"
                describe;
            if not (on_border last) then
              flag "port" "waste %s does not reach the border" describe);
         let rec walk = function
           | (x1, y1) :: (((x2, y2) :: _) as tl) ->
             if abs (x1 - x2) + abs (y1 - y2) <> 1 then
               flag "path" "%s jumps from (%d,%d) to (%d,%d)" describe x1 y1
                 x2 y2;
             walk tl
           | [ _ ] | [] -> ()
         in
         walk task.path;
         List.iter
           (fun xy ->
             Hashtbl.replace path_cells xy ();
             if not (Rgrid.in_bounds grid xy) then
               flag "path" "%s leaves the grid at (%d,%d)" describe (fst xy)
                 (snd xy)
             else if Rgrid.blocked grid xy then
               flag "path" "%s crosses a component at (%d,%d)" describe
                 (fst xy) (snd xy))
           task.path))
    routing.tasks;
  (* Connectivity: every component involved in traffic must touch the
     channel network. *)
  let used = Rgrid.used_cells grid in
  let used_index = Hashtbl.create (List.length used) in
  List.iteri (fun i xy -> Hashtbl.replace used_index xy i) used;
  let dsu = Mfb_util.Dsu.create (max 1 (List.length used)) in
  List.iter
    (fun xy ->
      let i = Hashtbl.find used_index xy in
      List.iter
        (fun nb ->
          match Hashtbl.find_opt used_index nb with
          | Some j -> Mfb_util.Dsu.union dsu i j
          | None -> ())
        (Rgrid.neighbours grid xy))
    used;
  let active_components =
    List.concat_map
      (fun (task : Routed.task) ->
        [ task.transport.src; task.transport.dst ])
      routing.tasks
    |> List.sort_uniq compare
  in
  List.iter
    (fun c ->
      let attached =
        List.exists
          (fun port -> Hashtbl.mem used_index port)
          (Rgrid.ports grid c)
      in
      if not attached then
        flag "connectivity" "component %d exchanges fluid but no channel \
                             reaches any of its ports" c)
    active_components;
  (* Every occupied grid cell must belong to some routed path. *)
  List.iter
    (fun xy ->
      if not (Hashtbl.mem path_cells xy) then
        flag "occupation" "cell (%d,%d) is occupied but on no path" (fst xy)
          (snd xy))
    used;
  List.rev !violations

let is_clean chip routing = check chip routing = []

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.message
