(* Washing study: how the diffusion coefficient of the fluids drives the
   synthesis result (paper §II-B and Fig. 2(b)).

   First prints the wash-time model over the physical range of diffusion
   coefficients, then synthesises the same assay twice — once with
   easy-to-wash small molecules, once with hard-to-wash cell-scale
   fluids — and shows what the wash burden does to the schedule.

   Run with: dune exec examples/washing_study.exe *)

module B = Mfb_bioassay

let wash_curve () =
  print_endline "Wash-time model (log-linear fit through the paper's anchors):";
  print_endline "  diffusion (cm^2/s)   wash time (s)";
  List.iter
    (fun d -> Printf.printf "  %12g        %6.2f\n" d (B.Fluid.wash_time_of_diffusion d))
    [ 1e-5; 5e-6; 1e-6; 4e-7; 1e-7; 5e-8; 2e-8; 1e-8; 1e-9 ];
  print_newline ()

(* A mixing ladder that reuses components heavily, so wash time matters. *)
let ladder name fluid =
  let ops =
    List.init 9 (fun id ->
        B.Operation.make ~id ~kind:Mix ~duration:4. ~output:fluid)
  in
  let edges = List.init 8 (fun i -> (i, i + 1)) in
  B.Seq_graph.create ~name ~ops ~edges

(* The same ladder alternating two different fluids: every channel reuse
   now needs a wash. *)
let alternating name fluid_a fluid_b =
  let ops =
    List.init 9 (fun id ->
        let output = if id mod 2 = 0 then fluid_a else fluid_b in
        B.Operation.make ~id ~kind:Mix ~duration:4. ~output)
  in
  let edges = List.init 8 (fun i -> (i, i + 1)) in
  B.Seq_graph.create ~name ~ops ~edges

let run graph =
  let allocation =
    Mfb_component.Allocation.make ~mixers:2 ~heaters:0 ~filters:0 ~detectors:0
  in
  Mfb_core.Flow.run graph allocation

let () =
  wash_curve ();
  let lysis = B.Fluid.make ~name:"lysis-buffer" ~diffusion:1e-5 in
  let virus = B.Fluid.make ~name:"virus-sample" ~diffusion:1e-8 in
  let scenarios =
    [
      ("all easy-to-wash (lysis buffer)", ladder "easy-ladder" lysis);
      ("all hard-to-wash (virus-scale)", ladder "hard-ladder" virus);
      ("alternating fluids", alternating "alternating-ladder" lysis virus);
    ]
  in
  print_endline "Same 9-mix ladder on 2 mixers, three fluid scenarios:";
  List.iter
    (fun (label, graph) ->
      let r = run graph in
      Printf.printf
        "  %-34s exec %6.1f s   component wash %6.1f s   channel wash %5.1f s\n"
        label r.execution_time r.component_wash_time r.channel_wash_time)
    scenarios;
  print_newline ();
  print_endline
    "Hard-to-wash fluids stretch the same dependence chain: every component\n\
     reuse pays the residue wash, which is exactly why the paper's Case-I\n\
     binding (consume the hardest residue in place) pays off."
