(* Watch a synthesised chip execute: the discrete-event replay renders
   ASCII frames of the PCR design in motion — components executing [M],
   holding fluids [m], washing [~], idle [_], and fluids moving through
   channels [star].

   Run with: dune exec examples/replay_animation.exe *)

let () =
  let inst = Mfb_core.Suite.pcr () in
  let r =
    (* Route inlet dispensing and waste drains too, so the animation shows
       fluids entering from and leaving to the chip border. *)
    Mfb_core.Flow.run ~route_io:true inst.graph inst.allocation
  in
  let sim =
    Mfb_sim.Replay.create ~tc:2.0 ~chip:r.chip ~schedule:r.schedule
      ~routing:r.routing
  in
  (* Independent end-to-end verification first. *)
  (match Mfb_sim.Replay.check sim with
   | [] -> print_endline "replay check: no violations\n"
   | v ->
     List.iter
       (fun (x : Mfb_sim.Replay.violation) ->
         Printf.printf "VIOLATION t=%.2f: %s\n" x.time x.message)
       v);
  print_string (Mfb_core.Gantt.render r.schedule);
  print_newline ();
  (* Animate at a handful of interesting instants: each event boundary
     plus a frame in the middle of each interval. *)
  let events = Mfb_sim.Replay.events sim in
  let sample_times =
    let rec midpoints = function
      | a :: (b :: _ as rest) -> ((a +. b) /. 2.) :: midpoints rest
      | [ _ ] | [] -> []
    in
    midpoints events
  in
  List.iter
    (fun t ->
      print_string (Mfb_sim.Replay.frame sim t);
      print_newline ())
    sample_times
