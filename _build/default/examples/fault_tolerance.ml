(* Fault tolerance: what happens when a channel cell fails after
   fabrication?  The repair engine rips up the transports crossing the
   defect and re-routes them around it under the original timing windows;
   the single-defect yield is the fraction of channel cells whose failure
   the design survives.

   Run with: dune exec examples/fault_tolerance.exe *)

let () =
  let cfg = Mfb_core.Config.default in
  print_endline
    "Single-defect yield per benchmark (every used channel cell failed in\n\
     turn; repair = conflict-aware re-route, schedule untouched):\n";
  List.iter
    (fun (inst : Mfb_core.Suite.instance) ->
      let r = Mfb_core.Flow.run ~config:cfg inst.graph inst.allocation in
      let y =
        Mfb_route.Repair.single_defect_yield ~we:cfg.we ~tc:cfg.tc r.chip
          r.schedule r.routing
      in
      Printf.printf "  %-11s %3.0f%%  (%d of %d defects survivable)\n"
        r.benchmark (100. *. y.yield) y.survived y.cells_tested;
      match y.worst with
      | Some o ->
        Printf.printf
          "              worst cell (%d,%d): %d tasks hit, %d re-routable\n"
          (fst o.defect) (snd o.defect) o.affected o.repaired
      | None -> ())
    (Mfb_core.Suite.all ());
  print_newline ();
  print_endline
    "Dense designs trade robustness for wirelength: detour-free layouts\n\
     leave no alternative corridors to repair into."
