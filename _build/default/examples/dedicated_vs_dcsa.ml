(* The paper's motivation, quantified: the same bioassays scheduled on the
   conventional architecture (dedicated storage unit with serialized ports
   and bounded capacity, paper Fig. 1(a)) versus distributed channel
   storage (DCSA, Fig. 1(b)).

   Run with: dune exec examples/dedicated_vs_dcsa.exe *)

let tc = 2.0

let () =
  let table =
    Mfb_util.Table.create
      ~headers:
        [ "Benchmark"; "DCSA exec"; "Dedicated exec"; "Slowdown (%)";
          "Storage trips"; "Residence (s)"; "Peak cells" ]
  in
  Mfb_util.Table.set_aligns table
    (Mfb_util.Table.Left :: List.init 6 (fun _ -> Mfb_util.Table.Right));
  List.iter
    (fun (inst : Mfb_core.Suite.instance) ->
      let dcsa = Mfb_schedule.Dcsa_scheduler.schedule ~tc inst.graph inst.allocation in
      let ded =
        Mfb_schedule.Dedicated_scheduler.schedule ~tc ~capacity:4 inst.graph
          inst.allocation
      in
      Mfb_util.Table.add_row table
        [
          Mfb_bioassay.Seq_graph.name inst.graph;
          Printf.sprintf "%.1f" dcsa.makespan;
          Printf.sprintf "%.1f" ded.schedule.makespan;
          Printf.sprintf "%.1f"
            (Mfb_util.Stats.percent_increase ~ours:ded.schedule.makespan
               ~baseline:dcsa.makespan);
          string_of_int ded.storage_trips;
          Printf.sprintf "%.1f" ded.storage_residence;
          string_of_int ded.peak_occupancy;
        ])
    (Mfb_core.Suite.all ());
  print_endline
    "Conventional dedicated-storage architecture vs DCSA (scheduling level,\n\
     storage capacity 4, one entrance + one exit port):";
  Mfb_util.Table.print table
