(* PCR walk-through: the paper's smallest real-life benchmark, end to end,
   with the proposed flow and the baseline side by side.

   Run with: dune exec examples/pcr_assay.exe *)

let describe title (r : Mfb_core.Result.t) =
  Format.printf "== %s ==@." title;
  Format.printf "%a@.@." Mfb_core.Result.pp_summary r;
  Format.printf "%a@." Mfb_schedule.Types.pp r.schedule;
  Format.printf "washes:@.";
  List.iter
    (fun (w : Mfb_schedule.Types.wash_event) ->
      Format.printf "  component %d: residue of o%d, %.1f s starting at %.1f@."
        w.component w.residue_op w.wash_duration w.wash_start)
    r.schedule.washes;
  Format.printf "transports:@.";
  List.iter
    (fun tr -> Format.printf "  %a@." Mfb_schedule.Types.pp_transport tr)
    r.schedule.transports;
  print_newline ();
  print_string (Mfb_core.Layout_render.render r);
  print_newline ()

let () =
  let inst = Mfb_core.Suite.pcr () in
  Format.printf "PCR: %a, allocation %a@.@." Mfb_bioassay.Seq_graph.pp
    inst.graph Mfb_component.Allocation.pp inst.allocation;
  describe "Proposed DCSA flow" (Mfb_core.Flow.run inst.graph inst.allocation);
  describe "Baseline (construction by correction)"
    (Mfb_core.Baseline.run inst.graph inst.allocation)
