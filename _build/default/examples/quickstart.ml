(* Quickstart: describe a bioassay, pick an allocation, synthesise the
   physical design, and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

module B = Mfb_bioassay

let () =
  (* 1. Model the bioassay as a sequencing graph.  Operations carry their
     kind, execution time, and the fluid they produce (whose diffusion
     coefficient decides how long residues take to wash away). *)
  let serum = B.Fluid.make ~name:"serum-sample" ~diffusion:4e-7 in
  let reagent = B.Fluid.make ~name:"assay-reagent" ~diffusion:1e-6 in
  let lysate = B.Fluid.make ~name:"cell-lysate" ~diffusion:2e-8 in
  let ops =
    [
      B.Operation.make ~id:0 ~kind:Mix ~duration:5. ~output:serum;
      B.Operation.make ~id:1 ~kind:Mix ~duration:4. ~output:reagent;
      B.Operation.make ~id:2 ~kind:Mix ~duration:6. ~output:lysate;
      B.Operation.make ~id:3 ~kind:Heat ~duration:4. ~output:lysate;
      B.Operation.make ~id:4 ~kind:Mix ~duration:5. ~output:reagent;
      B.Operation.make ~id:5 ~kind:Detect ~duration:3. ~output:serum;
    ]
  in
  let edges = [ (0, 2); (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let graph = B.Seq_graph.create ~name:"quickstart-assay" ~ops ~edges in

  (* 2. Choose how many components of each kind the chip may use. *)
  let allocation =
    Mfb_component.Allocation.make ~mixers:2 ~heaters:1 ~filters:0 ~detectors:1
  in

  (* 3. Run the top-down DCSA synthesis flow (paper Algs. 1 + 2). *)
  let result = Mfb_core.Flow.run graph allocation in

  (* 4. Inspect the outcome. *)
  Format.printf "%a@.@." Mfb_core.Result.pp_summary result;
  Format.printf "%a@." Mfb_schedule.Types.pp result.schedule;
  List.iter
    (fun tr -> Format.printf "  transport %a@." Mfb_schedule.Types.pp_transport tr)
    result.schedule.transports;
  print_newline ();
  print_string (Mfb_core.Layout_render.render result);

  (* 5. Compare against the construction-by-correction baseline. *)
  let baseline = Mfb_core.Baseline.run graph allocation in
  Format.printf "@.baseline: %a@." Mfb_core.Result.pp_summary baseline;
  Format.printf "speed-up over BA: %.1f%%@."
    (Mfb_util.Stats.percent_improvement ~ours:result.execution_time
       ~baseline:baseline.execution_time)
