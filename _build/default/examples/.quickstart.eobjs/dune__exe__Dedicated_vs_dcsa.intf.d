examples/dedicated_vs_dcsa.mli:
