examples/replay_animation.mli:
