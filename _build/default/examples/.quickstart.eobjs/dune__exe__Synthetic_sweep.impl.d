examples/synthetic_sweep.ml: List Mfb_bioassay Mfb_component Mfb_core Mfb_util Printf
