examples/allocation_explorer.ml: List Mfb_bioassay Mfb_component Mfb_core Printf
