examples/washing_study.ml: List Mfb_bioassay Mfb_component Mfb_core Printf
