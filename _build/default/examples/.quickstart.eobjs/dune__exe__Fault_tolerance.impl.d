examples/fault_tolerance.ml: List Mfb_core Mfb_route Printf
