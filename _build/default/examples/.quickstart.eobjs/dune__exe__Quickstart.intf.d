examples/quickstart.mli:
