examples/replay_animation.ml: List Mfb_core Mfb_sim Printf
