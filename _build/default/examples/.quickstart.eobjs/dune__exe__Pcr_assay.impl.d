examples/pcr_assay.ml: Format List Mfb_bioassay Mfb_component Mfb_core Mfb_schedule
