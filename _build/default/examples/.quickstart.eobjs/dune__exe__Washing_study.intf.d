examples/washing_study.mli:
