examples/dedicated_vs_dcsa.ml: List Mfb_bioassay Mfb_core Mfb_schedule Mfb_util Printf
