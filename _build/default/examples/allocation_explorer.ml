(* Architectural exploration: how many components does an assay actually
   need?  The explorer sweeps allocation vectors, schedules each with the
   DCSA engine, and reports the Pareto frontier of (component count,
   completion time) plus the knee point — the smallest allocation within
   5 % of the fastest.

   Run with: dune exec examples/allocation_explorer.exe *)

let explore_one (inst : Mfb_core.Suite.instance) =
  let name = Mfb_bioassay.Seq_graph.name inst.graph in
  Printf.printf "\n%s (%d ops; Table-I allocation %s):\n" name
    (Mfb_bioassay.Seq_graph.n_ops inst.graph)
    (Mfb_component.Allocation.to_string inst.allocation);
  let frontier = Mfb_core.Allocator.explore inst.graph in
  List.iter
    (fun (p : Mfb_core.Allocator.point) ->
      Printf.printf "  %-10s %2d components  %6.1f s  util %4.1f%%\n"
        (Mfb_component.Allocation.to_string p.allocation)
        p.components p.completion_time (100. *. p.utilization))
    frontier;
  match Mfb_core.Allocator.knee frontier with
  | Some k ->
    Printf.printf "  knee: %s — %.1f s with %d components\n"
      (Mfb_component.Allocation.to_string k.allocation)
      k.completion_time k.components
  | None -> ()

let () =
  print_endline
    "Pareto frontier of (allocated components, completion time) per assay:";
  List.iter explore_one
    [ Mfb_core.Suite.cpa (); Mfb_core.Suite.synthetic2 ();
      Mfb_core.Suite.synthetic4 () ]
