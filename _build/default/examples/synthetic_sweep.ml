(* Scale sweep: how the DCSA advantage grows with bioassay size.

   Generates seeded synthetic assays from 10 to 60 operations, synthesises
   each with both flows, and prints the comparison — the trend of the
   paper's Table I (larger inputs, larger improvement) in one table.

   Run with: dune exec examples/synthetic_sweep.exe *)

module Synthetic = Mfb_bioassay.Synthetic
module Allocation = Mfb_component.Allocation
module Stats = Mfb_util.Stats

let allocation_for n_ops =
  (* Roughly one component per six operations, spread across kinds. *)
  let m = max 2 (n_ops / 6) in
  Allocation.make ~mixers:m ~heaters:(max 1 (m / 2)) ~filters:(max 1 (m / 3))
    ~detectors:(max 1 (m / 3))

let () =
  let table =
    Mfb_util.Table.create
      ~headers:
        [ "Ops"; "Components"; "Exec ours"; "Exec BA"; "Imp (%)";
          "Cache ours"; "Cache BA"; "Chan ours"; "Chan BA" ]
  in
  List.iter
    (fun n_ops ->
      let graph =
        Synthetic.generate
          ~name:(Printf.sprintf "sweep-%d" n_ops)
          { Synthetic.default_params with
            n_ops;
            kind_weights = [| 4; 2; 2; 1 |];
            layer_width = max 3 (n_ops / 6);
            seed = 500 + n_ops }
      in
      let allocation = allocation_for n_ops in
      let ours = Mfb_core.Flow.run graph allocation in
      let ba = Mfb_core.Baseline.run graph allocation in
      Mfb_util.Table.add_row table
        [
          string_of_int n_ops;
          Allocation.to_string allocation;
          Printf.sprintf "%.1f" ours.execution_time;
          Printf.sprintf "%.1f" ba.execution_time;
          Printf.sprintf "%.1f"
            (Stats.percent_improvement ~ours:ours.execution_time
               ~baseline:ba.execution_time);
          Printf.sprintf "%.1f" ours.channel_cache_time;
          Printf.sprintf "%.1f" ba.channel_cache_time;
          Printf.sprintf "%.0f" ours.channel_length_mm;
          Printf.sprintf "%.0f" ba.channel_length_mm;
        ])
    [ 10; 20; 30; 40; 50; 60 ];
  print_endline "DCSA advantage as the bioassay grows:";
  Mfb_util.Table.print table
