(* Small helpers shared across test files. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec scan i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else scan (i + 1)
    in
    scan 0
  end

(* The seven Table-I instances, shared by scheduling/placement/routing
   tests. *)
let suite_instances () =
  List.map
    (fun (inst : Mfb_core.Suite.instance) -> (inst.graph, inst.allocation))
    (Mfb_core.Suite.all ())
