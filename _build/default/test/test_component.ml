(* Tests for components and allocations. *)

module Component = Mfb_component.Component
module Allocation = Mfb_component.Allocation
module Operation = Mfb_bioassay.Operation

let test_component_make () =
  let c = Component.make ~id:2 ~kind:Mix in
  Alcotest.(check int) "width" 3 c.width;
  Alcotest.(check int) "height" 3 c.height;
  Alcotest.(check string) "label" "Mixer2" (Component.label c);
  Alcotest.check_raises "negative id"
    (Invalid_argument "Component.make: negative id") (fun () ->
      ignore (Component.make ~id:(-1) ~kind:Mix))

let test_component_footprints () =
  Alcotest.(check (pair int int)) "mixer" (3, 3)
    (Component.default_footprint Mix);
  Alcotest.(check (pair int int)) "heater" (2, 2)
    (Component.default_footprint Heat);
  Alcotest.(check (pair int int)) "filter" (2, 2)
    (Component.default_footprint Filter);
  Alcotest.(check (pair int int)) "detector" (2, 2)
    (Component.default_footprint Detect)

let test_component_qualified () =
  let mixer = Component.make ~id:0 ~kind:Mix in
  let mix_op =
    Operation.make ~id:0 ~kind:Mix ~duration:1.
      ~output:(Mfb_bioassay.Fluid.of_palette 0)
  in
  let heat_op =
    Operation.make ~id:1 ~kind:Heat ~duration:1.
      ~output:(Mfb_bioassay.Fluid.of_palette 0)
  in
  Alcotest.(check bool) "same kind" true (Component.qualified mixer mix_op);
  Alcotest.(check bool) "other kind" false (Component.qualified mixer heat_op)

let test_allocation_invalid () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Allocation.make: negative count") (fun () ->
      ignore (Allocation.make ~mixers:(-1) ~heaters:0 ~filters:0 ~detectors:0));
  Alcotest.check_raises "empty"
    (Invalid_argument "Allocation.make: empty allocation") (fun () ->
      ignore (Allocation.make ~mixers:0 ~heaters:0 ~filters:0 ~detectors:0))

let test_allocation_total_count () =
  let a = Allocation.of_vector (3, 1, 0, 2) in
  Alcotest.(check int) "total" 6 (Allocation.total a);
  Alcotest.(check int) "mixers" 3 (Allocation.count a Mix);
  Alcotest.(check int) "heaters" 1 (Allocation.count a Heat);
  Alcotest.(check int) "filters" 0 (Allocation.count a Filter);
  Alcotest.(check int) "detectors" 2 (Allocation.count a Detect)

(* Regression for the [@]-evaluation-order bug: ids must be dense,
   ascending, and grouped mixers -> heaters -> filters -> detectors. *)
let test_allocation_component_ids () =
  let a = Allocation.of_vector (2, 1, 1, 2) in
  let comps = Allocation.components a in
  List.iteri
    (fun i (c : Component.t) ->
      Alcotest.(check int) (Printf.sprintf "id %d dense" i) i c.id)
    comps;
  let kinds = List.map (fun (c : Component.t) -> c.kind) comps in
  Alcotest.(check bool) "grouped by kind" true
    (kinds = [ Mix; Mix; Heat; Filter; Detect; Detect ])

let test_allocation_covers () =
  let g = Mfb_bioassay.Benchmarks.ivd () in
  Alcotest.(check bool) "mixers+detectors covers" true
    (Allocation.covers (Allocation.of_vector (1, 0, 0, 1)) g);
  Alcotest.(check bool) "missing detectors" false
    (Allocation.covers (Allocation.of_vector (3, 0, 0, 0)) g)

let test_allocation_minimal_for () =
  let g = Mfb_bioassay.Benchmarks.ivd () in
  let a = Allocation.minimal_for g in
  Alcotest.(check string) "minimal" "(1,0,0,1)" (Allocation.to_string a);
  Alcotest.(check bool) "covers" true (Allocation.covers a g)

let test_allocation_to_string () =
  Alcotest.(check string) "table-1 format" "(3,0,0,2)"
    (Allocation.to_string (Allocation.of_vector (3, 0, 0, 2)))

let suites =
  [
    ( "component",
      [
        Alcotest.test_case "make/label" `Quick test_component_make;
        Alcotest.test_case "footprints" `Quick test_component_footprints;
        Alcotest.test_case "qualified" `Quick test_component_qualified;
      ] );
    ( "allocation",
      [
        Alcotest.test_case "invalid" `Quick test_allocation_invalid;
        Alcotest.test_case "total/count" `Quick test_allocation_total_count;
        Alcotest.test_case "component ids ordered" `Quick
          test_allocation_component_ids;
        Alcotest.test_case "covers" `Quick test_allocation_covers;
        Alcotest.test_case "minimal_for" `Quick test_allocation_minimal_for;
        Alcotest.test_case "to_string" `Quick test_allocation_to_string;
      ] );
  ]
