(* Entry point aggregating all per-library suites. *)

let () =
  Alcotest.run "microflow"
    (Test_util.suites @ Test_bioassay.suites @ Test_component.suites
   @ Test_schedule.suites @ Test_place.suites @ Test_route.suites
   @ Test_core.suites @ Test_control.suites @ Test_sim.suites)
