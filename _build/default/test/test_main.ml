(* Entry point aggregating all per-library suites, plus direct tests of
   the Domain worker pool that everything parallel is built on. *)

module Pool = Mfb_util.Pool

exception Boom of int

let test_pool_map_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map order at jobs=%d" jobs)
        (List.map (fun x -> x * x) xs)
        (Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_pool_init_matches_array_init () =
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "init at jobs=%d" jobs)
        (Array.init 33 (fun i -> (i * 7) mod 13))
        (Pool.init ~jobs 33 (fun i -> (i * 7) mod 13)))
    [ 1; 3; 8 ]

let test_pool_propagates_worker_exception () =
  (* The failure must escape the worker domains, and deterministically:
     the lowest failing index wins no matter which domain hit it. *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "raise at jobs=%d" jobs)
        (Boom 17)
        (fun () ->
          ignore
            (Pool.init ~jobs 64 (fun i ->
                 if i >= 17 then raise (Boom i) else i))))
    [ 1; 2; 4 ]

let test_pool_empty_and_validation () =
  Alcotest.(check (list int)) "empty map" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check int) "empty init" 0 (Array.length (Pool.init ~jobs:4 0 succ));
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.init: jobs < 1")
    (fun () -> ignore (Pool.init ~jobs:0 3 succ));
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1);
  Alcotest.(check bool) "default_jobs <= 8" true (Pool.default_jobs () <= 8)

let pool_suites =
  [
    ( "util.pool",
      [
        Alcotest.test_case "map preserves input order" `Quick
          test_pool_map_preserves_order;
        Alcotest.test_case "init matches Array.init" `Quick
          test_pool_init_matches_array_init;
        Alcotest.test_case "propagates worker exceptions" `Quick
          test_pool_propagates_worker_exception;
        Alcotest.test_case "empty inputs and validation" `Quick
          test_pool_empty_and_validation;
      ] );
  ]

let () =
  Alcotest.run "microflow"
    (pool_suites @ Test_util.suites @ Test_bioassay.suites
   @ Test_component.suites @ Test_schedule.suites @ Test_place.suites
   @ Test_route.suites @ Test_core.suites @ Test_control.suites
   @ Test_sim.suites @ Test_parallel.suites)
