(* Tests for the generic substrates in Mfb_util. *)

module Pqueue = Mfb_util.Pqueue
module Interval = Mfb_util.Interval
module Interval_set = Mfb_util.Interval_set
module Rng = Mfb_util.Rng
module Dsu = Mfb_util.Dsu
module Stats = Mfb_util.Stats
module Table = Mfb_util.Table
module Json = Mfb_util.Json

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name gen prop =
  (* A per-test fixed seed keeps property tests reproducible run to run. *)
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

(* --- Pqueue --- *)

let test_pqueue_empty () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Pqueue.length q);
  Alcotest.(check bool) "pop" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek" true (Pqueue.peek q = None)

let test_pqueue_order () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (fun p -> Pqueue.push q p (string_of_int p)) [ 5; 1; 4; 2; 3 ];
  let popped = List.init 5 (fun _ -> fst (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] popped

let test_pqueue_max_via_cmp () =
  let q = Pqueue.create ~cmp:(fun a b -> compare b a) in
  List.iter (fun p -> Pqueue.push q p p) [ 5; 1; 4 ];
  Alcotest.(check int) "max first" 5 (fst (Option.get (Pqueue.pop q)))

let test_pqueue_peek_stable () =
  let q = Pqueue.create ~cmp:compare in
  Pqueue.push q 2 "b";
  Pqueue.push q 1 "a";
  Alcotest.(check int) "peek min" 1 (fst (Option.get (Pqueue.peek q)));
  Alcotest.(check int) "length unchanged" 2 (Pqueue.length q)

let test_pqueue_interleaved () =
  let q = Pqueue.create ~cmp:compare in
  Pqueue.push q 3 ();
  Pqueue.push q 1 ();
  Alcotest.(check int) "first pop" 1 (fst (Option.get (Pqueue.pop q)));
  Pqueue.push q 2 ();
  Alcotest.(check int) "second pop" 2 (fst (Option.get (Pqueue.pop q)));
  Alcotest.(check int) "third pop" 3 (fst (Option.get (Pqueue.pop q)))

let test_pqueue_to_list () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (fun p -> Pqueue.push q p p) [ 3; 1; 2 ];
  let items = List.sort compare (List.map fst (Pqueue.to_list q)) in
  Alcotest.(check (list int)) "all present" [ 1; 2; 3 ] items;
  Alcotest.(check int) "length unchanged" 3 (Pqueue.length q)

let prop_pqueue_sorts =
  qtest "pqueue pops in sorted order"
    QCheck2.Gen.(list_size (int_bound 200) int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (fun x -> Pqueue.push q x x) xs;
      let popped =
        List.init (List.length xs) (fun _ -> fst (Option.get (Pqueue.pop q)))
      in
      popped = List.sort compare xs)

let prop_pqueue_length =
  qtest "pqueue length tracks pushes"
    QCheck2.Gen.(list_size (int_bound 100) int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (fun x -> Pqueue.push q x ()) xs;
      Pqueue.length q = List.length xs)

(* --- Interval --- *)

let test_interval_make_invalid () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Interval.make: hi < lo")
    (fun () -> ignore (Interval.make 2. 1.));
  Alcotest.check_raises "nan"
    (Invalid_argument "Interval.make: non-finite bound") (fun () ->
      ignore (Interval.make Float.nan 1.))

let test_interval_basics () =
  let iv = Interval.make 1. 4. in
  check_float "lo" 1. (Interval.lo iv);
  check_float "hi" 4. (Interval.hi iv);
  check_float "duration" 3. (Interval.duration iv);
  Alcotest.(check bool) "not empty" false (Interval.is_empty iv);
  Alcotest.(check bool) "empty" true (Interval.is_empty (Interval.make 2. 2.))

let test_interval_overlap () =
  let a = Interval.make 0. 2. and b = Interval.make 1. 3. in
  Alcotest.(check bool) "overlap" true (Interval.overlaps a b);
  let c = Interval.make 2. 4. in
  Alcotest.(check bool) "half-open adjacency" false (Interval.overlaps a c);
  let e = Interval.make 1. 1. in
  Alcotest.(check bool) "empty overlaps nothing" false (Interval.overlaps a e)

let test_interval_contains () =
  let iv = Interval.make 1. 3. in
  Alcotest.(check bool) "lo included" true (Interval.contains iv 1.);
  Alcotest.(check bool) "hi excluded" false (Interval.contains iv 3.);
  Alcotest.(check bool) "middle" true (Interval.contains iv 2.)

let test_interval_shift_hull () =
  let iv = Interval.shift (Interval.make 1. 3.) 2. in
  check_float "shift lo" 3. (Interval.lo iv);
  check_float "shift hi" 5. (Interval.hi iv);
  let h = Interval.hull (Interval.make 0. 1.) (Interval.make 5. 6.) in
  check_float "hull lo" 0. (Interval.lo h);
  check_float "hull hi" 6. (Interval.hi h)

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun lo len -> Interval.make lo (lo +. Float.abs len))
      (float_bound_inclusive 100.) (float_bound_inclusive 50.))

let prop_interval_overlap_sym =
  qtest "interval overlap is symmetric"
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a)

let prop_interval_hull_contains =
  qtest "hull spans both intervals"
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.lo h <= Interval.lo a
      && Interval.lo h <= Interval.lo b
      && Interval.hi h >= Interval.hi a
      && Interval.hi h >= Interval.hi b)

(* --- Interval_set --- *)

let test_iset_empty () =
  Alcotest.(check bool) "empty" true (Interval_set.is_empty Interval_set.empty);
  Alcotest.(check int) "cardinal" 0 (Interval_set.cardinal Interval_set.empty)

let test_iset_add_empty_interval () =
  let s = Interval_set.add (Interval.make 1. 1.) Interval_set.empty in
  Alcotest.(check bool) "ignored" true (Interval_set.is_empty s)

let test_iset_overlaps () =
  let s =
    Interval_set.of_list [ Interval.make 0. 2.; Interval.make 5. 7. ]
  in
  Alcotest.(check bool) "hit" true
    (Interval_set.overlaps (Interval.make 1. 3.) s);
  Alcotest.(check bool) "gap" false
    (Interval_set.overlaps (Interval.make 3. 5.) s);
  Alcotest.(check bool) "late" false
    (Interval_set.overlaps (Interval.make 8. 9.) s)

let test_iset_first_conflict () =
  let s =
    Interval_set.of_list [ Interval.make 5. 7.; Interval.make 0. 2. ]
  in
  match Interval_set.first_conflict (Interval.make 1. 6.) s with
  | Some iv -> check_float "earliest" 0. (Interval.lo iv)
  | None -> Alcotest.fail "expected conflict"

let test_iset_free_from () =
  let s =
    Interval_set.of_list [ Interval.make 2. 4.; Interval.make 5. 6. ]
  in
  check_float "before gap too small" 6.
    (Interval_set.free_from 1. ~duration:2. s);
  check_float "fits in gap" 4. (Interval_set.free_from 3. ~duration:1. s);
  check_float "already free" 0. (Interval_set.free_from 0. ~duration:2. s)

let test_iset_total_duration () =
  let s =
    Interval_set.of_list [ Interval.make 0. 2.; Interval.make 5. 8. ]
  in
  check_float "sum" 5. (Interval_set.total_duration s)

let prop_iset_free_from_is_free =
  qtest "free_from result has no overlap"
    QCheck2.Gen.(
      pair
        (list_size (int_bound 10) interval_gen)
        (float_bound_inclusive 20.))
    (fun (ivs, duration) ->
      let s = Interval_set.of_list ivs in
      let t = Interval_set.free_from 0. ~duration s in
      (duration = 0.)
      || not (Interval_set.overlaps (Interval.make t (t +. duration)) s))

let prop_iset_elements_sorted =
  qtest "elements sorted by start"
    QCheck2.Gen.(list_size (int_bound 20) interval_gen)
    (fun ivs ->
      let sorted = Interval_set.elements (Interval_set.of_list ivs) in
      let rec ascending = function
        | a :: (b :: _ as rest) ->
          Interval.lo a <= Interval.lo b && ascending rest
        | [ _ ] | [] -> true
      in
      ascending sorted)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same sequence" xs ys

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  let xs = List.init 10 (fun _ -> Rng.int a 100) in
  let ys = List.init 10 (fun _ -> Rng.int b 100) in
  Alcotest.(check (list int)) "copy continues identically" xs ys

let test_rng_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in: hi < lo")
    (fun () -> ignore (Rng.int_in rng 3 2));
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

let test_rng_shuffle_multiset () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_diverges () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "independent streams" true (xs <> ys)

let prop_rng_int_bounds =
  qtest "Rng.int within bounds"
    QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      0 <= x && x < bound)

let prop_rng_int_in_bounds =
  qtest "Rng.int_in inclusive bounds"
    QCheck2.Gen.(triple int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let x = Rng.int_in rng lo (lo + span) in
      lo <= x && x <= lo + span)

let prop_rng_float_bounds =
  qtest "Rng.float within bounds" QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng 3.5 in
      0. <= x && x < 3.5)

(* --- Dsu --- *)

let test_dsu_basics () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "initial sets" 5 (Dsu.count d);
  Dsu.union d 0 1;
  Dsu.union d 2 3;
  Alcotest.(check int) "after unions" 3 (Dsu.count d);
  Alcotest.(check bool) "same 0 1" true (Dsu.same d 0 1);
  Alcotest.(check bool) "not same 1 2" false (Dsu.same d 1 2);
  Dsu.union d 1 2;
  Alcotest.(check bool) "transitive" true (Dsu.same d 0 3);
  Alcotest.(check int) "final" 2 (Dsu.count d)

let test_dsu_idempotent_union () =
  let d = Dsu.create 3 in
  Dsu.union d 0 1;
  Dsu.union d 0 1;
  Alcotest.(check int) "no double count" 2 (Dsu.count d)

let prop_dsu_find_canonical =
  qtest "find returns a fixed point"
    QCheck2.Gen.(list_size (int_bound 30) (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let d = Dsu.create 20 in
      List.iter (fun (a, b) -> Dsu.union d a b) unions;
      List.for_all (fun i -> Dsu.find d (Dsu.find d i) = Dsu.find d i)
        (List.init 20 Fun.id))

(* --- Stats --- *)

let test_stats_basics () =
  check_float "sum" 6. (Stats.sum [ 1.; 2.; 3. ]);
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "mean empty" 0. (Stats.mean []);
  check_float "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  check_float "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  check_float "stddev constant" 0. (Stats.stddev [ 2.; 2.; 2. ]);
  check_float "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  check_float "geomean empty" 0. (Stats.geomean [])

let test_stats_improvement () =
  check_float "reduction" 25.
    (Stats.percent_improvement ~ours:75. ~baseline:100.);
  check_float "increase" 50. (Stats.percent_increase ~ours:75. ~baseline:50.);
  check_float "zero baseline" 0.
    (Stats.percent_improvement ~ours:1. ~baseline:0.)

let test_stats_errors () =
  Alcotest.check_raises "min empty"
    (Invalid_argument "Stats.minimum: empty list") (fun () ->
      ignore (Stats.minimum []));
  Alcotest.check_raises "max empty"
    (Invalid_argument "Stats.maximum: empty list") (fun () ->
      ignore (Stats.maximum []))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (Testkit.contains s "name");
  Alcotest.(check bool) "has row" true (Testkit.contains s "alpha");
  Alcotest.(check bool) "has rule" true (Testkit.contains s "+--")

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only-one" ]);
  Alcotest.check_raises "align arity"
    (Invalid_argument "Table.set_aligns: arity mismatch") (fun () ->
      Table.set_aligns t [ Table.Left ])

(* --- Json --- *)

let test_json_compact () =
  let v =
    Json.Obj
      [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]
  in
  Alcotest.(check string) "compact" {|{"a":1,"b":[true,null]}|}
    (Json.to_string v)

let test_json_escape () =
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (Json.to_string (Json.String "a\"b\\c\nd"))

let test_json_floats () =
  Alcotest.(check string) "integral float" "2.0"
    (Json.to_string (Json.Float 2.));
  Alcotest.(check string) "fraction" "2.5" (Json.to_string (Json.Float 2.5))

let test_json_indent () =
  let v = Json.Obj [ ("x", Json.Int 1) ] in
  let s = Json.to_string ~indent:2 v in
  Alcotest.(check bool) "has newline" true (String.contains s '\n')

let suites =
  [
    ( "util.pqueue",
      [
        Alcotest.test_case "empty" `Quick test_pqueue_empty;
        Alcotest.test_case "order" `Quick test_pqueue_order;
        Alcotest.test_case "max-queue" `Quick test_pqueue_max_via_cmp;
        Alcotest.test_case "peek" `Quick test_pqueue_peek_stable;
        Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
        Alcotest.test_case "to_list" `Quick test_pqueue_to_list;
        prop_pqueue_sorts;
        prop_pqueue_length;
      ] );
    ( "util.interval",
      [
        Alcotest.test_case "make invalid" `Quick test_interval_make_invalid;
        Alcotest.test_case "basics" `Quick test_interval_basics;
        Alcotest.test_case "overlap" `Quick test_interval_overlap;
        Alcotest.test_case "contains" `Quick test_interval_contains;
        Alcotest.test_case "shift/hull" `Quick test_interval_shift_hull;
        prop_interval_overlap_sym;
        prop_interval_hull_contains;
      ] );
    ( "util.interval_set",
      [
        Alcotest.test_case "empty" `Quick test_iset_empty;
        Alcotest.test_case "add empty interval" `Quick
          test_iset_add_empty_interval;
        Alcotest.test_case "overlaps" `Quick test_iset_overlaps;
        Alcotest.test_case "first_conflict" `Quick test_iset_first_conflict;
        Alcotest.test_case "free_from" `Quick test_iset_free_from;
        Alcotest.test_case "total_duration" `Quick test_iset_total_duration;
        prop_iset_free_from_is_free;
        prop_iset_elements_sorted;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "invalid args" `Quick test_rng_invalid;
        Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
        Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
        prop_rng_int_bounds;
        prop_rng_int_in_bounds;
        prop_rng_float_bounds;
      ] );
    ( "util.dsu",
      [
        Alcotest.test_case "basics" `Quick test_dsu_basics;
        Alcotest.test_case "idempotent union" `Quick test_dsu_idempotent_union;
        prop_dsu_find_canonical;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basics" `Quick test_stats_basics;
        Alcotest.test_case "improvement" `Quick test_stats_improvement;
        Alcotest.test_case "errors" `Quick test_stats_errors;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity" `Quick test_table_arity;
      ] );
    ( "util.json",
      [
        Alcotest.test_case "compact" `Quick test_json_compact;
        Alcotest.test_case "escape" `Quick test_json_escape;
        Alcotest.test_case "floats" `Quick test_json_floats;
        Alcotest.test_case "indent" `Quick test_json_indent;
      ] );
  ]
