(* Tests for the bioassay model: fluids, operations, sequencing graphs,
   real-life benchmarks and the synthetic generator. *)

module Fluid = Mfb_bioassay.Fluid
module Operation = Mfb_bioassay.Operation
module Seq_graph = Mfb_bioassay.Seq_graph
module Benchmarks = Mfb_bioassay.Benchmarks
module Synthetic = Mfb_bioassay.Synthetic

let check_float = Alcotest.(check (float 1e-6))

let qtest ?(count = 200) name gen prop =
  (* A per-test fixed seed keeps property tests reproducible run to run. *)
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

(* --- Fluid --- *)

let test_fluid_make_invalid () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Fluid.make: diffusion must be positive and finite")
    (fun () -> ignore (Fluid.make ~name:"x" ~diffusion:0.));
  Alcotest.check_raises "nan"
    (Invalid_argument "Fluid.make: diffusion must be positive and finite")
    (fun () -> ignore (Fluid.make ~name:"x" ~diffusion:Float.nan))

let test_wash_anchors () =
  (* Paper §II-B: 1e-5 cm²/s -> 0.2 s; 5e-8 cm²/s -> 6 s. *)
  Alcotest.(check (float 1e-3)) "small molecule" 0.2
    (Fluid.wash_time_of_diffusion 1e-5);
  Alcotest.(check (float 1e-3)) "virus-scale" 6.0
    (Fluid.wash_time_of_diffusion 5e-8)

let test_wash_clamps () =
  check_float "lower clamp" 0.2 (Fluid.wash_time_of_diffusion 1e-2);
  check_float "upper clamp" 12.0 (Fluid.wash_time_of_diffusion 1e-15)

let test_wash_invalid () =
  Alcotest.check_raises "zero"
    (Invalid_argument
       "Fluid.wash_time_of_diffusion: diffusion must be positive")
    (fun () -> ignore (Fluid.wash_time_of_diffusion 0.))

let test_wash_override () =
  let f = Fluid.make ~name:"tmv" ~diffusion:5e-8 in
  Alcotest.(check (float 1e-3)) "model value" 6.0 (Fluid.wash_time f);
  let pinned = Fluid.with_wash_time f 6.5 in
  Alcotest.(check (float 1e-12)) "pinned value" 6.5 (Fluid.wash_time pinned);
  Alcotest.(check bool) "distinct from unpinned" false
    (Fluid.equal f pinned);
  Alcotest.check_raises "invalid override"
    (Invalid_argument
       "Fluid.with_wash_time: wash time must be positive and finite")
    (fun () -> ignore (Fluid.with_wash_time f 0.))

let test_palette_distinct () =
  let names =
    Array.to_list (Array.map (fun (f : Fluid.t) -> f.name) Fluid.palette)
  in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_of_palette_wraps () =
  let n = Array.length Fluid.palette in
  Alcotest.(check bool) "wraps" true
    (Fluid.equal (Fluid.of_palette 0) (Fluid.of_palette n));
  Alcotest.(check bool) "negative ok" true
    (Fluid.equal (Fluid.of_palette (-1)) (Fluid.of_palette (n - 1)))

let prop_wash_monotone =
  qtest "wash time non-increasing in diffusion"
    QCheck2.Gen.(pair (float_range 1e-12 1e-3) (float_range 1e-12 1e-3))
    (fun (d1, d2) ->
      let lo = Float.min d1 d2 and hi = Float.max d1 d2 in
      Fluid.wash_time_of_diffusion lo >= Fluid.wash_time_of_diffusion hi -. 1e-9)

let prop_wash_in_range =
  qtest "wash time within clamp range"
    QCheck2.Gen.(float_range 1e-12 1e-3)
    (fun d ->
      let w = Fluid.wash_time_of_diffusion d in
      0.2 -. 1e-9 <= w && w <= 12.0 +. 1e-9)

(* --- Operation --- *)

let test_operation_invalid () =
  let output = Fluid.of_palette 0 in
  Alcotest.check_raises "negative id"
    (Invalid_argument "Operation.make: negative id") (fun () ->
      ignore (Operation.make ~id:(-1) ~kind:Mix ~duration:1. ~output));
  Alcotest.check_raises "zero duration"
    (Invalid_argument "Operation.make: duration must be positive") (fun () ->
      ignore (Operation.make ~id:0 ~kind:Mix ~duration:0. ~output))

let test_kind_index_roundtrip () =
  Array.iter
    (fun kind ->
      Alcotest.(check bool) "roundtrip" true
        (Operation.kind_of_index (Operation.kind_index kind) = kind))
    Operation.all_kinds;
  Alcotest.check_raises "bad index"
    (Invalid_argument "Operation.kind_of_index: 4") (fun () ->
      ignore (Operation.kind_of_index 4))

let test_operation_wash () =
  let output = Fluid.make ~name:"x" ~diffusion:5e-8 in
  let op = Operation.make ~id:0 ~kind:Heat ~duration:2. ~output in
  Alcotest.(check (float 1e-3)) "delegates to fluid" 6.0
    (Operation.wash_time op)

(* --- Seq_graph --- *)

let mk_ops n =
  List.init n (fun id ->
      Operation.make ~id ~kind:Mix ~duration:5. ~output:(Fluid.of_palette id))

let test_graph_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Seq_graph.create: no operations") (fun () ->
      ignore (Seq_graph.create ~name:"g" ~ops:[] ~edges:[]));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Seq_graph.create: self-loop on 0") (fun () ->
      ignore (Seq_graph.create ~name:"g" ~ops:(mk_ops 2) ~edges:[ (0, 0) ]));
  Alcotest.check_raises "duplicate edge"
    (Invalid_argument "Seq_graph.create: duplicate edge (0, 1)") (fun () ->
      ignore
        (Seq_graph.create ~name:"g" ~ops:(mk_ops 2) ~edges:[ (0, 1); (0, 1) ]));
  Alcotest.check_raises "bad edge"
    (Invalid_argument "Seq_graph.create: bad edge (0, 5)") (fun () ->
      ignore (Seq_graph.create ~name:"g" ~ops:(mk_ops 2) ~edges:[ (0, 5) ]));
  Alcotest.check_raises "cycle"
    (Invalid_argument "Seq_graph.create: graph contains a cycle") (fun () ->
      ignore
        (Seq_graph.create ~name:"g" ~ops:(mk_ops 3)
           ~edges:[ (0, 1); (1, 2); (2, 0) ]))

let test_graph_misnumbered_ops () =
  let ops =
    [ Operation.make ~id:1 ~kind:Mix ~duration:1. ~output:(Fluid.of_palette 0) ]
  in
  Alcotest.check_raises "id mismatch"
    (Invalid_argument "Seq_graph.create: op at position 0 has id 1") (fun () ->
      ignore (Seq_graph.create ~name:"g" ~ops ~edges:[]))

let diamond () =
  Seq_graph.create ~name:"diamond" ~ops:(mk_ops 4)
    ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_graph_adjacency () =
  let g = diamond () in
  Alcotest.(check (list int)) "parents of 3" [ 1; 2 ]
    (List.sort compare (Seq_graph.parents g 3));
  Alcotest.(check (list int)) "children of 0" [ 1; 2 ]
    (List.sort compare (Seq_graph.children g 0));
  Alcotest.(check (list int)) "sources" [ 0 ] (Seq_graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Seq_graph.sinks g);
  Alcotest.(check int) "edges" 4 (Seq_graph.n_edges g)

let test_graph_topo () =
  let g = diamond () in
  let order = Seq_graph.topo_order g in
  Alcotest.(check int) "covers all" 4 (List.length order);
  let pos = Hashtbl.create 4 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  List.iter
    (fun (src, dst) ->
      Alcotest.(check bool) "edge respects order" true
        (Hashtbl.find pos src < Hashtbl.find pos dst))
    (Seq_graph.edges g)

let test_graph_priorities_fig2 () =
  (* Paper §IV-A: priority of o1 in Fig. 2(a) is 21 with tc = 2. *)
  let g = Benchmarks.fig2_example () in
  let prio = Seq_graph.priorities g ~tc:2. in
  check_float "o1 priority" 21. prio.(0)

let test_graph_priorities_diamond () =
  let g = diamond () in
  let prio = Seq_graph.priorities g ~tc:2. in
  check_float "sink is own duration" 5. prio.(3);
  check_float "middle" 12. prio.(1);
  check_float "source" 19. prio.(0);
  check_float "critical path" 19. (Seq_graph.critical_path g ~tc:2.)

let test_graph_kind_counts () =
  let g = Benchmarks.ivd () in
  let counts = Seq_graph.kind_counts g in
  Alcotest.(check (list int)) "ivd kinds" [ 6; 0; 0; 6 ]
    (Array.to_list counts)

let test_graph_depth_width () =
  let g = diamond () in
  Alcotest.(check int) "diamond depth" 3 (Seq_graph.depth g);
  Alcotest.(check (list int)) "diamond profile" [ 1; 2; 1 ]
    (Seq_graph.width_profile g);
  let pcr = Benchmarks.pcr () in
  Alcotest.(check int) "pcr tree depth" 3 (Seq_graph.depth pcr);
  Alcotest.(check (list int)) "pcr profile" [ 4; 2; 1 ]
    (Seq_graph.width_profile pcr)

let test_graph_to_dot () =
  let g = diamond () in
  let dot = Seq_graph.to_dot g in
  Alcotest.(check bool) "digraph header" true
    (Testkit.contains dot "digraph \"diamond\"");
  Alcotest.(check bool) "all vertices" true
    (List.for_all (fun i -> Testkit.contains dot (Printf.sprintf "o%d [" i))
       [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "edges" true (Testkit.contains dot "o0 -> o1;");
  Alcotest.(check bool) "closing brace" true (Testkit.contains dot "}")

let test_graph_op_bounds () =
  let g = diamond () in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Seq_graph.op: id 9 out of range") (fun () ->
      ignore (Seq_graph.op g 9))

let synthetic_gen =
  QCheck2.Gen.(
    map2
      (fun n seed ->
        Synthetic.generate ~name:"prop"
          { Synthetic.default_params with n_ops = n + 2; seed })
      (int_bound 40) int)

let prop_priorities_dominate_children =
  qtest ~count:60 "priority >= child priority + tc + duration" synthetic_gen
    (fun g ->
      let tc = 2. in
      let prio = Seq_graph.priorities g ~tc in
      List.for_all
        (fun (src, dst) ->
          prio.(src)
          >= (Seq_graph.op g src).duration +. tc +. prio.(dst) -. 1e-9)
        (Seq_graph.edges g))

let prop_topo_valid =
  qtest ~count:60 "topological order respects edges" synthetic_gen (fun g ->
      let pos = Hashtbl.create 16 in
      List.iteri (fun i v -> Hashtbl.replace pos v i) (Seq_graph.topo_order g);
      List.for_all
        (fun (src, dst) -> Hashtbl.find pos src < Hashtbl.find pos dst)
        (Seq_graph.edges g))

(* --- Benchmarks --- *)

let test_benchmark_sizes () =
  (* Operation counts of the paper's Table I, column 2. *)
  Alcotest.(check int) "PCR" 7 (Seq_graph.n_ops (Benchmarks.pcr ()));
  Alcotest.(check int) "IVD" 12 (Seq_graph.n_ops (Benchmarks.ivd ()));
  Alcotest.(check int) "CPA" 55 (Seq_graph.n_ops (Benchmarks.cpa ()));
  Alcotest.(check int) "fig2" 10 (Seq_graph.n_ops (Benchmarks.fig2_example ()))

let test_pcr_structure () =
  let g = Benchmarks.pcr () in
  Alcotest.(check (list int)) "all mixes" [ 7; 0; 0; 0 ]
    (Array.to_list (Seq_graph.kind_counts g));
  Alcotest.(check (list int)) "single sink" [ 6 ] (Seq_graph.sinks g);
  Alcotest.(check int) "binary-tree edges" 6 (Seq_graph.n_edges g)

let test_cpa_structure () =
  let g = Benchmarks.cpa () in
  let counts = Seq_graph.kind_counts g in
  Alcotest.(check int) "47 mixes" 47 counts.(0);
  Alcotest.(check int) "8 detects" 8 counts.(3);
  Alcotest.(check int) "8 sinks" 8 (List.length (Seq_graph.sinks g));
  List.iter
    (fun s ->
      Alcotest.(check bool) "sink is detect" true
        ((Seq_graph.op g s).kind = Operation.Detect))
    (Seq_graph.sinks g)

let test_ivd_structure () =
  let g = Benchmarks.ivd () in
  Alcotest.(check int) "6 independent chains" 6
    (List.length (Seq_graph.sources g));
  Alcotest.(check int) "6 sinks" 6 (List.length (Seq_graph.sinks g))

let test_serial_dilution () =
  let g = Benchmarks.serial_dilution ~levels:5 () in
  Alcotest.(check int) "2n ops" 10 (Seq_graph.n_ops g);
  let counts = Seq_graph.kind_counts g in
  Alcotest.(check int) "mixes" 5 counts.(0);
  Alcotest.(check int) "detects" 5 counts.(3);
  (* Every dilution level fans out to exactly its detection plus (except
     the last) the next level. *)
  Alcotest.(check int) "chain + reads edges" 9 (Seq_graph.n_edges g);
  (* The whole ladder consumes its chain in place under DCSA. *)
  let sched =
    Mfb_schedule.Dcsa_scheduler.schedule ~tc:2.0 g
      (Mfb_component.Allocation.of_vector (2, 0, 0, 1))
  in
  Alcotest.(check bool) "legal" true (Mfb_schedule.Check.is_legal ~tc:2.0 sched);
  Alcotest.check_raises "levels validated"
    (Invalid_argument "Benchmarks.serial_dilution: levels < 1") (fun () ->
      ignore (Benchmarks.serial_dilution ~levels:0 ()))

let test_benchmarks_all () =
  Alcotest.(check int) "three real-life benchmarks" 3
    (List.length (Benchmarks.all ()))

(* --- Synthetic --- *)

let test_synthetic_sizes () =
  (* Table I, rows Synthetic1-4. *)
  Alcotest.(check int) "syn1" 20 (Seq_graph.n_ops (Synthetic.synthetic1 ()));
  Alcotest.(check int) "syn2" 30 (Seq_graph.n_ops (Synthetic.synthetic2 ()));
  Alcotest.(check int) "syn3" 40 (Seq_graph.n_ops (Synthetic.synthetic3 ()));
  Alcotest.(check int) "syn4" 50 (Seq_graph.n_ops (Synthetic.synthetic4 ()))

let test_synthetic_deterministic () =
  let a = Synthetic.synthetic2 () and b = Synthetic.synthetic2 () in
  Alcotest.(check bool) "same edges" true
    (Seq_graph.edges a = Seq_graph.edges b);
  let ops_equal =
    Array.for_all2
      (fun (x : Operation.t) (y : Operation.t) ->
        x.kind = y.kind && x.duration = y.duration
        && Fluid.equal x.output y.output)
      (Seq_graph.ops a) (Seq_graph.ops b)
  in
  Alcotest.(check bool) "same ops" true ops_equal

let test_synthetic_seeds_differ () =
  let a =
    Synthetic.generate ~name:"a" { Synthetic.default_params with seed = 1 }
  in
  let b =
    Synthetic.generate ~name:"b" { Synthetic.default_params with seed = 2 }
  in
  Alcotest.(check bool) "different graphs" true
    (Seq_graph.edges a <> Seq_graph.edges b
    || Seq_graph.ops a <> Seq_graph.ops b)

let test_synthetic_validation () =
  let p = Synthetic.default_params in
  Alcotest.check_raises "too small"
    (Invalid_argument "Synthetic.generate: n_ops < 2") (fun () ->
      ignore (Synthetic.generate ~name:"x" { p with n_ops = 1 }));
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Synthetic.generate: all kind weights are zero")
    (fun () ->
      ignore
        (Synthetic.generate ~name:"x"
           { p with kind_weights = [| 0; 0; 0; 0 |] }));
  Alcotest.check_raises "bad bias"
    (Invalid_argument "Synthetic.generate: same_kind_bias outside [0, 1]")
    (fun () ->
      ignore (Synthetic.generate ~name:"x" { p with same_kind_bias = 1.5 }))

let test_synthetic_zero_weight_absent () =
  let g =
    Synthetic.generate ~name:"nomix"
      { Synthetic.default_params with
        kind_weights = [| 0; 5; 3; 1 |];
        same_kind_bias = 0. }
  in
  Alcotest.(check int) "no mixes" 0 (Seq_graph.kind_counts g).(0)

let prop_synthetic_edges_forward =
  qtest ~count:60 "synthetic edges point to later ids" synthetic_gen (fun g ->
      List.for_all (fun (src, dst) -> src < dst) (Seq_graph.edges g))

let prop_synthetic_connected_non_sources =
  qtest ~count:60 "every non-source has a parent" synthetic_gen (fun g ->
      let sources = Seq_graph.sources g in
      List.for_all
        (fun op -> Seq_graph.parents g op <> [] || List.mem op sources)
        (List.init (Seq_graph.n_ops g) Fun.id))

(* --- Assay_file --- *)

module Assay_file = Mfb_bioassay.Assay_file

let sample_text =
  {|# a small panel
assay "panel"
fluid serum 4e-7
fluid reagent 1e-6
op 0 mix 5.0 serum
op 1 heat 4.0 reagent
op 2 detect 3.0 serum
edge 0 1
edge 1 2
|}

let test_assay_parse () =
  match Assay_file.parse sample_text with
  | Error e -> Alcotest.failf "parse failed: %a" Assay_file.pp_error e
  | Ok g ->
    Alcotest.(check string) "name" "panel" (Seq_graph.name g);
    Alcotest.(check int) "ops" 3 (Seq_graph.n_ops g);
    Alcotest.(check int) "edges" 2 (Seq_graph.n_edges g);
    let o1 = Seq_graph.op g 1 in
    Alcotest.(check bool) "kind" true (o1.kind = Operation.Heat);
    Alcotest.(check (float 1e-12)) "duration" 4.0 o1.duration;
    Alcotest.(check string) "fluid" "reagent" o1.output.Fluid.name

let expect_error ~line text =
  match Assay_file.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> Alcotest.(check int) "error line" line e.line

let test_assay_errors () =
  expect_error ~line:1 "bogus directive\n";
  expect_error ~line:2 "assay \"x\"\nop 0 grind 1.0 f\n";
  expect_error ~line:2 "assay \"x\"\nop 0 mix oops serum\n";
  expect_error ~line:2 "assay \"x\"\nop 0 mix 1.0 undeclared\n";
  expect_error ~line:3
    "assay \"x\"\nfluid f 1e-6\nfluid f 2e-6\n";
  expect_error ~line:0 "fluid f 1e-6\nop 0 mix 1.0 f\n" (* missing assay *);
  expect_error ~line:3
    "assay \"x\"\nfluid f 1e-6\nop 1 mix 1.0 f\n" (* non-dense id *)

let test_assay_roundtrip_fixed () =
  match Assay_file.parse sample_text with
  | Error e -> Alcotest.failf "parse: %a" Assay_file.pp_error e
  | Ok g ->
    (match Assay_file.parse (Assay_file.to_string g) with
     | Error e -> Alcotest.failf "reparse: %a" Assay_file.pp_error e
     | Ok g' ->
       Alcotest.(check string) "name" (Seq_graph.name g) (Seq_graph.name g');
       Alcotest.(check bool) "edges equal" true
         (List.sort compare (Seq_graph.edges g)
         = List.sort compare (Seq_graph.edges g')))

let test_assay_wash_override_roundtrip () =
  let text =
    "assay \"w\"\nfluid virus 1e-8 6.5\nop 0 mix 3 virus\n"
  in
  match Assay_file.parse text with
  | Error e -> Alcotest.failf "parse: %a" Assay_file.pp_error e
  | Ok g ->
    let op = Seq_graph.op g 0 in
    Alcotest.(check (float 1e-9)) "override parsed" 6.5
      (Fluid.wash_time op.output);
    (match Assay_file.parse (Assay_file.to_string g) with
     | Error e -> Alcotest.failf "reparse: %a" Assay_file.pp_error e
     | Ok g' ->
       Alcotest.(check (float 1e-9)) "override survives round-trip" 6.5
         (Fluid.wash_time (Seq_graph.op g' 0).output))

let test_assay_file_io () =
  let path = Filename.temp_file "assay" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let g = Benchmarks.pcr () in
      Assay_file.to_file path g;
      match Assay_file.of_file path with
      | Error e -> Alcotest.failf "of_file: %a" Assay_file.pp_error e
      | Ok g' -> Alcotest.(check int) "ops survive" 7 (Seq_graph.n_ops g'));
  match Assay_file.of_file "/nonexistent/assay.txt" with
  | Ok _ -> Alcotest.fail "expected IO error"
  | Error e -> Alcotest.(check int) "io error at line 0" 0 e.line

let prop_assay_roundtrip =
  qtest ~count:40 "serialize/parse round-trips synthetic graphs"
    synthetic_gen
    (fun g ->
      match Assay_file.parse (Assay_file.to_string g) with
      | Error _ -> false
      | Ok g' ->
        Seq_graph.name g = Seq_graph.name g'
        && List.sort compare (Seq_graph.edges g)
           = List.sort compare (Seq_graph.edges g')
        && Array.for_all2
             (fun (a : Operation.t) (b : Operation.t) ->
               a.kind = b.kind
               && Float.abs (a.duration -. b.duration) < 1e-9
               && Fluid.equal a.output b.output)
             (Seq_graph.ops g) (Seq_graph.ops g'))

(* --- Volume --- *)

module Volume = Mfb_bioassay.Volume

let test_volume_chain () =
  (* Single chain: every edge carries exactly one chamber. *)
  let g =
    Seq_graph.create ~name:"chain" ~ops:(mk_ops 3)
      ~edges:[ (0, 1); (1, 2) ]
  in
  let v = Volume.analyse g in
  Alcotest.(check (float 1e-9)) "edge 0-1" 1.0 (Volume.edge_volume v (0, 1));
  Alcotest.(check (float 1e-9)) "source input" 1.0 (Volume.external_input v 0);
  Alcotest.(check (float 1e-9)) "no fresh input mid-chain" 0.
    (Volume.external_input v 1);
  Alcotest.(check (float 1e-9)) "total reagent" 1.0 (Volume.total_reagent v)

let test_volume_mixer_split () =
  (* A two-input mix delivering one chamber draws half from each parent. *)
  let g =
    Seq_graph.create ~name:"mix2" ~ops:(mk_ops 3)
      ~edges:[ (0, 2); (1, 2) ]
  in
  let v = Volume.analyse g in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Volume.edge_volume v (0, 2));
  Alcotest.(check (float 1e-9)) "sources produce half each" 0.5
    (Volume.production v 0);
  Alcotest.(check (float 1e-9)) "reagent is one chamber" 1.0
    (Volume.total_reagent v)

let test_volume_fanout_batches () =
  (* One source feeding three sinks must produce three chambers. *)
  let g =
    Seq_graph.create ~name:"fan" ~ops:(mk_ops 4)
      ~edges:[ (0, 1); (0, 2); (0, 3) ]
  in
  let v = Volume.analyse g in
  Alcotest.(check (float 1e-9)) "production 3" 3.0 (Volume.production v 0);
  Alcotest.(check int) "three batches" 3 (Volume.batches v 0);
  Alcotest.(check int) "sink single batch" 1 (Volume.batches v 1)

let test_volume_pcr_tree () =
  (* PCR's balanced binary tree: leaves contribute 1/4 chamber each... the
     root delivers 1, its two children 1/2, the four leaves 1/4 via their
     half-split — total reagent equals the delivered volume. *)
  let v = Volume.analyse (Benchmarks.pcr ()) in
  Alcotest.(check (float 1e-9)) "root delivers one" 1.0 (Volume.production v 6);
  Alcotest.(check (float 1e-9)) "leaf quarter" 0.25 (Volume.production v 0);
  Alcotest.(check (float 1e-9)) "conservation" 1.0 (Volume.total_reagent v)

let prop_volume_conservation =
  qtest ~count:60 "reagent in = chambers delivered at the sinks"
    synthetic_gen
    (fun g ->
      let v = Volume.analyse g in
      let delivered = float_of_int (List.length (Seq_graph.sinks g)) in
      Float.abs (Volume.total_reagent v -. delivered) < 1e-6)

let prop_volume_positive =
  qtest ~count:60 "every operation produces a positive volume"
    synthetic_gen
    (fun g ->
      let v = Volume.analyse g in
      List.for_all
        (fun op -> Volume.production v op > 0.)
        (List.init (Seq_graph.n_ops g) Fun.id))

let suites =
  [
    ( "bioassay.fluid",
      [
        Alcotest.test_case "make invalid" `Quick test_fluid_make_invalid;
        Alcotest.test_case "wash anchors" `Quick test_wash_anchors;
        Alcotest.test_case "wash clamps" `Quick test_wash_clamps;
        Alcotest.test_case "wash invalid" `Quick test_wash_invalid;
        Alcotest.test_case "wash override" `Quick test_wash_override;
        Alcotest.test_case "palette distinct" `Quick test_palette_distinct;
        Alcotest.test_case "of_palette wraps" `Quick test_of_palette_wraps;
        prop_wash_monotone;
        prop_wash_in_range;
      ] );
    ( "bioassay.operation",
      [
        Alcotest.test_case "invalid" `Quick test_operation_invalid;
        Alcotest.test_case "kind index roundtrip" `Quick
          test_kind_index_roundtrip;
        Alcotest.test_case "wash" `Quick test_operation_wash;
      ] );
    ( "bioassay.seq_graph",
      [
        Alcotest.test_case "invalid graphs" `Quick test_graph_invalid;
        Alcotest.test_case "misnumbered ops" `Quick test_graph_misnumbered_ops;
        Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
        Alcotest.test_case "topological order" `Quick test_graph_topo;
        Alcotest.test_case "fig2 priority 21" `Quick test_graph_priorities_fig2;
        Alcotest.test_case "diamond priorities" `Quick
          test_graph_priorities_diamond;
        Alcotest.test_case "kind counts" `Quick test_graph_kind_counts;
        Alcotest.test_case "depth/width" `Quick test_graph_depth_width;
        Alcotest.test_case "to_dot" `Quick test_graph_to_dot;
        Alcotest.test_case "op bounds" `Quick test_graph_op_bounds;
        prop_priorities_dominate_children;
        prop_topo_valid;
      ] );
    ( "bioassay.benchmarks",
      [
        Alcotest.test_case "table-1 sizes" `Quick test_benchmark_sizes;
        Alcotest.test_case "pcr structure" `Quick test_pcr_structure;
        Alcotest.test_case "cpa structure" `Quick test_cpa_structure;
        Alcotest.test_case "ivd structure" `Quick test_ivd_structure;
        Alcotest.test_case "serial dilution" `Quick test_serial_dilution;
        Alcotest.test_case "all" `Quick test_benchmarks_all;
      ] );
    ( "bioassay.synthetic",
      [
        Alcotest.test_case "table-1 sizes" `Quick test_synthetic_sizes;
        Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_synthetic_seeds_differ;
        Alcotest.test_case "validation" `Quick test_synthetic_validation;
        Alcotest.test_case "zero-weight kind absent" `Quick
          test_synthetic_zero_weight_absent;
        prop_synthetic_edges_forward;
        prop_synthetic_connected_non_sources;
      ] );
    ( "bioassay.volume",
      [
        Alcotest.test_case "chain" `Quick test_volume_chain;
        Alcotest.test_case "mixer split" `Quick test_volume_mixer_split;
        Alcotest.test_case "fan-out batches" `Quick test_volume_fanout_batches;
        Alcotest.test_case "pcr tree" `Quick test_volume_pcr_tree;
        prop_volume_conservation;
        prop_volume_positive;
      ] );
    ( "bioassay.assay_file",
      [
        Alcotest.test_case "parse" `Quick test_assay_parse;
        Alcotest.test_case "errors with line numbers" `Quick
          test_assay_errors;
        Alcotest.test_case "round-trip" `Quick test_assay_roundtrip_fixed;
        Alcotest.test_case "wash override round-trip" `Quick
          test_assay_wash_override_roundtrip;
        Alcotest.test_case "file io" `Quick test_assay_file_io;
        prop_assay_roundtrip;
      ] );
  ]
