(* Tests for the placement stage: chip model, nets, energy, moves,
   annealer (paper Alg. 2 lines 1-8) and the baseline placer. *)

module Chip = Mfb_place.Chip
module Net = Mfb_place.Net
module Energy = Mfb_place.Energy
module Moves = Mfb_place.Moves
module Annealer = Mfb_place.Annealer
module Greedy_place = Mfb_place.Greedy_place
module Allocation = Mfb_component.Allocation
module Rng = Mfb_util.Rng

let tc = 2.0

let qtest ?(count = 60) name gen prop =
  (* A per-test fixed seed keeps property tests reproducible run to run. *)
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

let components_of vector = Array.of_list (Allocation.components (Allocation.of_vector vector))

let sched_of (g, alloc) = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc

(* --- Chip --- *)

let test_size_for_minimum () =
  let w, h = Chip.size_for (components_of (1, 0, 0, 0)) in
  Alcotest.(check bool) "at least 12x12" true (w >= 12 && h >= 12)

let test_scanline_legal () =
  List.iter
    (fun (g, alloc) ->
      let comps = Array.of_list (Allocation.components alloc) in
      let chip = Chip.scanline comps in
      Alcotest.(check bool)
        (Mfb_bioassay.Seq_graph.name g ^ " scanline legal")
        true (Chip.legal chip))
    (Testkit.suite_instances ())

let test_random_legal () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let chip = Chip.random rng (components_of (5, 2, 2, 2)) in
      Alcotest.(check bool)
        (Printf.sprintf "random placement legal (seed %d)" seed)
        true (Chip.legal chip))
    [ 1; 2; 3; 42; 1000 ]

let test_rotation_swaps_dims () =
  let comps = components_of (1, 1, 0, 0) in
  let chip = Chip.scanline comps in
  (* Make the mixer footprint asymmetric to observe the rotation. *)
  let chip =
    { chip with
      components =
        [| { chip.components.(0) with width = 4; height = 2 };
           chip.components.(1) |] }
  in
  let _, _, w0, h0 = Chip.footprint chip 0 in
  chip.places.(0) <- { (chip.places.(0)) with rotated = true };
  let _, _, w1, h1 = Chip.footprint chip 0 in
  Alcotest.(check (pair int int)) "swapped" (h0, w0) (w1, h1)

let test_manhattan_symmetric () =
  let chip = Chip.scanline (components_of (3, 0, 0, 0)) in
  Alcotest.(check (float 1e-9)) "symmetric" (Chip.manhattan chip 0 1)
    (Chip.manhattan chip 1 0);
  Alcotest.(check (float 1e-9)) "self distance" 0. (Chip.manhattan chip 2 2)

let test_blocked_cells_area () =
  let comps = components_of (2, 1, 0, 0) in
  let chip = Chip.scanline comps in
  (* Two 3x3 mixers + one 2x2 heater = 22 blocked cells. *)
  Alcotest.(check int) "area" 22 (List.length (Chip.blocked_cells chip))

let test_pair_legal_spacing () =
  let comps = components_of (2, 0, 0, 0) in
  let chip = Chip.scanline comps in
  chip.places.(0) <- { x = 1; y = 1; rotated = false };
  chip.places.(1) <- { x = 4; y = 1; rotated = false };
  (* Footprints touch without a gap: illegal under spacing 1. *)
  Alcotest.(check bool) "no gap" false (Chip.pair_legal chip 0 1);
  chip.places.(1) <- { x = 5; y = 1; rotated = false };
  Alcotest.(check bool) "one-cell gap" true (Chip.pair_legal chip 0 1)

let test_copy_independent () =
  let chip = Chip.scanline (components_of (2, 0, 0, 0)) in
  let dup = Chip.copy chip in
  dup.places.(0) <- { x = 99; y = 99; rotated = false };
  Alcotest.(check bool) "original untouched" true (chip.places.(0).x <> 99)

(* --- Net / connection priority --- *)

let test_nets_cover_transports () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 2) in
  let nets = Net.of_schedule sched in
  Alcotest.(check int) "task count = transports"
    (Mfb_schedule.Metrics.transport_count sched)
    (Net.task_count nets);
  List.iter
    (fun (net : Net.t) ->
      Alcotest.(check bool) "normalised pair" true (net.a <= net.b))
    nets

let test_connection_priority_formula () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 2) in
  match Net.of_schedule sched with
  | [] -> Alcotest.fail "expected nets"
  | (net : Net.t) :: _ ->
    let manual =
      List.fold_left
        (fun acc (task : Net.task) ->
          acc +. (0.6 *. float_of_int task.concurrency)
          +. (0.4 *. task.wash_time))
        0. net.tasks
    in
    Alcotest.(check (float 1e-9)) "Eq. 4" manual
      (Net.connection_priority ~beta:0.6 ~gamma:0.4 net)

let test_uniform_energy_is_wirelength () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 3) in
  let nets = Energy.uniform (Net.of_schedule sched) in
  let chip = Chip.scanline sched.components in
  Alcotest.(check (float 1e-9)) "cp = 1 everywhere"
    (Energy.wirelength chip nets)
    (Energy.total chip nets)

let test_energy_zero_for_colocated () =
  (* A single net between two components: energy = mdis * cp. *)
  let sched = sched_of (List.hd (Testkit.suite_instances ())) in
  let nets = Energy.weigh ~beta:0.6 ~gamma:0.4 (Net.of_schedule sched) in
  let chip = Chip.scanline sched.components in
  let manual =
    List.fold_left
      (fun acc (n : Energy.weighted_net) ->
        acc +. (Chip.manhattan chip n.a n.b *. n.cp))
      0. nets
  in
  Alcotest.(check (float 1e-9)) "Eq. 3" manual (Energy.total chip nets)

(* --- Moves --- *)

let prop_moves_preserve_legality =
  qtest "random moves keep the placement legal"
    QCheck2.Gen.(pair (int_bound 10000) (int_range 2 8))
    (fun (seed, n_mixers) ->
      let rng = Rng.create seed in
      let chip = Chip.random rng (components_of (n_mixers, 1, 1, 1)) in
      for _ = 1 to 50 do
        ignore (Moves.random_move rng chip)
      done;
      Chip.legal chip)

let test_move_undo_restores () =
  let rng = Rng.create 7 in
  let chip = Chip.random rng (components_of (4, 2, 0, 0)) in
  let snapshot = Array.copy chip.places in
  let rec exercise n =
    if n > 0 then begin
      (match Moves.random_move rng chip with
       | Some undo -> undo ()
       | None -> ());
      exercise (n - 1)
    end
  in
  exercise 30;
  Alcotest.(check bool) "placement restored after undo" true
    (Array.for_all2 (fun a b -> a = b) snapshot chip.places)

(* --- Annealer --- *)

let test_annealer_validation () =
  let nets = [] and comps = components_of (2, 0, 0, 0) in
  let bad params msg =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Annealer.place ~params ~rng:(Rng.create 1) ~nets comps))
  in
  bad { Annealer.default_params with alpha = 1.5 }
    "Annealer.place: alpha outside (0, 1)";
  bad { Annealer.default_params with i_max = 0 } "Annealer.place: i_max < 1";
  bad { Annealer.default_params with t0 = -1. }
    "Annealer.place: temperatures must satisfy 0 < t_min <= t0"

let fast_params = { Annealer.default_params with t0 = 100.; i_max = 30 }

let test_annealer_improves_and_legal () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 2) in
  let nets = Energy.weigh ~beta:0.6 ~gamma:0.4 (Net.of_schedule sched) in
  let result =
    Annealer.place ~params:fast_params ~rng:(Rng.create 42) ~nets
      sched.components
  in
  Alcotest.(check bool) "legal" true (Chip.legal result.chip);
  Alcotest.(check bool) "no worse than start" true
    (result.energy <= result.initial_energy +. 1e-9);
  Alcotest.(check (float 1e-6)) "energy consistent"
    (Annealer.objective result.chip nets)
    result.energy;
  Alcotest.(check bool) "attempted counted" true (result.attempted > 0)

let test_annealer_deterministic () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 3) in
  let nets = Energy.weigh ~beta:0.6 ~gamma:0.4 (Net.of_schedule sched) in
  let run () =
    (Annealer.place ~params:fast_params ~rng:(Rng.create 9) ~nets
       sched.components).energy
  in
  Alcotest.(check (float 1e-12)) "same seed, same energy" (run ()) (run ())

let test_annealer_default_params_match_paper () =
  let p = Annealer.default_params in
  Alcotest.(check (float 1e-12)) "T0" 10000. p.t0;
  Alcotest.(check (float 1e-12)) "Tmin" 1.0 p.t_min;
  Alcotest.(check (float 1e-12)) "alpha" 0.9 p.alpha;
  Alcotest.(check int) "Imax" 150 p.i_max

(* --- Force-directed placement --- *)

let test_force_place_legal_on_suite () =
  List.iter
    (fun instance ->
      let sched = sched_of instance in
      let nets =
        Energy.weigh ~beta:0.6 ~gamma:0.4 (Net.of_schedule sched)
      in
      let result = Mfb_place.Force_place.place ~nets sched.components in
      Alcotest.(check bool)
        (Mfb_bioassay.Seq_graph.name (fst instance) ^ " legal")
        true
        (Chip.legal result.chip);
      Alcotest.(check bool) "iterated" true (result.iterations > 0);
      Alcotest.(check (float 1e-6)) "energy consistent"
        (Annealer.objective result.chip nets)
        result.energy)
    (Testkit.suite_instances ())

let test_force_place_deterministic () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 4) in
  let nets = Energy.weigh ~beta:0.6 ~gamma:0.4 (Net.of_schedule sched) in
  let a = Mfb_place.Force_place.place ~nets sched.components in
  let b = Mfb_place.Force_place.place ~nets sched.components in
  Alcotest.(check (float 1e-12)) "same energy" a.energy b.energy;
  Alcotest.(check bool) "same placement" true (a.chip.places = b.chip.places)

let test_force_place_pulls_connected_pairs () =
  (* Two heavily-connected mixers among several must end up closer than
     the chip diagonal. *)
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 2) in
  let nets = Energy.weigh ~beta:0.6 ~gamma:0.4 (Net.of_schedule sched) in
  match List.sort (fun (a : Energy.weighted_net) b -> Float.compare b.cp a.cp) nets with
  | [] -> Alcotest.fail "expected nets"
  | heaviest :: _ ->
    let result = Mfb_place.Force_place.place ~nets sched.components in
    let d = Chip.manhattan result.chip heaviest.a heaviest.b in
    let diagonal =
      float_of_int (result.chip.width + result.chip.height)
    in
    Alcotest.(check bool) "heavy pair close" true (d < diagonal /. 2.)

(* --- Greedy (baseline) placement --- *)

let test_greedy_legal_and_deterministic () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 4) in
  let nets = Energy.uniform (Net.of_schedule sched) in
  let a = Greedy_place.place ~nets sched.components in
  let b = Greedy_place.place ~nets sched.components in
  Alcotest.(check bool) "legal" true (Chip.legal a);
  Alcotest.(check bool) "deterministic" true (a.places = b.places)

let test_greedy_no_worse_than_scanline () =
  let sched = sched_of (List.nth (Testkit.suite_instances ()) 4) in
  let nets = Energy.uniform (Net.of_schedule sched) in
  let corrected = Greedy_place.place ~nets sched.components in
  let scan = Chip.scanline sched.components in
  Alcotest.(check bool) "swaps only improve" true
    (Energy.wirelength corrected nets <= Energy.wirelength scan nets +. 1e-9)

let suites =
  [
    ( "place.chip",
      [
        Alcotest.test_case "size_for minimum" `Quick test_size_for_minimum;
        Alcotest.test_case "scanline legal" `Quick test_scanline_legal;
        Alcotest.test_case "random legal" `Quick test_random_legal;
        Alcotest.test_case "rotation swaps dims" `Quick
          test_rotation_swaps_dims;
        Alcotest.test_case "manhattan symmetric" `Quick
          test_manhattan_symmetric;
        Alcotest.test_case "blocked cells area" `Quick test_blocked_cells_area;
        Alcotest.test_case "pair spacing" `Quick test_pair_legal_spacing;
        Alcotest.test_case "copy independent" `Quick test_copy_independent;
      ] );
    ( "place.net",
      [
        Alcotest.test_case "nets cover transports" `Quick
          test_nets_cover_transports;
        Alcotest.test_case "Eq. 4 formula" `Quick
          test_connection_priority_formula;
        Alcotest.test_case "uniform = wirelength" `Quick
          test_uniform_energy_is_wirelength;
        Alcotest.test_case "Eq. 3 formula" `Quick test_energy_zero_for_colocated;
      ] );
    ( "place.moves",
      [
        prop_moves_preserve_legality;
        Alcotest.test_case "undo restores" `Quick test_move_undo_restores;
      ] );
    ( "place.annealer",
      [
        Alcotest.test_case "validation" `Quick test_annealer_validation;
        Alcotest.test_case "improves and legal" `Quick
          test_annealer_improves_and_legal;
        Alcotest.test_case "deterministic" `Quick test_annealer_deterministic;
        Alcotest.test_case "paper parameters" `Quick
          test_annealer_default_params_match_paper;
      ] );
    ( "place.force",
      [
        Alcotest.test_case "legal on suite" `Quick
          test_force_place_legal_on_suite;
        Alcotest.test_case "deterministic" `Quick
          test_force_place_deterministic;
        Alcotest.test_case "pulls connected pairs" `Quick
          test_force_place_pulls_connected_pairs;
      ] );
    ( "place.greedy",
      [
        Alcotest.test_case "legal and deterministic" `Quick
          test_greedy_legal_and_deterministic;
        Alcotest.test_case "no worse than scanline" `Quick
          test_greedy_no_worse_than_scanline;
      ] );
  ]
