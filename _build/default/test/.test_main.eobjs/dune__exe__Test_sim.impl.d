test/test_sim.ml: Alcotest Array List Mfb_bioassay Mfb_core Mfb_route Mfb_schedule Mfb_sim Printf Testkit
