test/test_main.ml: Alcotest Test_bioassay Test_component Test_control Test_core Test_place Test_route Test_schedule Test_sim Test_util
