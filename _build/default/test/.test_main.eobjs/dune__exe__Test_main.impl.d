test/test_main.ml: Alcotest Array List Mfb_util Printf Test_bioassay Test_component Test_control Test_core Test_parallel Test_place Test_route Test_schedule Test_sim Test_util
