test/test_schedule.ml: Alcotest Array Float Fun Hashtbl List Mfb_bioassay Mfb_component Mfb_schedule Mfb_util QCheck2 QCheck_alcotest Random String Testkit
