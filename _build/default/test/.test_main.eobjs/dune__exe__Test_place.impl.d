test/test_place.ml: Alcotest Array Float Hashtbl List Mfb_bioassay Mfb_component Mfb_place Mfb_schedule Mfb_util Printf QCheck2 QCheck_alcotest Random Testkit
