test/testkit.ml: List Mfb_core String
