test/test_parallel.ml: Alcotest Array Hashtbl List Mfb_bioassay Mfb_component Mfb_core Mfb_place Mfb_schedule Mfb_util QCheck2 QCheck_alcotest Random
