test/test_bioassay.ml: Alcotest Array Filename Float Fun Hashtbl List Mfb_bioassay Mfb_component Mfb_schedule Printf QCheck2 QCheck_alcotest Random Sys Testkit
