test/test_core.ml: Alcotest Array Float Hashtbl Lazy List Mfb_bioassay Mfb_component Mfb_core Mfb_place Mfb_route Mfb_schedule Mfb_sim Mfb_util Printf QCheck2 QCheck_alcotest Random String Testkit
