test/test_component.ml: Alcotest List Mfb_bioassay Mfb_component Printf
