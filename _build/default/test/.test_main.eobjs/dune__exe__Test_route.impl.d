test/test_route.ml: Alcotest Array Float List Mfb_bioassay Mfb_component Mfb_place Mfb_route Mfb_schedule Mfb_util Printf Testkit
