test/test_util.ml: Alcotest Array Float Fun Hashtbl List Mfb_util Option QCheck2 QCheck_alcotest Random String Testkit
