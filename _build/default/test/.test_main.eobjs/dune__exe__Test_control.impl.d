test/test_control.ml: Alcotest Array Fun Hashtbl List Mfb_bioassay Mfb_component Mfb_control Mfb_core Mfb_route Printf QCheck2 QCheck_alcotest Random Testkit
