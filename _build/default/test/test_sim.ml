(* Tests for the discrete-event replay simulator. *)

module Replay = Mfb_sim.Replay
module Types = Mfb_schedule.Types

let tc = 2.0

let sim_of index =
  let g, alloc = List.nth (Testkit.suite_instances ()) index in
  let r = Mfb_core.Flow.run g alloc in
  (r, Replay.create ~tc ~chip:r.chip ~schedule:r.schedule ~routing:r.routing)

let test_replay_clean_on_suite () =
  List.iter
    (fun index ->
      let r, sim = sim_of index in
      match Replay.check sim with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "%s: t=%.2f %s" r.benchmark v.time v.message)
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_events_sorted_and_cover_makespan () =
  let r, sim = sim_of 2 in
  let events = Replay.events sim in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (sorted events);
  Alcotest.(check bool) "reaches completion" true
    (List.exists (fun t -> t >= r.schedule.makespan -. 1e-6) events);
  Alcotest.(check bool) "starts at 0" true (List.hd events <= 1e-9)

let test_state_transitions () =
  let _, sim = sim_of 0 in
  (* Before anything happens every component is idle and channels empty. *)
  let before = Replay.state_at sim (-1.0) in
  Alcotest.(check bool) "all idle before start" true
    (Array.for_all (( = ) Replay.Idle) before.components);
  Alcotest.(check int) "no fluid in channels" 0 (List.length before.cells);
  (* During the first operations some component executes. *)
  let during = Replay.state_at sim 2.0 in
  Alcotest.(check bool) "someone executing at t=2" true
    (Array.exists
       (function Replay.Executing _ -> true | _ -> false)
       during.components)

let test_executing_matches_schedule () =
  let r, sim = sim_of 1 in
  Array.iteri
    (fun op (t : Types.op_times) ->
      let mid = (t.start +. t.finish) /. 2. in
      let snap = Replay.state_at sim mid in
      match snap.components.(t.component) with
      | Replay.Executing running ->
        Alcotest.(check int)
          (Printf.sprintf "op at t=%.1f" mid)
          op running
      | _ -> Alcotest.failf "o%d not executing at %.1f" op mid)
    r.schedule.times

let test_fluid_appears_during_transport () =
  let r, sim = sim_of 2 in
  match r.schedule.transports with
  | [] -> Alcotest.fail "expected transports"
  | tr :: _ ->
    let mid = (tr.removal +. tr.arrive) /. 2. in
    let snap = Replay.state_at sim mid in
    Alcotest.(check bool) "transported fluid visible in channels" true
      (List.exists
         (fun (_, f) -> Mfb_bioassay.Fluid.equal f tr.fluid)
         snap.cells)

let test_frame_rendering () =
  let _, sim = sim_of 0 in
  let f = Replay.frame sim 2.0 in
  Alcotest.(check bool) "has timestamp" true (Testkit.contains f "t = 2.0 s");
  Alcotest.(check bool) "has executing mixers" true (Testkit.contains f "M");
  let fin = Replay.frame sim 1000.0 in
  Alcotest.(check bool) "all idle at the end" true (Testkit.contains fin "_");
  Alcotest.(check bool) "no fluid at the end" false (Testkit.contains fin "*")

let test_replay_deterministic_across_jobs () =
  (* Same seed, different worker counts: the replayed movie must be
     frame-for-frame identical — the simulator sees the same schedule,
     chip and routing no matter how many domains synthesised them. *)
  let g, alloc = List.nth (Testkit.suite_instances ()) 1 in
  let config = { Mfb_core.Config.default with sa_restarts = 3 } in
  let movie jobs =
    let r = Mfb_core.Flow.run ~config ~jobs g alloc in
    let sim =
      Replay.create ~tc ~chip:r.chip ~schedule:r.schedule ~routing:r.routing
    in
    let events = Replay.events sim in
    let frames = List.map (Replay.frame sim) events in
    (events, frames)
  in
  let events1, frames1 = movie 1 in
  let events2, frames2 = movie 2 in
  Alcotest.(check (list (float 0.))) "event times identical" events1 events2;
  Alcotest.(check (list string)) "frames identical" frames1 frames2

let test_replay_detects_corruption () =
  (* Inject an overlapping occupation by doubling a task with a different
     fluid: the replay must notice. *)
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  let r = Mfb_core.Flow.run g alloc in
  match r.routing.tasks with
  | [] -> Alcotest.fail "expected tasks"
  | (task : Mfb_route.Routed.task) :: _ ->
    let clash_fluid = Mfb_bioassay.Fluid.make ~name:"intruder" ~diffusion:1e-6 in
    let clash =
      { task with
        transport = { task.transport with fluid = clash_fluid } }
    in
    let corrupted =
      { r.routing with tasks = clash :: r.routing.tasks }
    in
    let sim =
      Replay.create ~tc ~chip:r.chip ~schedule:r.schedule ~routing:corrupted
    in
    Alcotest.(check bool) "violations detected" true (Replay.check sim <> [])

let suites =
  [
    ( "sim.replay",
      [
        Alcotest.test_case "clean on suite" `Quick test_replay_clean_on_suite;
        Alcotest.test_case "events sorted" `Quick
          test_events_sorted_and_cover_makespan;
        Alcotest.test_case "state transitions" `Quick test_state_transitions;
        Alcotest.test_case "executing matches schedule" `Quick
          test_executing_matches_schedule;
        Alcotest.test_case "fluid appears during transport" `Quick
          test_fluid_appears_during_transport;
        Alcotest.test_case "frame rendering" `Quick test_frame_rendering;
        Alcotest.test_case "deterministic across jobs" `Quick
          test_replay_deterministic_across_jobs;
        Alcotest.test_case "detects corruption" `Quick
          test_replay_detects_corruption;
      ] );
  ]
