  $ ../../bin/dcsa_synth.exe list
  $ ../../bin/dcsa_synth.exe info -b PCR
  $ ../../bin/dcsa_synth.exe dot -b IVD | head -4
  $ ../../bin/dcsa_synth.exe run -b nope 2>&1 | head -1
  $ ../../bin/dcsa_synth.exe explore -b PCR
  $ cat > bad.assay <<'ASSAY'
  > assay "broken"
  > fluid serum 4e-7
  > op 0 grind 5 serum
  > ASSAY
  $ ../../bin/dcsa_synth.exe run -i bad.assay 2>&1 | head -1
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 2>/dev/null | cut -d' ' -f1
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 1 --json | grep -vE '(cpu|wall)_time_s' > jobs1.json
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 2 --json | grep -vE '(cpu|wall)_time_s' > jobs2.json
  $ diff jobs1.json jobs2.json
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 1 --layout --schedule --gantt 2>/dev/null | tail -n +2 > full1.txt
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 2 --layout --schedule --gantt 2>/dev/null | tail -n +2 > full2.txt
  $ diff full1.txt full2.txt
