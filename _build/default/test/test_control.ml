(* Tests for the control-layer substrate: valve placement, actuation
   timeline, and Hamming-distance multiplexing. *)

module Valve_map = Mfb_control.Valve_map
module Actuation = Mfb_control.Actuation
module Mux = Mfb_control.Mux

let tc = 2.0

let qtest ?(count = 100) name gen prop =
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

let routing_of index =
  let g, alloc = List.nth (Testkit.suite_instances ()) index in
  let r = Mfb_core.Flow.run g alloc in
  r.routing

(* --- Valve_map --- *)

let test_valves_exist_on_routed_designs () =
  List.iter
    (fun index ->
      let routing = routing_of index in
      let valves = Valve_map.of_routing routing in
      Alcotest.(check bool)
        (Printf.sprintf "instance %d has valves" index)
        true
        (Valve_map.count valves > 0))
    [ 0; 2; 4 ]

let test_valve_sites_unique_and_indexed () =
  let routing = routing_of 2 in
  let valves = Valve_map.of_routing routing in
  let sites = Valve_map.sites valves in
  Alcotest.(check int) "unique sites"
    (List.length sites)
    (List.length (List.sort_uniq compare sites));
  List.iteri
    (fun i xy ->
      Alcotest.(check (option int)) "dense index" (Some i)
        (Valve_map.index valves xy))
    sites;
  Alcotest.(check (option int)) "unknown cell" None
    (Valve_map.index valves (max_int, max_int))

let test_ports_are_valves () =
  let routing = routing_of 2 in
  let valves = Valve_map.of_routing routing in
  (* Both endpoints of every routed path carry an isolation valve. *)
  List.iter
    (fun (task : Mfb_route.Routed.task) ->
      match task.path with
      | [] -> Alcotest.fail "empty path"
      | first :: rest ->
        let last = List.fold_left (fun _ xy -> xy) first rest in
        Alcotest.(check bool) "entry valve" true
          (Valve_map.index valves first <> None);
        Alcotest.(check bool) "exit valve" true
          (Valve_map.index valves last <> None))
    routing.tasks

let test_valves_on_path () =
  let routing = routing_of 2 in
  let valves = Valve_map.of_routing routing in
  List.iter
    (fun (task : Mfb_route.Routed.task) ->
      let on_path = Valve_map.valves_on_path valves task.path in
      Alcotest.(check bool) "at least the two port valves" true
        (List.length on_path >= 1);
      Alcotest.(check int) "deduplicated"
        (List.length on_path)
        (List.length (List.sort_uniq compare on_path)))
    routing.tasks

(* --- Actuation --- *)

let test_actuation_ordered_and_switching () =
  let routing = routing_of 2 in
  let valves = Valve_map.of_routing routing in
  let steps = Actuation.steps ~tc valves routing in
  Alcotest.(check bool) "non-empty" true (steps <> []);
  let rec ordered = function
    | (a : Actuation.step) :: (b :: _ as rest) ->
      a.time <= b.time && ordered rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "time-ordered" true (ordered steps);
  let rec no_dups = function
    | (a : Actuation.step) :: (b :: _ as rest) ->
      a.open_valves <> b.open_valves && no_dups rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "consecutive states differ" true (no_dups steps);
  Alcotest.(check bool) "switching positive" true
    (Actuation.valve_switching steps > 0)

let test_toggle_sequence_length () =
  let routing = routing_of 3 in
  let valves = Valve_map.of_routing routing in
  let steps = Actuation.steps ~tc valves routing in
  Alcotest.(check int) "toggles = switching count"
    (Actuation.valve_switching steps)
    (List.length (Actuation.toggle_sequence steps))

let test_actuation_empty_routing () =
  (* A schedule with no transports yields no meaningful actuation. *)
  let g =
    Mfb_bioassay.Seq_graph.create ~name:"solo"
      ~ops:
        [ Mfb_bioassay.Operation.make ~id:0 ~kind:Mix ~duration:3.
            ~output:(Mfb_bioassay.Fluid.of_palette 0) ]
      ~edges:[]
  in
  let alloc = Mfb_component.Allocation.of_vector (1, 0, 0, 0) in
  let r = Mfb_core.Flow.run ~route_io:false g alloc in
  let valves = Valve_map.of_routing r.routing in
  let steps = Actuation.steps ~tc valves r.routing in
  Alcotest.(check int) "no switching" 0 (Actuation.valve_switching steps)

(* --- Mux --- *)

let test_pins_needed () =
  Alcotest.(check int) "0" 0 (Mux.pins_needed 0);
  Alcotest.(check int) "1" 1 (Mux.pins_needed 1);
  Alcotest.(check int) "2" 1 (Mux.pins_needed 2);
  Alcotest.(check int) "3" 2 (Mux.pins_needed 3);
  Alcotest.(check int) "4" 2 (Mux.pins_needed 4);
  Alcotest.(check int) "5" 3 (Mux.pins_needed 5);
  Alcotest.(check int) "1024" 10 (Mux.pins_needed 1024);
  Alcotest.(check int) "1025" 11 (Mux.pins_needed 1025);
  Alcotest.check_raises "negative" (Invalid_argument "Mux.pins_needed: negative")
    (fun () -> ignore (Mux.pins_needed (-1)))

let is_permutation (a : Mux.assignment) =
  let arr = (a :> int array) in
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  sorted = Array.init (Array.length arr) Fun.id

let test_assignments_are_permutations () =
  let events = [ 0; 3; 1; 3; 2; 0; 4 ] in
  Alcotest.(check bool) "naive" true (is_permutation (Mux.naive ~n:5));
  Alcotest.(check bool) "greedy" true
    (is_permutation (Mux.greedy ~events ~n:5))

let test_greedy_validates_events () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mux.greedy: valve 5 outside 0..4") (fun () ->
      ignore (Mux.greedy ~events:[ 5 ] ~n:5))

let test_switching_cost_known () =
  (* Addresses 0,1,3: transitions 0->0 (0), 0->1 (1), 1->3 (1): total 2. *)
  let a = Mux.naive ~n:4 in
  Alcotest.(check int) "known cost" 2
    (Mux.switching_cost a ~events:[ 0; 1; 3 ])

let test_improvement_percent () =
  Alcotest.(check (float 1e-9)) "half" 50.
    (Mux.improvement_percent ~naive:10 ~optimized:5);
  Alcotest.(check (float 1e-9)) "zero naive" 0.
    (Mux.improvement_percent ~naive:0 ~optimized:0)

let prop_cost_non_negative_and_stutter_free =
  qtest "switching cost is non-negative and repeats cost nothing"
    QCheck2.Gen.(list_size (int_range 1 60) (int_bound 15))
    (fun events ->
      let n = 16 in
      let a = Mux.greedy ~events ~n in
      let cost = Mux.switching_cost a ~events in
      let last = List.nth events (List.length events - 1) in
      let stuttered = Mux.switching_cost a ~events:(events @ [ last ]) in
      cost >= 0 && stuttered = cost)

let prop_greedy_permutation =
  qtest "greedy always yields a permutation"
    QCheck2.Gen.(list_size (int_bound 40) (int_bound 9))
    (fun events ->
      is_permutation (Mux.greedy ~events ~n:10))

(* End-to-end: the optimization reduces pin switching on real designs. *)
let test_control_layer_end_to_end () =
  List.iter
    (fun index ->
      let routing = routing_of index in
      let valves = Valve_map.of_routing routing in
      let steps = Actuation.steps ~tc valves routing in
      let events = Actuation.toggle_sequence steps in
      let n = max 1 (Valve_map.count valves) in
      let naive = Mux.switching_cost (Mux.naive ~n) ~events in
      let optimized = Mux.switching_cost (Mux.greedy ~events ~n) ~events in
      Alcotest.(check bool)
        (Printf.sprintf "instance %d: optimized <= naive" index)
        true (optimized <= naive))
    [ 0; 1; 2; 3; 4 ]

(* --- Escape routing --- *)

let escape_of index =
  let g, alloc = List.nth (Testkit.suite_instances ()) index in
  let r = Mfb_core.Flow.run g alloc in
  let valves = Valve_map.of_routing r.routing in
  (r, valves,
   Mfb_control.Escape.route ~width:r.chip.width ~height:r.chip.height valves)

let test_escape_reaches_edges () =
  let r, _, esc = escape_of 2 in
  let width = r.chip.width * 2 and height = r.chip.height * 2 in
  Alcotest.(check (list int)) "no congestion failures on CPA" [] esc.failed;
  List.iter
    (fun (_, path) ->
      match List.rev path with
      | [] -> Alcotest.fail "empty line"
      | (x, y) :: _ ->
        Alcotest.(check bool) "ends on the edge" true
          (x = 0 || y = 0 || x = width - 1 || y = height - 1))
    esc.lines

let test_escape_lines_disjoint () =
  let _, _, esc = escape_of 2 in
  let all_cells = List.concat_map snd esc.lines in
  Alcotest.(check int) "no two lines share a cell"
    (List.length all_cells)
    (List.length (List.sort_uniq compare all_cells))

let test_escape_one_pin_per_line () =
  let _, valves, esc = escape_of 2 in
  Alcotest.(check int) "pin per escaped valve" (List.length esc.lines)
    esc.pins;
  Alcotest.(check int) "every valve accounted for"
    (Valve_map.count valves)
    (List.length esc.lines + List.length esc.failed)

let test_escape_validation () =
  let _, valves, _ = escape_of 0 in
  Alcotest.check_raises "resolution"
    (Invalid_argument "Escape.route: resolution < 1") (fun () ->
      ignore (Mfb_control.Escape.route ~resolution:0 ~width:13 ~height:13 valves))

let test_escape_lines_connected () =
  let _, _, esc = escape_of 3 in
  List.iter
    (fun (_, path) ->
      let rec walk = function
        | (x1, y1) :: (((x2, y2) :: _) as rest) ->
          Alcotest.(check int) "4-adjacent steps" 1
            (abs (x1 - x2) + abs (y1 - y2));
          walk rest
        | [ _ ] | [] -> ()
      in
      walk path)
    esc.lines

let suites =
  [
    ( "control.valve_map",
      [
        Alcotest.test_case "valves exist" `Quick
          test_valves_exist_on_routed_designs;
        Alcotest.test_case "sites unique and indexed" `Quick
          test_valve_sites_unique_and_indexed;
        Alcotest.test_case "ports are valves" `Quick test_ports_are_valves;
        Alcotest.test_case "valves on path" `Quick test_valves_on_path;
      ] );
    ( "control.actuation",
      [
        Alcotest.test_case "ordered timeline" `Quick
          test_actuation_ordered_and_switching;
        Alcotest.test_case "toggle sequence" `Quick test_toggle_sequence_length;
        Alcotest.test_case "empty routing" `Quick test_actuation_empty_routing;
      ] );
    ( "control.mux",
      [
        Alcotest.test_case "pins_needed" `Quick test_pins_needed;
        Alcotest.test_case "permutations" `Quick
          test_assignments_are_permutations;
        Alcotest.test_case "event validation" `Quick
          test_greedy_validates_events;
        Alcotest.test_case "known cost" `Quick test_switching_cost_known;
        Alcotest.test_case "improvement percent" `Quick
          test_improvement_percent;
        prop_cost_non_negative_and_stutter_free;
        prop_greedy_permutation;
        Alcotest.test_case "end-to-end reduction" `Quick
          test_control_layer_end_to_end;
      ] );
    ( "control.escape",
      [
        Alcotest.test_case "reaches edges" `Quick test_escape_reaches_edges;
        Alcotest.test_case "lines disjoint" `Quick test_escape_lines_disjoint;
        Alcotest.test_case "one pin per line" `Quick
          test_escape_one_pin_per_line;
        Alcotest.test_case "validation" `Quick test_escape_validation;
        Alcotest.test_case "lines connected" `Quick
          test_escape_lines_connected;
      ] );
  ]
