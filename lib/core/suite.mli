(** The seven benchmark instances of the paper's Table I. *)

type instance = {
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;  (** Table I column 3 *)
}

val pcr : unit -> instance
(** 7 ops, (3,0,0,0). *)

val ivd : unit -> instance
(** 12 ops, (3,0,0,2). *)

val cpa : unit -> instance
(** 55 ops, (8,0,0,2). *)

val synthetic1 : unit -> instance
(** 20 ops, (3,3,2,1). *)

val synthetic2 : unit -> instance
(** 30 ops, (5,2,2,2). *)

val synthetic3 : unit -> instance
(** 40 ops, (6,4,4,2). *)

val synthetic4 : unit -> instance
(** 50 ops, (7,4,4,3). *)

val all : unit -> instance list
(** In Table-I row order. *)

val run_pairs :
  ?jobs:int ->
  ?config:Config.t ->
  ?instances:instance list ->
  unit ->
  (Result.t * Result.t) list
(** [run_pairs ~jobs ()] synthesises every instance (default: the whole
    suite) with both the paper's flow and the baseline, running the
    independent (instance, flow) tasks on up to [jobs] domains
    (default 1).  The returned (ours, baseline) pairs are in instance
    order and bit-for-bit independent of [jobs]. *)

val find : string -> instance option
(** Case-insensitive lookup by benchmark name. *)

val names : string list
