module Metrics = Mfb_schedule.Metrics

type stage_time = { stage : string; wall_s : float; cpu_s : float }

type t = {
  benchmark : string;
  flow : string;
  schedule : Mfb_schedule.Types.t;
  chip : Mfb_place.Chip.t;
  routing : Mfb_route.Routed.result;
  execution_time : float;
  utilization : float;
  channel_length_mm : float;
  channel_cache_time : float;
  channel_wash_time : float;
  component_wash_time : float;
  cpu_time : float;
  wall_time : float;
  stage_times : stage_time list;
  metrics : Mfb_util.Telemetry.metric list;
}

let of_stages ~benchmark ~flow ~cpu_time ?wall_time ?(stage_times = [])
    ?(metrics = []) ~schedule ~chip ~routing () =
  {
    benchmark; flow; schedule; chip; routing;
    execution_time = Metrics.completion_time schedule;
    utilization = Metrics.resource_utilization schedule;
    channel_length_mm = routing.Mfb_route.Routed.total_channel_length_mm;
    channel_cache_time = Metrics.total_channel_cache_time schedule;
    channel_wash_time = routing.Mfb_route.Routed.total_channel_wash;
    component_wash_time = Metrics.total_component_wash_time schedule;
    cpu_time;
    wall_time = Option.value wall_time ~default:cpu_time;
    stage_times;
    metrics;
  }

let to_json r =
  Mfb_util.Json.Obj
    ([
       ("benchmark", Mfb_util.Json.String r.benchmark);
       ("flow", Mfb_util.Json.String r.flow);
       ("execution_time_s", Mfb_util.Json.Float r.execution_time);
       ("utilization", Mfb_util.Json.Float r.utilization);
       ("channel_length_mm", Mfb_util.Json.Float r.channel_length_mm);
       ("channel_cache_time_s", Mfb_util.Json.Float r.channel_cache_time);
       ("channel_wash_time_s", Mfb_util.Json.Float r.channel_wash_time);
       ("component_wash_time_s", Mfb_util.Json.Float r.component_wash_time);
       ("cpu_time_s", Mfb_util.Json.Float r.cpu_time);
       ("wall_time_s", Mfb_util.Json.Float r.wall_time);
     ]
    @
    (* Telemetry aggregates are deterministic (jobs-invariant), unlike
       the timing fields above; present only when a sink was live. *)
    if r.metrics = [] then []
    else [ ("metrics", Mfb_util.Telemetry.metrics_to_json r.metrics) ])

let pp_summary ppf r =
  Format.fprintf ppf
    "%s/%s: exec=%.1fs util=%.1f%% channel=%.0fmm cache=%.1fs wash=%.1fs cpu=%.3fs"
    r.benchmark r.flow r.execution_time (100. *. r.utilization)
    r.channel_length_mm r.channel_cache_time r.channel_wash_time r.cpu_time
