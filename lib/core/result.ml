module Metrics = Mfb_schedule.Metrics

type stage_time = { stage : string; wall_s : float; cpu_s : float }

type t = {
  benchmark : string;
  flow : string;
  schedule : Mfb_schedule.Types.t;
  chip : Mfb_place.Chip.t;
  routing : Mfb_route.Routed.result;
  execution_time : float;
  utilization : float;
  channel_length_mm : float;
  channel_cache_time : float;
  channel_wash_time : float;
  component_wash_time : float;
  cpu_time : float;
  wall_time : float;
  stage_times : stage_time list;
  metrics : Mfb_util.Telemetry.metric list;
  decision : Mfb_schedule.Portfolio.decision option;
}

let of_stages ~benchmark ~flow ~cpu_time ?wall_time ?(stage_times = [])
    ?(metrics = []) ?decision ~schedule ~chip ~routing () =
  {
    benchmark; flow; schedule; chip; routing;
    execution_time = Metrics.completion_time schedule;
    utilization = Metrics.resource_utilization schedule;
    channel_length_mm = routing.Mfb_route.Routed.total_channel_length_mm;
    channel_cache_time = Metrics.total_channel_cache_time schedule;
    channel_wash_time = routing.Mfb_route.Routed.total_channel_wash;
    component_wash_time = Metrics.total_component_wash_time schedule;
    cpu_time;
    wall_time = Option.value wall_time ~default:cpu_time;
    stage_times;
    metrics;
    decision;
  }

type summary = {
  s_benchmark : string;
  s_flow : string;
  s_execution_time : float;
  s_utilization : float;
  s_channel_length_mm : float;
  s_channel_cache_time : float;
  s_channel_wash_time : float;
  s_component_wash_time : float;
}

let summarize r =
  {
    s_benchmark = r.benchmark;
    s_flow = r.flow;
    s_execution_time = r.execution_time;
    s_utilization = r.utilization;
    s_channel_length_mm = r.channel_length_mm;
    s_channel_cache_time = r.channel_cache_time;
    s_channel_wash_time = r.channel_wash_time;
    s_component_wash_time = r.component_wash_time;
  }

let summary_to_json s =
  Mfb_util.Json.Obj
    [
      ("benchmark", Mfb_util.Json.String s.s_benchmark);
      ("flow", Mfb_util.Json.String s.s_flow);
      ("execution_time_s", Mfb_util.Json.Float s.s_execution_time);
      ("utilization", Mfb_util.Json.Float s.s_utilization);
      ("channel_length_mm", Mfb_util.Json.Float s.s_channel_length_mm);
      ("channel_cache_time_s", Mfb_util.Json.Float s.s_channel_cache_time);
      ("channel_wash_time_s", Mfb_util.Json.Float s.s_channel_wash_time);
      ("component_wash_time_s", Mfb_util.Json.Float s.s_component_wash_time);
    ]

let summary_of_json v =
  let module J = Mfb_util.Json in
  let ( let* ) = Stdlib.Result.bind in
  let str k =
    match J.member k v with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let num k =
    match J.member k v with
    | Some (J.Float f) -> Ok f
    | Some (J.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "missing numeric field %S" k)
  in
  let* s_benchmark = str "benchmark" in
  let* s_flow = str "flow" in
  let* s_execution_time = num "execution_time_s" in
  let* s_utilization = num "utilization" in
  let* s_channel_length_mm = num "channel_length_mm" in
  let* s_channel_cache_time = num "channel_cache_time_s" in
  let* s_channel_wash_time = num "channel_wash_time_s" in
  let* s_component_wash_time = num "component_wash_time_s" in
  Ok
    {
      s_benchmark;
      s_flow;
      s_execution_time;
      s_utilization;
      s_channel_length_mm;
      s_channel_cache_time;
      s_channel_wash_time;
      s_component_wash_time;
    }

let to_json r =
  let summary_fields =
    match summary_to_json (summarize r) with
    | Mfb_util.Json.Obj fields -> fields
    | _ -> assert false
  in
  Mfb_util.Json.Obj
    (summary_fields
    @ [
        ("cpu_time_s", Mfb_util.Json.Float r.cpu_time);
        ("wall_time_s", Mfb_util.Json.Float r.wall_time);
      ]
    (* The backend decision, like the summary fields, is deterministic;
       it is absent for the heuristic backend so that heuristic output
       stays byte-identical to pre-backend versions. *)
    @ (match r.decision with
      | None -> []
      | Some d ->
        [ ("backend", Mfb_schedule.Portfolio.decision_to_json d) ])
    @
    (* Telemetry aggregates are deterministic (jobs-invariant), unlike
       the timing fields above; present only when a sink was live. *)
    if r.metrics = [] then []
    else [ ("metrics", Mfb_util.Telemetry.metrics_to_json r.metrics) ])

let pp_summary ppf r =
  Format.fprintf ppf
    "%s/%s: exec=%.1fs util=%.1f%% channel=%.0fmm cache=%.1fs wash=%.1fs cpu=%.3fs"
    r.benchmark r.flow r.execution_time (100. *. r.utilization)
    r.channel_length_mm r.channel_cache_time r.channel_wash_time r.cpu_time
