(** Formatting of experiment outputs in the shape of the paper's Table I
    and Figs. 8-9. *)

val table1 : (Result.t * Result.t) list -> string
(** [table1 pairs] renders Table I from (ours, baseline) result pairs:
    execution time, resource utilization, total channel length, CPU time,
    with per-row and average improvement percentages. *)

val figure :
  title:string ->
  unit_label:string ->
  value:(Result.t -> float) ->
  (Result.t * Result.t) list ->
  string
(** [figure ~title ~unit_label ~value pairs] renders a two-series text
    bar chart (ours vs BA) of [value] per benchmark — used for Fig. 8
    (total channel cache time) and Fig. 9 (total channel wash time). *)

val fig8 : (Result.t * Result.t) list -> string
val fig9 : (Result.t * Result.t) list -> string

val timing_table : Result.t list -> string
(** Per-stage wall-clock vs CPU time of each result (plus a total row).
    On a multi-core host with [--jobs N] the CPU/Wall ratio of a
    parallel stage shows its effective speedup.  An empty input renders
    a header-only table. *)

val metrics_table : Result.t list -> string
(** Telemetry aggregates of each result (one row per metric, in the
    deterministic (category, name) order).  Results carry metrics only
    when a {!Mfb_util.Telemetry} sink was installed during synthesis. *)

val heuristic_gap : Result.t list -> string
(** Heuristic-gap-vs-exact table over results that carry a backend
    {!Result.t.decision} (others are skipped): heuristic and exact
    makespans, relative gap, optimality status and nodes explored, with
    the average gap over the optimally-solved rows.  An input with no
    decisions renders a header-only table. *)

val suite_to_json : (Result.t * Result.t) list -> Mfb_util.Json.t
