(** End-to-end physical-synthesis result: the quantities reported in the
    paper's Table I and Figs. 8-9 for one benchmark and one flow. *)

type stage_time = {
  stage : string;   (** ["schedule"], ["place"] or ["route"] *)
  wall_s : float;   (** elapsed wall-clock seconds *)
  cpu_s : float;    (** process CPU seconds (summed over all domains) *)
}
(** Per-stage timing sample.  Under [--jobs N] parallelism the CPU time
    exceeds the wall time on a multi-core host; the ratio is the
    effective speedup of the stage. *)

type t = {
  benchmark : string;
  flow : string;                     (** ["ours"] or ["ba"] (or ablations) *)
  schedule : Mfb_schedule.Types.t;   (** final (post-retiming) schedule *)
  chip : Mfb_place.Chip.t;
  routing : Mfb_route.Routed.result;
  execution_time : float;            (** Table I "Execution time (s)" *)
  utilization : float;               (** Table I "Resource utilization", in [0,1] *)
  channel_length_mm : float;         (** Table I "Total channel length (mm)" *)
  channel_cache_time : float;        (** Fig. 8 "total cache time" *)
  channel_wash_time : float;         (** Fig. 9 "total wash time of flow channels" *)
  component_wash_time : float;       (** auxiliary: component washes *)
  cpu_time : float;                  (** Table I "CPU time (s)" *)
  wall_time : float;                 (** elapsed wall-clock time (s) *)
  stage_times : stage_time list;     (** per-stage wall vs CPU breakdown *)
  metrics : Mfb_util.Telemetry.metric list;
  (** telemetry aggregates scoped to this run ([[]] when no sink was
      installed); deterministic — bit-for-bit identical for every
      [--jobs] value, unlike the timing fields *)
}

val of_stages :
  benchmark:string ->
  flow:string ->
  cpu_time:float ->
  ?wall_time:float ->
  ?stage_times:stage_time list ->
  ?metrics:Mfb_util.Telemetry.metric list ->
  schedule:Mfb_schedule.Types.t ->
  chip:Mfb_place.Chip.t ->
  routing:Mfb_route.Routed.result ->
  unit ->
  t
(** Derive all scalar metrics from the three stage outputs.
    [wall_time] defaults to [cpu_time]; [stage_times] and [metrics] to
    [[]]. *)

val to_json : t -> Mfb_util.Json.t
(** Scalar metrics only (no schedule/layout dump).  Includes a
    ["metrics"] object when telemetry aggregates are present. *)

val pp_summary : Format.formatter -> t -> unit
