(** End-to-end physical-synthesis result: the quantities reported in the
    paper's Table I and Figs. 8-9 for one benchmark and one flow. *)

type stage_time = {
  stage : string;   (** ["schedule"], ["place"] or ["route"] *)
  wall_s : float;   (** elapsed wall-clock seconds *)
  cpu_s : float;    (** process CPU seconds (summed over all domains) *)
}
(** Per-stage timing sample.  Under [--jobs N] parallelism the CPU time
    exceeds the wall time on a multi-core host; the ratio is the
    effective speedup of the stage. *)

type t = {
  benchmark : string;
  flow : string;                     (** ["ours"] or ["ba"] (or ablations) *)
  schedule : Mfb_schedule.Types.t;   (** final (post-retiming) schedule *)
  chip : Mfb_place.Chip.t;
  routing : Mfb_route.Routed.result;
  execution_time : float;            (** Table I "Execution time (s)" *)
  utilization : float;               (** Table I "Resource utilization", in [0,1] *)
  channel_length_mm : float;         (** Table I "Total channel length (mm)" *)
  channel_cache_time : float;        (** Fig. 8 "total cache time" *)
  channel_wash_time : float;         (** Fig. 9 "total wash time of flow channels" *)
  component_wash_time : float;       (** auxiliary: component washes *)
  cpu_time : float;                  (** Table I "CPU time (s)" *)
  wall_time : float;                 (** elapsed wall-clock time (s) *)
  stage_times : stage_time list;     (** per-stage wall vs CPU breakdown *)
  metrics : Mfb_util.Telemetry.metric list;
  (** telemetry aggregates scoped to this run ([[]] when no sink was
      installed); deterministic — bit-for-bit identical for every
      [--jobs] value, unlike the timing fields *)
  decision : Mfb_schedule.Portfolio.decision option;
  (** how the schedule was obtained when a non-heuristic backend ran
      ([None] for the plain heuristic flow) *)
}

val of_stages :
  benchmark:string ->
  flow:string ->
  cpu_time:float ->
  ?wall_time:float ->
  ?stage_times:stage_time list ->
  ?metrics:Mfb_util.Telemetry.metric list ->
  ?decision:Mfb_schedule.Portfolio.decision ->
  schedule:Mfb_schedule.Types.t ->
  chip:Mfb_place.Chip.t ->
  routing:Mfb_route.Routed.result ->
  unit ->
  t
(** Derive all scalar metrics from the three stage outputs.
    [wall_time] defaults to [cpu_time]; [stage_times] and [metrics] to
    [[]]. *)

val to_json : t -> Mfb_util.Json.t
(** Scalar metrics only (no schedule/layout dump).  Includes a
    ["backend"] object when a non-heuristic backend produced the
    schedule and a ["metrics"] object when telemetry aggregates are
    present. *)

(** {2 Deterministic summary}

    The serving layer caches and replays results, so it needs the
    subset of {!t} that is a pure function of the request — everything
    except the timing fields (which vary run to run) and the heavyweight
    stage outputs.  [summary] round-trips through JSON losslessly:
    [summary_of_json (summary_to_json s) = Ok s]. *)

type summary = {
  s_benchmark : string;
  s_flow : string;
  s_execution_time : float;
  s_utilization : float;
  s_channel_length_mm : float;
  s_channel_cache_time : float;
  s_channel_wash_time : float;
  s_component_wash_time : float;
}

val summarize : t -> summary

val summary_to_json : summary -> Mfb_util.Json.t
(** Field names and order match the leading fields of {!to_json}. *)

val summary_of_json : Mfb_util.Json.t -> (summary, string) result
(** Inverse of {!summary_to_json}; accepts integer-typed numbers for the
    float fields (the JSON parser types [3] as [Int]). *)

val pp_summary : Format.formatter -> t -> unit
