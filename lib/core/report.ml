module Table = Mfb_util.Table
module Stats = Mfb_util.Stats

let imp ~ours ~ba = Stats.percent_improvement ~ours ~baseline:ba

(* Resource-utilization improvement is an increase, not a reduction. *)
let imp_up ~ours ~ba = Stats.percent_increase ~ours ~baseline:ba

let table1 pairs =
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Ops"; "Components";
          "Exec Ours"; "Exec BA"; "Imp(%)";
          "Util Ours"; "Util BA"; "Imp(%)";
          "Chan Ours"; "Chan BA"; "Imp(%)";
          "CPU Ours"; "CPU BA" ]
  in
  Table.set_aligns table
    (Table.Left :: List.init 13 (fun _ -> Table.Right));
  let exec_imps = ref [] and util_imps = ref [] and chan_imps = ref [] in
  List.iter
    (fun ((ours : Result.t), (ba : Result.t)) ->
      let g = ours.schedule.Mfb_schedule.Types.graph in
      let e = imp ~ours:ours.execution_time ~ba:ba.execution_time in
      let u = imp_up ~ours:ours.utilization ~ba:ba.utilization in
      let c = imp ~ours:ours.channel_length_mm ~ba:ba.channel_length_mm in
      exec_imps := e :: !exec_imps;
      util_imps := u :: !util_imps;
      chan_imps := c :: !chan_imps;
      Table.add_row table
        [
          ours.benchmark;
          string_of_int (Mfb_bioassay.Seq_graph.n_ops g);
          Mfb_component.Allocation.to_string
            ours.schedule.Mfb_schedule.Types.allocation;
          Printf.sprintf "%.1f" ours.execution_time;
          Printf.sprintf "%.1f" ba.execution_time;
          Printf.sprintf "%.1f" e;
          Printf.sprintf "%.1f" (100. *. ours.utilization);
          Printf.sprintf "%.1f" (100. *. ba.utilization);
          Printf.sprintf "%.1f" u;
          Printf.sprintf "%.0f" ours.channel_length_mm;
          Printf.sprintf "%.0f" ba.channel_length_mm;
          Printf.sprintf "%.1f" c;
          Printf.sprintf "%.3f" ours.cpu_time;
          Printf.sprintf "%.3f" ba.cpu_time;
        ])
    pairs;
  Table.add_separator table;
  Table.add_row table
    [
      "Average"; "-"; "-"; "-"; "-";
      Printf.sprintf "%.1f" (Stats.mean !exec_imps);
      "-"; "-";
      Printf.sprintf "%.1f" (Stats.mean !util_imps);
      "-"; "-";
      Printf.sprintf "%.1f" (Stats.mean !chan_imps);
      "-"; "-";
    ];
  Table.render table

let bar width value max_value =
  if max_value <= 0. then ""
  else begin
    let n =
      int_of_float (Float.round (float_of_int width *. value /. max_value))
    in
    String.make (max 0 (min width n)) '#'
  end

let figure ~title ~unit_label ~value pairs =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  let max_value =
    List.fold_left
      (fun acc (ours, ba) -> Float.max acc (Float.max (value ours) (value ba)))
      0. pairs
  in
  List.iter
    (fun ((ours : Result.t), ba) ->
      let vo = value ours and vb = value ba in
      Buffer.add_string buf
        (Printf.sprintf "  %-11s ours %7.1f %s |%-40s|\n" ours.benchmark vo
           unit_label (bar 40 vo max_value));
      Buffer.add_string buf
        (Printf.sprintf "  %-11s BA   %7.1f %s |%-40s|\n" "" vb unit_label
           (bar 40 vb max_value)))
    pairs;
  Buffer.contents buf

let fig8 pairs =
  figure ~title:"Figure 8: total cache time in flow channels"
    ~unit_label:"s"
    ~value:(fun r -> r.Result.channel_cache_time)
    pairs

let fig9 pairs =
  figure ~title:"Figure 9: total wash time of flow channels"
    ~unit_label:"s"
    ~value:(fun r -> r.Result.channel_wash_time)
    pairs

let timing_table results =
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Flow"; "Stage"; "Wall (s)"; "CPU (s)"; "CPU/Wall" ]
  in
  Table.set_aligns table
    [ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right;
      Table.Right ];
  let row benchmark flow stage ~wall ~cpu =
    Table.add_row table
      [
        benchmark; flow; stage;
        Printf.sprintf "%.3f" wall;
        Printf.sprintf "%.3f" cpu;
        (if wall > 1e-9 then Printf.sprintf "%.2fx" (cpu /. wall) else "-");
      ]
  in
  List.iter
    (fun (r : Result.t) ->
      List.iter
        (fun (st : Result.stage_time) ->
          row r.benchmark r.flow st.stage ~wall:st.wall_s ~cpu:st.cpu_s)
        r.stage_times;
      row r.benchmark r.flow "total" ~wall:r.wall_time ~cpu:r.cpu_time)
    results;
  Table.render table

let metrics_table results =
  let module Telemetry = Mfb_util.Telemetry in
  let table =
    Table.create
      ~headers:[ "Benchmark"; "Flow"; "Category"; "Metric"; "Value" ]
  in
  Table.set_aligns table
    [ Table.Left; Table.Left; Table.Left; Table.Left; Table.Right ];
  List.iter
    (fun (r : Result.t) ->
      List.iter
        (fun (m : Telemetry.metric) ->
          Table.add_row table
            [ r.benchmark; r.flow; m.mcat; m.mname;
              Telemetry.metric_value_string m.mdata ])
        r.metrics)
    results;
  Table.render table

let heuristic_gap results =
  let module Portfolio = Mfb_schedule.Portfolio in
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Ops"; "Heuristic (s)"; "Exact (s)"; "Gap (%)";
          "Status"; "Explored" ]
  in
  Table.set_aligns table
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
      Table.Left; Table.Right ];
  let gaps = ref [] in
  List.iter
    (fun (r : Result.t) ->
      match r.decision with
      | None -> ()
      | Some d ->
        let gap = Portfolio.gap_percent d in
        if d.optimal then gaps := gap :: !gaps;
        Table.add_row table
          [
            r.benchmark;
            string_of_int
              (Mfb_bioassay.Seq_graph.n_ops r.schedule.Mfb_schedule.Types.graph);
            Printf.sprintf "%.2f" d.heuristic_makespan;
            Printf.sprintf "%.2f" d.makespan;
            Printf.sprintf "%.1f" gap;
            (if d.optimal then "optimal"
             else Printf.sprintf "truncated@%d" d.fuel);
            string_of_int d.explored;
          ])
    results;
  if !gaps <> [] then begin
    Table.add_separator table;
    Table.add_row table
      [
        "Average (optimal only)"; "-"; "-"; "-";
        Printf.sprintf "%.1f" (Stats.mean !gaps); "-"; "-";
      ]
  end;
  Table.render table

let suite_to_json pairs =
  Mfb_util.Json.List
    (List.concat_map
       (fun (ours, ba) -> [ Result.to_json ours; Result.to_json ba ])
       pairs)
