let log_src = Logs.Src.create "mfb.flow" ~doc:"DCSA synthesis flow"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Telemetry = Mfb_util.Telemetry

type scheduler = [ `Dcsa | `Earliest_ready ]

type placement_energy = [ `Connection_priority | `Uniform ]

type placer = [ `Annealing | `Force_directed ]

type router = [ `Sequential | `Negotiated ]

let run ?(config = Config.default) ?(scheduler = `Dcsa)
    ?(placement_energy = `Connection_priority) ?(placer = `Annealing)
    ?(router = `Sequential) ?(weight_update = true) ?(route_io = false)
    ?(jobs = 1) ?(flow_name = "ours") graph allocation =
  Config.validate config;
  if jobs < 1 then invalid_arg "Flow.run: jobs < 1";
  if config.backend <> Mfb_schedule.Portfolio.Heuristic && scheduler <> `Dcsa
  then
    invalid_arg
      "Flow.run: exact/portfolio backends only replace the DCSA scheduler";
  let started_wall = Unix.gettimeofday () and started_cpu = Sys.time () in
  let stage_times = ref [] in
  (* [timed name f] runs stage [f], logs and records wall vs CPU time.
     Sys.time sums the CPU of every domain, so under parallel sections
     cpu_s > wall_s and the gap is the harvested speedup. *)
  let timed name f =
    let w0 = Unix.gettimeofday () and c0 = Sys.time () in
    let v = Telemetry.span ~cat:"stage" name f in
    let wall_s = Unix.gettimeofday () -. w0 and cpu_s = Sys.time () -. c0 in
    stage_times :=
      { Result.stage = name; wall_s; cpu_s } :: !stage_times;
    Log.debug (fun m ->
        m "%s: %s finished in %.1f ms wall (%.1f ms cpu)"
          (Mfb_bioassay.Seq_graph.name graph)
          name (1000. *. wall_s) (1000. *. cpu_s));
    v
  in
  let synthesize () =
  (* Stage 1: binding and scheduling (paper Alg. 1), or the exact /
     portfolio backend when the config asks for one. *)
  let sched, decision =
    timed "schedule" (fun () ->
        match config.backend with
        | Mfb_schedule.Portfolio.Heuristic ->
          ( (match scheduler with
            | `Dcsa ->
              Mfb_schedule.Dcsa_scheduler.schedule ~tc:config.tc graph
                allocation
            | `Earliest_ready ->
              Mfb_schedule.Baseline_scheduler.schedule ~tc:config.tc graph
                allocation),
            None )
        | Mfb_schedule.Portfolio.Exact ->
          let sched, decision =
            Mfb_schedule.Portfolio.exact ~fuel:config.exact_fuel
              ~tc:config.tc graph allocation
          in
          (sched, Some decision)
        | Mfb_schedule.Portfolio.Portfolio ->
          let sched, decision =
            Mfb_schedule.Portfolio.race ~fuel:config.exact_fuel ~jobs
              ~tc:config.tc graph allocation
          in
          (sched, Some decision))
  in
  (* Stage 2: placement (paper Alg. 2, lines 1-8). *)
  let nets = Mfb_place.Net.of_schedule sched in
  let weighted =
    match placement_energy with
    | `Connection_priority ->
      Mfb_place.Energy.weigh ~beta:config.beta ~gamma:config.gamma nets
    | `Uniform -> Mfb_place.Energy.uniform nets
  in
  let chip =
    timed "place" (fun () ->
        match placer with
        | `Annealing ->
          let rng = Mfb_util.Rng.create config.seed in
          (Mfb_place.Annealer.anneal_multi ~params:config.sa ~jobs
             ~restarts:config.sa_restarts ~rng ~nets:weighted
             sched.components)
            .chip
        | `Force_directed ->
          (Mfb_place.Force_place.place ~nets:weighted sched.components).chip)
  in
  (* Stage 3: conflict-aware routing (paper Alg. 2, lines 9-18). *)
  let routing =
    timed "route" (fun () ->
        match router with
        | `Sequential ->
          Mfb_route.Router.route ~weight_update ~route_io ~we:config.we
            ~tc:config.tc chip sched
        | `Negotiated ->
          Mfb_route.Negotiated_router.route ~weight_update ~route_io
            ~we:config.we ~tc:config.tc chip sched)
  in
  Log.info (fun m ->
      m "%s/%s: %d transports, %d unresolved, %.0f mm of channels"
        (Mfb_bioassay.Seq_graph.name graph)
        flow_name
        (List.length sched.transports)
        routing.unresolved routing.total_channel_length_mm);
  (* Any routing postponements flow back into the schedule. *)
  let delays =
    List.filter_map
      (fun (task : Mfb_route.Routed.task) ->
        if task.kind = Mfb_route.Routed.Transport && task.delay > 0. then
          Some (task.transport.Mfb_schedule.Types.edge, task.delay)
        else None)
      routing.tasks
  in
  (* A dispense that had to arrive late pushes its operation's start. *)
  let op_delays =
    List.filter_map
      (fun (task : Mfb_route.Routed.task) ->
        if task.kind = Mfb_route.Routed.Dispense && task.delay > 0. then
          Some (fst task.transport.Mfb_schedule.Types.edge, task.delay)
        else None)
      routing.tasks
  in
  let final_sched =
    if delays = [] && op_delays = [] then sched
    else Mfb_schedule.Retime.with_transport_delays ~op_delays sched ~delays
  in
  (final_sched, chip, routing, decision)
  in
  (* The whole run executes under a telemetry scope, so the metrics
     attached to the result cover exactly this run's collectors (its
     pool tasks included) and nothing from concurrent suite instances. *)
  let (final_sched, chip, routing, decision), metrics =
    Telemetry.with_scope
      (Printf.sprintf "run:%s/%s" (Mfb_bioassay.Seq_graph.name graph)
         flow_name)
      synthesize
  in
  Result.of_stages
    ~benchmark:(Mfb_bioassay.Seq_graph.name graph)
    ~flow:flow_name
    ~cpu_time:(Sys.time () -. started_cpu)
    ~wall_time:(Unix.gettimeofday () -. started_wall)
    ~stage_times:(List.rev !stage_times)
    ~metrics
    ?decision
    ~schedule:final_sched ~chip ~routing ()
