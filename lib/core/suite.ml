type instance = {
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;
}

let make graph vector =
  { graph; allocation = Mfb_component.Allocation.of_vector vector }

let pcr () = make (Mfb_bioassay.Benchmarks.pcr ()) (3, 0, 0, 0)
let ivd () = make (Mfb_bioassay.Benchmarks.ivd ()) (3, 0, 0, 2)
let cpa () = make (Mfb_bioassay.Benchmarks.cpa ()) (8, 0, 0, 2)
let synthetic1 () = make (Mfb_bioassay.Synthetic.synthetic1 ()) (3, 3, 2, 1)
let synthetic2 () = make (Mfb_bioassay.Synthetic.synthetic2 ()) (5, 2, 2, 2)
let synthetic3 () = make (Mfb_bioassay.Synthetic.synthetic3 ()) (6, 4, 4, 2)
let synthetic4 () = make (Mfb_bioassay.Synthetic.synthetic4 ()) (7, 4, 4, 3)

let all () =
  [ pcr (); ivd (); cpa (); synthetic1 (); synthetic2 (); synthetic3 ();
    synthetic4 () ]

let names =
  [ "PCR"; "IVD"; "CPA"; "Synthetic1"; "Synthetic2"; "Synthetic3";
    "Synthetic4" ]

(* Each (instance, flow) pair is an independent synthesis task, so the
   whole Table-I evaluation fans out over the pool: 14 tasks for the
   7-instance suite.  Results are re-paired in suite order, which the
   pool guarantees regardless of the worker count. *)
let run_pairs ?(jobs = 1) ?(config = Config.default) ?(instances = all ()) ()
    =
  let tasks =
    List.concat_map (fun inst -> [ (inst, `Ours); (inst, `Ba) ]) instances
  in
  let results =
    Mfb_util.Pool.map ~label:"synthesis" ~jobs
      (fun (inst, flow) ->
        match flow with
        | `Ours -> Flow.run ~config inst.graph inst.allocation
        | `Ba -> Baseline.run ~config inst.graph inst.allocation)
      tasks
  in
  let rec pair = function
    | ours :: ba :: rest -> (ours, ba) :: pair rest
    | [] -> []
    | [ _ ] -> assert false
  in
  pair results

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun inst ->
      String.lowercase_ascii (Mfb_bioassay.Seq_graph.name inst.graph) = lower)
    (all ())
