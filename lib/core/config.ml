type t = {
  tc : float;
  we : float;
  beta : float;
  gamma : float;
  sa : Mfb_place.Annealer.params;
  sa_restarts : int;
  seed : int;
  backend : Mfb_schedule.Portfolio.backend;
  exact_fuel : int;
}

let default =
  { tc = 2.0; we = 10.0; beta = 0.6; gamma = 0.4;
    sa = Mfb_place.Annealer.default_params; sa_restarts = 1; seed = 42;
    backend = Mfb_schedule.Portfolio.Heuristic;
    exact_fuel = Mfb_schedule.Exact.default_fuel }

let to_json cfg =
  let module J = Mfb_util.Json in
  J.Obj
    [
      ("tc", J.Float cfg.tc);
      ("we", J.Float cfg.we);
      ("beta", J.Float cfg.beta);
      ("gamma", J.Float cfg.gamma);
      ( "sa",
        J.Obj
          [
            ("t0", J.Float cfg.sa.t0);
            ("t_min", J.Float cfg.sa.t_min);
            ("alpha", J.Float cfg.sa.alpha);
            ("i_max", J.Int cfg.sa.i_max);
          ] );
      ("sa_restarts", J.Int cfg.sa_restarts);
      ("seed", J.Int cfg.seed);
      ( "backend",
        J.String (Mfb_schedule.Portfolio.backend_to_string cfg.backend) );
      ("exact_fuel", J.Int cfg.exact_fuel);
    ]

let validate cfg =
  if cfg.tc <= 0. then invalid_arg "Config: tc must be positive";
  if cfg.we < 0. then invalid_arg "Config: we must be non-negative";
  if cfg.beta < 0. || cfg.gamma < 0. then
    invalid_arg "Config: beta and gamma must be non-negative";
  if cfg.sa_restarts < 1 then invalid_arg "Config: sa_restarts must be >= 1";
  if cfg.exact_fuel < 1 then invalid_arg "Config: exact_fuel must be >= 1"
