(** Synthesis-flow parameters.  Defaults are the paper's §V settings:
    alpha = 0.9, beta = 0.6, gamma = 0.4, T0 = 10000, I_max = 150,
    T_min = 1.0, t_c = 2.0, w_e = 10. *)

type t = {
  tc : float;     (** transport-time constant between components (s) *)
  we : float;     (** initial routing-cell weight *)
  beta : float;   (** concurrency weight in Eq. 4 *)
  gamma : float;  (** wash-time weight in Eq. 4 *)
  sa : Mfb_place.Annealer.params;  (** annealing schedule *)
  sa_restarts : int;
      (** independent annealing restarts per placement (default 1); the
          best energy wins deterministically regardless of how many
          domains execute them *)
  seed : int;     (** RNG seed for the annealer *)
  backend : Mfb_schedule.Portfolio.backend;
      (** scheduling backend: the DCSA heuristic (default), the exact
          branch-and-bound oracle, or the portfolio racing both *)
  exact_fuel : int;
      (** virtual-tick budget (expanded nodes) of the exact backend *)
}

val default : t

val validate : t -> unit
(** @raise Invalid_argument when a parameter is out of range. *)

val to_json : t -> Mfb_util.Json.t
(** Stable field-by-field rendering (annealing schedule nested under
    ["sa"]) — echoed by the serve protocol's [stats] reply so clients
    can see the exact parameter set behind cached results. *)
