let run ?(config = Config.default) ?(route_io = false) ?(flow_name = "ba")
    graph allocation =
  let module Telemetry = Mfb_util.Telemetry in
  Config.validate config;
  let started_wall = Unix.gettimeofday () in
  let started = Sys.time () in
  let synthesize () =
    let sched =
      Telemetry.span ~cat:"stage" "schedule" (fun () ->
          Mfb_schedule.Baseline_scheduler.schedule ~tc:config.tc graph
            allocation)
    in
    let nets = Mfb_place.Net.of_schedule sched in
    (* The baseline placement corrects plain wirelength only. *)
    let weighted = Mfb_place.Energy.uniform nets in
    let chip =
      Telemetry.span ~cat:"stage" "place" (fun () ->
          Mfb_place.Greedy_place.place ~nets:weighted sched.components)
    in
    let routing =
      Telemetry.span ~cat:"stage" "route" (fun () ->
          Mfb_route.Baseline_router.route ~route_io ~we:config.we
            ~tc:config.tc chip sched)
    in
    (sched, chip, routing)
  in
  let (sched, chip, routing), metrics =
    Telemetry.with_scope
      (Printf.sprintf "run:%s/%s"
         (Mfb_bioassay.Seq_graph.name graph)
         flow_name)
      synthesize
  in
  let delays =
    List.filter_map
      (fun (task : Mfb_route.Routed.task) ->
        if task.kind = Mfb_route.Routed.Transport && task.delay > 0. then
          Some (task.transport.Mfb_schedule.Types.edge, task.delay)
        else None)
      routing.tasks
  in
  (* A dispense that had to arrive late pushes its operation's start. *)
  let op_delays =
    List.filter_map
      (fun (task : Mfb_route.Routed.task) ->
        if task.kind = Mfb_route.Routed.Dispense && task.delay > 0. then
          Some (fst task.transport.Mfb_schedule.Types.edge, task.delay)
        else None)
      routing.tasks
  in
  let final_sched =
    if delays = [] && op_delays = [] then sched
    else Mfb_schedule.Retime.with_transport_delays ~op_delays sched ~delays
  in
  Result.of_stages
    ~benchmark:(Mfb_bioassay.Seq_graph.name graph)
    ~flow:flow_name
    ~cpu_time:(Sys.time () -. started)
    ~wall_time:(Unix.gettimeofday () -. started_wall)
    ~metrics
    ~schedule:final_sched ~chip ~routing ()
