let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.2rem; margin-top: 2.2rem; border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border: 1px solid #ccc; padding: .35rem .6rem; text-align: right; }
th { background: #f3f1ec; } td:first-child, th:first-child { text-align: left; }
.bar { display: inline-block; height: .8rem; border-radius: 2px; vertical-align: middle; }
.ours { background: #4e79a7; } .ba { background: #e15759; }
.bench { font-weight: 600; } .svgrow { display: flex; flex-wrap: wrap; gap: 1.5rem; }
.num { font-variant-numeric: tabular-nums; } figure { margin: 0; } figcaption { font-size: .85rem; color: #555; }
.better { color: #2a7d2a; font-weight: 600; } .worse { color: #b33; font-weight: 600; }|}

let pct ~ours ~ba = Mfb_util.Stats.percent_improvement ~ours ~baseline:ba

let imp_cell value =
  let cls = if value >= 0. then "better" else "worse" in
  Printf.sprintf {|<td class="%s">%.1f</td>|} cls value

let table1 buf pairs =
  Buffer.add_string buf
    {|<h2>Table I — execution time, resource utilization, channel length</h2>
<table><tr><th>Benchmark</th><th>Ops</th><th>Alloc</th>
<th>Exec ours (s)</th><th>Exec BA (s)</th><th>Imp (%)</th>
<th>Util ours (%)</th><th>Util BA (%)</th>
<th>Chan ours (mm)</th><th>Chan BA (mm)</th><th>Imp (%)</th></tr>|};
  List.iter
    (fun ((ours : Result.t), (ba : Result.t)) ->
      let g = ours.schedule.Mfb_schedule.Types.graph in
      Buffer.add_string buf
        (Printf.sprintf
           {|<tr><td class="bench">%s</td><td>%d</td><td>%s</td>
<td>%.1f</td><td>%.1f</td>%s
<td>%.1f</td><td>%.1f</td>
<td>%.0f</td><td>%.0f</td>%s</tr>|}
           (escape ours.benchmark)
           (Mfb_bioassay.Seq_graph.n_ops g)
           (escape
              (Mfb_component.Allocation.to_string
                 ours.schedule.Mfb_schedule.Types.allocation))
           ours.execution_time ba.execution_time
           (imp_cell (pct ~ours:ours.execution_time ~ba:ba.execution_time))
           (100. *. ours.utilization)
           (100. *. ba.utilization)
           ours.channel_length_mm ba.channel_length_mm
           (imp_cell
              (pct ~ours:ours.channel_length_mm ~ba:ba.channel_length_mm))))
    pairs;
  Buffer.add_string buf "</table>\n"

let bar_chart buf ~title ~unit_label ~value pairs =
  Buffer.add_string buf (Printf.sprintf "<h2>%s</h2>\n<table>" (escape title));
  let max_value =
    List.fold_left
      (fun acc (ours, ba) -> Float.max acc (Float.max (value ours) (value ba)))
      1e-9 pairs
  in
  let width v = int_of_float (320. *. v /. max_value) in
  List.iter
    (fun ((ours : Result.t), ba) ->
      let vo = value ours and vb = value ba in
      Buffer.add_string buf
        (Printf.sprintf
           {|<tr><td class="bench">%s</td>
<td style="text-align:left"><span class="bar ours" style="width:%dpx"></span> %.1f %s (ours)<br/>
<span class="bar ba" style="width:%dpx"></span> %.1f %s (BA)</td></tr>|}
           (escape ours.benchmark) (width vo) vo unit_label (width vb) vb
           unit_label))
    pairs;
  Buffer.add_string buf "</table>\n"

(* Telemetry aggregates, one table spanning both flows; rendered only
   when some result carries metrics (i.e. a sink was installed). *)
let metrics_section buf pairs =
  let module Telemetry = Mfb_util.Telemetry in
  let results =
    List.concat_map (fun (ours, ba) -> [ ours; ba ]) pairs
    |> List.filter (fun (r : Result.t) -> r.metrics <> [])
  in
  if results <> [] then begin
    Buffer.add_string buf
      {|<h2>Telemetry — per-run heuristic and effort metrics</h2>
<table><tr><th>Benchmark</th><th>Flow</th><th>Category</th><th>Metric</th><th>Value</th></tr>|};
    List.iter
      (fun (r : Result.t) ->
        List.iter
          (fun (m : Telemetry.metric) ->
            Buffer.add_string buf
              (Printf.sprintf
                 {|<tr><td class="bench">%s</td><td>%s</td><td>%s</td><td>%s</td><td class="num">%s</td></tr>|}
                 (escape r.benchmark) (escape r.flow) (escape m.mcat)
                 (escape m.mname)
                 (escape (Telemetry.metric_value_string m.mdata))))
          r.metrics)
      results;
    Buffer.add_string buf "</table>\n"
  end

let layouts buf pairs =
  Buffer.add_string buf "<h2>Synthesised layouts (proposed flow)</h2>\n";
  Buffer.add_string buf {|<div class="svgrow">|};
  List.iter
    (fun ((ours : Result.t), _) ->
      Buffer.add_string buf
        (Printf.sprintf "<figure>%s<figcaption>%s</figcaption></figure>\n"
           (Layout_svg.render ~cell_px:10 ours)
           (escape ours.benchmark)))
    pairs;
  Buffer.add_string buf "</div>\n"

let render pairs =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (Printf.sprintf
       {|<!DOCTYPE html>
<html><head><meta charset="utf-8"/>
<title>DCSA physical synthesis — reproduction report</title>
<style>%s</style></head><body>
<h1>Physical Synthesis of Flow-Based Microfluidic Biochips with Distributed Channel Storage</h1>
<p>Reproduction of Chen et al., DATE 2019 — proposed flow vs the
construction-by-correction baseline, paper parameters
(&alpha;=0.9, &beta;=0.6, &gamma;=0.4, T<sub>0</sub>=10000, I<sub>max</sub>=150,
T<sub>min</sub>=1.0, t<sub>c</sub>=2.0, w<sub>e</sub>=10).</p>|}
       style);
  table1 buf pairs;
  bar_chart buf ~title:"Figure 8 — total cache time in flow channels"
    ~unit_label:"s"
    ~value:(fun (r : Result.t) -> r.channel_cache_time)
    pairs;
  bar_chart buf ~title:"Figure 9 — total wash time of flow channels"
    ~unit_label:"s"
    ~value:(fun (r : Result.t) -> r.channel_wash_time)
    pairs;
  metrics_section buf pairs;
  layouts buf pairs;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let to_file path pairs =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (render pairs))
