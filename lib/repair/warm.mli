(** Warm-start synthesis from a near-matching cached result — the
    compute side of the server's similarity cache.

    [synthesize ~config ~cached ~delta graph allocation] synthesizes the
    {e edited} request [(graph, allocation, config)] starting from
    [cached], a full result of a nearby request with the same flow and
    allocation:

    + the {b schedule} stage runs exactly as the cold flow would (it is
      placement-independent and cheap relative to annealing);
    + the {b placement} is taken verbatim from [cached.chip] — component
      arrays must match structurally, else the warm start aborts;
    + {b routing} replays every cached task whose transport the edit
      left byte-identical (window, endpoints, fluid), re-validating its
      occupancy against the rebuilt grid, and sends invalidated or new
      transports through the repair ladder ({!Plan.route_one}:
      in-window, bounded delay, settle fallback); extra postponements
      retime the schedule exactly as the cold flow does.

    {2 Proof obligations}

    A warm result is returned only when (a) the retimed schedule passes
    [Check.validate] with zero violations and every transport routed,
    and (b) the makespan is at most [(1 + delta)] times the pre-routing
    schedule makespan.  Since the schedule stage is deterministic and
    shared with the cold flow, and retiming only postpones, the cold
    result's makespan is bounded below by that same pre-routing
    makespan — so (b) certifies [warm <= cold x (1 + delta)] {e without
    running the cold flow}.  Any failure returns [Error reason]; the
    caller falls back to cold synthesis and counts the fallback.

    Deterministic: a pure function of its arguments (no RNG beyond the
    deterministic schedule stage, no clocks in any decision), so warm
    payloads are byte-identical across [--jobs] values and transports.
    A distance-0 replay (identical request, e.g. after a summary-cache
    eviction) reproduces the cached result's summary byte-for-byte. *)

type report = {
  reused : int;            (** cached tasks replayed verbatim *)
  rerouted : int;          (** ladder repairs within the window *)
  rerouted_delayed : int;  (** ladder repairs needing extra delay *)
  makespan_lb : float;
      (** pre-routing schedule makespan — the cold lower bound the
          quality gate compares against *)
  makespan : float;        (** warm result makespan *)
}

val synthesize :
  config:Mfb_core.Config.t ->
  cached:Mfb_core.Result.t ->
  delta:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  (Mfb_core.Result.t * report, string) result
(** Runs under a [warm] telemetry span; bumps [warm/reused],
    [warm/rerouted] and [warm/fallbacks] counters.
    @raise Invalid_argument when [delta < 0]. *)
