module Json = Mfb_util.Json
module Chip = Mfb_place.Chip

type target = Cell of (int * int) | Component of int

type event = { tick : int; target : target }

type plan = event list

let empty = []
let is_empty p = p = []

let targets p = List.map (fun e -> e.target) p

let upto p ~tick =
  List.filter_map
    (fun e -> if e.tick <= tick then Some e.target else None)
    p

let max_tick p = List.fold_left (fun acc e -> max acc e.tick) 0 p

let target_to_string = function
  | Cell (x, y) -> Printf.sprintf "cell(%d,%d)" x y
  | Component c -> Printf.sprintf "component(%d)" c

let target_to_json = function
  | Cell (x, y) ->
    Json.Obj
      [ ("kind", Json.String "cell"); ("x", Json.Int x); ("y", Json.Int y) ]
  | Component c ->
    Json.Obj [ ("kind", Json.String "component"); ("id", Json.Int c) ]

let ( let* ) = Stdlib.Result.bind

let int_field k v =
  match Json.member k v with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "defect entry: missing integer field %S" k)

let target_of_json v =
  match Json.member "kind" v with
  | Some (Json.String "cell") ->
    let* x = int_field "x" v in
    let* y = int_field "y" v in
    Ok (Cell (x, y))
  | Some (Json.String "component") ->
    let* id = int_field "id" v in
    if id < 0 then Error "defect entry: negative component id"
    else Ok (Component id)
  | Some (Json.String k) ->
    Error (Printf.sprintf "defect entry: unknown kind %S" k)
  | _ -> Error "defect entry: missing string field \"kind\""

let event_to_json e =
  match target_to_json e.target with
  | Json.Obj fields -> Json.Obj (("tick", Json.Int e.tick) :: fields)
  | other -> other

let event_of_json v =
  let* tick =
    match Json.member "tick" v with
    | Some (Json.Int t) ->
      if t < 0 then Error "defect entry: negative tick" else Ok t
    | None -> Ok 0
    | Some _ -> Error "defect entry: \"tick\" is not an integer"
  in
  let* target = target_of_json v in
  Ok { tick; target }

let to_json p = Json.Obj [ ("defects", Json.List (List.map event_to_json p)) ]

let of_json v =
  match Json.member "defects" v with
  | Some (Json.List entries) ->
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* ev = event_of_json e in
        Ok (ev :: acc))
      (Ok []) entries
    |> Stdlib.Result.map List.rev
  | Some _ -> Error "defect plan: \"defects\" is not an array"
  | None -> Error "defect plan: no \"defects\" array"

let to_file path p =
  Out_channel.with_open_text path (fun oc ->
      Json.to_channel ~indent:1 oc (to_json p))

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents ->
    let* v = Json.of_string contents in
    of_json v
  | exception Sys_error msg -> Error msg

let check (chip : Chip.t) p =
  List.fold_left
    (fun acc e ->
      let* () = acc in
      match e.target with
      | Cell (x, y) ->
        if x < 0 || y < 0 || x >= chip.width || y >= chip.height then
          Error
            (Printf.sprintf "defect cell (%d,%d) outside the %dx%d chip" x y
               chip.width chip.height)
        else Ok ()
      | Component c ->
        if c < 0 || c >= Array.length chip.components then
          Error
            (Printf.sprintf "defect component %d not allocated (%d on chip)"
               c
               (Array.length chip.components))
        else Ok ())
    (Ok ()) p

(* Generators.  One fresh [Random.State] per call, seeded from the
   caller's seed and a fixed tag, exactly like [Fault.generate] — the
   plan is a pure function of (seed, chip). *)

let rng_of seed = Random.State.make [| 0x64656663; seed |]

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let single_cell ~seed chip =
  match Mfb_route.Repair.cells chip with
  | [] -> []
  | cells ->
    let x, y = pick (rng_of seed) cells in
    [ { tick = 0; target = Cell (x, y) } ]

let clustered ~seed ~radius chip =
  if radius < 0 then invalid_arg "Defect.clustered: negative radius";
  match Mfb_route.Repair.cells chip with
  | [] -> []
  | cells ->
    let cx, cy = pick (rng_of seed) cells in
    List.filter_map
      (fun (x, y) ->
        if abs (x - cx) + abs (y - cy) <= radius then
          Some { tick = 0; target = Cell (x, y) }
        else None)
      cells

let progressive ~seed ~count chip =
  if count < 0 then invalid_arg "Defect.progressive: negative count";
  let cells = Array.of_list (Mfb_route.Repair.cells chip) in
  let n = Array.length cells in
  if n = 0 then []
  else begin
    (* Seeded Fisher-Yates, then the first [count] cells in shuffle
       order fail on consecutive ticks. *)
    let rng = rng_of seed in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = cells.(i) in
      cells.(i) <- cells.(j);
      cells.(j) <- t
    done;
    List.init (min count n) (fun tick ->
        let x, y = cells.(tick) in
        { tick; target = Cell (x, y) })
  end

let component_fault ~seed (chip : Chip.t) =
  match Array.length chip.components with
  | 0 -> []
  | n ->
    [ { tick = 0; target = Component (Random.State.int (rng_of seed) n) } ]
