(** Incremental warm-start re-synthesis around chip defects.

    Given a finished synthesis result and a set of {!Defect.target}s,
    [repair] re-plans {e incrementally}: it keeps the schedule, placement
    and every routed task whose path and binding the defects do not
    touch, rips up only the affected tasks (found through the indexed
    routing grid), and escalates through a deterministic ladder until the
    design works again:

    + {e reroute-in-window} — A* re-route on the defect-masked grid with
      the task's original postponement, so the schedule is untouched;
    + {e reroute-with-bounded-delay} — the router's postponement
      candidates above the original delay, then the shortest
      obstacle-avoiding path settled via [required_delay], accepted up
      to a fixed delay budget; extra delays are pushed back through the
      schedule exactly as the cold flow does ([Retime]);
    + {e re-bind} — a dead component's operations move to the
      best same-kind spare, ranked by the net-adjacency index
      ([Energy.incident_total]) and accepted only when the remapped
      schedule passes [Check.validate]; the affected transports then
      re-route towards the new ports;
    + {e full re-route fallback} — every task is ripped up and re-routed
      on the defect-masked grid.  (Deliberately {e not} a blind
      [Flow.run]: the cold flow is defect-unaware, so a fresh synthesis
      could land components or channels on the dead cells again.  A
      component fault with no legal spare is reported as failed rather
      than papered over.)

    Everything is deterministic: targets are normalised to a sorted set,
    candidates and tasks are visited in canonical order, and no step
    consults a clock or an RNG — repairing the same result with the same
    defects yields byte-identical reports on every run, every [--jobs]
    value and every transport. *)

type rung =
  | Rerouted          (** all repairs fit the original windows *)
  | Rerouted_delayed  (** some repair needed a bounded extra delay *)
  | Rebound           (** some operation moved to a spare component *)
  | Resynthesized     (** the full re-route fallback ran *)

val rung_name : rung -> string
(** ["reroute"], ["reroute-delayed"], ["rebind"], ["resynthesize"]. *)

type report = {
  targets : Defect.target list;  (** normalised: sorted, deduplicated,
                                     footprint cells lifted to their
                                     owning component *)
  ripped_up : int;       (** tasks whose route was discarded *)
  rerouted : int;        (** repairs that kept the original window *)
  rerouted_delayed : int;(** repairs that needed extra delay *)
  rebound : int;         (** operations moved to a spare component *)
  fallbacks : int;       (** 1 when the full re-route fallback ran *)
  failed : int;          (** tasks (or dead components) left unrepaired *)
  rung : rung option;    (** highest ladder rung exercised; [None] when
                             no task was affected *)
  survived : bool;       (** every affected task repaired *)
  makespan_before : float;
  makespan_after : float;
}

type outcome = {
  report : report;
  schedule : Mfb_schedule.Types.t;  (** retimed / re-bound schedule *)
  chip : Mfb_place.Chip.t;          (** unchanged placement *)
  routing : Mfb_route.Routed.result;
      (** repaired routing; [tasks] are in {e commit order} (healthy
          tasks first, then repairs — or original order after the
          fallback), which is the order {!verify} replays *)
}

(** {2 Re-routing primitives}

    The two lower rungs of the ladder, exposed so other warm-start
    engines (notably {!Warm}) can re-route individual invalidated tasks
    on a grid they manage themselves.  Both commit successful routes
    onto the given grid. *)

type routed_repair =
  | In_window of Mfb_route.Routed.task  (** kept the original window *)
  | Delayed of Mfb_route.Routed.task    (** needed a bounded extra delay *)
  | Unroutable

val route_one :
  Mfb_route.Rgrid.t ->
  tc:float ->
  is_defect:(int * int -> bool) ->
  Mfb_route.Routed.task ->
  Mfb_schedule.Types.transport ->
  routed_repair
(** Re-route one ripped-up task towards [transport] on the (possibly
    defect-masked) grid: first within the task's original postponement,
    then up the bounded delay ladder, finally the shortest
    obstacle-avoiding path settled conflict-free up to the delay
    budget.  Deterministic; commits on success. *)

val route_all :
  Mfb_route.Rgrid.t ->
  tc:float ->
  is_defect:(int * int -> bool) ->
  (Mfb_route.Routed.task * Mfb_schedule.Types.transport) list ->
  (Mfb_route.Routed.task * float) list * int * int * int
(** [route_all grid ~tc ~is_defect pairs] routes each (task, remapped
    transport) pair in order; returns the committed tasks paired with
    their {e original} delays in reverse commit order, plus the
    (in-window, delayed, failed) counters. *)

val repair :
  config:Mfb_core.Config.t ->
  Mfb_core.Result.t ->
  defects:Defect.target list ->
  outcome
(** Runs under a [repair] telemetry span and bumps the
    [repair/ripped_up], [repair/rerouted], [repair/rebound] and
    [repair/fallbacks] counters. *)

val verify :
  config:Mfb_core.Config.t ->
  defects:Defect.target list ->
  outcome ->
  string list
(** Legality audit of a repaired outcome; empty means clean.  Checks the
    schedule ([Check.validate]), defect avoidance (no path crosses a
    defective cell, no binding or transport touches a dead component)
    and the routing's conflict discipline (replaying the commit order on
    a fresh grid, every occupation must be [conflict_free] — the wash
    separation included — before it is added).  A [survived] repair must
    verify clean; a failed one generally will not, since unrepairable
    transports are dropped from the routing while the schedule keeps
    them. *)

val report_to_json : report -> Mfb_util.Json.t
(** Stable field order; the byte-compared payload of the serve
    protocol's repair reply and the CLI's [--json] output. *)
