(* Warm-start synthesis from a near-matching cached result.

   The cold flow is schedule -> place -> route, and only placement is
   both expensive and placement-{e in}dependent of the edit: the
   schedule stage is a pure function of (graph, allocation, tc, backend)
   and routing is cheap.  So a warm start re-runs the schedule stage
   exactly as the cold flow would, keeps the cached chip verbatim, and
   re-routes on it — replaying every cached task whose transport the
   edit left intact and sending the invalidated rest through the repair
   ladder ({!Plan.route_one}).

   The quality gate is sound without ever running the cold flow: the
   warm schedule equals the cold pre-routing schedule (same
   deterministic stage), and retiming only ever postpones, so the cold
   result's makespan is >= the pre-routing makespan.  Warm makespan
   <= pre-routing x (1 + delta) therefore implies warm <= cold x
   (1 + delta). *)

module Types = Mfb_schedule.Types
module Check = Mfb_schedule.Check
module Retime = Mfb_schedule.Retime
module Portfolio = Mfb_schedule.Portfolio
module Chip = Mfb_place.Chip
module Routed = Mfb_route.Routed
module Rgrid = Mfb_route.Rgrid
module Telemetry = Mfb_util.Telemetry

type report = {
  reused : int;            (* cached tasks replayed verbatim *)
  rerouted : int;          (* ladder repairs within the window *)
  rerouted_delayed : int;  (* ladder repairs that needed extra delay *)
  makespan_lb : float;     (* pre-routing makespan = cold lower bound *)
  makespan : float;        (* warm result makespan *)
}

let no_defect (_ : int * int) = false

(* The schedule stage, verbatim from the cold flow (always [jobs = 1]:
   warm starts already run inside a server pool task, and pools never
   nest). *)
let schedule_stage ~(config : Mfb_core.Config.t) graph allocation =
  match config.backend with
  | Portfolio.Heuristic ->
    (Mfb_schedule.Dcsa_scheduler.schedule ~tc:config.tc graph allocation, None)
  | Portfolio.Exact ->
    let sched, decision =
      Portfolio.exact ~fuel:config.exact_fuel ~tc:config.tc graph allocation
    in
    (sched, Some decision)
  | Portfolio.Portfolio ->
    let sched, decision =
      Portfolio.race ~fuel:config.exact_fuel ~jobs:1 ~tc:config.tc graph
        allocation
    in
    (sched, Some decision)

exception Cold of string

let synthesize ~(config : Mfb_core.Config.t)
    ~(cached : Mfb_core.Result.t) ~delta graph allocation =
  if delta < 0. then invalid_arg "Warm.synthesize: delta < 0";
  let tc = config.tc and we = config.we in
  let started_cpu = Sys.time () in
  try
    Telemetry.span ~cat:"warm" "warm" @@ fun () ->
    let sched, decision = schedule_stage ~config graph allocation in
    (* The cached placement can only seed this schedule when both talk
       about the same component array (ids, kinds, dimensions). *)
    if sched.Types.components <> cached.chip.Chip.components then
      raise (Cold "component set differs from the cached placement");
    if
      List.exists
        (fun (t : Routed.task) -> t.kind <> Routed.Transport)
        cached.routing.tasks
    then raise (Cold "cached result has io-routed tasks");
    let chip = Chip.copy cached.chip in
    let grid = Rgrid.create ~we chip in
    (* Cached tasks are consumed at most once each, matched by the full
       transport record — window, endpoints and fluid included — so a
       replay is only attempted when the edit left the transport
       byte-identical. *)
    let remaining = ref cached.routing.tasks in
    let take tr =
      let rec go acc = function
        | [] -> None
        | (t : Routed.task) :: rest ->
          if t.transport = tr then begin
            remaining := List.rev_append acc rest;
            Some t
          end
          else go (t :: acc) rest
      in
      go [] !remaining
    in
    let replayable (t : Routed.task) =
      List.for_all
        (fun (cell, iv) ->
          Rgrid.conflict_free grid cell iv t.transport.Types.fluid)
        (Routed.occupancy ~tc t)
    in
    let fresh_task tr =
      { Routed.transport = tr; kind = Routed.Transport; path = [ (0, 0) ];
        delay = 0.; pre_wash = 0.; washed_cells = 0 }
    in
    let reroute tr (inw, dly) =
      match Plan.route_one grid ~tc ~is_defect:no_defect (fresh_task tr) tr with
      | Plan.In_window t -> (t, (inw + 1, dly))
      | Plan.Delayed t -> (t, (inw, dly + 1))
      | Plan.Unroutable ->
        raise
          (Cold
             (Printf.sprintf "transport (%d,%d) unroutable on cached chip"
                (fst tr.Types.edge) (snd tr.Types.edge)))
    in
    (* Commit in the cold router's order (removal, then departure) so a
       distance-0 replay reproduces the cached grid evolution — and
       therefore the cached wash measures and summary — byte for byte. *)
    let ordered =
      List.sort
        (fun (a : Types.transport) b ->
          let c = Float.compare a.removal b.removal in
          if c <> 0 then c else Float.compare a.depart b.depart)
        sched.Types.transports
    in
    let rev_tasks, reused, (rerouted, rerouted_delayed) =
      List.fold_left
        (fun (acc, reused, ladder) (tr : Types.transport) ->
          match take tr with
          | Some t0 ->
            let cand = { t0 with pre_wash = 0.; washed_cells = 0 } in
            if replayable cand then begin
              let pre_wash, washed_cells = Routed.measure_wash grid ~tc cand in
              let t = { cand with pre_wash; washed_cells } in
              Routed.commit grid ~tc t;
              (t :: acc, reused + 1, ladder)
            end
            else
              let t, ladder = reroute tr ladder in
              (t :: acc, reused, ladder)
          | None ->
            let t, ladder = reroute tr ladder in
            (t :: acc, reused, ladder))
        ([], 0, (0, 0)) ordered
    in
    let routing = Routed.finalize grid rev_tasks ~unresolved:0 in
    (* Postponements feed back into the schedule exactly as the cold
       flow does. *)
    let delays =
      List.filter_map
        (fun (task : Routed.task) ->
          if task.delay > 0. then Some (task.transport.Types.edge, task.delay)
          else None)
        routing.tasks
    in
    let final_sched =
      if delays = [] then sched
      else Retime.with_transport_delays sched ~delays
    in
    (* Proof obligations: the warm result must be legal, and within the
       quality delta of what the cold flow could have produced. *)
    (match Check.validate ~tc final_sched with
     | [] -> ()
     | v :: _ ->
       raise (Cold ("warm schedule fails validation: " ^ v.Check.message)));
    let makespan_lb = sched.Types.makespan in
    if final_sched.Types.makespan > makespan_lb *. (1. +. delta) then
      raise
        (Cold
           (Printf.sprintf
              "quality delta exceeded: warm makespan %.3f > %.3f x %.3f"
              final_sched.Types.makespan makespan_lb (1. +. delta)));
    let result =
      Mfb_core.Result.of_stages
        ~benchmark:(Mfb_bioassay.Seq_graph.name graph)
        ~flow:cached.Mfb_core.Result.flow
        ~cpu_time:(Sys.time () -. started_cpu)
        ?decision ~schedule:final_sched ~chip ~routing ()
    in
    let report =
      {
        reused;
        rerouted;
        rerouted_delayed;
        makespan_lb;
        makespan = final_sched.Types.makespan;
      }
    in
    if reused > 0 then Telemetry.incr ~cat:"warm" ~by:reused "reused";
    if rerouted + rerouted_delayed > 0 then
      Telemetry.incr ~cat:"warm" ~by:(rerouted + rerouted_delayed) "rerouted";
    Ok (result, report)
  with Cold reason ->
    Telemetry.incr ~cat:"warm" "fallbacks";
    Error reason
