module Types = Mfb_schedule.Types
module Check = Mfb_schedule.Check
module Retime = Mfb_schedule.Retime
module Chip = Mfb_place.Chip
module Net = Mfb_place.Net
module Energy = Mfb_place.Energy
module Routed = Mfb_route.Routed
module Rgrid = Mfb_route.Rgrid
module Astar = Mfb_route.Astar
module Io_router = Mfb_route.Io_router
module Telemetry = Mfb_util.Telemetry
module Json = Mfb_util.Json

type rung = Rerouted | Rerouted_delayed | Rebound | Resynthesized

let rung_name = function
  | Rerouted -> "reroute"
  | Rerouted_delayed -> "reroute-delayed"
  | Rebound -> "rebind"
  | Resynthesized -> "resynthesize"

type report = {
  targets : Defect.target list;
  ripped_up : int;
  rerouted : int;
  rerouted_delayed : int;
  rebound : int;
  fallbacks : int;
  failed : int;
  rung : rung option;
  survived : bool;
  makespan_before : float;
  makespan_after : float;
}

type outcome = {
  report : report;
  schedule : Types.t;
  chip : Chip.t;
  routing : Routed.result;
}

(* Postponement ladder shared with [Router.delay_candidates] (the 0 rung
   is the in-window attempt); the settle fallback is accepted up to this
   budget so a "repair" cannot silently degenerate into an arbitrarily
   late schedule. *)
let delay_candidates = [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 6.0; 8.0 ]
let delay_budget = 16.

(* Split raw targets into channel-cell defects and dead components,
   lifting footprint cells to their owning component (a defect under a
   component is a component fault).  Both lists sorted and deduplicated
   so the rest of the repair is order-independent of the input. *)
let normalize chip raw =
  let cells, comps =
    List.fold_left
      (fun (cells, comps) t ->
        match t with
        | Defect.Cell (x, y) ->
          (match Mfb_route.Repair.owner chip (x, y) with
           | Some c -> (cells, c :: comps)
           | None -> ((x, y) :: cells, comps))
        | Defect.Component c -> (cells, c :: comps))
      ([], []) raw
  in
  (List.sort_uniq compare cells, List.sort_uniq compare comps)

let normalized_targets (cells, comps) =
  List.map (fun (x, y) -> Defect.Cell (x, y)) cells
  @ List.map (fun c -> Defect.Component c) comps

(* --- Re-binding (rung 3) --- *)

let remap_component mapping c =
  match List.assoc_opt c mapping with Some j -> j | None -> c

let remap_schedule (sched : Types.t) mapping =
  let rc = remap_component mapping in
  {
    sched with
    times =
      Array.map
        (fun (t : Types.op_times) -> { t with component = rc t.component })
        sched.times;
    transports =
      List.map
        (fun (tr : Types.transport) ->
          { tr with src = rc tr.src; dst = rc tr.dst })
        sched.transports;
    washes =
      List.map
        (fun (w : Types.wash_event) -> { w with component = rc w.component })
        sched.washes;
  }

(* Candidate spares for a dead component, cheapest first: same kind, not
   itself dead, ranked by the net-adjacency partial sum the rebind would
   leave ([incident_total] over the nets incident to the spare after the
   remap) with the component id as the deterministic tie-break. *)
let rebind_candidates ~(config : Mfb_core.Config.t) chip (sched : Types.t)
    ~dead d =
  let n = Array.length sched.components in
  let kind = sched.components.(d).Mfb_component.Component.kind in
  let score j =
    let sched' = remap_schedule sched [ (d, j) ] in
    let weighted =
      Energy.weigh ~beta:config.beta ~gamma:config.gamma
        (Net.of_schedule sched')
    in
    let idx = Energy.index ~n_components:n weighted in
    fst (Energy.incident_total chip idx [ j ])
  in
  let rec collect j acc =
    if j < 0 then acc
    else if
      j <> d
      && (not (List.mem j dead))
      && sched.components.(j).Mfb_component.Component.kind = kind
    then collect (j - 1) ((score j, j) :: acc)
    else collect (j - 1) acc
  in
  List.map snd (List.sort compare (collect (n - 1) []))

let component_used (sched : Types.t) d =
  Array.exists (fun (t : Types.op_times) -> t.component = d) sched.times
  || List.exists
       (fun (tr : Types.transport) -> tr.src = d || tr.dst = d)
       sched.transports

(* Move every operation off each dead component onto the best legal
   spare.  Dead components are processed in ascending id order against
   the schedule as remapped so far, so the result is deterministic.
   Returns the remapped schedule, the (dead -> spare) mapping, the
   number of rebound operations, and the dead components that had work
   but no legal spare. *)
let rebind ~config ~tc chip sched ~dead =
  List.fold_left
    (fun (sched, mapping, bound, dead_failed) d ->
      if not (component_used sched d) then (sched, mapping, bound, dead_failed)
      else begin
        let ops =
          Array.fold_left
            (fun acc (t : Types.op_times) ->
              if t.component = d then acc + 1 else acc)
            0 sched.times
        in
        let chosen =
          List.find_map
            (fun j ->
              let sched' = remap_schedule sched [ (d, j) ] in
              if Check.validate ~tc sched' = [] then Some (j, sched')
              else None)
            (rebind_candidates ~config chip sched ~dead d)
        in
        match chosen with
        | Some (j, sched') ->
          (sched', (d, j) :: mapping, bound + ops, dead_failed)
        | None -> (sched, mapping, bound, d :: dead_failed)
      end)
    (sched, [], 0, []) dead

(* --- Re-routing (rungs 1, 2 and the fallback) --- *)

type routed_repair =
  | In_window of Routed.task
  | Delayed of Routed.task
  | Unroutable

let endpoints grid (task : Routed.task) (tr : Types.transport) =
  match task.kind with
  | Routed.Transport -> (Rgrid.ports grid tr.src, Rgrid.ports grid tr.dst)
  | Routed.Dispense -> (Io_router.border_cells grid, Rgrid.ports grid tr.dst)
  | Routed.Waste -> (Rgrid.ports grid tr.src, Io_router.border_cells grid)

(* Re-route one ripped-up task on the defect-masked grid: first in its
   original window (rung 1), then with the postponement ladder and the
   settle fallback (rung 2).  Commits on success. *)
let route_one grid ~tc ~is_defect (task : Routed.task) (tr : Types.transport)
    =
  let srcs, dsts = endpoints grid task tr in
  let field_cache = Hashtbl.create 4 in
  let attempt delay =
    let usable xy =
      (not (is_defect xy))
      && Routed.usable grid ~tc tr ~delay ~src_ports:srcs xy
    in
    Astar.search_multi ~field_cache grid ~srcs ~dsts ~usable
      ~use_weights:true
  in
  let commit path delay =
    let t =
      { task with transport = tr; path; delay; pre_wash = 0.;
        washed_cells = 0 }
    in
    let pre_wash, washed_cells = Routed.measure_wash grid ~tc t in
    let t = { t with pre_wash; washed_cells } in
    Routed.commit grid ~tc t;
    t
  in
  match attempt task.delay with
  | Some path -> In_window (commit path task.delay)
  | None ->
    let later =
      List.find_map
        (fun d ->
          if d > task.delay then
            match attempt d with Some p -> Some (p, d) | None -> None
          else None)
        delay_candidates
    in
    (match later with
     | Some (path, d) -> Delayed (commit path d)
     | None ->
       (* Spatially avoid the defects, then postpone until the whole
          path settles conflict-free — the router's own fallback, with
          the defect mask added and the delay budget enforced. *)
       let usable xy = (not (Rgrid.blocked grid xy)) && not (is_defect xy) in
       (match
          Astar.search_multi ~field_cache grid ~srcs ~dsts ~usable
            ~use_weights:false
        with
        | None -> Unroutable
        | Some path ->
          (match Routed.settle_delay grid ~tc tr ~src_ports:srcs path with
           | Some d when d <= delay_budget ->
             Delayed (commit path (Float.max d task.delay))
           | Some _ | None -> Unroutable)))

(* Route [pairs] (original task, remapped transport) in order on [grid];
   returns committed tasks in reverse commit order plus counters. *)
let route_all grid ~tc ~is_defect pairs =
  List.fold_left
    (fun (acc, inw, dly, failed) (task, tr) ->
      match route_one grid ~tc ~is_defect task tr with
      | In_window t -> ((t, task.Routed.delay) :: acc, inw + 1, dly, failed)
      | Delayed t -> ((t, task.Routed.delay) :: acc, inw, dly + 1, failed)
      | Unroutable -> (acc, inw, dly, failed + 1))
    ([], 0, 0, 0) pairs

(* Extra postponement the repair added to a task beyond what the input
   schedule already absorbed. *)
let extra_delays repaired =
  List.fold_left
    (fun (delays, op_delays) ((t : Routed.task), old_delay) ->
      let extra = Float.max 0. (t.delay -. old_delay) in
      if extra <= 0. then (delays, op_delays)
      else
        match t.kind with
        | Routed.Transport ->
          ((t.transport.Types.edge, extra) :: delays, op_delays)
        | Routed.Dispense ->
          (delays, (fst t.transport.Types.edge, extra) :: op_delays)
        | Routed.Waste -> (delays, op_delays))
    ([], []) repaired

let repair ~(config : Mfb_core.Config.t) (result : Mfb_core.Result.t)
    ~defects =
  Telemetry.span ~cat:"repair" "repair" @@ fun () ->
  let tc = config.tc and we = config.we in
  let chip = result.chip in
  let sched0 = result.schedule and routing0 = result.routing in
  let ((defect_cells, dead) as normalized) = normalize chip defects in
  let is_defect xy = List.mem xy defect_cells in
  (* Rung 3 first: dead components force re-binding before any routing,
     because the spare's ports decide where the affected tasks go. *)
  let sched, mapping, rebound, dead_failed =
    if dead = [] then (sched0, [], 0, [])
    else rebind ~config ~tc chip sched0 ~dead
  in
  let remap (tr : Types.transport) =
    { tr with
      src = remap_component mapping tr.src;
      dst = remap_component mapping tr.dst }
  in
  let touches_dead (t : Routed.task) =
    List.mem t.transport.Types.src dead
    || List.mem t.transport.Types.dst dead
  in
  let unroutable_dead (t : Routed.task) =
    List.mem t.transport.Types.src dead_failed
    || List.mem t.transport.Types.dst dead_failed
  in
  let affected_by t = touches_dead t || List.exists is_defect t.Routed.path in
  let healthy, affected =
    List.partition (fun t -> not (affected_by t)) routing0.tasks
  in
  (* Tasks pinned to a dead component that found no spare cannot be
     routed anywhere; they are dropped and reported as failures. *)
  let doomed, rippable = List.partition unroutable_dead affected in
  let pairs = List.map (fun t -> (t, remap t.Routed.transport)) rippable in
  (* Incremental attempt: healthy occupations stay, only the ripped-up
     tasks re-route around them. *)
  let grid = Rgrid.create ~we chip in
  List.iter (fun t -> Routed.commit grid ~tc t) healthy;
  let rev_repaired, in_window, delayed, route_failed =
    route_all grid ~tc ~is_defect pairs
  in
  let ripped_up, grid, rev_repaired, in_window, delayed, route_failed,
      fallbacks, commit_order_healthy =
    if route_failed = 0 then
      (List.length rippable, grid, rev_repaired, in_window, delayed, 0, 0,
       healthy)
    else begin
      (* Fallback rung: rip up everything and re-route the whole design
         on the defect-masked grid, in the original commit order. *)
      let grid = Rgrid.create ~we chip in
      let pairs =
        List.filter_map
          (fun (t : Routed.task) ->
            if unroutable_dead t then None
            else Some (t, remap t.transport))
          routing0.tasks
      in
      let rev_repaired, inw, dly, failed =
        route_all grid ~tc ~is_defect pairs
      in
      (List.length pairs, grid, rev_repaired, inw, dly, failed, 1, [])
    end
  in
  let routing =
    Routed.finalize grid
      (List.map fst rev_repaired
       @ List.rev_map (fun t -> t) commit_order_healthy)
      ~unresolved:(route_failed + List.length doomed)
  in
  (* Push any extra postponement back through the schedule, exactly as
     the cold flow feeds routing delays into [Retime]. *)
  let delays, op_delays = extra_delays rev_repaired in
  let schedule =
    if delays = [] && op_delays = [] then sched
    else Retime.with_transport_delays ~op_delays sched ~delays
  in
  let failed = route_failed + List.length doomed + List.length dead_failed in
  let rung =
    if fallbacks > 0 then Some Resynthesized
    else if rebound > 0 || dead_failed <> [] then Some Rebound
    else if delayed > 0 then Some Rerouted_delayed
    else if in_window > 0 then Some Rerouted
    else None
  in
  let report =
    {
      targets = normalized_targets normalized;
      ripped_up;
      rerouted = in_window;
      rerouted_delayed = delayed;
      rebound;
      fallbacks;
      failed;
      rung;
      survived = failed = 0;
      makespan_before = sched0.Types.makespan;
      makespan_after = schedule.Types.makespan;
    }
  in
  if report.ripped_up > 0 then
    Telemetry.incr ~cat:"repair" ~by:report.ripped_up "ripped_up";
  if report.rerouted + report.rerouted_delayed > 0 then
    Telemetry.incr ~cat:"repair"
      ~by:(report.rerouted + report.rerouted_delayed)
      "rerouted";
  if report.rebound > 0 then
    Telemetry.incr ~cat:"repair" ~by:report.rebound "rebound";
  if report.fallbacks > 0 then
    Telemetry.incr ~cat:"repair" ~by:report.fallbacks "fallbacks";
  { report; schedule; chip; routing }

let verify ~(config : Mfb_core.Config.t) ~defects (o : outcome) =
  let tc = config.tc and we = config.we in
  let defect_cells, dead = normalize o.chip defects in
  let violations = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun (v : Check.violation) -> flag "schedule:%s: %s" v.code v.message)
    (Check.validate ~tc o.schedule);
  (* Dead components must have no remaining work in the schedule (when
     their rebind succeeded, i.e. no transport still names them). *)
  Array.iteri
    (fun op (t : Types.op_times) ->
      if List.mem t.component dead then
        flag "binding: op %d still bound to dead component %d" op t.component)
    o.schedule.times;
  (* Routing: no path over a defect, and the commit-order replay must be
     conflict-free (overlap and wash separation) on a fresh grid. *)
  let grid = Rgrid.create ~we o.chip in
  List.iter
    (fun (task : Routed.task) ->
      let tr = task.transport in
      if List.mem tr.Types.src dead || List.mem tr.Types.dst dead then
        flag "routing: task %s still attached to a dead component"
          (Format.asprintf "%a" Types.pp_transport tr);
      List.iter
        (fun cell ->
          if List.mem cell defect_cells then
            flag "routing: path of edge (%d,%d) crosses defect cell (%d,%d)"
              (fst tr.Types.edge) (snd tr.Types.edge) (fst cell) (snd cell))
        task.path;
      List.iter
        (fun (cell, iv) ->
          if not (Rgrid.conflict_free grid cell iv tr.Types.fluid) then
            flag
              "routing: occupation conflict at (%d,%d) for edge (%d,%d)"
              (fst cell) (snd cell) (fst tr.Types.edge) (snd tr.Types.edge))
        (Routed.occupancy ~tc task);
      Routed.commit grid ~tc task)
    o.routing.tasks;
  List.rev !violations

let report_to_json (r : report) =
  Json.Obj
    [
      ("targets", Json.List (List.map Defect.target_to_json r.targets));
      ("ripped_up", Json.Int r.ripped_up);
      ("rerouted", Json.Int r.rerouted);
      ("rerouted_delayed", Json.Int r.rerouted_delayed);
      ("rebound", Json.Int r.rebound);
      ("fallbacks", Json.Int r.fallbacks);
      ("failed", Json.Int r.failed);
      ( "rung",
        match r.rung with
        | None -> Json.String "none"
        | Some rg -> Json.String (rung_name rg) );
      ("survived", Json.Bool r.survived);
      ("makespan_before", Json.Float r.makespan_before);
      ("makespan_after", Json.Float r.makespan_after);
    ]
