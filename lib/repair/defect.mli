(** Seeded deterministic defect models over channel cells and component
    sites.

    A {e defect plan} is the chip-fault analogue of the cluster tier's
    process-fault [Fault.plan]: a list of timed events, serialisable to
    the same style of JSON file, shared verbatim by the CLI, the bench
    sweeps and the cram tests.  Ticks are virtual — the serving tier's
    request clock — so progressive degradation scenarios replay
    identically everywhere.

    All generators draw from the canonical row-major channel-cell
    enumeration ([Mfb_route.Repair.cells]) with a [Random.State] seeded
    from the caller's seed only, so a (seed, chip) pair names one plan
    forever. *)

type target =
  | Cell of (int * int)  (** a defective channel cell *)
  | Component of int     (** a dead component site (by component id) *)

type event = { tick : int; target : target }

type plan = event list

val empty : plan
val is_empty : plan -> bool

val targets : plan -> target list
(** All targets in event order (ticks ignored). *)

val upto : plan -> tick:int -> target list
(** Targets of events with [tick <= tick] — the defect set visible at a
    virtual instant, for progressive scenarios. *)

val max_tick : plan -> int
(** Largest event tick; [0] for the empty plan. *)

val target_to_string : target -> string
(** ["cell(3,4)"] / ["component(2)"] — the rendering used by reports. *)

val target_to_json : target -> Mfb_util.Json.t

val target_of_json : Mfb_util.Json.t -> (target, string) result

val check : Mfb_place.Chip.t -> plan -> (unit, string) result
(** Every cell in bounds, every component id allocated. *)

(** {2 JSON plan files}

    [{"defects":[{"tick":0,"kind":"cell","x":3,"y":4},
                 {"tick":1,"kind":"component","id":2}]}]

    [tick] defaults to [0] when absent. *)

val to_json : plan -> Mfb_util.Json.t
val of_json : Mfb_util.Json.t -> (plan, string) result

val to_file : string -> plan -> unit
val of_file : string -> (plan, string) result

(** {2 Seeded generators} *)

val single_cell : seed:int -> Mfb_place.Chip.t -> plan
(** One defective channel cell at tick 0. *)

val clustered : seed:int -> radius:int -> Mfb_place.Chip.t -> plan
(** Every channel cell within Manhattan [radius] of a seeded centre cell
    (debris field / delamination region), all at tick 0. *)

val progressive : seed:int -> count:int -> Mfb_place.Chip.t -> plan
(** [count] distinct channel cells failing one per tick ([0, 1, …]) — a
    chip degrading in the field.  Truncated to the number of channel
    cells. *)

val component_fault : seed:int -> Mfb_place.Chip.t -> plan
(** One dead component site at tick 0. *)
