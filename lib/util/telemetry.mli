(** Structured tracing and metrics for the synthesis flow.

    The design constraint inherited from the parallel engine is that
    telemetry must never perturb the synthesis result: instrumentation
    only reads algorithm state, every collector is owned by exactly one
    domain, and collectors merge in a deterministic order (their track
    paths), so metrics folded into [Result.to_json] are bit-for-bit
    identical for every [--jobs] value.

    The subsystem is inert until a {!sink} is {!install}ed; with no sink
    every probe is a single atomic load and a branch. *)

(** {1 Events and aggregates} *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Argument payload attached to spans and instants. *)

type phase =
  | Complete of float  (** closed span; payload is the duration in µs *)
  | Instant            (** point event *)
  | Sample of float    (** one point of a counter time-series *)

type event = {
  track : int list;  (** collector path — see {!section-determinism} *)
  seq : int;         (** per-collector emission index *)
  ts_us : float;     (** µs since the sink's epoch *)
  cat : string;
  name : string;
  ph : phase;
  depth : int;       (** span-stack depth at emission *)
  args : (string * value) list;
}

type summary = { count : int; sum : float; min : float; max : float }
(** Histogram digest; [min]/[max] are [nan] when [count = 0]. *)

type data = Counter of int | Gauge of float | Histogram of summary

type metric = { mcat : string; mname : string; mdata : data }

(** {1 Sinks and installation} *)

type sink
(** An in-memory event store shared by every collector of one telemetry
    session.  Collector registration is mutex-protected; event emission
    itself is unsynchronised because each collector is domain-local. *)

val make_sink : ?clock:(unit -> float) -> unit -> sink
(** [make_sink ()] is an empty sink whose epoch is [clock ()] (default:
    [Unix.gettimeofday]).  Inject a fake [clock] for deterministic
    timestamps in tests. *)

val install : sink -> unit
(** Make [sink] the process-wide telemetry target and give the calling
    domain a root collector (track path [[0]]).  Call once, before any
    worker domain is spawned. *)

val uninstall : unit -> unit
(** Drop the installed sink; probes become no-ops again. *)

val active : unit -> bool
(** Whether a sink is installed. *)

val installed_sink : unit -> sink option

val set_span_hook :
  ([ `Open | `Close ] -> depth:int -> string -> unit) option -> unit
(** Observer invoked synchronously at every span open/close on any
    domain (the CLI wires this to [Logs.debug] under [-v]).  The hook
    must be domain-safe. *)

(** {1 Probes}

    All probes are no-ops when no sink is installed or the current
    domain has no collector. *)

val span : ?cat:string -> ?args:(string * value) list -> string ->
  (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a named span; the span closes (and is
    emitted) even if [f] raises.  Spans nest: [depth] records the stack
    depth at open. *)

val instant : ?cat:string -> ?args:(string * value) list -> string -> unit

val incr : ?cat:string -> ?by:int -> string -> unit
(** Bump an aggregate counter.  Totals merge by summation, so they are
    independent of domain interleaving. *)

val sample : ?cat:string -> string -> float -> unit
(** Emit one point of a counter time-series (Chrome ["C"] event).
    Trace-only; does not feed the metric aggregates. *)

val gauge : ?cat:string -> string -> float -> unit
(** Record a last-value-wins aggregate.  The merged winner is the write
    with the greatest (track path, seq), i.e. the program-order last
    write in deterministic task order. *)

val observe : ?cat:string -> string -> float -> unit
(** Feed one observation into a histogram aggregate. *)

(** {1:determinism Task and worker contexts}

    [Pool] threads telemetry through its fan-out with these: the parent
    collector is captured {e at dispatch}, each task [i] then runs under
    a child collector with track path [parent @ [i]] regardless of which
    domain executes it.  Merging sorts by path, so aggregate folding —
    float summation included — associates identically for every [jobs]
    value. *)

type context
(** A dispatch-time capture of the current collector (or of its
    absence). *)

val task_context : unit -> context
(** [task_context ()] captures the calling domain's collector; returns
    an inert context when telemetry is off (in which case the wrappers
    below are identity). *)

val is_live : context -> bool

val in_task : context -> label:string -> int -> (unit -> 'a) -> 'a
(** [in_task ctx ~label i f] runs [f] under a fresh child collector for
    task [i] of [ctx], wrapped in a span [label] (cat ["task"]) tagged
    with the executing domain id. *)

val in_worker : context -> index:int -> (unit -> 'a) -> 'a
(** [in_worker ctx ~index f] runs a pool worker loop [f] under a
    per-worker collector (negative track branch [-1 - index]) inside a
    busy-span ["worker"] (cat ["pool"]). *)

val with_scope : string -> (unit -> 'a) -> 'a * metric list
(** [with_scope name f] runs [f] under a fresh child collector and
    returns the metrics recorded by it and every descendant collector
    created during [f] (e.g. pool tasks), merged in track order and
    sorted by (cat, name).  [(f (), [])] when telemetry is off. *)

(** {1 Request subtracks}

    The serving tier gives every accepted request its own child
    collector — a {e subtrack} — so lifecycle events of concurrent
    requests never interleave on one track and each request renders as
    one row of the trace (one merged distributed trace per request). *)

type subtrack
(** A per-request child collector that outlives the call that created
    it; emissions are routed onto it with {!on_subtrack}. *)

val subtrack : string -> subtrack option
(** [subtrack name] creates a child collector of the calling domain's
    collector (branch-disjoint from pool task indices); [None] when
    telemetry is off. *)

val on_subtrack : subtrack option -> (unit -> 'a) -> 'a
(** [on_subtrack st f] runs [f] with the subtrack as the current
    collector, so {!span}/{!instant}/{!complete}/{!emit_node} land on
    the request's track; identity when [st] is [None]. *)

val complete :
  ?cat:string -> ?args:(string * value) list -> dur_us:float -> string ->
  unit
(** Emit a closed span of the given duration at the current time
    without running code under it — used to graft virtual-duration
    phases (queue wait, batch compute) onto a request subtrack. *)

(** {1 Span trees}

    A [node] is one span (or instant, with [n_dur_us = 0]) plus its
    children — the shippable form of a trace.  Workers export their
    per-request sink as a node forest, the reply carries it as JSON,
    and the supervisor re-emits it under the request's subtrack, so
    the serving sink ends up holding one merged distributed trace. *)

type node = {
  n_name : string;
  n_cat : string;
  n_args : (string * value) list;
  n_dur_us : float;
  n_children : node list;
}

val spans : ?max_depth:int -> sink -> node list
(** Reconstruct the span forest of [sink]: collectors in track order,
    each collector's root spans in emission order.  [max_depth] prunes
    children deeper than that many levels below a root (children of
    pruned nodes are dropped, durations kept). *)

val node_to_json : node -> Json.t
val node_of_json : Json.t -> (node, string) result

val emit_node : node -> unit
(** Re-emit a node tree as Complete events on the current collector at
    the current depth and timestamp (children first, parent last, as a
    live run would have closed them).  No-op when telemetry is off. *)

val to_folded : sink -> string
(** Folded-stack export (flamegraph input): one
    ["track;span;subspan value"] line per distinct stack, stacks
    prefixed with the collector's ancestry chain of track names,
    values the {e exclusive} span time in µs (clamped to at least 1 so
    virtual-clock traces — where every duration is 0 — still render
    their structure).  Lines are sorted, so the export is a pure
    function of the event tree. *)

(** {1 Export} *)

val events : sink -> event list
(** All events, collectors in track order, each collector's events in
    emission order. *)

val metrics : sink -> metric list
(** Whole-sink aggregate merge, sorted by (cat, name). *)

val counter_total : sink -> cat:string -> string -> int
(** Summed value of the named counter across every collector in the
    sink; [0] when the counter was never bumped. *)

val to_chrome_json : ?process_name:string -> sink -> Json.t
(** Chrome [trace_event] JSON (the [{"traceEvents": [...]}] object
    form), loadable in Perfetto / [chrome://tracing].  Track paths are
    mapped to dense [tid]s in track order and named via ["thread_name"]
    metadata events. *)

val to_jsonl : sink -> string
(** One JSON object per line, same event mapping as the Chrome export
    (without metadata records). *)

val metrics_to_json : metric list -> Json.t
val metric_value_string : data -> string
(** Compact rendering for tables: ["1234"], ["3.25"], or
    ["n=88 mean=12.4 min=3 max=40"]. *)
