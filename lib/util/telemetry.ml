(* Domain-local tracing/metrics core.

   Ownership model: every collector is written by exactly one domain at
   a time (the pool hands tasks their own collectors before dispatch),
   so event emission needs no synchronisation; only the sink's collector
   registry is mutex-protected.  Determinism model: collectors carry a
   track *path* fixed at creation (task index under the parent), and
   every merge — event listing, metric folding — orders collectors by
   that path, never by registration or completion order. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type phase = Complete of float | Instant | Sample of float

type event = {
  track : int list;
  seq : int;
  ts_us : float;
  cat : string;
  name : string;
  ph : phase;
  depth : int;
  args : (string * value) list;
}

type summary = { count : int; sum : float; min : float; max : float }

type data = Counter of int | Gauge of float | Histogram of summary

type metric = { mcat : string; mname : string; mdata : data }

type hist_acc = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type collector = {
  sink : sink;
  path : int list;
  track_name : string;
  mutable seq : int;
  mutable events : event list; (* reversed *)
  mutable depth : int;
  mutable next_scope : int;
  counters : (string * string, int ref) Hashtbl.t;
  gauges : (string * string, float * (int list * int)) Hashtbl.t;
  hists : (string * string, hist_acc) Hashtbl.t;
}

and sink = {
  clock : unit -> float;
  epoch : float;
  lock : Mutex.t;
  mutable collectors : collector list; (* registration order; sorted on use *)
}

let make_sink ?(clock = Unix.gettimeofday) () =
  { clock; epoch = clock (); lock = Mutex.create (); collectors = [] }

let new_collector sink ~path ~name =
  let c =
    { sink; path; track_name = name; seq = 0; events = []; depth = 0;
      next_scope = 0;
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 8;
      hists = Hashtbl.create 8 }
  in
  Mutex.lock sink.lock;
  sink.collectors <- c :: sink.collectors;
  Mutex.unlock sink.lock;
  c

(* --- global installation + per-domain current collector --- *)

let installed : sink option Atomic.t = Atomic.make None

let dls_current : collector option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get dls_current)

let active () = Atomic.get installed <> None

let installed_sink () = Atomic.get installed

let install sink =
  Atomic.set installed (Some sink);
  Domain.DLS.get dls_current := Some (new_collector sink ~path:[ 0 ] ~name:"main")

let uninstall () =
  Atomic.set installed None;
  Domain.DLS.get dls_current := None

let hook :
    ([ `Open | `Close ] -> depth:int -> string -> unit) option Atomic.t =
  Atomic.make None

let set_span_hook f = Atomic.set hook f

(* --- emission --- *)

let now_us c = (c.sink.clock () -. c.sink.epoch) *. 1e6

let next_seq c =
  let s = c.seq in
  c.seq <- s + 1;
  s

let emit c ~cat ~name ~ts_us ~ph ~depth ~args =
  c.events <-
    { track = c.path; seq = next_seq c; ts_us; cat; name; ph; depth; args }
    :: c.events

let span ?(cat = "span") ?(args = []) name f =
  if not (active ()) then f ()
  else
    match current () with
    | None -> f ()
    | Some c ->
      let ts = now_us c in
      let depth = c.depth in
      c.depth <- depth + 1;
      (match Atomic.get hook with
       | Some h -> h `Open ~depth name
       | None -> ());
      Fun.protect
        ~finally:(fun () ->
          c.depth <- depth;
          emit c ~cat ~name ~ts_us:ts
            ~ph:(Complete (now_us c -. ts))
            ~depth ~args;
          match Atomic.get hook with
          | Some h -> h `Close ~depth name
          | None -> ())
        f

let instant ?(cat = "event") ?(args = []) name =
  if active () then
    match current () with
    | None -> ()
    | Some c ->
      emit c ~cat ~name ~ts_us:(now_us c) ~ph:Instant ~depth:c.depth ~args

let incr ?(cat = "counter") ?(by = 1) name =
  if active () then
    match current () with
    | None -> ()
    | Some c -> (
      match Hashtbl.find_opt c.counters (cat, name) with
      | Some r -> r := !r + by
      | None -> Hashtbl.add c.counters (cat, name) (ref by))

let sample ?(cat = "counter") name v =
  if active () then
    match current () with
    | None -> ()
    | Some c ->
      emit c ~cat ~name ~ts_us:(now_us c) ~ph:(Sample v) ~depth:c.depth
        ~args:[]

let gauge ?(cat = "gauge") name v =
  if active () then
    match current () with
    | None -> ()
    | Some c ->
      Hashtbl.replace c.gauges (cat, name) (v, (c.path, next_seq c))

let observe ?(cat = "hist") name v =
  if active () then
    match current () with
    | None -> ()
    | Some c -> (
      match Hashtbl.find_opt c.hists (cat, name) with
      | Some h ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_min <- Float.min h.h_min v;
        h.h_max <- Float.max h.h_max v
      | None ->
        Hashtbl.add c.hists (cat, name)
          { h_count = 1; h_sum = v; h_min = v; h_max = v })

(* --- task / worker contexts for the pool --- *)

type context = collector option

let task_context () = if active () then current () else None

let is_live = Option.is_some

let with_collector c f =
  let r = Domain.DLS.get dls_current in
  let saved = !r in
  r := Some c;
  Fun.protect ~finally:(fun () -> r := saved) f

let in_task ctx ~label i f =
  match ctx with
  | None -> f ()
  | Some parent ->
    let c =
      new_collector parent.sink ~path:(parent.path @ [ i ])
        ~name:(Printf.sprintf "%s %d" label i)
    in
    with_collector c (fun () ->
        span ~cat:"task"
          ~args:
            [ ("index", Int i);
              ("domain", Int (Domain.self () :> int)) ]
          label f)

let in_worker ctx ~index f =
  match ctx with
  | None -> f ()
  | Some parent ->
    let c =
      new_collector parent.sink ~path:(parent.path @ [ -1 - index ])
        ~name:(Printf.sprintf "worker %d" index)
    in
    with_collector c (fun () -> span ~cat:"pool" "worker" f)

(* --- request subtracks --- *)

(* Scope and subtrack children use a high branch so they cannot collide
   with pool task indices (which are dense from 0) under the same
   parent. *)
let scope_branch = 1_000_000

type subtrack = collector

let subtrack name =
  if not (active ()) then None
  else
    match current () with
    | None -> None
    | Some parent ->
      let branch = scope_branch + parent.next_scope in
      parent.next_scope <- parent.next_scope + 1;
      Some (new_collector parent.sink ~path:(parent.path @ [ branch ]) ~name)

let on_subtrack st f =
  match st with None -> f () | Some c -> with_collector c f

let complete ?(cat = "span") ?(args = []) ~dur_us name =
  if active () then
    match current () with
    | None -> ()
    | Some c ->
      emit c ~cat ~name ~ts_us:(now_us c) ~ph:(Complete dur_us)
        ~depth:c.depth ~args

(* --- span trees --- *)

type node = {
  n_name : string;
  n_cat : string;
  n_args : (string * value) list;
  n_dur_us : float;
  n_children : node list;
}

(* Spans close child-before-parent, so a forward walk over the
   emission order sees a parent's whole subtree before the parent:
   the pending suffix deeper than the parent is exactly its children
   (already folded one level at a time). *)
let forest_of_events evs =
  let pending = ref [] (* (depth, node), emission order *) in
  List.iter
    (fun e ->
      match e.ph with
      | Sample _ -> ()
      | Complete _ | Instant ->
        let dur = match e.ph with Complete d -> d | _ -> 0.0 in
        let mine, rest =
          List.partition (fun (d, _) -> d > e.depth) !pending
        in
        let node =
          {
            n_name = e.name;
            n_cat = e.cat;
            n_args = e.args;
            n_dur_us = dur;
            n_children = List.map snd mine;
          }
        in
        pending := rest @ [ (e.depth, node) ])
    evs;
  List.map snd !pending

let rec prune_depth limit n =
  if limit <= 0 then { n with n_children = [] }
  else { n with n_children = List.map (prune_depth (limit - 1)) n.n_children }

let value_to_json_v = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let rec node_to_json n =
  Json.Obj
    ([ ("name", Json.String n.n_name); ("cat", Json.String n.n_cat);
       ("dur_us", Json.Float n.n_dur_us) ]
    @ (match n.n_args with
       | [] -> []
       | args ->
         [ ("args",
            Json.Obj (List.map (fun (k, v) -> (k, value_to_json_v v)) args)) ])
    @ (match n.n_children with
       | [] -> []
       | cs -> [ ("children", Json.List (List.map node_to_json cs)) ]))

let rec node_of_json j =
  let ( let* ) = Stdlib.Result.bind in
  let* n_name =
    match Json.member "name" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "span node: missing string field \"name\""
  in
  let* n_cat =
    match Json.member "cat" j with
    | Some (Json.String s) -> Ok s
    | None -> Ok "span"
    | Some _ -> Error "span node: field \"cat\" must be a string"
  in
  let* n_dur_us =
    match Json.member "dur_us" j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | None -> Ok 0.0
    | Some _ -> Error "span node: field \"dur_us\" must be a number"
  in
  let* n_args =
    match Json.member "args" j with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.Int i) :: rest -> conv ((k, Int i) :: acc) rest
        | (k, Json.Float f) :: rest -> conv ((k, Float f) :: acc) rest
        | (k, Json.String s) :: rest -> conv ((k, Str s) :: acc) rest
        | (k, Json.Bool b) :: rest -> conv ((k, Bool b) :: acc) rest
        | (k, _) :: _ ->
          Error (Printf.sprintf "span node: unsupported arg value for %S" k)
      in
      conv [] kvs
    | Some _ -> Error "span node: field \"args\" must be an object"
  in
  let* n_children =
    match Json.member "children" j with
    | None -> Ok []
    | Some (Json.List cs) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest ->
          let* n = node_of_json c in
          conv (n :: acc) rest
      in
      conv [] cs
    | Some _ -> Error "span node: field \"children\" must be an array"
  in
  Ok { n_name; n_cat; n_args; n_dur_us; n_children }

let emit_node n =
  if active () then
    match current () with
    | None -> ()
    | Some c ->
      (* post-order: children close before their parent, as live spans
         would have *)
      let rec go rel n =
        List.iter (go (rel + 1)) n.n_children;
        emit c ~cat:n.n_cat ~name:n.n_name ~ts_us:(now_us c)
          ~ph:(Complete n.n_dur_us) ~depth:(c.depth + rel) ~args:n.n_args
      in
      go 0 n

(* --- deterministic merge --- *)

let compare_path (a : int list) (b : int list) = compare a b

let sorted_collectors sink =
  Mutex.lock sink.lock;
  let cols = sink.collectors in
  Mutex.unlock sink.lock;
  List.sort (fun c1 c2 -> compare_path c1.path c2.path) cols

let is_prefix prefix path =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | p :: ps, q :: qs -> p = q && go (ps, qs)
  in
  go (prefix, path)

let merge_metrics cols =
  let counters = Hashtbl.create 32 in
  let gauges = Hashtbl.create 16 in
  let hists = Hashtbl.create 16 in
  let merge_one c =
    (* Hashtbl fold order is arbitrary but keys are disjoint per fold
       and every combination below is per-key, so the outcome only
       depends on the [cols] order. *)
    Hashtbl.iter
      (fun k r ->
        match Hashtbl.find_opt counters k with
        | Some acc -> acc := !acc + !r
        | None -> Hashtbl.add counters k (ref !r))
      c.counters;
    Hashtbl.iter
      (fun k (v, ord) ->
        match Hashtbl.find_opt gauges k with
        | Some (_, ord') when ord' > ord -> ()
        | Some _ | None -> Hashtbl.replace gauges k (v, ord))
      c.gauges;
    Hashtbl.iter
      (fun k (h : hist_acc) ->
        match Hashtbl.find_opt hists k with
        | Some acc ->
          acc.h_count <- acc.h_count + h.h_count;
          acc.h_sum <- acc.h_sum +. h.h_sum;
          acc.h_min <- Float.min acc.h_min h.h_min;
          acc.h_max <- Float.max acc.h_max h.h_max
        | None ->
          Hashtbl.add hists k
            { h_count = h.h_count; h_sum = h.h_sum; h_min = h.h_min;
              h_max = h.h_max })
      c.hists
  in
  List.iter merge_one cols;
  let out = ref [] in
  Hashtbl.iter
    (fun (mcat, mname) r -> out := { mcat; mname; mdata = Counter !r } :: !out)
    counters;
  Hashtbl.iter
    (fun (mcat, mname) (v, _) ->
      out := { mcat; mname; mdata = Gauge v } :: !out)
    gauges;
  Hashtbl.iter
    (fun (mcat, mname) h ->
      out :=
        { mcat; mname;
          mdata =
            Histogram
              { count = h.h_count; sum = h.h_sum; min = h.h_min;
                max = h.h_max } }
        :: !out)
    hists;
  List.sort
    (fun a b ->
      let c = compare a.mcat b.mcat in
      if c <> 0 then c else compare a.mname b.mname)
    !out

let with_scope name f =
  if not (active ()) then (f (), [])
  else
    match current () with
    | None -> (f (), [])
    | Some parent ->
      let branch = scope_branch + parent.next_scope in
      parent.next_scope <- parent.next_scope + 1;
      let c =
        new_collector parent.sink ~path:(parent.path @ [ branch ]) ~name
      in
      let v = with_collector c (fun () -> span ~cat:"scope" name f) in
      let descendants =
        List.filter
          (fun col -> is_prefix c.path col.path)
          (sorted_collectors parent.sink)
      in
      (v, merge_metrics descendants)

(* --- export --- *)

let events sink =
  List.concat_map (fun c -> List.rev c.events) (sorted_collectors sink)

let spans ?max_depth sink =
  let forest =
    List.concat_map
      (fun c -> forest_of_events (List.rev c.events))
      (sorted_collectors sink)
  in
  match max_depth with
  | None -> forest
  | Some d -> List.map (prune_depth d) forest

(* Folded stacks: every span contributes its exclusive time (clamped
   to >= 1 µs so virtual-clock traces keep their shape) to the stack
   formed by its collector's ancestry chain plus its span ancestry.
   Aggregation and the final sort make the export a pure function of
   the event tree, never of timing. *)
let to_folded sink =
  let cols = sorted_collectors sink in
  let by_path = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace by_path c.path c.track_name) cols;
  let sanitize s =
    String.map (fun ch -> if ch = ';' || ch = '\n' then ':' else ch) s
  in
  let ancestry path name =
    (* proper prefixes of [path] that name a collector, then [name] *)
    let rec walk prefix acc = function
      | [] | [ _ ] -> List.rev acc
      | x :: rest ->
        let prefix = prefix @ [ x ] in
        let acc =
          match Hashtbl.find_opt by_path prefix with
          | Some n -> sanitize n :: acc
          | None -> acc
        in
        walk prefix acc rest
    in
    walk [] [] path @ [ sanitize name ]
  in
  let acc = Hashtbl.create 64 in
  let bump stack v =
    let key = String.concat ";" stack in
    match Hashtbl.find_opt acc key with
    | Some r -> r := !r + v
    | None -> Hashtbl.add acc key (ref v)
  in
  let rec fold_node stack n =
    let stack = stack @ [ sanitize n.n_name ] in
    let child_sum =
      List.fold_left (fun s c -> s +. c.n_dur_us) 0.0 n.n_children
    in
    let exclusive =
      max 1 (int_of_float (Float.round (n.n_dur_us -. child_sum)))
    in
    bump stack exclusive;
    List.iter (fold_node stack) n.n_children
  in
  List.iter
    (fun c ->
      let prefix = ancestry c.path c.track_name in
      List.iter (fold_node prefix) (forest_of_events (List.rev c.events)))
    cols;
  let lines =
    Hashtbl.fold (fun k r l -> Printf.sprintf "%s %d\n" k !r :: l) acc []
  in
  String.concat "" (List.sort compare lines)

let metrics sink = merge_metrics (sorted_collectors sink)

let counter_total sink ~cat name =
  List.fold_left
    (fun acc m ->
      match m with
      | { mcat; mname; mdata = Counter n } when mcat = cat && mname = name ->
        acc + n
      | _ -> acc)
    0 (metrics sink)

let value_to_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let args_to_json args =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) args)

(* One trace_event record.  [tid] is the dense track id. *)
let event_to_json ~tid e =
  let common =
    [ ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("ts", Json.Float e.ts_us) ]
  in
  match e.ph with
  | Complete dur ->
    Json.Obj
      (common
      @ [ ("ph", Json.String "X"); ("dur", Json.Float dur);
          ("args", args_to_json e.args) ])
  | Instant ->
    Json.Obj
      (common
      @ [ ("ph", Json.String "i"); ("s", Json.String "t");
          ("args", args_to_json e.args) ])
  | Sample v ->
    Json.Obj
      (common
      @ [ ("ph", Json.String "C");
          ("args", Json.Obj [ ("value", Json.Float v) ]) ])

let track_ids sink =
  let cols = sorted_collectors sink in
  let tbl = Hashtbl.create 16 in
  let names = ref [] in
  List.iter
    (fun c ->
      if not (Hashtbl.mem tbl c.path) then begin
        let tid = Hashtbl.length tbl in
        Hashtbl.add tbl c.path tid;
        names := (tid, c.track_name) :: !names
      end)
    cols;
  (tbl, List.rev !names)

let to_chrome_json ?(process_name = "dcsa-synth") sink =
  let tids, names = track_ids sink in
  let meta =
    Json.Obj
      [ ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String process_name) ]) ]
    :: List.map
         (fun (tid, name) ->
           Json.Obj
             [ ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.String name) ]) ])
         names
  in
  let evs =
    List.map
      (fun e -> event_to_json ~tid:(Hashtbl.find tids e.track) e)
      (events sink)
  in
  Json.Obj
    [ ("traceEvents", Json.List (meta @ evs));
      ("displayTimeUnit", Json.String "ms") ]

let to_jsonl sink =
  let tids, _ = track_ids sink in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Json.to_string (event_to_json ~tid:(Hashtbl.find tids e.track) e));
      Buffer.add_char buf '\n')
    (events sink);
  Buffer.contents buf

(* --- metric rendering --- *)

let summary_mean s = if s.count = 0 then Float.nan else s.sum /. float s.count

let metric_value_string = function
  | Counter n -> string_of_int n
  | Gauge v -> Printf.sprintf "%g" v
  | Histogram s ->
    Printf.sprintf "n=%d mean=%.4g min=%g max=%g" s.count (summary_mean s)
      s.min s.max

let metrics_to_json ms =
  Json.Obj
    (List.map
       (fun m ->
         let v =
           match m.mdata with
           | Counter n -> Json.Int n
           | Gauge v -> Json.Float v
           | Histogram s ->
             Json.Obj
               [ ("count", Json.Int s.count);
                 ("sum", Json.Float s.sum);
                 ("min", Json.Float s.min);
                 ("max", Json.Float s.max) ]
         in
         (m.mcat ^ "/" ^ m.mname, v))
       ms)
