(** Log-bucketed latency histogram: mergeable, bounded memory,
    deterministic quantiles.

    The serving tier's rolling-metric primitive.  Observations land in
    geometric buckets with boundaries [gamma^k] where
    [gamma = 2^(1/4)] (four buckets per octave, so any quantile
    estimate is within one bucket — a factor of [gamma] ≈ 1.19 — of
    the exact sample).  The bucket index range is clamped, so memory
    is a fixed ~300-slot array per histogram regardless of how many
    observations arrive, and two histograms with the same layout merge
    by adding counts: merge is commutative and (up to float summation
    of [sum]) associative, which is what lets per-slot and per-window
    histograms roll up into fleet totals.

    Non-positive observations land in a dedicated zero bucket whose
    representative value is [0].  [count], [sum], [min] and [max] are
    tracked exactly (not from buckets). *)

type t

val gamma : float
(** Bucket growth factor, [2^(1/4)]. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation.  NaN is ignored. *)

val count : t -> int
val sum : t -> float

val min_value : t -> float
(** Exact smallest observation; [0.] when empty. *)

val max_value : t -> float
(** Exact largest observation; [0.] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding both sets of
    observations; [a] and [b] are unchanged. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: the upper bound of the bucket
    holding the rank-[ceil (q * count)] observation (rank at least 1),
    i.e. an estimate [u] with [x <= u <= x * gamma^2] for the exact
    quantile [x > 0].  [0.] when the histogram is empty or the rank
    falls in the zero bucket. *)

val bucket_index : float -> int
(** The clamped bucket index a positive value lands in (exposed for
    the property tests); non-positive values map to [min_int]. *)

val buckets : t -> (float * int) list
(** Occupied buckets in ascending order as [(upper_bound, count)];
    the zero bucket reports upper bound [0.]. *)

val snapshot_json : t -> Json.t
(** Compact deterministic snapshot:
    [{count; sum; min; max; p50; p95; p99}]. *)

val to_json : t -> Json.t
(** Full state including the sparse bucket list, suitable for
    cross-process shipping; inverse of {!of_json}. *)

val of_json : Json.t -> (t, string) result

val prometheus :
  ?help:string ->
  ?labels:(string * string) list ->
  ?header:bool ->
  name:string ->
  Buffer.t ->
  t ->
  unit
(** Append a Prometheus text-exposition histogram ([# TYPE .. histogram],
    cumulative [_bucket{le="..."}] lines over the occupied buckets plus
    [+Inf], then [_sum] and [_count]) to the buffer.  [labels] are
    rendered on every series line (merged with [le] on buckets) with
    their values escaped per the exposition format, so one metric name
    can carry per-slot series ([slot="3"]) that scrapers aggregate;
    [help] is escaped likewise.  [header] (default true) controls the
    [# HELP]/[# TYPE] preamble — pass [false] when appending further
    label permutations of a metric name already introduced, since the
    exposition format allows the preamble only once per name.  Every
    emitted line is newline-terminated. *)

val escape_label : string -> string
(** Escape a label value for the Prometheus text exposition format:
    backslash, double-quote and newline become backslash-escaped
    two-character sequences. *)

val escape_help : string -> string
(** Escape a [# HELP] text: backslash and newline become
    backslash-escaped two-character sequences. *)
