(** Minimal JSON value model, serializer and parser for exporting and
    validating experiment artifacts (metrics, Chrome traces). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** [to_string ~indent v] serializes [v]; [indent = 0] (default) yields a
    compact single line, a positive indent pretty-prints. *)

val to_channel : ?indent:int -> out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON document (trailing whitespace allowed, anything else
    after the document is an error).  Numbers without [.], [e] or [E]
    parse as [Int]; everything else as [Float].  Object member order is
    preserved; duplicate keys are kept.  Errors carry the 0-based byte
    offset: ["offset 12: expected ':'"]. *)

val member : string -> t -> t option
(** [member k v] is the first [k] field of object [v]; [None] when [v]
    is not an object or lacks the key. *)
