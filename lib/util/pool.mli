(** Deterministic Domain-based worker pool.

    The synthesis flow is embarrassingly parallel at several levels
    (scheduling restarts, annealing restarts, independent benchmark
    instances).  This pool fans such tasks out over OCaml 5 domains while
    keeping the *results* bit-for-bit independent of the worker count:

    - every task writes its result into the slot of its own input index,
      so output order never depends on completion order;
    - tasks must not share mutable state (the synthesis callers split
      their RNG into per-task generators {e before} dispatch — see
      {!Rng.split_n});
    - exceptions are collected per task and the one belonging to the
      {e lowest} task index is re-raised after all workers have drained,
      so failure behaviour is deterministic too.

    With [jobs = 1] (the library default) no domain is spawned and tasks
    run sequentially in the calling domain — the fallback path used by
    tests and by callers that already sit inside a worker domain
    (domains must not be nested carelessly).

    When a {!Telemetry} sink is installed, every task runs under its own
    child collector (track = task index, captured from the dispatching
    collector before any domain spawns) wrapped in a [label] span, and
    each worker domain gets a busy span on its own track.  The task
    wrapper applies on the [jobs = 1] fast path too, so the collector
    tree — and every metric merged from it — is identical for all [jobs]
    values. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped to [[1, 8]] — the
    default worker count used by the CLI and the bench harness. *)

val init : ?label:string -> ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] evaluated by up to [jobs]
    domains (the calling domain included).  Tasks are handed out through
    an atomic cursor; [f] must therefore be safe to call concurrently on
    distinct indices.  Result slot [i] always holds [f i].  [label]
    (default ["task"]) names the per-task telemetry spans.

    Degenerate inputs never overshoot: exactly
    [min (jobs - 1) (n - 1)] helper domains are spawned, so [jobs]
    larger than the task count costs nothing beyond the tasks
    themselves.  [n = 0] returns [[||]] immediately — no domain is
    spawned and no telemetry collector or span is created — and [n = 1]
    (like [jobs = 1]) takes the sequential fast path on the calling
    domain.  On that fast path the task-collector tree (and therefore
    every merged metric) is identical to a [jobs = 1] run; only worker
    busy-tracks are absent, as no worker domain exists.
    @raise Invalid_argument if [jobs < 1] or [n < 0]. *)

val map : ?label:string -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] preserves the order of [xs] regardless of [jobs].
    Exceptions raised by [f] propagate; when several tasks fail, the one
    closest to the head of [xs] wins, whatever domain it ran on. *)

val map_array : ?label:string -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)
