type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(indent = 0) v =
  let buf = Buffer.create 256 in
  let nl depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (depth + 1);
          emit (depth + 1) item)
        items;
      nl depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          if indent > 0 then Buffer.add_char buf ' ';
          emit (depth + 1) item)
        fields;
      nl depth;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

let to_channel ?indent oc v = output_string oc (to_string ?indent v)

(* --- parsing --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "invalid \\u escape"
                | Some code ->
                  (match Uchar.of_int code with
                   | u -> Buffer.add_utf_8_uchar buf u
                   | exception Invalid_argument _ ->
                     Buffer.add_utf_8_uchar buf Uchar.rep);
                  pos := !pos + 4)
             | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
          go ()
        | c when Char.code c < 0x20 -> fail "unescaped control character"
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ();
        incr d
      done;
      if !d = 0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "offset %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
