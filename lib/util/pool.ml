(* Work-stealing fan-out over OCaml 5 domains.

   Tasks are indexed 0..n-1 and handed out through one atomic cursor;
   each worker loops fetch-and-add until the range is exhausted.  Every
   result (or exception) lands in the slot of its task index, so the
   outcome is independent of how the domains interleave.

   Telemetry: the dispatching collector is captured *before* any domain
   is spawned, each task then runs under a child collector keyed by its
   task index (see Telemetry.in_task), and workers get busy spans on
   their own tracks.  When telemetry is live the task wrapper is applied
   even on the jobs=1 fast path, so the collector tree — and therefore
   every merged metric, float summation order included — is identical
   for every jobs value. *)

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

(* Outcome slots are written by exactly one worker each (distinct array
   elements), then read after every domain has been joined — no lock is
   needed beyond the join itself. *)
type 'a outcome = Pending | Done of 'a | Failed of exn

let run_indexed ~ctx ~jobs n f =
  let slots = Array.make n Pending in
  let cursor = Atomic.make 0 in
  let drain () =
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        (slots.(i) <- (match f i with v -> Done v | exception e -> Failed e));
        loop ()
      end
    in
    loop ()
  in
  let worker w () = Telemetry.in_worker ctx ~index:w drain in
  let helpers =
    Array.init (min (jobs - 1) (n - 1)) (fun w ->
        Domain.spawn (worker (w + 1)))
  in
  worker 0 ();
  Array.iter Domain.join helpers;
  (* Deterministic failure: the lowest task index wins, not the first
     domain to crash. *)
  Array.iter (function Failed e -> raise e | Pending | Done _ -> ()) slots;
  Array.map
    (function Done v -> v | Pending | Failed _ -> assert false)
    slots

let init ?(label = "task") ?(jobs = 1) n f =
  if jobs < 1 then invalid_arg "Pool.init: jobs < 1";
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else begin
    let ctx = Telemetry.task_context () in
    if Telemetry.is_live ctx then begin
      let f i = Telemetry.in_task ctx ~label i (fun () -> f i) in
      if jobs = 1 || n = 1 then Array.init n f
      else run_indexed ~ctx ~jobs n f
    end
    else if jobs = 1 || n = 1 then Array.init n f
    else run_indexed ~ctx ~jobs n f
  end

let map_array ?label ?jobs f xs =
  init ?label ?jobs (Array.length xs) (fun i -> f xs.(i))

let map ?label ?jobs f xs =
  Array.to_list (map_array ?label ?jobs f (Array.of_list xs))
