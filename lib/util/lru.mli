(** Generic size-bounded LRU cache.

    The serving layer memoises expensive pure computations (full
    synthesis runs keyed by a content-addressed request hash); this is
    the bounded map underneath.  Entries are evicted strictly
    least-recently-used first, where "use" is a {!find} hit or an
    {!add}.  The structure is deterministic: for any sequence of
    operations the set of resident keys, the eviction order, and the
    {!stats} counters are pure functions of that sequence.

    Not domain-safe — confine one cache to one domain (the server owns
    its cache on the dispatching domain; pool workers never touch it).

    When a {!Telemetry} sink is installed, every hit / miss / eviction
    also bumps a counter under cat ["cache"] named
    [<name>.hit] / [<name>.miss] / [<name>.eviction], so cache
    behaviour lands in the same deterministic metric aggregates as the
    rest of the flow. *)

type ('k, 'v) t

type stats = {
  hits : int;        (** [find] calls that returned a value *)
  misses : int;      (** [find] calls that returned [None] *)
  evictions : int;   (** entries dropped by capacity pressure *)
}

val create : ?name:string -> capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] is an empty cache holding at most [capacity]
    entries.  [name] (default ["lru"]) prefixes the telemetry counters.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the cached value and marks [k] most recently
    used; counts a hit or a miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure lookup: no recency update, no counter. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** [add t k v] binds [k] to [v] as the most recently used entry,
    replacing any previous binding of [k].  When the cache is full the
    least-recently-used entry is evicted (counted). *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop [k] if present (not counted as an eviction). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry; counters are kept. *)

val stats : ('k, 'v) t -> stats

val keys_mru_first : ('k, 'v) t -> 'k list
(** Resident keys, most recently used first (for tests and
    introspection). *)
