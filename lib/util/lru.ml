(* Hashtbl + intrusive doubly-linked recency list.  [head] is the most
   recently used node, [tail] the eviction candidate.  Every operation
   is O(1) expected; the recency order is a pure function of the
   operation sequence, which is what makes cache hit/miss/eviction
   counters safe to expose as deterministic metrics. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards head / more recent *)
  mutable next : ('k, 'v) node option;  (* towards tail / less recent *)
}

type stats = { hits : int; misses : int; evictions : int }

type ('k, 'v) t = {
  name : string;
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(name = "lru") ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    name;
    cap = capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let count t what =
  Telemetry.incr ~cat:"cache" (t.name ^ "." ^ what)

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    t.hits <- t.hits + 1;
    count t "hit";
    touch t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    count t "miss";
    None

let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1;
    count t "eviction"

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    touch t node
  | None ->
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let node = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k node;
    push_front t node

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let keys_mru_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.head
