(* Fixed-layout geometric histogram.  Every instance shares the same
   bucket boundaries, so merging is plain array addition and quantile
   estimates from merged histograms equal those from one histogram fed
   the union of observations. *)

let gamma = Float.pow 2.0 0.25

let log_gamma = Float.log gamma

(* Clamped index range: gamma^(-128) = 2^-32 ~ 2.3e-10 up to
   gamma^176 = 2^44 ~ 1.8e13 — generous for ticks, microseconds and
   milliseconds alike.  Indices are offset by [-lo] into the array. *)
let lo = -128

let hi = 175

let n_buckets = hi - lo + 1

type t = {
  counts : int array; (* length n_buckets *)
  mutable zero : int; (* observations <= 0 *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    zero = 0;
    count = 0;
    sum = 0.0;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
  }

let bucket_index v =
  if v <= 0.0 then min_int
  else
    let k = int_of_float (Float.floor (Float.log v /. log_gamma)) in
    if k < lo then lo else if k > hi then hi else k

let upper_bound k = Float.exp (float_of_int (k + 1) *. log_gamma)

let add t v =
  if not (Float.is_nan v) then begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    match bucket_index v with
    | k when k = min_int -> t.zero <- t.zero + 1
    | k -> t.counts.(k - lo) <- t.counts.(k - lo) + 1
  end

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then 0.0 else t.min_v

let max_value t = if t.count = 0 then 0.0 else t.max_v

let merge a b =
  let m = create () in
  Array.iteri (fun i n -> m.counts.(i) <- n + b.counts.(i)) a.counts;
  m.zero <- a.zero + b.zero;
  m.count <- a.count + b.count;
  m.sum <- a.sum +. b.sum;
  m.min_v <- Float.min a.min_v b.min_v;
  m.max_v <- Float.max a.max_v b.max_v;
  m

let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    if rank <= t.zero then 0.0
    else begin
      let cum = ref t.zero in
      let res = ref (max_value t) in
      (try
         for i = 0 to n_buckets - 1 do
           cum := !cum + t.counts.(i);
           if !cum >= rank then begin
             res := upper_bound (i + lo);
             raise Exit
           end
         done
       with Exit -> ());
      !res
    end
  end

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      acc := (upper_bound (i + lo), t.counts.(i)) :: !acc
  done;
  if t.zero > 0 then (0.0, t.zero) :: !acc else !acc

(* %.17g keeps float round-trips exact; %g would lose bits of [sum]. *)
let float_json v = Json.Float v

let snapshot_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", float_json t.sum);
      ("min", float_json (min_value t));
      ("max", float_json (max_value t));
      ("p50", float_json (quantile t 0.50));
      ("p95", float_json (quantile t 0.95));
      ("p99", float_json (quantile t 0.99));
    ]

let to_json t =
  let sparse = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      sparse :=
        Json.List [ Json.Int (i + lo); Json.Int t.counts.(i) ] :: !sparse
  done;
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", float_json t.sum);
      ("min", float_json (min_value t));
      ("max", float_json (max_value t));
      ("zero", Json.Int t.zero);
      ("buckets", Json.List !sparse);
    ]

let of_json j =
  let ( let* ) = Stdlib.Result.bind in
  let int_field k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "histogram: missing int field %S" k)
  in
  let float_field k =
    match Json.member k j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "histogram: missing number field %S" k)
  in
  let* count = int_field "count" in
  let* sum = float_field "sum" in
  let* mn = float_field "min" in
  let* mx = float_field "max" in
  let* zero = int_field "zero" in
  let t = create () in
  t.count <- count;
  t.sum <- sum;
  t.zero <- zero;
  if count > 0 then begin
    t.min_v <- mn;
    t.max_v <- mx
  end;
  match Json.member "buckets" j with
  | Some (Json.List entries) ->
    let rec fill = function
      | [] -> Ok t
      | Json.List [ Json.Int k; Json.Int n ] :: rest ->
        if k < lo || k > hi || n < 0 then
          Error (Printf.sprintf "histogram: bucket %d out of range" k)
        else begin
          t.counts.(k - lo) <- n;
          fill rest
        end
      | _ -> Error "histogram: malformed bucket entry"
    in
    fill entries
  | _ -> Error "histogram: missing \"buckets\" array"

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

(* Prometheus text-exposition escaping: label values escape backslash,
   double-quote and newline; HELP text escapes backslash and newline.
   Without this a label value holding a quote (or a help text holding a
   newline) splits a series line and the whole scrape fails to parse. *)
let escape_with ~quote s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label s = escape_with ~quote:true s
let escape_help s = escape_with ~quote:false s

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
           labels)
    ^ "}"

let prometheus ?help ?(labels = []) ?(header = true) ~name buf t =
  if header then begin
    (match help with
     | Some h ->
       Buffer.add_string buf
         (Printf.sprintf "# HELP %s %s\n" name (escape_help h))
     | None -> ());
    Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name)
  end;
  let fixed = render_labels labels in
  let bucket_labels ub =
    render_labels (labels @ [ ("le", ub) ])
  in
  let cum = ref 0 in
  List.iter
    (fun (ub, n) ->
      cum := !cum + n;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" name
           (bucket_labels (prom_float ub))
           !cum))
    (buckets t);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" name (bucket_labels "+Inf") t.count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %s\n" name fixed (prom_float t.sum));
  Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name fixed t.count)
