module Seq_graph = Mfb_bioassay.Seq_graph
module Operation = Mfb_bioassay.Operation
module Fluid = Mfb_bioassay.Fluid
module Allocation = Mfb_component.Allocation
module Component = Mfb_component.Component
module Telemetry = Mfb_util.Telemetry

(* Where the output fluid of a scheduled operation currently is. *)
type fluid_state = {
  home : int;                      (* producing component id *)
  produced_at : float;
  mutable copies : int;            (* out-edges not yet consumed *)
  mutable removed_at : float option; (* when it left [home] *)
}

type comp_state = {
  comp : Component.t;
  mutable ready : float;           (* free-and-clean time when no resident *)
  mutable resident : int option;   (* producer op of the fluid inside *)
}

type state = {
  graph : Seq_graph.t;
  tc : float;
  comps : comp_state array;
  fluids : fluid_state option array;   (* per op, set once scheduled *)
  times : Types.op_times option array;
  mutable transports : Types.transport list;
  mutable washes : Types.wash_event list;
}

let wash_of st op = Operation.wash_time (Seq_graph.op st.graph op)

let fluid_exn st op =
  match st.fluids.(op) with
  | Some fs -> fs
  | None -> invalid_arg (Printf.sprintf "Engine: op %d not yet scheduled" op)

let times_exn st op =
  match st.times.(op) with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Engine: op %d has no times" op)

(* Earliest time a new operation could begin on [c], given its residue
   state (paper Eq. 2).  [consumable_parent] is set when the operation
   being bound could consume c's resident fluid in place. *)
let availability st c ~consumable_parent =
  match c.resident with
  | None -> c.ready
  | Some producer ->
    let fs = fluid_exn st producer in
    if consumable_parent = Some producer then fs.produced_at
    else fs.produced_at +. wash_of st producer

(* The resident fluid of [c] can be consumed in place by [op] iff it was
   produced by a parent of [op] and no other child still needs it. *)
let in_place_candidate st c ~parents =
  match c.resident with
  | None -> None
  | Some producer ->
    let fs = fluid_exn st producer in
    if fs.copies = 1 && List.mem producer parents then Some producer
    else None

(* Evict the resident fluid of [c] so that a new operation can start at
   [start]: the fluid moves into a channel at [start - wash] (as late as
   possible, minimising channel cache time) and the component is washed. *)
let evict st c ~start =
  match c.resident with
  | None -> ()
  | Some producer ->
    let fs = fluid_exn st producer in
    let wash = wash_of st producer in
    let at = Float.max fs.produced_at (start -. wash) in
    fs.removed_at <- Some at;
    Telemetry.incr ~cat:"schedule" "washes.evict";
    st.washes <-
      { Types.component = c.comp.id; residue_op = producer; wash_start = at;
        wash_duration = wash }
      :: st.washes;
    c.resident <- None;
    c.ready <- Float.max c.ready (at +. wash)

(* Record the transport of out(parent) to component [dst] arriving exactly
   at [start]; updates the producing component when this is the first
   removal of the fluid. *)
let transport st ~parent ~child ~dst ~start =
  let fs = fluid_exn st parent in
  let depart = start -. st.tc in
  let removal =
    match fs.removed_at with
    | Some t -> Float.min t depart
    | None ->
      (* First removal: the producing component loses its residue now and
         must be washed before its next use. *)
      fs.removed_at <- Some depart;
      let home = st.comps.(fs.home) in
      let wash = wash_of st parent in
      Telemetry.incr ~cat:"schedule" "washes.departure";
      st.washes <-
        { Types.component = fs.home; residue_op = parent; wash_start = depart;
          wash_duration = wash }
        :: st.washes;
      if home.resident = Some parent then home.resident <- None;
      home.ready <- Float.max home.ready (depart +. wash);
      depart
  in
  (* A transport is recorded when the fluid physically travels: between
     distinct components, or back into its own component after having been
     evicted into a channel (a loopback, whose waiting time is channel
     cache). *)
  if fs.home <> dst || removal < depart -. 1e-9 then begin
    Telemetry.incr ~cat:"schedule" "transports";
    st.transports <-
      { Types.edge = (parent, child); src = fs.home; dst; removal; depart;
        arrive = start; fluid = (Seq_graph.op st.graph parent).output }
      :: st.transports
  end

(* Bind and schedule operation [op] on component state [c]. *)
let schedule_on st op c ~in_place =
  let o = Seq_graph.op st.graph op in
  let parents = Seq_graph.parents st.graph op in
  let arrival_constraint p =
    let finish = (times_exn st p).finish in
    if in_place = Some p then finish else finish +. st.tc
  in
  let avail = availability st c ~consumable_parent:in_place in
  let start =
    List.fold_left (fun acc p -> Float.max acc (arrival_constraint p)) avail
      parents
  in
  let start = Float.max start 0. in
  let finish = start +. o.duration in
  (* Clear the component: either its resident is consumed in place or it
     must be evicted before [start]. *)
  (match c.resident with
   | Some producer when in_place = Some producer -> c.resident <- None
   | Some _ -> evict st c ~start
   | None -> ());
  (* Consume every parent fluid. *)
  let consume p =
    let fs = fluid_exn st p in
    fs.copies <- fs.copies - 1;
    if in_place = Some p then begin
      fs.removed_at <- Some start
      (* No wash: the residue is incorporated into the new mixture. *)
    end
    else transport st ~parent:p ~child:op ~dst:c.comp.id ~start
  in
  List.iter consume parents;
  (* Execute. *)
  c.ready <- finish;
  let out_degree = List.length (Seq_graph.children st.graph op) in
  let fs =
    { home = c.comp.id; produced_at = finish; copies = out_degree;
      removed_at = None }
  in
  st.fluids.(op) <- Some fs;
  if out_degree = 0 then begin
    (* Sink: the product leaves the chip when the operation completes. *)
    fs.removed_at <- Some finish;
    let wash = wash_of st op in
    Telemetry.incr ~cat:"schedule" "washes.sink";
    st.washes <-
      { Types.component = c.comp.id; residue_op = op; wash_start = finish;
        wash_duration = wash }
      :: st.washes;
    c.ready <- finish +. wash
  end
  else c.resident <- Some op;
  st.times.(op) <-
    Some { Types.component = c.comp.id; start; finish; in_place_parent = in_place }

(* Binding rule of the paper's Alg. 1 (Case I / Case II), or the baseline
   earliest-availability rule when [case1] is false. *)
let choose_component st ~case1 op =
  let o = Seq_graph.op st.graph op in
  let parents = Seq_graph.parents st.graph op in
  let qualified =
    Array.to_list st.comps
    |> List.filter (fun c -> Operation.equal_kind c.comp.kind o.kind)
  in
  if qualified = [] then
    invalid_arg
      (Printf.sprintf "Engine.run: no %s allocated for operation %d"
         (Operation.kind_to_string o.kind) op);
  let case1_pick () =
    (* O'_s: qualified components whose resident fluid is a consumable
       parent output; choose the lowest diffusion coefficient. *)
    let candidates =
      List.filter_map
        (fun c ->
          match in_place_candidate st c ~parents with
          | Some producer ->
            let fluid = (Seq_graph.op st.graph producer).output in
            Some (fluid.Fluid.diffusion, c, producer)
          | None -> None)
        qualified
    in
    match
      List.sort
        (fun (d1, c1, _) (d2, c2, _) ->
          let cmp = Float.compare d1 d2 in
          if cmp <> 0 then cmp else compare c1.comp.id c2.comp.id)
        candidates
    with
    | (_, c, producer) :: _ -> Some (c, producer)
    | [] -> None
  in
  let earliest_pick () =
    let scored =
      List.map
        (fun c ->
          let consumable = in_place_candidate st c ~parents in
          (availability st c ~consumable_parent:consumable, c, consumable))
        qualified
    in
    match
      List.sort
        (fun (a1, c1, _) (a2, c2, _) ->
          let cmp = Float.compare a1 a2 in
          if cmp <> 0 then cmp else compare c1.comp.id c2.comp.id)
        scored
    with
    | (_, c, consumable) :: _ -> (c, consumable)
    | [] -> assert false
  in
  if case1 then
    match case1_pick () with
    | Some (c, producer) ->
      (* Case I of Alg. 1: consume a parent's residue in place. *)
      Telemetry.incr ~cat:"schedule" "bindings.case1";
      (c, Some producer)
    | None ->
      (* Case II: no in-place candidate; fall back to availability. *)
      Telemetry.incr ~cat:"schedule" "bindings.case2";
      earliest_pick ()
  else begin
    Telemetry.incr ~cat:"schedule" "bindings.earliest";
    earliest_pick ()
  end

let fresh_state ~tc graph allocation =
  if not (Float.is_finite tc) || tc <= 0. then
    invalid_arg "Engine.run: tc must be positive";
  if not (Allocation.covers allocation graph) then
    invalid_arg "Engine.run: allocation does not cover all operation kinds";
  let n = Seq_graph.n_ops graph in
  let comps =
    Array.of_list
      (List.map
         (fun comp -> { comp; ready = 0.; resident = None })
         (Allocation.components allocation))
  in
  { graph; tc; comps;
    fluids = Array.make n None;
    times = Array.make n None;
    transports = []; washes = [] }

(* Independent deep copy: component and fluid records are mutable. *)
let copy_state st =
  {
    st with
    comps =
      Array.map (fun c -> { c with ready = c.ready }) st.comps;
    fluids =
      Array.map
        (Option.map (fun fs -> { fs with copies = fs.copies }))
        st.fluids;
    times = Array.copy st.times;
  }

let finalize st allocation =
  let times =
    Array.map
      (function
        | Some t -> t
        | None -> invalid_arg "Engine.run: unscheduled operation remains")
      st.times
  in
  let makespan =
    Array.fold_left (fun acc (t : Types.op_times) -> Float.max acc t.finish)
      0. times
  in
  {
    Types.graph = st.graph; allocation;
    components = Array.map (fun c -> c.comp) st.comps;
    times;
    transports =
      List.sort
        (fun (a : Types.transport) b -> Float.compare a.depart b.depart)
        st.transports;
    washes =
      List.sort
        (fun (a : Types.wash_event) b -> Float.compare a.wash_start b.wash_start)
        st.washes;
    makespan;
  }

let run ?priorities ~case1 ~tc graph allocation =
  let n = Seq_graph.n_ops graph in
  let st = fresh_state ~tc graph allocation in
  let prio =
    match priorities with
    | None -> Seq_graph.priorities graph ~tc
    | Some p ->
      if Array.length p <> n then
        invalid_arg "Engine.run: priorities length mismatch";
      p
  in
  (* Max-queue on priority; ties broken towards the lower operation id so
     runs are deterministic. *)
  let cmp (p1, i1) (p2, i2) =
    let c = Float.compare p2 p1 in
    if c <> 0 then c else compare i1 i2
  in
  let queue = Mfb_util.Pqueue.create ~cmp in
  let pending = Array.make n 0 in
  List.iter (fun (_, dst) -> pending.(dst) <- pending.(dst) + 1)
    (Seq_graph.edges graph);
  for op = 0 to n - 1 do
    if pending.(op) = 0 then
      Mfb_util.Pqueue.push queue (prio.(op), op) op
  done;
  let rec drain () =
    match Mfb_util.Pqueue.pop queue with
    | None -> ()
    | Some (_, op) ->
      let depth = Mfb_util.Pqueue.length queue in
      Telemetry.sample ~cat:"schedule" "ready_queue"
        (float_of_int (depth + 1));
      Telemetry.observe ~cat:"schedule" "ready_queue.depth"
        (float_of_int (depth + 1));
      let c, in_place = choose_component st ~case1 op in
      schedule_on st op c ~in_place;
      let release child =
        pending.(child) <- pending.(child) - 1;
        if pending.(child) = 0 then
          Mfb_util.Pqueue.push queue (prio.(child), child) child
      in
      List.iter release (Seq_graph.children graph op);
      drain ()
  in
  drain ();
  finalize st allocation

module Search = struct
  type snapshot = { st : state; allocation : Allocation.t }

  let init ~tc graph allocation =
    { st = fresh_state ~tc graph allocation; allocation }

  let scheduled snap op = snap.st.times.(op) <> None

  let ready_ops snap =
    let g = snap.st.graph in
    List.filter
      (fun op ->
        (not (scheduled snap op))
        && List.for_all (scheduled snap) (Seq_graph.parents g op))
      (List.init (Seq_graph.n_ops g) Fun.id)

  let candidates snap op =
    let st = snap.st in
    let o = Seq_graph.op st.graph op in
    let parents = Seq_graph.parents st.graph op in
    Array.to_list st.comps
    |> List.filter (fun c -> Operation.equal_kind c.comp.kind o.kind)
    |> List.map (fun c -> (c.comp.id, in_place_candidate st c ~parents))

  let apply snap op (comp_id, in_place) =
    let st = copy_state snap.st in
    schedule_on st op st.comps.(comp_id) ~in_place;
    { snap with st }

  let complete snap = Array.for_all (( <> ) None) snap.st.times

  let current_makespan snap =
    Array.fold_left
      (fun acc -> function
        | Some (t : Types.op_times) -> Float.max acc t.finish
        | None -> acc)
      0. snap.st.times

  (* Duration-only critical tail of every operation (transport-free, so
     always admissible: in-place chains skip every tc). *)
  let duration_tails g =
    let n = Seq_graph.n_ops g in
    let tail = Array.make n 0. in
    List.iter
      (fun op ->
        let best_child =
          List.fold_left
            (fun acc c -> Float.max acc tail.(c))
            0.
            (Seq_graph.children g op)
        in
        tail.(op) <- (Seq_graph.op g op).duration +. best_child)
      (List.rev (Seq_graph.topo_order g));
    tail

  let tails = duration_tails

  let lower_bound ?tails snap =
    let g = snap.st.graph in
    let tails =
      match tails with Some t -> t | None -> duration_tails g
    in
    let bound_of op =
      match snap.st.times.(op) with
      | Some _ -> 0.
      | None ->
        let earliest_start =
          List.fold_left
            (fun acc p ->
              match snap.st.times.(p) with
              | Some (t : Types.op_times) -> Float.max acc t.finish
              | None -> acc)
            0.
            (Seq_graph.parents g op)
        in
        earliest_start +. tails.(op)
    in
    List.fold_left
      (fun acc op -> Float.max acc (bound_of op))
      (current_makespan snap)
      (List.init (Seq_graph.n_ops g) Fun.id)

  let to_schedule snap = finalize snap.st snap.allocation

  (* Canonical encoding of everything that can still influence *future*
     operation times: per-operation progress (unscheduled / live fluid /
     fully consumed), the finish time and removal state of every live
     fluid, and every component's (ready, resident) pair.  Finish times
     of fully consumed fluids are deliberately excluded — they only feed
     the already-accumulated makespan, which dominance handles as the
     memo value, not the key.  Two snapshots with equal signatures have
     bit-identical futures, so the exact search may prune the one whose
     accumulated makespan is no better ({!Exact}). *)
  let signature snap =
    let st = snap.st in
    let buf = Buffer.create 256 in
    let add_float f = Buffer.add_string buf (Printf.sprintf "%Lx" (Int64.bits_of_float f)) in
    Array.iteri
      (fun op t ->
        match t with
        | None -> Buffer.add_string buf "u;"
        | Some (t : Types.op_times) ->
          (match st.fluids.(op) with
           | Some fs when fs.copies > 0 ->
             (* Live fluid: its production time constrains unscheduled
                children, and whether it has already left its producer
                decides if a future transport washes [home]. *)
             Buffer.add_char buf 's';
             add_float t.finish;
             Buffer.add_char buf (if fs.removed_at = None then 'r' else 'x');
             Buffer.add_string buf (string_of_int fs.home);
             Buffer.add_char buf ';'
           | _ -> Buffer.add_string buf "d;"))
      st.times;
    Array.iter
      (fun c ->
        Buffer.add_char buf 'c';
        add_float c.ready;
        (match c.resident with
         | None -> Buffer.add_char buf '.'
         | Some p -> Buffer.add_string buf (string_of_int p));
        Buffer.add_char buf ';')
      st.comps;
    Buffer.contents buf
end
