(** Backend selection and the exact-vs-heuristic portfolio runner.

    The flow can schedule with three backends: the paper's DCSA heuristic
    ({!Dcsa_scheduler}), the branch-and-bound oracle ({!Exact}), or a
    portfolio that races both and keeps the better schedule.  The race is
    deterministic by construction: each arm runs to completion under its
    own virtual-tick budget (the exact arm's fuel is the cooperative
    cancellation point), and the "first finisher" is the arm with the
    better makespan, ties broken by fewer virtual ticks and then by arm
    index — never by wall-clock or domain-scheduling order.  The selected
    schedule is bit-identical to what the selected backend would have
    produced on its own, for every [jobs] value. *)

type backend = Heuristic | Exact | Portfolio

val backend_to_string : backend -> string
(** ["heuristic"], ["exact"] or ["portfolio"] — the CLI / config / JSON
    spelling. *)

val backend_of_string : string -> backend option

val all_backends : backend list

type arm = Heuristic_arm | Exact_arm

val arm_to_string : arm -> string

type decision = {
  backend : backend;  (** which backend produced this decision *)
  selected : arm;  (** the arm whose schedule was kept *)
  optimal : bool;  (** exact arm proved optimality within fuel *)
  truncated : bool;  (** exact arm ran out of fuel *)
  explored : int;  (** nodes the exact arm expanded *)
  fuel : int;  (** the exact arm's budget *)
  ticks : int;  (** virtual ticks consumed by the selected arm *)
  heuristic_makespan : float;
  makespan : float;  (** makespan of the selected schedule *)
}

val gap_percent : decision -> float
(** Relative improvement of the selected schedule over the heuristic,
    in percent (0 when the heuristic was selected or its makespan is 0). *)

val decision_to_json : decision -> Mfb_util.Json.t

val exact :
  ?fuel:int ->
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  Types.t * decision
(** {!Exact.schedule} wrapped into a (schedule, decision) pair. *)

val race :
  ?fuel:int ->
  ?jobs:int ->
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  Types.t * decision
(** Race the heuristic against the exact search on a {!Mfb_util.Pool} of
    up to [jobs] domains (default 1: both arms run sequentially with the
    same result).  Deterministic first-finisher selection as described
    above; the exact arm is seeded with the heuristic, so the portfolio
    never returns a schedule worse than either arm. *)
