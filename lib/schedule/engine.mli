(** Shared list-scheduling engine for the DCSA scheduler and the baseline.

    Implements the priority-driven loop of the paper's Alg. 1 over a
    fluid-residency state machine:

    - every produced fluid stays inside its producing component until it
      is consumed in place, transported to its consumer, or evicted into
      a flow channel because the component is needed;
    - a component becomes ready [wash(residue)] seconds after its residue
      leaves (paper Eq. 2);
    - consuming a parent's output in place (Case I) eliminates both the
      transport and the wash of that component.

    The [case1] flag selects the binding rule: with [case1 = true] the
    engine prefers the component of a same-kind parent whose output is
    still resident, choosing the lowest diffusion coefficient (the paper's
    Case I); with [case1 = false] every operation is bound to the
    qualified component with the earliest availability (the paper's
    baseline BA).  In both modes an operation that happens to land on its
    parent's component with a single unconsumed copy is executed in place,
    matching the paper's discussion of [5]'s assumption. *)

val run :
  ?priorities:float array ->
  case1:bool ->
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  Types.t
(** [run ~case1 ~tc g alloc] schedules every operation of [g] on the
    components of [alloc].  [priorities] overrides the longest-path
    priority values (one per operation) — the hook used by the
    multi-start scheduler; it affects only the dispatch order, never
    legality.

    @raise Invalid_argument if [tc <= 0], some operation kind of [g] has
    no allocated component, or [priorities] has the wrong length. *)

(** Step-wise access to the scheduling state machine, for exhaustive
    search over binding decisions ({!Exact}).  Every transition uses
    exactly the timing semantics of {!run}, so exact and heuristic
    results are directly comparable. *)
module Search : sig
  type snapshot

  val init :
    tc:float ->
    Mfb_bioassay.Seq_graph.t ->
    Mfb_component.Allocation.t ->
    snapshot
  (** Fresh state; same validation as {!run}. *)

  val ready_ops : snapshot -> int list
  (** Unscheduled operations whose parents are all scheduled. *)

  val candidates : snapshot -> int -> (int * int option) list
  (** [(component, in_place_parent)] choices for one ready operation; the
      in-place parent is induced by the component's resident fluid. *)

  val apply : snapshot -> int -> int * int option -> snapshot
  (** Schedule the operation on the chosen component; the input snapshot
      is unchanged. *)

  val complete : snapshot -> bool

  val current_makespan : snapshot -> float
  (** Maximum finish time among scheduled operations. *)

  val tails : Mfb_bioassay.Seq_graph.t -> float array
  (** Duration-only critical tail of every operation (transport-free,
      hence admissible).  Depends only on the graph — compute once per
      search and feed it to {!lower_bound}. *)

  val lower_bound : ?tails:float array -> snapshot -> float
  (** Admissible completion-time bound: current makespan joined with, for
      every unscheduled operation, its earliest conceivable start plus
      its duration-only critical tail.  [tails] (from {!tails}) skips
      recomputing the static tail table on every call. *)

  val signature : snapshot -> string
  (** Canonical encoding of the future-relevant state: per-operation
      progress, live-fluid production times and removal flags, and every
      component's (ready, resident) pair.  Equal signatures guarantee
      bit-identical futures, so a search may discard the snapshot whose
      accumulated makespan is no better — the dominance rule of
      {!Exact.schedule}. *)

  val to_schedule : snapshot -> Types.t
  (** @raise Invalid_argument when not {!complete}. *)
end
