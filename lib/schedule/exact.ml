module Search = Engine.Search
module Telemetry = Mfb_util.Telemetry

type t = {
  schedule : Types.t;
  optimal : bool;
  truncated : bool;
  explored : int;
  fuel : int;
  heuristic_makespan : float;
}

let default_fuel = 200_000

(* Branch-and-bound over the dispatch-order x binding space of the
   scheduling state machine.  Three ingredients keep small assays
   tractable and the node-expansion order reproducible:

   - an admissible lower bound from the critical-path relaxation
     (duration-only tails, computed once per search);
   - memoized dominance: snapshots with equal {!Search.signature} have
     bit-identical futures, so a revisit whose accumulated makespan is
     no better than the best one already expanded is pruned — this
     collapses the permutations of independent ready operations that
     reach the same state;
   - children are expanded best-bound-first with full deterministic
     tie-breaking (bound, operation id, component id, in-place parent),
     so the incumbent trajectory — and therefore the returned schedule —
     is a pure function of (graph, allocation, tc, fuel).

   Fuel is a virtual-tick budget (one tick per expanded node), never
   wall-clock, so runs are reproducible across hosts and [--jobs]
   settings. *)
let schedule ?(fuel = default_fuel) ~tc graph allocation =
  if fuel < 1 then invalid_arg "Exact.schedule: fuel < 1";
  (* Seed the incumbent with the heuristic so pruning bites immediately
     and the result can never regress below it. *)
  let heuristic = Engine.run ~case1:true ~tc graph allocation in
  let tails = Search.tails graph in
  let best = ref heuristic in
  let best_makespan = ref heuristic.makespan in
  let explored = ref 0 in
  let out_of_fuel = ref false in
  let memo : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let rec branch snap =
    if !explored >= fuel then out_of_fuel := true
    else begin
      incr explored;
      if Search.complete snap then begin
        let makespan = Search.current_makespan snap in
        if makespan < !best_makespan -. 1e-9 then begin
          best_makespan := makespan;
          best := Search.to_schedule snap
        end
      end
      else if Search.lower_bound ~tails snap < !best_makespan -. 1e-9 then begin
        let key = Search.signature snap in
        let makespan = Search.current_makespan snap in
        let dominated =
          match Hashtbl.find_opt memo key with
          | Some seen -> makespan >= seen -. 1e-9
          | None -> false
        in
        if dominated then Telemetry.incr ~cat:"schedule" "exact.dominated"
        else begin
          Hashtbl.replace memo key makespan;
          let children =
            List.concat_map
              (fun op ->
                List.map
                  (fun ((comp, in_place) as choice) ->
                    let child = Search.apply snap op choice in
                    ( Search.lower_bound ~tails child,
                      op, comp,
                      (match in_place with None -> -1 | Some p -> p),
                      child ))
                  (Search.candidates snap op))
              (Search.ready_ops snap)
          in
          let ordered =
            List.sort
              (fun (b1, o1, c1, p1, _) (b2, o2, c2, p2, _) ->
                let cmp = Float.compare b1 b2 in
                if cmp <> 0 then cmp
                else
                  let cmp = compare o1 o2 in
                  if cmp <> 0 then cmp
                  else
                    let cmp = compare c1 c2 in
                    if cmp <> 0 then cmp else compare p1 p2)
              children
          in
          List.iter
            (fun (bound, _, _, _, child) ->
              (* The incumbent may have improved since the child bounds
                 were computed; re-check before descending. *)
              if bound < !best_makespan -. 1e-9 then branch child)
            ordered
        end
      end
    end
  in
  branch (Search.init ~tc graph allocation);
  Telemetry.incr ~cat:"schedule" ~by:!explored "exact.explored";
  {
    schedule = !best;
    optimal = not !out_of_fuel;
    truncated = !out_of_fuel;
    explored = !explored;
    fuel;
    heuristic_makespan = heuristic.makespan;
  }
