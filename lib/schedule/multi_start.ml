type t = {
  schedule : Types.t;
  restarts : int;
  improved_over_first : float;
}

(* Split-then-reduce: every perturbed restart owns an RNG derived from
   the master generator *before* dispatch, and the best candidate is
   chosen by a fixed-order scan over the restart indices.  Both sides of
   the discipline make the result a pure function of (seed, restarts,
   noise) — the [jobs] count only decides how many domains execute the
   restarts. *)
let schedule ?(restarts = 16) ?(noise = 0.25) ?(jobs = 1) ~rng ~tc graph
    allocation =
  if restarts < 1 then invalid_arg "Multi_start.schedule: restarts < 1";
  if noise < 0. then invalid_arg "Multi_start.schedule: negative noise";
  let base = Mfb_bioassay.Seq_graph.priorities graph ~tc in
  let rngs = Mfb_util.Rng.split_n rng (restarts - 1) in
  let restart i =
    if i = 0 then Engine.run ~case1:true ~tc graph allocation
    else begin
      let rng = rngs.(i - 1) in
      let perturbed =
        Array.map
          (fun p -> p *. (1. -. noise +. Mfb_util.Rng.float rng (2. *. noise)))
          base
      in
      Engine.run ~priorities:perturbed ~case1:true ~tc graph allocation
    end
  in
  let candidates =
    Mfb_util.Pool.init ~label:"schedule-restart" ~jobs restarts restart
  in
  let first = candidates.(0) in
  let best = ref first in
  for i = 1 to restarts - 1 do
    if candidates.(i).Types.makespan < !best.Types.makespan -. 1e-9 then
      best := candidates.(i)
  done;
  {
    schedule = !best;
    restarts;
    improved_over_first = first.Types.makespan -. !best.Types.makespan;
  }
