module Json = Mfb_util.Json
module Pool = Mfb_util.Pool

type backend = Heuristic | Exact | Portfolio

let backend_to_string = function
  | Heuristic -> "heuristic"
  | Exact -> "exact"
  | Portfolio -> "portfolio"

let backend_of_string = function
  | "heuristic" -> Some Heuristic
  | "exact" -> Some Exact
  | "portfolio" -> Some Portfolio
  | _ -> None

let all_backends = [ Heuristic; Exact; Portfolio ]

type arm = Heuristic_arm | Exact_arm

let arm_to_string = function
  | Heuristic_arm -> "heuristic"
  | Exact_arm -> "exact"

type decision = {
  backend : backend;
  selected : arm;
  optimal : bool;
  truncated : bool;
  explored : int;
  fuel : int;
  ticks : int;
  heuristic_makespan : float;
  makespan : float;
}

let gap_percent d =
  if d.heuristic_makespan <= 0. then 0.
  else (d.heuristic_makespan -. d.makespan) /. d.heuristic_makespan *. 100.

let decision_to_json d =
  Json.Obj
    [
      ("name", Json.String (backend_to_string d.backend));
      ("selected", Json.String (arm_to_string d.selected));
      ("optimal", Json.Bool d.optimal);
      ("truncated", Json.Bool d.truncated);
      ("explored", Json.Int d.explored);
      ("fuel", Json.Int d.fuel);
      ("ticks", Json.Int d.ticks);
      ("heuristic_makespan_s", Json.Float d.heuristic_makespan);
      ("makespan_s", Json.Float d.makespan);
      ("gap_percent", Json.Float (gap_percent d));
    ]

let exact ?(fuel = Exact.default_fuel) ~tc graph allocation =
  let e = Exact.schedule ~fuel ~tc graph allocation in
  ( e.Exact.schedule,
    {
      backend = Exact;
      selected = Exact_arm;
      optimal = e.optimal;
      truncated = e.truncated;
      explored = e.explored;
      fuel = e.fuel;
      ticks = e.explored;
      heuristic_makespan = e.heuristic_makespan;
      makespan = e.schedule.makespan;
    } )

(* Both arms run to completion under their own budgets: the heuristic
   arm is a single list-scheduling pass, the exact arm is bounded by its
   fuel — that budget *is* the cooperative cancellation, so no arm is
   ever interrupted at a wall-clock-dependent point.  "First finisher"
   is decided on virtual ticks (heuristic: one per scheduled operation;
   exact: one per expanded node), never on elapsed time, so the winner —
   and the returned schedule — is a pure function of
   (graph, allocation, tc, fuel), identical for every [jobs] value. *)
let race ?(fuel = Exact.default_fuel) ?(jobs = 1) ~tc graph allocation =
  let n_ops = Mfb_bioassay.Seq_graph.n_ops graph in
  let arms =
    Pool.init ~label:"portfolio-arm" ~jobs 2 (function
      | 0 ->
        let sched = Engine.run ~case1:true ~tc graph allocation in
        `Heuristic sched
      | _ -> `Exact (Exact.schedule ~fuel ~tc graph allocation))
  in
  let heur =
    match arms.(0) with `Heuristic s -> s | `Exact _ -> assert false
  in
  let e = match arms.(1) with `Exact e -> e | `Heuristic _ -> assert false in
  let candidates =
    [
      (heur.Types.makespan, n_ops, 0, Heuristic_arm, heur);
      (e.Exact.schedule.makespan, e.explored, 1, Exact_arm, e.Exact.schedule);
    ]
  in
  let _, ticks, _, selected, sched =
    List.fold_left
      (fun ((m1, t1, i1, _, _) as a) ((m2, t2, i2, _, _) as b) ->
        let cmp = Float.compare m1 m2 in
        let cmp = if cmp <> 0 then cmp else compare t1 t2 in
        let cmp = if cmp <> 0 then cmp else compare i1 i2 in
        if cmp <= 0 then a else b)
      (List.hd candidates) (List.tl candidates)
  in
  ( sched,
    {
      backend = Portfolio;
      selected;
      optimal = e.optimal;
      truncated = e.truncated;
      explored = e.explored;
      fuel = e.fuel;
      ticks;
      heuristic_makespan = heur.makespan;
      makespan = sched.makespan;
    } )
