(** Exact (branch-and-bound) binding and scheduling for small bioassays.

    Explores every dispatch order and binding choice of the scheduling
    state machine (via {!Engine.Search}, so timing semantics are identical
    to the heuristics) and returns a completion-time-optimal schedule
    within a virtual-tick fuel budget.  The search prunes with the
    admissible critical-path lower bound and with memoized dominance
    (snapshots whose {!Engine.Search.signature} was already expanded at a
    no-worse accumulated makespan are discarded), and expands children
    best-bound-first under a total deterministic order — the result is a
    pure function of (graph, allocation, tc, fuel), independent of host
    and [--jobs] settings.  Exponential in the worst case; intended for
    assays of up to about a dozen operations, as the ground-truth oracle
    for {!Dcsa_scheduler} and the heuristic flow. *)

type t = {
  schedule : Types.t;
      (** best schedule found; never worse than the DCSA heuristic *)
  optimal : bool;  (** true when the search space was exhausted *)
  truncated : bool;
      (** true when the fuel budget ran out first; the incumbent (at
          worst the heuristic seed) is returned *)
  explored : int;  (** search nodes expanded (= fuel consumed) *)
  fuel : int;      (** the budget the search ran under *)
  heuristic_makespan : float;
      (** makespan of the DCSA heuristic seed, for gap reporting *)
}

val default_fuel : int
(** 200000 expanded nodes. *)

val schedule :
  ?fuel:int ->
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  t
(** [schedule ~tc g alloc] minimises the makespan exactly within [fuel]
    (default {!default_fuel}) expanded nodes; when the budget is hit,
    [truncated] is true, [optimal] is false and the best incumbent is
    returned.  The search is seeded with the DCSA heuristic so the
    result is never worse than {!Dcsa_scheduler.schedule}.
    @raise Invalid_argument if [fuel < 1] or under the same conditions
    as {!Engine.run}. *)
