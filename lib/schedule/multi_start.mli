(** Multi-start randomized list scheduling.

    The paper's Alg. 1 dispatches operations by a fixed longest-path
    priority; ties and near-ties make the outcome sensitive to the
    dispatch order.  This metaheuristic layer re-runs the engine with
    randomly perturbed priorities and keeps the best schedule — a cheap,
    classic way to shave a few percent off a constructive heuristic.
    The first restart always uses the unperturbed priorities, so the
    result is never worse than {!Dcsa_scheduler.schedule}. *)

type t = {
  schedule : Types.t;     (** best schedule found *)
  restarts : int;         (** engine runs performed *)
  improved_over_first : float;
      (** makespan reduction vs the unperturbed run, in seconds *)
}

val schedule :
  ?restarts:int ->
  ?noise:float ->
  ?jobs:int ->
  rng:Mfb_util.Rng.t ->
  tc:float ->
  Mfb_bioassay.Seq_graph.t ->
  Mfb_component.Allocation.t ->
  t
(** [schedule ~rng ~tc g alloc] runs [restarts] (default 16) engine
    passes; each perturbed pass scales every priority by a uniform factor
    in [\[1 - noise, 1 + noise\]] (default [noise = 0.25]).

    Restarts run on up to [jobs] domains (default 1: sequential).  Each
    perturbed restart draws from its own generator, split off [rng]
    before dispatch ({!Mfb_util.Rng.split_n}), and the winner is reduced
    in fixed restart-index order, so the result is bit-for-bit identical
    for every [jobs] value.
    @raise Invalid_argument if [restarts < 1], [noise < 0] or
    [jobs < 1]. *)
