(** Batch dispatch onto the fleet, with retry and degradation.

    Jobs run in {e waves}: each wave assigns at most one job per live
    worker (jobs in batch order, slots in slot order, skipping each
    job's excluded slots), sends every request, then collects responses
    in job order under a per-job wall-clock deadline.  A fault — EOF
    (crash), deadline (stall), an unparseable or mismatched response
    line (garbage / truncation) — kills the worker via
    {!Supervisor.fail}, adds the slot to the job's excluded set, and
    retries the job on another worker in a later wave, at most
    [max_retries] extra attempts.

    Degradation is the answer-preserving escape hatch: a job whose
    retries are exhausted, whose excluded set covers every live slot,
    or that finds the fleet entirely down is computed in-process via
    the [degrade] callback.  Since workers and the in-process path run
    the identical deterministic flow, every recovery route yields the
    same payload bytes — faults can change counters and latency, never
    answers.

    Result order is by construction the input order (slots of an array
    indexed by job position), so the fleet is a drop-in replacement for
    the in-process pool path. *)

type config = {
  timeout : float;      (** per-job response deadline, seconds *)
  hb_timeout : float;   (** heartbeat deadline, seconds *)
  max_retries : int;    (** extra attempts before degradation *)
  heartbeat : bool;     (** ping live workers at batch start *)
}

val default_config : config
(** 30 s deadline, 5 s heartbeat, 2 retries, heartbeat on. *)

type stats = {
  mutable dispatched : int;  (** requests answered by a worker *)
  mutable retries : int;
  mutable degraded : int;
  mutable crashes : int;     (** EOF before a response *)
  mutable timeouts : int;    (** deadline expiries *)
  mutable garbage : int;     (** unparseable or mismatched responses *)
  mutable heartbeat_failures : int;
  mutable routed : int;
      (** jobs sent to their [route]-preferred slot — how often the
          consistent-hash partition actually held *)
}

val make_stats : unit -> stats

type meta = {
  m_slot : int option;
      (** slot that answered; [None] when the job was degraded *)
  m_attempts : int;
      (** total attempts including the answering one, so
          [m_attempts - 1] is the retry count *)
}
(** Per-job dispatch attribution, returned alongside each payload so
    the serving tier can log and trace which slot answered and how many
    attempts it took. *)

val run_batch :
  ?route:('job -> int option) ->
  cfg:config ->
  sup:Supervisor.t ->
  stats:stats ->
  degrade:('job -> 'payload) ->
  to_line:('job -> wire_id:string -> string) ->
  of_line:(wire_id:string -> slot:int -> string -> 'payload option) ->
  'job list ->
  ('payload * meta) list
(** [run_batch ~cfg ~sup ~stats ~degrade ~to_line ~of_line jobs] returns
    one payload (with its dispatch {!meta}) per job, in order.
    [to_line] serializes a job as a wire request carrying [wire_id];
    [of_line] parses a response line read from [slot], returning [None]
    unless it is a well-formed answer to [wire_id] (triggering the
    garbage path).  [route] names each job's preferred slot (e.g. the
    consistent-hash owner of its cache key): the job is assigned there
    when that slot is live, unexcluded and free this wave, and falls
    back to the ordinary slot-order scan otherwise — a preference,
    never a correctness condition, since workers are answer-equivalent.
    Counter increments mirror into {!Mfb_util.Telemetry} under the
    ["cluster"] category. *)
