module Json = Mfb_util.Json
module Telemetry = Mfb_util.Telemetry
module Histogram = Mfb_util.Histogram
module P = Mfb_server.Protocol
module Server = Mfb_server.Server

type config = {
  size : int;
  worker_argv : int -> string array;
  timeout : float;
  hb_timeout : float;
  max_retries : int;
  backoff_cap : int;
  heartbeat : bool;
  route : (Server.job -> int option) option;
}

let default_config ~worker_argv ~size =
  {
    size;
    worker_argv;
    timeout = Dispatcher.default_config.Dispatcher.timeout;
    hb_timeout = Dispatcher.default_config.Dispatcher.hb_timeout;
    max_retries = Dispatcher.default_config.Dispatcher.max_retries;
    backoff_cap = 8;
    heartbeat = Dispatcher.default_config.Dispatcher.heartbeat;
    route = None;
  }

type t = {
  cfg : config;
  sup : Supervisor.t;
  dstats : Dispatcher.stats;
  slot_bytes : Histogram.t array;  (* reply line bytes per slot *)
  mutable stopped : bool;
}

let create cfg =
  if cfg.size < 1 then invalid_arg "Cluster.create: size < 1";
  (* A worker dying mid-write must be a fault, not a fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  {
    cfg;
    sup =
      Supervisor.create ~size:cfg.size ~backoff_cap:cfg.backoff_cap
        cfg.worker_argv;
    dstats = Dispatcher.make_stats ();
    slot_bytes = Array.init cfg.size (fun _ -> Histogram.create ());
    stopped = false;
  }

(* The wire request for a job is its original submit spec: the worker
   re-resolves and re-runs the identical deterministic computation, so
   a worker answer and an in-process answer are the same bytes.  When
   the supervisor side has a telemetry sink, the wire id doubles as
   trace context, asking the worker to ship its span tree back. *)
let job_to_line (job : Server.job) ~wire_id =
  P.request_to_line
    (P.Submit
       {
         id = wire_id;
         priority = 0;
         deadline = None;
         flow = job.Server.flow;
         spec = job.Server.spec;
         overrides = job.Server.overrides;
         trace = (if Telemetry.active () then Some wire_id else None);
       })

let payload_of_line t ~wire_id ~slot line =
  match P.response_of_line line with
  | Ok (P.Job_result { id; result; spans; _ }) when id = wire_id ->
    Histogram.add t.slot_bytes.(slot) (float_of_int (String.length line));
    let nodes =
      match spans with
      | Some (Json.List l) ->
        List.filter_map
          (fun j -> Stdlib.Result.to_option (Telemetry.node_of_json j))
          l
      | _ -> []
    in
    Some (result, nodes)
  | Ok _ | Error _ -> None

let dispatch t jobs =
  let dcfg =
    {
      Dispatcher.timeout = t.cfg.timeout;
      hb_timeout = t.cfg.hb_timeout;
      max_retries = t.cfg.max_retries;
      heartbeat = t.cfg.heartbeat;
    }
  in
  Dispatcher.run_batch ?route:t.cfg.route ~cfg:dcfg ~sup:t.sup ~stats:t.dstats
    ~degrade:(fun job ->
      (Server.run_job ~trace:[ ("degraded", Telemetry.Bool true) ] job, []))
    ~to_line:job_to_line ~of_line:(payload_of_line t) jobs
  |> List.map (fun ((payload, nodes), (meta : Dispatcher.meta)) ->
         {
           Server.d_payload = payload;
           d_slot = meta.Dispatcher.m_slot;
           d_attempts = meta.Dispatcher.m_attempts;
           d_spans = nodes;
         })

let stats t = t.dstats
let respawns t = Supervisor.respawns t.sup

let slots_json t =
  Json.List
    (List.init t.cfg.size (fun i ->
         let respawns, streak, ok, last = Supervisor.slot_health t.sup i in
         Json.Obj
           [
             ("slot", Json.Int i);
             ("respawns", Json.Int respawns);
             ("consecutive_failures", Json.Int streak);
             ("ok", Json.Int ok);
             ("last_outcome", Json.String last);
             ("reply_bytes", Histogram.snapshot_json t.slot_bytes.(i));
           ]))

let stats_json t =
  let d = t.dstats in
  Json.Obj
    [
      ("fleet", Json.Int t.cfg.size);
      ("respawns", Json.Int (Supervisor.respawns t.sup));
      ("spawn_failures", Json.Int (Supervisor.spawn_failures t.sup));
      ("dispatched", Json.Int d.Dispatcher.dispatched);
      ("retries", Json.Int d.Dispatcher.retries);
      ("degraded", Json.Int d.Dispatcher.degraded);
      ("crashes", Json.Int d.Dispatcher.crashes);
      ("timeouts", Json.Int d.Dispatcher.timeouts);
      ("garbage", Json.Int d.Dispatcher.garbage);
      ("heartbeat_failures", Json.Int d.Dispatcher.heartbeat_failures);
      ("routed", Json.Int d.Dispatcher.routed);
      ("slots", slots_json t);
    ]

(* Per-slot reply-size series for the server's Prometheus exposition:
   one metric name, one escaped slot label value per fleet member, so
   scrapers can aggregate across the fleet or facet by slot. *)
let prometheus t buf =
  Array.iteri
    (fun i h ->
      Histogram.prometheus ~help:"reply line bytes from fleet slots"
        ~labels:[ ("slot", string_of_int i) ]
        ~header:(i = 0) ~name:"dcsa_fleet_reply_bytes" buf h)
    t.slot_bytes

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Supervisor.stop t.sup
  end
