module Json = Mfb_util.Json
module P = Mfb_server.Protocol
module Server = Mfb_server.Server

type config = {
  size : int;
  worker_argv : int -> string array;
  timeout : float;
  hb_timeout : float;
  max_retries : int;
  backoff_cap : int;
  heartbeat : bool;
}

let default_config ~worker_argv ~size =
  {
    size;
    worker_argv;
    timeout = Dispatcher.default_config.Dispatcher.timeout;
    hb_timeout = Dispatcher.default_config.Dispatcher.hb_timeout;
    max_retries = Dispatcher.default_config.Dispatcher.max_retries;
    backoff_cap = 8;
    heartbeat = Dispatcher.default_config.Dispatcher.heartbeat;
  }

type t = {
  cfg : config;
  sup : Supervisor.t;
  dstats : Dispatcher.stats;
  mutable stopped : bool;
}

let create cfg =
  if cfg.size < 1 then invalid_arg "Cluster.create: size < 1";
  (* A worker dying mid-write must be a fault, not a fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  {
    cfg;
    sup =
      Supervisor.create ~size:cfg.size ~backoff_cap:cfg.backoff_cap
        cfg.worker_argv;
    dstats = Dispatcher.make_stats ();
    stopped = false;
  }

(* The wire request for a job is its original submit spec: the worker
   re-resolves and re-runs the identical deterministic computation, so
   a worker answer and an in-process answer are the same bytes. *)
let job_to_line (job : Server.job) ~wire_id =
  P.request_to_line
    (P.Submit
       {
         id = wire_id;
         priority = 0;
         deadline = None;
         flow = job.Server.flow;
         spec = job.Server.spec;
         overrides = job.Server.overrides;
       })

let payload_of_line ~wire_id line =
  match P.response_of_line line with
  | Ok (P.Job_result { id; result; _ }) when id = wire_id -> Some result
  | Ok _ | Error _ -> None

let dispatch t jobs =
  let dcfg =
    {
      Dispatcher.timeout = t.cfg.timeout;
      hb_timeout = t.cfg.hb_timeout;
      max_retries = t.cfg.max_retries;
      heartbeat = t.cfg.heartbeat;
    }
  in
  Dispatcher.run_batch ~cfg:dcfg ~sup:t.sup ~stats:t.dstats
    ~degrade:Server.run_job ~to_line:job_to_line ~of_line:payload_of_line
    jobs

let stats t = t.dstats
let respawns t = Supervisor.respawns t.sup

let stats_json t =
  let d = t.dstats in
  Json.Obj
    [
      ("fleet", Json.Int t.cfg.size);
      ("respawns", Json.Int (Supervisor.respawns t.sup));
      ("spawn_failures", Json.Int (Supervisor.spawn_failures t.sup));
      ("dispatched", Json.Int d.Dispatcher.dispatched);
      ("retries", Json.Int d.Dispatcher.retries);
      ("degraded", Json.Int d.Dispatcher.degraded);
      ("crashes", Json.Int d.Dispatcher.crashes);
      ("timeouts", Json.Int d.Dispatcher.timeouts);
      ("garbage", Json.Int d.Dispatcher.garbage);
      ("heartbeat_failures", Json.Int d.Dispatcher.heartbeat_failures);
    ]

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Supervisor.stop t.sup
  end
