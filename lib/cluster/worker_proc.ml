type t = {
  slot_ : int;
  pid_ : int;
  to_worker : out_channel;
  from_worker : Unix.file_descr;
  mutable pending : string;  (* bytes read past the last returned line *)
  mutable alive : bool;
  mutable reaped : bool;
  mutable closed : bool;
}

type read_result = Line of string | Timeout | Eof

let spawn ~slot argv =
  if Array.length argv = 0 then invalid_arg "Worker_proc.spawn: empty argv";
  (* cloexec on every end: create_process dup2s the child ends onto the
     child's stdio (dup2 clears the flag), so the child sees plain
     stdin/stdout while no sibling spawned later inherits these pipes —
     keeping EOF-on-crash detection sharp. *)
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process argv.(0) argv in_read out_write Unix.stderr
  in
  Unix.close in_read;
  Unix.close out_write;
  {
    slot_ = slot;
    pid_ = pid;
    to_worker = Unix.out_channel_of_descr in_write;
    from_worker = out_read;
    pending = "";
    alive = true;
    reaped = false;
    closed = false;
  }

let slot t = t.slot_
let pid t = t.pid_

let send_line t line =
  if not t.alive then Error "worker is dead"
  else
    match
      output_string t.to_worker line;
      output_char t.to_worker '\n';
      flush t.to_worker
    with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let recv_line ?(max_bytes = Mfb_server.Protocol.default_max_line_bytes)
    ~timeout t =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt t.pending '\n' with
    | Some i ->
      let line = String.sub t.pending 0 i in
      t.pending <-
        String.sub t.pending (i + 1) (String.length t.pending - i - 1);
      Line line
    | None ->
      if String.length t.pending > max_bytes then begin
        let line = t.pending in
        t.pending <- "";
        Line line
      end
      else begin
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Timeout
        else
          match Unix.select [ t.from_worker ] [] [] remaining with
          | [], _, _ -> Timeout
          | _ ->
            (match Unix.read t.from_worker chunk 0 (Bytes.length chunk) with
             | 0 ->
               if t.pending = "" then Eof
               else begin
                 (* partial line at EOF: surface it, then EOF next call *)
                 let line = t.pending in
                 t.pending <- "";
                 Line line
               end
             | n ->
               t.pending <- t.pending ^ Bytes.sub_string chunk 0 n;
               go ()
             | exception Unix.Unix_error ((Unix.EBADF | Unix.EPIPE), _, _) ->
               Eof)
      end
  in
  go ()

let ping ~timeout t =
  match send_line t Mfb_server.Protocol.(request_to_line Stats) with
  | Error _ -> false
  | Ok () ->
    (match recv_line ~timeout t with
     | Line line ->
       (match Mfb_server.Protocol.response_of_line line with
        | Ok (Mfb_server.Protocol.Stats_reply _) -> true
        | _ -> false)
     | Timeout | Eof -> false)

let reap t ~blocking =
  if not t.reaped then begin
    let flags = if blocking then [] else [ Unix.WNOHANG ] in
    match Unix.waitpid flags t.pid_ with
    | 0, _ -> ()
    | _, _ -> t.reaped <- true
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> t.reaped <- true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end

let reap_if_dead t =
  reap t ~blocking:false;
  if t.reaped then t.alive <- false;
  t.reaped

let kill t =
  if not t.closed then begin
    t.closed <- true;
    t.alive <- false;
    if not t.reaped then
      (try Unix.kill t.pid_ Sys.sigkill with Unix.Unix_error _ -> ());
    reap t ~blocking:true;
    close_out_noerr t.to_worker;
    (try Unix.close t.from_worker with Unix.Unix_error _ -> ())
  end
