(** The worker fleet, packaged as a {!Mfb_server.Server} dispatch hook.

    [create] builds a {!Supervisor} over [size] spawned
    [dcsa_synth worker] processes and returns a handle whose
    {!dispatch} has exactly the signature of the server's batch
    runner: resolved jobs in, summary payloads out, order preserved.
    Wire each side up with

    {[
      let cluster = Cluster.create cfg in
      let server =
        Server.create
          { Server.default_config with
            dispatch = Some (Cluster.dispatch cluster);
            extra_stats =
              Some (fun () -> [ ("cluster", Cluster.stats_json cluster) ]);
          }
    ]}

    The determinism contract of the serving layer extends to the fleet:
    workers recompute the identical deterministic flow from the job's
    original spec and overrides (so [worker_argv] must start workers
    with the same base config as the server), recovery re-dispatches or
    degrades to the same in-process computation, and response payloads
    are therefore byte-identical to [--fleet 0] for every fleet size
    and every fault schedule.  Faults move counters, never bytes.

    [create] ignores SIGPIPE process-wide: a write into a crashed
    worker's pipe must surface as a per-job fault, not kill the
    service. *)

type config = {
  size : int;                        (** worker processes *)
  worker_argv : int -> string array; (** slot -> argv; must establish the
                                         server's base flow config *)
  timeout : float;                   (** per-job response deadline, s *)
  hb_timeout : float;                (** heartbeat deadline, s *)
  max_retries : int;                 (** extra attempts before degrading *)
  backoff_cap : int;                 (** max respawn backoff, ticks *)
  heartbeat : bool;                  (** ping workers at batch start *)
  route : (Mfb_server.Server.job -> int option) option;
      (** preferred slot per job (e.g. the consistent-hash owner of its
          cache key); a placement preference, never a correctness
          condition — see {!Dispatcher.run_batch} *)
}

val default_config : worker_argv:(int -> string array) -> size:int -> config
(** {!Dispatcher.default_config} deadlines, retries 2, backoff cap 8,
    heartbeat on, no route. *)

type t

val create : config -> t
(** @raise Invalid_argument if [size < 1]. *)

val dispatch :
  t -> Mfb_server.Server.job list -> Mfb_server.Server.dispatch_result list
(** Run one batch on the fleet (see {!Dispatcher.run_batch}); falls back
    to {!Mfb_server.Server.run_job} in-process when a job exhausts its
    retries or the fleet is fully down.  Each result carries the
    answering slot, the attempt count, and — when the supervisor side
    has a telemetry sink installed — the worker's span tree parsed from
    the reply. *)

val stats : t -> Dispatcher.stats
val respawns : t -> int

val stats_json : t -> Mfb_util.Json.t
(** Fleet size plus respawn / spawn-failure / retry / degradation /
    crash / timeout / garbage / heartbeat / routed counters, and a
    ["slots"] array of per-slot health: respawns, consecutive failures,
    dispatch successes, last outcome, and a reply-size histogram
    snapshot. *)

val prometheus : t -> Buffer.t -> unit
(** Append the per-slot reply-size histograms to a Prometheus text
    exposition: one [dcsa_fleet_reply_bytes] metric with a [slot] label
    per fleet member — wire this as the server's [extra_prometheus]. *)

val stop : t -> unit
(** Kill and reap every worker.  Idempotent. *)
