module Json = Mfb_util.Json
module P = Mfb_server.Protocol
module Server = Mfb_server.Server

let respond oc resp =
  output_string oc (P.response_to_line resp);
  output_char oc '\n';
  flush oc

(* Answer one resolved submit: the same computation the in-process
   server path runs, so recovery by re-dispatch (or by degradation) is
   answer-preserving by construction. *)
let answer ~config ~id ~flow ~spec ~overrides =
  match Server.resolve ~base:config ~flow ~overrides spec with
  | Error reason -> P.Rejected { op = "submit"; id; reason }
  | Ok job ->
    let payload = Server.run_job job in
    P.Job_result
      { id; key = Mfb_server.Cache_key.to_hex job.Server.key; result = payload }

let run ?(fault = Fault.empty) ?(index = 0) ~config ic oc =
  let jobs_done = ref 0 in
  let rec loop () =
    match P.input_line_bounded ic with
    | P.Eof -> ()
    | P.Oversized n ->
      respond oc
        (P.Bad_request
           {
             id = None;
             message =
               Printf.sprintf "line too long: %d bytes exceed the %d-byte limit"
                 n P.default_max_line_bytes;
           });
      loop ()
    | P.Line line ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then loop ()
      else begin
        (match P.request_of_line trimmed with
         | Error message -> respond oc (P.Bad_request { id = None; message })
         | Ok (P.Submit { id; flow; spec; overrides; _ }) ->
           let job = !jobs_done in
           incr jobs_done;
           (match Fault.lookup fault ~worker:index ~job with
            | Some Fault.Crash -> exit 3
            | Some Fault.Stall ->
              (* Never answer; if the dispatcher's deadline somehow does
                 not fire, die eventually rather than leak forever. *)
              Unix.sleepf 3600.0;
              exit 3
            | Some Fault.Garbage ->
              output_string oc "%% corrupted response line %%\n";
              flush oc
            | Some Fault.Truncate ->
              let full =
                P.response_to_line (answer ~config ~id ~flow ~spec ~overrides)
              in
              output_string oc (String.sub full 0 (String.length full / 2));
              flush oc;
              exit 3
            | Some (Fault.Slow s) ->
              Unix.sleepf s;
              respond oc (answer ~config ~id ~flow ~spec ~overrides)
            | None -> respond oc (answer ~config ~id ~flow ~spec ~overrides))
         | Ok P.Stats ->
           respond oc
             (P.Stats_reply
                (Json.Obj
                   [ ("worker", Json.Int index);
                     ("jobs", Json.Int !jobs_done) ]))
         | Ok P.Shutdown ->
           respond oc
             (P.Goodbye
                (Json.Obj
                   [ ("worker", Json.Int index);
                     ("jobs", Json.Int !jobs_done) ]));
           raise Exit
         | Ok (P.Status _ | P.Result _) ->
           respond oc
             (P.Bad_request
                {
                  id = None;
                  message = "workers answer submit/stats/shutdown only";
                }));
        loop ()
      end
  in
  try loop () with Exit -> ()
