module Json = Mfb_util.Json
module Telemetry = Mfb_util.Telemetry
module P = Mfb_server.Protocol
module Server = Mfb_server.Server

let respond oc resp =
  output_string oc (P.response_to_line resp);
  output_char oc '\n';
  flush oc

(* Answer one resolved submit: the same computation the in-process
   server path runs, so recovery by re-dispatch (or by degradation) is
   answer-preserving by construction.  When the submit carries trace
   context, the computation runs under a fresh per-request sink and the
   resulting span forest ships back in the reply — the payload bytes
   are identical either way, only the optional ["spans"] field is
   added.  Under [vclock] the worker clock is frozen at 0, so shipped
   span trees are a pure function of the computation structure. *)
let answer ?(vclock = false) ~index ~config ~id ~flow ~spec ~overrides ~trace
    () =
  match Server.resolve ~base:config ~flow ~overrides spec with
  | Error reason -> P.Rejected { op = "submit"; id; reason }
  | Ok job ->
    let key = Mfb_server.Cache_key.to_hex job.Server.key in
    (match trace with
     | None ->
       let payload = Server.run_job job in
       P.Job_result { id; key; result = payload; spans = None }
     | Some ctx ->
       let saved = Telemetry.installed_sink () in
       Telemetry.uninstall ();
       let clock =
         if vclock then fun () -> 0.0 else Unix.gettimeofday
       in
       let sink = Telemetry.make_sink ~clock () in
       Telemetry.install sink;
       let payload =
         Fun.protect
           ~finally:(fun () ->
             Telemetry.uninstall ();
             match saved with
             | Some s -> Telemetry.install s
             | None -> ())
           (fun () ->
             Server.run_job
               ~trace:
                 [ ("ctx", Telemetry.Str ctx);
                   ("worker", Telemetry.Int index) ]
               job)
       in
       let spans =
         Json.List
           (List.map Telemetry.node_to_json
              (Telemetry.spans ~max_depth:4 sink))
       in
       P.Job_result { id; key; result = payload; spans = Some spans })

let run ?(fault = Fault.empty) ?(index = 0) ?(vclock = false) ~config ic oc =
  let jobs_done = ref 0 in
  let rec loop () =
    match P.input_line_bounded ic with
    | P.Eof -> ()
    | P.Oversized n ->
      respond oc
        (P.Bad_request
           {
             id = None;
             message =
               Printf.sprintf "line too long: %d bytes exceed the %d-byte limit"
                 n P.default_max_line_bytes;
           });
      loop ()
    | P.Line line ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then loop ()
      else begin
        (match P.request_of_line trimmed with
         | Error message -> respond oc (P.Bad_request { id = None; message })
         | Ok (P.Submit { id; flow; spec; overrides; trace; _ }) ->
           let job = !jobs_done in
           incr jobs_done;
           let answer () =
             answer ~vclock ~index ~config ~id ~flow ~spec ~overrides ~trace
               ()
           in
           (match Fault.lookup fault ~worker:index ~job with
            | Some Fault.Crash -> exit 3
            | Some Fault.Stall ->
              (* Never answer; if the dispatcher's deadline somehow does
                 not fire, die eventually rather than leak forever. *)
              Unix.sleepf 3600.0;
              exit 3
            | Some Fault.Garbage ->
              output_string oc "%% corrupted response line %%\n";
              flush oc
            | Some Fault.Truncate ->
              let full = P.response_to_line (answer ()) in
              output_string oc (String.sub full 0 (String.length full / 2));
              flush oc;
              exit 3
            | Some (Fault.Slow s) ->
              Unix.sleepf s;
              respond oc (answer ())
            | None -> respond oc (answer ()))
         | Ok P.Stats ->
           respond oc
             (P.Stats_reply
                (Json.Obj
                   [ ("worker", Json.Int index);
                     ("jobs", Json.Int !jobs_done) ]))
         | Ok P.Shutdown ->
           respond oc
             (P.Goodbye
                (Json.Obj
                   [ ("worker", Json.Int index);
                     ("jobs", Json.Int !jobs_done) ]));
           raise Exit
         | Ok (P.Status _ | P.Result _ | P.Repair _ | P.Stats_prom) ->
           respond oc
             (P.Bad_request
                {
                  id = None;
                  message = "workers answer submit/stats/shutdown only";
                }));
        loop ()
      end
  in
  try loop () with Exit -> ()
