module Telemetry = Mfb_util.Telemetry

type config = {
  timeout : float;
  hb_timeout : float;
  max_retries : int;
  heartbeat : bool;
}

let default_config =
  { timeout = 30.0; hb_timeout = 5.0; max_retries = 2; heartbeat = true }

type stats = {
  mutable dispatched : int;
  mutable retries : int;
  mutable degraded : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable garbage : int;
  mutable heartbeat_failures : int;
  mutable routed : int;
}

let make_stats () =
  {
    dispatched = 0;
    retries = 0;
    degraded = 0;
    crashes = 0;
    timeouts = 0;
    garbage = 0;
    heartbeat_failures = 0;
    routed = 0;
  }

type meta = {
  m_slot : int option;  (* answering slot; None when degraded *)
  m_attempts : int;     (* total attempts including the answering one *)
}

type 'job pending = {
  index : int;
  job : 'job;
  mutable excluded : int list;  (* slots that already failed this job *)
  mutable attempts : int;       (* failed attempts so far *)
}

let bump name = Telemetry.incr ~cat:"cluster" name

let run_batch ?route ~cfg ~sup ~stats ~degrade ~to_line ~of_line jobs =
  let n = List.length jobs in
  let results = Array.make n None in
  let pending =
    ref
      (List.mapi
         (fun index job -> { index; job; excluded = []; attempts = 0 })
         jobs)
  in
  let degrade_job p =
    stats.degraded <- stats.degraded + 1;
    bump "degraded";
    results.(p.index) <-
      Some (degrade p.job, { m_slot = None; m_attempts = p.attempts + 1 })
  in
  (* A fault burns one attempt and poisons the slot for this job; the
     job either retries in a later wave or degrades in-process. *)
  let fault p slot ~outcome ~counter =
    counter ();
    Supervisor.fail ~outcome sup slot;
    p.excluded <- slot :: p.excluded;
    p.attempts <- p.attempts + 1;
    if p.attempts > cfg.max_retries then degrade_job p
    else begin
      stats.retries <- stats.retries + 1;
      bump "retries"
    end
  in
  Supervisor.tick sup;
  if cfg.heartbeat then
    List.iter
      (fun (slot, w) ->
        if not (Worker_proc.ping ~timeout:cfg.hb_timeout w) then begin
          stats.heartbeat_failures <- stats.heartbeat_failures + 1;
          bump "heartbeat_failures";
          Supervisor.fail ~outcome:"heartbeat" sup slot
        end)
      (Supervisor.live sup);
  while !pending <> [] do
    let live = Supervisor.live sup in
    if live = [] then begin
      (* fleet fully down: graceful degradation for the whole batch *)
      List.iter degrade_job !pending;
      pending := []
    end
    else begin
      (* one job per live slot per wave, jobs in batch order *)
      let taken = Hashtbl.create 8 in
      let wave = ref [] in
      List.iter
        (fun p ->
          let avail =
            List.filter
              (fun (slot, _) ->
                (not (List.mem slot p.excluded))
                && not (Hashtbl.mem taken slot))
              live
          in
          (* The job's shard owner wins when it is available this wave;
             otherwise the slot-order scan keeps waves full.  Preference
             only — any worker computes the same bytes. *)
          let preferred =
            match route with
            | None -> None
            | Some f ->
              (match f p.job with
               | Some s ->
                 List.find_opt (fun (slot, _) -> slot = s) avail
               | None -> None)
          in
          match (preferred, avail) with
          | Some (slot, w), _ ->
            stats.routed <- stats.routed + 1;
            bump "routed";
            Hashtbl.add taken slot ();
            wave := (p, slot, w) :: !wave
          | None, (slot, w) :: _ ->
            Hashtbl.add taken slot ();
            wave := (p, slot, w) :: !wave
          | None, [] ->
            if
              List.for_all (fun (slot, _) -> List.mem slot p.excluded) live
            then degrade_job p  (* every live slot already failed it *)
            (* else: all free slots taken this wave — wait for the next *))
        !pending;
      let wave = List.rev !wave in
      (* send phase: a write failure is a crash observed early *)
      let sent =
        List.filter_map
          (fun (p, slot, w) ->
            let wire_id = Printf.sprintf "j%d" p.index in
            match Worker_proc.send_line w (to_line p.job ~wire_id) with
            | Ok () -> Some (p, slot, w, wire_id)
            | Error _ ->
              fault p slot ~outcome:"crash" ~counter:(fun () ->
                  stats.crashes <- stats.crashes + 1;
                  bump "crashes");
              None)
          wave
      in
      (* collect phase, in job order, each read under the deadline *)
      List.iter
        (fun (p, slot, w, wire_id) ->
          match Worker_proc.recv_line ~timeout:cfg.timeout w with
          | Worker_proc.Line line ->
            (match of_line ~wire_id ~slot line with
             | Some payload ->
               results.(p.index) <-
                 Some
                   ( payload,
                     { m_slot = Some slot; m_attempts = p.attempts + 1 } );
               stats.dispatched <- stats.dispatched + 1;
               bump "dispatched";
               Supervisor.succeed sup slot
             | None ->
               fault p slot ~outcome:"garbage" ~counter:(fun () ->
                   stats.garbage <- stats.garbage + 1;
                   bump "garbage"))
          | Worker_proc.Timeout ->
            fault p slot ~outcome:"timeout" ~counter:(fun () ->
                stats.timeouts <- stats.timeouts + 1;
                bump "timeouts")
          | Worker_proc.Eof ->
            fault p slot ~outcome:"crash" ~counter:(fun () ->
                stats.crashes <- stats.crashes + 1;
                bump "crashes"))
        sent;
      pending := List.filter (fun p -> results.(p.index) = None) !pending;
      (* advance virtual time so backoffs expire and slots respawn *)
      Supervisor.tick sup
    end
  done;
  Array.to_list
    (Array.map
       (function Some payload -> payload | None -> assert false)
       results)
