(** Seeded, deterministic fault injection for the worker fleet.

    A {e fault plan} maps [(worker slot, per-process job index)] pairs to
    misbehaviours.  A worker consults the plan just before answering its
    [n]-th synthesis request ([n] counted since {e its own} process
    start, 0-based, heartbeats excluded), so a respawned worker replays
    its schedule from job 0 — "crash on the first job" poisons a slot
    reproducibly, which is exactly what the supervisor tests need.

    Plans are plain JSON so the CLI, the chaos bench, and the cram tests
    share one format:

    {v
    {"faults":[
      {"worker":0,"job":0,"kind":"crash"},
      {"worker":1,"job":2,"kind":"stall"},
      {"worker":0,"job":1,"kind":"garbage"},
      {"worker":1,"job":0,"kind":"truncate"},
      {"worker":0,"job":3,"kind":"slow","seconds":0.05}]}
    v}

    Everything here is pure: the same plan against the same dispatch
    sequence produces the same faults, the same retries, and (because
    recovery is answer-preserving) the same response bytes. *)

type kind =
  | Crash      (** exit without answering the request *)
  | Stall      (** never answer; the dispatcher's deadline must fire *)
  | Garbage    (** answer with a non-JSON line *)
  | Truncate   (** write a prefix of the answer, no newline, then exit *)
  | Slow of float  (** sleep this many seconds, then answer normally *)

type entry = { worker : int; job : int; kind : kind }

type plan = entry list

val empty : plan
val is_empty : plan -> bool

val lookup : plan -> worker:int -> job:int -> kind option
(** First matching entry wins. *)

val kinds : plan -> kind list
(** Deduplicated constructors present in the plan (for telemetry
    assertions). *)

val to_json : plan -> Mfb_util.Json.t
val of_json : Mfb_util.Json.t -> (plan, string) result

val to_file : string -> plan -> unit
val of_file : string -> (plan, string) result

val generate :
  seed:int -> workers:int -> max_job:int -> rate:float -> unit -> plan
(** [generate ~seed ~workers ~max_job ~rate ()] draws, for every
    [(worker, job)] pair with [worker < workers] and [job <= max_job],
    a fault with probability [rate], its kind uniform over crash /
    stall / garbage / truncate / slow(50ms).  Pure function of the
    arguments — the chaos bench and CI replay identical schedules from
    the seed alone. *)
