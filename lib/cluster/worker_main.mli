(** The worker servant: body of the [dcsa_synth worker] subcommand.

    A worker is a stripped-down synchronous responder speaking a subset
    of the service {!Mfb_server.Protocol} over its stdin/stdout, one
    line in, one line out:

    - [submit] resolves the spec against the worker's base config
      (which must match the dispatching server's — the CLI forwards
      [--tc]/[--seed]/[--sa-restarts]), runs the flow with [jobs = 1],
      and answers with a [result] response carrying the deterministic
      summary payload;
    - [stats] is the heartbeat: answered immediately with the worker's
      slot index and jobs-done count;
    - [shutdown] answers [Goodbye] and returns;
    - anything else (including oversized lines, see
      {!Mfb_server.Protocol.input_line_bounded}) gets an [error]
      response and the loop continues.

    When a {!Fault.plan} is given, the worker consults it before
    answering each [submit] (job indices count submits only, since this
    process started) and misbehaves accordingly; [Crash], [Stall] and
    [Truncate] terminate the process with exit code 3. *)

val run :
  ?fault:Fault.plan ->
  ?index:int ->
  ?vclock:bool ->
  config:Mfb_core.Config.t ->
  in_channel ->
  out_channel ->
  unit
(** [run ~config ic oc] serves until [shutdown] or EOF.  [index]
    (default 0) is the worker's fleet slot, used for fault lookup and
    reported in heartbeats.

    A [submit] carrying a ["trace"] field runs under a fresh
    per-request telemetry sink and ships its span forest back in the
    reply's ["spans"] field; with [vclock] (default [false]) that sink's
    clock is frozen at 0 so the shipped tree is deterministic — the
    serving tier passes it whenever it runs on the virtual clock. *)
