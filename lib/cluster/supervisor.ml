module Telemetry = Mfb_util.Telemetry

type slot_state =
  | Due of int  (* spawn when the tick counter reaches this value *)
  | Running of Worker_proc.t

type t = {
  size_ : int;
  argv_of : int -> string array;
  backoff_cap : int;
  slots : slot_state array;
  streak : int array;  (* consecutive failures per slot *)
  spawned_once : bool array;
  slot_respawns : int array;
  slot_ok : int array;  (* dispatch successes per slot *)
  last_outcome : string array;
  mutable tick_ : int;
  mutable respawns_ : int;
  mutable spawn_failures_ : int;
  mutable stopped : bool;
}

let create ~size ?(backoff_cap = 8) argv_of =
  if size < 1 then invalid_arg "Supervisor.create: size < 1";
  {
    size_ = size;
    argv_of;
    backoff_cap;
    slots = Array.make size (Due 0);
    streak = Array.make size 0;
    spawned_once = Array.make size false;
    slot_respawns = Array.make size 0;
    slot_ok = Array.make size 0;
    last_outcome = Array.make size "never";
    tick_ = 0;
    respawns_ = 0;
    spawn_failures_ = 0;
    stopped = false;
  }

let size t = t.size_
let tick_now t = t.tick_
let respawns t = t.respawns_
let spawn_failures t = t.spawn_failures_

let backoff_delay t slot = min t.backoff_cap (1 lsl (t.streak.(slot) - 1))

let schedule_respawn t slot =
  t.streak.(slot) <- t.streak.(slot) + 1;
  t.slots.(slot) <- Due (t.tick_ + backoff_delay t slot)

let try_spawn t slot =
  match Worker_proc.spawn ~slot (t.argv_of slot) with
  | w ->
    if t.spawned_once.(slot) then begin
      t.respawns_ <- t.respawns_ + 1;
      t.slot_respawns.(slot) <- t.slot_respawns.(slot) + 1;
      Telemetry.incr ~cat:"cluster" "respawns"
    end;
    t.spawned_once.(slot) <- true;
    t.slots.(slot) <- Running w
  | exception (Unix.Unix_error _ | Invalid_argument _ | Sys_error _) ->
    t.spawn_failures_ <- t.spawn_failures_ + 1;
    t.last_outcome.(slot) <- "spawn-failure";
    Telemetry.incr ~cat:"cluster" "spawn_failures";
    schedule_respawn t slot

let tick t =
  if not t.stopped then begin
    t.tick_ <- t.tick_ + 1;
    Array.iteri
      (fun slot state ->
        match state with
        | Running w ->
          if Worker_proc.reap_if_dead w then begin
            (* died on its own between jobs — same as a dispatch fault *)
            Worker_proc.kill w;
            t.last_outcome.(slot) <- "died";
            schedule_respawn t slot
          end
        | Due _ -> ())
      t.slots;
    Array.iteri
      (fun slot state ->
        match state with
        | Due due when t.tick_ >= due -> try_spawn t slot
        | Due _ | Running _ -> ())
      t.slots
  end

let live t =
  Array.to_list
    (Array.mapi (fun i s -> (i, s)) t.slots)
  |> List.filter_map (function
       | i, Running w -> Some (i, w)
       | _, Due _ -> None)

let fail ?(outcome = "fault") t slot =
  (match t.slots.(slot) with
   | Running w -> Worker_proc.kill w
   | Due _ -> ());
  t.last_outcome.(slot) <- outcome;
  schedule_respawn t slot

let succeed t slot =
  t.streak.(slot) <- 0;
  t.slot_ok.(slot) <- t.slot_ok.(slot) + 1;
  t.last_outcome.(slot) <- "ok"

(* Per-slot health snapshot for fleet stats: (respawns, consecutive
   failures, dispatch successes, last outcome). *)
let slot_health t slot =
  ( t.slot_respawns.(slot),
    t.streak.(slot),
    t.slot_ok.(slot),
    t.last_outcome.(slot) )

let stop t =
  t.stopped <- true;
  Array.iteri
    (fun slot state ->
      match state with
      | Running w ->
        Worker_proc.kill w;
        t.slots.(slot) <- Due max_int
      | Due _ -> t.slots.(slot) <- Due max_int)
    t.slots
