(** Supervision tree root for the worker fleet.

    One {e slot} per fleet position.  A slot is either running a
    {!Worker_proc.t}, or backing off after a failure.  Failures back
    off exponentially in {e virtual ticks} (the dispatcher advances one
    tick per wave): after the [f]-th consecutive failure the slot waits
    [min backoff_cap (2^(f-1))] ticks before the next spawn attempt,
    and a successful job resets the streak.  Time is the caller's tick
    counter, never wall-clock, so a replay of the same fault schedule
    respawns at the same points.

    Spawn failures (missing binary, fork failure) count like worker
    failures, so a hopeless fleet converges to everyone backing off at
    the cap — which the dispatcher answers with in-process
    degradation. *)

type t

val create : size:int -> ?backoff_cap:int -> (int -> string array) -> t
(** [create ~size argv_of_slot] prepares [size] slots; nothing is
    spawned until the first {!tick}.  [backoff_cap] (default 8) caps the
    backoff delay in ticks.
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int
val tick_now : t -> int

val tick : t -> unit
(** Advance virtual time one step: reap workers that died on their own
    (scheduling them for respawn like any failure), then spawn every
    slot whose backoff has expired. *)

val live : t -> (int * Worker_proc.t) list
(** Running slots in slot order. *)

val fail : ?outcome:string -> t -> int -> unit
(** Report a worker fault on a slot: kill the process, extend the
    slot's failure streak, and schedule a backed-off respawn.
    [outcome] (default ["fault"]) labels the slot's last-outcome in
    {!slot_health} — the dispatcher passes ["crash"], ["timeout"],
    ["garbage"] or ["heartbeat"]. *)

val succeed : t -> int -> unit
(** Report a completed job: resets the slot's failure streak, counts a
    success, and records last-outcome ["ok"]. *)

val slot_health : t -> int -> int * int * int * string
(** [(respawns, consecutive_failures, ok, last_outcome)] for one slot.
    [last_outcome] starts as ["never"]; ["died"] marks a worker reaped
    between jobs, ["spawn-failure"] a failed spawn attempt. *)

val stop : t -> unit
(** Kill every running worker and stop respawning. *)

val respawns : t -> int
(** Spawn attempts beyond each slot's first (the supervision-activity
    counter surfaced in serve stats and telemetry). *)

val spawn_failures : t -> int
