module Json = Mfb_util.Json

type kind = Crash | Stall | Garbage | Truncate | Slow of float

type entry = { worker : int; job : int; kind : kind }

type plan = entry list

let empty = []
let is_empty p = p = []

let lookup p ~worker ~job =
  List.find_map
    (fun e -> if e.worker = worker && e.job = job then Some e.kind else None)
    p

let kinds p =
  List.fold_left
    (fun acc e -> if List.mem e.kind acc then acc else e.kind :: acc)
    [] p
  |> List.rev

let kind_name = function
  | Crash -> "crash"
  | Stall -> "stall"
  | Garbage -> "garbage"
  | Truncate -> "truncate"
  | Slow _ -> "slow"

let entry_to_json e =
  Json.Obj
    ([ ("worker", Json.Int e.worker);
       ("job", Json.Int e.job);
       ("kind", Json.String (kind_name e.kind)) ]
    @ match e.kind with
      | Slow s -> [ ("seconds", Json.Float s) ]
      | _ -> [])

let to_json p = Json.Obj [ ("faults", Json.List (List.map entry_to_json p)) ]

let ( let* ) = Stdlib.Result.bind

let int_field k v =
  match Json.member k v with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "fault entry: missing integer field %S" k)

let entry_of_json v =
  let* worker = int_field "worker" v in
  let* job = int_field "job" v in
  let* () =
    if worker < 0 || job < 0 then Error "fault entry: negative worker or job"
    else Ok ()
  in
  let* kind =
    match Json.member "kind" v with
    | Some (Json.String "crash") -> Ok Crash
    | Some (Json.String "stall") -> Ok Stall
    | Some (Json.String "garbage") -> Ok Garbage
    | Some (Json.String "truncate") -> Ok Truncate
    | Some (Json.String "slow") ->
      (match Json.member "seconds" v with
       | Some (Json.Float s) -> Ok (Slow s)
       | Some (Json.Int s) -> Ok (Slow (float_of_int s))
       | _ -> Error "fault entry: slow needs a \"seconds\" field")
    | Some (Json.String k) ->
      Error (Printf.sprintf "fault entry: unknown kind %S" k)
    | _ -> Error "fault entry: missing string field \"kind\""
  in
  Ok { worker; job; kind }

let of_json v =
  match Json.member "faults" v with
  | Some (Json.List entries) ->
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* entry = entry_of_json e in
        Ok (entry :: acc))
      (Ok []) entries
    |> Stdlib.Result.map List.rev
  | Some _ -> Error "fault plan: \"faults\" is not an array"
  | None -> Error "fault plan: no \"faults\" array"

let to_file path p =
  Out_channel.with_open_text path (fun oc ->
      Json.to_channel ~indent:1 oc (to_json p))

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents ->
    let* v = Json.of_string contents in
    of_json v
  | exception Sys_error msg -> Error msg

let generate ~seed ~workers ~max_job ~rate () =
  let rng = Random.State.make [| 0x6661756c; seed |] in
  let faults = ref [] in
  for worker = 0 to workers - 1 do
    for job = 0 to max_job do
      if Random.State.float rng 1.0 < rate then begin
        let kind =
          match Random.State.int rng 5 with
          | 0 -> Crash
          | 1 -> Stall
          | 2 -> Garbage
          | 3 -> Truncate
          | _ -> Slow 0.05
        in
        faults := { worker; job; kind } :: !faults
      end
    done
  done;
  List.rev !faults
