(** Handle to one spawned worker process.

    Wraps the child's pid and its stdin/stdout pipes with the
    fault-aware I/O the dispatcher needs: EPIPE-safe line writes,
    deadline-bounded line reads (so a stalled worker costs a timeout,
    never a hang), a [stats]-based heartbeat, and SIGKILL teardown.

    Reads are buffered per handle: bytes after the first newline are
    kept for the next read, and a partial line at EOF is surfaced as a
    line (which then fails to parse — exactly how a [Truncate] fault
    becomes visible). *)

type t

type read_result =
  | Line of string  (** next line, newline stripped *)
  | Timeout         (** deadline elapsed with no complete line *)
  | Eof             (** worker closed its stdout (crash or exit) *)

val spawn : slot:int -> string array -> t
(** [spawn ~slot argv] starts [argv.(0)] with stdin/stdout piped to this
    handle (stderr inherited).  Parent-side pipe ends are close-on-exec,
    so later-spawned siblings cannot keep a dead worker's pipes alive
    and crashes are detected as EOF, not as timeouts.
    @raise Invalid_argument on empty [argv]. *)

val slot : t -> int
val pid : t -> int

val send_line : t -> string -> (unit, string) result
(** Write one request line and flush.  [Error _] when the worker is gone
    (EPIPE et al.) — the caller treats that as a worker fault. *)

val recv_line : ?max_bytes:int -> timeout:float -> t -> read_result
(** Wait up to [timeout] seconds (wall clock) for the next newline.  A
    line longer than [max_bytes]
    (default {!Mfb_server.Protocol.default_max_line_bytes}) is returned
    as-is and left to fail protocol parsing. *)

val ping : timeout:float -> t -> bool
(** Heartbeat: send [{"op":"stats"}] and check that a well-formed stats
    response arrives within [timeout]. *)

val reap_if_dead : t -> bool
(** Non-blocking [waitpid]: true when the child has exited (the handle
    is marked dead but pipes stay readable for draining). *)

val kill : t -> unit
(** SIGKILL, reap, close both pipes.  Idempotent. *)
