(** Consistent-hash sharding of {!Mfb_server.Cache_key}s across fleet
    slots.

    Each live slot owns a stable arc of a 64-bit hash ring: a key maps
    to the slot whose nearest clockwise ring point covers the key's
    hash.  Every slot contributes [replicas] pseudo-random points
    (FNV-1a of ["slot:replica"], the same hash family as the keys), so
    arcs are spread evenly and — the property that makes this the right
    router for a sharded cache — {e removing a slot remaps only the keys
    that slot owned}.  Every other key keeps its owner, so the surviving
    workers' compute/cache partitions are undisturbed when a fleet
    member dies.

    Rings are immutable; {!remove} returns a new ring.  Lookup is a
    binary search: O(log (slots × replicas)). *)

type t

val create : ?replicas:int -> slots:int -> unit -> t
(** Ring over slot ids [0 .. slots-1].  [replicas] (default 64) is the
    number of ring points per slot.
    @raise Invalid_argument on [slots < 1] or [replicas < 1]. *)

val of_slots : ?replicas:int -> int list -> t
(** Ring over an explicit set of slot ids (duplicates ignored).
    @raise Invalid_argument on an empty list or [replicas < 1]. *)

val slots : t -> int list
(** Live slot ids, ascending. *)

val size : t -> int

val remove : t -> int -> t
(** Ring without the given slot; only that slot's keys remap.
    @raise Invalid_argument when removing the last slot or an id not in
    the ring. *)

val slot_of_hash : t -> int64 -> int
(** Owner of an arbitrary 64-bit hash (unsigned ring order). *)

val slot_of_key : t -> Mfb_server.Cache_key.t -> int
(** Owner of a cache key — the fleet member that should compute and
    cache it. *)
