type event =
  | Line of string
  | Oversized of int

type t = {
  max_bytes : int;
  cur : Buffer.t;        (* current partial line, capped at max_bytes *)
  mutable over : int;    (* bytes discarded past the cap on this line *)
  ready : event Queue.t; (* completed frames, oldest first *)
  mutable closed : bool;
}

let create ?(max_bytes = Mfb_server.Protocol.default_max_line_bytes) () =
  if max_bytes < 1 then invalid_arg "Frame.create: max_bytes < 1";
  {
    max_bytes;
    cur = Buffer.create 256;
    over = 0;
    ready = Queue.create ();
    closed = false;
  }

let finish_line t =
  if t.over > 0 then begin
    Queue.add (Oversized (Buffer.length t.cur + t.over)) t.ready;
    t.over <- 0
  end
  else Queue.add (Line (Buffer.contents t.cur)) t.ready;
  Buffer.clear t.cur

let feed t s =
  if t.closed then invalid_arg "Frame.feed: closed";
  String.iter
    (fun c ->
      if c = '\n' then finish_line t
      else if t.over > 0 || Buffer.length t.cur >= t.max_bytes then
        t.over <- t.over + 1
      else Buffer.add_char t.cur c)
    s

let feed_bytes t chunk n = feed t (Bytes.sub_string chunk 0 n)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* partial line at EOF: surface it, matching input_line_bounded *)
    if t.over > 0 || Buffer.length t.cur > 0 then finish_line t
  end

let next t = Queue.take_opt t.ready

let buffered t = Buffer.length t.cur
