(** TCP transport for the synthesis-service client.

    Connects to a {!Listener} and returns an ordinary
    {!Mfb_server.Client.t}, so call sites are transport-agnostic: the
    same submit/result/stats/shutdown round-trips work in-process, over
    a spawned child's pipes, or over a socket. *)

val connect : ?host:string -> port:int -> unit -> Mfb_server.Client.t
(** Blocking connect to [host] (default ["127.0.0.1"]).
    @raise Unix.Unix_error (e.g. [ECONNREFUSED]) when the listener is
    not there. *)

val connect_fd : ?host:string -> port:int -> unit -> Unix.file_descr
(** The raw connected socket, for callers running their own event loop
    (the multi-client load generator). *)

val wait_port_file : ?timeout:float -> string -> (int, string) result
(** Poll a {!Listener} [port_file] until it holds a port number —
    the handshake for scripts that start [serve --tcp 0] in the
    background.  [timeout] defaults to 30 s. *)
