(* Classic consistent-hash ring.  Points are FNV-1a 64 hashes of
   "slot:replica" strings — the same hash family as Cache_key, so keys
   and points share one uniform 64-bit circle.  The ring is a sorted
   array scanned by binary search; ties (astronomically unlikely) break
   toward the lower slot id for determinism. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

type t = {
  points : (int64 * int) array;  (* sorted by unsigned point, then slot *)
  slots_ : int list;             (* ascending live slot ids *)
  replicas : int;
}

let compare_point (p1, s1) (p2, s2) =
  match Int64.unsigned_compare p1 p2 with 0 -> compare s1 s2 | c -> c

let build ~replicas slot_ids =
  let points =
    Array.init
      (List.length slot_ids * replicas)
      (fun i ->
        let slot = List.nth slot_ids (i / replicas) in
        let r = i mod replicas in
        (fnv64 (Printf.sprintf "%d:%d" slot r), slot))
  in
  Array.sort compare_point points;
  { points; slots_ = slot_ids; replicas }

let of_slots ?(replicas = 64) ids =
  if replicas < 1 then invalid_arg "Shard.of_slots: replicas < 1";
  let ids = List.sort_uniq compare ids in
  if ids = [] then invalid_arg "Shard.of_slots: no slots";
  build ~replicas ids

let create ?replicas ~slots () =
  if slots < 1 then invalid_arg "Shard.create: slots < 1";
  of_slots ?replicas (List.init slots (fun i -> i))

let slots t = t.slots_
let size t = List.length t.slots_

let remove t slot =
  if not (List.mem slot t.slots_) then
    invalid_arg "Shard.remove: unknown slot";
  match List.filter (fun s -> s <> slot) t.slots_ with
  | [] -> invalid_arg "Shard.remove: cannot remove the last slot"
  | rest -> build ~replicas:t.replicas rest

(* First ring point at or clockwise-after [h]; wraps to the first point
   when [h] is past the last. *)
let slot_of_hash t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  snd t.points.(if !lo = n then 0 else !lo)

let slot_of_key t key =
  slot_of_hash t (Mfb_server.Cache_key.to_int64 key)
