let connect_fd ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?host ~port () =
  let fd = connect_fd ?host ~port () in
  Mfb_server.Client.of_channels
    ~input:(Unix.in_channel_of_descr fd)
    ~output:(Unix.out_channel_of_descr fd)

let wait_port_file ?(timeout = 30.0) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    let port =
      if Sys.file_exists path then
        match In_channel.with_open_text path In_channel.input_line with
        | Some line -> int_of_string_opt (String.trim line)
        | None | (exception Sys_error _) -> None
      else None
    in
    match port with
    | Some p when p > 0 -> Ok p
    | _ ->
      if Unix.gettimeofday () >= deadline then
        Error (Printf.sprintf "timed out waiting for port file %s" path)
      else begin
        ignore (Unix.select [] [] [] 0.05);
        poll ()
      end
  in
  poll ()
