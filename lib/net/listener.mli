(** TCP serving tier: the {!Mfb_server.Protocol} line protocol on real
    sockets, many concurrent clients, one event loop.

    {2 Execution model}

    A single [Unix.select] loop owns the listening socket and every
    client connection — no thread or process per client.  Inbound bytes
    are framed by {!Frame} with {!Mfb_server.Protocol.input_line_bounded}
    semantics (1 MiB line cap, whole-line resync, oversized lines
    answered with a structured error), and complete request lines are
    handled by the shared {!Mfb_server.Server.t} in {e global arrival
    order} — so the cache, the job queue, request ids, the access log
    and the merged traces behave exactly as they do on the stdio path,
    with concurrency reduced to an interleaving of lines.  Client ids
    share one namespace across connections; concurrent clients should
    prefix their ids.

    {2 Backpressure}

    Two bounds compose with the queue's admission control (which already
    sheds with a structured reject when full):

    - a connection whose unflushed reply bytes exceed
      [max_pending_out] is no longer read from until the client drains
      its replies — per-connection flow control, the slow reader only
      stalls itself;
    - once [max_conns] connections are open, the listener stops
      accepting; further connectors wait in the kernel backlog.

    {2 Degradation}

    Mirrors the fleet dispatcher's discrimination between failure
    classes: a client disconnecting mid-request cancels nothing — the
    job completes, its reply is dropped cleanly (counted and logged,
    never a crash), cache and counters keep their deterministic values
    — and [EPIPE] / [ECONNRESET] on any one connection never takes down
    the listener.  A [shutdown] request from any client drains the
    queue, answers that client its [Goodbye], flushes every connection
    best-effort and stops the loop. *)

type config = {
  host : string;            (** bind address, default ["127.0.0.1"] *)
  port : int;               (** [0] picks an ephemeral port *)
  max_conns : int;          (** accept gate *)
  max_line_bytes : int;     (** inbound frame cap *)
  max_pending_out : int;
      (** unflushed reply bytes beyond which a connection is not read *)
  port_file : string option;
      (** when set, the bound port is written there once listening —
          how scripts using [--tcp 0] learn the port *)
  log : out_channel option;
      (** dropped-reply and lifecycle warnings; [None] silences them *)
}

val default_config : config
(** localhost, ephemeral port, 64 connections, 1 MiB lines, 4 MiB
    pending-out bound, no port file, warnings to [stderr]. *)

type stats = {
  mutable accepted : int;         (** connections accepted *)
  mutable conns_closed : int;
  mutable lines : int;            (** request lines handled *)
  mutable oversized : int;        (** frames over the line cap *)
  mutable dropped_replies : int;  (** replies lost to disconnects *)
  mutable dropped_bytes : int;    (** bytes of those replies *)
}

val run : ?on_ready:(int -> unit) -> config -> Mfb_server.Server.t -> stats
(** Serve until a [shutdown] request is handled.  [on_ready] receives
    the bound port before the first [accept].
    @raise Unix.Unix_error when the initial bind/listen fails (an
    occupied port is a startup error, not a degradation). *)
