module P = Mfb_server.Protocol
module Server = Mfb_server.Server

type config = {
  host : string;
  port : int;
  max_conns : int;
  max_line_bytes : int;
  max_pending_out : int;
  port_file : string option;
  log : out_channel option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_conns = 64;
    max_line_bytes = P.default_max_line_bytes;
    max_pending_out = 4 * 1024 * 1024;
    port_file = None;
    log = Some stderr;
  }

type stats = {
  mutable accepted : int;
  mutable conns_closed : int;
  mutable lines : int;
  mutable oversized : int;
  mutable dropped_replies : int;
  mutable dropped_bytes : int;
}

(* One client connection: inbound frames, outbound bytes not yet
   accepted by the kernel.  [out]/[out_pos] form a drain buffer — the
   unflushed span is out[out_pos ..]; when it exceeds the config bound
   the connection stops being selected for read (backpressure). *)
type conn = {
  fd : Unix.file_descr;
  cid : int;  (* monotonically assigned, for log lines *)
  frame : Frame.t;
  out : Buffer.t;
  mutable out_pos : int;
  mutable half_closed : bool;  (* peer sent EOF; still flushing replies *)
  mutable pending_replies : int;  (* replies buffered but not flushed *)
}

let pending_out c = Buffer.length c.out - c.out_pos

let logf cfg fmt =
  Printf.ksprintf
    (fun msg ->
      match cfg.log with
      | None -> ()
      | Some oc ->
        output_string oc msg;
        output_char oc '\n';
        flush oc)
    fmt

let run ?on_ready cfg server =
  if cfg.max_conns < 1 then invalid_arg "Listener.run: max_conns < 1";
  if cfg.max_pending_out < 1 then
    invalid_arg "Listener.run: max_pending_out < 1";
  (* a client vanishing mid-write must surface as EPIPE, never a signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let stats =
    {
      accepted = 0;
      conns_closed = 0;
      lines = 0;
      oversized = 0;
      dropped_replies = 0;
      dropped_bytes = 0;
    }
  in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock
    (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen lsock 128;
  Unix.set_nonblock lsock;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  (match cfg.port_file with
   | Some path ->
     Out_channel.with_open_text path (fun oc ->
         Printf.fprintf oc "%d\n" port)
   | None -> ());
  (match on_ready with Some f -> f port | None -> ());
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  (* true once a shutdown request has been handled: stop accepting and
     reading, flush what we owe, then leave the loop *)
  let stopping = ref false in
  let close_conn c =
    let dropped = pending_out c in
    if dropped > 0 then begin
      stats.dropped_replies <- stats.dropped_replies + c.pending_replies;
      stats.dropped_bytes <- stats.dropped_bytes + dropped;
      logf cfg
        "dcsa-serve: client #%d disconnected with %d unread reply bytes \
         (%d replies dropped)"
        c.cid dropped c.pending_replies
    end;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns c.fd;
    stats.conns_closed <- stats.conns_closed + 1
  in
  let respond c line =
    Buffer.add_string c.out line;
    Buffer.add_char c.out '\n';
    c.pending_replies <- c.pending_replies + 1
  in
  let handle_event c = function
    | Frame.Line line ->
      stats.lines <- stats.lines + 1;
      (match Server.handle_line server line with
       | Some reply -> respond c reply
       | None -> ());
      if Server.shutting_down server then stopping := true
    | Frame.Oversized len ->
      stats.oversized <- stats.oversized + 1;
      respond c
        (P.response_to_line
           (P.Bad_request
              {
                id = None;
                message =
                  Printf.sprintf
                    "input line too long: %d bytes exceeds the %d-byte limit"
                    len cfg.max_line_bytes;
              }))
  in
  let drain_frames c =
    let rec go () =
      if not !stopping then
        match Frame.next c.frame with
        | Some ev ->
          handle_event c ev;
          go ()
        | None -> ()
    in
    go ()
  in
  let chunk = Bytes.create 65536 in
  let handle_read c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      c.half_closed <- true;
      Frame.close c.frame;
      drain_frames c;
      if pending_out c = 0 then close_conn c
    | n ->
      Frame.feed_bytes c.frame chunk n;
      drain_frames c
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ ->
      (* ECONNRESET and friends: the connection is gone *)
      close_conn c
  in
  let handle_write c =
    let len = pending_out c in
    if len > 0 then begin
      match
        Unix.write_substring c.fd (Buffer.contents c.out) c.out_pos len
      with
      | n ->
        c.out_pos <- c.out_pos + n;
        if c.out_pos = Buffer.length c.out then begin
          Buffer.clear c.out;
          c.out_pos <- 0;
          c.pending_replies <- 0;
          if c.half_closed then close_conn c
        end
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
      | exception Unix.Unix_error _ -> close_conn c
    end
    else if c.half_closed then close_conn c
  in
  let accept_conns () =
    let rec go () =
      if Hashtbl.length conns < cfg.max_conns then
        match Unix.accept ~cloexec:true lsock with
        | fd, _ ->
          Unix.set_nonblock fd;
          incr next_cid;
          stats.accepted <- stats.accepted + 1;
          Hashtbl.add conns fd
            {
              fd;
              cid = !next_cid;
              frame = Frame.create ~max_bytes:cfg.max_line_bytes ();
              out = Buffer.create 1024;
              out_pos = 0;
              half_closed = false;
              pending_replies = 0;
            };
          go ()
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
        | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go ()
    in
    go ()
  in
  (* After shutdown, clients get a bounded grace period to drain the
     replies they are owed; a stuck reader forfeits its bytes. *)
  let drain_deadline = ref None in
  let finished () =
    !stopping
    &&
    match !drain_deadline with
    | None ->
      drain_deadline := Some (Unix.gettimeofday () +. 5.0);
      Hashtbl.fold (fun _ c acc -> acc && pending_out c = 0) conns true
    | Some dl ->
      Unix.gettimeofday () >= dl
      || Hashtbl.fold (fun _ c acc -> acc && pending_out c = 0) conns true
  in
  let rec loop () =
    if not (finished ()) then begin
      let readable =
        (if (not !stopping) && Hashtbl.length conns < cfg.max_conns then
           [ lsock ]
         else [])
        @ Hashtbl.fold
            (fun fd c acc ->
              if
                (not !stopping) && (not c.half_closed)
                && pending_out c <= cfg.max_pending_out
              then fd :: acc
              else acc)
            conns []
      in
      let writable =
        Hashtbl.fold
          (fun fd c acc -> if pending_out c > 0 then fd :: acc else acc)
          conns []
      in
      let timeout = if !stopping then 0.1 else 1.0 in
      match Unix.select readable writable [] timeout with
      | rs, ws, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> handle_write c
            | None -> ())
          ws;
        List.iter
          (fun fd ->
            if fd = lsock then accept_conns ()
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> handle_read c
              | None -> ())
          rs;
        (* opportunistic flush: most replies fit the socket buffer, so
           draining now saves a select round-trip per response *)
        Hashtbl.iter
          (fun _ c -> if pending_out c > 0 then handle_write c)
          (Hashtbl.copy conns);
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  Hashtbl.iter (fun _ c -> close_conn c) (Hashtbl.copy conns);
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  stats
