(** Incremental bounded line framing for socket buffers.

    {!Mfb_server.Protocol.input_line_bounded} reads whole lines from a
    blocking [in_channel]; a socket event loop instead receives
    arbitrary byte chunks and must carve the same frames out of them
    without ever blocking.  This module is that reader, state-machine
    style, with identical semantics:

    - a frame is one newline-terminated line, newline stripped;
    - a line whose payload exceeds [max_bytes] (default
      {!Mfb_server.Protocol.default_max_line_bytes}, 1 MiB) is consumed
      {e whole} — the stream resynchronises at the next newline — and
      surfaces as [Oversized] carrying its full byte length, so the
      caller can answer with a structured error and keep serving;
    - a partial line pending when the peer closes is surfaced as a final
      [Line] rather than dropped.

    Feed raw chunks with {!feed} (or signal EOF with {!close}), then
    drain completed frames with {!next}.  Memory is bounded: at most
    [max_bytes] of the current partial line are retained, the rest of an
    oversized line is counted and discarded as it streams in. *)

type t

type event =
  | Line of string      (** complete line, newline stripped *)
  | Oversized of int    (** line over the cap; full byte length *)

val create : ?max_bytes:int -> unit -> t

val feed : t -> string -> unit
(** Append a received chunk.  @raise Invalid_argument after {!close}. *)

val feed_bytes : t -> bytes -> int -> unit
(** [feed_bytes t chunk n] appends the first [n] bytes of [chunk] —
    the natural shape after a [Unix.read]. *)

val close : t -> unit
(** Signal EOF: a pending partial line becomes a final frame.
    Idempotent. *)

val next : t -> event option
(** Pop the next completed frame, oldest first; [None] when every fed
    byte has been consumed or is part of a still-incomplete line. *)

val buffered : t -> int
(** Bytes of the current incomplete line held in memory (bounded by
    [max_bytes]); diagnostic only. *)
