(* Similarity index over cached synthesis requests.

   A fingerprint decomposes the request the same way [Cache_key] does —
   graph structure, allocation, config — but keeps the per-operation
   neighborhood hashes as a *multiset* instead of folding them into one
   word.  The distance between two comparable fingerprints is then the
   symmetric difference of the multisets (how many radius-1
   neighborhoods each side has that the other lacks) plus a fixed toll
   per differing config knob; an allocation or flow mismatch makes the
   pair incomparable, because a cached placement over a different
   component set cannot seed a warm start at all.

   The index itself is a small bounded table scanned linearly: entries
   are cheap (a fingerprint plus the caller's payload, not a synthesis
   result), lookups are O(entries x ops), and everything is
   deterministic — ties break towards the exact key, then towards the
   most recently added entry. *)

module Seq_graph = Mfb_bioassay.Seq_graph

type fp = {
  hashes : int64 array;
      (* per-op neighborhood hashes, indexed by op id (diff naming) *)
  sorted : int64 array;   (* the same hashes sorted (multiset compares) *)
  flow : string;
  alloc : int * int * int * int;
  backend : string;
  exact_fuel : int;
  knobs : float array;
}

(* One slot per scalar config knob, in a fixed order; a differing slot
   costs [knob_toll] distance. *)
let knob_vector (cfg : Mfb_core.Config.t) =
  [|
    cfg.tc; cfg.we; cfg.beta; cfg.gamma; cfg.sa.t0; cfg.sa.t_min;
    cfg.sa.alpha; float_of_int cfg.sa.i_max; float_of_int cfg.sa_restarts;
    float_of_int cfg.seed;
  |]

let knob_toll = 2

let fingerprint ?(flow = "ours") ~(config : Mfb_core.Config.t) ~graph
    ~(allocation : Mfb_component.Allocation.t) () =
  let hashes = Cache_key.neighborhood_hashes graph in
  let sorted = Array.copy hashes in
  Array.sort Int64.compare sorted;
  {
    hashes;
    sorted;
    flow;
    alloc =
      (allocation.mixers, allocation.heaters, allocation.filters,
       allocation.detectors);
    backend = Mfb_schedule.Portfolio.backend_to_string config.backend;
    exact_fuel = config.exact_fuel;
    knobs = knob_vector config;
  }

type diff = {
  distance : int;
  changed_ops : int list;
      (* query op ids whose neighborhood the candidate lacks *)
  added : int;    (* query neighborhoods absent from the candidate *)
  removed : int;  (* candidate neighborhoods absent from the query *)
  knob_edits : int;
}

(* Multiset membership of the candidate's hashes, consumed once per
   match so duplicated neighborhoods (parallel identical ops) pair up
   one-to-one. *)
let distance (q : fp) (c : fp) =
  if q.flow <> c.flow || q.alloc <> c.alloc then None
  else begin
    let pool = Hashtbl.create (Array.length c.sorted) in
    Array.iter
      (fun h ->
        Hashtbl.replace pool h
          (1 + Option.value (Hashtbl.find_opt pool h) ~default:0))
      c.sorted;
    let changed = ref [] in
    Array.iteri
      (fun op h ->
        match Hashtbl.find_opt pool h with
        | Some n when n > 0 -> Hashtbl.replace pool h (n - 1)
        | _ -> changed := op :: !changed)
      q.hashes;
    let changed_ops = List.rev !changed in
    let added = List.length changed_ops in
    let matched = Array.length q.hashes - added in
    let removed = Array.length c.sorted - matched in
    let knob_edits =
      let ne = if q.backend <> c.backend then 1 else 0 in
      let ne = ne + (if q.exact_fuel <> c.exact_fuel then 1 else 0) in
      let ne = ref ne in
      Array.iteri
        (fun i k -> if k <> c.knobs.(i) then incr ne)
        q.knobs;
      !ne
    in
    Some
      {
        distance = added + removed + (knob_toll * knob_edits);
        changed_ops;
        added;
        removed;
        knob_edits;
      }
  end

(* --- the bounded index --- *)

type 'a entry = { e_key : Cache_key.t; e_fp : fp; e_payload : 'a }

type 'a t = {
  capacity : int;
  threshold : int;
  mutable entries : 'a entry list;  (* most recently added first *)
  mutable lookups : int;
  mutable near : int;
}

let create ?(capacity = 64) ~threshold () =
  if capacity < 1 then invalid_arg "Sim_index.create: capacity < 1";
  if threshold < 0 then invalid_arg "Sim_index.create: threshold < 0";
  { capacity; threshold; entries = []; lookups = 0; near = 0 }

let length t = List.length t.entries
let threshold t = t.threshold
let mem t key = List.exists (fun e -> Cache_key.equal e.e_key key) t.entries

let remove t key =
  t.entries <-
    List.filter (fun e -> not (Cache_key.equal e.e_key key)) t.entries

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | e :: rest -> e :: take (n - 1) rest

let add t key fp payload =
  remove t key;
  t.entries <- take t.capacity ({ e_key = key; e_fp = fp; e_payload = payload } :: t.entries)

(* Linear scan for the closest comparable entry within the threshold.
   Strictly-closer wins; at equal distance the earlier (more recently
   added) entry is kept, except that the query's own key always wins its
   distance class — so an exact re-submission finds exactly the entry
   [Cache_key] would. *)
let nearest t key fp =
  t.lookups <- t.lookups + 1;
  let best =
    List.fold_left
      (fun best e ->
        match distance fp e.e_fp with
        | None -> best
        | Some d when d.distance > t.threshold -> best
        | Some d ->
          (match best with
           | Some (_, bd) when bd.distance < d.distance -> best
           | Some (be, bd)
             when bd.distance = d.distance
                  && not (Cache_key.equal e.e_key key) ->
             Some (be, bd)
           | _ -> Some (e, d)))
      None t.entries
  in
  match best with
  | None -> None
  | Some (e, d) ->
    t.near <- t.near + 1;
    Some (e.e_key, e.e_payload, d)

let stats t = (t.lookups, t.near)
