(** The synthesis service: a long-lived process answering
    {!Protocol} requests with content-addressed caching, batched
    dispatch, and admission control.

    {2 Execution model}

    Requests are handled synchronously in input order.  [submit]
    resolves the spec, computes the {!Cache_key}, and either answers
    from the result cache (a {e hit} — the job never enters the queue)
    or enqueues the job under admission control.  Queued jobs run in
    {e batches}: whenever the queue reaches the batch size, or a
    [result] request needs a still-queued job, the server pops up to
    [batch] jobs in dispatch order, drops the ones whose deadline
    expired, deduplicates identical keys, and synthesises the remainder
    on up to [jobs] domains via {!Mfb_util.Pool} — each task itself
    running with [jobs = 1], so pools never nest.  One virtual tick
    elapses per batch; deadlines are measured in ticks, never
    wall-clock.

    {2 Determinism}

    For a fixed request script, every response except the [stats] /
    [shutdown] counters is bit-for-bit identical whatever the [jobs]
    value and whatever the cache temperature: result payloads carry only
    the deterministic {!Mfb_core.Result.summary}, batch dispatch order
    is a pure function of (priority, submission order), and the pool
    preserves task order.  Caching is therefore {e transparent} — it can
    only change latency, never a payload.

    {2 Repair}

    A [repair] request names a previously accepted submission and a
    defect set ({!Mfb_repair.Defect.target}s) and answers with the
    {!Mfb_repair.Plan} escalation report.  The server warm-starts from
    the retained full result of the target job when it is still in the
    repair cache (1 virtual tick), or re-synthesizes it first (2 ticks).
    The report bytes are a pure function of (job, defects) — cache
    temperature, [jobs] and transport can only change latency.  A
    surviving repair whose result fails the legality audit
    ({!Mfb_repair.Plan.verify}) is rejected rather than returned.

    {2 Similarity & warm start}

    With [similarity] enabled, every computed job is fingerprinted into
    a {!Sim_index}; a later batch job within [sim_threshold] edit
    distance of a cached one is {e warm-started}
    ({!Mfb_repair.Warm.synthesize}): cached placement reused, intact
    routes replayed, invalidated transports re-routed through the
    repair ladder, with a legality + quality-delta proof obligation and
    cold fallback.  Such a request finishes with outcome ["near-hit"]
    instead of ["done"]; stats gain a ["near"] section and Prometheus
    the [dcsa_near_hits_total] / [dcsa_warm_fallbacks_total] counters
    and [dcsa_warm_latency] histogram, all absent until the first
    near-hit or fallback so similarity-free transcripts keep their
    bytes.  Warm-start decisions and payloads are a pure function of
    the request script: the index stores resolved jobs (never results),
    and an evicted seed is re-synthesized cold, byte-identical to its
    original run. *)

type job = {
  key : Cache_key.t;
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;
  config : Mfb_core.Config.t;
  flow : [ `Ours | `Ba ];
  spec : Protocol.spec;            (** original submit spec *)
  overrides : Protocol.overrides;  (** original submit overrides *)
}
(** A fully resolved, validated synthesis job.  [spec] and [overrides]
    are the original wire-level submission, kept so a [dispatch] hook
    can forward the job verbatim to an out-of-process worker which then
    re-resolves it against the same base config. *)

type dispatch_result = {
  d_payload : Mfb_util.Json.t;  (** the summary payload *)
  d_slot : int option;  (** fleet slot that answered; [None] in-process *)
  d_attempts : int;     (** dispatch attempts (1 = first try) *)
  d_spans : Mfb_util.Telemetry.node list;
      (** worker-side span forest shipped back in the reply; grafted
          under the request's compute span in the merged trace *)
}
(** One batch job's answer plus its attribution.  The in-process runner
    returns [{d_slot = None; d_attempts = 1; d_spans = []}], and the
    access log only gains its optional ["fleet"] subobject when a slot
    is present — which is what keeps the log byte-identical between
    transports. *)

type config = {
  jobs : int;            (** worker domains for batch synthesis *)
  cache_capacity : int;  (** LRU entries; [0] disables caching *)
  queue_depth : int;     (** admission-control bound *)
  batch : int;           (** max jobs dispatched per tick *)
  repair_cache : int;
      (** full {!Mfb_core.Result.t}s retained from in-process batch runs
          so [repair] requests can warm-start; [0] disables retention
          (every repair then re-synthesizes its target first).  Kept
          small — a full result holds the routed grid and schedule, not
          just summary scalars. *)
  similarity : bool;
      (** enable the {!Sim_index} similarity cache: a batch job whose
          fingerprint lands within [sim_threshold] of a previously
          computed job is warm-started from that job's full result
          ({!Mfb_repair.Warm}) instead of synthesized cold.  The warm
          payload is deterministic (identical across [jobs] values,
          transports, and fleet-vs-in-process) but generally differs
          from the cold payload — enabling similarity is a quality
          contract ([warm_delta]), not byte-transparent like the exact
          cache, which is why it defaults to off. *)
  sim_threshold : int;
      (** largest {!Sim_index.diff} distance accepted as a near-hit *)
  warm_delta : float;
      (** quality gate: a warm result whose makespan exceeds
          [(1 + warm_delta)] x the cold lower bound is discarded and the
          job re-synthesized cold (counted as a fallback) *)
  flow_config : Mfb_core.Config.t;
      (** base synthesis parameters; [submit] overrides apply on top *)
  dispatch : (job list -> dispatch_result list) option;
      (** replacement batch runner (e.g. a worker fleet): deduplicated
          jobs in dispatch order in, one result per job in the same
          order out.  Payloads must be answer-equivalent to {!run_job} —
          caching and counters assume they are a pure function of the
          job.  [None] (the default) runs batches in-process. *)
  extra_stats : (unit -> (string * Mfb_util.Json.t) list) option;
      (** extra fields appended to {!stats_json} (e.g. fleet counters);
          [None] leaves the stats payload byte-identical to older
          servers. *)
  extra_prometheus : (Buffer.t -> unit) option;
      (** extra series appended to {!prometheus_stats} (e.g. per-slot
          dispatch histograms). *)
  clock : [ `Virtual | `Wall ];
      (** latency-histogram units: [`Virtual] (default) observes batch
          ticks — deterministic; [`Wall] observes wall milliseconds for
          real benchmarking.  Queue-wait is always measured in ticks. *)
  access_log : out_channel option;
      (** when set, one JSONL record per finished request (id, cache key
          prefix, backend, outcome, queue/compute/total latency, fleet
          attribution), flushed per line, written in completion order —
          a pure function of the request script under [`Virtual]. *)
  slow_threshold : float option;
      (** latency (in clock units) at or above which the access-log
          record additionally embeds the request's full span tree. *)
}

val default_config : config
(** [jobs = 1], 128 cache entries, queue depth 64, batch 8, 8 retained
    full results, similarity off (threshold 8, delta 0.25), paper
    parameters, no dispatch hook, no extra stats, virtual clock, no
    access log. *)

type t

val create : config -> t
(** @raise Invalid_argument on non-positive [jobs] or [batch], negative
    [cache_capacity], or [queue_depth < 1]. *)

val resolve :
  base:Mfb_core.Config.t ->
  flow:[ `Ours | `Ba ] ->
  overrides:Protocol.overrides ->
  Protocol.spec ->
  (job, string) result
(** Resolve and validate a submission against [base] config — the same
    path the server takes, exposed so workers resolve identically. *)

val run_job :
  ?trace:(string * Mfb_util.Telemetry.value) list ->
  job ->
  Mfb_util.Json.t
(** Synthesise one job in-process ([jobs = 1]) and return its summary
    payload.  Deterministic: equal jobs give byte-equal payloads.
    [trace] wraps the computation in a [request] span carrying the
    given args (request id, cache-key prefix) so per-request
    attribution survives into worker-side traces; it never affects the
    payload. *)

val handle : t -> Protocol.request -> Protocol.response
(** Process one request (advancing queue batches as needed).  [shutdown]
    first drains every queued job — computing or deadline-shedding each
    one — so the {!Protocol.Goodbye} stats are a complete account. *)

val handle_line : t -> string -> string option
(** Parse one input line and answer it serialized; [None] for blank and
    [#]-comment lines.  Never raises on malformed input — parse errors
    come back as an [error] response line. *)

val shutting_down : t -> bool
(** True once a [shutdown] request has been handled. *)

val stats_json : t -> Mfb_util.Json.t
(** Tick count, submissions, computations, cache hit/miss/eviction,
    queue occupancy, shed/rejection counters, rolling latency and
    queue-wait histogram snapshots, and the server config. *)

val prometheus_stats : t -> string
(** Prometheus text exposition of the same counters plus the full
    latency / queue-wait bucket series (and any [extra_prometheus]
    series).  Answers {!Protocol.Stats_prom}. *)

val current_tick : t -> int
(** The virtual batch clock — one tick elapses per dispatched batch.
    Exposed so a CLI can drive a tick-based telemetry sink clock. *)

val latency_histogram : t -> Mfb_util.Histogram.t
(** The rolling total-latency histogram (clock units: ticks under
    [`Virtual], milliseconds under [`Wall]). *)

val queue_wait_histogram : t -> Mfb_util.Histogram.t
(** The rolling queue-wait histogram (always virtual ticks). *)

val repair_latency_histogram : t -> Mfb_util.Histogram.t
(** The rolling repair-latency histogram (clock units).  Under the
    virtual clock a warm-started repair observes 1 tick and a cold one
    (full result re-synthesized first) 2 ticks, so the histogram is a
    deterministic record of cache temperature. *)

val warm_latency_histogram : t -> Mfb_util.Histogram.t
(** The rolling warm-start latency histogram (clock units).  Under the
    virtual clock a near-hit whose seed sat in the repair cache observes
    1 tick, one whose seed had to be cold re-synthesized 2 ticks — the
    same cache-temperature convention as repairs. *)

val near_hit_counts : t -> int * int
(** [(near hits, warm fallbacks)] so far. *)

val serve : ?input:in_channel -> ?output:out_channel -> t -> unit
(** Run the line loop (default stdin/stdout) until [shutdown] or EOF,
    flushing after every response.  Lines are read via
    {!Protocol.input_line_bounded}: an oversized line is consumed whole,
    answered with a structured error, and serving continues; a partial
    final line (no trailing newline) is still handled. *)
