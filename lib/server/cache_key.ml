(* 64-bit FNV-1a over a canonical encoding of the request.

   The graph part must not depend on how operations are numbered, so it
   is summarised structurally: every operation gets a label hash from
   its intrinsic attributes, the label is refined with the sorted hashes
   of its ancestors (computed in topological order) and, symmetrically,
   of its descendants (reverse topological order), and the fingerprint
   folds the *sorted* per-operation hashes.  Sorting removes the id
   order everywhere, while the ancestor/descendant refinement keeps the
   dependency structure in the key (a chain and a fan of identical
   operations hash differently). *)

module Seq_graph = Mfb_bioassay.Seq_graph
module Operation = Mfb_bioassay.Operation

type t = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
  done;
  !h

let mix_int h i = mix_int64 h (Int64.of_int i)
let mix_float h f = mix_int64 h (Int64.bits_of_float f)

let mix_string h s =
  let h = ref (mix_int h (String.length s)) in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h

let mix_option mix h = function
  | None -> mix_int h 0
  | Some v -> mix (mix_int h 1) v

(* Intrinsic label of one operation — everything about the vertex except
   its id. *)
let op_label (op : Operation.t) =
  let h = fnv_offset in
  let h = mix_int h (Operation.kind_index op.kind) in
  let h = mix_float h op.duration in
  let h = mix_string h op.output.name in
  let h = mix_float h op.output.diffusion in
  mix_option mix_float h op.output.wash_override

let mix_sorted h hashes =
  List.fold_left mix_int64 (mix_int h (List.length hashes))
    (List.sort Int64.compare hashes)

let graph_fingerprint g =
  let n = Seq_graph.n_ops g in
  let labels = Array.map op_label (Seq_graph.ops g) in
  let order = Seq_graph.topo_order g in
  let anc = Array.make n 0L in
  List.iter
    (fun v ->
      anc.(v) <-
        mix_sorted (mix_int64 fnv_offset labels.(v))
          (List.map (fun p -> anc.(p)) (Seq_graph.parents g v)))
    order;
  let desc = Array.make n 0L in
  List.iter
    (fun v ->
      desc.(v) <-
        mix_sorted (mix_int64 fnv_offset labels.(v))
          (List.map (fun c -> desc.(c)) (Seq_graph.children g v)))
    (List.rev order);
  let node_hashes =
    List.init n (fun v -> mix_int64 (mix_int64 fnv_offset anc.(v)) desc.(v))
  in
  let h = mix_string fnv_offset (Seq_graph.name g) in
  let h = mix_int h n in
  let h = mix_int h (Seq_graph.n_edges g) in
  mix_sorted h node_hashes

(* Radius-1 neighborhood hash of every operation: its own label mixed
   with the sorted labels of its parents and, separately, of its
   children.  Invariant to id relabelling (labels are intrinsic, the
   neighbor multisets are sorted) yet sensitive to any local structural
   or attribute edit — the unit of similarity distance. *)
let neighborhood_hashes g =
  let labels = Array.map op_label (Seq_graph.ops g) in
  Array.init (Seq_graph.n_ops g) (fun v ->
      let around rel =
        List.map (fun u -> labels.(u)) (rel g v)
      in
      mix_sorted
        (mix_sorted (mix_int64 fnv_offset labels.(v))
           (around Seq_graph.parents))
        (around Seq_graph.children))

let mix_config h (cfg : Mfb_core.Config.t) =
  let h = mix_float h cfg.tc in
  let h = mix_float h cfg.we in
  let h = mix_float h cfg.beta in
  let h = mix_float h cfg.gamma in
  let h = mix_float h cfg.sa.t0 in
  let h = mix_float h cfg.sa.t_min in
  let h = mix_float h cfg.sa.alpha in
  let h = mix_int h cfg.sa.i_max in
  let h = mix_int h cfg.sa_restarts in
  let h = mix_int h cfg.seed in
  (* The backend changes the schedule, so a heuristic-cached entry must
     never answer an exact/portfolio request (and vice versa). *)
  let h =
    mix_string h (Mfb_schedule.Portfolio.backend_to_string cfg.backend)
  in
  mix_int h cfg.exact_fuel

let make ?(flow = "ours") ~config ~graph
    ~(allocation : Mfb_component.Allocation.t) () =
  let h = mix_string fnv_offset "mfb-serve-key-v2" in
  let h = mix_string h flow in
  let h = mix_int64 h (graph_fingerprint graph) in
  let h = mix_int h allocation.mixers in
  let h = mix_int h allocation.heaters in
  let h = mix_int h allocation.filters in
  let h = mix_int h allocation.detectors in
  mix_config h config

let equal = Int64.equal
let compare = Int64.compare
let hash k = Int64.to_int k land max_int
let to_hex k = Printf.sprintf "%016Lx" k
let to_int64 k = k
