(** Deterministic bounded priority queue with admission control.

    The serving layer's waiting room.  Time is {e virtual}: the server
    advances a tick per dispatched batch, so deadlines and shedding are
    pure functions of the request sequence — never of wall-clock — and a
    replay of the same script is bit-for-bit reproducible at any
    [--jobs] value.

    Ordering.  Jobs dispatch by (priority descending, submission order
    ascending): higher [priority] wins, FIFO among equals.

    Admission.  The queue holds at most [depth] jobs.  A submission to a
    full queue either {e displaces} the weakest queued job — the last in
    dispatch order, i.e. lowest priority, latest submitted — when the
    newcomer's priority is strictly higher, or is rejected with a
    reason.  Shed-lowest-first keeps the queue's total priority mass
    maximal under overload.

    Deadlines.  A job submitted at tick [t] with [deadline d] must be
    dispatched by tick [t + d]; {!pop_batch} at a later tick sheds it
    instead of running it. *)

type 'a item = {
  id : string;
  priority : int;
  submitted : int;   (** tick at submission *)
  seq : int;         (** global submission index — the FIFO tie-break *)
  deadline : int option;
  payload : 'a;
}

type 'a t

val create : depth:int -> unit -> 'a t
(** @raise Invalid_argument if [depth < 1]. *)

val depth : 'a t -> int
val length : 'a t -> int

type 'a admission =
  | Admitted
  | Displaced of 'a item  (** the shed weakest job; newcomer admitted *)
  | Refused of string     (** reason; newcomer not queued *)

val submit :
  'a t -> now:int -> id:string -> priority:int -> ?deadline:int -> 'a ->
  'a admission

val pop_batch : 'a t -> now:int -> max:int -> 'a item list * 'a item list
(** [pop_batch q ~now ~max] removes and returns
    [(dispatched, expired)]: first every queued job whose deadline has
    passed at [now] (in dispatch order), then up to [max] jobs to run,
    in dispatch order.  Expired jobs do not count against [max]. *)

val queued : 'a t -> 'a item list
(** Current contents in dispatch order (not removed). *)

val position : 'a t -> string -> int option
(** 0-based dispatch position of a job id, if queued. *)
