(** Line-delimited JSON protocol of the synthesis service.

    One request per input line, one JSON response object per line on the
    way back.  Blank lines and lines starting with [#] are ignored by
    the server loop, so here-doc scripts can be commented.

    Requests (the ["op"] field selects the operation):

    {v
    {"op":"submit","id":"r1","benchmark":"PCR"}
    {"op":"submit","id":"r2","assay":"assay \"x\"\n...","alloc":[3,2,0,2],
     "priority":5,"deadline":3,"flow":"ours","seed":7}
    {"op":"status","id":"r1"}
    {"op":"result","id":"r1"}
    {"op":"repair","id":"p1","target":"r1",
     "defects":[{"kind":"cell","x":3,"y":4}]}
    {"op":"stats"}
    {"op":"shutdown"}
    v}

    [submit] carries either a built-in benchmark name or an inline assay
    text (the {!Mfb_bioassay.Assay_file} format with [\n] escapes);
    [priority] (default 0, higher runs first), [deadline] (queue ticks
    the job may wait before being shed; absent = no deadline) and the
    per-request config overrides [seed] / [tc] / [sa_restarts] /
    [backend] (["heuristic" | "exact" | "portfolio"]) are optional.

    Responses repeat the request [id] so scripted clients can correlate;
    every response carries ["ok"] and ["op"].  [result] payloads contain
    only the deterministic scalar metrics ({!Mfb_core.Result.summary}),
    so for a given request they are byte-identical whatever the cache
    temperature or [--jobs] value of the server. *)

type spec =
  | Benchmark of string  (** a Table-I benchmark name *)
  | Assay of {
      text : string;  (** inline assay-file text *)
      alloc : (int * int * int * int) option;
          (** (m,h,f,d); default: minimal allocation covering the assay *)
    }

type overrides = {
  o_seed : int option;
  o_tc : float option;
  o_sa_restarts : int option;
  o_backend : Mfb_schedule.Portfolio.backend option;
      (** scheduling backend for this request; changes the cache key *)
}

val no_overrides : overrides

type request =
  | Submit of {
      id : string;
      priority : int;
      deadline : int option;
      flow : [ `Ours | `Ba ];
      spec : spec;
      overrides : overrides;
      trace : string option;
          (** distributed-trace context (the request id assigned by the
              serving tier); a worker that receives it ships its span
              tree back in the reply *)
    }
  | Status of string  (** job id *)
  | Result of string  (** job id *)
  | Repair of {
      id : string;  (** id of this repair request *)
      target : string;  (** id of a previously submitted job *)
      defects : Mfb_repair.Defect.target list;
          (** non-empty; the {!Mfb_repair.Defect.target_to_json} entry
              shape, without ticks — the client resolves a timed plan to
              the defect set visible now *)
    }
  | Stats
  | Stats_prom  (** [{"op":"stats","format":"prometheus"}] *)
  | Shutdown

type response =
  | Submitted of { id : string; key : string }
  | Rejected of { op : string; id : string; reason : string }
      (** admission refusal, shed job, unknown id, bad spec … *)
  | Job_status of { id : string; state : string }
      (** state: ["queued"], ["done"], ["shed"] *)
  | Job_result of {
      id : string;
      key : string;
      result : Mfb_util.Json.t;
      spans : Mfb_util.Json.t option;
          (** worker-side span forest ([Telemetry.node_to_json] list);
              present only when the request carried trace context, so
              client-visible bytes are unchanged otherwise *)
    }
  | Repair_result of {
      id : string;
      target : string;
      key : string;  (** cache key of the repaired job *)
      warm : bool;
          (** [true] when the repair warm-started from the retained full
              result of the target job; [false] when the server had to
              re-synthesize it first.  Does not affect the report bytes. *)
      report : Mfb_util.Json.t;  (** {!Mfb_repair.Plan.report_to_json} *)
    }
  | Stats_reply of Mfb_util.Json.t
  | Stats_text of string
      (** Prometheus text exposition answering {!Stats_prom} *)
  | Goodbye of Mfb_util.Json.t  (** shutdown ack carrying final stats *)
  | Bad_request of { id : string option; message : string }
      (** malformed request *)

val request_to_json : request -> Mfb_util.Json.t
val request_of_json : Mfb_util.Json.t -> (request, string) result

val request_of_line : string -> (request, string) result
val request_to_line : request -> string

val response_to_json : response -> Mfb_util.Json.t
val response_of_json : Mfb_util.Json.t -> (response, string) result

val response_to_line : response -> string
val response_of_line : string -> (response, string) result

val default_max_line_bytes : int
(** Cap on an input line, [1 lsl 20] bytes. *)

type line =
  | Line of string  (** next line, newline stripped; a partial line at
                        EOF is surfaced here rather than dropped *)
  | Oversized of int  (** line exceeded the cap; carries its full byte
                          length.  The whole line has been consumed, so
                          the stream is resynchronised at the newline
                          and the caller can answer with a structured
                          {!Bad_request} and keep serving. *)
  | Eof

val input_line_bounded : ?max_bytes:int -> in_channel -> line
(** Read one line of at most [max_bytes] (default
    {!default_max_line_bytes}) payload bytes. *)
