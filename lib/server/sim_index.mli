(** Similarity index over cached synthesis requests — the lookup side of
    the warm-start cache.

    {!Cache_key} folds the whole request into one word, so it can only
    answer {e exact} re-submissions.  A {!fp} keeps the intermediate
    structure instead: the {e multiset} of per-operation radius-1
    neighborhood hashes ({!Cache_key.neighborhood_hashes}) together with
    the flow, allocation vector and config knobs.  Two fingerprints are
    {e comparable} when flow and allocation agree (a cached placement
    over a different component set cannot seed a warm start); their
    {!distance} is then

    - the symmetric difference of the neighborhood multisets — a
      single-op edit (duration tweak, kind change, added/removed op or
      edge) perturbs only the edited op and its direct neighbors, so it
      costs a handful of units, while unrelated graphs diverge almost
      everywhere — plus
    - a fixed toll of 2 per differing config knob (tc, we, beta, gamma,
      annealing schedule, restarts, seed, backend, fuel).

    Like the key, the fingerprint is invariant to op-id relabelling and
    to the textual formatting of the assay (the parser normalises
    whitespace and ordering away), and two requests with equal
    {!Cache_key}s always have distance 0.

    The index is a bounded, insertion-ordered table of
    (key, fingerprint, payload) entries scanned linearly — entries are
    small (no synthesis results), and determinism matters more than
    asymptotics at serving batch sizes.  Everything is a pure function
    of the sequence of [add]/[remove] calls: no clocks, no hashing
    nondeterminism, ties broken by recency with the query's own key
    winning its distance class. *)

type fp
(** A similarity fingerprint. *)

val fingerprint :
  ?flow:string ->
  config:Mfb_core.Config.t ->
  graph:Mfb_bioassay.Seq_graph.t ->
  allocation:Mfb_component.Allocation.t ->
  unit ->
  fp
(** Same inputs and defaults as {!Cache_key.make}. *)

type diff = {
  distance : int;       (** total edit distance *)
  changed_ops : int list;
      (** query operation ids whose radius-1 neighborhood the candidate
          lacks — the ops (and, transitively, their incident edges)
          invalidated by the edit, in ascending id order *)
  added : int;          (** query neighborhoods absent from the candidate *)
  removed : int;        (** candidate neighborhoods absent from the query *)
  knob_edits : int;     (** differing config knobs (each costs 2) *)
}

val distance : fp -> fp -> diff option
(** [distance query candidate]; [None] when incomparable (different
    flow or allocation).  [distance fp fp = Some {distance = 0; ...}]
    and the metric is symmetric in the [distance] field (though
    [changed_ops] names query-side ops). *)

type 'a t
(** A bounded similarity index carrying ['a] payloads (the server
    stores the resolved job, {e not} the result — results live in the
    LRUs and are re-derived deterministically when evicted). *)

val create : ?capacity:int -> threshold:int -> unit -> 'a t
(** Bounded at [capacity] (default 64) entries, oldest dropped first.
    [nearest] only answers within [threshold] distance.
    @raise Invalid_argument when [capacity < 1] or [threshold < 0]. *)

val add : 'a t -> Cache_key.t -> fp -> 'a -> unit
(** Insert (or refresh) an entry; the same key is kept at most once. *)

val remove : 'a t -> Cache_key.t -> unit

val mem : 'a t -> Cache_key.t -> bool

val length : 'a t -> int

val threshold : 'a t -> int

val nearest : 'a t -> Cache_key.t -> fp -> (Cache_key.t * 'a * diff) option
(** [nearest t key fp] is the closest comparable entry within the
    threshold, or [None].  Strictly closer wins; at equal distance the
    most recently added entry wins, except that an entry whose key
    equals [key] always wins its distance class — so when the exact key
    is present, [nearest] returns it with distance 0, agreeing with a
    {!Cache_key} exact hit. *)

val stats : 'a t -> int * int
(** [(lookups, near-answers)] since creation. *)
