(** Client helper for the synthesis service.

    Two transports share one call interface:

    - {!in_process} drives a {!Server.t} directly — no pipes, no
      subprocess — which is what the load generator and the unit tests
      use;
    - {!spawn} forks a real [dcsa_synth serve] process and speaks the
      line protocol over its stdin/stdout, which is what the CI smoke
      test exercises;
    - {!of_channels} speaks the line protocol over arbitrary channels —
      the transport a TCP socket connection wraps
      ({!Mfb_net.Tcp_client}).

    All are synchronous: {!call} sends one request and blocks for its
    response. *)

type t

val in_process : Server.t -> t
(** Wrap a server living in this process. *)

val of_channels : input:in_channel -> output:out_channel -> t
(** Speak the line protocol over an existing channel pair (e.g. the two
    faces of a connected socket).  {!shutdown} closes both. *)

val spawn : string array -> t
(** [spawn [| prog; arg; … |]] starts [prog] with its stdin/stdout piped
    to this client.  The child is expected to speak the {!Protocol} line
    protocol. *)

val call : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, wait for one response.  [Error _] on EOF, a
    malformed response line, or a request the in-process server answered
    with silence. *)

val shutdown : t -> (Protocol.response, string) result
(** [call] with {!Protocol.Shutdown}; for a spawned child, also closes
    the pipes and reaps the process. *)
