(* The queue is a list kept sorted in dispatch order: priority
   descending, then submission sequence ascending.  Depths are small
   (tens), so O(depth) inserts keep the code obviously deterministic —
   no heap tie-break subtleties. *)

type 'a item = {
  id : string;
  priority : int;
  submitted : int;
  seq : int;
  deadline : int option;
  payload : 'a;
}

type 'a t = {
  depth_ : int;
  mutable items : 'a item list;  (* dispatch order *)
  mutable next_seq : int;
}

let create ~depth () =
  if depth < 1 then invalid_arg "Job_queue.create: depth < 1";
  { depth_ = depth; items = []; next_seq = 0 }

let depth q = q.depth_
let length q = List.length q.items

type 'a admission =
  | Admitted
  | Displaced of 'a item
  | Refused of string

(* [before a b]: does [a] dispatch before [b]? *)
let before a b =
  a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

let insert q item =
  let rec go = function
    | [] -> [ item ]
    | x :: rest -> if before item x then item :: x :: rest else x :: go rest
  in
  q.items <- go q.items

(* The weakest job is the last in dispatch order. *)
let drop_weakest q =
  match List.rev q.items with
  | [] -> None
  | weakest :: rest_rev ->
    q.items <- List.rev rest_rev;
    Some weakest

let submit q ~now ~id ~priority ?deadline payload =
  let item =
    { id; priority; submitted = now; seq = q.next_seq; deadline; payload }
  in
  if List.length q.items < q.depth_ then begin
    q.next_seq <- q.next_seq + 1;
    insert q item;
    Admitted
  end
  else
    match List.rev q.items with
    | [] -> assert false (* depth >= 1 *)
    | weakest :: _ when priority > weakest.priority ->
      let shed = Option.get (drop_weakest q) in
      q.next_seq <- q.next_seq + 1;
      insert q item;
      Displaced shed
    | _ ->
      Refused
        (Printf.sprintf
           "queue full (depth %d) and priority %d does not outrank the \
            weakest queued job"
           q.depth_ priority)

let expired ~now item =
  match item.deadline with
  | None -> false
  | Some d -> now > item.submitted + d

let pop_batch q ~now ~max =
  let dead, live = List.partition (expired ~now) q.items in
  let rec take n = function
    | [] -> ([], [])
    | rest when n = 0 -> ([], rest)
    | x :: rest ->
      let taken, left = take (n - 1) rest in
      (x :: taken, left)
  in
  let dispatched, left = take (Stdlib.max 0 max) live in
  q.items <- left;
  (dispatched, dead)

let queued q = q.items

let position q id =
  let rec go i = function
    | [] -> None
    | x :: rest -> if String.equal x.id id then Some i else go (i + 1) rest
  in
  go 0 q.items
