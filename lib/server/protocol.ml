module Json = Mfb_util.Json

type spec =
  | Benchmark of string
  | Assay of { text : string; alloc : (int * int * int * int) option }

type overrides = {
  o_seed : int option;
  o_tc : float option;
  o_sa_restarts : int option;
  o_backend : Mfb_schedule.Portfolio.backend option;
}

let no_overrides =
  { o_seed = None; o_tc = None; o_sa_restarts = None; o_backend = None }

type request =
  | Submit of {
      id : string;
      priority : int;
      deadline : int option;
      flow : [ `Ours | `Ba ];
      spec : spec;
      overrides : overrides;
      trace : string option;
    }
  | Status of string
  | Result of string
  | Repair of {
      id : string;
      target : string;
      defects : Mfb_repair.Defect.target list;
    }
  | Stats
  | Stats_prom
  | Shutdown

type response =
  | Submitted of { id : string; key : string }
  | Rejected of { op : string; id : string; reason : string }
  | Job_status of { id : string; state : string }
  | Job_result of {
      id : string;
      key : string;
      result : Json.t;
      spans : Json.t option;
    }
  | Repair_result of {
      id : string;
      target : string;
      key : string;
      warm : bool;
      report : Json.t;
    }
  | Stats_reply of Json.t
  | Stats_text of string
  | Goodbye of Json.t
  | Bad_request of { id : string option; message : string }

(* --- writers --- *)

let request_to_json = function
  | Submit { id; priority; deadline; flow; spec; overrides; trace } ->
    let spec_fields =
      match spec with
      | Benchmark b -> [ ("benchmark", Json.String b) ]
      | Assay { text; alloc } ->
        ("assay", Json.String text)
        ::
        (match alloc with
         | None -> []
         | Some (m, h, f, d) ->
           [ ("alloc", Json.List (List.map (fun i -> Json.Int i) [ m; h; f; d ])) ])
    in
    let opt name to_j = function
      | None -> []
      | Some v -> [ (name, to_j v) ]
    in
    Json.Obj
      ([ ("op", Json.String "submit"); ("id", Json.String id) ]
      @ spec_fields
      @ (if priority = 0 then [] else [ ("priority", Json.Int priority) ])
      @ opt "deadline" (fun d -> Json.Int d) deadline
      @ (match flow with
         | `Ours -> []
         | `Ba -> [ ("flow", Json.String "ba") ])
      @ opt "seed" (fun s -> Json.Int s) overrides.o_seed
      @ opt "tc" (fun t -> Json.Float t) overrides.o_tc
      @ opt "sa_restarts" (fun r -> Json.Int r) overrides.o_sa_restarts
      @ opt "backend"
          (fun b ->
            Json.String (Mfb_schedule.Portfolio.backend_to_string b))
          overrides.o_backend
      @ opt "trace" (fun t -> Json.String t) trace)
  | Status id ->
    Json.Obj [ ("op", Json.String "status"); ("id", Json.String id) ]
  | Result id ->
    Json.Obj [ ("op", Json.String "result"); ("id", Json.String id) ]
  | Repair { id; target; defects } ->
    Json.Obj
      [ ("op", Json.String "repair"); ("id", Json.String id);
        ("target", Json.String target);
        ( "defects",
          Json.List (List.map Mfb_repair.Defect.target_to_json defects) ) ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Stats_prom ->
    Json.Obj
      [ ("op", Json.String "stats"); ("format", Json.String "prometheus") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let response_to_json = function
  | Submitted { id; key } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "submit");
        ("id", Json.String id); ("key", Json.String key) ]
  | Rejected { op; id; reason } ->
    Json.Obj
      [ ("ok", Json.Bool false); ("op", Json.String op);
        ("id", Json.String id); ("reason", Json.String reason) ]
  | Job_status { id; state } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "status");
        ("id", Json.String id); ("state", Json.String state) ]
  | Job_result { id; key; result; spans } ->
    Json.Obj
      ([ ("ok", Json.Bool true); ("op", Json.String "result");
         ("id", Json.String id); ("key", Json.String key);
         ("result", result) ]
      @ (match spans with None -> [] | Some s -> [ ("spans", s) ]))
  | Repair_result { id; target; key; warm; report } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "repair");
        ("id", Json.String id); ("target", Json.String target);
        ("key", Json.String key); ("warm", Json.Bool warm);
        ("report", report) ]
  | Stats_reply stats ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "stats");
        ("stats", stats) ]
  | Stats_text text ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "stats");
        ("format", Json.String "prometheus"); ("text", Json.String text) ]
  | Goodbye stats ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "shutdown");
        ("stats", stats) ]
  | Bad_request { id; message } ->
    Json.Obj
      ([ ("ok", Json.Bool false); ("op", Json.String "error") ]
      @ (match id with None -> [] | Some id -> [ ("id", Json.String id) ])
      @ [ ("message", Json.String message) ])

(* --- readers --- *)

let field k v = Json.member k v

let string_field k v =
  match field k v with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let opt_int_field k v =
  match field k v with
  | None -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)

let opt_float_field k v =
  match field k v with
  | None -> Ok None
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> Error (Printf.sprintf "field %S must be a number" k)

let ( let* ) = Stdlib.Result.bind

let parse_spec v =
  match (field "benchmark" v, field "assay" v) with
  | Some _, Some _ -> Error "use either \"benchmark\" or \"assay\", not both"
  | Some (Json.String b), None -> Ok (Benchmark b)
  | Some _, None -> Error "field \"benchmark\" must be a string"
  | None, Some (Json.String text) ->
    let* alloc =
      match field "alloc" v with
      | None -> Ok None
      | Some (Json.List [ Json.Int m; Json.Int h; Json.Int f; Json.Int d ]) ->
        Ok (Some (m, h, f, d))
      | Some _ -> Error "field \"alloc\" must be [m,h,f,d]"
    in
    Ok (Assay { text; alloc })
  | None, Some _ -> Error "field \"assay\" must be a string"
  | None, None -> Error "submit needs \"benchmark\" or \"assay\""

let parse_submit v =
  let* id = string_field "id" v in
  let* spec = parse_spec v in
  let* priority = opt_int_field "priority" v in
  let* deadline = opt_int_field "deadline" v in
  let* flow =
    match field "flow" v with
    | None | Some (Json.String "ours") -> Ok `Ours
    | Some (Json.String "ba") -> Ok `Ba
    | Some _ -> Error "field \"flow\" must be \"ours\" or \"ba\""
  in
  let* o_seed = opt_int_field "seed" v in
  let* o_tc = opt_float_field "tc" v in
  let* o_sa_restarts = opt_int_field "sa_restarts" v in
  let* o_backend =
    match field "backend" v with
    | None -> Ok None
    | Some (Json.String s) ->
      (match Mfb_schedule.Portfolio.backend_of_string s with
       | Some b -> Ok (Some b)
       | None ->
         Error "field \"backend\" must be \"heuristic\", \"exact\" or \
                \"portfolio\"")
    | Some _ -> Error "field \"backend\" must be a string"
  in
  let* trace =
    match field "trace" v with
    | None -> Ok None
    | Some (Json.String t) -> Ok (Some t)
    | Some _ -> Error "field \"trace\" must be a string"
  in
  Ok
    (Submit
       {
         id;
         priority = Option.value priority ~default:0;
         deadline;
         flow;
         spec;
         overrides = { o_seed; o_tc; o_sa_restarts; o_backend };
         trace;
       })

let request_of_json v =
  let* op = string_field "op" v in
  match op with
  | "submit" -> parse_submit v
  | "status" ->
    let* id = string_field "id" v in
    Ok (Status id)
  | "result" ->
    let* id = string_field "id" v in
    Ok (Result id)
  | "repair" ->
    let* id = string_field "id" v in
    let* target = string_field "target" v in
    let* defects =
      match field "defects" v with
      | Some (Json.List entries) ->
        let* rev =
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* t = Mfb_repair.Defect.target_of_json e in
              Ok (t :: acc))
            (Ok []) entries
        in
        if rev = [] then Error "field \"defects\" must be non-empty"
        else Ok (List.rev rev)
      | Some _ -> Error "field \"defects\" must be an array"
      | None -> Error "missing field \"defects\""
    in
    Ok (Repair { id; target; defects })
  | "stats" ->
    (match field "format" v with
     | None -> Ok Stats
     | Some (Json.String "prometheus") -> Ok Stats_prom
     | Some (Json.String "json") -> Ok Stats
     | Some _ -> Error "field \"format\" must be \"json\" or \"prometheus\"")
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line line =
  let* v = Json.of_string line in
  request_of_json v

let request_to_line r = Json.to_string (request_to_json r)

let response_of_json v =
  let* ok =
    match field "ok" v with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "missing boolean field \"ok\""
  in
  let* op = string_field "op" v in
  let id_opt =
    match field "id" v with Some (Json.String s) -> Some s | _ -> None
  in
  if not ok then
    match op with
    | "error" ->
      let* message = string_field "message" v in
      Ok (Bad_request { id = id_opt; message })
    | op ->
      let* id = string_field "id" v in
      let* reason = string_field "reason" v in
      Ok (Rejected { op; id; reason })
  else
    match op with
    | "submit" ->
      let* id = string_field "id" v in
      let* key = string_field "key" v in
      Ok (Submitted { id; key })
    | "status" ->
      let* id = string_field "id" v in
      let* state = string_field "state" v in
      Ok (Job_status { id; state })
    | "result" ->
      let* id = string_field "id" v in
      let* key = string_field "key" v in
      (match field "result" v with
       | Some result ->
         Ok (Job_result { id; key; result; spans = field "spans" v })
       | None -> Error "missing field \"result\"")
    | "repair" ->
      let* id = string_field "id" v in
      let* target = string_field "target" v in
      let* key = string_field "key" v in
      let* warm =
        match field "warm" v with
        | Some (Json.Bool b) -> Ok b
        | _ -> Error "missing boolean field \"warm\""
      in
      (match field "report" v with
       | Some report -> Ok (Repair_result { id; target; key; warm; report })
       | None -> Error "missing field \"report\"")
    | "stats" ->
      (match (field "stats" v, field "text" v) with
       | Some stats, _ -> Ok (Stats_reply stats)
       | None, Some (Json.String text) -> Ok (Stats_text text)
       | None, _ -> Error "missing field \"stats\"")
    | "shutdown" ->
      (match field "stats" v with
       | Some stats -> Ok (Goodbye stats)
       | None -> Error "missing field \"stats\"")
    | op -> Error (Printf.sprintf "unknown response op %S" op)

let response_to_line r = Json.to_string (response_to_json r)

let response_of_line line =
  let* v = Json.of_string line in
  response_of_json v

(* --- bounded line reading --- *)

let default_max_line_bytes = 1 lsl 20

type line =
  | Line of string
  | Oversized of int
  | Eof

let input_line_bounded ?(max_bytes = default_max_line_bytes) ic =
  let buf = Buffer.create 256 in
  (* [over] counts discarded bytes once the cap is hit; the whole
     oversized line is consumed so the stream resyncs at the newline. *)
  let rec go over =
    match In_channel.input_char ic with
    | None ->
      if over > 0 then Oversized (Buffer.length buf + over)
      else if Buffer.length buf = 0 then Eof
      else Line (Buffer.contents buf)
    | Some '\n' ->
      if over > 0 then Oversized (Buffer.length buf + over)
      else Line (Buffer.contents buf)
    | Some c ->
      if Buffer.length buf >= max_bytes then go (over + 1)
      else begin
        Buffer.add_char buf c;
        go over
      end
  in
  go 0
