module Json = Mfb_util.Json
module Lru = Mfb_util.Lru
module Telemetry = Mfb_util.Telemetry
module Histogram = Mfb_util.Histogram
module P = Protocol

(* A fully resolved, validated synthesis job — everything needed to run
   it on any worker domain without touching server state.  The original
   [spec] and [overrides] ride along so a dispatch hook can re-submit
   the job verbatim to an out-of-process worker. *)
type job = {
  key : Cache_key.t;
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;
  config : Mfb_core.Config.t;
  flow : [ `Ours | `Ba ];
  spec : P.spec;
  overrides : P.overrides;
}

(* One batch slot's answer for one job.  The fleet dispatcher fills in
   attribution (slot, attempts, worker-side span tree); the in-process
   path leaves it empty, which is exactly what keeps the access log
   byte-identical between the two transports. *)
type dispatch_result = {
  d_payload : Json.t;
  d_slot : int option;
  d_attempts : int;
  d_spans : Telemetry.node list;
}

type config = {
  jobs : int;
  cache_capacity : int;
  queue_depth : int;
  batch : int;
  repair_cache : int;
  similarity : bool;
  sim_threshold : int;
  warm_delta : float;
  flow_config : Mfb_core.Config.t;
  dispatch : (job list -> dispatch_result list) option;
  extra_stats : (unit -> (string * Json.t) list) option;
  extra_prometheus : (Buffer.t -> unit) option;
  clock : [ `Virtual | `Wall ];
  access_log : out_channel option;
  slow_threshold : float option;
}

let default_config =
  {
    jobs = 1;
    cache_capacity = 128;
    queue_depth = 64;
    batch = 8;
    repair_cache = 8;
    similarity = false;
    sim_threshold = 8;
    warm_delta = 0.25;
    flow_config = Mfb_core.Config.default;
    dispatch = None;
    extra_stats = None;
    extra_prometheus = None;
    clock = `Virtual;
    access_log = None;
    slow_threshold = None;
  }

type outcome = Done of { key : Cache_key.t; payload : Json.t } | Shed of string

(* Request-scoped bookkeeping, keyed by client id from admission to the
   final outcome.  [rid] is the deterministic request id (a pure
   function of submission order), so every observability artifact that
   mentions it is identical across [--jobs] values and transports. *)
type req_info = {
  rid : string;
  submit_tick : int;
  submit_wall : float;
}

type t = {
  cfg : config;
  cache : (Cache_key.t, Json.t) Lru.t option;
  (* Full [Mfb_core.Result.t]s retained from in-process batch runs so a
     later repair request can warm-start instead of re-synthesizing.
     Small and separate from the summary cache: a full result holds the
     routed grid and schedule, not just scalar metrics. *)
  full : (Cache_key.t, Mfb_core.Result.t) Lru.t option;
  (* Similarity index over previously computed jobs.  Entries hold the
     resolved *job*, never its result: on a near-hit the candidate's
     full result is looked up in [full] and, when evicted, re-derived
     cold — deterministically byte-identical to the original run — so
     warm-start decisions and payloads are a pure function of the
     request script whatever the cache temperature or dispatch mode. *)
  sim : job Sim_index.t option;
  specs : (string, job) Hashtbl.t;  (* accepted id -> resolved job *)
  queue : job Job_queue.t;
  outcomes : (string, outcome) Hashtbl.t;
  ids : (string, unit) Hashtbl.t;  (* every accepted id, for dedupe *)
  req_info : (string, req_info) Hashtbl.t;
  h_latency : Histogram.t;    (* total request latency, clock units *)
  h_queue_wait : Histogram.t; (* queue wait in virtual ticks *)
  h_repair : Histogram.t;     (* repair latency, clock units *)
  h_warm : Histogram.t;       (* warm-start latency, clock units *)
  mutable next_rid : int;
  mutable tick : int;
  mutable submitted : int;
  mutable computed : int;
  mutable near_hits : int;
  mutable warm_fallbacks : int;
  mutable repairs : int;
  mutable repairs_warm : int;
  mutable shed_deadline : int;
  mutable shed_displaced : int;
  mutable rejected : int;
  mutable stopping : bool;
}

let create cfg =
  if cfg.jobs < 1 then invalid_arg "Server.create: jobs < 1";
  if cfg.batch < 1 then invalid_arg "Server.create: batch < 1";
  if cfg.cache_capacity < 0 then
    invalid_arg "Server.create: cache_capacity < 0";
  if cfg.repair_cache < 0 then invalid_arg "Server.create: repair_cache < 0";
  if cfg.sim_threshold < 0 then invalid_arg "Server.create: sim_threshold < 0";
  if cfg.warm_delta < 0. then invalid_arg "Server.create: warm_delta < 0";
  {
    cfg;
    cache =
      (if cfg.cache_capacity = 0 then None
       else Some (Lru.create ~name:"results" ~capacity:cfg.cache_capacity ()));
    full =
      (if cfg.repair_cache = 0 then None
       else
         Some (Lru.create ~name:"full-results" ~capacity:cfg.repair_cache ()));
    sim =
      (if not cfg.similarity then None
       else
         Some
           (Sim_index.create
              ~capacity:(max 16 cfg.cache_capacity)
              ~threshold:cfg.sim_threshold ()));
    specs = Hashtbl.create 64;
    queue = Job_queue.create ~depth:cfg.queue_depth ();
    outcomes = Hashtbl.create 64;
    ids = Hashtbl.create 64;
    req_info = Hashtbl.create 64;
    h_latency = Histogram.create ();
    h_queue_wait = Histogram.create ();
    h_repair = Histogram.create ();
    h_warm = Histogram.create ();
    next_rid = 0;
    tick = 0;
    submitted = 0;
    computed = 0;
    near_hits = 0;
    warm_fallbacks = 0;
    repairs = 0;
    repairs_warm = 0;
    shed_deadline = 0;
    shed_displaced = 0;
    rejected = 0;
    stopping = false;
  }

let current_tick t = t.tick

let shutting_down t = t.stopping

(* --- request resolution --- *)

let ( let* ) = Stdlib.Result.bind

let resolve_spec = function
  | P.Benchmark name ->
    (match Mfb_core.Suite.find name with
     | Some (inst : Mfb_core.Suite.instance) -> Ok (inst.graph, inst.allocation)
     | None ->
       Error
         (Printf.sprintf "unknown benchmark %S; try: %s" name
            (String.concat ", " Mfb_core.Suite.names)))
  | P.Assay { text; alloc } ->
    (match Mfb_bioassay.Assay_file.parse text with
     | Error e ->
       Error (Format.asprintf "assay: %a" Mfb_bioassay.Assay_file.pp_error e)
     | Ok graph ->
       let* allocation =
         match alloc with
         | None -> Ok (Mfb_component.Allocation.minimal_for graph)
         | Some v ->
           (match Mfb_component.Allocation.of_vector v with
            | a -> Ok a
            | exception Invalid_argument msg -> Error msg)
       in
       Ok (graph, allocation))

let apply_overrides (cfg : Mfb_core.Config.t) (o : P.overrides) =
  let cfg =
    match o.o_seed with None -> cfg | Some seed -> { cfg with seed }
  in
  let cfg = match o.o_tc with None -> cfg | Some tc -> { cfg with tc } in
  let cfg =
    match o.o_sa_restarts with
    | None -> cfg
    | Some sa_restarts -> { cfg with sa_restarts }
  in
  let cfg =
    match o.o_backend with
    | None -> cfg
    | Some backend -> { cfg with backend }
  in
  match Mfb_core.Config.validate cfg with
  | () -> Ok cfg
  | exception Invalid_argument msg -> Error msg

let resolve ~base ~flow ~overrides spec =
  let* graph, allocation = resolve_spec spec in
  let* () =
    if Mfb_component.Allocation.covers allocation graph then Ok ()
    else
      Error
        (Printf.sprintf "allocation %s does not cover every operation kind"
           (Mfb_component.Allocation.to_string allocation))
  in
  let* config = apply_overrides base overrides in
  let flow_name = match flow with `Ours -> "ours" | `Ba -> "ba" in
  let key = Cache_key.make ~flow:flow_name ~config ~graph ~allocation () in
  Ok { key; graph; allocation; config; flow; spec; overrides }

let resolve_job t ~flow ~overrides spec =
  resolve ~base:t.cfg.flow_config ~flow ~overrides spec

(* --- batch execution --- *)

let synthesize job =
  match job.flow with
  | `Ours ->
    Mfb_core.Flow.run ~config:job.config ~jobs:1 job.graph job.allocation
  | `Ba -> Mfb_core.Baseline.run ~config:job.config job.graph job.allocation

let run_job_full ?trace job =
  match trace with
  | None -> synthesize job
  | Some args ->
    Telemetry.span ~cat:"serve" ~args "request" (fun () -> synthesize job)

let run_job ?trace job =
  Mfb_core.Result.(summary_to_json (summarize (run_job_full ?trace job)))

(* Find-or-resynthesize a job's retained full result (warm-start seed
   for repairs and near-hits).  The cold branch re-runs with the same
   config and [jobs = 1], so it is byte-identical to the original batch
   run — cache temperature can only change latency, never bytes. *)
let full_result_of t (job : job) =
  match t.full with
  | None -> (synthesize job, false)
  | Some c ->
    (match Lru.find c job.key with
     | Some r -> (r, true)
     | None ->
       let r = synthesize job in
       Lru.add c job.key r;
       (r, false))

(* --- request observability ---

   Every submission is assigned a deterministic request id and ends in
   exactly one of the outcomes {hit, done, shed, rejected}.  At that
   point the server builds one span-tree [node] for the request — queue
   wait and compute phases as children, worker-side spans (when a fleet
   shipped them back) grafted under the compute phase — and feeds it to
   all three consumers: the telemetry sink (one subtrack per request),
   the access log (one JSONL record, plus the span tree for slow
   requests), and the latency/queue-wait histograms. *)

let next_rid t =
  t.next_rid <- t.next_rid + 1;
  Printf.sprintf "r%06d" t.next_rid

let key_prefix key =
  let hex = Cache_key.to_hex key in
  if String.length hex > 8 then String.sub hex 0 8 else hex

let backend_name (job : job) =
  Mfb_schedule.Portfolio.backend_to_string job.config.backend

let latency_units t (info : req_info) ~total_ticks =
  match t.cfg.clock with
  | `Virtual -> float_of_int total_ticks
  | `Wall -> (Unix.gettimeofday () -. info.submit_wall) *. 1000.0

let request_node ~rid ~id ~key ~backend ~outcome ?reason ?batch ?fleet
    ~queue_ticks ~compute_ticks ~worker_spans () =
  let open Telemetry in
  let args =
    [ ("rid", Str rid); ("id", Str id); ("key", Str key);
      ("backend", Str backend); ("outcome", Str outcome) ]
    @ (match reason with None -> [] | Some r -> [ ("reason", Str r) ])
    @ (match batch with None -> [] | Some b -> [ ("batch", Int b) ])
    @ (match fleet with
       | None -> []
       | Some (slot, retries) ->
         [ ("slot", Int slot); ("retries", Int retries) ])
  in
  let children =
    (if queue_ticks > 0 || compute_ticks > 0 then
       [ { n_name = "queue.wait"; n_cat = "serve"; n_args = [];
           n_dur_us = float_of_int queue_ticks; n_children = [] } ]
     else [])
    @ (if compute_ticks > 0 then
         [ { n_name = "compute"; n_cat = "serve"; n_args = [];
             n_dur_us = float_of_int compute_ticks;
             n_children = worker_spans } ]
       else [])
  in
  {
    n_name = "request";
    n_cat = "serve";
    n_args = args;
    n_dur_us = float_of_int (queue_ticks + compute_ticks);
    n_children = children;
  }

(* One JSONL record with a fixed field order, so [cmp] can prove the log
   is a pure function of the request script.  Fleet attribution rides in
   a trailing optional subobject that identity checks strip. *)
let access_fields ~rid ~id ~key ~backend ~outcome ?reason ?batch ?fleet
    ?spans ~queue_ticks ~compute_ticks () =
  [ ("rid", Json.String rid); ("id", Json.String id);
    ("key", Json.String key); ("backend", Json.String backend);
    ("outcome", Json.String outcome) ]
  @ (match reason with None -> [] | Some r -> [ ("reason", Json.String r) ])
  @ [ ("queue_ticks", Json.Int queue_ticks);
      ("compute_ticks", Json.Int compute_ticks);
      ("total_ticks", Json.Int (queue_ticks + compute_ticks)) ]
  @ (match batch with None -> [] | Some b -> [ ("batch", Json.Int b) ])
  @ (match fleet with
     | None -> []
     | Some (slot, retries) ->
       [ ( "fleet",
           Json.Obj [ ("slot", Json.Int slot); ("retries", Json.Int retries) ]
         ) ])
  @ (match spans with None -> [] | Some s -> [ ("spans", s) ])

let finish_request t ~rid ~id ~key ~backend ~outcome ?reason ?batch ?fleet
    ~queue_ticks ~compute_ticks ~worker_spans ~latency () =
  let node =
    request_node ~rid ~id ~key ~backend ~outcome ?reason ?batch ?fleet
      ~queue_ticks ~compute_ticks ~worker_spans ()
  in
  if Telemetry.active () then
    Telemetry.on_subtrack (Telemetry.subtrack rid) (fun () ->
        Telemetry.emit_node node);
  (match latency with
   | None -> ()
   | Some l -> Histogram.add t.h_latency l);
  (match t.cfg.access_log with
   | None -> ()
   | Some oc ->
     let slow =
       match (t.cfg.slow_threshold, latency) with
       | Some thr, Some l -> l >= thr
       | _ -> false
     in
     let spans =
       if slow then Some (Json.List [ Telemetry.node_to_json node ])
       else None
     in
     let fields =
       access_fields ~rid ~id ~key ~backend ~outcome ?reason ?batch ?fleet
         ?spans ~queue_ticks ~compute_ticks ()
     in
     output_string oc (Json.to_string (Json.Obj fields));
     output_char oc '\n';
     flush oc);
  Hashtbl.remove t.req_info id

let req_info_of t id =
  match Hashtbl.find_opt t.req_info id with
  | Some info -> info
  | None -> { rid = "-"; submit_tick = t.tick; submit_wall = 0.0 }

(* One virtual tick: shed expired jobs, then run up to [batch] jobs in
   dispatch order — identical keys computed once, results recorded and
   cached in dispatch order so every counter and payload is a pure
   function of the request sequence. *)
let process_batch t =
  t.tick <- t.tick + 1;
  Telemetry.incr ~cat:"serve" "batches";
  let batch_tick = t.tick in
  let queue_wait (it : job Job_queue.item) =
    max 0 (batch_tick - it.submitted - 1)
  in
  let dispatched, dead =
    Job_queue.pop_batch t.queue ~now:t.tick ~max:t.cfg.batch
  in
  List.iter
    (fun (it : job Job_queue.item) ->
      t.shed_deadline <- t.shed_deadline + 1;
      Telemetry.incr ~cat:"serve" "shed.deadline";
      Hashtbl.replace t.outcomes it.id
        (Shed
           (Printf.sprintf
              "deadline exceeded: submitted at tick %d with deadline %d, \
               dispatch attempted at tick %d"
              it.submitted
              (Option.value it.deadline ~default:0)
              t.tick));
      let info = req_info_of t it.id in
      let qw = queue_wait it in
      Histogram.add t.h_queue_wait (float_of_int qw);
      finish_request t ~rid:info.rid ~id:it.id
        ~key:(key_prefix it.payload.key) ~backend:(backend_name it.payload)
        ~outcome:"shed" ~reason:"deadline" ~batch:batch_tick ~queue_ticks:qw
        ~compute_ticks:0 ~worker_spans:[] ~latency:None ())
    dead;
  (* Keys neither cached nor already seen in this batch run once. *)
  let seen = Hashtbl.create 8 in
  let unique =
    List.filter
      (fun (it : job Job_queue.item) ->
        let key = it.payload.key in
        let cached =
          match t.cache with Some c -> Lru.mem c key | None -> false
        in
        if cached || Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      dispatched
  in
  (* Similarity pass: look for a near-matching cached solution for each
     unique job and try to warm-start from it.  Candidate full results
     resolve on the server thread — [full_result_of] touches the LRUs
     and re-synthesizes cold on eviction, keeping the seed a pure
     function of the request script — then the warm syntheses fan out
     on the pool.  A failed warm attempt (quality gate, unroutable
     task, component mismatch) rejoins the cold set in dispatch order
     and is counted as a fallback. *)
  let fp_of (job : job) =
    Sim_index.fingerprint
      ~flow:(match job.flow with `Ours -> "ours" | `Ba -> "ba")
      ~config:job.config ~graph:job.graph ~allocation:job.allocation ()
  in
  (* key -> (dispatch result, full result) for warm-started jobs *)
  let warm_tbl = Hashtbl.create 8 in
  let fps = Hashtbl.create 8 in
  (match t.sim with
   | None -> ()
   | Some sim ->
     let wall0 = Unix.gettimeofday () in
     let planned =
       List.filter_map
         (fun (it : job Job_queue.item) ->
           let job = it.payload in
           if job.flow <> `Ours then None
           else begin
             let fp = fp_of job in
             Hashtbl.replace fps job.key fp;
             match Sim_index.nearest sim job.key fp with
             | None -> None
             | Some (_ckey, cjob, _diff) ->
               let cached, cand_warm = full_result_of t cjob in
               Some (it, cached, cand_warm)
           end)
         unique
     in
     let attempts =
       Mfb_util.Pool.map ~label:"serve-warm" ~jobs:t.cfg.jobs
         (fun ((it : job Job_queue.item), cached, cand_warm) ->
           ( it,
             cand_warm,
             Mfb_repair.Warm.synthesize ~config:it.payload.config ~cached
               ~delta:t.cfg.warm_delta it.payload.graph it.payload.allocation
           ))
         planned
     in
     List.iter
       (fun ((it : job Job_queue.item), cand_warm, outcome) ->
         match outcome with
         | Error _ ->
           t.warm_fallbacks <- t.warm_fallbacks + 1;
           Telemetry.incr ~cat:"serve" "warm.fallbacks"
         | Ok (full, _report) ->
           t.near_hits <- t.near_hits + 1;
           Telemetry.incr ~cat:"serve" "near.hits";
           (* like repairs: a warm start whose seed sat in the full LRU
              costs 1 virtual tick, one whose seed had to be cold
              re-synthesized costs 2 — the histogram is a deterministic
              record of cache temperature *)
           let latency =
             match t.cfg.clock with
             | `Virtual -> if cand_warm then 1.0 else 2.0
             | `Wall -> (Unix.gettimeofday () -. wall0) *. 1000.0
           in
           Histogram.add t.h_warm latency;
           Hashtbl.replace warm_tbl it.payload.key
             ( {
                 d_payload =
                   Mfb_core.Result.(summary_to_json (summarize full));
                 d_slot = None;
                 d_attempts = 1;
                 d_spans = [];
               },
               full ))
       attempts);
  let cold =
    List.filter
      (fun (it : job Job_queue.item) ->
        not (Hashtbl.mem warm_tbl it.payload.key))
      unique
  in
  let cold_results =
    match t.cfg.dispatch with
    | Some dispatch ->
      List.map
        (fun r -> (r, None))
        (dispatch
           (List.map (fun (it : job Job_queue.item) -> it.payload) cold))
    | None ->
      (* Trace args are resolved on the server thread before fan-out so
         pool tasks never touch server state.  The full result rides
         back alongside the summary payload so it can be retained for
         warm-start repairs. *)
      let traced =
        List.map
          (fun (it : job Job_queue.item) ->
            let info = req_info_of t it.id in
            ( it,
              [ ("rid", Telemetry.Str info.rid);
                ("key", Telemetry.Str (key_prefix it.payload.key)) ] ))
          cold
      in
      Mfb_util.Pool.map ~label:"serve-job" ~jobs:t.cfg.jobs
        (fun ((it : job Job_queue.item), trace) ->
          let full = run_job_full ~trace it.payload in
          ( {
              d_payload = Mfb_core.Result.(summary_to_json (summarize full));
              d_slot = None;
              d_attempts = 1;
              d_spans = [];
            },
            Some full ))
        traced
  in
  let results =
    let cold_tbl = Hashtbl.create 8 in
    List.iter2
      (fun (it : job Job_queue.item) r ->
        Hashtbl.replace cold_tbl it.payload.key r)
      cold cold_results;
    List.map
      (fun (it : job Job_queue.item) ->
        match Hashtbl.find_opt warm_tbl it.payload.key with
        | Some (res, full) -> (res, Some full)
        | None -> Hashtbl.find cold_tbl it.payload.key)
      unique
  in
  t.computed <- t.computed + List.length unique;
  let fresh = Hashtbl.create 8 in
  (* key -> (fleet attribution, worker spans, computing id) for the jobs
     this batch actually ran; batch duplicates share the attribution but
     the span tree is grafted only under the computing request. *)
  let meta = Hashtbl.create 8 in
  List.iter2
    (fun (it : job Job_queue.item) (res, full) ->
      Hashtbl.replace fresh it.payload.key res.d_payload;
      Hashtbl.replace meta it.payload.key
        (res.d_slot, res.d_attempts, res.d_spans, it.id);
      (match t.cache with
       | Some c -> Lru.add c it.payload.key res.d_payload
       | None -> ());
      (match (t.full, full) with
       | Some c, Some r -> Lru.add c it.payload.key r
       | _ -> ());
      Hashtbl.replace t.outcomes it.id
        (Done { key = it.payload.key; payload = res.d_payload }))
    unique results;
  (* Every computed job (cold, warm or fleet-dispatched) becomes a
     future warm-start candidate.  Entries carry the resolved job, not
     the result — identical index contents on every transport. *)
  (match t.sim with
   | None -> ()
   | Some sim ->
     List.iter
       (fun (it : job Job_queue.item) ->
         let job = it.payload in
         if job.flow = `Ours then
           let fp =
             match Hashtbl.find_opt fps job.key with
             | Some fp -> fp
             | None -> fp_of job
           in
           Sim_index.add sim job.key fp job)
       unique);
  (* Batch duplicates and jobs answered by an earlier batch's cache
     entry: the [Lru.find] counts the reuse as a hit. *)
  List.iter
    (fun (it : job Job_queue.item) ->
      if not (Hashtbl.mem t.outcomes it.id) then begin
        let key = it.payload.key in
        let payload =
          match t.cache with
          | Some c ->
            (match Lru.find c key with
             | Some p -> p
             | None -> Hashtbl.find fresh key)
          | None -> Hashtbl.find fresh key
        in
        Hashtbl.replace t.outcomes it.id (Done { key; payload })
      end)
    dispatched;
  (* Observability pass, in dispatch order. *)
  List.iter
    (fun (it : job Job_queue.item) ->
      let info = req_info_of t it.id in
      let qw = queue_wait it in
      let fleet, worker_spans =
        match Hashtbl.find_opt meta it.payload.key with
        | Some (Some slot, attempts, spans, owner) ->
          ( Some (slot, max 0 (attempts - 1)),
            if owner = it.id then spans else [] )
        | Some (None, _, spans, owner) ->
          (None, if owner = it.id then spans else [])
        | None -> (None, [])
      in
      Histogram.add t.h_queue_wait (float_of_int qw);
      let total_ticks = qw + 1 in
      let outcome =
        if Hashtbl.mem warm_tbl it.payload.key then "near-hit" else "done"
      in
      finish_request t ~rid:info.rid ~id:it.id
        ~key:(key_prefix it.payload.key) ~backend:(backend_name it.payload)
        ~outcome ~batch:batch_tick ?fleet ~queue_ticks:qw
        ~compute_ticks:1 ~worker_spans
        ~latency:(Some (latency_units t info ~total_ticks))
        ())
    dispatched

let drain_until t id =
  while
    (not (Hashtbl.mem t.outcomes id)) && Job_queue.length t.queue > 0
  do
    process_batch t
  done

(* --- stats --- *)

let stats_json t =
  let cache_json =
    match t.cache with
    | None -> Json.Null
    | Some c ->
      let s = Lru.stats c in
      Json.Obj
        [
          ("capacity", Json.Int (Lru.capacity c));
          ("entries", Json.Int (Lru.length c));
          ("hits", Json.Int s.hits);
          ("misses", Json.Int s.misses);
          ("evictions", Json.Int s.evictions);
        ]
  in
  let fields =
    [
      ("tick", Json.Int t.tick);
      ("submitted", Json.Int t.submitted);
      ("computed", Json.Int t.computed);
      ("cache", cache_json);
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Job_queue.depth t.queue));
            ("queued", Json.Int (Job_queue.length t.queue));
          ] );
      ( "shed",
        Json.Obj
          [
            ("deadline", Json.Int t.shed_deadline);
            ("displaced", Json.Int t.shed_displaced);
          ] );
      ("rejected", Json.Int t.rejected);
      ("latency", Histogram.snapshot_json t.h_latency);
      ("queue_wait", Histogram.snapshot_json t.h_queue_wait);
    ]
    (* present only once a near-hit or fallback happened, so the stats
       payload stays byte-identical for similarity-free scripts *)
    @ (if t.near_hits + t.warm_fallbacks = 0 then []
       else
         [ ( "near",
             Json.Obj
               [
                 ("hits", Json.Int t.near_hits);
                 ("fallbacks", Json.Int t.warm_fallbacks);
                 ("latency", Histogram.snapshot_json t.h_warm);
               ] ) ])
    (* present only once a repair has run, so the stats payload stays
       byte-identical to older servers for scripts that never repair *)
    @ (if t.repairs = 0 then []
       else
         [ ( "repair",
             Json.Obj
               [
                 ("total", Json.Int t.repairs);
                 ("warm", Json.Int t.repairs_warm);
                 ("latency", Histogram.snapshot_json t.h_repair);
               ] ) ])
    @ [
        ("jobs", Json.Int t.cfg.jobs);
        ("config", Mfb_core.Config.to_json t.cfg.flow_config);
      ]
    @ (match t.cfg.extra_stats with None -> [] | Some f -> f ())
  in
  Json.Obj fields

let latency_histogram t = t.h_latency

let queue_wait_histogram t = t.h_queue_wait

let repair_latency_histogram t = t.h_repair

let warm_latency_histogram t = t.h_warm

let near_hit_counts t = (t.near_hits, t.warm_fallbacks)

(* Prometheus text exposition: server counters, cache counters, and the
   two rolling histograms; a fleet appends its per-slot series via
   [extra_prometheus].  Deterministic under the virtual clock. *)
let prometheus_stats t =
  let buf = Buffer.create 1024 in
  let counter name help v =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n# TYPE %s counter\n%s %d\n" name help
         name name v)
  in
  let gauge name help v =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n%s %d\n" name help name
         name v)
  in
  counter "dcsa_submitted_total" "accepted submissions" t.submitted;
  counter "dcsa_computed_total" "jobs synthesised (after dedup)" t.computed;
  Buffer.add_string buf
    (Printf.sprintf
       "# HELP dcsa_shed_total jobs shed before completion\n\
        # TYPE dcsa_shed_total counter\n\
        dcsa_shed_total{reason=\"deadline\"} %d\n\
        dcsa_shed_total{reason=\"displaced\"} %d\n"
       t.shed_deadline t.shed_displaced);
  counter "dcsa_rejected_total" "refused submissions" t.rejected;
  (match t.cache with
   | None -> ()
   | Some c ->
     let s = Lru.stats c in
     counter "dcsa_cache_hits_total" "result cache hits" s.hits;
     counter "dcsa_cache_misses_total" "result cache misses" s.misses;
     counter "dcsa_cache_evictions_total" "result cache evictions" s.evictions;
     gauge "dcsa_cache_entries" "live result cache entries" (Lru.length c));
  gauge "dcsa_tick" "virtual batch clock" t.tick;
  gauge "dcsa_queue_length" "jobs waiting in the queue"
    (Job_queue.length t.queue);
  Histogram.prometheus ~help:"request latency (ticks, or ms in wall mode)"
    ~name:"dcsa_request_latency" buf t.h_latency;
  Histogram.prometheus ~help:"queue wait (virtual ticks)"
    ~name:"dcsa_queue_wait_ticks" buf t.h_queue_wait;
  (* similarity series appear only once a near-hit or fallback happened,
     keeping the exposition byte-identical for similarity-free scripts *)
  if t.near_hits + t.warm_fallbacks > 0 then begin
    counter "dcsa_near_hits_total"
      "submissions answered by a warm start from a similar cached solution"
      t.near_hits;
    counter "dcsa_warm_fallbacks_total"
      "warm-start attempts that fell back to cold synthesis"
      t.warm_fallbacks;
    Histogram.prometheus
      ~help:"warm-start latency (ticks, or ms in wall mode)"
      ~name:"dcsa_warm_latency" buf t.h_warm
  end;
  (* like the stats payload: repair series appear only once a repair has
     run, keeping the exposition byte-identical for repair-free scripts *)
  if t.repairs > 0 then begin
    counter "dcsa_repairs_total" "repair requests answered" t.repairs;
    counter "dcsa_repairs_warm_total"
      "repairs warm-started from a retained full result" t.repairs_warm;
    Histogram.prometheus ~help:"repair latency (ticks, or ms in wall mode)"
      ~name:"dcsa_repair_latency" buf t.h_repair
  end;
  (match t.cfg.extra_prometheus with None -> () | Some f -> f buf);
  (* scrapers require the body to end in a newline; guard against an
     extra_prometheus hook that forgot its terminator *)
  if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) <> '\n'
  then Buffer.add_char buf '\n';
  Buffer.contents buf

(* Shutdown audit record: authoritative counter totals, independent of
   whether a telemetry sink was installed. *)
let totals_json t =
  let cache =
    match t.cache with
    | None ->
      Json.Obj
        [ ("hits", Json.Int 0); ("misses", Json.Int 0);
          ("evictions", Json.Int 0) ]
    | Some c ->
      let s = Lru.stats c in
      Json.Obj
        [ ("hits", Json.Int s.hits); ("misses", Json.Int s.misses);
          ("evictions", Json.Int s.evictions) ]
  in
  let queue =
    Json.Obj
      [
        ("submitted", Json.Int t.submitted);
        ("computed", Json.Int t.computed);
        ("shed", Json.Int (t.shed_deadline + t.shed_displaced));
        ("rejected", Json.Int t.rejected);
      ]
  in
  let cluster =
    let extra = match t.cfg.extra_stats with None -> [] | Some f -> f () in
    let fields =
      match List.assoc_opt "cluster" extra with
      | Some (Json.Obj fs) -> fs
      | _ -> []
    in
    let geti k =
      match List.assoc_opt k fields with Some (Json.Int i) -> i | _ -> 0
    in
    Json.Obj
      [
        ("dispatched", Json.Int (geti "dispatched"));
        ("retries", Json.Int (geti "retries"));
        ("degraded", Json.Int (geti "degraded"));
        ("respawns", Json.Int (geti "respawns"));
      ]
  in
  Json.Obj [ ("cache", cache); ("queue", queue); ("cluster", cluster) ]

let goodbye_json t =
  match stats_json t with
  | Json.Obj fields -> Json.Obj (fields @ [ ("totals", totals_json t) ])
  | other -> other

(* --- request handling --- *)

let handle_submit t ~id ~priority ~deadline ~flow ~spec ~overrides =
  let rid = next_rid t in
  let finish_rejected ~key ~backend ~reason =
    finish_request t ~rid ~id ~key ~backend ~outcome:"rejected" ~reason
      ~queue_ticks:0 ~compute_ticks:0 ~worker_spans:[] ~latency:None ()
  in
  if Hashtbl.mem t.ids id then begin
    finish_rejected ~key:"-" ~backend:"-" ~reason:"duplicate id";
    P.Rejected { op = "submit"; id; reason = "duplicate id" }
  end
  else
    match resolve_job t ~flow ~overrides spec with
    | Error reason ->
      t.rejected <- t.rejected + 1;
      finish_rejected ~key:"-" ~backend:"-" ~reason:"invalid spec";
      P.Rejected { op = "submit"; id; reason }
    | Ok job ->
      let hit =
        match t.cache with Some c -> Lru.find c job.key | None -> None
      in
      (match hit with
       | Some payload ->
         Hashtbl.replace t.ids id ();
         Hashtbl.replace t.specs id job;
         t.submitted <- t.submitted + 1;
         Hashtbl.replace t.outcomes id (Done { key = job.key; payload });
         let info =
           { rid; submit_tick = t.tick; submit_wall = Unix.gettimeofday () }
         in
         Hashtbl.replace t.req_info id info;
         finish_request t ~rid ~id ~key:(key_prefix job.key)
           ~backend:(backend_name job) ~outcome:"hit" ~queue_ticks:0
           ~compute_ticks:0 ~worker_spans:[]
           ~latency:(Some (latency_units t info ~total_ticks:0))
           ();
         P.Submitted { id; key = Cache_key.to_hex job.key }
       | None ->
         (match
            Job_queue.submit t.queue ~now:t.tick ~id ~priority ?deadline job
          with
          | Job_queue.Refused reason ->
            t.rejected <- t.rejected + 1;
            Telemetry.incr ~cat:"serve" "rejected";
            finish_rejected ~key:(key_prefix job.key)
              ~backend:(backend_name job) ~reason:"queue full";
            P.Rejected { op = "submit"; id; reason }
          | admission ->
            (match admission with
             | Job_queue.Displaced shed ->
               t.shed_displaced <- t.shed_displaced + 1;
               Telemetry.incr ~cat:"serve" "shed.displaced";
               Hashtbl.replace t.outcomes shed.id
                 (Shed
                    (Printf.sprintf
                       "displaced by higher-priority submission %S" id));
               let sinfo = req_info_of t shed.id in
               finish_request t ~rid:sinfo.rid ~id:shed.id
                 ~key:(key_prefix shed.payload.key)
                 ~backend:(backend_name shed.payload) ~outcome:"shed"
                 ~reason:"displaced"
                 ~queue_ticks:(max 0 (t.tick - sinfo.submit_tick))
                 ~compute_ticks:0 ~worker_spans:[] ~latency:None ()
             | _ -> ());
            Hashtbl.replace t.ids id ();
            Hashtbl.replace t.specs id job;
            t.submitted <- t.submitted + 1;
            Hashtbl.replace t.req_info id
              {
                rid;
                submit_tick = t.tick;
                submit_wall = Unix.gettimeofday ();
              };
            Telemetry.gauge ~cat:"serve" "queue.depth"
              (float_of_int (Job_queue.length t.queue));
            while Job_queue.length t.queue >= t.cfg.batch do
              process_batch t
            done;
            P.Submitted { id; key = Cache_key.to_hex job.key }))

(* --- defect repair ---

   A repair request names a previously accepted submission and a defect
   set, and answers with the {!Mfb_repair.Plan} report.  Warm path: the
   target's full result is still retained from its in-process batch run
   — the repair warm-starts from it in one virtual tick.  Cold path: the
   full result must first be re-synthesized (same config, [jobs = 1], so
   byte-identical to the original run) — two ticks.  The report is a
   pure function of (job, defects) either way; cache temperature can
   only change latency, never bytes, exactly like the summary cache. *)

let handle_repair t ~id ~target ~defects =
  let rid = next_rid t in
  let wall0 = Unix.gettimeofday () in
  let log ~key ~backend ~outcome ?reason ~compute_ticks () =
    match t.cfg.access_log with
    | None -> ()
    | Some oc ->
      let fields =
        access_fields ~rid ~id ~key ~backend ~outcome ?reason ~queue_ticks:0
          ~compute_ticks ()
      in
      output_string oc (Json.to_string (Json.Obj fields));
      output_char oc '\n';
      flush oc
  in
  let rejected ~key ~backend ~why reason =
    log ~key ~backend ~outcome:"rejected" ~reason:why ~compute_ticks:0 ();
    P.Rejected { op = "repair"; id; reason }
  in
  if Hashtbl.mem t.ids id then
    rejected ~key:"-" ~backend:"-" ~why:"duplicate id" "duplicate id"
  else begin
    (* a still-queued target is forced to an outcome first, exactly as a
       [result] request would *)
    if
      (not (Hashtbl.mem t.outcomes target))
      && Job_queue.position t.queue target <> None
    then drain_until t target;
    match Hashtbl.find_opt t.specs target with
    | None ->
      log ~key:"-" ~backend:"-" ~outcome:"rejected" ~reason:"unknown target"
        ~compute_ticks:0 ();
      P.Bad_request
        { id = Some id;
          message = Printf.sprintf "unknown target id %S" target }
    | Some job ->
      let key = key_prefix job.key in
      let backend = backend_name job in
      (match Hashtbl.find_opt t.outcomes target with
       | Some (Shed reason) ->
         rejected ~key ~backend ~why:"target shed" ("target was shed: " ^ reason)
       | None ->
         rejected ~key ~backend ~why:"target pending" "target has no result yet"
       | Some (Done _) ->
         Hashtbl.replace t.ids id ();
         let full, warm = full_result_of t job in
         let plan =
           List.map
             (fun tg -> { Mfb_repair.Defect.tick = 0; target = tg })
             defects
         in
         (match Mfb_repair.Defect.check full.Mfb_core.Result.chip plan with
          | Error reason ->
            rejected ~key ~backend ~why:"invalid defects" reason
          | Ok () ->
            let compute_ticks = if warm then 1 else 2 in
            let run () =
              Mfb_repair.Plan.repair ~config:job.config full ~defects
            in
            (* the repair span lands under a real request span on this
               request's subtrack *)
            let o =
              if Telemetry.active () then
                Telemetry.on_subtrack (Telemetry.subtrack rid) (fun () ->
                    Telemetry.span ~cat:"serve"
                      ~args:
                        [ ("rid", Telemetry.Str rid); ("id", Telemetry.Str id);
                          ("target", Telemetry.Str target);
                          ("key", Telemetry.Str key);
                          ("outcome", Telemetry.Str "repair") ]
                      "request" run)
              else run ()
            in
            let errors =
              if o.Mfb_repair.Plan.report.survived then
                Mfb_repair.Plan.verify ~config:job.config ~defects o
              else []
            in
            (match errors with
             | err :: _ ->
               rejected ~key ~backend ~why:"illegal repair"
                 ("repair produced an illegal result: " ^ err)
             | [] ->
               t.repairs <- t.repairs + 1;
               if warm then t.repairs_warm <- t.repairs_warm + 1;
               let latency =
                 match t.cfg.clock with
                 | `Virtual -> float_of_int compute_ticks
                 | `Wall -> (Unix.gettimeofday () -. wall0) *. 1000.0
               in
               Histogram.add t.h_repair latency;
               log ~key ~backend
                 ~outcome:(if warm then "repair" else "repair-cold")
                 ~compute_ticks ();
               P.Repair_result
                 {
                   id;
                   target;
                   key = Cache_key.to_hex job.key;
                   warm;
                   report = Mfb_repair.Plan.report_to_json o.report;
                 })))
  end

let handle t req =
  match req with
  | P.Submit { id; priority; deadline; flow; spec; overrides; trace = _ } ->
    (* the serving tier assigns its own request ids; inbound trace
       context is only meaningful on the worker wire protocol *)
    handle_submit t ~id ~priority ~deadline ~flow ~spec ~overrides
  | P.Status id ->
    (match Hashtbl.find_opt t.outcomes id with
     | Some (Done _) -> P.Job_status { id; state = "done" }
     | Some (Shed _) -> P.Job_status { id; state = "shed" }
     | None ->
       if Job_queue.position t.queue id <> None then
         P.Job_status { id; state = "queued" }
       else P.Bad_request { id = Some id; message = "unknown id" })
  | P.Result id ->
    if
      (not (Hashtbl.mem t.outcomes id))
      && Job_queue.position t.queue id <> None
    then drain_until t id;
    (match Hashtbl.find_opt t.outcomes id with
     | Some (Done { key; payload }) ->
       P.Job_result
         { id; key = Cache_key.to_hex key; result = payload; spans = None }
     | Some (Shed reason) -> P.Rejected { op = "result"; id; reason }
     | None -> P.Bad_request { id = Some id; message = "unknown id" })
  | P.Repair { id; target; defects } -> handle_repair t ~id ~target ~defects
  | P.Stats -> P.Stats_reply (stats_json t)
  | P.Stats_prom -> P.Stats_text (prometheus_stats t)
  | P.Shutdown ->
    t.stopping <- true;
    (* drain in-flight jobs so the final stats snapshot accounts for
       every accepted submission (computed or shed, never dropped) *)
    while Job_queue.length t.queue > 0 do
      process_batch t
    done;
    P.Goodbye (goodbye_json t)

let handle_line t line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else
    let response =
      match P.request_of_line trimmed with
      | Error message -> P.Bad_request { id = None; message }
      | Ok req ->
        (match handle t req with
         | resp -> resp
         | exception exn ->
           P.Bad_request
             { id = None; message = "internal: " ^ Printexc.to_string exn })
    in
    Some (P.response_to_line response)

let serve ?(input = stdin) ?(output = stdout) t =
  (* A client that closes its read end between request and reply must
     surface as EPIPE on our write, never as a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* true once the reply channel is gone: the dropped reply is logged
     and the loop stops — the work itself (cache fills, counters, access
     log) has already happened and is kept. *)
  let output_dead = ref false in
  let respond = function
    | None -> ()
    | Some resp ->
      (try
         output_string output resp;
         output_char output '\n';
         flush output
       with Sys_error _ | Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
         output_dead := true;
         Printf.eprintf
           "dcsa-serve: client disconnected; dropped reply (%d bytes)\n%!"
           (String.length resp + 1))
  in
  let rec loop () =
    if not (t.stopping || !output_dead) then
      match P.input_line_bounded input with
      | P.Eof -> ()
      | P.Line line ->
        respond (handle_line t line);
        loop ()
      | P.Oversized len ->
        respond
          (Some
             (P.response_to_line
                (P.Bad_request
                   {
                     id = None;
                     message =
                       Printf.sprintf
                         "input line too long: %d bytes exceeds the %d-byte \
                          limit"
                         len P.default_max_line_bytes;
                   })));
        loop ()
  in
  loop ()
