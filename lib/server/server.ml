module Json = Mfb_util.Json
module Lru = Mfb_util.Lru
module Telemetry = Mfb_util.Telemetry
module P = Protocol

(* A fully resolved, validated synthesis job — everything needed to run
   it on any worker domain without touching server state.  The original
   [spec] and [overrides] ride along so a dispatch hook can re-submit
   the job verbatim to an out-of-process worker. *)
type job = {
  key : Cache_key.t;
  graph : Mfb_bioassay.Seq_graph.t;
  allocation : Mfb_component.Allocation.t;
  config : Mfb_core.Config.t;
  flow : [ `Ours | `Ba ];
  spec : P.spec;
  overrides : P.overrides;
}

type config = {
  jobs : int;
  cache_capacity : int;
  queue_depth : int;
  batch : int;
  flow_config : Mfb_core.Config.t;
  dispatch : (job list -> Json.t list) option;
  extra_stats : (unit -> (string * Json.t) list) option;
}

let default_config =
  {
    jobs = 1;
    cache_capacity = 128;
    queue_depth = 64;
    batch = 8;
    flow_config = Mfb_core.Config.default;
    dispatch = None;
    extra_stats = None;
  }

type outcome = Done of { key : Cache_key.t; payload : Json.t } | Shed of string

type t = {
  cfg : config;
  cache : (Cache_key.t, Json.t) Lru.t option;
  queue : job Job_queue.t;
  outcomes : (string, outcome) Hashtbl.t;
  ids : (string, unit) Hashtbl.t;  (* every accepted id, for dedupe *)
  mutable tick : int;
  mutable submitted : int;
  mutable computed : int;
  mutable shed_deadline : int;
  mutable shed_displaced : int;
  mutable rejected : int;
  mutable stopping : bool;
}

let create cfg =
  if cfg.jobs < 1 then invalid_arg "Server.create: jobs < 1";
  if cfg.batch < 1 then invalid_arg "Server.create: batch < 1";
  if cfg.cache_capacity < 0 then
    invalid_arg "Server.create: cache_capacity < 0";
  {
    cfg;
    cache =
      (if cfg.cache_capacity = 0 then None
       else Some (Lru.create ~name:"results" ~capacity:cfg.cache_capacity ()));
    queue = Job_queue.create ~depth:cfg.queue_depth ();
    outcomes = Hashtbl.create 64;
    ids = Hashtbl.create 64;
    tick = 0;
    submitted = 0;
    computed = 0;
    shed_deadline = 0;
    shed_displaced = 0;
    rejected = 0;
    stopping = false;
  }

let shutting_down t = t.stopping

(* --- request resolution --- *)

let ( let* ) = Stdlib.Result.bind

let resolve_spec = function
  | P.Benchmark name ->
    (match Mfb_core.Suite.find name with
     | Some (inst : Mfb_core.Suite.instance) -> Ok (inst.graph, inst.allocation)
     | None ->
       Error
         (Printf.sprintf "unknown benchmark %S; try: %s" name
            (String.concat ", " Mfb_core.Suite.names)))
  | P.Assay { text; alloc } ->
    (match Mfb_bioassay.Assay_file.parse text with
     | Error e ->
       Error (Format.asprintf "assay: %a" Mfb_bioassay.Assay_file.pp_error e)
     | Ok graph ->
       let* allocation =
         match alloc with
         | None -> Ok (Mfb_component.Allocation.minimal_for graph)
         | Some v ->
           (match Mfb_component.Allocation.of_vector v with
            | a -> Ok a
            | exception Invalid_argument msg -> Error msg)
       in
       Ok (graph, allocation))

let apply_overrides (cfg : Mfb_core.Config.t) (o : P.overrides) =
  let cfg =
    match o.o_seed with None -> cfg | Some seed -> { cfg with seed }
  in
  let cfg = match o.o_tc with None -> cfg | Some tc -> { cfg with tc } in
  let cfg =
    match o.o_sa_restarts with
    | None -> cfg
    | Some sa_restarts -> { cfg with sa_restarts }
  in
  let cfg =
    match o.o_backend with
    | None -> cfg
    | Some backend -> { cfg with backend }
  in
  match Mfb_core.Config.validate cfg with
  | () -> Ok cfg
  | exception Invalid_argument msg -> Error msg

let resolve ~base ~flow ~overrides spec =
  let* graph, allocation = resolve_spec spec in
  let* () =
    if Mfb_component.Allocation.covers allocation graph then Ok ()
    else
      Error
        (Printf.sprintf "allocation %s does not cover every operation kind"
           (Mfb_component.Allocation.to_string allocation))
  in
  let* config = apply_overrides base overrides in
  let flow_name = match flow with `Ours -> "ours" | `Ba -> "ba" in
  let key = Cache_key.make ~flow:flow_name ~config ~graph ~allocation () in
  Ok { key; graph; allocation; config; flow; spec; overrides }

let resolve_job t ~flow ~overrides spec =
  resolve ~base:t.cfg.flow_config ~flow ~overrides spec

(* --- batch execution --- *)

let run_job job =
  let r =
    match job.flow with
    | `Ours ->
      Mfb_core.Flow.run ~config:job.config ~jobs:1 job.graph job.allocation
    | `Ba -> Mfb_core.Baseline.run ~config:job.config job.graph job.allocation
  in
  Mfb_core.Result.(summary_to_json (summarize r))

(* One virtual tick: shed expired jobs, then run up to [batch] jobs in
   dispatch order — identical keys computed once, results recorded and
   cached in dispatch order so every counter and payload is a pure
   function of the request sequence. *)
let process_batch t =
  t.tick <- t.tick + 1;
  Telemetry.incr ~cat:"serve" "batches";
  let dispatched, dead =
    Job_queue.pop_batch t.queue ~now:t.tick ~max:t.cfg.batch
  in
  List.iter
    (fun (it : job Job_queue.item) ->
      t.shed_deadline <- t.shed_deadline + 1;
      Telemetry.incr ~cat:"serve" "shed.deadline";
      Hashtbl.replace t.outcomes it.id
        (Shed
           (Printf.sprintf
              "deadline exceeded: submitted at tick %d with deadline %d, \
               dispatch attempted at tick %d"
              it.submitted
              (Option.value it.deadline ~default:0)
              t.tick)))
    dead;
  (* Keys neither cached nor already seen in this batch run once. *)
  let seen = Hashtbl.create 8 in
  let unique =
    List.filter
      (fun (it : job Job_queue.item) ->
        let key = it.payload.key in
        let cached =
          match t.cache with Some c -> Lru.mem c key | None -> false
        in
        if cached || Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      dispatched
  in
  let payloads =
    match t.cfg.dispatch with
    | Some dispatch ->
      dispatch (List.map (fun (it : job Job_queue.item) -> it.payload) unique)
    | None ->
      Mfb_util.Pool.map ~label:"serve-job" ~jobs:t.cfg.jobs
        (fun (it : job Job_queue.item) -> run_job it.payload)
        unique
  in
  t.computed <- t.computed + List.length unique;
  let fresh = Hashtbl.create 8 in
  List.iter2
    (fun (it : job Job_queue.item) payload ->
      Hashtbl.replace fresh it.payload.key payload;
      (match t.cache with
       | Some c -> Lru.add c it.payload.key payload
       | None -> ());
      Hashtbl.replace t.outcomes it.id (Done { key = it.payload.key; payload }))
    unique payloads;
  (* Batch duplicates and jobs answered by an earlier batch's cache
     entry: the [Lru.find] counts the reuse as a hit. *)
  List.iter
    (fun (it : job Job_queue.item) ->
      if not (Hashtbl.mem t.outcomes it.id) then begin
        let key = it.payload.key in
        let payload =
          match t.cache with
          | Some c ->
            (match Lru.find c key with
             | Some p -> p
             | None -> Hashtbl.find fresh key)
          | None -> Hashtbl.find fresh key
        in
        Hashtbl.replace t.outcomes it.id (Done { key; payload })
      end)
    dispatched

let drain_until t id =
  while
    (not (Hashtbl.mem t.outcomes id)) && Job_queue.length t.queue > 0
  do
    process_batch t
  done

(* --- stats --- *)

let stats_json t =
  let cache_json =
    match t.cache with
    | None -> Json.Null
    | Some c ->
      let s = Lru.stats c in
      Json.Obj
        [
          ("capacity", Json.Int (Lru.capacity c));
          ("entries", Json.Int (Lru.length c));
          ("hits", Json.Int s.hits);
          ("misses", Json.Int s.misses);
          ("evictions", Json.Int s.evictions);
        ]
  in
  let fields =
    [
      ("tick", Json.Int t.tick);
      ("submitted", Json.Int t.submitted);
      ("computed", Json.Int t.computed);
      ("cache", cache_json);
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Job_queue.depth t.queue));
            ("queued", Json.Int (Job_queue.length t.queue));
          ] );
      ( "shed",
        Json.Obj
          [
            ("deadline", Json.Int t.shed_deadline);
            ("displaced", Json.Int t.shed_displaced);
          ] );
      ("rejected", Json.Int t.rejected);
      ("jobs", Json.Int t.cfg.jobs);
      ("config", Mfb_core.Config.to_json t.cfg.flow_config);
    ]
    @ (match t.cfg.extra_stats with None -> [] | Some f -> f ())
  in
  Json.Obj fields

(* --- request handling --- *)

let handle_submit t ~id ~priority ~deadline ~flow ~spec ~overrides =
  if Hashtbl.mem t.ids id then
    P.Rejected { op = "submit"; id; reason = "duplicate id" }
  else
    match resolve_job t ~flow ~overrides spec with
    | Error reason ->
      t.rejected <- t.rejected + 1;
      P.Rejected { op = "submit"; id; reason }
    | Ok job ->
      let hit =
        match t.cache with Some c -> Lru.find c job.key | None -> None
      in
      (match hit with
       | Some payload ->
         Hashtbl.replace t.ids id ();
         t.submitted <- t.submitted + 1;
         Hashtbl.replace t.outcomes id (Done { key = job.key; payload });
         P.Submitted { id; key = Cache_key.to_hex job.key }
       | None ->
         (match
            Job_queue.submit t.queue ~now:t.tick ~id ~priority ?deadline job
          with
          | Job_queue.Refused reason ->
            t.rejected <- t.rejected + 1;
            Telemetry.incr ~cat:"serve" "rejected";
            P.Rejected { op = "submit"; id; reason }
          | admission ->
            (match admission with
             | Job_queue.Displaced shed ->
               t.shed_displaced <- t.shed_displaced + 1;
               Telemetry.incr ~cat:"serve" "shed.displaced";
               Hashtbl.replace t.outcomes shed.id
                 (Shed
                    (Printf.sprintf
                       "displaced by higher-priority submission %S" id))
             | _ -> ());
            Hashtbl.replace t.ids id ();
            t.submitted <- t.submitted + 1;
            Telemetry.gauge ~cat:"serve" "queue.depth"
              (float_of_int (Job_queue.length t.queue));
            while Job_queue.length t.queue >= t.cfg.batch do
              process_batch t
            done;
            P.Submitted { id; key = Cache_key.to_hex job.key }))

let handle t req =
  match req with
  | P.Submit { id; priority; deadline; flow; spec; overrides } ->
    handle_submit t ~id ~priority ~deadline ~flow ~spec ~overrides
  | P.Status id ->
    (match Hashtbl.find_opt t.outcomes id with
     | Some (Done _) -> P.Job_status { id; state = "done" }
     | Some (Shed _) -> P.Job_status { id; state = "shed" }
     | None ->
       if Job_queue.position t.queue id <> None then
         P.Job_status { id; state = "queued" }
       else P.Bad_request { id = Some id; message = "unknown id" })
  | P.Result id ->
    if
      (not (Hashtbl.mem t.outcomes id))
      && Job_queue.position t.queue id <> None
    then drain_until t id;
    (match Hashtbl.find_opt t.outcomes id with
     | Some (Done { key; payload }) ->
       P.Job_result { id; key = Cache_key.to_hex key; result = payload }
     | Some (Shed reason) -> P.Rejected { op = "result"; id; reason }
     | None -> P.Bad_request { id = Some id; message = "unknown id" })
  | P.Stats -> P.Stats_reply (stats_json t)
  | P.Shutdown ->
    t.stopping <- true;
    (* drain in-flight jobs so the final stats snapshot accounts for
       every accepted submission (computed or shed, never dropped) *)
    while Job_queue.length t.queue > 0 do
      process_batch t
    done;
    P.Goodbye (stats_json t)

let handle_line t line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else
    let response =
      match P.request_of_line trimmed with
      | Error message -> P.Bad_request { id = None; message }
      | Ok req ->
        (match handle t req with
         | resp -> resp
         | exception exn ->
           P.Bad_request
             { id = None; message = "internal: " ^ Printexc.to_string exn })
    in
    Some (P.response_to_line response)

let serve ?(input = stdin) ?(output = stdout) t =
  let respond = function
    | None -> ()
    | Some resp ->
      output_string output resp;
      output_char output '\n';
      flush output
  in
  let rec loop () =
    if not t.stopping then
      match P.input_line_bounded input with
      | P.Eof -> ()
      | P.Line line ->
        respond (handle_line t line);
        loop ()
      | P.Oversized len ->
        respond
          (Some
             (P.response_to_line
                (P.Bad_request
                   {
                     id = None;
                     message =
                       Printf.sprintf
                         "input line too long: %d bytes exceeds the %d-byte \
                          limit"
                         len P.default_max_line_bytes;
                   })));
        loop ()
  in
  loop ()
