(** Content-addressed request keys for the synthesis service.

    Synthesis ({!Mfb_core.Flow.run} / {!Mfb_core.Baseline.run}) is a
    pure function of (sequencing graph, allocation, config, flow), so a
    request can be memoised under a key derived from that content alone.
    The key must be {e canonical}: two requests that denote the same
    synthesis problem must collide even when their textual sources
    differ.  Concretely, the key is invariant under

    - whitespace, comments and line order of the assay file (the parser
      already normalises those away), and
    - relabelling of operation ids: the graph contributes a structural
      fingerprint built from per-operation labels (kind, duration,
      output-fluid name/diffusion/wash override) refined by ancestor and
      descendant hashes, never from the dense ids themselves;

    while any change to an operation's duration or kind, a fluid's
    diffusion coefficient or wash override, the dependency structure,
    the allocation vector, the flow selection, or any {!Mfb_core.Config}
    field (annealing schedule included) produces a different key.

    Hashing is 64-bit FNV-1a over a canonical byte encoding — no
    external dependency, stable across hosts and OCaml versions. *)

type t
(** A 64-bit content hash. *)

val make :
  ?flow:string ->
  config:Mfb_core.Config.t ->
  graph:Mfb_bioassay.Seq_graph.t ->
  allocation:Mfb_component.Allocation.t ->
  unit ->
  t
(** [make ~config ~graph ~allocation ()] is the request key; [flow]
    (default ["ours"]) distinguishes the paper's flow from the baseline
    and ablations. *)

val graph_fingerprint : Mfb_bioassay.Seq_graph.t -> int64
(** The relabelling-invariant structural hash of the graph alone
    (exposed for tests: permuting operation ids must not change it). *)

val op_label : Mfb_bioassay.Operation.t -> int64
(** Intrinsic hash of one operation — kind, duration, output-fluid
    name/diffusion/wash override — independent of its id. *)

val neighborhood_hashes : Mfb_bioassay.Seq_graph.t -> int64 array
(** Per-operation radius-1 hashes, indexed by operation id: the op's
    own {!op_label} mixed with the sorted labels of its parents and of
    its children.  The {e multiset} of these hashes is invariant to id
    relabelling; a single-op edit perturbs only the edited op and its
    direct neighbors — the basis of {!Sim_index} distance. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** For [Hashtbl]-style use. *)

val to_hex : t -> string
(** 16 lowercase hex digits — the wire form quoted in protocol
    responses. *)

val to_int64 : t -> int64
(** The raw 64-bit hash — what a consistent-hash ring places on its
    circle to shard keys across fleet members. *)
