type transport =
  | In_process of Server.t
  | Process of { pid : int; to_srv : out_channel; from_srv : in_channel }
  | Channels of { to_srv : out_channel; from_srv : in_channel }

type t = { transport : transport }

let in_process server = { transport = In_process server }

let of_channels ~input ~output =
  { transport = Channels { to_srv = output; from_srv = input } }

let spawn argv =
  if Array.length argv = 0 then invalid_arg "Client.spawn: empty argv";
  let srv_in_read, srv_in_write = Unix.pipe ~cloexec:false () in
  let srv_out_read, srv_out_write = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process argv.(0) argv srv_in_read srv_out_write Unix.stderr
  in
  Unix.close srv_in_read;
  Unix.close srv_out_write;
  {
    transport =
      Process
        {
          pid;
          to_srv = Unix.out_channel_of_descr srv_in_write;
          from_srv = Unix.in_channel_of_descr srv_out_read;
        };
  }

let line_call ~to_srv ~from_srv req =
  match
    output_string to_srv (Protocol.request_to_line req);
    output_char to_srv '\n';
    flush to_srv
  with
  | () ->
    (match In_channel.input_line from_srv with
     | Some line -> Protocol.response_of_line line
     | None -> Error "server closed the connection")
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let call t req =
  match t.transport with
  | In_process server ->
    (match Server.handle_line server (Protocol.request_to_line req) with
     | Some line -> Protocol.response_of_line line
     | None -> Error "server produced no response")
  | Process { to_srv; from_srv; _ } -> line_call ~to_srv ~from_srv req
  | Channels { to_srv; from_srv } -> line_call ~to_srv ~from_srv req

let shutdown t =
  let resp = call t Protocol.Shutdown in
  (match t.transport with
   | In_process _ -> ()
   | Process p ->
     close_out_noerr p.to_srv;
     close_in_noerr p.from_srv;
     (try ignore (Unix.waitpid [] p.pid) with Unix.Unix_error _ -> ())
   | Channels c ->
     close_out_noerr c.to_srv;
     close_in_noerr c.from_srv);
  resp
