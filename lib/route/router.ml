module Interval = Mfb_util.Interval
module Telemetry = Mfb_util.Telemetry
module Types = Mfb_schedule.Types

let sorted_transports (sched : Types.t) =
  List.sort
    (fun (a : Types.transport) b ->
      let c = Float.compare a.removal b.removal in
      if c <> 0 then c else Float.compare a.depart b.depart)
    sched.transports

(* Exchange rate between postponing a transport and lengthening its
   channel: one second of delay costs as much as one fresh routing cell
   (whose weighted cost is [1 + w_e]).  A short wait on an existing
   channel then beats a long detour onto fresh cells, which is how the
   proposed flow keeps both execution time and channel length low. *)
let delay_cost_per_second = 8.

let delay_candidates = [ 0.; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 6.0; 8.0 ]

(* Route one transport with the conflict-aware weighted A*, choosing the
   cheapest (path cost + delay penalty) over a few postponement
   candidates. *)
let route_task ~weight_update grid ~tc (tr : Types.transport) =
  let srcs = Rgrid.ports grid tr.src and dsts = Rgrid.ports grid tr.dst in
  let effort = Astar.stats () in
  (* All delay candidates aim at the same destination ports, so they
     share one heuristic-field build per distinct usable-set. *)
  let field_cache = Hashtbl.create 4 in
  let attempt delay =
    let usable xy = Routed.usable grid ~tc tr ~delay ~src_ports:srcs xy in
    Astar.search_multi ~stats:effort ~field_cache grid ~srcs ~dsts ~usable
      ~use_weights:weight_update
  in
  let score delay path =
    Astar.path_cost grid ~use_weights:weight_update path
    +. (delay_cost_per_second *. delay)
  in
  let best =
    List.fold_left
      (fun best delay ->
        match attempt delay with
        | None -> best
        | Some path ->
          let s = score delay path in
          (match best with
           | Some (_, _, s') when s' <= s -> best
           | Some _ | None -> Some (path, delay, s)))
      None delay_candidates
  in
  let finish path delay unresolved =
    let task =
      { Routed.transport = tr; kind = Routed.Transport; path; delay;
        pre_wash = 0.; washed_cells = 0 }
    in
    let pre_wash, washed_cells = Routed.measure_wash grid ~tc task in
    let task = { task with pre_wash; washed_cells } in
    Routed.commit ~weight_update grid ~tc task;
    Telemetry.sample ~cat:"route" "astar.task_pops"
      (float_of_int effort.pops);
    if delay > 0. then Telemetry.observe ~cat:"route" "task.delay" delay;
    Telemetry.observe ~cat:"route" "task.path_cells"
      (float_of_int (List.length path));
    (task, unresolved)
  in
  match best with
  | Some (path, delay, _) -> finish path delay false
  | None ->
    (* Spatially blocked or hopelessly congested: fall back to the
       shortest obstacle-avoiding path and postpone along it. *)
    Telemetry.incr ~cat:"route" "conflict.rejections";
    let usable xy = not (Rgrid.blocked grid xy) in
    let path =
      match
        Astar.search_multi ~stats:effort ~field_cache grid ~srcs ~dsts
          ~usable ~use_weights:false
      with
      | Some p -> p
      | None -> [ List.hd srcs; List.hd dsts ] (* degenerate fallback *)
    in
    (match Routed.settle_delay grid ~tc tr ~src_ports:srcs path with
     | Some delay -> finish path delay false
     | None ->
       Telemetry.incr ~cat:"route" "unresolved";
       finish path 0. true)

let route ?(weight_update = true) ?(route_io = false) ~we ~tc chip
    (sched : Types.t) =
  if tc <= 0. then invalid_arg "Router.route: tc must be positive";
  let grid = Rgrid.create ~we chip in
  let tasks, unresolved =
    List.fold_left
      (fun (tasks, unresolved) (tr : Types.transport) ->
        let task, failed =
          Telemetry.span ~cat:"route" "transport"
            ~args:
              [ ("edge_src", Telemetry.Int (fst tr.edge));
                ("edge_dst", Telemetry.Int (snd tr.edge));
                ("from", Telemetry.Int tr.src);
                ("to", Telemetry.Int tr.dst) ]
            (fun () -> route_task ~weight_update grid ~tc tr)
        in
        (task :: tasks, if failed then unresolved + 1 else unresolved))
      ([], 0) (sorted_transports sched)
  in
  let io, io_unresolved =
    if route_io then Io_router.route_all ~weight_update grid ~tc sched
    else ([], 0)
  in
  Routed.finalize grid (List.rev_append io tasks)
    ~unresolved:(unresolved + io_unresolved)
