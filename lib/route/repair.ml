module Types = Mfb_schedule.Types
module Chip = Mfb_place.Chip

(* Row-major comparison: y is the major axis, matching the (x, y)
   tuple layout of every grid cell in the codebase. *)
let row_major_compare (x1, y1) (x2, y2) =
  let c = Int.compare y1 y2 in
  if c <> 0 then c else Int.compare x1 x2

let owner (chip : Chip.t) (cx, cy) =
  let n = Array.length chip.components in
  let rec scan i =
    if i >= n then None
    else
      let x, y, w, h = Chip.footprint chip i in
      if cx >= x && cx < x + w && cy >= y && cy < y + h then Some i
      else scan (i + 1)
  in
  scan 0

let cells (chip : Chip.t) =
  let acc = ref [] in
  for y = chip.height - 1 downto 0 do
    for x = chip.width - 1 downto 0 do
      if owner chip (x, y) = None then acc := (x, y) :: !acc
    done
  done;
  !acc

type outcome = {
  defect : int * int;
  affected : int;
  repaired : int;
  survived : bool;
}

type injection =
  | Channel of outcome
  | Component_fault of { component : int }

let inject_channel ~we ~tc chip (sched : Types.t) (routing : Routed.result)
    ~defect =
  let grid = Rgrid.create ~we chip in
  let healthy, affected =
    List.partition
      (fun (task : Routed.task) -> not (List.mem defect task.path))
      routing.tasks
  in
  (* Healthy tasks keep their paths; their occupations constrain the
     repair. *)
  List.iter (fun task -> Routed.commit grid ~tc task) healthy;
  ignore sched;
  let repaired =
    List.filter
      (fun (task : Routed.task) ->
        let tr = task.transport in
        let srcs, dsts =
          match task.kind with
          | Routed.Transport ->
            (Rgrid.ports grid tr.src, Rgrid.ports grid tr.dst)
          | Routed.Dispense ->
            (Io_router.border_cells grid, Rgrid.ports grid tr.dst)
          | Routed.Waste ->
            (Rgrid.ports grid tr.src, Io_router.border_cells grid)
        in
        let usable xy =
          xy <> defect
          && Routed.usable grid ~tc tr ~delay:task.delay
               ~src_ports:(Rgrid.ports grid tr.src) xy
        in
        match
          Astar.search_multi grid ~srcs ~dsts ~usable ~use_weights:true
        with
        | Some path ->
          Routed.commit grid ~tc { task with path };
          true
        | None -> false)
      affected
  in
  {
    defect;
    affected = List.length affected;
    repaired = List.length repaired;
    survived = List.length repaired = List.length affected;
  }

let inject ~we ~tc chip (sched : Types.t) (routing : Routed.result) ~defect =
  match owner chip defect with
  | Some component -> Component_fault { component }
  | None -> Channel (inject_channel ~we ~tc chip sched routing ~defect)

type yield_report = {
  cells_tested : int;
  survived : int;
  yield : float;
  worst : outcome option;
}

let single_defect_yield ~we ~tc chip sched (routing : Routed.result) =
  (* Used cells in the canonical row-major order, so [worst] is the
     first failing cell of a stable enumeration. *)
  let cells =
    List.sort row_major_compare (Rgrid.used_cells routing.grid)
  in
  let outcomes =
    List.map
      (fun defect -> inject_channel ~we ~tc chip sched routing ~defect)
      cells
  in
  let survived =
    List.length (List.filter (fun (o : outcome) -> o.survived) outcomes)
  in
  {
    cells_tested = List.length cells;
    survived;
    yield =
      (if cells = [] then 1.0
       else float_of_int survived /. float_of_int (List.length cells));
    worst = List.find_opt (fun (o : outcome) -> not o.survived) outcomes;
  }
