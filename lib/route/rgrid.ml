module Interval = Mfb_util.Interval
module Fluid = Mfb_bioassay.Fluid

type occupation = { interval : Interval.t; fluid : Fluid.t }

(* Per-cell occupation index, rebuilt lazily after writes:

   - [sorted]: occupations ordered by (interval end, position in the
     canonical list) — binary search splits any query into a "settled
     past" prefix (hi <= t) and a small "active tail" suffix.
   - [ptop]: for each prefix length, the best and second-best
     end-plus-wash bound [B(o) = hi(o) +. wash_time(o.fluid)] grouped by
     fluid (the two entries always name distinct fluids).  The wash
     constraint against a query fluid [f] needs [max B(o)] over prior
     occupations whose fluid differs from [f]; that is the best entry
     when its fluid differs from [f] and the second-best otherwise
     (same-fluid priors need no wash). *)
type cell = {
  mutable weight : float;
  mutable occs : occupation list; (* sorted by interval start *)
  blocked : bool;
  mutable dirty : bool;
  mutable sorted : occupation array; (* by (interval end, list position) *)
  mutable ends : float array; (* interval ends of [sorted] *)
  mutable ptop : ((Fluid.t * float) option * (Fluid.t * float) option) array;
}

type t = {
  grid_width : int;
  grid_height : int;
  cells : cell array;
  ports : (int * int) list array; (* per component id, non-empty *)
}

let idx g (x, y) = (y * g.grid_width) + x

let in_bounds g (x, y) =
  x >= 0 && y >= 0 && x < g.grid_width && y < g.grid_height

let cell_exn g xy =
  if not (in_bounds g xy) then
    invalid_arg
      (Printf.sprintf "Rgrid: cell (%d, %d) out of bounds" (fst xy) (snd xy));
  g.cells.(idx g xy)

(* Perimeter cells of a rectangle, grouped per side; each side lists its
   middle cell first so ports prefer centred attachment points. *)
let perimeter_sides (x, y, w, h) =
  let centred cells =
    let n = List.length cells in
    let mid = (n - 1) / 2 in
    List.mapi (fun i c -> (abs (i - mid), c)) cells
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let top = List.init w (fun i -> (x + i, y - 1)) in
  let right = List.init h (fun i -> (x + w, y + i)) in
  let bottom = List.init w (fun i -> (x + i, y + h)) in
  let left = List.init h (fun i -> (x - 1, y + i)) in
  List.map centred [ top; right; bottom; left ]

let create ~we (chip : Mfb_place.Chip.t) =
  if we < 0. then invalid_arg "Rgrid.create: negative w_e";
  let blocked_tbl = Hashtbl.create 64 in
  List.iter (fun xy -> Hashtbl.replace blocked_tbl xy ())
    (Mfb_place.Chip.blocked_cells chip);
  let cells =
    Array.init (chip.width * chip.height) (fun i ->
        let xy = (i mod chip.width, i / chip.width) in
        { weight = we; occs = []; blocked = Hashtbl.mem blocked_tbl xy;
          dirty = false; sorted = [||]; ends = [||]; ptop = [||] })
  in
  let g =
    { grid_width = chip.width; grid_height = chip.height; cells;
      ports = Array.make (Array.length chip.components) [] }
  in
  Array.iteri
    (fun i _ ->
      let rect = Mfb_place.Chip.footprint chip i in
      let free xy = in_bounds g xy && not (cell_exn g xy).blocked in
      let side_ports =
        List.filter_map
          (fun side -> List.find_opt free side)
          (perimeter_sides rect)
      in
      if side_ports = [] then
        invalid_arg
          (Printf.sprintf "Rgrid.create: component %d has no free port" i);
      g.ports.(i) <- side_ports)
    chip.components;
  g

let width g = g.grid_width
let height g = g.grid_height

let blocked g xy = (cell_exn g xy).blocked

let weight g xy = (cell_exn g xy).weight

let set_weight g xy w = (cell_exn g xy).weight <- w

let occupations g xy = (cell_exn g xy).occs

let add_occupation g xy occ =
  let cell = cell_exn g xy in
  let rec insert = function
    | [] -> [ occ ]
    | o :: rest as all ->
      if Interval.compare occ.interval o.interval <= 0 then occ :: all
      else o :: insert rest
  in
  cell.occs <- insert cell.occs;
  cell.dirty <- true

let ports g c =
  if c < 0 || c >= Array.length g.ports then
    invalid_arg (Printf.sprintf "Rgrid.ports: unknown component %d" c);
  g.ports.(c)

let port g c =
  match ports g c with
  | xy :: _ -> xy
  | [] -> assert false (* non-emptiness enforced at creation *)

(* Wash separation needed between a prior occupation and a fluid entering
   at the start of [iv]: none when the fluids are identical. *)
let wash_between prior fluid =
  if Fluid.equal prior.fluid fluid then 0. else Fluid.wash_time prior.fluid

(* ---- Index maintenance ---------------------------------------------- *)

let refresh cell =
  if cell.dirty then begin
    let arr = Array.of_list cell.occs in
    (* Stable sort by interval end keeps the canonical list order among
       equal ends — wash_debt's tie-break depends on it. *)
    Array.stable_sort
      (fun a b -> Float.compare (Interval.hi a.interval) (Interval.hi b.interval))
      arr;
    let n = Array.length arr in
    let ends = Array.make n 0. in
    let ptop = Array.make n (None, None) in
    let top = ref (None, None) in
    for i = 0 to n - 1 do
      let o = arr.(i) in
      ends.(i) <- Interval.hi o.interval;
      let f = o.fluid in
      let b = Interval.hi o.interval +. Fluid.wash_time f in
      let best, second = !top in
      (top :=
         match best, second with
         | None, _ -> (Some (f, b), None)
         | Some (f1, v1), _ when Fluid.equal f f1 ->
           (Some (f1, Float.max v1 b), second)
         | Some (f1, v1), Some (f2, v2) when Fluid.equal f f2 ->
           let v2 = Float.max v2 b in
           if v2 > v1 then (Some (f2, v2), Some (f1, v1))
           else (Some (f1, v1), Some (f2, v2))
         | Some (f1, v1), second ->
           if b > v1 then (Some (f, b), Some (f1, v1))
           else (
             match second with
             | Some (_, v2) when b <= v2 -> (Some (f1, v1), second)
             | _ -> (Some (f1, v1), Some (f, b))));
      ptop.(i) <- !top
    done;
    cell.sorted <- arr;
    cell.ends <- ends;
    cell.ptop <- ptop;
    cell.dirty <- false
  end

(* Number of occupations whose interval end is [<= t]: upper bound by
   binary search on the end-sorted array. *)
let settled_before cell t =
  let lo = ref 0 and hi = ref (Array.length cell.ends) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cell.ends.(mid) <= t then lo := mid + 1 else hi := mid
  done;
  !lo

(* [max (hi o +. wash_time o.fluid)] over the first [r] end-sorted
   occupations whose fluid differs from [fluid]; None when no such
   occupation exists.  Same-fluid priors impose no wash, so the top-two
   distinct-fluid maxima decide the query. *)
let wash_bound cell r fluid =
  if r = 0 then None
  else
    match cell.ptop.(r - 1) with
    | Some (f1, v1), second ->
      if not (Fluid.equal f1 fluid) then Some v1
      else Option.map snd second
    | None, _ -> None

(* ---- Reference implementations (retained for differential tests) ---- *)

let conflict_free_ref g xy iv fluid =
  let cell = cell_exn g xy in
  (not cell.blocked)
  && List.for_all
       (fun o ->
         if Interval.overlaps o.interval iv then false
         else if Interval.hi o.interval <= Interval.lo iv then
           Interval.lo iv +. 1e-9
           >= Interval.hi o.interval +. wash_between o fluid
         else true)
       cell.occs

let required_delay_ref g xy iv fluid =
  let cell = cell_exn g xy in
  if cell.blocked then infinity
  else begin
    let rec settle delay fuel =
      if fuel = 0 then delay
      else begin
        let shifted = Interval.shift iv delay in
        let worst =
          List.fold_left
            (fun acc o ->
              let needed =
                if Interval.overlaps o.interval shifted
                   || (Interval.hi o.interval <= Interval.lo shifted
                      && Interval.lo shifted +. 1e-9
                         < Interval.hi o.interval +. wash_between o fluid)
                then
                  Interval.hi o.interval +. wash_between o fluid
                  -. Interval.lo shifted
                else 0.
              in
              Float.max acc needed)
            0. cell.occs
        in
        if worst <= 1e-9 then delay else settle (delay +. worst) (fuel - 1)
      end
    in
    settle 0. (List.length cell.occs + 2)
  end

let wash_debt_ref g xy ~at fluid =
  let cell = cell_exn g xy in
  let latest_prior =
    List.fold_left
      (fun acc o ->
        if Interval.hi o.interval <= at +. 1e-9 then
          match acc with
          | Some best
            when Interval.hi best.interval >= Interval.hi o.interval ->
            acc
          | Some _ | None -> Some o
        else acc)
      None cell.occs
  in
  match latest_prior with
  | Some o -> wash_between o fluid
  | None -> 0.

(* ---- Indexed hot paths ----------------------------------------------

   All three queries split the cell's occupations at the query start:
   the prefix (ended at or before it) can only impose wash separation,
   answered in O(log n) from the precomputed bound; only the suffix —
   occupations still active near the query, typically a handful — is
   scanned for genuine time overlaps.  Each returns bit-identical
   results to its [_ref] twin: the prefix/suffix split mirrors the
   reference's branch structure exactly, and max-of-differences equals
   difference-of-max because subtracting the same float is monotone. *)

let conflict_free g xy iv fluid =
  let cell = cell_exn g xy in
  if cell.blocked then false
  else begin
    refresh cell;
    let n = Array.length cell.sorted in
    if n = 0 then true
    else begin
      let lo = Interval.lo iv in
      let r = settled_before cell lo in
      let wash_ok =
        match wash_bound cell r fluid with
        | None -> true
        | Some m -> lo +. 1e-9 >= m
      in
      wash_ok
      &&
      let ok = ref true in
      let i = ref r in
      while !ok && !i < n do
        if Interval.overlaps cell.sorted.(!i).interval iv then ok := false;
        incr i
      done;
      !ok
    end
  end

let required_delay g xy iv fluid =
  let cell = cell_exn g xy in
  if cell.blocked then infinity
  else begin
    refresh cell;
    let n = Array.length cell.sorted in
    let rec settle delay fuel =
      if fuel = 0 then delay
      else begin
        let shifted = Interval.shift iv delay in
        let slo = Interval.lo shifted in
        let r = settled_before cell slo in
        (* Prefix: ended occupations whose wash window still covers the
           shifted start. *)
        let bound =
          match wash_bound cell r fluid with
          | Some m when slo +. 1e-9 < m -> m
          | _ -> neg_infinity
        in
        (* Suffix: occupations still active after the shifted start. *)
        let bound = ref bound in
        for i = r to n - 1 do
          let o = cell.sorted.(i) in
          if Interval.overlaps o.interval shifted then
            bound :=
              Float.max !bound
                (Interval.hi o.interval +. wash_between o fluid)
        done;
        let worst =
          if !bound = neg_infinity then 0.
          else Float.max 0. (!bound -. slo)
        in
        if worst <= 1e-9 then delay else settle (delay +. worst) (fuel - 1)
      end
    in
    settle 0. (n + 2)
  end

let wash_debt g xy ~at fluid =
  let cell = cell_exn g xy in
  refresh cell;
  let r = settled_before cell (at +. 1e-9) in
  if r = 0 then 0.
  else begin
    let maxhi = cell.ends.(r - 1) in
    (* First end-sorted slot reaching [maxhi]: the stable sort keeps the
       canonical list order among equal ends, so this is the same
       occupation the reference fold selects. *)
    let lo = ref 0 and hi = ref (r - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cell.ends.(mid) >= maxhi then hi := mid else lo := mid + 1
    done;
    wash_between cell.sorted.(!lo) fluid
  end

let neighbours g (x, y) =
  List.filter (in_bounds g) [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]

let used_cells g =
  let acc = ref [] in
  Array.iteri
    (fun i cell ->
      if cell.occs <> [] then
        acc := (i mod g.grid_width, i / g.grid_width) :: !acc)
    g.cells;
  !acc
