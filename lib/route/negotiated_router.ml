module Interval = Mfb_util.Interval
module Telemetry = Mfb_util.Telemetry
module Types = Mfb_schedule.Types

let present_penalty = 4.
let history_increment = 2.

let sorted_transports (sched : Types.t) =
  List.sort
    (fun (a : Types.transport) b ->
      let c = Float.compare a.removal b.removal in
      if c <> 0 then c else Float.compare a.depart b.depart)
    sched.transports

(* The conservative per-cell windows a task would occupy on any path
   (ignoring the near-source refinement, which depends on the path). *)
let task_window (tr : Types.transport) =
  Interval.make tr.removal tr.arrive

let route ?(max_iterations = 8) ?(weight_update = true) ?(route_io = false)
    ~we ~tc chip (sched : Types.t) =
  if tc <= 0. then
    invalid_arg "Negotiated_router.route: tc must be positive";
  let scratch () = Rgrid.create ~we chip in
  let transports = sorted_transports sched in
  let n = List.length transports in
  (* Destination ports and the blocked set are fixed across negotiation
     iterations, so every re-route of a task reuses its first
     heuristic-field build. *)
  let field_cache = Hashtbl.create 64 in
  let history = Hashtbl.create 64 in
  let history_of xy = Option.value ~default:0. (Hashtbl.find_opt history xy) in
  let bump xy =
    Hashtbl.replace history xy (history_of xy +. history_increment)
  in
  (* One negotiation iteration: route everyone against the paths already
     chosen this round; return the paths and the set of contested cells. *)
  let iteration () =
    let grid = scratch () in
    (* occupancy chosen so far this round: cell -> (interval, task idx). *)
    let claimed : ((int * int), (Interval.t * int) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let paths = Array.make n [] in
    List.iteri
      (fun i (tr : Types.transport) ->
        let window = task_window tr in
        let srcs = Rgrid.ports grid tr.src and dsts = Rgrid.ports grid tr.dst in
        let sharing xy =
          match Hashtbl.find_opt claimed xy with
          | None -> 0
          | Some claims ->
            List.length
              (List.filter
                 (fun (iv, owner) ->
                   owner <> i && Interval.overlaps iv window)
                 claims)
        in
        let extra_cost xy =
          history_of xy
          +. (present_penalty *. float_of_int (sharing xy))
        in
        let usable xy = not (Rgrid.blocked grid xy) in
        let path =
          match
            Astar.search_multi ~field_cache ~extra_cost grid ~srcs ~dsts
              ~usable ~use_weights:true
          with
          | Some p -> p
          | None -> [ List.hd srcs; List.hd dsts ]
        in
        paths.(i) <- path;
        List.iter
          (fun xy ->
            let prior = Option.value ~default:[] (Hashtbl.find_opt claimed xy) in
            Hashtbl.replace claimed xy ((window, i) :: prior))
          path)
      transports;
    let contested =
      Hashtbl.fold
        (fun xy claims acc ->
          let overlapping =
            List.exists
              (fun (iv, owner) ->
                List.exists
                  (fun (iv', owner') ->
                    owner <> owner' && Interval.overlaps iv iv')
                  claims)
              claims
          in
          if overlapping then xy :: acc else acc)
        claimed []
    in
    (paths, contested)
  in
  let rec negotiate k =
    let paths, contested =
      Telemetry.span ~cat:"route" "negotiate.iteration"
        ~args:[ ("remaining", Telemetry.Int k) ]
        iteration
    in
    Telemetry.incr ~cat:"route" "negotiate.iterations";
    Telemetry.sample ~cat:"route" "negotiate.contested"
      (float_of_int (List.length contested));
    if contested = [] || k <= 1 then paths
    else begin
      List.iter bump contested;
      Telemetry.incr ~cat:"route" ~by:(List.length contested)
        "negotiate.bumped_cells";
      negotiate (k - 1)
    end
  in
  let paths = negotiate max_iterations in
  (* Commit in start order on a fresh grid; time conflicts that survived
     negotiation become postponements (as in the sequential router). *)
  let grid = scratch () in
  let tasks, unresolved =
    List.fold_left
      (fun (tasks, unresolved) (i, (tr : Types.transport)) ->
        let path = paths.(i) in
        let srcs = Rgrid.ports grid tr.src in
        let conflict_free =
          List.for_all
            (Routed.usable grid ~tc tr ~delay:0. ~src_ports:srcs)
            path
        in
        let delay, failed =
          if conflict_free then (0., false)
          else
            match Routed.settle_delay grid ~tc tr ~src_ports:srcs path with
            | Some d -> (d, false)
            | None -> (0., true)
        in
        let task =
          { Routed.transport = tr; kind = Routed.Transport; path; delay;
            pre_wash = 0.; washed_cells = 0 }
        in
        let pre_wash, washed_cells = Routed.measure_wash grid ~tc task in
        let task = { task with pre_wash; washed_cells } in
        Routed.commit ~weight_update grid ~tc task;
        (task :: tasks, if failed then unresolved + 1 else unresolved))
      ([], 0)
      (List.mapi (fun i tr -> (i, tr)) transports)
  in
  let io, io_unresolved =
    if route_io then Io_router.route_all ~weight_update grid ~tc sched
    else ([], 0)
  in
  Routed.finalize grid (List.rev_append io tasks)
    ~unresolved:(unresolved + io_unresolved)
