(** A* path search on the routing grid (paper Eq. 5).

    The cost of entering a cell is [1 + w(cell)] when weights are enabled
    ([1] otherwise); cells for which [usable] is false are treated as
    infinite-cost (the conflict case of Eq. 5).  The heuristic is the
    Manhattan distance to the nearest target, which is admissible because
    every step costs at least 1. *)

type stats = {
  mutable pops : int;        (** nodes taken off the open queue *)
  mutable pushes : int;      (** nodes inserted into the open queue *)
  mutable expansions : int;  (** nodes closed and expanded *)
}
(** Search-effort accumulator.  The counts are a pure function of the
    grid, endpoints and cost model — no randomness — so they are
    invariant across [--jobs] values. *)

val stats : unit -> stats
(** A zeroed accumulator; pass the same one to several searches to sum
    their effort. *)

val manhattan : int * int -> int * int -> float
(** Manhattan distance between two cells — the per-destination term of
    the heuristic, retained as the differential-testing oracle for
    {!heuristic_field}. *)

val heuristic_field : w:int -> h:int -> (int * int) list -> int array
(** [heuristic_field ~w ~h dsts] is the multi-source BFS distance field
    from [dsts] over the unobstructed [w]×[h] grid, indexed [y*w + x].
    Cell values equal the minimum Manhattan distance to any destination
    (exactly — BFS on an unobstructed 4-connected grid), so the field
    replaces the per-call fold over [dsts] in {!search_multi} without
    changing any f-score.  Unreachable is impossible on a grid; with
    [dsts = []] every cell is [-1].  Each build bumps the
    [route/heuristic_field_builds] telemetry counter's caller. *)

val search_multi :
  ?stats:stats ->
  ?field_cache:((int * int) list, int array) Hashtbl.t ->
  ?extra_cost:(int * int -> float) ->
  Rgrid.t ->
  srcs:(int * int) list ->
  dsts:(int * int) list ->
  usable:(int * int -> bool) ->
  use_weights:bool ->
  (int * int) list option
(** [search_multi grid ~srcs ~dsts ~usable ~use_weights] is a
    minimum-cost path from some usable source to some usable target,
    inclusive of both endpoints; [None] when unreachable.  [extra_cost]
    (default 0) adds a non-negative per-cell surcharge — the
    congestion/history term of negotiated routing.  [stats] accumulates
    the search effort; every search also feeds the [route/astar.*]
    telemetry counters when a sink is installed.

    The heuristic is evaluated from a BFS distance {!heuristic_field}
    built once per search; [field_cache] (keyed on the usable-filtered
    destination list) lets callers that repeatedly search towards the
    same targets — the router's delay candidates, the negotiator's
    iterations — share one build.  Results are identical with or without
    the cache. *)

val search :
  ?stats:stats ->
  Rgrid.t ->
  src:int * int ->
  dst:int * int ->
  usable:(int * int -> bool) ->
  use_weights:bool ->
  (int * int) list option
(** Single source and target version of {!search_multi}. *)

val path_cost : Rgrid.t -> use_weights:bool -> (int * int) list -> float
(** Cost of a path under the same cost model (entering every cell
    including the first). *)
