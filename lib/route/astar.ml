type stats = { mutable pops : int; mutable pushes : int; mutable expansions : int }

let stats () = { pops = 0; pushes = 0; expansions = 0 }

let step_cost grid ~use_weights xy =
  1. +. (if use_weights then Rgrid.weight grid xy else 0.)

let path_cost grid ~use_weights path =
  List.fold_left (fun acc xy -> acc +. step_cost grid ~use_weights xy) 0. path

let manhattan (x1, y1) (x2, y2) =
  float_of_int (abs (x1 - x2) + abs (y1 - y2))

let search_multi ?stats:st ?(extra_cost = fun _ -> 0.) grid ~srcs ~dsts
    ~usable ~use_weights =
  let srcs = List.filter usable srcs and dsts = List.filter usable dsts in
  if srcs = [] || dsts = [] then None
  else begin
    let pops = ref 0 and pushes = ref 0 and expansions = ref 0 in
    let step_cost grid ~use_weights xy =
      step_cost grid ~use_weights xy +. extra_cost xy
    in
    let w = Rgrid.width grid and h = Rgrid.height grid in
    let idx (x, y) = (y * w) + x in
    let is_goal =
      let goals = Hashtbl.create 4 in
      List.iter (fun xy -> Hashtbl.replace goals xy ()) dsts;
      fun xy -> Hashtbl.mem goals xy
    in
    let heuristic xy =
      List.fold_left (fun acc d -> Float.min acc (manhattan xy d)) infinity
        dsts
    in
    let g_cost = Array.make (w * h) infinity in
    let parent = Array.make (w * h) None in
    let closed = Array.make (w * h) false in
    let open_queue = Mfb_util.Pqueue.create ~cmp:Float.compare in
    let push pr xy =
      incr pushes;
      Mfb_util.Pqueue.push open_queue pr xy
    in
    List.iter
      (fun src ->
        let c = step_cost grid ~use_weights src in
        if c < g_cost.(idx src) then begin
          g_cost.(idx src) <- c;
          push (c +. heuristic src) src
        end)
      srcs;
    let rec reconstruct xy acc =
      match parent.(idx xy) with
      | None -> xy :: acc
      | Some prev -> reconstruct prev (xy :: acc)
    in
    let report result =
      (match st with
       | Some s ->
         s.pops <- s.pops + !pops;
         s.pushes <- s.pushes + !pushes;
         s.expansions <- s.expansions + !expansions
       | None -> ());
      let module T = Mfb_util.Telemetry in
      T.incr ~cat:"route" "astar.searches";
      T.incr ~cat:"route" ~by:!pops "astar.pops";
      T.incr ~cat:"route" ~by:!pushes "astar.pushes";
      T.incr ~cat:"route" ~by:!expansions "astar.expansions";
      result
    in
    let rec loop () =
      match Mfb_util.Pqueue.pop open_queue with
      | None -> report None
      | Some (_, xy) ->
        incr pops;
        if is_goal xy then report (Some (reconstruct xy []))
        else if closed.(idx xy) then loop ()
        else begin
          closed.(idx xy) <- true;
          incr expansions;
          let expand n =
            if (not closed.(idx n)) && usable n then begin
              let tentative = g_cost.(idx xy) +. step_cost grid ~use_weights n in
              if tentative < g_cost.(idx n) -. 1e-12 then begin
                g_cost.(idx n) <- tentative;
                parent.(idx n) <- Some xy;
                push (tentative +. heuristic n) n
              end
            end
          in
          List.iter expand (Rgrid.neighbours grid xy);
          loop ()
        end
    in
    loop ()
  end

let search ?stats grid ~src ~dst ~usable ~use_weights =
  search_multi ?stats grid ~srcs:[ src ] ~dsts:[ dst ] ~usable ~use_weights
