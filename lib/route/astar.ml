type stats = { mutable pops : int; mutable pushes : int; mutable expansions : int }

let stats () = { pops = 0; pushes = 0; expansions = 0 }

let step_cost grid ~use_weights xy =
  1. +. (if use_weights then Rgrid.weight grid xy else 0.)

let path_cost grid ~use_weights path =
  List.fold_left (fun acc xy -> acc +. step_cost grid ~use_weights xy) 0. path

let manhattan (x1, y1) (x2, y2) =
  float_of_int (abs (x1 - x2) + abs (y1 - y2))

(* Multi-source BFS distance field from [dsts] over the unobstructed
   grid: distances.(y*w + x) is the number of 4-connected steps to the
   nearest destination.  On an unobstructed grid that is exactly the
   minimum Manhattan distance, so the field substitutes for the per-call
   fold over the destination list without changing a single f-score. *)
let heuristic_field ~w ~h dsts =
  let dist = Array.make (w * h) (-1) in
  let queue = Queue.create () in
  List.iter
    (fun (x, y) ->
      let i = (y * w) + x in
      if dist.(i) < 0 then begin
        dist.(i) <- 0;
        Queue.add i queue
      end)
    dsts;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let d = dist.(i) + 1 in
    let x = i mod w and y = i / w in
    let visit j =
      if dist.(j) < 0 then begin
        dist.(j) <- d;
        Queue.add j queue
      end
    in
    if x > 0 then visit (i - 1);
    if x < w - 1 then visit (i + 1);
    if y > 0 then visit (i - w);
    if y < h - 1 then visit (i + w)
  done;
  dist

let search_multi ?stats:st ?field_cache ?(extra_cost = fun _ -> 0.) grid
    ~srcs ~dsts ~usable ~use_weights =
  let srcs = List.filter usable srcs and dsts = List.filter usable dsts in
  if srcs = [] || dsts = [] then None
  else begin
    let pops = ref 0 and pushes = ref 0 and expansions = ref 0 in
    let step_cost grid ~use_weights xy =
      step_cost grid ~use_weights xy +. extra_cost xy
    in
    let w = Rgrid.width grid and h = Rgrid.height grid in
    let idx (x, y) = (y * w) + x in
    let is_goal =
      let goals = Hashtbl.create 4 in
      List.iter (fun xy -> Hashtbl.replace goals xy ()) dsts;
      fun xy -> Hashtbl.mem goals xy
    in
    (* The field depends only on the usable destination set, so repeated
       searches against the same targets (delay candidates, negotiation
       iterations) can share one build through [field_cache].  The cache
       is keyed on the filtered list — a different usable-set yields a
       different key, never a stale field. *)
    let build_field () =
      Mfb_util.Telemetry.incr ~cat:"route" "heuristic_field_builds";
      heuristic_field ~w ~h dsts
    in
    let field =
      match field_cache with
      | None -> build_field ()
      | Some tbl ->
        (match Hashtbl.find_opt tbl dsts with
         | Some f -> f
         | None ->
           let f = build_field () in
           Hashtbl.add tbl dsts f;
           f)
    in
    let heuristic xy = float_of_int field.(idx xy) in
    let g_cost = Array.make (w * h) infinity in
    let parent = Array.make (w * h) None in
    let closed = Array.make (w * h) false in
    let open_queue = Mfb_util.Pqueue.create ~cmp:Float.compare in
    let push pr xy =
      incr pushes;
      Mfb_util.Pqueue.push open_queue pr xy
    in
    List.iter
      (fun src ->
        let c = step_cost grid ~use_weights src in
        if c < g_cost.(idx src) then begin
          g_cost.(idx src) <- c;
          push (c +. heuristic src) src
        end)
      srcs;
    let rec reconstruct xy acc =
      match parent.(idx xy) with
      | None -> xy :: acc
      | Some prev -> reconstruct prev (xy :: acc)
    in
    let report result =
      (match st with
       | Some s ->
         s.pops <- s.pops + !pops;
         s.pushes <- s.pushes + !pushes;
         s.expansions <- s.expansions + !expansions
       | None -> ());
      let module T = Mfb_util.Telemetry in
      T.incr ~cat:"route" "astar.searches";
      T.incr ~cat:"route" ~by:!pops "astar.pops";
      T.incr ~cat:"route" ~by:!pushes "astar.pushes";
      T.incr ~cat:"route" ~by:!expansions "astar.expansions";
      result
    in
    let rec loop () =
      match Mfb_util.Pqueue.pop open_queue with
      | None -> report None
      | Some (_, xy) ->
        incr pops;
        if is_goal xy then report (Some (reconstruct xy []))
        else if closed.(idx xy) then loop ()
        else begin
          closed.(idx xy) <- true;
          incr expansions;
          (* Unrolled 4-neighbour walk, same order as Rgrid.neighbours
             (west, east, north, south) so the open-queue tie-breaking
             is unchanged — without allocating the neighbour list. *)
          let g_here = g_cost.(idx xy) in
          let expand nx ny =
            if nx >= 0 && ny >= 0 && nx < w && ny < h then begin
              let n = (nx, ny) in
              if (not closed.(idx n)) && usable n then begin
                let tentative = g_here +. step_cost grid ~use_weights n in
                if tentative < g_cost.(idx n) -. 1e-12 then begin
                  g_cost.(idx n) <- tentative;
                  parent.(idx n) <- Some xy;
                  push (tentative +. heuristic n) n
                end
              end
            end
          in
          let x, y = xy in
          expand (x - 1) y;
          expand (x + 1) y;
          expand x (y - 1);
          expand x (y + 1);
          loop ()
        end
    in
    loop ()
  end

let search ?stats grid ~src ~dst ~usable ~use_weights =
  search_multi ?stats grid ~srcs:[ src ] ~dsts:[ dst ] ~usable ~use_weights
