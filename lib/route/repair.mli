(** Defect repair: re-routing around fabrication faults.

    A blocked channel cell (debris, collapsed membrane, bonding defect)
    kills every transport routed through it.  This module measures how
    repairable a finished design is: given a defective cell, the affected
    tasks are ripped up and re-routed on the remaining grid under the same
    conflict rules (existing healthy tasks keep their paths and
    occupations).

    The single-defect yield — the fraction of channel cells whose failure
    the design survives without touching the schedule — is a standard
    robustness figure for microfluidic layouts.

    A defect that lands on a component footprint is not a channel fault
    but a {e component} fault: the component itself is dead and the
    operations bound to it must move, which is re-binding (see
    [Mfb_repair.Plan]), not re-routing.  [inject] reports this case as a
    structured {!injection} instead of raising. *)

val cells : Mfb_place.Chip.t -> (int * int) list
(** All channel cells of the chip — cells not covered by any component
    footprint — in {e row-major} order: [(0,0), (1,0), …, (w-1,0),
    (0,1), …].  This is the canonical defect-enumeration order shared by
    {!single_defect_yield}, the bench sweeps and the seeded defect
    generators; every consumer iterating channel cells must use it so
    that a "cell index" means the same cell everywhere. *)

val owner : Mfb_place.Chip.t -> int * int -> int option
(** [owner chip cell] is the component whose footprint covers [cell]
    (the lowest such id, though footprints never overlap on a legal
    chip), or [None] for a channel cell. *)

type outcome = {
  defect : int * int;
  affected : int;          (** tasks whose path crossed the defect *)
  repaired : int;          (** of those, re-routed without postponement *)
  survived : bool;         (** all affected tasks repaired *)
}

type injection =
  | Channel of outcome
      (** the defect hit a channel cell; the re-route outcome *)
  | Component_fault of { component : int }
      (** the defect lies on this component's footprint — a component
          fault, to be handled by re-binding, not re-routing *)

val inject :
  we:float ->
  tc:float ->
  Mfb_place.Chip.t ->
  Mfb_schedule.Types.t ->
  Routed.result ->
  defect:int * int ->
  injection
(** [inject ~we ~tc chip sched routing ~defect] rebuilds the design with
    [defect] unusable and every healthy task's occupation re-committed,
    then re-routes the affected tasks conflict-aware (original windows,
    no extra delay allowed).  A defect on a component footprint returns
    [Component_fault] instead of attempting any re-route. *)

type yield_report = {
  cells_tested : int;     (** channel cells of the design *)
  survived : int;
  yield : float;          (** [survived / cells_tested]; 1.0 for empty *)
  worst : outcome option; (** a failing defect, when any exists *)
}

val single_defect_yield :
  we:float ->
  tc:float ->
  Mfb_place.Chip.t ->
  Mfb_schedule.Types.t ->
  Routed.result ->
  yield_report
(** Try every used channel cell as the defect, in row-major order (the
    {!cells} order restricted to cells with at least one occupation).
    [worst] is the {e first} failing defect in that order, so the report
    is deterministic and reproducible cell-for-cell. *)
