(** Routing grid: the chip partitioned into rectangular cells
    (paper §IV-B2).

    Every cell carries a weight [w] (initially the constant [w_e]; after a
    task is routed through, the wash time of the residue it leaves) and a
    set of timed occupations.  Component footprints are blocked; every
    component exposes one port cell on its perimeter where channels
    attach. *)

type occupation = {
  interval : Mfb_util.Interval.t;  (** when the fluid is inside the cell *)
  fluid : Mfb_bioassay.Fluid.t;    (** what residue it leaves behind *)
}

type t

val create : we:float -> Mfb_place.Chip.t -> t
(** Grid matching the chip's dimensions with all component cells blocked.
    @raise Invalid_argument if [we < 0]. *)

val width : t -> int
val height : t -> int

val in_bounds : t -> int * int -> bool

val blocked : t -> int * int -> bool

val weight : t -> int * int -> float

val set_weight : t -> int * int -> float -> unit

val occupations : t -> int * int -> occupation list
(** Sorted by interval start. *)

val add_occupation : t -> int * int -> occupation -> unit

val ports : t -> int -> (int * int) list
(** [ports grid c] are the port cells of component [c]: the middle
    unblocked in-bounds cell of each footprint side (up to four, at least
    one).  Flow channels attach to any of them.
    @raise Invalid_argument if the component id is unknown. *)

val port : t -> int -> int * int
(** First port of {!ports} — a canonical attachment point. *)

val conflict_free :
  t -> int * int -> Mfb_util.Interval.t -> Mfb_bioassay.Fluid.t -> bool
(** [conflict_free grid cell iv fluid] is true when occupying [cell] over
    [iv] with [fluid] neither overlaps an existing occupation nor starts
    before a prior different-fluid residue could be washed away
    (the time-slot test of the paper's Eq. 5, extended with the wash
    separation of conflict class 3 in §II-C2). *)

val required_delay :
  t -> int * int -> Mfb_util.Interval.t -> Mfb_bioassay.Fluid.t -> float
(** Smallest shift [d >= 0] such that [Interval.shift iv d] passes
    [conflict_free] on this cell with respect to the occupations
    committed so far. *)

val wash_debt :
  t -> int * int -> at:float -> Mfb_bioassay.Fluid.t -> float
(** Wash time needed on this cell before a fluid can pass at time [at]:
    the wash time of the latest prior occupation's residue when it
    differs from the incoming fluid, else [0.]. *)

val conflict_free_ref :
  t -> int * int -> Mfb_util.Interval.t -> Mfb_bioassay.Fluid.t -> bool
(** Reference implementation of {!conflict_free}: a linear fold over the
    cell's occupation list.  The production query answers the settled
    prefix (occupations ended before the query starts) in O(log n) from
    a sorted-array index and only scans the active tail; this fold is
    retained as the differential-testing oracle — the two must agree
    bit-for-bit on every input. *)

val required_delay_ref :
  t -> int * int -> Mfb_util.Interval.t -> Mfb_bioassay.Fluid.t -> float
(** Reference implementation of {!required_delay} (linear fold per
    settle iteration); differential-testing oracle. *)

val wash_debt_ref :
  t -> int * int -> at:float -> Mfb_bioassay.Fluid.t -> float
(** Reference implementation of {!wash_debt} (linear fold);
    differential-testing oracle. *)

val neighbours : t -> int * int -> (int * int) list
(** In-bounds 4-neighbourhood. *)

val used_cells : t -> (int * int) list
(** Cells with at least one occupation — the channel network. *)
