(** Transformation operations for the annealing placer (paper Alg. 2):
    translation, rotation, and pairwise swap of components.  A move
    mutates the placement in place and returns an undo closure, or [None]
    when the perturbed placement would be illegal (the move is rolled
    back before returning). *)

type undo = unit -> unit

val translate : Mfb_util.Rng.t -> Chip.t -> undo option
(** Move one random component to a random in-bounds anchor. *)

val rotate : Mfb_util.Rng.t -> Chip.t -> undo option
(** Toggle the orientation of one random component. *)

val swap : Mfb_util.Rng.t -> Chip.t -> undo option
(** Exchange the anchors of two random components. *)

val random_move : Mfb_util.Rng.t -> Chip.t -> undo option
(** One of the three moves, weighted 3:1:2
    (translate : rotate : swap). *)

val random_move_touched :
  Mfb_util.Rng.t -> Chip.t -> (int list * undo) option
(** Like {!random_move}, but also returns the indices of the components
    the move displaced (one for translate/rotate, two for swap) so the
    caller can re-evaluate only their incident energy terms.  Consumes
    the RNG identically to {!random_move}. *)
