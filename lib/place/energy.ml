type weighted_net = { a : int; b : int; cp : float }

let weigh ~beta ~gamma nets =
  List.map
    (fun (net : Net.t) ->
      { a = net.a; b = net.b;
        cp = Net.connection_priority ~beta ~gamma net })
    nets

let uniform nets =
  List.map (fun (net : Net.t) -> { a = net.a; b = net.b; cp = 1.0 }) nets

let total chip nets =
  List.fold_left
    (fun acc { a; b; cp } -> acc +. (Chip.manhattan chip a b *. cp))
    0. nets

let wirelength chip nets =
  List.fold_left
    (fun acc { a; b; cp = _ } -> acc +. Chip.manhattan chip a b)
    0. nets

let compaction chip =
  let n = Array.length chip.Chip.components in
  let total = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      total := !total +. Chip.manhattan chip i j
    done
  done;
  !total

(* Net-adjacency index: nets flattened to arrays plus, per component, the
   ids of its incident nets.  A per-net stamp deduplicates nets incident
   to more than one touched component without allocating a set. *)
type index = {
  na : int array;
  nb : int array;
  ncp : float array;
  incident : int array array;
  stamp : int array;
  mutable round : int;
}

let index ~n_components nets =
  let nets = Array.of_list nets in
  let m = Array.length nets in
  let na = Array.make m 0 and nb = Array.make m 0 and ncp = Array.make m 0. in
  Array.iteri
    (fun k { a; b; cp } ->
      na.(k) <- a;
      nb.(k) <- b;
      ncp.(k) <- cp)
    nets;
  let counts = Array.make n_components 0 in
  for k = 0 to m - 1 do
    counts.(na.(k)) <- counts.(na.(k)) + 1;
    if nb.(k) <> na.(k) then counts.(nb.(k)) <- counts.(nb.(k)) + 1
  done;
  let incident = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make n_components 0 in
  for k = 0 to m - 1 do
    incident.(na.(k)).(fill.(na.(k))) <- k;
    fill.(na.(k)) <- fill.(na.(k)) + 1;
    if nb.(k) <> na.(k) then begin
      incident.(nb.(k)).(fill.(nb.(k))) <- k;
      fill.(nb.(k)) <- fill.(nb.(k)) + 1
    end
  done;
  { na; nb; ncp; incident; stamp = Array.make m (-1); round = 0 }

let incident_total chip t touched =
  t.round <- t.round + 1;
  let r = t.round in
  let sum = ref 0. and terms = ref 0 in
  List.iter
    (fun c ->
      let nets = t.incident.(c) in
      for i = 0 to Array.length nets - 1 do
        let k = nets.(i) in
        if t.stamp.(k) <> r then begin
          t.stamp.(k) <- r;
          sum := !sum +. (Chip.manhattan chip t.na.(k) t.nb.(k) *. t.ncp.(k));
          incr terms
        end
      done)
    touched;
  (!sum, !terms)

let partial_compaction chip touched =
  let n = Array.length chip.Chip.components in
  let sum = ref 0. and terms = ref 0 in
  let rec go = function
    | [] -> ()
    | i :: rest ->
      for j = 0 to n - 1 do
        if j <> i && not (List.mem j rest) then begin
          sum := !sum +. Chip.manhattan chip i j;
          incr terms
        end
      done;
      go rest
  in
  go touched;
  (!sum, !terms)
