module Rng = Mfb_util.Rng

type undo = unit -> unit

(* A move is legal when the touched components stay in bounds and respect
   spacing against everyone else.  Plain loop with early exit — this runs
   once per attempted move, so it must not allocate. *)
let touched_legal chip touched =
  List.for_all
    (fun i ->
      Chip.in_bounds chip i
      &&
      let n = Array.length chip.Chip.components in
      let ok = ref true in
      let j = ref 0 in
      while !ok && !j < n do
        if !j <> i && not (Chip.pair_legal chip i !j) then ok := false;
        incr j
      done;
      !ok)
    touched

let finish chip touched undo =
  if touched_legal chip touched then Some (touched, undo)
  else begin
    undo ();
    None
  end

let translate_t rng (chip : Chip.t) =
  let n = Array.length chip.components in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let old = chip.places.(i) in
    let x = 1 + Rng.int rng (max 1 (chip.width - 2)) in
    let y = 1 + Rng.int rng (max 1 (chip.height - 2)) in
    chip.places.(i) <- { old with x; y };
    finish chip [ i ] (fun () -> chip.places.(i) <- old)
  end

let rotate_t rng (chip : Chip.t) =
  let n = Array.length chip.components in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let old = chip.places.(i) in
    chip.places.(i) <- { old with rotated = not old.rotated };
    finish chip [ i ] (fun () -> chip.places.(i) <- old)
  end

let swap_t rng (chip : Chip.t) =
  let n = Array.length chip.components in
  if n < 2 then None
  else begin
    let i = Rng.int rng n in
    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
    let pi = chip.places.(i) and pj = chip.places.(j) in
    chip.places.(i) <- { pj with rotated = pi.rotated };
    chip.places.(j) <- { pi with rotated = pj.rotated };
    finish chip [ i; j ]
      (fun () ->
        chip.places.(i) <- pi;
        chip.places.(j) <- pj)
  end

let translate rng chip = Option.map snd (translate_t rng chip)
let rotate rng chip = Option.map snd (rotate_t rng chip)
let swap rng chip = Option.map snd (swap_t rng chip)

let random_move_touched rng chip =
  match Rng.int rng 6 with
  | 0 | 1 | 2 -> translate_t rng chip
  | 3 -> rotate_t rng chip
  | 4 | 5 -> swap_t rng chip
  | _ -> assert false

let random_move rng chip = Option.map snd (random_move_touched rng chip)
