(** Simulated-annealing placement (paper Alg. 2, lines 1-8).

    Starting from a random legal placement, the annealer applies random
    transformation operations; a perturbation is accepted when it lowers
    the energy (Eq. 3) or with probability [exp (-delta / T)].  The
    temperature decays geometrically from [t0] to [t_min] with rate
    [alpha], running [i_max] perturbations per temperature step. *)

type params = {
  t0 : float;     (** initial temperature (paper: 10000) *)
  t_min : float;  (** termination temperature (paper: 1.0) *)
  alpha : float;  (** cooling rate in (0, 1) (paper: 0.9) *)
  i_max : int;    (** perturbations per temperature (paper: 150) *)
}

val default_params : params
(** The paper's parameter set. *)

type result = {
  chip : Chip.t;          (** best placement found *)
  energy : float;         (** its {!objective} value *)
  initial_energy : float; (** objective of the random starting placement *)
  accepted : int;         (** accepted perturbations *)
  attempted : int;        (** attempted perturbations *)
  temperature_steps : int;
  (** cooling steps executed by the walk — a pure function of [params],
      so invariant across seeds and [jobs] values *)
}

val objective : Chip.t -> Energy.weighted_net list -> float
(** The annealing objective: Eq. 3 plus a small all-pairs compaction term
    ([0.01 * Energy.compaction]) that packs weakly-connected components
    (the paper argues DCSA reduces chip area).

    Inside the walk the objective is tracked {e incrementally}: each move
    re-evaluates only the nets incident to the touched components (via
    {!Energy.incident_total}) plus the touched compaction pairs, and the
    running value is re-synced against a from-scratch recompute every 64
    accepted moves, at every temperature-step boundary, and whenever a
    best-so-far comparison falls within 1e-6 of the incumbent (so the
    returned placement never depends on floating-point drift). *)

val place :
  ?params:params ->
  rng:Mfb_util.Rng.t ->
  nets:Energy.weighted_net list ->
  Mfb_component.Component.t array ->
  result
(** [place ~rng ~nets components] anneals a placement of [components]
    minimising Eq. 3 over [nets].  The returned placement is the better
    of the annealed best and the deterministic scanline construction (a
    safeguard for tiny instances where the random walk may miss the
    packed optimum).
    @raise Invalid_argument on non-positive temperatures, [alpha]
    outside (0, 1), or [i_max < 1]. *)

val anneal_multi :
  ?params:params ->
  ?jobs:int ->
  ?restarts:int ->
  rng:Mfb_util.Rng.t ->
  nets:Energy.weighted_net list ->
  Mfb_component.Component.t array ->
  result
(** [anneal_multi ~restarts ~rng ~nets components] runs [restarts]
    (default 1) independent annealing walks and returns the one with the
    lowest energy (ties broken towards the lower restart index).

    Restarts execute on up to [jobs] domains (default 1: sequential).
    Each walk draws from its own generator split off [rng] before
    dispatch, and the reduction scans restarts in index order, so the
    result is bit-for-bit identical for every [jobs] value.  With
    [restarts = 1] the walk consumes [rng] directly and is identical to
    {!place}.
    @raise Invalid_argument if [restarts < 1] or [jobs < 1] (or on the
    {!place} parameter errors). *)
