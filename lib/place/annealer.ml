module Telemetry = Mfb_util.Telemetry

type params = { t0 : float; t_min : float; alpha : float; i_max : int }

let default_params = { t0 = 10000.; t_min = 1.0; alpha = 0.9; i_max = 150 }

type result = {
  chip : Chip.t;
  energy : float;
  initial_energy : float;
  accepted : int;
  attempted : int;
  temperature_steps : int;
}

let validate p =
  if p.t0 <= 0. || p.t_min <= 0. || p.t0 < p.t_min then
    invalid_arg "Annealer.place: temperatures must satisfy 0 < t_min <= t0";
  if p.alpha <= 0. || p.alpha >= 1. then
    invalid_arg "Annealer.place: alpha outside (0, 1)";
  if p.i_max < 1 then invalid_arg "Annealer.place: i_max < 1"

(* Weight of the all-pairs compaction term relative to Eq. 3: small enough
   not to distort the connection-priority objective, large enough to pull
   weakly-connected components into the pack. *)
let compaction_weight = 0.01

let objective chip nets =
  Energy.total chip nets +. (compaction_weight *. Energy.compaction chip)

(* Full-recompute cadence for the incrementally tracked energy: every
   [resync_interval] accepted moves the running value is replaced by a
   from-scratch [objective], pinning floating-point drift.  Between two
   re-syncs the drift is bounded by ~64 additions of ulp-scale rounding
   error — orders of magnitude below [best_margin]. *)
let resync_interval = 64

(* When the running energy comes within this margin of the best-so-far,
   the comparison is decided by an exact recompute, so the best placement
   (and the returned energy) never depend on accumulated drift. *)
let best_margin = 1e-6

let place ?(params = default_params) ~rng ~nets components =
  validate params;
  let chip = Chip.random rng components in
  let index = Energy.index ~n_components:(Array.length components) nets in
  let energy = ref (objective chip nets) in
  let initial_energy = !energy in
  let best = ref (Chip.copy chip) in
  let best_energy = ref !energy in
  let accepted = ref 0 and attempted = ref 0 in
  let temperature = ref params.t0 in
  let temperature_steps = ref 0 in
  let delta_evals = ref 0 in
  let resyncs = ref 0 in
  let since_resync = ref 0 in
  let resync () =
    energy := objective chip nets;
    incr resyncs;
    since_resync := 0
  in
  Telemetry.span ~cat:"place" "sa.walk"
    ~args:[ ("t0", Float params.t0); ("i_max", Int params.i_max) ]
    (fun () ->
      while !temperature > params.t_min do
        incr temperature_steps;
        let accepted_before = !accepted in
        for _ = 1 to params.i_max do
          incr attempted;
          match Moves.random_move_touched rng chip with
          | None -> ()
          | Some (touched, undo) ->
            (* Measure the touched terms in the new state, flip back to
               measure them in the old state, then restore: the exact
               Eq. 3 + compaction delta from only the incident terms. *)
            let new_net, tn1 = Energy.incident_total chip index touched in
            let new_cmp, tc1 = Energy.partial_compaction chip touched in
            let saved =
              List.map (fun i -> (i, chip.Chip.places.(i))) touched
            in
            undo ();
            let old_net, tn2 = Energy.incident_total chip index touched in
            let old_cmp, tc2 = Energy.partial_compaction chip touched in
            List.iter (fun (i, p) -> chip.Chip.places.(i) <- p) saved;
            delta_evals := !delta_evals + tn1 + tn2 + tc1 + tc2;
            let delta =
              new_net -. old_net
              +. (compaction_weight *. (new_cmp -. old_cmp))
            in
            let accept =
              delta < 0.
              || Mfb_util.Rng.float rng 1.0 < exp (-.delta /. !temperature)
            in
            if accept then begin
              incr accepted;
              energy := !energy +. delta;
              incr since_resync;
              if !since_resync >= resync_interval then resync ();
              if !energy < !best_energy +. best_margin then begin
                (* Within drift range of the best: decide exactly. *)
                resync ();
                if !energy < !best_energy then begin
                  best_energy := !energy;
                  best := Chip.copy chip
                end
              end
            end
            else undo ()
        done;
        (* One counter-series point and one histogram observation per
           temperature step: the SA acceptance trajectory of Alg. 2.  The
           observation must be drift-free, so re-sync first. *)
        resync ();
        Telemetry.sample ~cat:"place" "sa.acceptance_rate"
          (float_of_int (!accepted - accepted_before)
          /. float_of_int params.i_max);
        Telemetry.observe ~cat:"place" "sa.energy" !energy;
        temperature := !temperature *. params.alpha
      done);
  Telemetry.incr ~cat:"place" ~by:!accepted "sa.accepted";
  Telemetry.incr ~cat:"place" ~by:!attempted "sa.attempted";
  Telemetry.incr ~cat:"place" ~by:!temperature_steps "sa.temperature_steps";
  Telemetry.incr ~cat:"place" ~by:!delta_evals "delta_evals";
  Telemetry.incr ~cat:"place" ~by:!resyncs "resyncs";
  (* Tiny instances can defeat the random walk; the packed scanline
     construction is a free lower-effort candidate, so keep the better of
     the two. *)
  let scanline = Chip.scanline components in
  let scanline_energy = objective scanline nets in
  let chip, energy =
    if scanline_energy < !best_energy then (scanline, scanline_energy)
    else (!best, !best_energy)
  in
  { chip; energy; initial_energy; accepted = !accepted;
    attempted = !attempted; temperature_steps = !temperature_steps }

(* Parallel restarts under the split-then-reduce discipline: child RNGs
   are derived from [rng] before dispatch and the winner is the lowest
   energy in fixed restart-index order, so the outcome is independent of
   [jobs].  A single restart keeps drawing from [rng] directly, which
   preserves the historical single-run stream bit-for-bit. *)
let anneal_multi ?(params = default_params) ?(jobs = 1) ?(restarts = 1) ~rng
    ~nets components =
  if restarts < 1 then invalid_arg "Annealer.anneal_multi: restarts < 1";
  if restarts = 1 then place ~params ~rng ~nets components
  else begin
    let rngs = Mfb_util.Rng.split_n rng restarts in
    let results =
      Mfb_util.Pool.init ~label:"sa-restart" ~jobs restarts (fun i ->
          place ~params ~rng:rngs.(i) ~nets components)
    in
    Array.fold_left
      (fun best r -> if r.energy < best.energy then r else best)
      results.(0) results
  end
