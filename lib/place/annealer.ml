module Telemetry = Mfb_util.Telemetry

type params = { t0 : float; t_min : float; alpha : float; i_max : int }

let default_params = { t0 = 10000.; t_min = 1.0; alpha = 0.9; i_max = 150 }

type result = {
  chip : Chip.t;
  energy : float;
  initial_energy : float;
  accepted : int;
  attempted : int;
  temperature_steps : int;
}

let validate p =
  if p.t0 <= 0. || p.t_min <= 0. || p.t0 < p.t_min then
    invalid_arg "Annealer.place: temperatures must satisfy 0 < t_min <= t0";
  if p.alpha <= 0. || p.alpha >= 1. then
    invalid_arg "Annealer.place: alpha outside (0, 1)";
  if p.i_max < 1 then invalid_arg "Annealer.place: i_max < 1"

(* Weight of the all-pairs compaction term relative to Eq. 3: small enough
   not to distort the connection-priority objective, large enough to pull
   weakly-connected components into the pack. *)
let compaction_weight = 0.01

let objective chip nets =
  Energy.total chip nets +. (compaction_weight *. Energy.compaction chip)

let place ?(params = default_params) ~rng ~nets components =
  validate params;
  let chip = Chip.random rng components in
  let energy = ref (objective chip nets) in
  let initial_energy = !energy in
  let best = ref (Chip.copy chip) in
  let best_energy = ref !energy in
  let accepted = ref 0 and attempted = ref 0 in
  let temperature = ref params.t0 in
  let temperature_steps = ref 0 in
  Telemetry.span ~cat:"place" "sa.walk"
    ~args:[ ("t0", Float params.t0); ("i_max", Int params.i_max) ]
    (fun () ->
      while !temperature > params.t_min do
        incr temperature_steps;
        let accepted_before = !accepted in
        for _ = 1 to params.i_max do
          incr attempted;
          match Moves.random_move rng chip with
          | None -> ()
          | Some undo ->
            let proposed = objective chip nets in
            let delta = proposed -. !energy in
            let accept =
              delta < 0.
              || Mfb_util.Rng.float rng 1.0 < exp (-.delta /. !temperature)
            in
            if accept then begin
              incr accepted;
              energy := proposed;
              if proposed < !best_energy then begin
                best_energy := proposed;
                best := Chip.copy chip
              end
            end
            else undo ()
        done;
        (* One counter-series point and one histogram observation per
           temperature step: the SA acceptance trajectory of Alg. 2. *)
        Telemetry.sample ~cat:"place" "sa.acceptance_rate"
          (float_of_int (!accepted - accepted_before)
          /. float_of_int params.i_max);
        Telemetry.observe ~cat:"place" "sa.energy" !energy;
        temperature := !temperature *. params.alpha
      done);
  Telemetry.incr ~cat:"place" ~by:!accepted "sa.accepted";
  Telemetry.incr ~cat:"place" ~by:!attempted "sa.attempted";
  Telemetry.incr ~cat:"place" ~by:!temperature_steps "sa.temperature_steps";
  (* Tiny instances can defeat the random walk; the packed scanline
     construction is a free lower-effort candidate, so keep the better of
     the two. *)
  let scanline = Chip.scanline components in
  let scanline_energy = objective scanline nets in
  let chip, energy =
    if scanline_energy < !best_energy then (scanline, scanline_energy)
    else (!best, !best_energy)
  in
  { chip; energy; initial_energy; accepted = !accepted;
    attempted = !attempted; temperature_steps = !temperature_steps }

(* Parallel restarts under the split-then-reduce discipline: child RNGs
   are derived from [rng] before dispatch and the winner is the lowest
   energy in fixed restart-index order, so the outcome is independent of
   [jobs].  A single restart keeps drawing from [rng] directly, which
   preserves the historical single-run stream bit-for-bit. *)
let anneal_multi ?(params = default_params) ?(jobs = 1) ?(restarts = 1) ~rng
    ~nets components =
  if restarts < 1 then invalid_arg "Annealer.anneal_multi: restarts < 1";
  if restarts = 1 then place ~params ~rng ~nets components
  else begin
    let rngs = Mfb_util.Rng.split_n rng restarts in
    let results =
      Mfb_util.Pool.init ~label:"sa-restart" ~jobs restarts (fun i ->
          place ~params ~rng:rngs.(i) ~nets components)
    in
    Array.fold_left
      (fun best r -> if r.energy < best.energy then r else best)
      results.(0) results
  end
