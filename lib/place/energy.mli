(** Placement energy (paper Eq. 3):
    [Energy(P) = sum over nets of mdis(i, j) * cp(i, j)]. *)

type weighted_net = { a : int; b : int; cp : float }

val weigh : beta:float -> gamma:float -> Net.t list -> weighted_net list
(** Precompute connection priorities so that energy evaluation inside the
    annealing loop is a plain weighted-wirelength sum. *)

val uniform : Net.t list -> weighted_net list
(** All connection priorities forced to 1.0 — the ablation that turns
    Eq. 3 into plain half-perimeter-style wirelength. *)

val total : Chip.t -> weighted_net list -> float
(** [total chip nets] is Eq. 3 under the current placement. *)

val wirelength : Chip.t -> weighted_net list -> float
(** Unweighted [sum mdis(i, j)] over the same nets. *)

val compaction : Chip.t -> float
(** [sum mdis(i, j)] over {e all} component pairs — a measure of how
    spread out the placement is.  Added with a small weight to the
    annealing objective so that components without strong nets still pack
    tightly (the paper argues DCSA "effectively reduces chip area"). *)

(** {2 Incremental evaluation}

    The annealing hot path only needs the energy {e difference} caused by
    a move, which touches one or two components.  The index below maps
    each component to its incident weighted nets so the annealer can
    re-evaluate just those terms (before and after the move) instead of
    folding over every net plus the O(n²) compaction pairs. *)

type index
(** Component → incident-nets adjacency, with a per-net stamp used to
    deduplicate nets shared by several touched components.  Mutable
    (the stamp round counter) — not safe to share across domains; build
    one per annealing walk. *)

val index : n_components:int -> weighted_net list -> index
(** [index ~n_components nets] builds the adjacency once per walk.
    Component ids in [nets] must lie in [0, n_components). *)

val incident_total :
  Chip.t -> index -> int list -> float * int
(** [incident_total chip idx touched] is the Eq. 3 partial sum over the
    distinct nets incident to any component in [touched], plus the count
    of net terms evaluated.  Evaluating it before and after a move (same
    [touched]) yields the exact Eq. 3 delta: non-incident terms cancel. *)

val partial_compaction : Chip.t -> int list -> float * int
(** [partial_compaction chip touched] is the compaction partial sum over
    all pairs containing at least one touched component (each such pair
    counted once), plus the term count.  Before/after evaluation yields
    the exact {!compaction} delta. *)
