(* Command-line front-end for the DCSA physical synthesis flow.

   dcsa-synth list
   dcsa-synth run -b CPA [--flow ours|ba] [--layout] [--schedule] [--json]
   dcsa-synth run -b CPA --trace t.json --metrics --timing
   dcsa-synth compare [-b CPA]      # Table I (one row or the whole suite)
   dcsa-synth synth -n 40 -s 7      # synthesise a random assay
   dcsa-synth trace t.json          # validate/summarise a Chrome trace *)

open Cmdliner
module Telemetry = Mfb_util.Telemetry

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Log stage timings and telemetry span open/close events.")

(* Telemetry session around one command: a sink is installed whenever
   any observability output is requested ([-v] included, so span
   open/close reach the debug log); the Chrome trace and the folded
   flamegraph stacks are written after the command body finishes. *)
let with_telemetry ~verbose ~trace ?folded ~metrics f =
  if not (verbose || metrics || trace <> None || folded <> None) then f ()
  else begin
    let sink = Telemetry.make_sink () in
    Telemetry.install sink;
    if verbose then
      Telemetry.set_span_hook
        (Some
           (fun dir ~depth name ->
             Logs.debug (fun m ->
                 m "span%s %s%s"
                   (match dir with `Open -> ">" | `Close -> "<")
                   (String.make (2 * depth) ' ')
                   name)));
    let v = f () in
    (match trace with
     | Some path ->
       Out_channel.with_open_text path (fun oc ->
           Mfb_util.Json.to_channel ~indent:1 oc
             (Telemetry.to_chrome_json sink));
       Printf.eprintf "wrote %s\n" path
     | None -> ());
    (match folded with
     | Some path ->
       Out_channel.with_open_text path (fun oc ->
           output_string oc (Telemetry.to_folded sink));
       Printf.eprintf "wrote %s\n" path
     | None -> ());
    v
  end

let run_one ?(jobs = 1) ~config ~flow (inst : Mfb_core.Suite.instance) =
  match flow with
  | `Ours -> Mfb_core.Flow.run ~config ~jobs inst.graph inst.allocation
  | `Ba -> Mfb_core.Baseline.run ~config inst.graph inst.allocation

let print_result ?(metrics = false) ?(timing = false) ~layout ~schedule
    ~gantt ~json ~svg (r : Mfb_core.Result.t) =
  if json then
    print_endline (Mfb_util.Json.to_string ~indent:2 (Mfb_core.Result.to_json r))
  else begin
    Format.printf "%a@." Mfb_core.Result.pp_summary r;
    (match r.decision with
     | None -> ()
     | Some d ->
       Format.printf "backend %s: selected=%s heuristic=%.2fs best=%.2fs \
                      gap=%.1f%% %s (explored %d of %d)@."
         (Mfb_schedule.Portfolio.backend_to_string d.backend)
         (Mfb_schedule.Portfolio.arm_to_string d.selected)
         d.heuristic_makespan d.makespan
         (Mfb_schedule.Portfolio.gap_percent d)
         (if d.optimal then "optimal" else "truncated")
         d.explored d.fuel);
    if timing then begin
      print_newline ();
      print_string (Mfb_core.Report.timing_table [ r ])
    end;
    if metrics then begin
      print_newline ();
      print_string (Mfb_core.Report.metrics_table [ r ])
    end;
    if schedule then begin
      Format.printf "@.%a@." Mfb_schedule.Types.pp r.schedule;
      List.iter
        (fun tr ->
          Format.printf "  transport %a@." Mfb_schedule.Types.pp_transport tr)
        r.schedule.transports
    end;
    if gantt then begin
      print_newline ();
      print_string (Mfb_core.Gantt.render r.schedule)
    end;
    if layout then begin
      print_newline ();
      print_string (Mfb_core.Layout_render.render r)
    end
  end;
  match svg with
  | Some path ->
    Mfb_core.Layout_svg.to_file path r;
    Printf.eprintf "wrote %s\n" path
  | None -> ()

(* --- common options --- *)

let benchmark_arg =
  let doc = "Benchmark name (PCR, IVD, CPA, Synthetic1..Synthetic4)." in
  Arg.(value & opt (some string) None & info [ "b"; "benchmark" ] ~doc)

let tc_arg =
  let doc = "Transport-time constant t_c in seconds." in
  Arg.(value & opt float Mfb_core.Config.default.tc & info [ "tc" ] ~doc)

let seed_arg =
  let doc = "Random seed for the annealing placer." in
  Arg.(value & opt int Mfb_core.Config.default.seed & info [ "seed" ] ~doc)

(* An int converter that rejects values < 1 at parse time, so --jobs 0
   fails like any other malformed option instead of as an uncaught
   exception deep in the flow. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%d is not >= 1" n))
    | None -> Error (`Msg (Printf.sprintf "invalid value '%s', expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sections (annealing restarts, \
     suite instances).  Results are bit-for-bit identical for every \
     value; the default is the recommended domain count of the host."
  in
  Arg.(
    value
    & opt positive_int (Mfb_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~doc ~docv:"N")

let sa_restarts_arg =
  let doc =
    "Independent simulated-annealing restarts per placement; the lowest \
     energy wins deterministically."
  in
  Arg.(
    value
    & opt positive_int Mfb_core.Config.default.sa_restarts
    & info [ "sa-restarts" ] ~doc ~docv:"N")

let backend_arg =
  let doc =
    "Scheduling backend: 'heuristic' (the paper's Alg. 1), 'exact' \
     (branch-and-bound oracle for small assays), or 'portfolio' (race \
     both and keep the better schedule)."
  in
  Arg.(
    value
    & opt
        (enum
           (List.map
              (fun b -> (Mfb_schedule.Portfolio.backend_to_string b, b))
              Mfb_schedule.Portfolio.all_backends))
        Mfb_schedule.Portfolio.Heuristic
    & info [ "backend" ] ~doc)

let exact_fuel_arg =
  let doc =
    "Node budget (virtual ticks) of the exact backend; when exhausted \
     the best incumbent is returned with truncated=true."
  in
  Arg.(
    value
    & opt positive_int Mfb_core.Config.default.exact_fuel
    & info [ "exact-fuel" ] ~doc ~docv:"N")

let config_of ?(sa_restarts = Mfb_core.Config.default.sa_restarts)
    ?(backend = Mfb_core.Config.default.backend)
    ?(exact_fuel = Mfb_core.Config.default.exact_fuel) tc seed =
  { Mfb_core.Config.default with tc; seed; sa_restarts; backend; exact_fuel }

let flow_arg =
  let doc = "Which flow to run: 'ours' (the paper's) or 'ba' (baseline)." in
  Arg.(
    value
    & opt (enum [ ("ours", `Ours); ("ba", `Ba) ]) `Ours
    & info [ "f"; "flow" ] ~doc)

let layout_arg =
  Arg.(value & flag & info [ "layout" ] ~doc:"Print the ASCII chip layout.")

let schedule_arg =
  Arg.(value & flag & info [ "schedule" ] ~doc:"Print the schedule and transports.")

let gantt_arg =
  Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit metrics as JSON.")

let svg_arg =
  let doc = "Write the chip layout to $(docv) as SVG." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Record telemetry and write a Chrome trace_event JSON file to $(docv) \
     (load it in Perfetto or chrome://tracing, or check it with \
     'dcsa-synth trace $(docv)')."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let folded_arg =
  let doc =
    "Record telemetry and write folded flamegraph stacks to $(docv) \
     (one 'stack value' line per distinct span stack; feed to \
     flamegraph.pl or speedscope)."
  in
  Arg.(value & opt (some string) None & info [ "folded" ] ~doc ~docv:"FILE")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Record telemetry and print the aggregated metrics table (with \
           --json the aggregates land in the result's 'metrics' field).")

let timing_arg =
  Arg.(
    value & flag
    & info [ "timing" ] ~doc:"Also print the per-stage wall vs CPU table.")

let input_arg =
  let doc = "Load the bioassay from an assay file instead of a built-in \
             benchmark (see lib/bioassay/assay_file.mli for the format)." in
  Arg.(value & opt (some string) None & info [ "i"; "input" ] ~doc ~docv:"FILE")

let alloc_arg =
  let doc = "Component allocation as M,H,F,D (e.g. 3,1,0,2); defaults to \
             one component per kind used by the assay." in
  Arg.(value & opt (some string) None & info [ "a"; "alloc" ] ~doc ~docv:"M,H,F,D")

let parse_alloc s =
  match List.map int_of_string_opt (String.split_on_char ',' s) with
  | [ Some m; Some h; Some f; Some d ] ->
    (match Mfb_component.Allocation.of_vector (m, h, f, d) with
     | alloc -> Ok alloc
     | exception Invalid_argument msg -> Error msg)
  | _ -> Error (Printf.sprintf "cannot parse allocation %S (want M,H,F,D)" s)

let lookup_benchmark name =
  match Mfb_core.Suite.find name with
  | Some inst -> Ok inst
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %S; try: %s" name
         (String.concat ", " Mfb_core.Suite.names))

(* Resolve the instance to synthesise from [-b] or [-i]/[-a]. *)
let resolve_instance ~benchmark ~input ~alloc =
  match benchmark, input with
  | Some _, Some _ -> Error "use either -b or -i, not both"
  | Some name, None -> lookup_benchmark name
  | None, Some path ->
    (match Mfb_bioassay.Assay_file.of_file path with
     | Error e ->
       Error (Format.asprintf "%s: %a" path Mfb_bioassay.Assay_file.pp_error e)
     | Ok graph ->
       let allocation =
         match alloc with
         | None -> Ok (Mfb_component.Allocation.minimal_for graph)
         | Some s -> parse_alloc s
       in
       Stdlib.Result.map
         (fun allocation -> { Mfb_core.Suite.graph; allocation })
         allocation)
  | None, None -> Error "missing -b BENCHMARK or -i FILE; see 'dcsa-synth list'"

(* --- list --- *)

let list_cmd =
  let action () =
    List.iter
      (fun (inst : Mfb_core.Suite.instance) ->
        Printf.printf "%-11s %3d ops  allocation %s\n"
          (Mfb_bioassay.Seq_graph.name inst.graph)
          (Mfb_bioassay.Seq_graph.n_ops inst.graph)
          (Mfb_component.Allocation.to_string inst.allocation))
      (Mfb_core.Suite.all ())
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in Table-I benchmarks.")
    Term.(const action $ const ())

(* --- run --- *)

let run_cmd =
  let action verbose benchmark input alloc flow tc seed sa_restarts backend
      exact_fuel jobs layout schedule gantt json svg trace folded metrics
      timing =
    setup_logs verbose;
    if flow = `Ba && backend <> Mfb_schedule.Portfolio.Heuristic then
      `Error (false, "--backend exact/portfolio replaces the DCSA \
                      scheduler; it cannot run with --flow ba")
    else
      match resolve_instance ~benchmark ~input ~alloc with
      | Error msg -> `Error (false, msg)
      | Ok inst ->
        let config = config_of ~sa_restarts ~backend ~exact_fuel tc seed in
        with_telemetry ~verbose ~trace ?folded ~metrics (fun () ->
            print_result ~metrics ~timing ~layout ~schedule ~gantt ~json ~svg
              (run_one ~jobs ~config ~flow inst));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Synthesise one benchmark (or an assay file) with the chosen flow \
          and print metrics.")
    Term.(
      ret
        (const action $ verbose_arg $ benchmark_arg $ input_arg $ alloc_arg
       $ flow_arg $ tc_arg $ seed_arg $ sa_restarts_arg $ backend_arg
       $ exact_fuel_arg $ jobs_arg
       $ layout_arg $ schedule_arg $ gantt_arg $ json_arg $ svg_arg
       $ trace_arg $ folded_arg $ metrics_arg $ timing_arg))

(* --- compare --- *)

let compare_cmd =
  let html_arg =
    let doc = "Also write a standalone HTML report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "html" ] ~doc ~docv:"FILE")
  in
  let action verbose benchmark tc seed sa_restarts jobs json html timing
      trace metrics =
    setup_logs verbose;
    let config = config_of ~sa_restarts tc seed in
    let instances =
      match benchmark with
      | None -> Ok (Mfb_core.Suite.all ())
      | Some name -> Stdlib.Result.map (fun i -> [ i ]) (lookup_benchmark name)
    in
    match instances with
    | Error msg -> `Error (false, msg)
    | Ok instances ->
      with_telemetry ~verbose ~trace ~metrics (fun () ->
          let pairs = Mfb_core.Suite.run_pairs ~jobs ~config ~instances () in
          let results =
            List.concat_map (fun (ours, ba) -> [ ours; ba ]) pairs
          in
          if timing then begin
            print_string (Mfb_core.Report.timing_table results);
            print_newline ()
          end;
          if metrics && not json then begin
            print_string (Mfb_core.Report.metrics_table results);
            print_newline ()
          end;
          if json then
            print_endline
              (Mfb_util.Json.to_string ~indent:2
                 (Mfb_core.Report.suite_to_json pairs))
          else begin
            print_string (Mfb_core.Report.table1 pairs);
            print_newline ();
            print_string (Mfb_core.Report.fig8 pairs);
            print_newline ();
            print_string (Mfb_core.Report.fig9 pairs)
          end;
          match html with
          | Some path ->
            Mfb_core.Report_html.to_file path pairs;
            Printf.eprintf "wrote %s\n" path
          | None -> ());
      `Ok ()
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run both flows and print the Table-I style comparison (whole suite \
          by default).  Independent instances run on --jobs domains.")
    Term.(
      ret (const action $ verbose_arg $ benchmark_arg $ tc_arg $ seed_arg
         $ sa_restarts_arg $ jobs_arg $ json_arg $ html_arg $ timing_arg
         $ trace_arg $ metrics_arg))

(* --- synth (random assay) --- *)

let synth_cmd =
  let n_ops_arg =
    Arg.(value & opt int 30 & info [ "n"; "ops" ] ~doc:"Number of operations.")
  in
  let gseed_arg =
    Arg.(value & opt int 1 & info [ "s"; "graph-seed" ] ~doc:"Generator seed.")
  in
  let action verbose n_ops gseed tc seed sa_restarts backend exact_fuel jobs
      layout schedule gantt json svg trace folded metrics timing =
    setup_logs verbose;
    if n_ops < 2 then `Error (false, "need at least 2 operations")
    else begin
      let graph =
        Mfb_bioassay.Synthetic.generate
          ~name:(Printf.sprintf "random-%d-%d" n_ops gseed)
          { Mfb_bioassay.Synthetic.default_params with
            n_ops;
            kind_weights = [| 4; 2; 1; 1 |];
            layer_width = max 3 (n_ops / 6);
            seed = gseed }
      in
      let mixers = max 2 (n_ops / 6) in
      let allocation =
        Mfb_component.Allocation.make ~mixers ~heaters:(max 1 (mixers / 2))
          ~filters:1 ~detectors:1
      in
      let config = config_of ~sa_restarts ~backend ~exact_fuel tc seed in
      with_telemetry ~verbose ~trace ?folded ~metrics (fun () ->
          print_result ~metrics ~timing ~layout ~schedule ~gantt ~json ~svg
            (Mfb_core.Flow.run ~config ~jobs graph allocation));
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Generate a random bioassay and synthesise it with the DCSA flow.")
    Term.(
      ret
        (const action $ verbose_arg $ n_ops_arg $ gseed_arg $ tc_arg
       $ seed_arg $ sa_restarts_arg $ backend_arg $ exact_fuel_arg
       $ jobs_arg $ layout_arg $ schedule_arg
       $ gantt_arg $ json_arg $ svg_arg $ trace_arg $ folded_arg
       $ metrics_arg $ timing_arg))

(* --- explore (architectural synthesis) --- *)

let explore_cmd =
  let action benchmark input tc =
    let graph =
      match benchmark, input with
      | Some _, Some _ -> Error "use either -b or -i, not both"
      | Some name, None ->
        Stdlib.Result.map
          (fun (i : Mfb_core.Suite.instance) -> i.graph)
          (lookup_benchmark name)
      | None, Some path ->
        (match Mfb_bioassay.Assay_file.of_file path with
         | Ok g -> Ok g
         | Error e ->
           Error
             (Format.asprintf "%s: %a" path Mfb_bioassay.Assay_file.pp_error e))
      | None, None -> Error "missing -b BENCHMARK or -i FILE"
    in
    match graph with
    | Error msg -> `Error (false, msg)
    | Ok graph ->
      let frontier = Mfb_core.Allocator.explore ~tc graph in
      List.iter
        (fun (p : Mfb_core.Allocator.point) ->
          Printf.printf "%-10s %2d components  %7.1f s  util %4.1f%%\n"
            (Mfb_component.Allocation.to_string p.allocation)
            p.components p.completion_time (100. *. p.utilization))
        frontier;
      (match Mfb_core.Allocator.knee frontier with
       | Some k ->
         Printf.printf "knee: %s (%.1f s)\n"
           (Mfb_component.Allocation.to_string k.allocation)
           k.completion_time
       | None -> ());
      `Ok ()
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Explore the allocation space: Pareto frontier of (components, \
          completion time).")
    Term.(ret (const action $ benchmark_arg $ input_arg $ tc_arg))

(* --- info (assay statistics) --- *)

let info_cmd =
  let action benchmark input =
    let graph =
      match benchmark, input with
      | Some name, None ->
        Stdlib.Result.map
          (fun (i : Mfb_core.Suite.instance) -> i.graph)
          (lookup_benchmark name)
      | None, Some path ->
        (match Mfb_bioassay.Assay_file.of_file path with
         | Ok g -> Ok g
         | Error e ->
           Error
             (Format.asprintf "%s: %a" path Mfb_bioassay.Assay_file.pp_error e))
      | _ -> Error "need exactly one of -b BENCHMARK or -i FILE"
    in
    match graph with
    | Error msg -> `Error (false, msg)
    | Ok g ->
      let counts = Mfb_bioassay.Seq_graph.kind_counts g in
      let volume = Mfb_bioassay.Volume.analyse g in
      Printf.printf "%s\n" (Mfb_bioassay.Seq_graph.name g);
      Printf.printf "  operations      %d (mix %d, heat %d, filter %d, detect %d)\n"
        (Mfb_bioassay.Seq_graph.n_ops g) counts.(0) counts.(1) counts.(2)
        counts.(3);
      Printf.printf "  edges           %d\n" (Mfb_bioassay.Seq_graph.n_edges g);
      Printf.printf "  depth           %d levels\n"
        (Mfb_bioassay.Seq_graph.depth g);
      Printf.printf "  width profile   %s\n"
        (String.concat ","
           (List.map string_of_int (Mfb_bioassay.Seq_graph.width_profile g)));
      Printf.printf "  critical path   %.1f s (tc = %.1f)\n"
        (Mfb_bioassay.Seq_graph.critical_path g
           ~tc:Mfb_core.Config.default.tc)
        Mfb_core.Config.default.tc;
      Printf.printf "  sources/sinks   %d/%d\n"
        (List.length (Mfb_bioassay.Seq_graph.sources g))
        (List.length (Mfb_bioassay.Seq_graph.sinks g));
      Printf.printf "  reagent bill    %.2f chamber units\n"
        (Mfb_bioassay.Volume.total_reagent volume);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Print structural statistics and the reagent bill of an assay.")
    Term.(ret (const action $ benchmark_arg $ input_arg))

(* --- control (control-layer synthesis) --- *)

let control_cmd =
  let action benchmark tc seed =
    match benchmark with
    | None -> `Error (false, "missing -b BENCHMARK")
    | Some name ->
      (match lookup_benchmark name with
       | Error msg -> `Error (false, msg)
       | Ok inst ->
         let config = config_of tc seed in
         let r = Mfb_core.Flow.run ~config inst.graph inst.allocation in
         let valves = Mfb_control.Valve_map.of_routing r.routing in
         let steps =
           Mfb_control.Actuation.steps ~tc:config.tc valves r.routing
         in
         let events = Mfb_control.Actuation.toggle_sequence steps in
         let n = max 1 (Mfb_control.Valve_map.count valves) in
         let naive =
           Mfb_control.Mux.switching_cost (Mfb_control.Mux.naive ~n) ~events
         in
         let optimized =
           Mfb_control.Mux.switching_cost
             (Mfb_control.Mux.greedy ~events ~n)
             ~events
         in
         let esc =
           Mfb_control.Escape.route ~width:r.chip.width ~height:r.chip.height
             valves
         in
         Printf.printf "%s control layer\n" r.benchmark;
         Printf.printf "  valves              %d\n"
           (Mfb_control.Valve_map.count valves);
         Printf.printf "  mux pins            %d\n" (Mfb_control.Mux.pins_needed n);
         Printf.printf "  actuation steps     %d\n" (List.length steps);
         Printf.printf "  valve switches      %d\n"
           (Mfb_control.Actuation.valve_switching steps);
         Printf.printf "  pin toggles naive   %d\n" naive;
         Printf.printf "  pin toggles greedy  %d (%.1f%% less)\n" optimized
           (Mfb_control.Mux.improvement_percent ~naive ~optimized);
         Printf.printf "  escape routed       %d/%d lines, %d pins, %d cells\n"
           (List.length esc.lines)
           (Mfb_control.Valve_map.count valves)
           esc.pins esc.total_length;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "control"
       ~doc:
         "Synthesise a benchmark, derive its control layer (valves, \
          actuation, mux addressing, escape routing), and print the \
          figures.")
    Term.(ret (const action $ benchmark_arg $ tc_arg $ seed_arg))

(* --- trace (validate / summarise observability artifacts) --- *)

let validate_chrome path contents =
  let module J = Mfb_util.Json in
  match J.of_string contents with
  | Error e -> `Error (false, Printf.sprintf "%s: invalid JSON (%s)" path e)
  | Ok doc ->
    (match J.member "traceEvents" doc with
     | Some (J.List events) ->
       let spans = ref 0 and samples = ref 0 and instants = ref 0 in
       let meta = ref 0 and bad = ref 0 in
       let tids = Hashtbl.create 16 and cats = Hashtbl.create 16 in
       List.iter
         (fun ev ->
           match J.member "ph" ev, J.member "name" ev with
           | Some (J.String ph), Some (J.String _) ->
             (match J.member "tid" ev with
              | Some (J.Int tid) -> Hashtbl.replace tids tid ()
              | _ -> ());
             (match J.member "cat" ev with
              | Some (J.String c) -> Hashtbl.replace cats c ()
              | _ -> ());
             (match ph with
              | "X" ->
                (* Complete events must carry ts and dur. *)
                (match J.member "ts" ev, J.member "dur" ev with
                 | Some _, Some _ -> incr spans
                 | _ -> incr bad)
              | "C" -> incr samples
              | "i" -> incr instants
              | "M" -> incr meta
              | _ -> incr bad)
           | _ -> incr bad)
         events;
       if !bad > 0 then
         `Error
           (false,
            Printf.sprintf "%s: %d malformed trace event(s)" path !bad)
       else begin
         let sorted tbl =
           Hashtbl.fold (fun k () acc -> k :: acc) tbl []
           |> List.sort compare
         in
         Printf.printf
           "valid Chrome trace: %d span(s), %d counter sample(s), %d \
            instant(s) on %d track(s)\n"
           !spans !samples !instants
           (Hashtbl.length tids);
         Printf.printf "categories: %s\n"
           (String.concat ", " (sorted cats));
         `Ok ()
       end
     | Some _ -> `Error (false, path ^ ": traceEvents is not an array")
     | None -> `Error (false, path ^ ": no traceEvents array"))

let nonempty_lines contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter (fun (_, l) -> String.trim l <> "")

(* Folded stacks: every line is "stack;frames value" with a positive
   integer value and no empty frame. *)
let validate_folded path contents =
  let errors = ref [] and stacks = ref 0 and total = ref 0 in
  List.iter
    (fun (ln, line) ->
      let err msg =
        errors := Printf.sprintf "%s:%d: %s" path ln msg :: !errors
      in
      match String.rindex_opt line ' ' with
      | None -> err "expected 'stack value' (no space found)"
      | Some i ->
        let stack = String.sub line 0 i in
        let value = String.sub line (i + 1) (String.length line - i - 1) in
        (match int_of_string_opt value with
         | None -> err (Printf.sprintf "value %S is not an integer" value)
         | Some v when v < 1 -> err "span value must be >= 1"
         | Some v ->
           if stack = "" then err "empty stack"
           else if
             List.exists
               (fun f -> f = "")
               (String.split_on_char ';' stack)
           then err "empty frame in stack"
           else begin
             incr stacks;
             total := !total + v
           end))
    (nonempty_lines contents);
  match List.rev !errors with
  | [] ->
    Printf.printf "valid folded stacks: %d stack(s), %d unit(s) total\n"
      !stacks !total;
    `Ok ()
  | e :: _ as all ->
    List.iter prerr_endline all;
    `Error (false, Printf.sprintf "%d malformed line(s), first: %s"
              (List.length all) e)

(* Access log: one JSON object per line with the serving tier's fixed
   record shape. *)
let validate_access path contents =
  let module J = Mfb_util.Json in
  let errors = ref [] and records = ref 0 in
  let outcomes = Hashtbl.create 8 in
  List.iter
    (fun (ln, line) ->
      let err msg =
        errors := Printf.sprintf "%s:%d: %s" path ln msg :: !errors
      in
      match J.of_string line with
      | Error e -> err (Printf.sprintf "invalid JSON (%s)" e)
      | Ok record ->
        let str k =
          match J.member k record with
          | Some (J.String s) -> Some s
          | _ -> None
        in
        let int_ok k =
          match J.member k record with Some (J.Int _) -> true | _ -> false
        in
        let missing =
          List.filter
            (fun k -> str k = None)
            [ "rid"; "id"; "key"; "backend"; "outcome" ]
          @ List.filter
              (fun k -> not (int_ok k))
              [ "queue_ticks"; "compute_ticks"; "total_ticks" ]
        in
        (match missing with
         | [] ->
           let outcome = Option.get (str "outcome") in
           if
             not
               (List.mem outcome
                  [ "hit"; "done"; "shed"; "rejected"; "near-hit";
                    "repair"; "repair-cold" ])
           then err (Printf.sprintf "unknown outcome %S" outcome)
           else begin
             incr records;
             Hashtbl.replace outcomes outcome
               (1
               + Option.value ~default:0
                   (Hashtbl.find_opt outcomes outcome))
           end
         | ks ->
           err
             (Printf.sprintf "missing or mistyped field(s): %s"
                (String.concat ", " ks))))
    (nonempty_lines contents);
  match List.rev !errors with
  | [] ->
    let count k = Option.value ~default:0 (Hashtbl.find_opt outcomes k) in
    (* newer outcome classes are appended only when present, so logs
       from older scripts keep their validation output bytes *)
    let extras =
      List.filter_map
        (fun k ->
          let n = count k in
          if n = 0 then None else Some (Printf.sprintf ", %d %s" n k))
        [ "near-hit"; "repair"; "repair-cold" ]
    in
    Printf.printf
      "valid access log: %d record(s) (%d done, %d hit, %d shed, %d \
       rejected%s)\n"
      !records (count "done") (count "hit") (count "shed")
      (count "rejected")
      (String.concat "" extras);
    `Ok ()
  | e :: _ as all ->
    List.iter prerr_endline all;
    `Error (false, Printf.sprintf "%d malformed line(s), first: %s"
              (List.length all) e)

let trace_cmd =
  let file_arg =
    let doc =
      "Observability artifact: a Chrome trace_event JSON file (--trace), \
       a folded-stack file (--folded), or a JSONL access log \
       (--access-log)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~doc ~docv:"FILE")
  in
  let format_arg =
    let doc =
      "Artifact format: 'chrome', 'folded', 'access', or 'auto' (detect: \
       whole-file JSON object is a Chrome trace, line-wise JSON objects \
       are an access log, anything else is folded stacks)."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("auto", `Auto); ("chrome", `Chrome); ("folded", `Folded);
               ("access", `Access) ])
          `Auto
      & info [ "format" ] ~doc ~docv:"FORMAT")
  in
  let action path format =
    let module J = Mfb_util.Json in
    let contents = In_channel.with_open_text path In_channel.input_all in
    let detect () =
      if String.trim contents = "" then `Folded
      else begin
        let first_line =
          match nonempty_lines contents with
          | (_, l) :: _ -> String.trim l
          | [] -> ""
        in
        if first_line <> "" && first_line.[0] = '{' then
          match J.of_string contents with
          | Ok doc when J.member "traceEvents" doc <> None -> `Chrome
          | _ -> `Access
        else `Folded
      end
    in
    let resolved =
      match format with
      | `Auto -> detect ()
      | `Chrome -> `Chrome
      | `Folded -> `Folded
      | `Access -> `Access
    in
    match resolved with
    | `Chrome -> validate_chrome path contents
    | `Folded -> validate_folded path contents
    | `Access -> validate_access path contents
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Validate an observability artifact — a Chrome trace_event JSON \
          file, folded flamegraph stacks, or a JSONL access log — and \
          print a summary.  Malformed input is reported with one error \
          per offending line.")
    Term.(ret (const action $ file_arg $ format_arg))

(* --- dot (Graphviz export) --- *)

let dot_cmd =
  let action benchmark input =
    let graph =
      match benchmark, input with
      | Some name, None ->
        Stdlib.Result.map
          (fun (i : Mfb_core.Suite.instance) -> i.graph)
          (lookup_benchmark name)
      | None, Some path ->
        (match Mfb_bioassay.Assay_file.of_file path with
         | Ok g -> Ok g
         | Error e ->
           Error
             (Format.asprintf "%s: %a" path Mfb_bioassay.Assay_file.pp_error e))
      | _ -> Error "need exactly one of -b BENCHMARK or -i FILE"
    in
    match graph with
    | Error msg -> `Error (false, msg)
    | Ok g ->
      print_string (Mfb_bioassay.Seq_graph.to_dot g);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the sequencing graph in Graphviz dot format.")
    Term.(ret (const action $ benchmark_arg $ input_arg))

(* --- worker --- *)

let fault_plan_arg =
  let doc =
    "JSON fault-injection plan (see lib/cluster/fault.mli).  Faults are \
     keyed by (worker slot, per-process job index), so replays from the \
     same plan are bit-for-bit reproducible."
  in
  Arg.(
    value
    & opt (some file) None
    & info [ "fault-plan" ] ~doc ~docv:"FILE")

let worker_cmd =
  let index_arg =
    let doc = "Fleet slot index of this worker (set by the supervisor)." in
    Arg.(value & opt int 0 & info [ "index" ] ~doc ~docv:"N")
  in
  let vclock_arg =
    let doc =
      "Freeze the per-request telemetry clock at 0, so span trees \
       shipped back for traced submits are deterministic (set by \
       'serve' unless it runs with --wall-clock)."
    in
    Arg.(value & flag & info [ "vclock" ] ~doc)
  in
  let action index vclock fault_plan tc seed sa_restarts backend exact_fuel =
    let fault =
      match fault_plan with
      | None -> Ok Mfb_cluster.Fault.empty
      | Some path -> Mfb_cluster.Fault.of_file path
    in
    match fault with
    | Error msg -> `Error (false, msg)
    | Ok fault ->
      Mfb_cluster.Worker_main.run ~fault ~index ~vclock
        ~config:(config_of ~sa_restarts ~backend ~exact_fuel tc seed)
        stdin stdout;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run one fleet worker: answer submit/stats/shutdown protocol \
          lines on stdin with one response line each on stdout.  Spawned \
          by 'serve --fleet N'; base config flags must match the \
          dispatching server's so answers are byte-identical to \
          in-process synthesis.")
    Term.(
      ret
        (const action $ index_arg $ vclock_arg $ fault_plan_arg $ tc_arg
       $ seed_arg $ sa_restarts_arg $ backend_arg $ exact_fuel_arg))

(* --- serve --- *)

let serve_cmd =
  let cache_size_arg =
    let doc =
      "Capacity of the content-addressed result cache in entries; 0 \
       disables caching."
    in
    Arg.(value & opt int 128 & info [ "cache-size" ] ~doc ~docv:"N")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the result cache (same as --cache-size 0).")
  in
  let repair_cache_arg =
    let doc =
      "Full synthesis results retained for warm-start repair requests, \
       most-recently-used first; 0 disables retention, so every repair \
       re-synthesises cold.  The repair report bytes are identical \
       either way — only latency differs."
    in
    Arg.(value & opt int 8 & info [ "repair-cache" ] ~doc ~docv:"N")
  in
  let similarity_arg =
    let doc =
      "Enable the similarity cache: a submission within --sim-threshold \
       edit distance of a previously computed one is warm-started from \
       its solution (cached placement reused, invalidated transports \
       re-routed via the repair ladder) instead of synthesised cold, \
       subject to the --warm-delta quality gate.  Near-hit payloads are \
       deterministic — identical across --jobs values, transports and \
       fleet sizes — but generally differ from cold payloads, so the \
       feature is opt-in."
    in
    Arg.(value & flag & info [ "similarity" ] ~doc)
  in
  let sim_threshold_arg =
    let doc =
      "Largest fingerprint edit distance accepted as a near-hit (a \
       single-op edit typically costs 2-6; each differing config knob \
       costs 2)."
    in
    Arg.(value & opt int 8 & info [ "sim-threshold" ] ~doc ~docv:"N")
  in
  let warm_delta_arg =
    let doc =
      "Quality gate for warm starts: a warm result whose makespan \
       exceeds (1 + $(docv)) x the cold lower bound is discarded and \
       the job re-synthesised cold (counted as a fallback)."
    in
    Arg.(value & opt float 0.25 & info [ "warm-delta" ] ~doc ~docv:"DELTA")
  in
  let queue_depth_arg =
    let doc =
      "Admission-control bound: at most $(docv) jobs may wait in the queue; \
       a submission beyond that displaces a strictly lower-priority job or \
       is rejected."
    in
    Arg.(value & opt positive_int 64 & info [ "queue-depth" ] ~doc ~docv:"N")
  in
  let batch_arg =
    let doc = "Jobs dispatched per batch (one virtual tick per batch)." in
    Arg.(value & opt positive_int 8 & info [ "batch" ] ~doc ~docv:"N")
  in
  let serve_jobs_arg =
    let doc =
      "Worker domains for batch synthesis.  Responses are bit-for-bit \
       identical for every value."
    in
    Arg.(value & opt positive_int 1 & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let fleet_arg =
    let doc =
      "Dispatch batches to $(docv) supervised worker processes instead of \
       in-process domains; 0 (the default) keeps everything in-process.  \
       Response payloads are byte-identical for every fleet size — worker \
       crashes, stalls and garbage are retried on another worker or \
       degraded back to in-process synthesis."
    in
    Arg.(value & opt int 0 & info [ "fleet" ] ~doc ~docv:"N")
  in
  let worker_timeout_arg =
    let doc = "Per-job worker response deadline in seconds." in
    Arg.(
      value & opt float 30.0 & info [ "worker-timeout" ] ~doc ~docv:"SECONDS")
  in
  let max_retries_arg =
    let doc =
      "Extra dispatch attempts per job before degrading to in-process \
       synthesis."
    in
    Arg.(value & opt int 2 & info [ "max-retries" ] ~doc ~docv:"N")
  in
  let worker_bin_arg =
    let doc =
      "Executable spawned for fleet workers (defaults to this binary)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "worker-bin" ] ~doc ~docv:"PATH")
  in
  let access_log_arg =
    let doc =
      "Write one JSONL access-log record per finished request to $(docv) \
       (request id, cache key prefix, backend, outcome, queue/compute/\
       total latency, fleet attribution).  Under the default virtual \
       clock the log bytes are identical for every --jobs value and for \
       --fleet 0 vs --fleet N (modulo the optional 'fleet' subobject)."
    in
    Arg.(value & opt (some string) None & info [ "access-log" ] ~doc ~docv:"FILE")
  in
  let slow_ms_arg =
    let doc =
      "Latency threshold at or above which an access-log record embeds \
       the request's full span tree (units: virtual ticks, or \
       milliseconds with --wall-clock)."
    in
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~doc ~docv:"T")
  in
  let serve_trace_arg =
    let doc =
      "Record request-scoped telemetry and write a Chrome trace_event \
       JSON file to $(docv) on shutdown — one track per request holding \
       its merged distributed trace (queue wait, compute, worker-side \
       spans, retries)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let serve_folded_arg =
    let doc =
      "Record request-scoped telemetry and write folded flamegraph \
       stacks to $(docv) on shutdown."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~doc ~docv:"FILE")
  in
  let wall_clock_arg =
    let doc =
      "Measure request latency in wall milliseconds instead of virtual \
       ticks.  Latency histograms and traces stop being deterministic; \
       use for real load measurements (bench/load_gen does)."
    in
    Arg.(value & flag & info [ "wall-clock" ] ~doc)
  in
  let tcp_arg =
    let doc =
      "Serve the line protocol on TCP port $(docv) instead of \
       stdin/stdout: one event loop, many concurrent client \
       connections, request lines handled in global arrival order so \
       responses, access-log bytes and cache behaviour match the stdio \
       path exactly.  Port 0 binds an ephemeral port (pair with \
       --port-file)."
    in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~doc ~docv:"PORT")
  in
  let port_file_arg =
    let doc =
      "With --tcp, write the bound port number to $(docv) once \
       listening — the startup handshake for scripts using --tcp 0."
    in
    Arg.(
      value & opt (some string) None & info [ "port-file" ] ~doc ~docv:"FILE")
  in
  let max_conns_arg =
    let doc =
      "With --tcp, accept at most $(docv) simultaneous connections; \
       further connectors wait in the kernel backlog."
    in
    Arg.(value & opt positive_int 64 & info [ "max-conns" ] ~doc ~docv:"N")
  in
  let shard_arg =
    let doc =
      "Route each job to the consistent-hash owner of its cache key \
       among the fleet slots (a placement preference: the owner wins \
       when live and free, any worker otherwise — answers are \
       byte-identical either way).  Defaults to enabled under --tcp \
       with a fleet, disabled otherwise."
    in
    Arg.(value & opt (some bool) None & info [ "shard" ] ~doc ~docv:"BOOL")
  in
  let action jobs cache_size no_cache repair_cache similarity sim_threshold
      warm_delta queue_depth batch fleet
      fault_plan worker_timeout max_retries worker_bin access_log slow_ms
      trace folded wall_clock tcp port_file max_conns shard tc seed
      sa_restarts backend exact_fuel =
    if cache_size < 0 then
      `Error (false, "--cache-size must be non-negative")
    else if repair_cache < 0 then
      `Error (false, "--repair-cache must be non-negative")
    else if sim_threshold < 0 then
      `Error (false, "--sim-threshold must be non-negative")
    else if warm_delta < 0. then
      `Error (false, "--warm-delta must be non-negative")
    else if fleet < 0 then `Error (false, "--fleet must be non-negative")
    else if max_retries < 0 then
      `Error (false, "--max-retries must be non-negative")
    else if (match tcp with Some p -> p < 0 || p > 65535 | None -> false)
    then `Error (false, "--tcp expects a port in 0..65535")
    else begin
      let access_oc = Option.map open_out access_log in
      let base_cfg =
        {
          Mfb_server.Server.default_config with
          jobs;
          cache_capacity = (if no_cache then 0 else cache_size);
          repair_cache;
          similarity;
          sim_threshold;
          warm_delta;
          queue_depth;
          batch;
          flow_config = config_of ~sa_restarts ~backend ~exact_fuel tc seed;
          clock = (if wall_clock then `Wall else `Virtual);
          access_log = access_oc;
          slow_threshold = slow_ms;
        }
      in
      (* Same server, two transports: the stdio loop, or the select
         loop multiplexing many connections through it. *)
      let run_server server =
        match tcp with
        | None -> Mfb_server.Server.serve server
        | Some port ->
          let lcfg =
            {
              Mfb_net.Listener.default_config with
              port;
              max_conns;
              port_file;
            }
          in
          ignore (Mfb_net.Listener.run lcfg server)
      in
      (* The sink's clock reads the server's virtual tick, so every
         span timestamp — including worker spans grafted after the
         fact — is a pure function of the request script. *)
      let serve_with server =
        let sink =
          if trace <> None || folded <> None then begin
            let clock =
              if wall_clock then Unix.gettimeofday
              else
                fun () ->
                  float_of_int (Mfb_server.Server.current_tick server)
            in
            let s = Telemetry.make_sink ~clock () in
            Telemetry.install s;
            Some s
          end
          else None
        in
        Fun.protect
          ~finally:(fun () ->
            (match sink with
             | Some s ->
               (match trace with
                | Some path ->
                  Out_channel.with_open_text path (fun oc ->
                      Mfb_util.Json.to_channel ~indent:1 oc
                        (Telemetry.to_chrome_json s));
                  Printf.eprintf "wrote %s\n" path
                | None -> ());
               (match folded with
                | Some path ->
                  Out_channel.with_open_text path (fun oc ->
                      output_string oc (Telemetry.to_folded s));
                  Printf.eprintf "wrote %s\n" path
                | None -> ());
               Telemetry.uninstall ()
             | None -> ());
            match access_oc with Some oc -> close_out oc | None -> ())
          (fun () -> run_server server)
      in
      if fleet = 0 then begin
        serve_with (Mfb_server.Server.create base_cfg);
        `Ok ()
      end
      else begin
        let bin =
          match worker_bin with Some p -> p | None -> Sys.executable_name
        in
        (* Workers must resolve submissions against the same base config
           as the server, or answers would diverge from --fleet 0. *)
        let worker_argv slot =
          Array.of_list
            ([ bin; "worker"; "--index"; string_of_int slot;
               "--tc"; Printf.sprintf "%.17g" tc;
               "--seed"; string_of_int seed;
               "--sa-restarts"; string_of_int sa_restarts;
               "--backend"; Mfb_schedule.Portfolio.backend_to_string backend;
               "--exact-fuel"; string_of_int exact_fuel ]
            @ (if wall_clock then [] else [ "--vclock" ])
            @ (match fault_plan with
               | None -> []
               | Some path -> [ "--fault-plan"; path ]))
        in
        (* Sharded routing keeps each worker's cache/compute partition
           stable; default on for the network tier, off on the stdio
           path (where the slot-order scan is the documented layout). *)
        let route =
          let enabled =
            match shard with Some b -> b | None -> tcp <> None
          in
          if not enabled then None
          else begin
            let ring = Mfb_net.Shard.create ~slots:fleet () in
            Some
              (fun (job : Mfb_server.Server.job) ->
                Some
                  (Mfb_net.Shard.slot_of_key ring job.Mfb_server.Server.key))
          end
        in
        let cluster =
          Mfb_cluster.Cluster.create
            {
              (Mfb_cluster.Cluster.default_config ~worker_argv ~size:fleet) with
              timeout = worker_timeout;
              max_retries;
              route;
            }
        in
        let cfg =
          {
            base_cfg with
            dispatch = Some (Mfb_cluster.Cluster.dispatch cluster);
            extra_stats =
              Some
                (fun () ->
                  [ ("cluster", Mfb_cluster.Cluster.stats_json cluster) ]);
            extra_prometheus = Some (Mfb_cluster.Cluster.prometheus cluster);
          }
        in
        Fun.protect
          ~finally:(fun () -> Mfb_cluster.Cluster.stop cluster)
          (fun () -> serve_with (Mfb_server.Server.create cfg));
        `Ok ()
      end
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the synthesis service: line-delimited JSON requests on stdin \
          (submit/status/result/stats/shutdown), one JSON response per \
          line on stdout.  Structurally identical requests are answered \
          from a content-addressed result cache; queued jobs run in \
          deterministic batches under admission control.  With --fleet N \
          batches are dispatched to supervised worker processes with \
          automatic respawn, retry and in-process degradation.  See \
          lib/server/protocol.mli for the request format.")
    Term.(
      ret
        (const action $ serve_jobs_arg $ cache_size_arg $ no_cache_arg
       $ repair_cache_arg $ similarity_arg $ sim_threshold_arg
       $ warm_delta_arg $ queue_depth_arg $ batch_arg $ fleet_arg
       $ fault_plan_arg
       $ worker_timeout_arg $ max_retries_arg $ worker_bin_arg
       $ access_log_arg $ slow_ms_arg $ serve_trace_arg $ serve_folded_arg
       $ wall_clock_arg $ tcp_arg $ port_file_arg $ max_conns_arg $ shard_arg
       $ tc_arg $ seed_arg $ sa_restarts_arg $ backend_arg $ exact_fuel_arg))

(* --- repair --- *)

let repair_cmd =
  let module Defect = Mfb_repair.Defect in
  let module Plan = Mfb_repair.Plan in
  let defect_arg =
    let doc = "Defective channel cell $(docv) (repeatable)." in
    Arg.(value & opt_all string [] & info [ "defect" ] ~doc ~docv:"X,Y")
  in
  let component_arg =
    let doc = "Dead component site $(docv) (repeatable)." in
    Arg.(value & opt_all int [] & info [ "dead-component" ] ~doc ~docv:"ID")
  in
  let plan_arg =
    let doc =
      "Load the defect plan from JSON $(docv) (see lib/repair/defect.mli \
       for the format; the chip-fault analogue of serve's --fault-plan)."
    in
    Arg.(
      value & opt (some string) None & info [ "defect-plan" ] ~doc ~docv:"FILE")
  in
  let model_arg =
    let doc =
      "Seeded defect model: 'single' (one channel cell), 'cluster' (a \
       Manhattan-radius debris field), 'progressive' (cells failing on \
       consecutive virtual ticks) or 'component' (one dead component \
       site).  The plan is a pure function of (--defect-seed, chip)."
    in
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("single", `Single); ("cluster", `Cluster);
                  ("progressive", `Progressive); ("component", `Component) ]))
          None
      & info [ "defect-model" ] ~doc ~docv:"MODEL")
  in
  let dseed_arg =
    let doc = "Seed of the defect model." in
    Arg.(value & opt int 0 & info [ "defect-seed" ] ~doc ~docv:"N")
  in
  let radius_arg =
    let doc = "Manhattan radius of the 'cluster' model." in
    Arg.(value & opt int 1 & info [ "radius" ] ~doc ~docv:"R")
  in
  let count_arg =
    let doc = "Cells failed by the 'progressive' model." in
    Arg.(value & opt positive_int 3 & info [ "count" ] ~doc ~docv:"N")
  in
  let tick_arg =
    let doc =
      "Repair only the defects visible at virtual tick $(docv) (default: \
       the whole plan)."
    in
    Arg.(value & opt (some int) None & info [ "tick" ] ~doc ~docv:"T")
  in
  let save_plan_arg =
    let doc = "Write the resolved defect plan to JSON $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "save-plan" ] ~doc ~docv:"FILE")
  in
  let parse_cell s =
    match List.map int_of_string_opt (String.split_on_char ',' s) with
    | [ Some x; Some y ] -> Ok (x, y)
    | _ -> Error (Printf.sprintf "cannot parse defect cell %S (want X,Y)" s)
  in
  let print_report (r : Plan.report) ~json =
    if json then
      print_endline
        (Mfb_util.Json.to_string ~indent:2 (Plan.report_to_json r))
    else begin
      Printf.printf "defects:   %s\n"
        (String.concat " " (List.map Defect.target_to_string r.targets));
      Printf.printf "rung:      %s\n"
        (match r.rung with None -> "none (nothing affected)"
                         | Some rung -> Plan.rung_name rung);
      Printf.printf
        "ripped up %d  rerouted %d (%d delayed)  rebound %d  fallbacks %d  \
         failed %d\n"
        r.ripped_up (r.rerouted + r.rerouted_delayed) r.rerouted_delayed
        r.rebound r.fallbacks r.failed;
      Printf.printf "makespan:  %.2f -> %.2f s (%+.2f)\n" r.makespan_before
        r.makespan_after
        (r.makespan_after -. r.makespan_before);
      Printf.printf "survived:  %s\n" (if r.survived then "yes" else "no")
    end
  in
  let action verbose benchmark input alloc tc seed sa_restarts backend
      exact_fuel jobs cells components plan_file model dseed radius count
      tick save_plan json trace folded metrics =
    setup_logs verbose;
    match resolve_instance ~benchmark ~input ~alloc with
    | Error msg -> `Error (false, msg)
    | Ok inst ->
      let config = config_of ~sa_restarts ~backend ~exact_fuel tc seed in
      let explicit_plan () =
        let parsed =
          List.fold_left
            (fun acc s ->
              match (acc, parse_cell s) with
              | Error _, _ -> acc
              | Ok _, Error e -> Error e
              | Ok l, Ok c ->
                Ok ({ Defect.tick = 0; target = Defect.Cell c } :: l))
            (Ok []) cells
        in
        Stdlib.Result.map
          (fun l ->
            List.rev l
            @ List.map
                (fun i -> { Defect.tick = 0; target = Defect.Component i })
                components)
          parsed
      in
      let outcome =
        with_telemetry ~verbose ~trace ?folded ~metrics (fun () ->
            let r = run_one ~jobs ~config ~flow:`Ours inst in
            (* the seeded models draw from the synthesized chip, so the
               plan can only be resolved after synthesis *)
            let plan =
              match (plan_file, model) with
              | Some _, Some _ ->
                Error "use either --defect-plan or --defect-model, not both"
              | Some path, None -> Defect.of_file path
              | None, Some m ->
                if cells <> [] || components <> [] then
                  Error
                    "--defect-model replaces --defect/--dead-component; \
                     use one or the other"
                else
                  Ok
                    (match m with
                     | `Single -> Defect.single_cell ~seed:dseed r.chip
                     | `Cluster -> Defect.clustered ~seed:dseed ~radius r.chip
                     | `Progressive ->
                       Defect.progressive ~seed:dseed ~count r.chip
                     | `Component -> Defect.component_fault ~seed:dseed r.chip)
              | None, None -> explicit_plan ()
            in
            match plan with
            | Error e -> Error e
            | Ok plan ->
              (match Defect.check r.chip plan with
               | Error e -> Error e
               | Ok () ->
                 let targets =
                   match tick with
                   | None -> Defect.targets plan
                   | Some t -> Defect.upto plan ~tick:t
                 in
                 if targets = [] then
                   Error
                     "empty defect set; give --defect X,Y, --dead-component \
                      ID, --defect-plan FILE or --defect-model MODEL"
                 else begin
                   (match save_plan with
                    | Some path ->
                      Defect.to_file path plan;
                      Printf.eprintf "wrote %s\n" path
                    | None -> ());
                   let o = Plan.repair ~config r ~defects:targets in
                   let audit =
                     if o.report.survived then
                       Plan.verify ~config ~defects:targets o
                     else []
                   in
                   Ok (o, audit)
                 end))
      in
      (match outcome with
       | Error msg -> `Error (false, msg)
       | Ok (_, (_ :: _ as audit)) ->
         `Error
           ( false,
             "repair produced an illegal result:\n  "
             ^ String.concat "\n  " audit )
       | Ok (o, []) ->
         print_report o.report ~json;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Synthesise a benchmark (or assay file), then repair it around a \
          set of chip defects — explicit cells/components, a JSON defect \
          plan, or a seeded defect model — escalating through \
          reroute-in-window, bounded-delay reroute, component re-binding \
          and a full re-route fallback.  The report is byte-identical for \
          every --jobs value; a surviving repair is legality-audited \
          before it is reported.")
    Term.(
      ret
        (const action $ verbose_arg $ benchmark_arg $ input_arg $ alloc_arg
       $ tc_arg $ seed_arg $ sa_restarts_arg $ backend_arg $ exact_fuel_arg
       $ jobs_arg $ defect_arg $ component_arg $ plan_arg $ model_arg
       $ dseed_arg $ radius_arg $ count_arg $ tick_arg $ save_plan_arg
       $ json_arg $ trace_arg $ folded_arg $ metrics_arg))

(* --- client --- *)

let client_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~doc:"Server address." ~docv:"HOST")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~doc:"Server TCP port." ~docv:"PORT")
  in
  let port_file_arg =
    let doc =
      "Poll $(docv) for the server's port (written by 'serve --tcp 0 \
       --port-file') instead of naming it with --port."
    in
    Arg.(
      value & opt (some string) None & info [ "port-file" ] ~doc ~docv:"FILE")
  in
  let timeout_arg =
    let doc = "How long to wait for --port-file to appear, seconds." in
    Arg.(
      value & opt float 30.0 & info [ "connect-timeout" ] ~doc ~docv:"SECONDS")
  in
  let action host port port_file timeout =
    let port =
      match (port, port_file) with
      | Some p, _ -> Ok p
      | None, Some f -> Mfb_net.Tcp_client.wait_port_file ~timeout f
      | None, None -> Error "one of --port or --port-file is required"
    in
    match port with
    | Error e -> `Error (false, e)
    | Ok port ->
      (match Mfb_net.Tcp_client.connect_fd ~host ~port () with
       | exception Unix.Unix_error (e, _, _) ->
         `Error
           ( false,
             Printf.sprintf "connect %s:%d: %s" host port
               (Unix.error_message e) )
       | fd ->
         let to_srv = Unix.out_channel_of_descr fd in
         let from_srv = Unix.in_channel_of_descr fd in
         (* Lockstep: the server answers every non-blank, non-comment
            line with exactly one line, so a plain read-per-write loop
            is the whole protocol. *)
         let rec loop () =
           match In_channel.input_line stdin with
           | None -> `Ok ()
           | Some line ->
             let trimmed = String.trim line in
             if trimmed = "" || trimmed.[0] = '#' then loop ()
             else begin
               match
                 output_string to_srv line;
                 output_char to_srv '\n';
                 flush to_srv;
                 In_channel.input_line from_srv
               with
               | Some resp ->
                 print_endline resp;
                 loop ()
               | None | (exception Sys_error _) ->
                 `Error (false, "connection closed by server")
             end
         in
         let result = loop () in
         (try Unix.close fd with Unix.Unix_error _ -> ());
         result)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Connect to a 'serve --tcp' listener and relay line-JSON \
          requests from stdin, one response line to stdout per request \
          — the stdio serve experience over a socket.")
    Term.(
      ret (const action $ host_arg $ port_arg $ port_file_arg $ timeout_arg))

let () =
  let doc =
    "Physical synthesis of flow-based microfluidic biochips with distributed \
     channel storage (DATE 2019 reproduction)"
  in
  let info = Cmd.info "dcsa-synth" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; compare_cmd; synth_cmd; explore_cmd; info_cmd;
            control_cmd; dot_cmd; trace_cmd; repair_cmd; serve_cmd;
            worker_cmd; client_cmd ]))
