(* End-to-end tests for the synthesis flows, the Table-I suite, reporting,
   and the comparative claims of the paper (shape, not absolute values). *)

module Flow = Mfb_core.Flow
module Baseline = Mfb_core.Baseline
module Config = Mfb_core.Config
module Suite = Mfb_core.Suite
module Result_ = Mfb_core.Result
module Report = Mfb_core.Report
module Layout_render = Mfb_core.Layout_render
module Check = Mfb_schedule.Check
module Stats = Mfb_util.Stats

let cfg = Config.default

(* A faster annealing schedule for tests; same algorithm. *)
let fast_cfg =
  { cfg with sa = { cfg.sa with t0 = 200.; i_max = 40 } }

(* The comparative claims are checked under the paper's full parameter
   set; the cheaper [fast_cfg] is only for per-benchmark sanity tests. *)
let run_pairs =
  lazy
    (List.map
       (fun (inst : Suite.instance) ->
         ( Flow.run ~config:cfg inst.graph inst.allocation,
           Baseline.run ~config:cfg inst.graph inst.allocation ))
       (Suite.all ()))

(* --- Config --- *)

let test_default_config_matches_paper () =
  Alcotest.(check (float 1e-12)) "tc" 2.0 cfg.tc;
  Alcotest.(check (float 1e-12)) "we" 10.0 cfg.we;
  Alcotest.(check (float 1e-12)) "beta" 0.6 cfg.beta;
  Alcotest.(check (float 1e-12)) "gamma" 0.4 cfg.gamma;
  Alcotest.(check (float 1e-12)) "t0" 10000. cfg.sa.t0;
  Alcotest.(check (float 1e-12)) "tmin" 1.0 cfg.sa.t_min;
  Alcotest.(check (float 1e-12)) "alpha" 0.9 cfg.sa.alpha;
  Alcotest.(check int) "imax" 150 cfg.sa.i_max

let test_config_validation () =
  Alcotest.check_raises "tc" (Invalid_argument "Config: tc must be positive")
    (fun () -> Config.validate { cfg with tc = 0. });
  Alcotest.check_raises "we" (Invalid_argument "Config: we must be non-negative")
    (fun () -> Config.validate { cfg with we = -1. });
  Alcotest.check_raises "beta/gamma"
    (Invalid_argument "Config: beta and gamma must be non-negative")
    (fun () -> Config.validate { cfg with beta = -0.1 })

(* --- Suite --- *)

let test_suite_matches_table1 () =
  let expected =
    [ ("PCR", 7, "(3,0,0,0)"); ("IVD", 12, "(3,0,0,2)");
      ("CPA", 55, "(8,0,0,2)"); ("Synthetic1", 20, "(3,3,2,1)");
      ("Synthetic2", 30, "(5,2,2,2)"); ("Synthetic3", 40, "(6,4,4,2)");
      ("Synthetic4", 50, "(7,4,4,3)") ]
  in
  List.iter2
    (fun (name, ops, alloc) (inst : Suite.instance) ->
      Alcotest.(check string) "name" name
        (Mfb_bioassay.Seq_graph.name inst.graph);
      Alcotest.(check int) "ops" ops
        (Mfb_bioassay.Seq_graph.n_ops inst.graph);
      Alcotest.(check string) "allocation" alloc
        (Mfb_component.Allocation.to_string inst.allocation))
    expected (Suite.all ())

let test_suite_find () =
  Alcotest.(check bool) "finds pcr (case-insensitive)" true
    (Suite.find "pcr" <> None);
  Alcotest.(check bool) "unknown" true (Suite.find "nope" = None);
  Alcotest.(check int) "names" 7 (List.length Suite.names)

(* --- Flow sanity per benchmark --- *)

let flow_sanity_tests =
  List.concat_map
    (fun (inst : Suite.instance) ->
      let name = Mfb_bioassay.Seq_graph.name inst.graph in
      [
        Alcotest.test_case (name ^ " flow sane") `Quick (fun () ->
            let r = Flow.run ~config:fast_cfg inst.graph inst.allocation in
            Alcotest.(check bool) "schedule legal" true
              (Check.is_legal ~tc:fast_cfg.tc r.schedule);
            Alcotest.(check bool) "utilization range" true
              (0. <= r.utilization && r.utilization <= 1.);
            Alcotest.(check bool) "positive exec" true (r.execution_time > 0.);
            Alcotest.(check bool) "chip legal" true
              (Mfb_place.Chip.legal r.chip);
            Alcotest.(check bool) "cache non-negative" true
              (r.channel_cache_time >= 0.);
            Alcotest.(check bool) "finite metrics" true
              (Float.is_finite r.channel_length_mm
              && Float.is_finite r.channel_wash_time));
      ])
    (Suite.all ())

let baseline_sanity_tests =
  List.concat_map
    (fun (inst : Suite.instance) ->
      let name = Mfb_bioassay.Seq_graph.name inst.graph in
      [
        Alcotest.test_case (name ^ " baseline sane") `Quick (fun () ->
            let r = Baseline.run ~config:fast_cfg inst.graph inst.allocation in
            Alcotest.(check bool) "schedule legal" true
              (Check.is_legal ~tc:fast_cfg.tc r.schedule);
            Alcotest.(check bool) "utilization range" true
              (0. <= r.utilization && r.utilization <= 1.);
            Alcotest.(check bool) "chip legal" true
              (Mfb_place.Chip.legal r.chip));
      ])
    (Suite.all ())

(* --- The paper's comparative claims (shape) --- *)

let test_execution_time_claim () =
  (* Table I: 0.0%-10.5% execution-time reduction; never a regression. *)
  List.iter
    (fun ((ours : Result_.t), (ba : Result_.t)) ->
      Alcotest.(check bool)
        (ours.benchmark ^ " exec ours <= ba")
        true
        (ours.execution_time <= ba.execution_time +. 1e-6))
    (Lazy.force run_pairs)

let test_utilization_claim () =
  (* Table I: resource utilization never lower, +12.5% on average. *)
  List.iter
    (fun ((ours : Result_.t), (ba : Result_.t)) ->
      Alcotest.(check bool)
        (ours.benchmark ^ " util ours >= ba")
        true
        (ours.utilization >= ba.utilization -. 1e-6))
    (Lazy.force run_pairs)

let test_channel_length_claim () =
  (* Table I: 5.7% average channel-length reduction.  Tiny benchmarks make
     per-row percentages unstable (a 5-cell difference on PCR is 250%), so
     the reproduction asserts the robust form of the claim: the suite-wide
     total shrinks and a strict majority of rows does not regress. *)
  let pairs = Lazy.force run_pairs in
  let total f = Stats.sum (List.map f pairs) in
  Alcotest.(check bool) "total channel length reduced" true
    (total (fun (ours, _) -> ours.Result_.channel_length_mm)
    < total (fun (_, ba) -> ba.Result_.channel_length_mm));
  let non_regressing =
    List.length
      (List.filter
         (fun ((ours : Result_.t), (ba : Result_.t)) ->
           ours.channel_length_mm <= ba.channel_length_mm +. 1e-6)
         pairs)
  in
  Alcotest.(check bool) "majority of rows do not regress" true
    (2 * non_regressing > List.length pairs)

let test_cache_time_claim () =
  (* Fig. 8: total channel cache time reduced, markedly on large inputs. *)
  let imps =
    List.map
      (fun ((ours : Result_.t), (ba : Result_.t)) ->
        Stats.percent_improvement ~ours:ours.channel_cache_time
          ~baseline:ba.channel_cache_time)
      (Lazy.force run_pairs)
  in
  Alcotest.(check bool) "average cache improvement > 0" true
    (Stats.mean imps > 0.)

let test_wash_time_claim () =
  (* Fig. 9: total channel wash time reduced. *)
  let imps =
    List.map
      (fun ((ours : Result_.t), (ba : Result_.t)) ->
        Stats.percent_improvement ~ours:ours.channel_wash_time
          ~baseline:ba.channel_wash_time)
      (Lazy.force run_pairs)
  in
  Alcotest.(check bool) "average wash improvement > 0" true
    (Stats.mean imps > 0.)

(* --- Determinism and ablations --- *)

let test_flow_deterministic () =
  let inst = Suite.synthetic1 () in
  let a = Flow.run ~config:fast_cfg inst.graph inst.allocation in
  let b = Flow.run ~config:fast_cfg inst.graph inst.allocation in
  Alcotest.(check (float 1e-9)) "exec" a.execution_time b.execution_time;
  Alcotest.(check (float 1e-9)) "channel" a.channel_length_mm
    b.channel_length_mm;
  Alcotest.(check (float 1e-9)) "util" a.utilization b.utilization

let test_ablations_run () =
  let inst = Suite.synthetic1 () in
  let variants =
    [
      Flow.run ~config:fast_cfg ~scheduler:`Earliest_ready
        ~flow_name:"no-case1" inst.graph inst.allocation;
      Flow.run ~config:fast_cfg ~placement_energy:`Uniform ~flow_name:"no-cp"
        inst.graph inst.allocation;
      Flow.run ~config:fast_cfg ~weight_update:false ~flow_name:"no-weights"
        inst.graph inst.allocation;
      Flow.run ~config:fast_cfg ~placer:`Force_directed
        ~flow_name:"force-directed" inst.graph inst.allocation;
      Flow.run ~config:fast_cfg ~router:`Negotiated ~flow_name:"negotiated"
        inst.graph inst.allocation;
    ]
  in
  List.iter
    (fun (r : Result_.t) ->
      Alcotest.(check bool)
        (r.flow ^ " legal")
        true
        (Check.is_legal ~tc:fast_cfg.tc r.schedule))
    variants

let test_flow_exact_truncation_surfaces () =
  (* A starved fuel budget must still produce a legal schedule (the
     heuristic incumbent), flag the truncation in the JSON result, and
     never come out worse than the heuristic it started from. *)
  let inst = Suite.ivd () in
  let config =
    { fast_cfg with backend = Mfb_schedule.Portfolio.Exact; exact_fuel = 100 }
  in
  let r = Flow.run ~config inst.graph inst.allocation in
  (match r.decision with
  | None -> Alcotest.fail "exact backend must record a decision"
  | Some d ->
    Alcotest.(check bool) "truncated" true d.truncated;
    Alcotest.(check bool) "not optimal" false d.optimal;
    Alcotest.(check int) "fuel echoed" 100 d.fuel;
    Alcotest.(check bool) "never worse than heuristic" true
      (d.makespan <= d.heuristic_makespan +. 1e-9));
  Alcotest.(check bool) "legal schedule" true
    (Check.is_legal ~tc:config.tc r.schedule);
  let json = Mfb_util.Json.to_string (Result_.to_json r) in
  Alcotest.(check bool) "truncated flag in json" true
    (Testkit.contains json "\"truncated\":true");
  Alcotest.(check bool) "backend section in json" true
    (Testkit.contains json "\"backend\"")

(* --- Reporting --- *)

let test_table1_render () =
  let pairs = Lazy.force run_pairs in
  let s = Report.table1 pairs in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (Testkit.contains s name))
    Suite.names;
  Alcotest.(check bool) "average row" true (Testkit.contains s "Average")

let test_figures_render () =
  let pairs = Lazy.force run_pairs in
  Alcotest.(check bool) "fig8 title" true
    (Testkit.contains (Report.fig8 pairs) "Figure 8");
  Alcotest.(check bool) "fig9 title" true
    (Testkit.contains (Report.fig9 pairs) "Figure 9");
  Alcotest.(check bool) "bars drawn" true
    (Testkit.contains (Report.fig9 pairs) "#")

let test_suite_json () =
  let pairs = Lazy.force run_pairs in
  let json = Mfb_util.Json.to_string (Report.suite_to_json pairs) in
  Alcotest.(check bool) "has benchmark field" true
    (Testkit.contains json "\"benchmark\"");
  Alcotest.(check bool) "has both flows" true
    (Testkit.contains json "\"ours\"" && Testkit.contains json "\"ba\"")

let test_timing_table_empty () =
  (* No results: a header-only table, not an exception. *)
  let s = Report.timing_table [] in
  Alcotest.(check bool) "header present" true (Testkit.contains s "Wall (s)");
  Alcotest.(check bool) "no data rows" false (Testkit.contains s "total")

let test_timing_table_render () =
  let ours, _ = List.hd (Lazy.force run_pairs) in
  let s = Report.timing_table [ ours ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Testkit.contains s needle))
    [ "schedule"; "place"; "route"; "total"; ours.benchmark ]

let test_heuristic_gap_render () =
  let pcr = Suite.pcr () in
  let exact_cfg = { fast_cfg with backend = Mfb_schedule.Portfolio.Exact } in
  let r = Flow.run ~config:exact_cfg pcr.graph pcr.allocation in
  let s = Report.heuristic_gap [ r ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Testkit.contains s needle))
    [ "PCR"; "Heuristic (s)"; "Exact (s)"; "optimal"; "Average (optimal only)" ];
  (* Heuristic-only results carry no decision and are skipped. *)
  let heuristic = Flow.run ~config:fast_cfg pcr.graph pcr.allocation in
  Alcotest.(check bool) "heuristic rows skipped" false
    (Testkit.contains (Report.heuristic_gap [ heuristic ]) "PCR")

let test_metrics_table () =
  Alcotest.(check bool) "empty input renders header" true
    (Testkit.contains (Report.metrics_table []) "Metric");
  let module Telemetry = Mfb_util.Telemetry in
  Telemetry.install (Telemetry.make_sink ());
  let r =
    Fun.protect ~finally:Telemetry.uninstall (fun () ->
        let inst = Suite.pcr () in
        Flow.run ~config:fast_cfg inst.graph inst.allocation)
  in
  Alcotest.(check bool) "run collected metrics" true (r.metrics <> []);
  let s = Report.metrics_table [ r ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Testkit.contains s needle))
    [ "sa.accepted"; "astar.pops"; "ready_queue.depth" ];
  (* The aggregates also reach the JSON result. *)
  Alcotest.(check bool) "metrics in to_json" true
    (Testkit.contains
       (Mfb_util.Json.to_string (Result_.to_json r))
       "\"metrics\"")

let test_result_json () =
  let ours, _ = List.hd (Lazy.force run_pairs) in
  let json = Mfb_util.Json.to_string (Result_.to_json ours) in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true
        (Testkit.contains json field))
    [ "execution_time_s"; "utilization"; "channel_length_mm";
      "channel_cache_time_s"; "channel_wash_time_s"; "cpu_time_s" ]

let test_gantt_render () =
  let ours, _ = List.hd (Lazy.force run_pairs) in
  let s = Mfb_core.Gantt.render ours.schedule in
  Alcotest.(check bool) "component lanes" true (Testkit.contains s "Mixer0");
  Alcotest.(check bool) "operation blocks" true (Testkit.contains s "#");
  Alcotest.(check bool) "op labels" true (Testkit.contains s "o0");
  Alcotest.(check bool) "makespan printed" true (Testkit.contains s "22.2");
  (* One lane per component plus header and axis. *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "enough lines" true
    (List.length lines >= Array.length ours.schedule.components + 3)

let test_gantt_width () =
  let ours, _ = List.hd (Lazy.force run_pairs) in
  let s = Mfb_core.Gantt.render ~width:40 ours.schedule in
  let too_long =
    List.exists (fun l -> String.length l > 70) (String.split_on_char '\n' s)
  in
  Alcotest.(check bool) "respects width" false too_long

let test_svg_render () =
  let ours, _ = List.hd (Lazy.force run_pairs) in
  let s = Mfb_core.Layout_svg.render ours in
  Alcotest.(check bool) "opens svg" true
    (String.length s > 5 && String.sub s 0 4 = "<svg");
  Alcotest.(check bool) "closes svg" true (Testkit.contains s "</svg>");
  Alcotest.(check bool) "has components" true (Testkit.contains s "Mixer0");
  Alcotest.(check bool) "has channel cells" true
    (Testkit.contains s "#b6d0e8");
  (* Balanced rect elements: every <rect is self-closed. *)
  let count needle =
    let rec loop i acc =
      if i + String.length needle > String.length s then acc
      else if String.sub s i (String.length needle) = needle then
        loop (i + 1) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  Alcotest.(check bool) "rects self-closed" true
    (count "<rect" = count "/>" - count "<circle" - count "<line")

let test_html_report () =
  let pairs = Lazy.force run_pairs in
  let html = Mfb_core.Report_html.render pairs in
  Alcotest.(check bool) "doctype" true
    (String.length html > 15 && String.sub html 0 15 = "<!DOCTYPE html>");
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Testkit.contains html needle))
    [ "Table I"; "Figure 8"; "Figure 9"; "<svg"; "</html>"; "PCR";
      "Synthetic4" ]

let test_layout_render () =
  let ours, _ = List.hd (Lazy.force run_pairs) in
  let s = Layout_render.render ours in
  Alcotest.(check bool) "mixer letters" true (Testkit.contains s "M");
  Alcotest.(check bool) "port marks" true (Testkit.contains s "o");
  Alcotest.(check bool) "legend" true (Testkit.contains s "Mixer0");
  (* One canvas line per grid row. *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "canvas present" true
    (List.length lines > ours.chip.height)

(* --- Whole-flow fuzzing: every stage invariant on random assays --- *)

let qtest ?(count = 15) name gen prop =
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

let random_instance_gen =
  QCheck2.Gen.(
    map2
      (fun n seed ->
        let graph =
          Mfb_bioassay.Synthetic.generate
            ~name:(Printf.sprintf "fuzz-%d-%d" n seed)
            { Mfb_bioassay.Synthetic.default_params with
              n_ops = n + 5;
              kind_weights = [| 4; 2; 2; 1 |];
              seed }
        in
        let allocation =
          Mfb_component.Allocation.make
            ~mixers:(2 + (seed land 1))
            ~heaters:1 ~filters:1 ~detectors:1
        in
        (graph, allocation))
      (int_bound 25) (int_bound 10_000))

let prop_whole_flow_invariants =
  qtest "flow output passes Check, DRC, and replay on random assays"
    random_instance_gen
    (fun (graph, allocation) ->
      let r = Flow.run ~config:fast_cfg graph allocation in
      let sim =
        Mfb_sim.Replay.create ~tc:fast_cfg.tc ~chip:r.chip
          ~schedule:r.schedule ~routing:r.routing
      in
      Check.is_legal ~tc:fast_cfg.tc r.schedule
      && Mfb_route.Drc.is_clean r.chip r.routing
      && Mfb_sim.Replay.check sim = []
      && 0. <= r.utilization
      && r.utilization <= 1.)

let prop_whole_flow_baseline_invariants =
  qtest "baseline output passes Check and DRC on random assays"
    random_instance_gen
    (fun (graph, allocation) ->
      let r = Baseline.run ~config:fast_cfg graph allocation in
      Check.is_legal ~tc:fast_cfg.tc r.schedule
      && Mfb_route.Drc.is_clean r.chip r.routing)

(* --- Area accounting --- *)

let test_area_accounting () =
  let ours, _ = List.hd (Lazy.force run_pairs) in
  let x, y, w, h = Mfb_core.Area.bounding_box ours in
  Alcotest.(check bool) "box inside chip" true
    (x >= 0 && y >= 0 && x + w <= ours.chip.width
    && y + h <= ours.chip.height);
  let comp = Mfb_core.Area.component_area_cells ours in
  let chan = Mfb_core.Area.channel_area_cells ours in
  let used = Mfb_core.Area.used_area_cells ours in
  Alcotest.(check int) "PCR: three 3x3 mixers" 27 comp;
  Alcotest.(check bool) "channels exist" true (chan > 0);
  Alcotest.(check bool) "used <= comp + chan (ports may overlap)" true
    (used <= comp + chan);
  Alcotest.(check bool) "used >= comp" true (used >= comp);
  let packed = Mfb_core.Area.utilised_fraction ours in
  Alcotest.(check bool) "packing in (0,1]" true (0. < packed && packed <= 1.)

let test_area_storage_unit () =
  Alcotest.(check int) "capacity 4" 20
    (Mfb_core.Area.storage_unit_area_cells ~capacity:4);
  Alcotest.check_raises "negative"
    (Invalid_argument "Area.storage_unit_area_cells: negative") (fun () ->
      ignore (Mfb_core.Area.storage_unit_area_cells ~capacity:(-1)))

(* --- Allocation exploration --- *)

let test_allocator_frontier () =
  let inst = Suite.synthetic1 () in
  let frontier = Mfb_core.Allocator.explore inst.graph in
  Alcotest.(check bool) "non-empty" true (frontier <> []);
  (* Pareto: strictly increasing components, strictly decreasing time. *)
  let rec pareto = function
    | (a : Mfb_core.Allocator.point) :: (b :: _ as rest) ->
      a.components < b.components
      && a.completion_time > b.completion_time +. 1e-9
      && pareto rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "frontier is pareto" true (pareto frontier);
  (* Every point covers the graph and evaluates consistently. *)
  List.iter
    (fun (p : Mfb_core.Allocator.point) ->
      Alcotest.(check bool) "covers" true
        (Mfb_component.Allocation.covers p.allocation inst.graph);
      Alcotest.(check int) "component count"
        (Mfb_component.Allocation.total p.allocation)
        p.components)
    frontier

let test_allocator_knee () =
  let inst = Suite.synthetic1 () in
  let frontier = Mfb_core.Allocator.explore inst.graph in
  match Mfb_core.Allocator.knee frontier with
  | None -> Alcotest.fail "expected a knee"
  | Some k ->
    let fastest =
      List.fold_left
        (fun acc (p : Mfb_core.Allocator.point) ->
          Float.min acc p.completion_time)
        infinity frontier
    in
    Alcotest.(check bool) "within 5% of fastest" true
      (k.completion_time <= (fastest *. 1.05) +. 1e-9);
    Alcotest.(check bool) "no smaller point qualifies" true
      (List.for_all
         (fun (p : Mfb_core.Allocator.point) ->
           p.components >= k.components
           || p.completion_time > fastest *. 1.05)
         frontier);
    Alcotest.(check bool) "knee of empty is None" true
      (Mfb_core.Allocator.knee [] = None)

let test_allocator_respects_kinds () =
  (* PCR uses only mixers: the explorer must never allocate other kinds. *)
  let inst = Suite.pcr () in
  List.iter
    (fun (p : Mfb_core.Allocator.point) ->
      let a = p.allocation in
      Alcotest.(check int) "no heaters" 0
        (Mfb_component.Allocation.count a Heat);
      Alcotest.(check int) "no filters" 0
        (Mfb_component.Allocation.count a Filter);
      Alcotest.(check int) "no detectors" 0
        (Mfb_component.Allocation.count a Detect))
    (Mfb_core.Allocator.explore inst.graph)

(* --- Large-scale stress (runs under the default profile; skipped with
   `dune runtest -- -q`) --- *)

let test_large_assay_stress () =
  let graph =
    Mfb_bioassay.Synthetic.generate ~name:"stress-100"
      { Mfb_bioassay.Synthetic.default_params with
        n_ops = 100;
        kind_weights = [| 5; 3; 2; 1 |];
        layer_width = 10;
        seed = 2026 }
  in
  let allocation =
    Mfb_component.Allocation.make ~mixers:8 ~heaters:4 ~filters:3 ~detectors:2
  in
  let ours = Flow.run ~config:fast_cfg graph allocation in
  let ba = Baseline.run ~config:fast_cfg graph allocation in
  Alcotest.(check bool) "legal at 100 ops" true
    (Check.is_legal ~tc:fast_cfg.tc ours.schedule);
  Alcotest.(check bool) "drc clean at 100 ops" true
    (Mfb_route.Drc.is_clean ours.chip ours.routing);
  Alcotest.(check bool) "still beats the baseline" true
    (ours.execution_time <= ba.execution_time +. 1e-6);
  let sim =
    Mfb_sim.Replay.create ~tc:fast_cfg.tc ~chip:ours.chip
      ~schedule:ours.schedule ~routing:ours.routing
  in
  Alcotest.(check (list string)) "replay clean at 100 ops" []
    (List.map (fun (v : Mfb_sim.Replay.violation) -> v.message)
       (Mfb_sim.Replay.check sim))

let suites =
  [
    ( "core.config",
      [
        Alcotest.test_case "paper parameters" `Quick
          test_default_config_matches_paper;
        Alcotest.test_case "validation" `Quick test_config_validation;
      ] );
    ( "core.suite",
      [
        Alcotest.test_case "table-1 instances" `Quick
          test_suite_matches_table1;
        Alcotest.test_case "find" `Quick test_suite_find;
      ] );
    ("core.flow", flow_sanity_tests);
    ("core.baseline", baseline_sanity_tests);
    ( "core.claims",
      [
        Alcotest.test_case "execution time (Table I)" `Quick
          test_execution_time_claim;
        Alcotest.test_case "resource utilization (Table I)" `Quick
          test_utilization_claim;
        Alcotest.test_case "channel length (Table I)" `Quick
          test_channel_length_claim;
        Alcotest.test_case "cache time (Fig. 8)" `Quick test_cache_time_claim;
        Alcotest.test_case "wash time (Fig. 9)" `Quick test_wash_time_claim;
      ] );
    ( "core.determinism",
      [
        Alcotest.test_case "flow deterministic" `Quick test_flow_deterministic;
        Alcotest.test_case "ablations run" `Quick test_ablations_run;
        Alcotest.test_case "exact truncation surfaces" `Quick
          test_flow_exact_truncation_surfaces;
      ] );
    ( "core.fuzz",
      [ prop_whole_flow_invariants; prop_whole_flow_baseline_invariants ] );
    ( "core.stress",
      [ Alcotest.test_case "100-operation assay" `Slow test_large_assay_stress ] );
    ( "core.area",
      [
        Alcotest.test_case "accounting" `Quick test_area_accounting;
        Alcotest.test_case "storage unit" `Quick test_area_storage_unit;
      ] );
    ( "core.allocator",
      [
        Alcotest.test_case "pareto frontier" `Quick test_allocator_frontier;
        Alcotest.test_case "knee" `Quick test_allocator_knee;
        Alcotest.test_case "respects kinds" `Quick
          test_allocator_respects_kinds;
      ] );
    ( "core.report",
      [
        Alcotest.test_case "table1 render" `Quick test_table1_render;
        Alcotest.test_case "figures render" `Quick test_figures_render;
        Alcotest.test_case "suite json" `Quick test_suite_json;
        Alcotest.test_case "timing table empty" `Quick
          test_timing_table_empty;
        Alcotest.test_case "timing table render" `Quick
          test_timing_table_render;
        Alcotest.test_case "heuristic gap table" `Quick
          test_heuristic_gap_render;
        Alcotest.test_case "metrics table" `Quick test_metrics_table;
        Alcotest.test_case "result json" `Quick test_result_json;
        Alcotest.test_case "layout render" `Quick test_layout_render;
        Alcotest.test_case "gantt render" `Quick test_gantt_render;
        Alcotest.test_case "gantt width" `Quick test_gantt_width;
        Alcotest.test_case "svg render" `Quick test_svg_render;
        Alcotest.test_case "html report" `Quick test_html_report;
      ] );
  ]
