(* Tests for the binding-and-scheduling engine (paper Alg. 1), metrics,
   retiming, and the legality checker. *)

module Seq_graph = Mfb_bioassay.Seq_graph
module Operation = Mfb_bioassay.Operation
module Fluid = Mfb_bioassay.Fluid
module Allocation = Mfb_component.Allocation
module Types = Mfb_schedule.Types
module Dcsa = Mfb_schedule.Dcsa_scheduler
module Baseline = Mfb_schedule.Baseline_scheduler
module Metrics = Mfb_schedule.Metrics
module Retime = Mfb_schedule.Retime
module Check = Mfb_schedule.Check

let tc = 2.0

let qtest ?(count = 60) name gen prop =
  (* A per-test fixed seed keeps property tests reproducible run to run. *)
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

let check_legal name sched =
  let violations = Check.validate ~tc sched in
  if violations <> [] then
    Alcotest.failf "%s: %d violations, first: %a" name
      (List.length violations) Check.pp_violation (List.hd violations)

(* Easy-to-wash vs hard-to-wash fluids for hand-built scenarios. *)
let easy = Fluid.make ~name:"easy" ~diffusion:1e-5 (* wash 0.2 s *)
let hard = Fluid.make ~name:"hard" ~diffusion:1e-8 (* wash ~7.9 s *)

let mix ~id ?(duration = 5.) output =
  Operation.make ~id ~kind:Mix ~duration ~output

(* --- Legality of both schedulers on the whole Table-I suite --- *)

let legality_tests =
  List.concat_map
    (fun (g, alloc) ->
      let name = Seq_graph.name g in
      [
        Alcotest.test_case (name ^ " dcsa legal") `Quick (fun () ->
            check_legal name (Dcsa.schedule ~tc g alloc));
        Alcotest.test_case (name ^ " baseline legal") `Quick (fun () ->
            check_legal name (Baseline.schedule ~tc g alloc));
      ])
    (Testkit.suite_instances ())

(* --- DCSA vs baseline shape on the suite --- *)

let test_dcsa_never_slower () =
  List.iter
    (fun (g, alloc) ->
      let ours = Dcsa.schedule ~tc g alloc in
      let ba = Baseline.schedule ~tc g alloc in
      Alcotest.(check bool)
        (Seq_graph.name g ^ " makespan ours <= ba")
        true
        (ours.Types.makespan <= ba.Types.makespan +. 1e-6))
    (Testkit.suite_instances ())

let test_dcsa_in_place_on_chains () =
  let g = Mfb_bioassay.Benchmarks.pcr () in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (3, 0, 0, 0)) in
  Alcotest.(check bool) "case-I fires on the PCR tree" true
    (Metrics.in_place_count sched > 0)

(* --- Case-I strategy (paper Fig. 5) --- *)

(* o0, o1 mixes feeding o2 (a mix): case-I binds o2 onto the parent whose
   output has the LOWEST diffusion coefficient (hardest wash avoided). *)
let case1_graph () =
  Seq_graph.create ~name:"case1"
    ~ops:[ mix ~id:0 hard; mix ~id:1 easy; mix ~id:2 easy ]
    ~edges:[ (0, 2); (1, 2) ]

let test_case1_prefers_hard_wash_parent () =
  let g = case1_graph () in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (3, 0, 0, 0)) in
  check_legal "case1" sched;
  Alcotest.(check (option int)) "o2 consumes o0 in place" (Some 0)
    sched.times.(2).in_place_parent;
  Alcotest.(check int) "o2 on o0's component"
    sched.times.(0).component sched.times.(2).component;
  (* No wash event for the hard residue: it was consumed in place. *)
  Alcotest.(check bool) "no wash of o0's residue" true
    (List.for_all
       (fun (w : Types.wash_event) -> w.residue_op <> 0)
       sched.washes)

let test_case1_eliminates_transport () =
  let g = case1_graph () in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (3, 0, 0, 0)) in
  (* Only the o1 -> o2 edge needs a transport. *)
  Alcotest.(check int) "one transport" 1 (Metrics.transport_count sched);
  match sched.transports with
  | [ tr ] -> Alcotest.(check (pair int int)) "edge" (1, 2) tr.edge
  | other ->
    Alcotest.failf "expected exactly one transport, got %d"
      (List.length other)

(* --- Case-II strategy (paper Fig. 6): earliest ready component --- *)

let test_case2_earliest_ready () =
  (* Two serial chains on 2 mixers; a third op with no same-kind resident
     parent picks the earliest-ready mixer. *)
  let g =
    Seq_graph.create ~name:"case2"
      ~ops:
        [
          mix ~id:0 ~duration:3. easy;
          mix ~id:1 ~duration:9. easy;
          Operation.make ~id:2 ~kind:Heat ~duration:2. ~output:easy;
          mix ~id:3 ~duration:2. easy;
        ]
      ~edges:[ (0, 2); (2, 3) ]
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (2, 1, 0, 0)) in
  check_legal "case2" sched;
  (* o3's parents give no same-kind resident (heater output), so it binds
     to the earliest-ready mixer: mixer 0 frees at 3 + wash, mixer 1 at
     9 + wash. *)
  Alcotest.(check int) "o3 on the early mixer" sched.times.(0).component
    sched.times.(3).component

(* --- Eviction and channel caching --- *)

let test_eviction_creates_cache () =
  (* One mixer: o0 produces for o2, but o1 must run on the same mixer
     first, evicting o0's output into a channel. *)
  let g =
    Seq_graph.create ~name:"evict"
      ~ops:
        [
          mix ~id:0 ~duration:5. hard;
          mix ~id:1 ~duration:5. easy;
          mix ~id:2 ~duration:5. easy;
        ]
      ~edges:[ (0, 2); (1, 2) ]
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (1, 0, 0, 0)) in
  check_legal "evict" sched;
  Alcotest.(check bool) "channel cache incurred" true
    (Metrics.total_channel_cache_time sched > 0.);
  (* The evicted fluid's wash must appear. *)
  Alcotest.(check bool) "wash of o0 residue" true
    (List.exists (fun (w : Types.wash_event) -> w.residue_op = 0)
       sched.washes)

let test_single_component_serializes () =
  let g =
    Seq_graph.create ~name:"serial"
      ~ops:[ mix ~id:0 easy; mix ~id:1 easy; mix ~id:2 easy ]
      ~edges:[]
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (1, 0, 0, 0)) in
  check_legal "serial" sched;
  (* Three 5-second mixes with two intervening washes. *)
  Alcotest.(check bool) "makespan >= 15" true (sched.makespan >= 15.)

(* --- Fluid fan-out (one output, several consumers) --- *)

let test_fanout_copies () =
  (* o0's output feeds o1, o2, and o3 on separate mixers. *)
  let g =
    Seq_graph.create ~name:"fanout"
      ~ops:[ mix ~id:0 hard; mix ~id:1 easy; mix ~id:2 easy; mix ~id:3 easy ]
      ~edges:[ (0, 1); (0, 2); (0, 3) ]
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (4, 0, 0, 0)) in
  check_legal "fanout" sched;
  (* All three consumers get the fluid; with copies > 1 nobody may consume
     in place. *)
  Alcotest.(check int) "three transports" 3 (Metrics.transport_count sched);
  Alcotest.(check int) "no in-place with fan-out" 0
    (Metrics.in_place_count sched);
  (* Only one wash of o0's residue: the copies leave together. *)
  Alcotest.(check int) "single wash of o0" 1
    (List.length
       (List.filter (fun (w : Types.wash_event) -> w.residue_op = 0)
          sched.washes))

let test_loopback_cache_accounted () =
  (* One mixer: o0 feeds o2, but o1 must run in between; o0's output is
     evicted into a channel and later pulled back into the same mixer. *)
  let g =
    Seq_graph.create ~name:"loopback"
      ~ops:[ mix ~id:0 hard; mix ~id:1 easy; mix ~id:2 easy ]
      ~edges:[ (0, 2); (1, 2) ]
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (1, 0, 0, 0)) in
  check_legal "loopback" sched;
  let loopbacks =
    List.filter (fun (tr : Types.transport) -> tr.src = tr.dst)
      sched.transports
  in
  Alcotest.(check bool) "loopback transport recorded" true (loopbacks <> []);
  List.iter
    (fun tr ->
      Alcotest.(check bool) "loopback carries cache" true
        (Types.transport_cache_time tr > 0.))
    loopbacks

let test_deep_chain_in_place_throughout () =
  (* A 12-op same-kind chain on one mixer: every step consumes its parent
     in place, so there are no transports and no washes at all until the
     final product leaves. *)
  let g =
    Seq_graph.create ~name:"deep-chain"
      ~ops:(List.init 12 (fun id -> mix ~id easy))
      ~edges:(List.init 11 (fun i -> (i, i + 1)))
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (1, 0, 0, 0)) in
  check_legal "deep chain" sched;
  Alcotest.(check int) "no transports" 0 (Metrics.transport_count sched);
  Alcotest.(check int) "all in place" 11 (Metrics.in_place_count sched);
  Alcotest.(check (float 1e-9)) "makespan is pure compute" 60. sched.makespan

let test_wide_independent_layer () =
  (* 12 independent mixes on 3 mixers: perfect 4-wave packing modulo
     washes. *)
  let g =
    Seq_graph.create ~name:"wide"
      ~ops:(List.init 12 (fun id -> mix ~id easy))
      ~edges:[]
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (3, 0, 0, 0)) in
  check_legal "wide" sched;
  Alcotest.(check bool) "at least four waves" true (sched.makespan >= 20.);
  Alcotest.(check bool) "washes between waves only" true
    (sched.makespan <= 20. +. (3. *. 0.2) +. 1e-6)

(* --- Input validation --- *)

let test_engine_validation () =
  let g = case1_graph () in
  Alcotest.check_raises "tc <= 0"
    (Invalid_argument "Engine.run: tc must be positive") (fun () ->
      ignore (Dcsa.schedule ~tc:0. g (Allocation.of_vector (1, 0, 0, 0))));
  Alcotest.check_raises "uncovered kind"
    (Invalid_argument "Engine.run: allocation does not cover all operation kinds")
    (fun () ->
      ignore (Dcsa.schedule ~tc g (Allocation.of_vector (0, 1, 0, 0))))

(* --- Metrics --- *)

let test_utilization_range () =
  List.iter
    (fun (g, alloc) ->
      let u = Metrics.resource_utilization (Dcsa.schedule ~tc g alloc) in
      Alcotest.(check bool)
        (Seq_graph.name g ^ " utilization in [0,1]")
        true
        (0. <= u && u <= 1. +. 1e-9))
    (Testkit.suite_instances ())

let test_utilization_known_value () =
  (* One mixer running one 5 s op back to back with another 5 s op after a
     0.2 s wash: Ta = 10, window = 10.2 -> utilization = 10 / 10.2. *)
  let g =
    Seq_graph.create ~name:"u"
      ~ops:[ mix ~id:0 easy; mix ~id:1 easy ]
      ~edges:[]
  in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (1, 0, 0, 0)) in
  Alcotest.(check (float 1e-6)) "utilization" (10. /. 10.2)
    (Metrics.resource_utilization sched)

let test_busy_time () =
  let g = case1_graph () in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (3, 0, 0, 0)) in
  let total =
    List.fold_left
      (fun acc c -> acc +. Metrics.busy_time sched c.Mfb_component.Component.id)
      0.
      (Array.to_list sched.components)
  in
  Alcotest.(check (float 1e-9)) "total busy = sum of durations" 15. total

let test_transport_invariants () =
  List.iter
    (fun (g, alloc) ->
      let sched = Dcsa.schedule ~tc g alloc in
      List.iter
        (fun (tr : Types.transport) ->
          Alcotest.(check (float 1e-9))
            (Seq_graph.name g ^ " transport takes tc")
            tc (tr.arrive -. tr.depart);
          Alcotest.(check bool) "removal <= depart" true
            (tr.removal <= tr.depart +. 1e-9);
          Alcotest.(check bool) "cache >= 0" true
            (Types.transport_cache_time tr >= -1e-9))
        sched.transports)
    (Testkit.suite_instances ())

let test_concurrency_counts () =
  let g, alloc = List.nth (Testkit.suite_instances ()) 2 (* CPA *) in
  let sched = Dcsa.schedule ~tc g alloc in
  List.iter
    (fun tr ->
      let n = Metrics.concurrency sched tr in
      Alcotest.(check bool) "bounded" true
        (0 <= n && n < Metrics.transport_count sched))
    sched.transports

(* --- Property tests over random synthetic assays --- *)

let synthetic_instance_gen =
  QCheck2.Gen.(
    map2
      (fun n seed ->
        let g =
          Mfb_bioassay.Synthetic.generate ~name:"prop"
            { Mfb_bioassay.Synthetic.default_params with
              n_ops = n + 4;
              kind_weights = [| 3; 2; 1; 1 |];
              seed }
        in
        let alloc =
          Allocation.make ~mixers:(2 + (seed land 1)) ~heaters:2 ~filters:1
            ~detectors:1
        in
        (g, alloc))
      (int_bound 30) (int_bound 1000))

let prop_dcsa_legal =
  qtest "dcsa schedule is always legal" synthetic_instance_gen
    (fun (g, alloc) -> Check.is_legal ~tc (Dcsa.schedule ~tc g alloc))

let prop_baseline_legal =
  qtest "baseline schedule is always legal" synthetic_instance_gen
    (fun (g, alloc) -> Check.is_legal ~tc (Baseline.schedule ~tc g alloc))

let prop_makespan_lower_bound =
  qtest "makespan >= duration-only critical path" synthetic_instance_gen
    (fun (g, alloc) ->
      (* In-place chaining can skip every transport, so the only universal
         lower bound is the longest duration path (tc = 0 priorities are
         not expressible; use a tiny tc and subtract its contribution). *)
      let sched = Dcsa.schedule ~tc g alloc in
      let prio = Seq_graph.priorities g ~tc:1e-9 in
      let bound = Array.fold_left Float.max 0. prio -. 1e-3 in
      sched.makespan >= bound)

let prop_all_ops_scheduled =
  qtest "every operation gets exactly one time slot" synthetic_instance_gen
    (fun (g, alloc) ->
      let sched = Dcsa.schedule ~tc g alloc in
      Array.length sched.times = Seq_graph.n_ops g
      && Array.for_all
           (fun (t : Types.op_times) -> t.finish > t.start)
           sched.times)

(* --- Retime --- *)

let test_retime_zero_delays_identity () =
  let g, alloc = List.nth (Testkit.suite_instances ()) 2 in
  let sched = Dcsa.schedule ~tc g alloc in
  let retimed = Retime.with_transport_delays sched ~delays:[] in
  Array.iteri
    (fun op (t : Types.op_times) ->
      Alcotest.(check (float 1e-9)) "start unchanged" t.start
        retimed.times.(op).start)
    sched.times;
  Alcotest.(check (float 1e-9)) "makespan unchanged" sched.makespan
    retimed.makespan

let test_retime_negative_delay_rejected () =
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  let sched = Dcsa.schedule ~tc g alloc in
  Alcotest.check_raises "negative"
    (Invalid_argument "Retime.with_transport_delays: negative delay")
    (fun () ->
      ignore (Retime.with_transport_delays sched ~delays:[ ((0, 1), -1.) ]))

let test_retime_pushes_consumer () =
  let g = case1_graph () in
  let sched = Dcsa.schedule ~tc g (Allocation.of_vector (3, 0, 0, 0)) in
  let delayed = Retime.with_transport_delays sched ~delays:[ ((1, 2), 3.) ] in
  Alcotest.(check bool) "consumer pushed" true
    (delayed.times.(2).start >= sched.times.(2).start +. 3. -. 1e-9);
  check_legal "retimed" delayed

let delays_gen sched =
  let edges =
    List.map (fun (tr : Types.transport) -> tr.edge) sched.Types.transports
  in
  QCheck2.Gen.(
    list_size
      (int_bound (max 1 (List.length edges)))
      (pair (oneofl ((-1, -1) :: edges)) (float_bound_inclusive 10.)))

let prop_retime_monotone =
  qtest ~count:40 "retiming never moves operations earlier"
    QCheck2.Gen.(
      synthetic_instance_gen >>= fun (g, alloc) ->
      let sched = Dcsa.schedule ~tc g alloc in
      map (fun delays -> (sched, delays)) (delays_gen sched))
    (fun (sched, delays) ->
      let delays = List.filter (fun ((a, _), _) -> a >= 0) delays in
      let retimed = Retime.with_transport_delays sched ~delays in
      let ok = ref true in
      Array.iteri
        (fun op (t : Types.op_times) ->
          if retimed.times.(op).start < t.start -. 1e-9 then ok := false)
        sched.times;
      !ok && retimed.makespan >= sched.makespan -. 1e-9)

let prop_retime_legal =
  qtest ~count:40 "retimed schedules stay legal"
    QCheck2.Gen.(
      synthetic_instance_gen >>= fun (g, alloc) ->
      let sched = Dcsa.schedule ~tc g alloc in
      map (fun delays -> (sched, delays)) (delays_gen sched))
    (fun (sched, delays) ->
      let delays = List.filter (fun ((a, _), _) -> a >= 0) delays in
      Check.is_legal ~tc (Retime.with_transport_delays sched ~delays))

(* --- Dedicated-storage architecture (paper Fig. 1(a) motivation) --- *)

module Dedicated = Mfb_schedule.Dedicated_scheduler

let test_dedicated_legal_on_suite () =
  List.iter
    (fun (g, alloc) ->
      let result = Dedicated.schedule ~tc ~capacity:4 g alloc in
      check_legal (Seq_graph.name g ^ " dedicated") result.schedule)
    (Testkit.suite_instances ())

let test_dedicated_never_faster_than_dcsa () =
  (* The whole point of DCSA: removing the storage bottleneck can only
     help.  The dedicated round trip costs at least one extra tc whenever
     a fluid is displaced. *)
  List.iter
    (fun (g, alloc) ->
      let dcsa = Dcsa.schedule ~tc g alloc in
      let dedicated = Dedicated.schedule ~tc ~capacity:4 g alloc in
      Alcotest.(check bool)
        (Seq_graph.name g ^ " dedicated >= dcsa")
        true
        (dedicated.schedule.makespan >= dcsa.makespan -. 1e-6))
    (Testkit.suite_instances ())

let test_dedicated_counts_trips () =
  let g, alloc = List.nth (Testkit.suite_instances ()) 2 (* CPA *) in
  let result = Dedicated.schedule ~tc ~capacity:4 g alloc in
  Alcotest.(check bool) "storage used on CPA" true (result.storage_trips > 0);
  Alcotest.(check bool) "residence non-negative" true
    (result.storage_residence >= 0.);
  Alcotest.(check bool) "peak within capacity + overflow slack" true
    (result.peak_occupancy <= 4 + result.capacity_overflows)

let test_dedicated_capacity_one_serializes () =
  (* Several fluids wanting storage with one cell: the schedule must still
     be legal, with trips serialized through the single cell. *)
  let g =
    Seq_graph.create ~name:"tight-storage"
      ~ops:
        [
          mix ~id:0 hard; mix ~id:1 easy; mix ~id:2 easy; mix ~id:3 easy;
          mix ~id:4 easy;
        ]
      ~edges:[ (0, 4); (1, 4); (2, 4); (3, 4) ]
  in
  let result =
    Dedicated.schedule ~tc ~capacity:1 g (Allocation.of_vector (2, 0, 0, 0))
  in
  check_legal "tight storage" result.schedule

let test_dedicated_validation () =
  let g = case1_graph () in
  Alcotest.check_raises "capacity"
    (Invalid_argument "Dedicated_scheduler.schedule: capacity < 1") (fun () ->
      ignore
        (Dedicated.schedule ~tc ~capacity:0 g (Allocation.of_vector (1, 0, 0, 0))));
  Alcotest.check_raises "tc"
    (Invalid_argument "Dedicated_scheduler.schedule: tc must be positive")
    (fun () ->
      ignore
        (Dedicated.schedule ~tc:0. ~capacity:4 g
           (Allocation.of_vector (1, 0, 0, 0))))

let prop_dedicated_legal =
  qtest ~count:40 "dedicated schedules are legal" synthetic_instance_gen
    (fun (g, alloc) ->
      Check.is_legal ~tc (Dedicated.schedule ~tc ~capacity:4 g alloc).schedule)

(* --- Exact branch-and-bound reference --- *)

module Exact = Mfb_schedule.Exact
module Search = Mfb_schedule.Engine.Search

let small_instances () =
  [
    ("pcr", Mfb_bioassay.Benchmarks.pcr (), Allocation.of_vector (3, 0, 0, 0));
    ("case1", case1_graph (), Allocation.of_vector (2, 0, 0, 0));
    ( "synthetic-7",
      Mfb_bioassay.Synthetic.generate ~name:"tiny"
        { Mfb_bioassay.Synthetic.default_params with n_ops = 7; seed = 9 },
      Allocation.of_vector (2, 2, 1, 1) );
  ]

let test_exact_never_worse_than_heuristic () =
  List.iter
    (fun (name, g, alloc) ->
      let heuristic = Dcsa.schedule ~tc g alloc in
      let exact = Exact.schedule ~tc g alloc in
      Alcotest.(check bool) (name ^ " exact <= heuristic") true
        (exact.schedule.makespan <= heuristic.makespan +. 1e-9))
    (small_instances ())

let test_exact_schedules_legal () =
  List.iter
    (fun (name, g, alloc) ->
      let exact = Exact.schedule ~tc g alloc in
      check_legal (name ^ " exact") exact.schedule;
      Alcotest.(check bool) (name ^ " exhausts tiny spaces") true
        exact.optimal)
    (small_instances ())

let test_exact_node_limit () =
  let g = Mfb_bioassay.Benchmarks.fig2_example () in
  let alloc = Allocation.of_vector (3, 1, 0, 1) in
  let bounded = Exact.schedule ~fuel:50 ~tc g alloc in
  Alcotest.(check bool) "fuel exhaustion marks non-optimal" false
    bounded.optimal;
  Alcotest.(check bool) "and sets the truncated flag" true bounded.truncated;
  Alcotest.(check int) "explored stops at the budget" 50 bounded.explored;
  Alcotest.(check bool) "still returns the heuristic incumbent" true
    (bounded.schedule.makespan
    <= (Dcsa.schedule ~tc g alloc).makespan +. 1e-9)

let test_search_api () =
  let g = case1_graph () in
  let alloc = Allocation.of_vector (2, 0, 0, 0) in
  let snap = Search.init ~tc g alloc in
  Alcotest.(check (list int)) "sources ready first" [ 0; 1 ]
    (List.sort compare (Search.ready_ops snap));
  Alcotest.(check bool) "not complete" false (Search.complete snap);
  let candidates = Search.candidates snap 0 in
  Alcotest.(check int) "two qualified mixers" 2 (List.length candidates);
  let snap' = Search.apply snap 0 (List.hd candidates) in
  (* Purity: the original snapshot is untouched. *)
  Alcotest.(check (list int)) "original unchanged" [ 0; 1 ]
    (List.sort compare (Search.ready_ops snap));
  Alcotest.(check (list int)) "child not ready yet" [ 1 ]
    (Search.ready_ops snap');
  Alcotest.(check bool) "lower bound admissible" true
    (Search.lower_bound snap
    <= (Exact.schedule ~tc g alloc).schedule.makespan +. 1e-9)

let prop_exact_bounds_heuristic =
  qtest ~count:15 "exact never exceeds the heuristic on small assays"
    QCheck2.Gen.(
      map
        (fun seed ->
          ( Mfb_bioassay.Synthetic.generate ~name:"x"
              { Mfb_bioassay.Synthetic.default_params with n_ops = 6; seed },
            Allocation.make ~mixers:2 ~heaters:1 ~filters:1 ~detectors:1 ))
        (int_bound 500))
    (fun (g, alloc) ->
      let exact = Exact.schedule ~fuel:50_000 ~tc g alloc in
      let heuristic = Dcsa.schedule ~tc g alloc in
      Check.is_legal ~tc exact.schedule
      && exact.schedule.makespan <= heuristic.makespan +. 1e-9)

(* Satellite oracle property: on seeded synthetic assays of up to 12
   operations the exact result is legal and never worse than the
   heuristic, whether or not the fuel budget sufficed. *)
let prop_exact_oracle_up_to_12_ops =
  qtest ~count:15 "exact <= heuristic and legal on assays up to 12 ops"
    QCheck2.Gen.(
      map2
        (fun n seed ->
          ( Mfb_bioassay.Synthetic.generate ~name:"oracle"
              { Mfb_bioassay.Synthetic.default_params with
                n_ops = 2 + n;
                kind_weights = [| 3; 2; 1; 1 |];
                seed },
            Allocation.make ~mixers:2 ~heaters:2 ~filters:1 ~detectors:1 ))
        (int_bound 10) (int_bound 1000))
    (fun (g, alloc) ->
      let exact = Exact.schedule ~fuel:30_000 ~tc g alloc in
      let heuristic = Dcsa.schedule ~tc g alloc in
      Check.validate ~tc exact.schedule = []
      && exact.schedule.makespan <= heuristic.makespan +. 1e-9
      && exact.heuristic_makespan = heuristic.makespan
      && exact.optimal <> exact.truncated)

(* --- Branch-and-bound edge cases --- *)

let test_exact_empty_assay () =
  (* An empty assay is rejected at graph construction, so the exact
     backend can never see one; what it must share with {!Engine.run} is
     the validation boundary for the degenerate inputs that do parse. *)
  Alcotest.check_raises "empty assay unconstructible"
    (Invalid_argument "Seq_graph.create: no operations") (fun () ->
      ignore (Seq_graph.create ~name:"empty" ~ops:[] ~edges:[]));
  let g =
    Seq_graph.create ~name:"one" ~ops:[ mix ~id:0 easy ] ~edges:[]
  in
  Alcotest.check_raises "uncovered kind rejected like Engine.run"
    (Invalid_argument "Engine.run: allocation does not cover all operation \
                       kinds") (fun () ->
      ignore (Exact.schedule ~tc g (Allocation.of_vector (0, 1, 0, 0))));
  Alcotest.check_raises "non-positive tc rejected like Engine.run"
    (Invalid_argument "Engine.run: tc must be positive") (fun () ->
      ignore (Exact.schedule ~tc:0. g (Allocation.of_vector (1, 0, 0, 0))))

let test_exact_single_op () =
  let g =
    Seq_graph.create ~name:"single"
      ~ops:[ mix ~id:0 ~duration:4. easy ]
      ~edges:[]
  in
  let e = Exact.schedule ~tc g (Allocation.of_vector (1, 0, 0, 0)) in
  Alcotest.(check (float 1e-9)) "makespan = duration" 4. e.schedule.makespan;
  Alcotest.(check bool) "optimal" true e.optimal;
  check_legal "single op" e.schedule

let test_exact_independent_ops_bound_tight () =
  (* Three independent operations on three mixers: the critical-path
     bound at the root already equals the heuristic makespan, so the
     root is pruned without expanding a single child. *)
  let g =
    Seq_graph.create ~name:"independent"
      ~ops:
        [
          mix ~id:0 ~duration:3. easy;
          mix ~id:1 ~duration:4. easy;
          mix ~id:2 ~duration:5. easy;
        ]
      ~edges:[]
  in
  let alloc = Allocation.of_vector (3, 0, 0, 0) in
  let e = Exact.schedule ~tc g alloc in
  Alcotest.(check (float 1e-9)) "makespan = longest duration" 5.
    e.schedule.makespan;
  Alcotest.(check bool) "optimal" true e.optimal;
  Alcotest.(check int) "bound tight at the root" 1 e.explored;
  let snap = Search.init ~tc g alloc in
  Alcotest.(check (float 1e-9)) "root lower bound is exact" 5.
    (Search.lower_bound snap)

let test_exact_fuel_exhaustion_keeps_incumbent () =
  let g = Mfb_bioassay.Benchmarks.fig2_example () in
  let alloc = Allocation.of_vector (3, 1, 0, 1) in
  let heuristic = Dcsa.schedule ~tc g alloc in
  let e = Exact.schedule ~fuel:1 ~tc g alloc in
  Alcotest.(check bool) "truncated" true e.truncated;
  Alcotest.(check bool) "not optimal" false e.optimal;
  Alcotest.(check (float 1e-9)) "incumbent is the heuristic seed"
    heuristic.makespan e.schedule.makespan;
  check_legal "fuel-starved incumbent" e.schedule;
  Alcotest.check_raises "fuel < 1 rejected"
    (Invalid_argument "Exact.schedule: fuel < 1") (fun () ->
      ignore (Exact.schedule ~fuel:0 ~tc g alloc))

(* --- Portfolio runner --- *)

module Portfolio = Mfb_schedule.Portfolio
module Export = Mfb_schedule.Export

let portfolio_instances () =
  small_instances ()
  @ [
      ( "fig2",
        Mfb_bioassay.Benchmarks.fig2_example (),
        Allocation.of_vector (3, 1, 0, 1) );
    ]

let test_portfolio_bit_identical_to_selected () =
  List.iter
    (fun (name, g, alloc) ->
      List.iter
        (fun fuel ->
          let sched, d = Portfolio.race ~fuel ~tc g alloc in
          let reference =
            match d.selected with
            | Portfolio.Heuristic_arm -> Dcsa.schedule ~tc g alloc
            | Portfolio.Exact_arm ->
              (Exact.schedule ~fuel ~tc g alloc).Exact.schedule
          in
          Alcotest.(check string)
            (Printf.sprintf "%s fuel=%d matches %s arm byte for byte" name
               fuel
               (Portfolio.arm_to_string d.selected))
            (Export.to_string reference)
            (Export.to_string sched);
          Alcotest.(check (float 0.)) (name ^ " decision echoes makespan")
            sched.Types.makespan d.makespan)
        [ 1; 100; 50_000 ])
    (portfolio_instances ())

let test_portfolio_deterministic_across_jobs () =
  List.iter
    (fun (name, g, alloc) ->
      let key jobs =
        let sched, d = Portfolio.race ~fuel:5_000 ~jobs ~tc g alloc in
        (Export.to_string sched, d)
      in
      let s1, d1 = key 1 in
      let s1', d1' = key 1 in
      let s2, d2 = key 2 in
      Alcotest.(check string) (name ^ " rerun is byte-identical") s1 s1';
      Alcotest.(check bool) (name ^ " rerun same decision") true (d1 = d1');
      Alcotest.(check string) (name ^ " jobs=2 == jobs=1") s1 s2;
      Alcotest.(check bool) (name ^ " jobs=2 same decision") true (d1 = d2))
    (portfolio_instances ())

let test_portfolio_never_worse_than_either_arm () =
  List.iter
    (fun (name, g, alloc) ->
      let sched, d = Portfolio.race ~fuel:20_000 ~tc g alloc in
      let heuristic = Dcsa.schedule ~tc g alloc in
      Alcotest.(check bool) (name ^ " <= heuristic") true
        (sched.Types.makespan <= heuristic.makespan +. 1e-9);
      Alcotest.(check (float 0.)) (name ^ " heuristic makespan recorded")
        heuristic.makespan d.heuristic_makespan;
      Alcotest.(check bool) (name ^ " gap non-negative") true
        (Portfolio.gap_percent d >= 0.);
      check_legal (name ^ " portfolio") sched)
    (portfolio_instances ())

let test_portfolio_exact_wrapper () =
  let name, g, alloc = List.hd (portfolio_instances ()) in
  let sched, d = Portfolio.exact ~tc g alloc in
  let e = Exact.schedule ~tc g alloc in
  Alcotest.(check string) (name ^ " wrapper = Exact.schedule")
    (Export.to_string e.Exact.schedule)
    (Export.to_string sched);
  Alcotest.(check bool) "backend tagged exact" true (d.backend = Portfolio.Exact);
  Alcotest.(check bool) "selected arm is exact" true
    (d.selected = Portfolio.Exact_arm);
  Alcotest.(check int) "ticks = explored" d.explored d.ticks

let test_backend_string_roundtrip () =
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Portfolio.backend_to_string b ^ " roundtrips")
        true
        (Portfolio.backend_of_string (Portfolio.backend_to_string b) = Some b))
    Portfolio.all_backends;
  Alcotest.(check bool) "unknown rejected" true
    (Portfolio.backend_of_string "sat" = None)

(* --- Multi-start randomized list scheduling --- *)

module Multi_start = Mfb_schedule.Multi_start

let test_multistart_never_worse () =
  List.iter
    (fun (g, alloc) ->
      let single = Dcsa.schedule ~tc g alloc in
      let multi =
        Multi_start.schedule ~restarts:8 ~rng:(Mfb_util.Rng.create 3) ~tc g
          alloc
      in
      check_legal (Seq_graph.name g ^ " multi-start") multi.schedule;
      Alcotest.(check bool)
        (Seq_graph.name g ^ " multi <= single")
        true
        (multi.schedule.makespan <= single.makespan +. 1e-9);
      Alcotest.(check (float 1e-9)) "gain consistent"
        (single.makespan -. multi.schedule.makespan)
        multi.improved_over_first)
    (Testkit.suite_instances ())

let test_multistart_zero_noise_identity () =
  let g, alloc = List.nth (Testkit.suite_instances ()) 2 in
  let single = Dcsa.schedule ~tc g alloc in
  let multi =
    Multi_start.schedule ~restarts:4 ~noise:0. ~rng:(Mfb_util.Rng.create 1)
      ~tc g alloc
  in
  Alcotest.(check (float 1e-9)) "identical makespan" single.makespan
    multi.schedule.makespan

let test_multistart_validation () =
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  Alcotest.check_raises "restarts"
    (Invalid_argument "Multi_start.schedule: restarts < 1") (fun () ->
      ignore
        (Multi_start.schedule ~restarts:0 ~rng:(Mfb_util.Rng.create 1) ~tc g
           alloc));
  Alcotest.check_raises "noise"
    (Invalid_argument "Multi_start.schedule: negative noise") (fun () ->
      ignore
        (Multi_start.schedule ~noise:(-0.1) ~rng:(Mfb_util.Rng.create 1) ~tc
           g alloc))

let test_engine_priorities_validation () =
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  Alcotest.check_raises "length"
    (Invalid_argument "Engine.run: priorities length mismatch") (fun () ->
      ignore
        (Mfb_schedule.Engine.run ~priorities:[| 1.0 |] ~case1:true ~tc g
           alloc))

let test_utilization_cross_check () =
  (* Recompute Eq. 1 independently from the raw times. *)
  List.iter
    (fun (g, alloc) ->
      let sched = Dcsa.schedule ~tc g alloc in
      let n = Array.length sched.components in
      let manual =
        let per_component c =
          let mine =
            Array.to_list sched.times
            |> List.filter (fun (t : Types.op_times) -> t.component = c)
          in
          match mine with
          | [] -> 0.
          | ts ->
            let active =
              List.fold_left (fun acc (t : Types.op_times) ->
                  acc +. (t.finish -. t.start))
                0. ts
            in
            let first =
              List.fold_left (fun acc (t : Types.op_times) ->
                  Float.min acc t.start)
                infinity ts
            in
            let last =
              List.fold_left (fun acc (t : Types.op_times) ->
                  Float.max acc t.finish)
                0. ts
            in
            active /. (last -. first)
        in
        List.fold_left (fun acc c -> acc +. per_component c) 0.
          (List.init n Fun.id)
        /. float_of_int n
      in
      Alcotest.(check (float 1e-9))
        (Seq_graph.name g ^ " Eq. 1 cross-check")
        manual
        (Metrics.resource_utilization sched))
    (Testkit.suite_instances ())

(* --- JSON export --- *)

let test_export_json () =
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  let sched = Dcsa.schedule ~tc g alloc in
  let json = Mfb_schedule.Export.to_string sched in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Testkit.contains json needle))
    [ "\"assay\""; "\"PCR\""; "\"makespan\""; "\"operations\"";
      "\"transports\""; "\"washes\""; "\"cache_time\"" ];
  (* One entry per operation. *)
  let count needle hay =
    let rec loop i acc =
      if i + String.length needle > String.length hay then acc
      else if String.sub hay i (String.length needle) = needle then
        loop (i + 1) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  Alcotest.(check int) "seven operations" 7 (count "\"op\":" json)

(* --- Checker self-tests --- *)

let test_checker_detects_overlap () =
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  let sched = Dcsa.schedule ~tc g alloc in
  (* Corrupt: force two ops onto one component at the same time. *)
  let times = Array.copy sched.times in
  times.(1) <- { (times.(0)) with in_place_parent = None };
  let bad = { sched with times } in
  Alcotest.(check bool) "violation found" true
    (Check.validate ~tc bad <> [])

let test_checker_detects_bad_makespan () =
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  let sched = Dcsa.schedule ~tc g alloc in
  let bad = { sched with makespan = sched.makespan +. 100. } in
  Alcotest.(check bool) "makespan violation" true
    (List.exists
       (fun (v : Check.violation) -> v.code = "makespan")
       (Check.validate ~tc bad))

let suites =
  [
    ("schedule.legality", legality_tests);
    ( "schedule.strategy",
      [
        Alcotest.test_case "dcsa never slower than BA" `Quick
          test_dcsa_never_slower;
        Alcotest.test_case "case-I fires on PCR" `Quick
          test_dcsa_in_place_on_chains;
        Alcotest.test_case "case-I prefers hard-wash parent" `Quick
          test_case1_prefers_hard_wash_parent;
        Alcotest.test_case "case-I eliminates transport" `Quick
          test_case1_eliminates_transport;
        Alcotest.test_case "case-II earliest ready" `Quick
          test_case2_earliest_ready;
        Alcotest.test_case "eviction creates channel cache" `Quick
          test_eviction_creates_cache;
        Alcotest.test_case "single component serializes" `Quick
          test_single_component_serializes;
        Alcotest.test_case "fan-out copies" `Quick test_fanout_copies;
        Alcotest.test_case "loopback cache accounted" `Quick
          test_loopback_cache_accounted;
        Alcotest.test_case "deep chain all in place" `Quick
          test_deep_chain_in_place_throughout;
        Alcotest.test_case "wide independent layer" `Quick
          test_wide_independent_layer;
        Alcotest.test_case "validation" `Quick test_engine_validation;
      ] );
    ( "schedule.metrics",
      [
        Alcotest.test_case "utilization in range" `Quick
          test_utilization_range;
        Alcotest.test_case "utilization known value" `Quick
          test_utilization_known_value;
        Alcotest.test_case "busy time" `Quick test_busy_time;
        Alcotest.test_case "Eq. 1 cross-check" `Quick
          test_utilization_cross_check;
        Alcotest.test_case "transport invariants" `Quick
          test_transport_invariants;
        Alcotest.test_case "concurrency counts" `Quick
          test_concurrency_counts;
      ] );
    ( "schedule.properties",
      [
        prop_dcsa_legal;
        prop_baseline_legal;
        prop_makespan_lower_bound;
        prop_all_ops_scheduled;
      ] );
    ( "schedule.retime",
      [
        Alcotest.test_case "zero delays identity" `Quick
          test_retime_zero_delays_identity;
        Alcotest.test_case "negative delay rejected" `Quick
          test_retime_negative_delay_rejected;
        Alcotest.test_case "pushes consumer" `Quick test_retime_pushes_consumer;
        prop_retime_monotone;
        prop_retime_legal;
      ] );
    ( "schedule.dedicated",
      [
        Alcotest.test_case "legal on suite" `Quick
          test_dedicated_legal_on_suite;
        Alcotest.test_case "never faster than dcsa" `Quick
          test_dedicated_never_faster_than_dcsa;
        Alcotest.test_case "counts trips" `Quick test_dedicated_counts_trips;
        Alcotest.test_case "capacity one serializes" `Quick
          test_dedicated_capacity_one_serializes;
        Alcotest.test_case "validation" `Quick test_dedicated_validation;
        prop_dedicated_legal;
      ] );
    ( "schedule.exact",
      [
        Alcotest.test_case "never worse than heuristic" `Quick
          test_exact_never_worse_than_heuristic;
        Alcotest.test_case "legal and optimal on tiny" `Quick
          test_exact_schedules_legal;
        Alcotest.test_case "node limit" `Quick test_exact_node_limit;
        Alcotest.test_case "search api" `Quick test_search_api;
        prop_exact_bounds_heuristic;
        prop_exact_oracle_up_to_12_ops;
        Alcotest.test_case "empty assay" `Quick test_exact_empty_assay;
        Alcotest.test_case "single op" `Quick test_exact_single_op;
        Alcotest.test_case "independent ops: bound tight at root" `Quick
          test_exact_independent_ops_bound_tight;
        Alcotest.test_case "fuel exhaustion keeps incumbent" `Quick
          test_exact_fuel_exhaustion_keeps_incumbent;
      ] );
    ( "schedule.portfolio",
      [
        Alcotest.test_case "bit-identical to selected backend" `Quick
          test_portfolio_bit_identical_to_selected;
        Alcotest.test_case "deterministic across jobs and reruns" `Quick
          test_portfolio_deterministic_across_jobs;
        Alcotest.test_case "never worse than either arm" `Quick
          test_portfolio_never_worse_than_either_arm;
        Alcotest.test_case "exact wrapper" `Quick test_portfolio_exact_wrapper;
        Alcotest.test_case "backend string roundtrip" `Quick
          test_backend_string_roundtrip;
      ] );
    ( "schedule.multi_start",
      [
        Alcotest.test_case "never worse" `Quick test_multistart_never_worse;
        Alcotest.test_case "zero noise identity" `Quick
          test_multistart_zero_noise_identity;
        Alcotest.test_case "validation" `Quick test_multistart_validation;
        Alcotest.test_case "priorities validation" `Quick
          test_engine_priorities_validation;
      ] );
    ( "schedule.export",
      [ Alcotest.test_case "json dump" `Quick test_export_json ] );
    ( "schedule.checker",
      [
        Alcotest.test_case "detects overlap" `Quick
          test_checker_detects_overlap;
        Alcotest.test_case "detects bad makespan" `Quick
          test_checker_detects_bad_makespan;
      ] );
  ]
