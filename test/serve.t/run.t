The synthesis service speaks line-delimited JSON on stdin/stdout.
Blank lines and # comments are ignored, so here-doc scripts can be
annotated.  Submitting the same benchmark twice computes once: the
second submission is answered from the content-addressed cache with a
byte-identical payload (same key, same result object), visible below as
computed=1 with one cache hit in the shutdown stats.

  $ ../../bin/dcsa_synth.exe serve <<'EOF'
  > # PCR twice: the second submit hits the cache
  > {"op":"submit","id":"r1","benchmark":"PCR"}
  > {"op":"result","id":"r1"}
  > 
  > {"op":"submit","id":"r2","benchmark":"PCR"}
  > {"op":"result","id":"r2"}
  > {"op":"shutdown"}
  > EOF
  {"ok":true,"op":"submit","id":"r1","key":"5a1cf9d38af9fd6b"}
  {"ok":true,"op":"result","id":"r1","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}
  {"ok":true,"op":"submit","id":"r2","key":"5a1cf9d38af9fd6b"}
  {"ok":true,"op":"result","id":"r2","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}
  {"ok":true,"op":"shutdown","stats":{"tick":1,"submitted":2,"computed":1,"cache":{"capacity":128,"entries":1,"hits":1,"misses":1,"evictions":0},"queue":{"depth":64,"queued":0},"shed":{"deadline":0,"displaced":0},"rejected":0,"jobs":1,"config":{"tc":2.0,"we":10.0,"beta":0.6,"gamma":0.4,"sa":{"t0":10000.0,"t_min":1.0,"alpha":0.9,"i_max":150},"sa_restarts":1,"seed":42,"backend":"heuristic","exact_fuel":200000}}}

Inline assays are content-addressed structurally: the same graph spelled
with different operation ids and line order maps to the same key.

  $ ../../bin/dcsa_synth.exe serve <<'EOF'
  > {"op":"submit","id":"a1","assay":"assay \"mini\"\nfluid a 4e-7\nfluid b 1e-6\nop 0 mix 5 a\nop 1 heat 4 b\nedge 0 1","alloc":[1,1,0,0]}
  > {"op":"submit","id":"a2","assay":"assay \"mini\"\nfluid b 1e-6\nfluid a 4e-7\nop 1 mix 5 a\nop 0 heat 4 b\nedge 1 0","alloc":[1,1,0,0]}
  > {"op":"stats"}
  > EOF
  {"ok":true,"op":"submit","id":"a1","key":"861b6d97128e9082"}
  {"ok":true,"op":"submit","id":"a2","key":"861b6d97128e9082"}
  {"ok":true,"op":"stats","stats":{"tick":0,"submitted":2,"computed":0,"cache":{"capacity":128,"entries":0,"hits":0,"misses":2,"evictions":0},"queue":{"depth":64,"queued":2},"shed":{"deadline":0,"displaced":0},"rejected":0,"jobs":1,"config":{"tc":2.0,"we":10.0,"beta":0.6,"gamma":0.4,"sa":{"t0":10000.0,"t_min":1.0,"alpha":0.9,"i_max":150},"sa_restarts":1,"seed":42,"backend":"heuristic","exact_fuel":200000}}}

Admission control: with --queue-depth 1 the second submission is
refused; a higher-priority third displaces the queued job, whose result
then reports the shedding.  (--batch 50 keeps the queue from
dispatching until a result is demanded.)

  $ ../../bin/dcsa_synth.exe serve --queue-depth 1 --batch 50 <<'EOF'
  > {"op":"submit","id":"j1","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"j2","benchmark":"PCR","seed":2}
  > {"op":"submit","id":"j3","benchmark":"PCR","seed":3,"priority":5}
  > {"op":"status","id":"j1"}
  > {"op":"result","id":"j1"}
  > {"op":"result","id":"j3"}
  > EOF
  {"ok":true,"op":"submit","id":"j1","key":"b4a9f0807e9fbe0a"}
  {"ok":false,"op":"submit","id":"j2","reason":"queue full (depth 1) and priority 0 does not outrank the weakest queued job"}
  {"ok":true,"op":"submit","id":"j3","key":"26e6b437d75ea7d4"}
  {"ok":true,"op":"status","id":"j1","state":"shed"}
  {"ok":false,"op":"result","id":"j1","reason":"displaced by higher-priority submission \"j3\""}
  {"ok":true,"op":"result","id":"j3","key":"26e6b437d75ea7d4","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}

Malformed input never kills the server:

  $ ../../bin/dcsa_synth.exe serve <<'EOF'
  > {oops
  > {"op":"fly"}
  > {"op":"submit","id":"x","benchmark":"NOPE"}
  > {"op":"result","id":"ghost"}
  > EOF
  {"ok":false,"op":"error","message":"offset 1: expected '\"'"}
  {"ok":false,"op":"error","message":"unknown op \"fly\""}
  {"ok":false,"op":"submit","id":"x","reason":"unknown benchmark \"NOPE\"; try: PCR, IVD, CPA, Synthetic1, Synthetic2, Synthetic3, Synthetic4"}
  {"ok":false,"op":"error","id":"ghost","message":"unknown id"}

Serving is deterministic and the cache is transparent: the same script
replayed at --jobs 1, --jobs 2, and with the cache disabled produces
bit-for-bit identical responses (result payloads carry only the
deterministic summary metrics, never timings).

  $ cat > script.txt <<'EOF'
  > {"op":"submit","id":"q0","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"q1","benchmark":"PCR","seed":2}
  > {"op":"submit","id":"q2","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"q3","benchmark":"PCR","seed":3,"priority":2}
  > {"op":"submit","id":"q4","benchmark":"PCR","seed":2}
  > {"op":"submit","id":"q5","benchmark":"PCR","seed":1}
  > {"op":"result","id":"q0"}
  > {"op":"result","id":"q1"}
  > {"op":"result","id":"q2"}
  > {"op":"result","id":"q3"}
  > {"op":"result","id":"q4"}
  > {"op":"result","id":"q5"}
  > EOF
  $ ../../bin/dcsa_synth.exe serve --jobs 1 --batch 4 < script.txt > jobs1.out
  $ ../../bin/dcsa_synth.exe serve --jobs 2 --batch 4 < script.txt > jobs2.out
  $ ../../bin/dcsa_synth.exe serve --jobs 2 --batch 4 --no-cache < script.txt > nocache.out
  $ cmp jobs1.out jobs2.out && cmp jobs1.out nocache.out && echo responses-invariant
  responses-invariant

An input line beyond the 1 MiB cap is consumed whole and answered with a
structured error; the stream resynchronises at the newline and the next
request is served normally.

  $ { head -c 1200000 /dev/zero | tr '\0' 'x'; printf '\n'
  >   printf '{"op":"submit","id":"ok","benchmark":"PCR"}\n{"op":"shutdown"}\n'
  > } | ../../bin/dcsa_synth.exe serve > oversized.out
  $ grep -c . oversized.out
  3
  $ grep '"op":"error"' oversized.out
  {"ok":false,"op":"error","message":"input line too long: 1200000 bytes exceeds the 1048576-byte limit"}
  $ grep -o '"id":"ok","key":"[0-9a-f]*"' oversized.out
  "id":"ok","key":"5a1cf9d38af9fd6b"

Shutdown drains the queue: jobs still waiting (batch 50 prevents any
dispatch) are computed before the final stats snapshot, which therefore
accounts for every accepted submission, and the server exits 0.

  $ ../../bin/dcsa_synth.exe serve --batch 50 > drain.out <<'EOF'
  > {"op":"submit","id":"d1","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"d2","benchmark":"PCR","seed":2}
  > {"op":"shutdown"}
  > EOF
  $ echo "exit: $?"
  exit: 0
  $ grep -o '"computed":2' drain.out
  "computed":2
  $ grep -o '"queue":{"depth":64,"queued":0}' drain.out
  "queue":{"depth":64,"queued":0}
