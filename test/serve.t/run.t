The synthesis service speaks line-delimited JSON on stdin/stdout.
Blank lines and # comments are ignored, so here-doc scripts can be
annotated.  Submitting the same benchmark twice computes once: the
second submission is answered from the content-addressed cache with a
byte-identical payload (same key, same result object), visible below as
computed=1 with one cache hit in the shutdown stats.

  $ ../../bin/dcsa_synth.exe serve <<'EOF'
  > # PCR twice: the second submit hits the cache
  > {"op":"submit","id":"r1","benchmark":"PCR"}
  > {"op":"result","id":"r1"}
  > 
  > {"op":"submit","id":"r2","benchmark":"PCR"}
  > {"op":"result","id":"r2"}
  > {"op":"shutdown"}
  > EOF
  {"ok":true,"op":"submit","id":"r1","key":"5a1cf9d38af9fd6b"}
  {"ok":true,"op":"result","id":"r1","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}
  {"ok":true,"op":"submit","id":"r2","key":"5a1cf9d38af9fd6b"}
  {"ok":true,"op":"result","id":"r2","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}
  {"ok":true,"op":"shutdown","stats":{"tick":1,"submitted":2,"computed":1,"cache":{"capacity":128,"entries":1,"hits":1,"misses":1,"evictions":0},"queue":{"depth":64,"queued":0},"shed":{"deadline":0,"displaced":0},"rejected":0,"latency":{"count":2,"sum":1.0,"min":0.0,"max":1.0,"p50":0.0,"p95":1.189207115,"p99":1.189207115},"queue_wait":{"count":1,"sum":0.0,"min":0.0,"max":0.0,"p50":0.0,"p95":0.0,"p99":0.0},"jobs":1,"config":{"tc":2.0,"we":10.0,"beta":0.6,"gamma":0.4,"sa":{"t0":10000.0,"t_min":1.0,"alpha":0.9,"i_max":150},"sa_restarts":1,"seed":42,"backend":"heuristic","exact_fuel":200000},"totals":{"cache":{"hits":1,"misses":1,"evictions":0},"queue":{"submitted":2,"computed":1,"shed":0,"rejected":0},"cluster":{"dispatched":0,"retries":0,"degraded":0,"respawns":0}}}}

Inline assays are content-addressed structurally: the same graph spelled
with different operation ids and line order maps to the same key.

  $ ../../bin/dcsa_synth.exe serve <<'EOF'
  > {"op":"submit","id":"a1","assay":"assay \"mini\"\nfluid a 4e-7\nfluid b 1e-6\nop 0 mix 5 a\nop 1 heat 4 b\nedge 0 1","alloc":[1,1,0,0]}
  > {"op":"submit","id":"a2","assay":"assay \"mini\"\nfluid b 1e-6\nfluid a 4e-7\nop 1 mix 5 a\nop 0 heat 4 b\nedge 1 0","alloc":[1,1,0,0]}
  > {"op":"stats"}
  > EOF
  {"ok":true,"op":"submit","id":"a1","key":"861b6d97128e9082"}
  {"ok":true,"op":"submit","id":"a2","key":"861b6d97128e9082"}
  {"ok":true,"op":"stats","stats":{"tick":0,"submitted":2,"computed":0,"cache":{"capacity":128,"entries":0,"hits":0,"misses":2,"evictions":0},"queue":{"depth":64,"queued":2},"shed":{"deadline":0,"displaced":0},"rejected":0,"latency":{"count":0,"sum":0.0,"min":0.0,"max":0.0,"p50":0.0,"p95":0.0,"p99":0.0},"queue_wait":{"count":0,"sum":0.0,"min":0.0,"max":0.0,"p50":0.0,"p95":0.0,"p99":0.0},"jobs":1,"config":{"tc":2.0,"we":10.0,"beta":0.6,"gamma":0.4,"sa":{"t0":10000.0,"t_min":1.0,"alpha":0.9,"i_max":150},"sa_restarts":1,"seed":42,"backend":"heuristic","exact_fuel":200000}}}

Admission control: with --queue-depth 1 the second submission is
refused; a higher-priority third displaces the queued job, whose result
then reports the shedding.  (--batch 50 keeps the queue from
dispatching until a result is demanded.)

  $ ../../bin/dcsa_synth.exe serve --queue-depth 1 --batch 50 <<'EOF'
  > {"op":"submit","id":"j1","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"j2","benchmark":"PCR","seed":2}
  > {"op":"submit","id":"j3","benchmark":"PCR","seed":3,"priority":5}
  > {"op":"status","id":"j1"}
  > {"op":"result","id":"j1"}
  > {"op":"result","id":"j3"}
  > EOF
  {"ok":true,"op":"submit","id":"j1","key":"b4a9f0807e9fbe0a"}
  {"ok":false,"op":"submit","id":"j2","reason":"queue full (depth 1) and priority 0 does not outrank the weakest queued job"}
  {"ok":true,"op":"submit","id":"j3","key":"26e6b437d75ea7d4"}
  {"ok":true,"op":"status","id":"j1","state":"shed"}
  {"ok":false,"op":"result","id":"j1","reason":"displaced by higher-priority submission \"j3\""}
  {"ok":true,"op":"result","id":"j3","key":"26e6b437d75ea7d4","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}

Malformed input never kills the server:

  $ ../../bin/dcsa_synth.exe serve <<'EOF'
  > {oops
  > {"op":"fly"}
  > {"op":"submit","id":"x","benchmark":"NOPE"}
  > {"op":"result","id":"ghost"}
  > EOF
  {"ok":false,"op":"error","message":"offset 1: expected '\"'"}
  {"ok":false,"op":"error","message":"unknown op \"fly\""}
  {"ok":false,"op":"submit","id":"x","reason":"unknown benchmark \"NOPE\"; try: PCR, IVD, CPA, Synthetic1, Synthetic2, Synthetic3, Synthetic4"}
  {"ok":false,"op":"error","id":"ghost","message":"unknown id"}

Serving is deterministic and the cache is transparent: the same script
replayed at --jobs 1, --jobs 2, and with the cache disabled produces
bit-for-bit identical responses (result payloads carry only the
deterministic summary metrics, never timings).

  $ cat > script.txt <<'EOF'
  > {"op":"submit","id":"q0","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"q1","benchmark":"PCR","seed":2}
  > {"op":"submit","id":"q2","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"q3","benchmark":"PCR","seed":3,"priority":2}
  > {"op":"submit","id":"q4","benchmark":"PCR","seed":2}
  > {"op":"submit","id":"q5","benchmark":"PCR","seed":1}
  > {"op":"result","id":"q0"}
  > {"op":"result","id":"q1"}
  > {"op":"result","id":"q2"}
  > {"op":"result","id":"q3"}
  > {"op":"result","id":"q4"}
  > {"op":"result","id":"q5"}
  > EOF
  $ ../../bin/dcsa_synth.exe serve --jobs 1 --batch 4 < script.txt > jobs1.out
  $ ../../bin/dcsa_synth.exe serve --jobs 2 --batch 4 < script.txt > jobs2.out
  $ ../../bin/dcsa_synth.exe serve --jobs 2 --batch 4 --no-cache < script.txt > nocache.out
  $ cmp jobs1.out jobs2.out && cmp jobs1.out nocache.out && echo responses-invariant
  responses-invariant

An input line beyond the 1 MiB cap is consumed whole and answered with a
structured error; the stream resynchronises at the newline and the next
request is served normally.

  $ { head -c 1200000 /dev/zero | tr '\0' 'x'; printf '\n'
  >   printf '{"op":"submit","id":"ok","benchmark":"PCR"}\n{"op":"shutdown"}\n'
  > } | ../../bin/dcsa_synth.exe serve > oversized.out
  $ grep -c . oversized.out
  3
  $ grep '"op":"error"' oversized.out
  {"ok":false,"op":"error","message":"input line too long: 1200000 bytes exceeds the 1048576-byte limit"}
  $ grep -o '"id":"ok","key":"[0-9a-f]*"' oversized.out
  "id":"ok","key":"5a1cf9d38af9fd6b"

Shutdown drains the queue: jobs still waiting (batch 50 prevents any
dispatch) are computed before the final stats snapshot, which therefore
accounts for every accepted submission, and the server exits 0.

  $ ../../bin/dcsa_synth.exe serve --batch 50 > drain.out <<'EOF'
  > {"op":"submit","id":"d1","benchmark":"PCR","seed":1}
  > {"op":"submit","id":"d2","benchmark":"PCR","seed":2}
  > {"op":"shutdown"}
  > EOF
  $ echo "exit: $?"
  exit: 0
  $ grep -o '"computed":2' drain.out
  "computed":2
  "computed":2
  $ grep -o '"queue":{"depth":64,"queued":0}' drain.out
  "queue":{"depth":64,"queued":0}

The structured access log writes one JSONL record per finished request:
deterministic request ids, the cache-key prefix, the outcome, and
virtual-tick latencies.  Under the virtual clock the log is a pure
function of the request script, so the bytes are identical for every
--jobs value.

  $ ../../bin/dcsa_synth.exe serve --jobs 1 --batch 4 --access-log acc1.jsonl < script.txt > /dev/null
  $ ../../bin/dcsa_synth.exe serve --jobs 2 --batch 4 --access-log acc2.jsonl < script.txt > /dev/null
  $ ../../bin/dcsa_synth.exe serve --jobs 4 --batch 4 --access-log acc4.jsonl < script.txt > /dev/null
  $ cmp acc1.jsonl acc2.jsonl && cmp acc1.jsonl acc4.jsonl && echo access-log-invariant
  access-log-invariant
  $ cat acc1.jsonl
  {"rid":"r000004","id":"q3","key":"26e6b437","backend":"heuristic","outcome":"done","queue_ticks":0,"compute_ticks":1,"total_ticks":1,"batch":1}
  {"rid":"r000001","id":"q0","key":"b4a9f080","backend":"heuristic","outcome":"done","queue_ticks":0,"compute_ticks":1,"total_ticks":1,"batch":1}
  {"rid":"r000002","id":"q1","key":"563e1c0a","backend":"heuristic","outcome":"done","queue_ticks":0,"compute_ticks":1,"total_ticks":1,"batch":1}
  {"rid":"r000003","id":"q2","key":"b4a9f080","backend":"heuristic","outcome":"done","queue_ticks":0,"compute_ticks":1,"total_ticks":1,"batch":1}
  {"rid":"r000005","id":"q4","key":"563e1c0a","backend":"heuristic","outcome":"hit","queue_ticks":0,"compute_ticks":0,"total_ticks":0}
  {"rid":"r000006","id":"q5","key":"b4a9f080","backend":"heuristic","outcome":"hit","queue_ticks":0,"compute_ticks":0,"total_ticks":0}

The trace subcommand validates access logs (and reports the outcome
mix):

  $ ../../bin/dcsa_synth.exe trace acc1.jsonl
  valid access log: 6 record(s) (4 done, 2 hit, 0 shed, 0 rejected)

With --slow-ms, records at or above the threshold additionally embed the
request's span tree; cache hits (0 ticks) stay lean.

  $ ../../bin/dcsa_synth.exe serve --batch 4 --access-log slow.jsonl --slow-ms 1 < script.txt > /dev/null
  $ grep -c '"spans":' slow.jsonl
  4
  $ grep '"outcome":"hit"' slow.jsonl | grep -c '"spans":'
  0
  [1]
  $ ../../bin/dcsa_synth.exe trace slow.jsonl
  valid access log: 6 record(s) (4 done, 2 hit, 0 shed, 0 rejected)

Rolling SLO metrics are also served as a Prometheus text exposition:

  $ ../../bin/dcsa_synth.exe serve <<'EOF' > prom.out
  > {"op":"submit","id":"p1","benchmark":"PCR"}
  > {"op":"result","id":"p1"}
  > {"op":"stats","format":"prometheus"}
  > EOF
  $ grep -c '"ok":true,"op":"stats","format":"prometheus"' prom.out
  1
  $ grep -o 'dcsa_submitted_total 1' prom.out
  dcsa_submitted_total 1
  $ grep -o 'dcsa_request_latency_count 1' prom.out
  dcsa_request_latency_count 1
  $ grep -o '# TYPE dcsa_request_latency histogram' prom.out
  # TYPE dcsa_request_latency histogram

Request-scoped tracing: --trace and --folded record every request as one
merged span tree (queue wait + compute) on its own track, timed by the
server's virtual tick, and export it on shutdown.  Both artifacts are
deterministic and self-validating.

  $ ../../bin/dcsa_synth.exe serve --batch 4 --trace serve_trace.json --folded serve.folded < script.txt > /dev/null
  wrote serve_trace.json
  wrote serve.folded
  $ ../../bin/dcsa_synth.exe trace serve_trace.json
  valid Chrome trace: 44 span(s), 294 counter sample(s), 0 instant(s) on 13 track(s)
  categories: place, route, schedule, scope, serve, stage, task
  $ ../../bin/dcsa_synth.exe trace serve.folded
  valid folded stacks: 38 stack(s), 44 unit(s) total

Malformed observability artifacts are reported line by line:

  $ printf 'a;b 3\nnospace\nc; 0\n' > bad.folded
  $ ../../bin/dcsa_synth.exe trace bad.folded
  bad.folded:2: expected 'stack value' (no space found)
  bad.folded:3: span value must be >= 1
  dcsa-synth: 2 malformed line(s), first: bad.folded:2: expected 'stack value' (no space found)
  [124]
  $ printf '{"rid":"r1"}\n' > bad.jsonl
  $ ../../bin/dcsa_synth.exe trace --format access bad.jsonl
  bad.jsonl:1: missing or mistyped field(s): id, key, backend, outcome, queue_ticks, compute_ticks, total_ticks
  dcsa-synth: 1 malformed line(s), first: bad.jsonl:1: missing or mistyped field(s): id, key, backend, outcome, queue_ticks, compute_ticks, total_ticks
  [124]
