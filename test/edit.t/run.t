A seeded edit-sequence replay: one inline assay followed by single-op
duration edits, served with --similarity.  The first request computes
cold; each edit lands within the similarity threshold of its
predecessor and is warm-started, answering with outcome "near-hit" in
the access log and a "near" section in the stats.

  $ cat > edits.jsonl <<'EOF'
  > {"op":"submit","id":"e0","assay":"assay \"edit\"\nfluid a 4e-7\nfluid b 1e-6\nop 0 mix 5 a\nop 1 heat 4 b\nop 2 mix 6 a\nedge 0 1\nedge 1 2","alloc":[2,2,0,0]}
  > {"op":"result","id":"e0"}
  > {"op":"submit","id":"e1","assay":"assay \"edit\"\nfluid a 4e-7\nfluid b 1e-6\nop 0 mix 5 a\nop 1 heat 6 b\nop 2 mix 6 a\nedge 0 1\nedge 1 2","alloc":[2,2,0,0]}
  > {"op":"result","id":"e1"}
  > {"op":"submit","id":"e2","assay":"assay \"edit\"\nfluid a 4e-7\nfluid b 1e-6\nop 0 mix 5 a\nop 1 heat 6 b\nop 2 mix 7 a\nedge 0 1\nedge 1 2","alloc":[2,2,0,0]}
  > {"op":"result","id":"e2"}
  > {"op":"stats"}
  > EOF

Warm-start decisions and payload bytes are a pure function of the
request script: the responses and the access log are byte-identical
across --jobs values.  (The stats line is excluded from the comparison
only because it prints the server's own jobs setting.)

  $ ../../bin/dcsa_synth.exe serve --similarity --jobs 1 --access-log acc1.jsonl < edits.jsonl > out1.json
  $ ../../bin/dcsa_synth.exe serve --similarity --jobs 2 --access-log acc2.jsonl < edits.jsonl > out2.json
  $ head -6 out1.json > out1.head && head -6 out2.json > out2.head
  $ cmp out1.head out2.head && cmp acc1.jsonl acc2.jsonl && echo jobs-invariant
  jobs-invariant

The edited requests warm-start in one batch tick each (their seed is
still in the repair cache):

  $ cat acc1.jsonl
  {"rid":"r000001","id":"e0","key":"bca6b34e","backend":"heuristic","outcome":"done","queue_ticks":0,"compute_ticks":1,"total_ticks":1,"batch":1}
  {"rid":"r000002","id":"e1","key":"f73c5cfd","backend":"heuristic","outcome":"near-hit","queue_ticks":0,"compute_ticks":1,"total_ticks":1,"batch":2}
  {"rid":"r000003","id":"e2","key":"11bf685d","backend":"heuristic","outcome":"near-hit","queue_ticks":0,"compute_ticks":1,"total_ticks":1,"batch":3}

  $ grep -c '"outcome":"near-hit"' acc1.jsonl
  2

The trace validator accepts the near-hit outcome and reports it in the
mix:

  $ ../../bin/dcsa_synth.exe trace acc1.jsonl
  valid access log: 3 record(s) (1 done, 0 hit, 0 shed, 0 rejected, 2 near-hit)

The stats carry the near section — two near-hits, no fallbacks:

  $ grep -o '"near":{"hits":[0-9]*,"fallbacks":[0-9]*' out1.json
  "near":{"hits":2,"fallbacks":0

The TCP transport answers the identical script with byte-identical
responses — near-hits included:

  $ ../../bin/dcsa_synth.exe serve --similarity --tcp 0 --port-file port 2>tcp.err &
  $ ../../bin/dcsa_synth.exe client --port-file port < edits.jsonl > tcp.out
  $ ../../bin/dcsa_synth.exe client --port-file port <<'EOF' > /dev/null
  > {"op":"shutdown"}
  > EOF
  $ wait
  $ cmp out1.json tcp.out && echo stdio-tcp-identical
  stdio-tcp-identical

Without --similarity the same script computes every request cold — no
near path, and the stats keep their similarity-free shape:

  $ ../../bin/dcsa_synth.exe serve --access-log cold_acc.jsonl < edits.jsonl > cold.json
  $ grep -c '"outcome":"near-hit"' cold_acc.jsonl
  0
  [1]
  $ grep -c '"near":' cold.json
  0
  [1]
