(* Differential equivalence suite for the hot-path optimizations: the
   incremental SA energy against a from-scratch recompute, the
   array-backed Rgrid queries against their retained list-based
   references, and the BFS heuristic field against the per-destination
   Manhattan fold.  These properties are the contract that lets the
   optimized inner loops replace the originals without moving a single
   byte of synthesis output. *)

module Chip = Mfb_place.Chip
module Energy = Mfb_place.Energy
module Moves = Mfb_place.Moves
module Annealer = Mfb_place.Annealer
module Rgrid = Mfb_route.Rgrid
module Astar = Mfb_route.Astar
module Interval = Mfb_util.Interval
module Fluid = Mfb_bioassay.Fluid
module Allocation = Mfb_component.Allocation
module Rng = Mfb_util.Rng

let qtest ?(count = 60) name gen prop =
  (* A per-test fixed seed keeps property tests reproducible run to run. *)
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

let components_of vector =
  Array.of_list (Allocation.components (Allocation.of_vector vector))

(* --- Incremental energy ------------------------------------------------ *)

(* Replays the annealer's delta discipline — measure the touched terms
   after the move, undo, measure before, redo — while force-accepting
   every legal move (the worst case for drift accumulation), and checks
   the running value against [Annealer.objective] at every step. *)
let prop_incremental_energy =
  qtest ~count:40 "incremental energy tracks the from-scratch objective"
    QCheck2.Gen.(triple (int_bound 10000) (int_range 2 6) (int_bound 8))
    (fun (seed, n_mixers, extra_nets) ->
      let comps = components_of (n_mixers, 1, 1, 1) in
      let n = Array.length comps in
      let rng = Rng.create seed in
      let chip = Chip.random rng comps in
      let nets =
        List.init (n + extra_nets) (fun _ ->
            let a = Rng.int rng n and b = Rng.int rng n in
            { Energy.a; b; cp = 0.5 +. Rng.float rng 2.5 })
      in
      let index = Energy.index ~n_components:n nets in
      let inc = ref (Annealer.objective chip nets) in
      let accepted = ref 0 in
      let ok = ref true in
      for _ = 1 to 120 do
        match Moves.random_move_touched rng chip with
        | None -> ()
        | Some (touched, undo) ->
          let new_net, _ = Energy.incident_total chip index touched in
          let new_cmp, _ = Energy.partial_compaction chip touched in
          let saved =
            List.map (fun i -> (i, chip.Chip.places.(i))) touched
          in
          undo ();
          let old_net, _ = Energy.incident_total chip index touched in
          let old_cmp, _ = Energy.partial_compaction chip touched in
          List.iter (fun (i, p) -> chip.Chip.places.(i) <- p) saved;
          inc :=
            !inc +. (new_net -. old_net)
            +. (0.01 *. (new_cmp -. old_cmp));
          incr accepted;
          let full = Annealer.objective chip nets in
          if Float.abs (!inc -. full) > 1e-6 then ok := false;
          if !accepted mod 16 = 0 then begin
            (* Re-sync contract: after the full recompute the tracked
               value equals the from-scratch objective exactly. *)
            inc := full;
            if not (Float.equal !inc (Annealer.objective chip nets)) then
              ok := false
          end
      done;
      !ok)

(* --- Rgrid occupation index -------------------------------------------- *)

let fluids =
  [| Fluid.make ~name:"df0" ~diffusion:1e-5;
     Fluid.make ~name:"df1" ~diffusion:1e-7;
     Fluid.make ~name:"df2" ~diffusion:1e-9 |]

(* Lattice times (multiples of 0.25) make exact end coincidences — the
   boundaries the prefix/suffix split pivots on — common instead of
   measure-zero. *)
let occs_gen =
  QCheck2.Gen.(
    list_size (int_bound 12) (triple (int_bound 120) (int_bound 12) (int_bound 2)))

let agree grid cell iv fluid =
  Rgrid.conflict_free grid cell iv fluid
  = Rgrid.conflict_free_ref grid cell iv fluid
  && Float.equal
       (Rgrid.required_delay grid cell iv fluid)
       (Rgrid.required_delay_ref grid cell iv fluid)
  && Float.equal
       (Rgrid.wash_debt grid cell ~at:(Interval.lo iv) fluid)
       (Rgrid.wash_debt_ref grid cell ~at:(Interval.lo iv) fluid)

let prop_rgrid_differential =
  qtest ~count:200 "indexed Rgrid queries match the list references"
    QCheck2.Gen.(
      pair occs_gen (triple (int_bound 130) (int_bound 12) (int_bound 2)))
    (fun (occs, (qlo, qdur, qf)) ->
      let chip = Chip.scanline (components_of (1, 0, 0, 0)) in
      let grid = Rgrid.create ~we:10. chip in
      let cell = (0, 0) in
      List.iter
        (fun (lo, dur, f) ->
          let lo = float_of_int lo *. 0.25 in
          Rgrid.add_occupation grid cell
            { Rgrid.interval =
                Interval.make lo (lo +. (float_of_int dur *. 0.25));
              fluid = fluids.(f) })
        occs;
      let fluid = fluids.(qf) in
      let lo = float_of_int qlo *. 0.25 in
      let iv = Interval.make lo (lo +. (float_of_int qdur *. 0.25)) in
      (* The generated query plus boundary probes at every occupation
         end: exact coincidences, zero-length windows, straddles. *)
      let queries =
        iv
        :: List.concat_map
             (fun (o : Rgrid.occupation) ->
               let hi = Interval.hi o.interval in
               [ Interval.make hi (hi +. 0.5);
                 Interval.make (Float.max 0. (hi -. 0.25)) (hi +. 0.25);
                 Interval.make hi hi ])
             (Rgrid.occupations grid cell)
      in
      List.for_all (fun iv -> agree grid cell iv fluid) queries
      && begin
        (* Interleave a write and re-query everything: the index must
           refresh, not serve stale answers. *)
        Rgrid.add_occupation grid cell { Rgrid.interval = iv; fluid };
        List.for_all
          (fun iv ->
            Array.for_all (fun f -> agree grid cell iv f) fluids)
          queries
      end)

(* --- BFS heuristic field ------------------------------------------------ *)

let prop_heuristic_field =
  qtest ~count:120 "BFS heuristic field = Manhattan fold on every cell"
    QCheck2.Gen.(
      triple (int_range 1 24) (int_range 1 24)
        (list_size (int_range 1 6) (pair (int_bound 23) (int_bound 23))))
    (fun (w, h, dsts) ->
      let dsts = List.map (fun (x, y) -> (x mod w, y mod h)) dsts in
      let field = Astar.heuristic_field ~w ~h dsts in
      let ok = ref true in
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          let fold =
            List.fold_left
              (fun acc d -> Float.min acc (Astar.manhattan (x, y) d))
              infinity dsts
          in
          if not (Float.equal (float_of_int field.((y * w) + x)) fold) then
            ok := false
        done
      done;
      !ok)

let suites =
  [ ( "perf.equiv",
      [ prop_incremental_energy; prop_rgrid_differential;
        prop_heuristic_field ] ) ]
