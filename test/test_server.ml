(* Tests for the serving layer: content-addressed cache keys, the
   bounded priority queue, the wire protocol, and end-to-end server
   behaviour (cache transparency, admission control, determinism). *)

module Json = Mfb_util.Json
module Cache_key = Mfb_server.Cache_key
module Job_queue = Mfb_server.Job_queue
module P = Mfb_server.Protocol
module Server = Mfb_server.Server
module Client = Mfb_server.Client
module Config = Mfb_core.Config
module Allocation = Mfb_component.Allocation

let qtest = Test_util.qtest

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let parse_assay text =
  match Mfb_bioassay.Assay_file.parse text with
  | Ok g -> g
  | Error e ->
    Alcotest.failf "assay parse: %a" Mfb_bioassay.Assay_file.pp_error e

(* --- cache-key canonicalization --- *)

(* One structural graph, five textual spellings. *)
let base_assay =
  "assay \"t\"\n\
   fluid a 4e-7\n\
   fluid b 1e-6\n\
   op 0 mix 5 a\n\
   op 1 heat 4 b\n\
   op 2 detect 3 a\n\
   edge 0 1\n\
   edge 1 2\n"

(* Same graph: comments, blank lines, tabs-as-spaces, shuffled line
   order. *)
let messy_assay =
  "# a comment\n\
   assay \"t\"\n\
   fluid b 1e-6\n\
   fluid a 4e-7\n\
   \n\
   edge 1 2\n\
   op 2   detect   3   a    # trailing comment\n\
   op 0 mix 5 a\n\
   \n\
   edge 0 1\n\
   op 1 heat 4 b\n"

(* Same graph with the dense operation ids permuted 0->2, 1->0, 2->1:
   the op named 2 is now the mix, edges follow the relabelling. *)
let relabelled_assay =
  "assay \"t\"\n\
   fluid a 4e-7\n\
   fluid b 1e-6\n\
   op 2 mix 5 a\n\
   op 0 heat 4 b\n\
   op 1 detect 3 a\n\
   edge 2 0\n\
   edge 0 1\n"

let diffusion_assay =
  "assay \"t\"\n\
   fluid a 5e-7\n\
   fluid b 1e-6\n\
   op 0 mix 5 a\n\
   op 1 heat 4 b\n\
   op 2 detect 3 a\n\
   edge 0 1\n\
   edge 1 2\n"

let duration_assay =
  "assay \"t\"\n\
   fluid a 4e-7\n\
   fluid b 1e-6\n\
   op 0 mix 6 a\n\
   op 1 heat 4 b\n\
   op 2 detect 3 a\n\
   edge 0 1\n\
   edge 1 2\n"

let structure_assay =
  "assay \"t\"\n\
   fluid a 4e-7\n\
   fluid b 1e-6\n\
   op 0 mix 5 a\n\
   op 1 heat 4 b\n\
   op 2 detect 3 a\n\
   edge 0 1\n\
   edge 0 2\n"

let key_of ?(flow = "ours") ?(config = Config.default) ?allocation text =
  let graph = parse_assay text in
  let allocation =
    match allocation with
    | Some a -> a
    | None -> Allocation.minimal_for (parse_assay base_assay)
  in
  Cache_key.make ~flow ~config ~graph ~allocation ()

let test_key_textual_invariance () =
  let base = key_of base_assay in
  Alcotest.(check bool)
    "whitespace/comments/line order" true
    (Cache_key.equal base (key_of messy_assay));
  Alcotest.(check bool)
    "op-id relabelling" true
    (Cache_key.equal base (key_of relabelled_assay));
  Alcotest.(check bool)
    "fingerprints agree" true
    (Cache_key.graph_fingerprint (parse_assay base_assay)
    = Cache_key.graph_fingerprint (parse_assay relabelled_assay))

let test_key_content_sensitivity () =
  let base = key_of base_assay in
  let differs name k =
    Alcotest.(check bool) name false (Cache_key.equal base k)
  in
  differs "diffusion coefficient" (key_of diffusion_assay);
  differs "op duration" (key_of duration_assay);
  differs "graph structure" (key_of structure_assay);
  differs "flow" (key_of ~flow:"ba" base_assay);
  differs "allocation"
    (key_of ~allocation:(Allocation.of_vector (2, 1, 0, 1)) base_assay);
  Alcotest.(check bool)
    "structure fingerprint differs" false
    (Cache_key.graph_fingerprint (parse_assay base_assay)
    = Cache_key.graph_fingerprint (parse_assay structure_assay))

let test_key_config_sensitivity () =
  let base = key_of base_assay in
  let differs name config =
    Alcotest.(check bool) name false
      (Cache_key.equal base (key_of ~config base_assay))
  in
  differs "tc" { Config.default with tc = 3.0 };
  differs "we" { Config.default with we = 11.0 };
  differs "beta" { Config.default with beta = 0.5 };
  differs "gamma" { Config.default with gamma = 0.5 };
  differs "seed" { Config.default with seed = 43 };
  differs "sa_restarts" { Config.default with sa_restarts = 2 };
  differs "sa params"
    {
      Config.default with
      sa = { Config.default.sa with Mfb_place.Annealer.i_max = 151 };
    };
  differs "backend" { Config.default with backend = Mfb_schedule.Portfolio.Exact };
  differs "exact_fuel" { Config.default with exact_fuel = 1_000 }

let test_key_backend_sensitivity () =
  (* Regression for the backend-blind key: every backend must key its
     own cache slot, or an exact request would replay a heuristic
     result. *)
  let key backend = key_of ~config:{ Config.default with backend } base_assay in
  let all = List.map key Mfb_schedule.Portfolio.all_backends in
  List.iteri
    (fun i ki ->
      List.iteri
        (fun j kj ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "backend %d vs %d" i j)
              false (Cache_key.equal ki kj))
        all)
    all

let test_key_hex_stable () =
  let k = key_of base_assay in
  Alcotest.(check string) "hex is hex" (Cache_key.to_hex k)
    (Cache_key.to_hex (key_of messy_assay));
  Alcotest.(check int) "16 nibbles" 16 (String.length (Cache_key.to_hex k))

(* --- job queue --- *)

let submit_ok q ~now ~id ~priority ?deadline payload =
  match Job_queue.submit q ~now ~id ~priority ?deadline payload with
  | Job_queue.Admitted -> ()
  | Job_queue.Displaced _ -> Alcotest.failf "%s unexpectedly displaced" id
  | Job_queue.Refused r -> Alcotest.failf "%s refused: %s" id r

let ids items = List.map (fun (it : _ Job_queue.item) -> it.Job_queue.id) items

let test_queue_dispatch_order () =
  let q = Job_queue.create ~depth:8 () in
  submit_ok q ~now:0 ~id:"a" ~priority:0 ();
  submit_ok q ~now:0 ~id:"b" ~priority:5 ();
  submit_ok q ~now:0 ~id:"c" ~priority:0 ();
  submit_ok q ~now:0 ~id:"d" ~priority:5 ();
  Alcotest.(check (list string))
    "priority desc, FIFO within" [ "b"; "d"; "a"; "c" ]
    (ids (Job_queue.queued q));
  Alcotest.(check bool) "position of a" true (Job_queue.position q "a" = Some 2);
  Alcotest.(check bool) "absent id" true (Job_queue.position q "z" = None);
  let dispatched, expired = Job_queue.pop_batch q ~now:1 ~max:3 in
  Alcotest.(check (list string)) "batch" [ "b"; "d"; "a" ] (ids dispatched);
  Alcotest.(check int) "nothing expired" 0 (List.length expired);
  Alcotest.(check int) "c remains" 1 (Job_queue.length q)

let test_queue_admission () =
  let q = Job_queue.create ~depth:2 () in
  submit_ok q ~now:0 ~id:"a" ~priority:1 ();
  submit_ok q ~now:0 ~id:"b" ~priority:0 ();
  (match Job_queue.submit q ~now:0 ~id:"c" ~priority:0 () with
   | Job_queue.Refused _ -> ()
   | _ -> Alcotest.fail "equal-priority submit to full queue must refuse");
  (match Job_queue.submit q ~now:0 ~id:"d" ~priority:2 () with
   | Job_queue.Displaced shed ->
     Alcotest.(check string) "weakest shed" "b" shed.Job_queue.id
   | _ -> Alcotest.fail "higher-priority submit must displace");
  Alcotest.(check (list string))
    "queue after displacement" [ "d"; "a" ]
    (ids (Job_queue.queued q));
  Alcotest.check_raises "depth < 1"
    (Invalid_argument "Job_queue.create: depth < 1") (fun () ->
      ignore (Job_queue.create ~depth:0 ()))

let test_queue_deadlines () =
  let q = Job_queue.create ~depth:8 () in
  submit_ok q ~now:0 ~id:"a" ~priority:0 ~deadline:0 ();
  submit_ok q ~now:0 ~id:"b" ~priority:0 ~deadline:5 ();
  submit_ok q ~now:0 ~id:"c" ~priority:0 ();
  let dispatched, expired = Job_queue.pop_batch q ~now:1 ~max:10 in
  Alcotest.(check (list string)) "a expired" [ "a" ] (ids expired);
  Alcotest.(check (list string)) "b,c dispatched" [ "b"; "c" ] (ids dispatched);
  (* expired jobs do not consume batch slots *)
  let q2 = Job_queue.create ~depth:8 () in
  submit_ok q2 ~now:0 ~id:"x" ~priority:9 ~deadline:0 ();
  submit_ok q2 ~now:0 ~id:"y" ~priority:0 ();
  let dispatched, expired = Job_queue.pop_batch q2 ~now:1 ~max:1 in
  Alcotest.(check (list string)) "x expired" [ "x" ] (ids expired);
  Alcotest.(check (list string)) "y still dispatched" [ "y" ] (ids dispatched)

(* --- protocol --- *)

let sample_requests =
  [
    P.Submit
      {
        id = "r1";
        priority = 0;
        deadline = None;
        flow = `Ours;
        spec = P.Benchmark "PCR";
        overrides = P.no_overrides;
        trace = None;
      };
    P.Submit
      {
        id = "r2";
        priority = 7;
        deadline = Some 3;
        flow = `Ba;
        spec = P.Assay { text = base_assay; alloc = Some (2, 1, 0, 1) };
        overrides = { P.no_overrides with o_seed = Some 9; o_tc = Some 1.5; o_sa_restarts = Some 2 };
        trace = Some "w0";
      };
    P.Submit
      {
        id = "r3";
        priority = 0;
        deadline = None;
        flow = `Ours;
        spec = P.Benchmark "PCR";
        overrides =
          { P.no_overrides with
            o_backend = Some Mfb_schedule.Portfolio.Portfolio };
        trace = None;
      };
    P.Status "r1";
    P.Result "r2";
    P.Repair
      {
        id = "p1";
        target = "r1";
        defects =
          [ Mfb_repair.Defect.Cell (3, 4); Mfb_repair.Defect.Component 2 ];
      };
    P.Stats;
    P.Stats_prom;
    P.Shutdown;
  ]

let sample_responses =
  [
    P.Submitted { id = "r1"; key = "00ff00ff00ff00ff" };
    P.Rejected { op = "submit"; id = "r9"; reason = "queue full" };
    P.Job_status { id = "r1"; state = "queued" };
    P.Job_result
      { id = "r2"; key = "00ff00ff00ff00ff"; result = Json.Obj [ ("x", Json.Int 1) ];
        spans = None };
    P.Job_result
      { id = "r4"; key = "00ff00ff00ff00ff"; result = Json.Obj [ ("x", Json.Int 1) ];
        spans = Some (Json.List [ Json.Obj [ ("name", Json.String "request") ] ]) };
    P.Repair_result
      {
        id = "p1";
        target = "r1";
        key = "00ff00ff00ff00ff";
        warm = true;
        report = Json.Obj [ ("survived", Json.Bool true) ];
      };
    P.Stats_text "# HELP dcsa_tick virtual tick\n";
    P.Stats_reply (Json.Obj [ ("submitted", Json.Int 3) ]);
    P.Goodbye Json.Null;
    P.Bad_request { id = None; message = "not json" };
    P.Bad_request { id = Some "r3"; message = "unknown id" };
  ]

let test_protocol_request_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (P.request_to_line r) true
        (P.request_of_line (P.request_to_line r) = Ok r))
    sample_requests

let test_protocol_response_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (P.response_to_line r) true
        (P.response_of_line (P.response_to_line r) = Ok r))
    sample_responses

let test_protocol_malformed () =
  let is_error = function Error _ -> true | Ok _ -> false in
  List.iter
    (fun line ->
      Alcotest.(check bool) line true (is_error (P.request_of_line line)))
    [
      "nonsense";
      "{}";
      {|{"op":"fly"}|};
      {|{"op":"submit"}|};
      {|{"op":"submit","id":"a"}|};
      {|{"op":"submit","id":"a","benchmark":"PCR","assay":"x"}|};
      {|{"op":"submit","id":"a","benchmark":"PCR","priority":"high"}|};
      {|{"op":"repair","id":"p1"}|};
      {|{"op":"repair","id":"p1","target":"a","defects":[]}|};
      {|{"op":"repair","id":"p1","target":"a","defects":[{"kind":"hole"}]}|};
      {|{"op":"status"}|};
      {|[1,2]|};
    ]

(* --- server behaviour --- *)

let server ?(jobs = 1) ?(cache = 128) ?(depth = 64) ?(batch = 8)
    ?(repair_cache = 8) ?dispatch ?extra_stats ?access_log ?slow_threshold ()
    =
  Server.create
    {
      Server.default_config with
      jobs;
      cache_capacity = cache;
      queue_depth = depth;
      batch;
      repair_cache;
      flow_config = Config.default;
      dispatch;
      extra_stats;
      access_log;
      slow_threshold;
    }

let call_exn client req =
  match Client.call client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "call failed: %s" e

let submit ?(priority = 0) ?deadline ?(seed = None) ~id spec =
  P.Submit
    {
      id;
      priority;
      deadline;
      flow = `Ours;
      spec;
      overrides = { P.no_overrides with P.o_seed = seed };
      trace = None;
    }

let pcr = P.Benchmark "PCR"

let test_server_cache_hit_identical () =
  let s = server () in
  let c = Client.in_process s in
  (match call_exn c (submit ~id:"a" pcr) with
   | P.Submitted _ -> ()
   | r -> Alcotest.failf "submit: %s" (P.response_to_line r));
  let r1 =
    match call_exn c (P.Result "a") with
    | P.Job_result { result; _ } -> Json.to_string result
    | r -> Alcotest.failf "result: %s" (P.response_to_line r)
  in
  ignore (call_exn c (submit ~id:"b" pcr));
  let r2 =
    match call_exn c (P.Result "b") with
    | P.Job_result { result; _ } -> Json.to_string result
    | r -> Alcotest.failf "result: %s" (P.response_to_line r)
  in
  Alcotest.(check string) "byte-identical payload" r1 r2;
  match call_exn c P.Stats with
  | P.Stats_reply stats ->
    let get path =
      List.fold_left
        (fun j k -> Option.bind j (Json.member k))
        (Some stats) path
    in
    Alcotest.(check bool) "one compute" true
      (get [ "computed" ] = Some (Json.Int 1));
    Alcotest.(check bool) "one hit" true
      (get [ "cache"; "hits" ] = Some (Json.Int 1))
  | r -> Alcotest.failf "stats: %s" (P.response_to_line r)

let test_server_backend_cache_not_shared () =
  (* Regression: before the backend reached Cache_key, an exact request
     structurally identical to a cached heuristic one replayed the
     heuristic's result.  Now it must miss, recompute, and answer with
     the (better) exact schedule. *)
  let s = server () in
  let c = Client.in_process s in
  let submit_backend ~id o_backend =
    P.Submit
      {
        id;
        priority = 0;
        deadline = None;
        flow = `Ours;
        spec = pcr;
        overrides = { P.no_overrides with o_backend };
        trace = None;
      }
  in
  let key id req =
    match call_exn c req with
    | P.Submitted { key; _ } -> key
    | r -> Alcotest.failf "submit %s: %s" id (P.response_to_line r)
  in
  let k_heur = key "h" (submit_backend ~id:"h" None) in
  let k_exact =
    key "e" (submit_backend ~id:"e" (Some Mfb_schedule.Portfolio.Exact))
  in
  Alcotest.(check bool) "distinct cache keys" false
    (String.equal k_heur k_exact);
  let result id =
    match call_exn c (P.Result id) with
    | P.Job_result { result; _ } -> Json.to_string result
    | r -> Alcotest.failf "result %s: %s" id (P.response_to_line r)
  in
  let r_heur = result "h" in
  let r_exact = result "e" in
  Alcotest.(check bool) "exact payload is not the cached heuristic one"
    false
    (String.equal r_heur r_exact);
  match call_exn c P.Stats with
  | P.Stats_reply stats ->
    let get path =
      List.fold_left
        (fun j k -> Option.bind j (Json.member k))
        (Some stats) path
    in
    Alcotest.(check bool) "both requests computed" true
      (get [ "computed" ] = Some (Json.Int 2));
    Alcotest.(check bool) "no cross-backend cache hit" true
      (get [ "cache"; "hits" ] = Some (Json.Int 0))
  | r -> Alcotest.failf "stats: %s" (P.response_to_line r)

let test_server_handle_line_hygiene () =
  let s = server () in
  Alcotest.(check bool) "blank" true (Server.handle_line s "   " = None);
  Alcotest.(check bool) "comment" true
    (Server.handle_line s "# warm-up note" = None);
  (match Server.handle_line s "{oops" with
   | Some line ->
     (match P.response_of_line line with
      | Ok (P.Bad_request _) -> ()
      | _ -> Alcotest.failf "expected error response, got %s" line)
   | None -> Alcotest.fail "malformed line must produce a response");
  match Server.handle_line s {|{"op":"shutdown"}|} with
  | Some _ -> Alcotest.(check bool) "stopping" true (Server.shutting_down s)
  | None -> Alcotest.fail "shutdown must answer"

let test_server_rejections () =
  let s = server () in
  let c = Client.in_process s in
  (match call_exn c (submit ~id:"a" (P.Benchmark "NOPE")) with
   | P.Rejected { reason; _ } ->
     Alcotest.(check bool) "reason names benchmark" true
       (contains ~sub:"NOPE" reason)
   | r -> Alcotest.failf "unknown benchmark: %s" (P.response_to_line r));
  ignore (call_exn c (submit ~id:"dup" pcr));
  (match call_exn c (submit ~id:"dup" pcr) with
   | P.Rejected { reason = "duplicate id"; _ } -> ()
   | r -> Alcotest.failf "duplicate id: %s" (P.response_to_line r));
  (match call_exn c (P.Result "ghost") with
   | P.Bad_request { id = Some "ghost"; _ } -> ()
   | r -> Alcotest.failf "unknown result: %s" (P.response_to_line r));
  match call_exn c (P.Status "ghost") with
  | P.Bad_request _ -> ()
  | r -> Alcotest.failf "unknown status: %s" (P.response_to_line r)

let test_server_admission_and_shedding () =
  (* batch larger than anything we queue: dispatch only on demand *)
  let s = server ~depth:2 ~batch:50 () in
  let c = Client.in_process s in
  let seed n = Some n in
  ignore (call_exn c (submit ~id:"a" ~seed:(seed 1) pcr));
  ignore (call_exn c (submit ~id:"b" ~seed:(seed 2) pcr));
  (match call_exn c (submit ~id:"c" ~seed:(seed 3) pcr) with
   | P.Rejected { op = "submit"; id = "c"; _ } -> ()
   | r -> Alcotest.failf "overflow submit: %s" (P.response_to_line r));
  (match call_exn c (submit ~id:"d" ~priority:3 ~seed:(seed 4) pcr) with
   | P.Submitted { id = "d"; _ } -> ()
   | r -> Alcotest.failf "priority submit: %s" (P.response_to_line r));
  (* "b" (lowest priority, latest) was displaced to admit "d" *)
  (match call_exn c (P.Status "b") with
   | P.Job_status { state = "shed"; _ } -> ()
   | r -> Alcotest.failf "displaced status: %s" (P.response_to_line r));
  (match call_exn c (P.Result "b") with
   | P.Rejected { op = "result"; id = "b"; reason } ->
     Alcotest.(check bool) "reason mentions displacement" true
       (contains ~sub:"displaced" reason)
   | r -> Alcotest.failf "displaced result: %s" (P.response_to_line r));
  (match call_exn c (P.Status "a") with
   | P.Job_status { state = "queued"; _ } -> ()
   | r -> Alcotest.failf "queued status: %s" (P.response_to_line r));
  (match call_exn c (P.Result "a") with
   | P.Job_result _ -> ()
   | r -> Alcotest.failf "queued result: %s" (P.response_to_line r));
  match call_exn c (P.Status "a") with
  | P.Job_status { state = "done"; _ } -> ()
  | r -> Alcotest.failf "done status: %s" (P.response_to_line r)

let test_server_deadline_shed () =
  let s = server ~batch:3 () in
  let c = Client.in_process s in
  ignore (call_exn c (submit ~id:"a" ~seed:(Some 1) pcr));
  ignore (call_exn c (submit ~id:"b" ~deadline:0 ~seed:(Some 2) pcr));
  (* third submission fills the batch and triggers dispatch at tick 1,
     past b's deadline of tick 0 *)
  ignore (call_exn c (submit ~id:"c" ~seed:(Some 3) pcr));
  (match call_exn c (P.Status "b") with
   | P.Job_status { state = "shed"; _ } -> ()
   | r -> Alcotest.failf "deadline status: %s" (P.response_to_line r));
  (match call_exn c (P.Result "b") with
   | P.Rejected { reason; _ } ->
     Alcotest.(check bool) "reason mentions deadline" true
       (contains ~sub:"deadline" reason)
   | r -> Alcotest.failf "deadline result: %s" (P.response_to_line r));
  List.iter
    (fun id ->
      match call_exn c (P.Result id) with
      | P.Job_result _ -> ()
      | r -> Alcotest.failf "%s result: %s" id (P.response_to_line r))
    [ "a"; "c" ]

(* --- bounded line reading --- *)

let with_input text f =
  let path = Filename.temp_file "bounded" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      In_channel.with_open_text path f)

let test_bounded_reader_lines () =
  with_input "alpha\nbeta\n" (fun ic ->
      Alcotest.(check bool) "first" true
        (P.input_line_bounded ic = P.Line "alpha");
      Alcotest.(check bool) "second" true
        (P.input_line_bounded ic = P.Line "beta");
      Alcotest.(check bool) "eof" true (P.input_line_bounded ic = P.Eof));
  with_input "" (fun ic ->
      Alcotest.(check bool) "empty input" true (P.input_line_bounded ic = P.Eof))

let test_bounded_reader_partial_line_at_eof () =
  with_input "complete\npartial" (fun ic ->
      Alcotest.(check bool) "complete" true
        (P.input_line_bounded ic = P.Line "complete");
      Alcotest.(check bool) "partial still surfaces" true
        (P.input_line_bounded ic = P.Line "partial");
      Alcotest.(check bool) "then eof" true (P.input_line_bounded ic = P.Eof))

let test_bounded_reader_oversized_resyncs () =
  let big = String.make 100 'x' in
  with_input (big ^ "\nnext\n") (fun ic ->
      (* the oversized line is consumed whole: its length is reported
         and the following line is read intact *)
      Alcotest.(check bool) "oversized with length" true
        (P.input_line_bounded ~max_bytes:10 ic = P.Oversized 100);
      Alcotest.(check bool) "resynced" true
        (P.input_line_bounded ~max_bytes:10 ic = P.Line "next"));
  (* a line of exactly max_bytes is not oversized *)
  with_input "1234567890\n" (fun ic ->
      Alcotest.(check bool) "at the cap" true
        (P.input_line_bounded ~max_bytes:10 ic = P.Line "1234567890"));
  (* oversized at EOF without a trailing newline still reports *)
  with_input (String.make 20 'y') (fun ic ->
      Alcotest.(check bool) "oversized at eof" true
        (P.input_line_bounded ~max_bytes:10 ic = P.Oversized 20))

let test_serve_answers_oversized_line () =
  (* end to end: an oversized request line gets a structured error and
     the server keeps serving the next request *)
  let s = server () in
  let big =
    Printf.sprintf {|{"op":"submit","id":"big","assay":"%s"}|}
      (String.make (P.default_max_line_bytes + 64) 'a')
  in
  let script = big ^ "\n" ^ {|{"op":"stats"}|} ^ "\n{\"op\":\"shutdown\"}\n" in
  let out_path = Filename.temp_file "serve_out" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out_path)
    (fun () ->
      with_input script (fun input ->
          Out_channel.with_open_text out_path (fun output ->
              Server.serve ~input ~output s));
      let lines =
        In_channel.with_open_text out_path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      match lines with
      | [ err; stats; goodbye ] ->
        (match P.response_of_line err with
         | Ok (P.Bad_request { message; _ }) ->
           Alcotest.(check bool) "says too long" true
             (contains ~sub:"too long" message)
         | _ -> Alcotest.fail "expected a bad-request error");
        (match P.response_of_line stats with
         | Ok (P.Stats_reply _) -> ()
         | _ -> Alcotest.fail "server must keep serving after oversized");
        (match P.response_of_line goodbye with
         | Ok (P.Goodbye _) -> ()
         | _ -> Alcotest.fail "expected goodbye")
      | lines -> Alcotest.failf "expected 3 lines, got %d" (List.length lines))

(* --- shutdown drains in-flight jobs --- *)

let test_shutdown_drains_queue () =
  let s = server ~batch:8 () in
  let c = Client.in_process s in
  (* three distinct jobs, below the batch threshold: all still queued *)
  List.iter
    (fun (id, seed) ->
      match call_exn c (submit ~id ~seed:(Some seed) pcr) with
      | P.Submitted _ -> ()
      | r -> Alcotest.failf "submit: %s" (P.response_to_line r))
    [ ("a", 1); ("b", 2); ("c", 3) ];
  (match call_exn c P.Shutdown with
   | P.Goodbye stats ->
     let member path =
       match Json.member path stats with
       | Some v -> v
       | None -> Alcotest.failf "missing stats field %s" path
     in
     (match member "queue" with
      | Json.Obj q ->
        Alcotest.(check bool) "queue drained" true
          (List.assoc_opt "queued" q = Some (Json.Int 0))
      | _ -> Alcotest.fail "queue stats not an object");
     Alcotest.(check bool) "all three computed" true
       (member "computed" = Json.Int 3)
   | r -> Alcotest.failf "shutdown: %s" (P.response_to_line r));
  (* the drained results are actually there *)
  List.iter
    (fun id ->
      match call_exn c (P.Result id) with
      | P.Job_result _ -> ()
      | r -> Alcotest.failf "%s after drain: %s" id (P.response_to_line r))
    [ "a"; "b"; "c" ]

(* --- dispatch and extra_stats hooks --- *)

let test_dispatch_hook_is_answer_transparent () =
  let calls = ref 0 in
  let dispatch jobs =
    incr calls;
    List.map
      (fun job ->
        {
          Server.d_payload = Server.run_job job;
          d_slot = Some 0;
          d_attempts = 1;
          d_spans = [];
        })
      jobs
  in
  let lines =
    List.map P.request_to_line
      [
        submit ~id:"h0" ~seed:(Some 0) pcr;
        submit ~id:"h1" ~seed:(Some 1) pcr;
        submit ~id:"h2" ~seed:(Some 0) pcr;
        P.Result "h0"; P.Result "h1"; P.Result "h2";
      ]
  in
  let run_script s lines = List.filter_map (Server.handle_line s) lines in
  let hooked = run_script (server ~batch:2 ~dispatch ()) lines in
  let plain = run_script (server ~batch:2 ()) lines in
  Alcotest.(check (list string)) "hooked = in-process" plain hooked;
  Alcotest.(check bool) "hook ran" true (!calls > 0)

let test_extra_stats_appended () =
  let extra_stats () = [ ("cluster", Json.Obj [ ("fleet", Json.Int 2) ]) ] in
  let s = server ~extra_stats () in
  (match Server.handle s P.Stats with
   | P.Stats_reply stats ->
     Alcotest.(check bool) "extra field present" true
       (Json.member "cluster" stats
       = Some (Json.Obj [ ("fleet", Json.Int 2) ]))
   | r -> Alcotest.failf "stats: %s" (P.response_to_line r));
  (* without the hook the stats payload has no such field *)
  match Server.handle (server ()) P.Stats with
  | P.Stats_reply stats ->
    Alcotest.(check bool) "absent by default" true
      (Json.member "cluster" stats = None)
  | r -> Alcotest.failf "stats: %s" (P.response_to_line r)

(* --- observability: access log, prometheus exposition, goodbye totals --- *)

let with_access_log ?slow_threshold ~jobs lines =
  let path = Filename.temp_file "access" ".jsonl" in
  let oc = open_out path in
  let s = server ~jobs ~batch:4 ~access_log:oc ?slow_threshold () in
  let responses = List.filter_map (Server.handle_line s) lines in
  ignore (Server.handle s P.Shutdown);
  close_out oc;
  let log = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  (responses, log)

let obs_script =
  List.map P.request_to_line
    [
      submit ~id:"a" ~seed:(Some 1) pcr;
      submit ~id:"b" ~seed:(Some 2) pcr;
      submit ~id:"c" ~seed:(Some 1) pcr;
      (* duplicate id: rejected, still logged *)
      submit ~id:"a" ~seed:(Some 3) pcr;
      P.Result "a"; P.Result "b"; P.Result "c";
    ]

let test_access_log_deterministic_across_jobs () =
  let r1, log1 = with_access_log ~jobs:1 obs_script in
  let r2, log2 = with_access_log ~jobs:2 obs_script in
  Alcotest.(check (list string)) "responses jobs=1 = jobs=2" r1 r2;
  Alcotest.(check string) "access log bytes jobs=1 = jobs=2" log1 log2;
  let lines = String.split_on_char '\n' (String.trim log1) in
  Alcotest.(check int) "one record per submit" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok doc ->
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (Printf.sprintf "field %s present" k)
              true
              (Json.member k doc <> None))
          [ "rid"; "id"; "key"; "backend"; "outcome"; "queue_ticks";
            "compute_ticks"; "total_ticks" ]
      | Error e -> Alcotest.failf "access record not JSON (%s): %s" e line)
    lines

let test_access_log_slow_spans () =
  (* threshold 0: every request is "slow", so every computed/hit record
     embeds its span tree; rejected records never do *)
  let _, log = with_access_log ~slow_threshold:0.0 ~jobs:1 obs_script in
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok doc ->
        let outcome = Json.member "outcome" doc in
        let has_spans = Json.member "spans" doc <> None in
        if outcome = Some (Json.String "rejected") then
          Alcotest.(check bool) "rejected: no spans" false has_spans
        else Alcotest.(check bool) "slow record has spans" true has_spans
      | Error e -> Alcotest.failf "access record not JSON: %s" e)
    (String.split_on_char '\n' (String.trim log))

let test_prometheus_exposition () =
  let s = server () in
  let c = Client.in_process s in
  ignore (call_exn c (submit ~id:"a" pcr));
  ignore (call_exn c (P.Result "a"));
  ignore (call_exn c (submit ~id:"b" pcr));
  ignore (call_exn c (P.Result "b"));
  match call_exn c P.Stats_prom with
  | P.Stats_text text ->
    List.iter
      (fun sub ->
        Alcotest.(check bool) (Printf.sprintf "contains %S" sub) true
          (let n = String.length sub in
           let rec scan i =
             i + n <= String.length text
             && (String.sub text i n = sub || scan (i + 1))
           in
           scan 0))
      [
        "# TYPE dcsa_submitted_total counter";
        "dcsa_submitted_total 2";
        "dcsa_cache_hits_total 1";
        "dcsa_request_latency_bucket{le=\"+Inf\"} 2";
        "dcsa_request_latency_count 2";
        "dcsa_queue_wait_ticks_count 1";
      ]
  | r -> Alcotest.failf "stats_prom: %s" (P.response_to_line r)

let test_goodbye_totals () =
  let s = server () in
  let c = Client.in_process s in
  ignore (call_exn c (submit ~id:"a" pcr));
  ignore (call_exn c (P.Result "a"));
  ignore (call_exn c (submit ~id:"b" pcr));
  match call_exn c P.Shutdown with
  | P.Goodbye stats ->
    let totals =
      match Json.member "totals" stats with
      | Some t -> t
      | None -> Alcotest.fail "goodbye missing totals"
    in
    let get path =
      List.fold_left
        (fun j k -> Option.bind j (Json.member k))
        (Some totals) path
    in
    Alcotest.(check bool) "cache hits total" true
      (get [ "cache"; "hits" ] = Some (Json.Int 1));
    Alcotest.(check bool) "queue submitted total" true
      (get [ "queue"; "submitted" ] = Some (Json.Int 2));
    Alcotest.(check bool) "cluster dispatched total" true
      (get [ "cluster"; "dispatched" ] = Some (Json.Int 0))
  | r -> Alcotest.failf "shutdown: %s" (P.response_to_line r)

let test_latency_histogram_tracks_requests () =
  let s = server () in
  let c = Client.in_process s in
  ignore (call_exn c (submit ~id:"a" pcr));
  ignore (call_exn c (P.Result "a"));
  ignore (call_exn c (submit ~id:"b" pcr));
  ignore (call_exn c (P.Result "b"));
  let h = Server.latency_histogram s in
  Alcotest.(check int) "two latencies" 2 (Mfb_util.Histogram.count h);
  (* virtual clock: the cache hit costs 0 ticks, the compute at least 1 *)
  Alcotest.(check (float 1e-9)) "min latency 0 ticks (hit)" 0.0
    (Mfb_util.Histogram.min_value h);
  Alcotest.(check bool) "max latency >= 1 tick (compute)" true
    (Mfb_util.Histogram.max_value h >= 1.0)

(* --- the repair op --- *)

module Defect = Mfb_repair.Defect

let repair_reply = function
  | P.Repair_result { report; warm; _ } -> (Json.to_string report, warm)
  | r -> Alcotest.failf "repair: %s" (P.response_to_line r)

let test_server_repair_warm_cold_identical () =
  let run ~repair_cache =
    let s = server ~repair_cache () in
    let c = Client.in_process s in
    ignore (call_exn c (submit ~id:"a" pcr));
    ignore (call_exn c (P.Result "a"));
    let report, warm =
      repair_reply
        (call_exn c
           (P.Repair
              { id = "p1"; target = "a"; defects = [ Defect.Cell (0, 0) ] }))
    in
    (report, warm, s)
  in
  let r_warm, warm, s = run ~repair_cache:8 in
  let r_cold, cold, _ = run ~repair_cache:0 in
  Alcotest.(check bool) "retained full result => warm" true warm;
  Alcotest.(check bool) "no retention => cold" false cold;
  Alcotest.(check string) "report bytes independent of cache temperature"
    r_warm r_cold;
  (* the virtual clock prices the temperature: warm repairs cost 1 tick *)
  let h = Server.repair_latency_histogram s in
  Alcotest.(check int) "one repair latency" 1 (Mfb_util.Histogram.count h);
  Alcotest.(check (float 1e-9)) "warm latency is 1 tick" 1.0
    (Mfb_util.Histogram.max_value h);
  (* stats gained the repair section *)
  match Server.stats_json s with
  | Json.Obj fields ->
    (match List.assoc_opt "repair" fields with
     | Some (Json.Obj rf) ->
       Alcotest.(check bool) "repairs total" true
         (List.assoc_opt "total" rf = Some (Json.Int 1));
       Alcotest.(check bool) "repairs warm" true
         (List.assoc_opt "warm" rf = Some (Json.Int 1))
     | _ -> Alcotest.fail "stats lost the repair section");
    Alcotest.(check bool) "prometheus repair series" true
      (contains ~sub:"dcsa_repair_latency" (Server.prometheus_stats s))
  | _ -> Alcotest.fail "stats is not an object"

let test_server_repair_jobs_invariant () =
  (* same script, different worker counts: repair report byte-identical *)
  let run jobs =
    let s = server ~jobs ~batch:2 () in
    let c = Client.in_process s in
    ignore (call_exn c (submit ~id:"a" ~seed:(Some 1) pcr));
    ignore (call_exn c (submit ~id:"b" ~seed:(Some 2) pcr));
    ignore (call_exn c (P.Result "a"));
    repair_reply
      (call_exn c
         (P.Repair
            { id = "p1"; target = "a"; defects = [ Defect.Cell (1, 1) ] }))
  in
  Alcotest.(check bool) "jobs=1 = jobs=2" true (run 1 = run 2)

let test_server_repair_drains_queued_target () =
  let s = server () in
  let c = Client.in_process s in
  ignore (call_exn c (submit ~id:"a" pcr));
  let _, warm =
    repair_reply
      (call_exn c
         (P.Repair
            { id = "p1"; target = "a"; defects = [ Defect.Cell (0, 0) ] }))
  in
  Alcotest.(check bool) "forced the batch, then warm" true warm;
  match call_exn c (P.Status "a") with
  | P.Job_status { state = "done"; _ } -> ()
  | r -> Alcotest.failf "target status: %s" (P.response_to_line r)

let test_server_repair_errors () =
  let s = server () in
  let c = Client.in_process s in
  ignore (call_exn c (submit ~id:"a" pcr));
  ignore (call_exn c (P.Result "a"));
  (match
     call_exn c
       (P.Repair
          { id = "p1"; target = "ghost"; defects = [ Defect.Cell (0, 0) ] })
   with
   | P.Bad_request { message; _ } ->
     Alcotest.(check bool) "unknown target" true
       (contains ~sub:"ghost" message)
   | r -> Alcotest.failf "unknown target: %s" (P.response_to_line r));
  (match
     call_exn c
       (P.Repair { id = "a"; target = "a"; defects = [ Defect.Cell (0, 0) ] })
   with
   | P.Rejected { op = "repair"; reason = "duplicate id"; _ } -> ()
   | r -> Alcotest.failf "duplicate id: %s" (P.response_to_line r));
  (match
     call_exn c
       (P.Repair
          { id = "p2"; target = "a"; defects = [ Defect.Cell (999, 999) ] })
   with
   | P.Rejected { op = "repair"; reason; _ } ->
     Alcotest.(check bool) "out-of-bounds cell named" true
       (contains ~sub:"999" reason)
   | r -> Alcotest.failf "invalid defect: %s" (P.response_to_line r));
  (* no repair succeeded, so the stats payload keeps its legacy shape *)
  match Server.stats_json s with
  | Json.Obj fields ->
    Alcotest.(check bool) "no repair section" true
      (List.assoc_opt "repair" fields = None)
  | _ -> Alcotest.fail "stats is not an object"

(* --- determinism: cold jobs=1 ≡ warm ≡ jobs=2, enforced by qcheck --- *)

(* A script is a list of submissions drawn from a tiny seed pool (so
   repeats are likely) followed by a result request per id. *)
let script_gen =
  QCheck2.Gen.(
    list_size (int_range 1 6) (pair (int_bound 3) (int_bound 2)))

let script_lines prefix spec_seeds =
  let submits =
    List.mapi
      (fun i (seed, priority) ->
        P.request_to_line
          (submit
             ~id:(Printf.sprintf "%s%d" prefix i)
             ~priority ~seed:(Some seed) pcr))
      spec_seeds
  in
  let results =
    List.mapi
      (fun i _ ->
        P.request_to_line (P.Result (Printf.sprintf "%s%d" prefix i)))
      spec_seeds
  in
  submits @ results

let run_script s lines = List.filter_map (Server.handle_line s) lines

let prop_server_responses_invariant =
  qtest ~count:20 "cold jobs=1 = warm = jobs=2 responses" script_gen
    (fun spec_seeds ->
      let lines = script_lines "q" spec_seeds in
      let cold = run_script (server ~jobs:1 ~batch:4 ()) lines in
      let parallel = run_script (server ~jobs:2 ~batch:4 ()) lines in
      let warm_server = server ~jobs:1 ~batch:4 () in
      (* prime the cache with the same jobs under different ids *)
      ignore (run_script warm_server (script_lines "w" spec_seeds));
      let warm = run_script warm_server lines in
      cold = parallel && cold = warm)

let suites =
  [
    ( "server.cache_key",
      [
        Alcotest.test_case "textual invariance" `Quick
          test_key_textual_invariance;
        Alcotest.test_case "content sensitivity" `Quick
          test_key_content_sensitivity;
        Alcotest.test_case "config sensitivity" `Quick
          test_key_config_sensitivity;
        Alcotest.test_case "hex form" `Quick test_key_hex_stable;
        Alcotest.test_case "backend sensitivity" `Quick
          test_key_backend_sensitivity;
      ] );
    ( "server.job_queue",
      [
        Alcotest.test_case "dispatch order" `Quick test_queue_dispatch_order;
        Alcotest.test_case "admission control" `Quick test_queue_admission;
        Alcotest.test_case "deadlines" `Quick test_queue_deadlines;
      ] );
    ( "server.protocol",
      [
        Alcotest.test_case "request round-trip" `Quick
          test_protocol_request_roundtrip;
        Alcotest.test_case "response round-trip" `Quick
          test_protocol_response_roundtrip;
        Alcotest.test_case "malformed requests" `Quick test_protocol_malformed;
        Alcotest.test_case "bounded reader lines" `Quick
          test_bounded_reader_lines;
        Alcotest.test_case "bounded reader partial at EOF" `Quick
          test_bounded_reader_partial_line_at_eof;
        Alcotest.test_case "bounded reader oversized resync" `Quick
          test_bounded_reader_oversized_resyncs;
      ] );
    ( "server.serve",
      [
        Alcotest.test_case "cache hit is byte-identical" `Quick
          test_server_cache_hit_identical;
        Alcotest.test_case "backend keys its own cache slot" `Quick
          test_server_backend_cache_not_shared;
        Alcotest.test_case "line hygiene" `Quick test_server_handle_line_hygiene;
        Alcotest.test_case "rejections" `Quick test_server_rejections;
        Alcotest.test_case "admission and displacement" `Quick
          test_server_admission_and_shedding;
        Alcotest.test_case "deadline shedding" `Quick test_server_deadline_shed;
        Alcotest.test_case "oversized line answered, serving continues" `Quick
          test_serve_answers_oversized_line;
        Alcotest.test_case "shutdown drains the queue" `Quick
          test_shutdown_drains_queue;
        Alcotest.test_case "dispatch hook is answer-transparent" `Quick
          test_dispatch_hook_is_answer_transparent;
        Alcotest.test_case "extra stats appended" `Quick
          test_extra_stats_appended;
        Alcotest.test_case "access log deterministic across jobs" `Quick
          test_access_log_deterministic_across_jobs;
        Alcotest.test_case "slow requests embed spans in the access log" `Quick
          test_access_log_slow_spans;
        Alcotest.test_case "prometheus exposition" `Quick
          test_prometheus_exposition;
        Alcotest.test_case "goodbye carries totals" `Quick test_goodbye_totals;
        Alcotest.test_case "repair warm/cold byte-identical" `Quick
          test_server_repair_warm_cold_identical;
        Alcotest.test_case "repair report jobs-invariant" `Quick
          test_server_repair_jobs_invariant;
        Alcotest.test_case "repair drains a queued target" `Quick
          test_server_repair_drains_queued_target;
        Alcotest.test_case "repair errors" `Quick test_server_repair_errors;
        Alcotest.test_case "latency histogram tracks requests" `Quick
          test_latency_histogram_tracks_requests;
        prop_server_responses_invariant;
      ] );
  ]
