The CLI lists the Table-I benchmark suite:

  $ ../../bin/dcsa_synth.exe list
  PCR           7 ops  allocation (3,0,0,0)
  IVD          12 ops  allocation (3,0,0,2)
  CPA          55 ops  allocation (8,0,0,2)
  Synthetic1   20 ops  allocation (3,3,2,1)
  Synthetic2   30 ops  allocation (5,2,2,2)
  Synthetic3   40 ops  allocation (6,4,4,2)
  Synthetic4   50 ops  allocation (7,4,4,3)

Structural statistics are deterministic:

  $ ../../bin/dcsa_synth.exe info -b PCR
  PCR
    operations      7 (mix 7, heat 0, filter 0, detect 0)
    edges           6
    depth           3 levels
    width profile   4,2,1
    critical path   19.0 s (tc = 2.0)
    sources/sinks   4/1
    reagent bill    1.00 chamber units

Graphviz export:

  $ ../../bin/dcsa_synth.exe dot -b IVD | head -4
  digraph "IVD" {
    rankdir=TB;
    node [shape=box, style=rounded];
    o0 [label="o0: Mix\n5.0 s, lysis-buffer"];

Unknown benchmarks are rejected with the available names:

  $ ../../bin/dcsa_synth.exe run -b nope 2>&1 | head -1
  dcsa-synth: unknown benchmark "nope"; try: PCR, IVD, CPA, Synthetic1, Synthetic2, Synthetic3, Synthetic4

The allocation explorer is deterministic:

  $ ../../bin/dcsa_synth.exe explore -b PCR
  (1,0,0,0)   1 components     52.1 s  util 67.1%
  (2,0,0,0)   2 components     26.7 s  util 75.6%
  (3,0,0,0)   3 components     22.2 s  util 83.0%
  (4,0,0,0)   4 components     19.0 s  util 90.6%
  knee: (4,0,0,0) (19.0 s)

Assay files with errors are reported with their line:

  $ cat > bad.assay <<'ASSAY'
  > assay "broken"
  > fluid serum 4e-7
  > op 0 grind 5 serum
  > ASSAY
  $ ../../bin/dcsa_synth.exe run -i bad.assay 2>&1 | head -1
  dcsa-synth: bad.assay: line 3: unknown operation kind "grind"

A valid assay file synthesises end to end (CPU time varies, so only the
stable prefix is checked):

  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 2>/dev/null | cut -d' ' -f1
  protein-panel/ours:

Parallel synthesis is deterministic: with the timing fields stripped
(the only wall-clock-dependent output), a --jobs 2 run is byte-identical
to the --jobs 1 run of the same seed, including four annealing restarts
exercising the worker pool:

  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 1 --json | grep -vE '(cpu|wall)_time_s' > jobs1.json
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 2 --json | grep -vE '(cpu|wall)_time_s' > jobs2.json
  $ diff jobs1.json jobs2.json

The layout and schedule renderings agree too:

  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 1 --layout --schedule --gantt 2>/dev/null | tail -n +2 > full1.txt
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 2 --layout --schedule --gantt 2>/dev/null | tail -n +2 > full2.txt
  $ diff full1.txt full2.txt

Telemetry stays deterministic too: with a sink installed (--metrics), the
aggregates folded into the JSON are byte-identical across --jobs values:

  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 1 --metrics --json | grep -vE '(cpu|wall)_time_s' > tele1.json
  $ ../../bin/dcsa_synth.exe run -i ../../data/protein_panel.assay -a 3,2,0,2 \
  >   --sa-restarts 4 --jobs 2 --metrics --json | grep -vE '(cpu|wall)_time_s' > tele2.json
  $ diff tele1.json tele2.json
  $ grep -c '"metrics"' tele1.json
  1

The metrics table itself is a deterministic artifact (every aggregate is
algorithm-driven — counters, bindings, search effort — never wall-clock):

  $ ../../bin/dcsa_synth.exe run -b PCR --sa-restarts 2 --jobs 2 --metrics 2>/dev/null | tail -n +3
  +-----------+------+----------+------------------------+-----------------------------------------+
  | Benchmark | Flow | Category |         Metric         |                  Value                  |
  +-----------+------+----------+------------------------+-----------------------------------------+
  | PCR       | ours | place    | delta_evals            |                                  165316 |
  | PCR       | ours | place    | resyncs                |                                     389 |
  | PCR       | ours | place    | sa.accepted            |                                   14826 |
  | PCR       | ours | place    | sa.attempted           |                                   26400 |
  | PCR       | ours | place    | sa.energy              | n=176 mean=18.6 min=11.0235 max=37.8754 |
  | PCR       | ours | place    | sa.temperature_steps   |                                     176 |
  | PCR       | ours | route    | astar.expansions       |                                     387 |
  | PCR       | ours | route    | astar.pops             |                                     414 |
  | PCR       | ours | route    | astar.pushes           |                                     702 |
  | PCR       | ours | route    | astar.searches         |                                      27 |
  | PCR       | ours | route    | heuristic_field_builds |                                       3 |
  | PCR       | ours | route    | task.path_cells        |              n=3 mean=2.333 min=1 max=5 |
  | PCR       | ours | schedule | bindings.case1         |                                       3 |
  | PCR       | ours | schedule | bindings.case2         |                                       4 |
  | PCR       | ours | schedule | ready_queue.depth      |              n=7 mean=2.286 min=1 max=4 |
  | PCR       | ours | schedule | transports             |                                       3 |
  | PCR       | ours | schedule | washes.departure       |                                       2 |
  | PCR       | ours | schedule | washes.evict           |                                       1 |
  | PCR       | ours | schedule | washes.sink            |                                       1 |
  +-----------+------+----------+------------------------+-----------------------------------------+

--trace writes a Chrome trace_event file; the trace subcommand validates
it and summarises with deterministic event counts (timestamps vary, the
set of spans and counter samples does not):

  $ ../../bin/dcsa_synth.exe run -b PCR --sa-restarts 2 --jobs 2 --trace trace.json >/dev/null 2>&1
  $ ../../bin/dcsa_synth.exe trace trace.json
  valid Chrome trace: 13 span(s), 186 counter sample(s), 0 instant(s) on 6 track(s)
  categories: place, pool, route, schedule, scope, stage, task

A corrupt trace is rejected:

  $ echo '{"traceEvents": 3}' > bad_trace.json
  $ ../../bin/dcsa_synth.exe trace bad_trace.json
  dcsa-synth: bad_trace.json: traceEvents is not an array
  [124]

--timing prints the per-stage table (wall-clock values vary, the rows do
not):

  $ ../../bin/dcsa_synth.exe run -b PCR --timing 2>/dev/null | grep '^| PCR' | cut -d'|' -f4 | tr -d ' '
  schedule
  place
  route
  total
