(* The determinism contract of the Domain-parallel synthesis engine:
   for any instance, any seed and any jobs count, parallel execution is
   bit-for-bit equivalent to sequential execution.  These are
   generator-driven properties, not single examples — every stochastic
   stage is exercised on random synthetic assays under random seeds. *)

module Rng = Mfb_util.Rng
module Pool = Mfb_util.Pool
module Seq_graph = Mfb_bioassay.Seq_graph
module Allocation = Mfb_component.Allocation
module Types = Mfb_schedule.Types
module Check = Mfb_schedule.Check
module Multi_start = Mfb_schedule.Multi_start
module Annealer = Mfb_place.Annealer

let tc = 2.0

let qtest ?(count = 60) name gen prop =
  (* A per-test fixed seed keeps property tests reproducible run to run. *)
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

(* Random synthetic instance: a seeded layered DAG plus an allocation
   that always offers every kind the generator may emit. *)
let instance_gen =
  QCheck2.Gen.(
    map2
      (fun n seed ->
        let g =
          Mfb_bioassay.Synthetic.generate ~name:"par-prop"
            { Mfb_bioassay.Synthetic.default_params with
              n_ops = n + 6;
              kind_weights = [| 3; 2; 1; 1 |];
              seed }
        in
        let alloc =
          Allocation.make ~mixers:(2 + (seed land 1)) ~heaters:2 ~filters:1
            ~detectors:1
        in
        (g, alloc))
      (int_bound 24) (int_bound 10_000))

(* Everything that identifies a schedule: makespan, per-op binding and
   times, and the transport set.  All leaves are ints/floats, so
   structural equality is exact bit-for-bit comparison. *)
let schedule_key (s : Types.t) =
  ( s.makespan,
    Array.to_list s.times,
    List.map
      (fun (tr : Types.transport) ->
        (tr.edge, tr.src, tr.dst, tr.removal, tr.depart, tr.arrive))
      s.transports,
    List.map
      (fun (w : Types.wash_event) ->
        (w.component, w.residue_op, w.wash_start, w.wash_duration))
      s.washes )

let chip_key (c : Mfb_place.Chip.t) =
  (c.width, c.height, Array.to_list c.places)

(* --- Multi-start scheduling: jobs=1 == jobs=4 --- *)

let prop_multistart_jobs_equivalent =
  qtest "Multi_start jobs=1 == jobs=4 (makespan, bindings, transports)"
    QCheck2.Gen.(pair instance_gen (int_bound 1000))
    (fun ((g, alloc), seed) ->
      let run jobs =
        Multi_start.schedule ~restarts:6 ~jobs ~rng:(Rng.create seed) ~tc g
          alloc
      in
      let seq = run 1 and par = run 4 in
      seq.improved_over_first = par.improved_over_first
      && schedule_key seq.schedule = schedule_key par.schedule)

(* --- Annealing placement: jobs=1 == jobs=4 --- *)

let fast_sa = { Annealer.default_params with t0 = 50.; i_max = 15 }

let prop_annealer_jobs_equivalent =
  qtest ~count:25 "Annealer restarts jobs=1 == jobs=4 (energy, placement)"
    QCheck2.Gen.(pair instance_gen (int_bound 1000))
    (fun ((g, alloc), seed) ->
      let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
      let nets =
        Mfb_place.Energy.weigh ~beta:0.6 ~gamma:0.4
          (Mfb_place.Net.of_schedule sched)
      in
      let run jobs =
        Annealer.anneal_multi ~params:fast_sa ~jobs ~restarts:3
          ~rng:(Rng.create seed) ~nets sched.components
      in
      let seq = run 1 and par = run 4 in
      seq.energy = par.energy
      && seq.initial_energy = par.initial_energy
      && chip_key seq.chip = chip_key par.chip)

(* --- Legality under any jobs value --- *)

let prop_parallel_schedule_legal =
  qtest ~count:100 "Multi_start under any jobs passes Check.validate"
    QCheck2.Gen.(triple instance_gen (int_range 1 4) (int_bound 1000))
    (fun ((g, alloc), jobs, seed) ->
      let multi =
        Multi_start.schedule ~restarts:4 ~jobs ~rng:(Rng.create seed) ~tc g
          alloc
      in
      Check.validate ~tc multi.schedule = [])

(* --- Whole flow: jobs=1 == jobs=3 through schedule+place+route --- *)

let prop_flow_jobs_equivalent =
  qtest ~count:12 "Flow.run jobs=1 == jobs=3 (schedule, chip, routing)"
    QCheck2.Gen.(pair instance_gen (int_bound 1000))
    (fun ((g, alloc), seed) ->
      let config =
        { Mfb_core.Config.default with sa_restarts = 3; seed }
      in
      let run jobs = Mfb_core.Flow.run ~config ~jobs g alloc in
      let seq = run 1 and par = run 3 in
      schedule_key seq.schedule = schedule_key par.schedule
      && chip_key seq.chip = chip_key par.chip
      && seq.channel_length_mm = par.channel_length_mm
      && seq.channel_wash_time = par.channel_wash_time
      && seq.execution_time = par.execution_time)

(* --- Telemetry on: Result aggregates stay jobs-invariant --- *)

module Telemetry = Mfb_util.Telemetry

(* Runs [f] under a fresh installed sink, returns its value; the sink
   never leaks into the other properties. *)
let with_sink f =
  Telemetry.install (Telemetry.make_sink ());
  Fun.protect ~finally:Telemetry.uninstall f

let prop_flow_metrics_jobs_equivalent =
  qtest ~count:12
    "Flow.run with telemetry: metrics and to_json jobs=1 == jobs=3"
    QCheck2.Gen.(pair instance_gen (int_bound 1000))
    (fun ((g, alloc), seed) ->
      let config = { Mfb_core.Config.default with sa_restarts = 3; seed } in
      (* Strip the wall-clock fields — everything else must be
         bit-for-bit, the telemetry aggregates included. *)
      let key jobs =
        with_sink (fun () ->
            let r = Mfb_core.Flow.run ~config ~jobs g alloc in
            let json =
              match Mfb_core.Result.to_json r with
              | Mfb_util.Json.Obj fields ->
                Mfb_util.Json.Obj
                  (List.filter
                     (fun (k, _) ->
                       k <> "cpu_time_s" && k <> "wall_time_s"
                       && k <> "stage_times")
                     fields)
              | other -> other
            in
            (r.metrics, Mfb_util.Json.to_string json))
      in
      let (m1, j1) = key 1 and (m3, j3) = key 3 in
      m1 <> [] && m1 = m3 && j1 = j3)

(* --- Portfolio backend: Result.to_json is jobs-invariant --- *)

(* Small assays only — the exact arm is exponential. *)
let small_instance_gen =
  QCheck2.Gen.(
    map2
      (fun n seed ->
        let g =
          Mfb_bioassay.Synthetic.generate ~name:"portfolio-prop"
            { Mfb_bioassay.Synthetic.default_params with
              n_ops = n + 4;
              kind_weights = [| 3; 2; 1; 1 |];
              seed }
        in
        let alloc =
          Allocation.make ~mixers:2 ~heaters:2 ~filters:1 ~detectors:1
        in
        (g, alloc))
      (int_bound 8) (int_bound 10_000))

let prop_portfolio_flow_jobs_equivalent =
  qtest ~count:10
    "Flow.run backend=portfolio: Result.to_json jobs=1 == jobs=3"
    QCheck2.Gen.(pair small_instance_gen (int_bound 1000))
    (fun ((g, alloc), seed) ->
      let config =
        { Mfb_core.Config.default with
          seed;
          backend = Mfb_schedule.Portfolio.Portfolio;
          exact_fuel = 20_000 }
      in
      let key jobs =
        let r = Mfb_core.Flow.run ~config ~jobs g alloc in
        let json =
          match Mfb_core.Result.to_json r with
          | Mfb_util.Json.Obj fields ->
            Mfb_util.Json.Obj
              (List.filter
                 (fun (k, _) -> k <> "cpu_time_s" && k <> "wall_time_s")
                 fields)
          | other -> other
        in
        (r.decision, Mfb_util.Json.to_string json)
      in
      let d1, j1 = key 1 and d3, j3 = key 3 in
      d1 <> None && d1 = d3 && j1 = j3)

let prop_annealer_temperature_steps_invariant =
  qtest ~count:25 "Annealer temperature_steps: pure function of params"
    QCheck2.Gen.(pair instance_gen (int_bound 1000))
    (fun ((g, alloc), seed) ->
      let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
      let nets =
        Mfb_place.Energy.weigh ~beta:0.6 ~gamma:0.4
          (Mfb_place.Net.of_schedule sched)
      in
      let run jobs seed =
        Annealer.anneal_multi ~params:fast_sa ~jobs ~restarts:3
          ~rng:(Rng.create seed) ~nets sched.components
      in
      let a = run 1 seed and b = run 4 seed and c = run 1 (seed + 1) in
      a.temperature_steps > 0
      && a.temperature_steps = b.temperature_steps
      && a.temperature_steps = c.temperature_steps)

let prop_astar_stats_deterministic =
  qtest ~count:20 "A* search effort (pops/pushes/expansions) deterministic"
    QCheck2.Gen.(pair instance_gen (int_bound 1000))
    (fun ((g, alloc), seed) ->
      let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
      let nets =
        Mfb_place.Energy.weigh ~beta:0.6 ~gamma:0.4
          (Mfb_place.Net.of_schedule sched)
      in
      let placed =
        Annealer.place ~params:fast_sa ~rng:(Rng.create seed) ~nets
          sched.components
      in
      let grid = Mfb_route.Rgrid.create ~we:10. placed.chip in
      let route () =
        let stats = Mfb_route.Astar.stats () in
        (match
           Mfb_route.Astar.search ~stats grid ~src:(0, 0)
             ~dst:(Mfb_route.Rgrid.width grid - 1,
                   Mfb_route.Rgrid.height grid - 1)
             ~usable:(fun c -> not (Mfb_route.Rgrid.blocked grid c))
             ~use_weights:false
         with
        | Some _ | None -> ());
        (stats.pops, stats.pushes, stats.expansions)
      in
      let ((pops, pushes, expansions) as a) = route () in
      a = route () && pops > 0 && pushes >= pops && expansions <= pops)

(* --- Suite fan-out: pair order and results independent of jobs --- *)

let test_suite_pairs_jobs_equivalent () =
  let config = Mfb_core.Config.default in
  let key pairs =
    List.map
      (fun ((ours : Mfb_core.Result.t), (ba : Mfb_core.Result.t)) ->
        ( ours.benchmark, ours.flow, ba.flow,
          schedule_key ours.schedule, schedule_key ba.schedule ))
      pairs
  in
  let instances = [ Mfb_core.Suite.pcr (); Mfb_core.Suite.ivd () ] in
  let seq = Mfb_core.Suite.run_pairs ~jobs:1 ~config ~instances () in
  let par = Mfb_core.Suite.run_pairs ~jobs:4 ~config ~instances () in
  Alcotest.(check bool) "identical pairs in suite order" true
    (key seq = key par);
  Alcotest.(check (list string)) "ours/ba labelling"
    [ "ours"; "ba"; "ours"; "ba" ]
    (List.concat_map
       (fun ((o : Mfb_core.Result.t), (b : Mfb_core.Result.t)) ->
         [ o.flow; b.flow ])
       seq)

(* --- Rng.split_n: dispatch-side determinism --- *)

let prop_split_n_deterministic =
  qtest "Rng.split_n streams depend only on (seed, index)"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 0 16))
    (fun (seed, n) ->
      let draw rng = List.init 4 (fun _ -> Rng.int rng 1_000_000) in
      let a = Array.map draw (Rng.split_n (Rng.create seed) n) in
      let b = Array.map draw (Rng.split_n (Rng.create seed) n) in
      a = b)

let suites =
  [
    ( "parallel.determinism",
      [
        prop_multistart_jobs_equivalent;
        prop_annealer_jobs_equivalent;
        prop_parallel_schedule_legal;
        prop_flow_jobs_equivalent;
        prop_flow_metrics_jobs_equivalent;
        prop_portfolio_flow_jobs_equivalent;
        prop_annealer_temperature_steps_invariant;
        prop_astar_stats_deterministic;
        Alcotest.test_case "suite pairs across jobs" `Quick
          test_suite_pairs_jobs_equivalent;
        prop_split_n_deterministic;
      ] );
  ]
