Exact/portfolio golden corpus: `Result.to_json` under `--backend exact`
and `--backend portfolio` must be byte-exact against the frozen
*.golden.json files (timing fields stripped — they are the only
wall-clock-dependent output).  The IVD instance runs with a starved
fuel budget so the truncated-fallback path is frozen too.

  $ strip() { grep -vE '(cpu|wall)_time_s'; }

  $ ../../bin/dcsa_synth.exe run -b PCR --backend exact --json 2>/dev/null \
  >   | strip > PCR_exact.json
  $ cmp PCR_exact.golden.json PCR_exact.json

  $ ../../bin/dcsa_synth.exe run -b PCR --backend portfolio --json 2>/dev/null \
  >   | strip > PCR_portfolio.json
  $ cmp PCR_portfolio.golden.json PCR_portfolio.json

  $ ../../bin/dcsa_synth.exe run -b IVD --backend exact --exact-fuel 2000 \
  >   --json 2>/dev/null | strip > IVD_exact_f2000.json
  $ cmp IVD_exact_f2000.golden.json IVD_exact_f2000.json
  $ grep -c '"truncated": true' IVD_exact_f2000.json
  1

Portfolio determinism: two invocations with the same seed and fuel are
byte-identical, and the --jobs level never changes the output (the
virtual-tick first-finisher rule is independent of wall-clock).

  $ ../../bin/dcsa_synth.exe run -b PCR --backend portfolio --json 2>/dev/null \
  >   | strip > PCR_portfolio_again.json
  $ cmp PCR_portfolio.json PCR_portfolio_again.json

  $ for j in 1 2 4; do
  >   ../../bin/dcsa_synth.exe run -b IVD --backend portfolio \
  >     --exact-fuel 2000 --jobs $j --json 2>/dev/null | strip > "IVD_jobs$j.json"
  > done
  $ cmp IVD_jobs1.json IVD_jobs2.json
  $ cmp IVD_jobs1.json IVD_jobs4.json

The human-readable report surfaces the backend decision line.

  $ ../../bin/dcsa_synth.exe run -b PCR --backend exact 2>/dev/null \
  >   | grep '^backend'
  backend exact: selected=exact heuristic=22.20s best=20.20s gap=9.0% optimal (explored 310 of 200000)
